package experiments

import (
	"bytes"
	"fmt"
	"io"

	"parblast/internal/core"
	"parblast/internal/engine"
	"parblast/internal/formatdb"
	"parblast/internal/mpi"
	"parblast/internal/mpiblast"
	"parblast/internal/report"
	"parblast/internal/vfs"
	"parblast/internal/workload"
)

// The SLA experiment: both engines in serving mode under an open-loop
// arrival stream. Three sweeps per engine:
//
//   - rate: the same batch sequence (same seed — arrival times scale
//     exactly with 1/rate and nothing else changes) pushed at increasing
//     rates. By Lindley's recursion the per-batch queueing delay is weakly
//     non-decreasing in the rate, so "p99 non-decreasing along the rate
//     sweep" is a deterministic gate, not a statistical one.
//   - batch: batch-size distributions at a fixed mid rate — how admission
//     granularity moves the tail.
//   - shed: a bounded admission queue under a bursty overload — the
//     deterministic drop-newest shedding in action (the saturation row).
//
// Every streamed run is verified byte-identical to a one-shot run over
// exactly its admitted queries before the row is reported.

// SLARow is one serving-mode measurement.
type SLARow struct {
	Label     string
	Engine    string
	Procs     int
	Sweep     string // "rate", "batch", or "shed"
	Rate      float64
	Burst     float64
	BatchMean int
	AdmitCap  int
	Arrivals  int
	Admitted  int
	Shed      int
	// Latency is the exact percentile block over ADMITTED queries,
	// measured from each batch's open-loop arrival.
	Latency *report.LatencySummary
	Result  engine.RunResult
}

// slaProcs is the serving cluster size.
const slaProcs = 6

// SLA runs the serving-mode sweeps on both engines.
func SLA(lab *Lab) ([]SLARow, error) {
	var rows []SLARow
	for _, eng := range []string{"mpi", "pio"} {
		// Rate sweep: identical batch sequence, arrival clock compressed 10×
		// per step. Seed and batch config MUST stay fixed across rates —
		// that is what makes the p99 ordering deterministic.
		for _, rate := range []float64{0.05, 0.5, 5, 50} {
			row, err := runSLASpec(lab, eng, "rate", workload.ArrivalConfig{
				Rate: rate, BatchMean: 2, Seed: 41,
			}, 0)
			if err != nil {
				return nil, fmt.Errorf("sla %s rate=%g: %w", eng, rate, err)
			}
			rows = append(rows, row)
		}
		// Batch-size sweep at the mid rate: per-query admission versus
		// coarse geometric batches.
		for _, bm := range []struct {
			mean int
			dist string
		}{{1, workload.BatchFixed}, {4, workload.BatchGeometric}} {
			row, err := runSLASpec(lab, eng, "batch", workload.ArrivalConfig{
				Rate: 5, BatchMean: bm.mean, BatchDist: bm.dist, Seed: 41,
			}, 0)
			if err != nil {
				return nil, fmt.Errorf("sla %s batchmean=%d: %w", eng, bm.mean, err)
			}
			rows = append(rows, row)
		}
		// Saturation row: a tight admission queue under a bursty overload
		// must shed deterministically.
		row, err := runSLASpec(lab, eng, "shed", workload.ArrivalConfig{
			Rate: 50, Burst: 4, BatchMean: 2, Seed: 41,
		}, 1)
		if err != nil {
			return nil, fmt.Errorf("sla %s shed: %w", eng, err)
		}
		if row.Shed == 0 {
			return nil, fmt.Errorf("sla %s shed: overload row shed nothing (rate 50, cap 1)", eng)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runSLASpec executes one streamed run and verifies it byte-identical to a
// one-shot run over its admitted queries.
func runSLASpec(lab *Lab, eng, sweep string, acfg workload.ArrivalConfig, admitCap int) (SLARow, error) {
	row := SLARow{
		Engine: eng, Procs: slaProcs, Sweep: sweep,
		Rate: acfg.Rate, Burst: acfg.Burst, BatchMean: acfg.BatchMean, AdmitCap: admitCap,
		Label: fmt.Sprintf("%s-%s-r%g", eng, sweep, acfg.Rate),
	}
	queries, err := lab.queries(lab.QuerySizes[1])
	if err != nil {
		return row, err
	}
	batches, err := workload.Arrivals(queries, acfg)
	if err != nil {
		return row, err
	}
	serveJob := &engine.Job{DBBase: "nr", Queries: queries, Options: lab.Options, OutputPath: "results.out"}
	res, stats, out, err := slaServe(lab, eng, serveJob, batches, admitCap)
	if err != nil {
		return row, err
	}
	row.Arrivals, row.Admitted, row.Shed = stats.Arrivals, stats.Admitted, stats.Shed
	row.Latency = report.LatencySummaryOf(res.QueryLatencies)
	row.Result = res

	// Byte-identity gate: a one-shot run over exactly the admitted queries
	// must reproduce the streamed output file.
	shed := make(map[int]bool, len(stats.ShedSeqs))
	for _, s := range stats.ShedSeqs {
		shed[s] = true
	}
	oracleQueries := queries[:0:0]
	for _, b := range batches {
		if !shed[b.Seq] {
			oracleQueries = append(oracleQueries, b.Queries...)
		}
	}
	oracleJob := &engine.Job{DBBase: "nr", Queries: oracleQueries, Options: lab.Options, OutputPath: "results.out"}
	oracleOut, err := slaOneShot(lab, eng, oracleJob)
	if err != nil {
		return row, err
	}
	if !bytes.Equal(out, oracleOut) {
		return row, fmt.Errorf("streamed output differs from one-shot over admitted queries (%d vs %d bytes)", len(out), len(oracleOut))
	}
	if len(res.QueryLatencies) != len(oracleQueries) {
		return row, fmt.Errorf("%d latencies for %d admitted queries", len(res.QueryLatencies), len(oracleQueries))
	}
	return row, nil
}

// slaCluster provisions a fresh formatted cluster for one serving run.
func slaCluster(lab *Lab, eng string) ([]*vfs.Node, error) {
	plat := altix()
	nodes, err := vfs.Cluster(slaProcs, plat.shared, plat.local)
	if err != nil {
		return nil, err
	}
	seqs, err := workload.SynthesizeDB(lab.DB)
	if err != nil {
		return nil, err
	}
	if _, err := formatdb.Format(nodes[0].Shared, "nr", seqs, formatdb.Config{
		Title: "synthetic nr", Kind: lab.DB.Kind,
	}); err != nil {
		return nil, err
	}
	if eng == "mpi" {
		if _, err := mpiblast.PrepareFragments(nodes[0].Shared, "nr", slaProcs-1); err != nil {
			return nil, err
		}
	}
	return nodes, nil
}

func slaServe(lab *Lab, eng string, job *engine.Job, batches []workload.Batch, admitCap int) (engine.RunResult, engine.ServeStats, []byte, error) {
	nodes, err := slaCluster(lab, eng)
	if err != nil {
		return engine.RunResult{}, engine.ServeStats{}, nil, err
	}
	cfg := mpi.Config{Cost: lab.Cost}
	var res engine.RunResult
	var stats engine.ServeStats
	switch eng {
	case "mpi":
		res, stats, err = mpiblast.Serve(nodes, slaProcs, cfg, job, mpiblast.Options{}, batches, admitCap)
	case "pio":
		res, stats, err = core.Serve(nodes, slaProcs, cfg, job, core.Options{}, batches, admitCap)
	default:
		err = fmt.Errorf("experiments: unknown engine %q", eng)
	}
	if err != nil {
		return engine.RunResult{}, stats, nil, err
	}
	out, err := nodes[0].Shared.ReadFile(job.OutputPath)
	if err != nil {
		return engine.RunResult{}, stats, nil, err
	}
	return res, stats, out, nil
}

func slaOneShot(lab *Lab, eng string, job *engine.Job) ([]byte, error) {
	nodes, err := slaCluster(lab, eng)
	if err != nil {
		return nil, err
	}
	switch eng {
	case "mpi":
		_, err = mpiblast.Run(nodes, slaProcs, lab.Cost, job)
	case "pio":
		_, err = core.Run(nodes, slaProcs, lab.Cost, job, core.Options{})
	default:
		err = fmt.Errorf("experiments: unknown engine %q", eng)
	}
	if err != nil {
		return nil, err
	}
	return nodes[0].Shared.ReadFile(job.OutputPath)
}

// PrintSLARows renders the serving-mode sweeps.
func PrintSLARows(w io.Writer, rows []SLARow) {
	fmt.Fprintf(w, "\n== Online serving: latency vs arrival rate (open-loop streams) ==\n")
	fmt.Fprintf(w, "%-18s %-6s %8s %6s %4s | %5s %5s %4s | %8s %8s %8s %8s\n",
		"label", "sweep", "rate", "bmean", "cap",
		"arr", "adm", "shed",
		"p50", "p95", "p99", "max")
	for _, r := range rows {
		ls := r.Latency
		if ls == nil {
			ls = &report.LatencySummary{}
		}
		fmt.Fprintf(w, "%-18s %-6s %8.2f %6d %4d | %5d %5d %4d | %8.3f %8.3f %8.3f %8.3f\n",
			r.Label, r.Sweep, r.Rate, r.BatchMean, r.AdmitCap,
			r.Arrivals, r.Admitted, r.Shed,
			ls.P50, ls.P95, ls.P99, ls.Max)
	}
}
