package experiments

import (
	"bytes"
	"testing"

	"parblast/internal/mpiio"
)

// TestIOTuneShape: the tuned-vs-fixed study fills every (profile, pattern)
// cell, its internal gate holds (tuned never regresses fixed anywhere,
// strictly beats it somewhere, byte-identity everywhere), and the learned
// artifact round-trips through the versioned parser.
func TestIOTuneShape(t *testing.T) {
	lab := DefaultLab()
	rows, art, err := IOTune(&lab)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(ioTuneProfiles()) * len(ioTunePatterns()); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	strict := 0
	for _, r := range rows {
		if !r.Identical {
			t.Errorf("%s/%s: tuned bytes differ from fixed", r.Profile, r.Pattern)
		}
		if r.FixedS <= 0 || r.TunedS <= 0 {
			t.Errorf("%s/%s: degenerate row %+v", r.Profile, r.Pattern, r)
		}
		if r.TunedS > r.FixedS*(1+1e-9) {
			t.Errorf("%s/%s: tuned (%.6fs) regresses fixed (%.6fs)", r.Profile, r.Pattern, r.TunedS, r.FixedS)
		}
		if r.TunedS < r.FixedS*(1-1e-9) {
			strict++
		}
		if _, perr := mpiio.ParseStrategy(r.Strategy); perr != nil {
			t.Errorf("%s/%s: unparseable learned strategy %q", r.Profile, r.Pattern, r.Strategy)
		}
	}
	if strict == 0 {
		t.Error("tuner never strictly beat the fixed heuristics")
	}
	if len(art.Entries) != len(rows) {
		t.Errorf("artifact has %d entries, want %d", len(art.Entries), len(rows))
	}
	data, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mpiio.ParseHintsArtifact(data); err != nil {
		t.Errorf("learned artifact does not validate: %v", err)
	}
	var buf bytes.Buffer
	PrintIOTuneRows(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty table")
	}
}

// TestIOTuneDeterministic: the study is fully virtual (seeded data,
// simulated clocks); two runs must agree to the byte.
func TestIOTuneDeterministic(t *testing.T) {
	lab := DefaultLab()
	a, artA, err := IOTune(&lab)
	if err != nil {
		t.Fatal(err)
	}
	b, artB, err := IOTune(&lab)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d differs across runs: %+v vs %+v", i, a[i], b[i])
		}
	}
	da, err := artA.Encode()
	if err != nil {
		t.Fatal(err)
	}
	db, err := artB.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Errorf("artifacts differ across runs:\n%s\nvs\n%s", da, db)
	}
}
