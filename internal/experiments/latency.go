package experiments

import (
	"fmt"
	"io"

	"parblast/internal/core"
	"parblast/internal/engine"
	"parblast/internal/formatdb"
	"parblast/internal/mpi"
	"parblast/internal/mpiblast"
	"parblast/internal/report"
	"parblast/internal/trace"
	"parblast/internal/vfs"
	"parblast/internal/workload"
)

// The latency experiment: the per-query accounting view of the paper's
// serialization argument. Both engines run with causal flow tracing on,
// across rank counts and merge protocols; each run yields the exact
// per-query latency percentiles (admission → result-merge completion) and
// the wait-for analyzer's critical-path blame breakdown. The expected
// shape: mpiBLAST's serialized merge makes later queries wait on earlier
// ones (tail percentiles grow with the query count and the critical path
// blames the master's fetch round-trips), while pioBLAST's batched
// collective output keeps the percentile spread flat.

// LatencyRow is one (protocol, procs) latency measurement.
type LatencyRow struct {
	Protocol string
	Engine   string
	Procs    int
	Wall     float64
	// Latency is the exact per-query percentile block (never nil on a
	// successful run).
	Latency *report.LatencySummary
	// Path is the wait-for analyzer's exact critical path for the run.
	Path *report.ExactPath
}

// latencyProtocols is the protocol sweep: both engines, flat and
// hierarchical merge.
func latencyProtocols() []struct {
	name string
	eng  string
	tree bool
} {
	return []struct {
		name string
		eng  string
		tree bool
	}{
		{"mpi-flat", "mpi", false},
		{"mpi-tree", "mpi", true},
		{"pio-flat", "pio", false},
		{"pio-tree", "pio", true},
	}
}

// Latency sweeps ranks × protocols with flow tracing enabled.
func Latency(lab *Lab) ([]LatencyRow, error) {
	var rows []LatencyRow
	for _, procs := range []int{8, 16} {
		for _, p := range latencyProtocols() {
			row, err := runLatencySpec(lab, p.eng, p.name, procs, p.tree)
			if err != nil {
				return nil, fmt.Errorf("latency %s p=%d: %w", p.name, procs, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// runLatencySpec executes one protocol on a fresh cluster with the trace
// collector and flow recording attached (the generic execute() runs
// untraced), then folds the collector into the latency/critical-path row.
func runLatencySpec(lab *Lab, eng, proto string, procs int, tree bool) (LatencyRow, error) {
	row := LatencyRow{Protocol: proto, Engine: eng, Procs: procs}
	plat := altix()
	nodes, err := vfs.Cluster(procs, plat.shared, plat.local)
	if err != nil {
		return row, err
	}
	seqs, err := workload.SynthesizeDB(lab.DB)
	if err != nil {
		return row, err
	}
	if _, err := formatdb.Format(nodes[0].Shared, "nr", seqs, formatdb.Config{
		Title: "synthetic nr", Kind: lab.DB.Kind,
	}); err != nil {
		return row, err
	}
	queries, err := lab.queries(lab.QuerySizes[1])
	if err != nil {
		return row, err
	}
	job := &engine.Job{
		DBBase:     "nr",
		Queries:    queries,
		Options:    lab.Options,
		OutputPath: "results.out",
	}
	col := trace.NewCollector()
	cfg := mpi.Config{
		Cost:     lab.Cost,
		Observer: col.Observer,
		OnFlow: func(f mpi.FlowEvent) {
			col.RecordFlow(trace.Flow{
				Kind: f.Kind, Op: f.Op, ID: f.ID, Batch: f.Batch,
				Src: f.Src, Dst: f.Dst, Bytes: f.Bytes,
				SendAt: f.SendAt, RecvAt: f.RecvAt,
			})
		},
	}
	var res engine.RunResult
	switch eng {
	case "mpi":
		if _, err := mpiblast.PrepareFragments(nodes[0].Shared, "nr", procs-1); err != nil {
			return row, err
		}
		res, err = mpiblast.RunOpts(nodes, procs, cfg, job, mpiblast.Options{TreeMerge: tree})
	case "pio":
		res, err = core.RunConfig(nodes, procs, cfg, job, core.Options{TreeMerge: tree, QueryBatch: 2})
	default:
		err = fmt.Errorf("experiments: unknown engine %q", eng)
	}
	if err != nil {
		return row, err
	}
	row.Wall = res.Wall
	row.Latency = report.LatencySummaryOf(res.QueryLatencies)
	row.Path = report.ExactCriticalPath(col)
	return row, nil
}

// PrintLatencyRows renders the latency sweep: the percentile table plus
// the critical-path blame breakdown per run.
func PrintLatencyRows(w io.Writer, rows []LatencyRow) {
	fmt.Fprintf(w, "\n== Per-query latency and exact critical path (ranks × protocols) ==\n")
	fmt.Fprintf(w, "%-10s %5s %5s | %8s %8s %8s %8s | %-14s %8s %8s %8s %8s %8s\n",
		"protocol", "procs", "n",
		"p50", "p95", "p99", "max",
		"dominant", "net", "peerwait", "io", "search", "other")
	for _, r := range rows {
		ls := r.Latency
		if ls == nil {
			ls = &report.LatencySummary{}
		}
		var blame report.BlameBreakdown
		dominant := "-"
		if r.Path != nil {
			blame = r.Path.Blame
			dominant = r.Path.Dominant
		}
		fmt.Fprintf(w, "%-10s %5d %5d | %8.3f %8.3f %8.3f %8.3f | %-14s %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			r.Protocol, r.Procs, ls.Count,
			ls.P50, ls.P95, ls.P99, ls.Max,
			dominant, blame.Net, blame.PeerNotReady, blame.IO, blame.Search, blame.Other)
	}
}
