package experiments

import (
	"bytes"
	"fmt"
	"io"
	"sync"

	"parblast/internal/mpi"
	"parblast/internal/mpiio"
	"parblast/internal/simtime"
	"parblast/internal/vfs"
)

// The iotune experiment measures the hint-driven, self-tuning MPI-IO
// stack: for every (file-system profile × access pattern) cell it runs
// the collective read once with the fixed built-in heuristics, then lets
// the auto-tuner explore the candidate slate (strategies × sieve gaps),
// finalizes the learned-hints artifact, and re-runs each cell exploiting
// the artifact. The claims under test:
//
//   - the tuned run never regresses the fixed heuristics on any cell
//     (the fixed configuration is candidate 0 of the slate, so the tuner
//     can always fall back to it), and strictly beats them on at least
//     one — the sparse pattern, where sieving buys nothing and the
//     aggregator shuffle is pure overhead;
//   - every strategy returns bytes identical to the requested view;
//   - the artifact round-trips: the tuned runs load it through the same
//     parser validatereport uses.

// ioTuneRanks is the cell size: enough ranks that aggregation, shuffle,
// and channel contention all materialize, small enough for a smoke run.
const ioTuneRanks = 4

// ioTuneProfiles are the three §4 storage profiles.
func ioTuneProfiles() []vfs.Profile {
	return []vfs.Profile{vfs.XFSLike(), vfs.NFSLike(), vfs.LocalDisk()}
}

// ioTunePatterns are the access shapes, named by the signature the
// collective plan derives for them (the tuner's learning key).
func ioTunePatterns() []string { return []string{"contig", "strided", "holey"} }

// IOTuneRow is one (profile, pattern) cell of the tuned-vs-fixed table.
type IOTuneRow struct {
	Profile string
	Pattern string
	// FixedS / TunedS are the slowest rank's clock for the run under the
	// built-in heuristics and under the learned artifact.
	FixedS float64
	TunedS float64
	// Strategy and SieveGap are the learned decision for this cell.
	Strategy string
	SieveGap int64
	// Speedup is FixedS / TunedS (1.0 = the tuner kept the heuristic).
	Speedup float64
	// Identical reports byte-identity against the requested views for
	// every run of the cell — fixed, every exploration op, and tuned.
	Identical bool
}

// ioTuneViews builds the per-rank views, expected bytes, and file
// contents for one pattern. The shapes are chosen so the collective
// plan's signature equals the pattern name:
//
//	contig:  one 96 KB block per rank, back to back;
//	strided: 2 KB records dense round-robin across the ranks;
//	holey:   2 KB records at 600 KB stride — holes wider than every
//	         profile's sieve gap, so sieving can never pay for itself.
func ioTuneViews(pattern string) ([]mpiio.View, [][]byte, []byte, error) {
	views := make([]mpiio.View, ioTuneRanks)
	want := make([][]byte, ioTuneRanks)
	var recs, recSize, stride int64
	switch pattern {
	case "contig":
		recs, recSize, stride = ioTuneRanks, 96<<10, 96<<10
	case "strided":
		recs, recSize, stride = 256, 2<<10, 2<<10
	case "holey":
		recs, recSize, stride = 24, 2<<10, 600<<10
	default:
		return nil, nil, nil, fmt.Errorf("iotune: unknown pattern %q", pattern)
	}
	total := make([]byte, (recs-1)*stride+recSize)
	for i := range total {
		total[i] = byte(i*131 + 89)
	}
	for rec := int64(0); rec < recs; rec++ {
		owner := rec % ioTuneRanks
		off := rec * stride
		views[owner].Segments = append(views[owner].Segments,
			mpiio.Segment{Offset: off, Length: recSize})
		want[owner] = append(want[owner], total[off:off+recSize]...)
	}
	return views, want, total, nil
}

// ioTuneRun executes ops collective reads of one pattern on a fresh
// cluster and returns the slowest rank's clock. Every op's bytes are
// verified against the views inside the run.
func ioTuneRun(cost simtime.CostModel, prof vfs.Profile, pattern string, ops int,
	tuner *mpiio.Tuner) (float64, error) {
	views, want, total, err := ioTuneViews(pattern)
	if err != nil {
		return 0, err
	}
	fs, err := vfs.New(prof)
	if err != nil {
		return 0, err
	}
	fs.WriteFile("db", total)
	var mu sync.Mutex
	var verifyErr error
	clocks, err := mpi.Run(ioTuneRanks, cost, func(r *mpi.Rank) error {
		f, err := mpiio.Open(r, fs, "db")
		if err != nil {
			return err
		}
		if err := f.SetView(views[r.ID()]); err != nil {
			return err
		}
		f.SetTuner(tuner)
		for op := 0; op < ops; op++ {
			got, err := f.ReadCollective()
			if err != nil {
				return err
			}
			if !bytes.Equal(got, want[r.ID()]) {
				mu.Lock()
				verifyErr = fmt.Errorf("iotune %s/%s op %d: rank %d read %d bytes, want %d",
					prof.Name, pattern, op, r.ID(), len(got), len(want[r.ID()]))
				mu.Unlock()
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if verifyErr != nil {
		return 0, verifyErr
	}
	var wall float64
	for _, c := range clocks {
		if c.Now() > wall {
			wall = c.Now()
		}
	}
	return wall, nil
}

// IOTune runs the tuned-vs-fixed study and returns the rows plus the
// learned-hints artifact. The regression gate is enforced here — a tuned
// cell slower than its fixed heuristic, a missing strict win, or any
// byte mismatch is an error — so callers (benchsuite, the check.sh
// smoke) inherit it.
func IOTune(lab *Lab) ([]IOTuneRow, *mpiio.HintsArtifact, error) {
	type cellID struct {
		prof    vfs.Profile
		pattern string
	}
	var cells []cellID
	for _, prof := range ioTuneProfiles() {
		for _, pattern := range ioTunePatterns() {
			cells = append(cells, cellID{prof, pattern})
		}
	}

	// Pass 1: fixed heuristics (no tuner, zero hints).
	fixed := make([]float64, len(cells))
	for i, c := range cells {
		s, err := ioTuneRun(lab.Cost, c.prof, c.pattern, 1, nil)
		if err != nil {
			return nil, nil, fmt.Errorf("iotune fixed %s/%s: %w", c.prof.Name, c.pattern, err)
		}
		fixed[i] = s
	}

	// Pass 2: exploration — one op per slate candidate, all cells feeding
	// the one shared tuner, exactly as a real run would.
	tuner := mpiio.NewTuner()
	for _, c := range cells {
		ops := len(mpiio.TunerCandidates(c.prof, mpiio.Hints{}))
		if _, err := ioTuneRun(lab.Cost, c.prof, c.pattern, ops, tuner); err != nil {
			return nil, nil, fmt.Errorf("iotune explore %s/%s: %w", c.prof.Name, c.pattern, err)
		}
	}
	artifact := tuner.Finalize()

	// Pass 3: exploit — reload the artifact through the public parser
	// (the same round trip a second parblast run performs) and re-run
	// each cell once.
	encoded, err := artifact.Encode()
	if err != nil {
		return nil, nil, err
	}
	loaded, err := mpiio.LoadTuner(encoded)
	if err != nil {
		return nil, nil, fmt.Errorf("iotune: artifact round trip: %w", err)
	}
	learned := make(map[string]mpiio.LearnedHint, len(artifact.Entries))
	for _, e := range artifact.Entries {
		learned[e.Key] = e
	}
	rows := make([]IOTuneRow, 0, len(cells))
	strictWin := false
	for i, c := range cells {
		tuned, err := ioTuneRun(lab.Cost, c.prof, c.pattern, 1, loaded)
		if err != nil {
			return nil, nil, fmt.Errorf("iotune tuned %s/%s: %w", c.prof.Name, c.pattern, err)
		}
		e, ok := learned[c.prof.Name+"/"+c.pattern]
		if !ok {
			return rows, artifact, fmt.Errorf("iotune: artifact misses key %s/%s", c.prof.Name, c.pattern)
		}
		row := IOTuneRow{
			Profile:   c.prof.Name,
			Pattern:   c.pattern,
			FixedS:    fixed[i],
			TunedS:    tuned,
			Strategy:  e.Strategy,
			SieveGap:  e.SieveGap,
			Identical: true, // every run above byte-verified or errored out
		}
		if tuned > 0 {
			row.Speedup = fixed[i] / tuned
		}
		rows = append(rows, row)
		// The gate: tuned must never regress fixed (the fixed heuristic is
		// candidate 0, so learning it back is always available)...
		if tuned > fixed[i]*(1+1e-9) {
			return rows, artifact, fmt.Errorf("iotune: tuned run regressed on %s/%s: %.6fs > fixed %.6fs",
				c.prof.Name, c.pattern, tuned, fixed[i])
		}
		// ...and must strictly beat it somewhere.
		if tuned < fixed[i]*(1-1e-9) {
			strictWin = true
		}
	}
	if !strictWin {
		return rows, artifact, fmt.Errorf("iotune: auto-tuner never strictly beat the fixed heuristics")
	}
	return rows, artifact, nil
}

// PrintIOTuneRows renders the tuned-vs-fixed table.
func PrintIOTuneRows(w io.Writer, rows []IOTuneRow) {
	fmt.Fprintf(w, "\n== I/O auto-tuning: learned hints vs fixed heuristics ==\n")
	fmt.Fprintf(w, "%8s %8s %11s %11s %12s %10s %8s %10s\n",
		"fs", "pattern", "fixed", "tuned", "strategy", "sieveGap", "speedup", "identical")
	for _, r := range rows {
		fmt.Fprintf(w, "%8s %8s %10.4fs %10.4fs %12s %10d %7.2fx %10v\n",
			r.Profile, r.Pattern, r.FixedS, r.TunedS, r.Strategy, r.SieveGap, r.Speedup, r.Identical)
	}
}
