// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the simulated cluster: the mpiBLAST characterization
// (Figure 1a/1b), the Table 1 phase breakdown, the query→output size map
// (Table 2), the Altix scalability studies (Figure 3a/3b), the NFS-cluster
// study (Figure 4), and the design-choice ablations DESIGN.md calls out.
//
// The workload is the paper's, scaled to laptop size: a redundant
// ("family"-structured) protein database standing in for GenBank nr, and
// query sets randomly sampled from the database itself. Absolute virtual
// times are therefore a constant factor below the paper's (the database is
// ~4 orders of magnitude smaller); the reproduced claims are the shapes —
// who wins, search-time fractions, where the baseline stops scaling.
package experiments

import (
	"bytes"
	"fmt"
	"io"
	"strings"

	"parblast/internal/blast"
	"parblast/internal/core"
	"parblast/internal/engine"
	"parblast/internal/formatdb"
	"parblast/internal/mpi"
	"parblast/internal/mpiblast"
	"parblast/internal/seq"
	"parblast/internal/simtime"
	"parblast/internal/vfs"
	"parblast/internal/workload"
)

// Lab bundles the scaled standard workload and cost model.
type Lab struct {
	// DBConfig generates the nr-stand-in database.
	DB workload.DBConfig
	// QueryMeanLen is the mean sampled query length.
	QueryMeanLen int
	// QuerySizes lists the query-set volumes (bytes) standing in for the
	// paper's 26/77/159/289 KB sets; index 2 is the default "150 KB" set.
	QuerySizes [4]int
	// Cost is the virtual-time model.
	Cost simtime.CostModel
	// Options configures the kernel.
	Options blast.Options
}

// DefaultLab returns the standard scaled workload: ~180 K residues of
// redundant protein data (families of 12 at 15% divergence), query sets of
// 1.5–17 KB sampled from the database.
func DefaultLab() Lab {
	return Lab{
		DB: workload.DBConfig{
			Kind:       seq.Protein,
			NumSeqs:    600,
			MeanLen:    300,
			Seed:       7,
			IDPrefix:   "nr",
			FamilySize: 12,
		},
		QueryMeanLen: 400,
		QuerySizes:   [4]int{1500, 4500, 9000, 17000},
		Cost:         simtime.DefaultCostModel(),
		Options:      blast.DefaultProteinOptions(),
	}
}

// queries samples the query set of the given volume.
func (l *Lab) queries(bytes int) ([]*seq.Sequence, error) {
	db, err := workload.SynthesizeDB(l.DB)
	if err != nil {
		return nil, err
	}
	return workload.SampleQueries(db, workload.QueryConfig{
		TargetBytes:  bytes,
		MeanLen:      l.QueryMeanLen,
		MutationRate: 0.05,
		Seed:         99,
	})
}

// platform describes a storage configuration.
type platform struct {
	name   string
	shared vfs.Profile
	local  *vfs.Profile
}

func altix() platform { return platform{name: "altix-xfs", shared: vfs.XFSLike()} }

func blade() platform {
	l := vfs.LocalDisk()
	return platform{name: "blade-nfs", shared: vfs.NFSLike(), local: &l}
}

// runSpec is one engine execution.
type runSpec struct {
	lab         *Lab
	plat        platform
	engineName  string // "mpi" or "pio"
	procs       int
	fragments   int // 0 = natural
	queryBytes  int
	pio         core.Options
	fetchWindow int
}

// Row is one measured experiment data point.
type Row struct {
	Label       string
	Engine      string
	Procs       int
	Fragments   int
	QueryBytes  int
	OutputBytes int64
	Result      engine.RunResult
}

// execute runs one spec on a fresh cluster.
func execute(spec runSpec) (Row, error) {
	row := Row{
		Engine:     spec.engineName,
		Procs:      spec.procs,
		Fragments:  spec.fragments,
		QueryBytes: spec.queryBytes,
	}
	nodes, err := vfs.Cluster(spec.procs, spec.plat.shared, spec.plat.local)
	if err != nil {
		return row, err
	}
	seqs, err := workload.SynthesizeDB(spec.lab.DB)
	if err != nil {
		return row, err
	}
	if _, err := formatdb.Format(nodes[0].Shared, "nr", seqs, formatdb.Config{
		Title: "synthetic nr", Kind: spec.lab.DB.Kind,
	}); err != nil {
		return row, err
	}
	queries, err := spec.lab.queries(spec.queryBytes)
	if err != nil {
		return row, err
	}
	job := &engine.Job{
		DBBase:     "nr",
		Queries:    queries,
		Options:    spec.lab.Options,
		OutputPath: "results.out",
		Fragments:  spec.fragments,
	}
	var res engine.RunResult
	switch spec.engineName {
	case "mpi":
		nFrags := spec.fragments
		if nFrags == 0 {
			nFrags = spec.procs - 1
		}
		if _, err := mpiblast.PrepareFragments(nodes[0].Shared, "nr", nFrags); err != nil {
			return row, err
		}
		res, err = mpiblast.RunOpts(nodes, spec.procs, mpi.Config{Cost: spec.lab.Cost}, job,
			mpiblast.Options{FetchWindow: spec.fetchWindow})
	case "pio":
		res, err = core.Run(nodes, spec.procs, spec.lab.Cost, job, spec.pio)
	default:
		err = fmt.Errorf("experiments: unknown engine %q", spec.engineName)
	}
	if err != nil {
		return row, err
	}
	row.Result = res
	row.OutputBytes = res.OutputBytes
	return row, nil
}

// --- Figure 1(a): mpiBLAST search vs non-search time by process count ----

// Fig1a reproduces the paper's Figure 1(a): the distribution of mpiBLAST
// execution time between search and "other" at 16/32/64 processes. The
// paper's observation: the search share falls from ~96% to ~71%. The paper
// ran this on GenBank nt, a larger and less hit-dense database than nr —
// modelled here by dropping the family redundancy (fewer hits per query,
// so search dominates more than in the Table 1 workload).
func Fig1a(lab *Lab) ([]Row, error) {
	ntLab := *lab
	ntLab.DB.NumSeqs = 1800
	ntLab.DB.FamilySize = 3
	ntLab.DB.IDPrefix = "nt"
	var rows []Row
	for _, p := range []int{16, 32, 64} {
		row, err := execute(runSpec{
			lab: &ntLab, plat: altix(), engineName: "mpi",
			procs: p, queryBytes: lab.QuerySizes[2],
		})
		if err != nil {
			return nil, fmt.Errorf("fig1a p=%d: %w", p, err)
		}
		row.Label = "fig1a"
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig1b reproduces Figure 1(b): mpiBLAST's sensitivity to the number of
// pre-generated fragments at 32 processes (paper: 31/61/96/167 fragments;
// both search and non-search time rise with fragment count).
func Fig1b(lab *Lab) ([]Row, error) {
	var rows []Row
	for _, f := range []int{31, 61, 96, 167} {
		row, err := execute(runSpec{
			lab: lab, plat: altix(), engineName: "mpi",
			procs: 32, fragments: f, queryBytes: lab.QuerySizes[2],
		})
		if err != nil {
			return nil, fmt.Errorf("fig1b f=%d: %w", f, err)
		}
		row.Label = "fig1b"
		rows = append(rows, row)
	}
	return rows, nil
}

// Table1 reproduces the phase breakdown of both engines at 32 processes
// with the "150 KB" query set and natural partitioning.
func Table1(lab *Lab) ([]Row, error) {
	var rows []Row
	for _, eng := range []string{"mpi", "pio"} {
		row, err := execute(runSpec{
			lab: lab, plat: altix(), engineName: eng,
			procs: 32, queryBytes: lab.QuerySizes[2],
		})
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", eng, err)
		}
		row.Label = "table1"
		rows = append(rows, row)
	}
	return rows, nil
}

// Table2 reproduces the query-size → output-size map by running the
// pipeline for each query set (the paper reports 26K→11M … 289K→153M).
func Table2(lab *Lab) ([]Row, error) {
	var rows []Row
	for _, qb := range lab.QuerySizes {
		row, err := execute(runSpec{
			lab: lab, plat: altix(), engineName: "pio",
			procs: 8, queryBytes: qb,
		})
		if err != nil {
			return nil, fmt.Errorf("table2 q=%d: %w", qb, err)
		}
		row.Label = "table2"
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig3a reproduces Figure 3(a): node scalability of both engines on the
// Altix, 4 → 62 processes.
func Fig3a(lab *Lab) ([]Row, error) {
	var rows []Row
	for _, p := range []int{4, 8, 16, 32, 62} {
		for _, eng := range []string{"mpi", "pio"} {
			row, err := execute(runSpec{
				lab: lab, plat: altix(), engineName: eng,
				procs: p, queryBytes: lab.QuerySizes[2],
			})
			if err != nil {
				return nil, fmt.Errorf("fig3a %s p=%d: %w", eng, p, err)
			}
			row.Label = "fig3a"
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig3b reproduces Figure 3(b): output scalability at 62 processes across
// the four query/output sizes.
func Fig3b(lab *Lab) ([]Row, error) {
	var rows []Row
	for _, qb := range lab.QuerySizes {
		for _, eng := range []string{"mpi", "pio"} {
			row, err := execute(runSpec{
				lab: lab, plat: altix(), engineName: eng,
				procs: 62, queryBytes: qb,
			})
			if err != nil {
				return nil, fmt.Errorf("fig3b %s q=%d: %w", eng, qb, err)
			}
			row.Label = "fig3b"
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig4 reproduces Figure 4: the same process-scalability study on the
// NFS-based blade cluster, 4 → 32 processes.
func Fig4(lab *Lab) ([]Row, error) {
	var rows []Row
	for _, p := range []int{4, 8, 16, 32} {
		for _, eng := range []string{"mpi", "pio"} {
			row, err := execute(runSpec{
				lab: lab, plat: blade(), engineName: eng,
				procs: p, queryBytes: lab.QuerySizes[2],
			})
			if err != nil {
				return nil, fmt.Errorf("fig4 %s p=%d: %w", eng, p, err)
			}
			row.Label = "fig4"
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Ablations measures the design choices DESIGN.md calls out:
//   - collective vs independent output, on both file systems (two-phase
//     I/O matters most where concurrent streams serialize, i.e. NFS);
//   - early score communication, with a binding hit cap (pruning can only
//     help when workers hold more candidates than can qualify globally);
//   - virtual-partition granularity (the §5 load-balancing trade-off).
func Ablations(lab *Lab) ([]Row, error) {
	var rows []Row
	type variant struct {
		name  string
		plat  platform
		frag  int
		pio   core.Options
		opts  func(*blast.Options)
		mpi   bool
		fetch int
	}
	variants := []variant{
		{name: "pio-collective", plat: altix()},
		{name: "pio-independent", plat: altix(), pio: core.Options{IndependentOutput: true}},
		{name: "pio-coll-nfs", plat: blade()},
		{name: "pio-indep-nfs", plat: blade(), pio: core.Options{IndependentOutput: true}},
		{name: "pio-cap10", plat: altix(), opts: func(o *blast.Options) { o.MaxTargetSeqs = 10 }},
		{name: "pio-cap10-prune", plat: altix(), pio: core.Options{EarlyPrune: true},
			opts: func(o *blast.Options) { o.MaxTargetSeqs = 10 }},
		{name: "pio-batch4", plat: altix(), pio: core.Options{QueryBatch: 4}},
		{name: "pio-batch16", plat: altix(), pio: core.Options{QueryBatch: 16}},
		{name: "pio-adaptive64K", plat: altix(), pio: core.Options{MemoryBudgetBytes: 64 << 10}},
		{name: "pio-frag62", plat: altix(), frag: 62},
		{name: "pio-frag124", plat: altix(), frag: 124},
		{name: "pio-frag248", plat: altix(), frag: 248},
		{name: "pio-frag124-dyn", plat: altix(), frag: 124, pio: core.Options{DynamicAssignment: true}},
		{name: "mpi-serial-fetch", plat: altix(), mpi: true, fetch: 1},
		{name: "mpi-fetch-win16", plat: altix(), mpi: true, fetch: 16},
	}
	for _, v := range variants {
		vlab := *lab
		if v.opts != nil {
			v.opts(&vlab.Options)
		}
		eng := "pio"
		if v.mpi {
			eng = "mpi"
		}
		row, err := execute(runSpec{
			lab: &vlab, plat: v.plat, engineName: eng,
			procs: 32, fragments: v.frag, queryBytes: lab.QuerySizes[2], pio: v.pio,
			fetchWindow: v.fetch,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", v.name, err)
		}
		row.Label = v.name
		row.Engine = v.name
		rows = append(rows, row)
	}
	return rows, nil
}

// ReadPath quantifies the input-stage redesign. The blade/NFS pair is the
// paper's strided-read scenario: with many virtual fragments per worker on
// the one-channel store, independent reads pay per-operation latency for
// every extent, while two-phase collective reads aggregate them into a few
// large sieved accesses issued by the aggregator (rank 0 — the otherwise
// idle master — on NFS). The Altix pair measures input/search overlap:
// with spare storage parallelism, prefetching the next partition hides its
// read time behind the current partition's search. The dynamic pair
// pipelines the greedy assignment protocol the same way.
func ReadPath(lab *Lab) ([]Row, error) {
	const procs = 8
	frags := 8 * (procs - 1)
	type variant struct {
		name string
		plat platform
		pio  core.Options
	}
	variants := []variant{
		{name: "pio-indep-read", plat: blade()},
		{name: "pio-coll-read", plat: blade(), pio: core.Options{CollectiveRead: true}},
		{name: "pio-sync-read", plat: altix()},
		{name: "pio-prefetch2", plat: altix(), pio: core.Options{PrefetchDepth: 2}},
		{name: "pio-dyn", plat: altix(), pio: core.Options{DynamicAssignment: true}},
		{name: "pio-dyn-prefetch", plat: altix(), pio: core.Options{DynamicAssignment: true, PrefetchDepth: 1}},
	}
	var rows []Row
	for _, v := range variants {
		row, err := execute(runSpec{
			lab: lab, plat: v.plat, engineName: "pio",
			procs: procs, fragments: frags, queryBytes: lab.QuerySizes[2], pio: v.pio,
		})
		if err != nil {
			return nil, fmt.Errorf("readpath %s: %w", v.name, err)
		}
		row.Label = v.name
		row.Engine = v.name
		rows = append(rows, row)
	}
	return rows, nil
}

// Hetero measures the §5 load-balancing extension on a heterogeneous
// cluster: 25% of the workers run at one-third speed. Static natural
// partitioning stalls on the slow nodes; dynamic greedy assignment of
// fine-grained virtual fragments absorbs the skew.
func Hetero(lab *Lab) ([]Row, error) {
	const procs = 32
	speeds := make([]float64, procs)
	for i := range speeds {
		speeds[i] = 1
	}
	for i := procs - procs/4; i < procs; i++ {
		speeds[i] = 3
	}
	type variant struct {
		name string
		frag int
		pio  core.Options
	}
	variants := []variant{
		{name: "pio-static-hetero"},
		{name: "pio-dynamic-hetero", frag: 2 * (procs - 1), pio: core.Options{DynamicAssignment: true}},
	}
	var rows []Row
	for _, v := range variants {
		v.pio.NodeSpeeds = speeds
		row, err := execute(runSpec{
			lab: lab, plat: altix(), engineName: "pio",
			procs: procs, fragments: v.frag, queryBytes: lab.QuerySizes[2], pio: v.pio,
		})
		if err != nil {
			return nil, fmt.Errorf("hetero %s: %w", v.name, err)
		}
		row.Label = v.name
		row.Engine = v.name
		rows = append(rows, row)
	}
	return rows, nil
}

// FaultRow is one engine's fault-tolerance measurement: either a worker
// crash (recovery protocol) or a transient-I/O schedule (storage retries).
type FaultRow struct {
	Engine    string
	Procs     int
	CrashAt   float64 // virtual time of the injected worker crash (0 = I/O faults only)
	FaultFree float64 // wall time without faults (recovery protocol armed)
	Faulted   float64 // wall time with the fault schedule
	Overhead  float64 // Faulted − FaultFree: the cost of absorbing the faults
	Identical bool    // faulted-run output byte-identical to the oracle
	// Result is the faulted run's full result; the vfs transient-fault
	// stats (IOFaultedOps/IORetries/IOBackoff) surface through it.
	Result engine.RunResult
}

// faultQueryBytes is the query volume of the recovery scenario: small on
// purpose, so the crash's unavoidable re-search (identical in both engines)
// does not drown the cost the scenario isolates — re-ACQUIRING the lost
// data, where the engines genuinely differ (fragment re-copy vs re-issued
// offsets).
const faultQueryBytes = 500

// runFaultSpec executes one engine on a fresh cluster with the given fault
// schedule — crashes (mpi layer) and/or transient I/O errors on the shared
// store (vfs layer) — and returns the result plus the produced output bytes.
func (l *Lab) runFaultSpec(eng string, procs int, faults []mpi.Fault, ioPlan *vfs.FaultPlan) (engine.RunResult, []byte, error) {
	// A dedicated platform for the recovery scenario: a SAN-class shared
	// store with enough channels that all workers acquire data in
	// parallel. On the serialized blade NFS the copy phase staggers the
	// workers so much that a victim's recovery work hides in the
	// stragglers' shadow; in lockstep, recovery always lands on the
	// critical path and the wall-time delta is the recovery cost itself.
	// Staging goes to IDE-class node-local disks (the paper's era), which
	// is exactly the medium mpiBLAST must re-write during recovery.
	shared := vfs.Profile{Name: "san", Latency: 1e-3, Bandwidth: 60e6, Channels: 32}
	staging := vfs.Profile{Name: "ide", Latency: 8e-3, Bandwidth: 20e6, Channels: 1}
	nodes, err := vfs.Cluster(procs, shared, &staging)
	if err != nil {
		return engine.RunResult{}, nil, err
	}
	seqs, err := workload.SynthesizeDB(l.DB)
	if err != nil {
		return engine.RunResult{}, nil, err
	}
	if _, err := formatdb.Format(nodes[0].Shared, "nr", seqs, formatdb.Config{
		Title: "synthetic nr", Kind: l.DB.Kind,
	}); err != nil {
		return engine.RunResult{}, nil, err
	}
	queries, err := l.queries(faultQueryBytes)
	if err != nil {
		return engine.RunResult{}, nil, err
	}
	// Natural partitioning: one fragment per worker, so the victim loses
	// exactly one partition and the recovery cost is a single clean
	// re-acquire + re-search in both engines.
	nFrags := procs - 1
	if eng == "mpi" {
		if _, err := mpiblast.PrepareFragments(nodes[0].Shared, "nr", nFrags); err != nil {
			return engine.RunResult{}, nil, err
		}
	}
	if ioPlan != nil {
		// Schedule the plan relative to the RUN's first shared-store access:
		// FirstOp in the plan is run-relative, so shift it past the accesses
		// setup (formatdb, fragment prep) already charged. Injection after
		// setup keeps every faulted ordinal inside the measured run.
		p := *ioPlan
		ops, _, _ := nodes[0].Shared.Stats()
		p.FirstOp += ops
		if err := nodes[0].Shared.InjectFaults(p); err != nil {
			return engine.RunResult{}, nil, err
		}
	}
	job := &engine.Job{
		DBBase:     "nr",
		Queries:    queries,
		Options:    l.Options,
		OutputPath: "results.out",
		Fragments:  nFrags,
	}
	cfg := mpi.Config{Cost: l.Cost, Faults: faults}
	var res engine.RunResult
	switch eng {
	case "mpi":
		res, err = mpiblast.RunOpts(nodes, procs, cfg, job, mpiblast.Options{})
	case "pio":
		// Arm the recovery protocol in the baseline too, so the overhead
		// isolates recovery work rather than protocol presence.
		res, err = core.RunConfig(nodes, procs, cfg, job, core.Options{FaultTolerant: true})
	default:
		err = fmt.Errorf("experiments: unknown engine %q", eng)
	}
	if err != nil {
		return engine.RunResult{}, nil, err
	}
	out, err := nodes[0].Shared.ReadFile(job.OutputPath)
	if err != nil {
		return engine.RunResult{}, nil, err
	}
	return res, out, nil
}

// Faults measures failure recovery on both engines (§3.1's operational
// argument, extended to run time): a fault-free baseline fixes the crash
// time at mid-search, then worker procs−1 is crashed there and the run must
// still produce byte-identical output. The recovery-cost gap is the point:
// pioBLAST re-issues the dead worker's VIRTUAL partition (offset ranges
// into the global database), while mpiBLAST's replacement worker must
// re-copy the physical fragment files before re-searching. A second pair of
// rows ("mpi+io"/"pio+io") injects transient errors into the shared store
// instead: both engines must absorb the vfs retry/backoff latency with
// byte-identical output, and the retry totals surface in the row.
func Faults(lab *Lab) ([]FaultRow, error) {
	const procs = 8
	// The oracle: the sequential engine's output on the same job.
	oracleFS := vfs.MustNew(vfs.RAMDisk())
	seqs, err := workload.SynthesizeDB(lab.DB)
	if err != nil {
		return nil, err
	}
	if _, err := formatdb.Format(oracleFS, "nr", seqs, formatdb.Config{
		Title: "synthetic nr", Kind: lab.DB.Kind,
	}); err != nil {
		return nil, err
	}
	queries, err := lab.queries(faultQueryBytes)
	if err != nil {
		return nil, err
	}
	oracleJob := &engine.Job{
		DBBase: "nr", Queries: queries, Options: lab.Options, OutputPath: "results.out",
	}
	if err := engine.RunSequential(oracleFS, oracleJob); err != nil {
		return nil, err
	}
	oracle, err := oracleFS.ReadFile(oracleJob.OutputPath)
	if err != nil {
		return nil, err
	}

	var rows []FaultRow
	for _, eng := range []string{"mpi", "pio"} {
		free, freeOut, err := lab.runFaultSpec(eng, procs, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("faults %s baseline: %w", eng, err)
		}
		if !bytes.Equal(freeOut, oracle) {
			return nil, fmt.Errorf("faults %s baseline: output differs from the sequential oracle", eng)
		}
		// Crash the last worker at 75% of the pre-output span (copy + input
		// + search): late enough that its data acquisition is sunk cost —
		// crashing inside the serialized copy/input window would REFUND
		// storage contention to the survivors and mask the recovery cost —
		// but still inside its search work.
		at := 0.75 * (free.Wall - free.Phase.Output)
		crashed, crashedOut, err := lab.runFaultSpec(eng, procs, []mpi.Fault{
			{Rank: procs - 1, At: at, Kind: mpi.FaultCrash},
		}, nil)
		if err != nil {
			return nil, fmt.Errorf("faults %s crash: %w", eng, err)
		}
		rows = append(rows, FaultRow{
			Engine:    eng,
			Procs:     procs,
			CrashAt:   at,
			FaultFree: free.Wall,
			Faulted:   crashed.Wall,
			Overhead:  crashed.Wall - free.Wall,
			Identical: bytes.Equal(crashedOut, oracle),
			Result:    crashed,
		})
		// Transient I/O errors on the shared store (retry + exponential
		// backoff in the vfs layer): output must be unchanged, the cost is
		// pure latency, and the retry/backoff totals surface through
		// engine.RunResult's I/O fault stats.
		ioFaulted, ioOut, err := lab.runFaultSpec(eng, procs, nil, &vfs.FaultPlan{
			FirstOp: 3, Every: 5, Count: 4, Failures: 2, Backoff: 0.002,
		})
		if err != nil {
			return nil, fmt.Errorf("faults %s io: %w", eng, err)
		}
		rows = append(rows, FaultRow{
			Engine:    eng + "+io",
			Procs:     procs,
			FaultFree: free.Wall,
			Faulted:   ioFaulted.Wall,
			Overhead:  ioFaulted.Wall - free.Wall,
			Identical: bytes.Equal(ioOut, oracle),
			Result:    ioFaulted,
		})
	}
	return rows, nil
}

// PrintFaultRows renders the fault-tolerance comparison: worker crashes
// and transient-I/O schedules, with the vfs retry/backoff stats surfaced.
func PrintFaultRows(w io.Writer, rows []FaultRow) {
	fmt.Fprintf(w, "\n== Fault tolerance: worker crash at mid-search + transient I/O errors ==\n")
	fmt.Fprintf(w, "%-8s %5s %10s %10s %10s %10s %10s %9s %9s %9s\n",
		"engine", "procs", "crashAt", "faultfree", "faulted", "overhead", "identical",
		"ioFaults", "ioRetries", "backoff")
	byEngine := make(map[string]FaultRow, len(rows))
	for _, r := range rows {
		byEngine[r.Engine] = r
		fmt.Fprintf(w, "%-8s %5d %10.3f %10.3f %10.3f %10.3f %10v %9d %9d %9.4f\n",
			r.Engine, r.Procs, r.CrashAt, r.FaultFree, r.Faulted, r.Overhead, r.Identical,
			r.Result.IOFaultedOps, r.Result.IORetries, r.Result.IOBackoff)
	}
	mpiRow, mpiOK := byEngine["mpi"]
	pioRow, pioOK := byEngine["pio"]
	if mpiOK && pioOK {
		fmt.Fprintf(w, "recovery-cost gap: mpi re-copies the physical fragment (%.3fs overhead), pio re-issues offsets (%.3fs)\n",
			mpiRow.Overhead, pioRow.Overhead)
	}
}

// PrepRow is one row of the operational-overhead comparison.
type PrepRow struct {
	Label    string
	Workers  int
	Files    int
	Bytes    int64
	NeedsRun bool // whether a (re-)partitioning run is needed for this worker count
}

// PrepCost quantifies §3.1's operational argument: the baseline needs the
// database pre-partitioned into (at least) as many physical fragments as
// workers — a fresh set of files whenever the worker count outgrows the
// fragment count — while pioBLAST always uses the ONE set of global files.
func PrepCost(lab *Lab) ([]PrepRow, error) {
	seqs, err := workload.SynthesizeDB(lab.DB)
	if err != nil {
		return nil, err
	}
	countFiles := func(fs *vfs.FS, prefix string) (int, int64) {
		files, bytes := 0, int64(0)
		for _, path := range fs.List() {
			if !strings.HasPrefix(path, prefix) {
				continue
			}
			data, err := fs.ReadFile(path)
			if err == nil {
				files++
				bytes += int64(len(data))
			}
		}
		return files, bytes
	}
	var rows []PrepRow
	for _, workers := range []int{15, 31, 61} {
		fs := vfs.MustNew(vfs.RAMDisk())
		db, err := formatdb.Format(fs, "nr", seqs, formatdb.Config{Kind: lab.DB.Kind, Title: "prep"})
		if err != nil {
			return nil, err
		}
		if _, err := db.PhysicalFragment(fs, workers); err != nil {
			return nil, err
		}
		files, bytes := countFiles(fs, "nr.frag")
		rows = append(rows, PrepRow{
			Label: "mpiformatdb", Workers: workers, Files: files, Bytes: bytes, NeedsRun: true,
		})
	}
	// pioBLAST: one global set, any worker count.
	fs := vfs.MustNew(vfs.RAMDisk())
	if _, err := formatdb.Format(fs, "nr", seqs, formatdb.Config{Kind: lab.DB.Kind, Title: "prep"}); err != nil {
		return nil, err
	}
	files, bytes := countFiles(fs, "nr")
	rows = append(rows, PrepRow{Label: "pioBLAST-global", Workers: 0, Files: files, Bytes: bytes})
	return rows, nil
}

// PrintPrepRows renders the operational-overhead table.
func PrintPrepRows(w io.Writer, rows []PrepRow) {
	fmt.Fprintf(w, "\n== Operational overhead (§3.1): pre-partitioning vs global files ==\n")
	fmt.Fprintf(w, "%-18s %8s %7s %10s %s\n", "scheme", "workers", "files", "bytes", "re-run needed when workers grow?")
	for _, r := range rows {
		workers := "any"
		if r.Workers > 0 {
			workers = fmt.Sprintf("%d", r.Workers)
		}
		rerun := "no — one global set"
		if r.NeedsRun {
			rerun = "yes — fragments are per-count"
		}
		fmt.Fprintf(w, "%-18s %8s %7d %10d %s\n", r.Label, workers, r.Files, r.Bytes, rerun)
	}
}

// --- printing ---------------------------------------------------------------

// PrintRows renders rows as the paper-style table: one line per run with
// the phase split, total, and search share.
func PrintRows(w io.Writer, title string, rows []Row) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	fmt.Fprintf(w, "%-16s %5s %5s %8s | %8s %8s %8s %8s %8s | %8s %7s %10s %9s\n",
		"engine", "procs", "frags", "queryB",
		"copy", "input", "search", "output", "other", "total", "srch%", "outBytes", "commKB")
	for _, r := range rows {
		b := r.Result.Phase
		fmt.Fprintf(w, "%-16s %5d %5d %8d | %8.2f %8.2f %8.2f %8.2f %8.2f | %8.2f %6.1f%% %10d %9.0f\n",
			r.Engine, r.Procs, r.Fragments, r.QueryBytes,
			b.Copy, b.Input, b.Search, b.Output, b.Other,
			r.Result.Wall, r.Result.SearchFraction()*100, r.OutputBytes,
			float64(r.Result.CommBytes)/1024)
	}
}

// Spec names one row-shaped experiment. The catalogue lives in Specs so
// every consumer (All, cmd/benchsuite, suite artifacts) iterates the same
// list in the same presentation order.
type Spec struct {
	Name  string
	Title string
	Run   func(*Lab) ([]Row, error)
}

// Specs returns the row-shaped experiment catalogue in presentation order.
func Specs() []Spec {
	return []Spec{
		{"fig1a", "Figure 1(a): mpiBLAST time distribution", Fig1a},
		{"fig1b", "Figure 1(b): fragment-count sensitivity (32 procs)", Fig1b},
		{"table1", "Table 1: phase breakdown at 32 processes", Table1},
		{"table2", "Table 2: query size vs output size", Table2},
		{"fig3a", "Figure 3(a): node scalability (Altix/XFS)", Fig3a},
		{"fig3b", "Figure 3(b): output scalability at 62 processes", Fig3b},
		{"fig4", "Figure 4: node scalability (blade/NFS)", Fig4},
		{"ablations", "Ablations: output mode, pruning, batching, granularity", Ablations},
		{"readpath", "Read path: collective input reads + input/search overlap", ReadPath},
		{"hetero", "Heterogeneous cluster: static vs dynamic partitioning", Hetero},
	}
}

// All runs every experiment and prints them — the benchsuite entry point.
func All(w io.Writer, lab *Lab) error {
	for _, exp := range Specs() {
		rows, err := exp.Run(lab)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.Title, err)
		}
		PrintRows(w, exp.Title, rows)
	}
	prep, err := PrepCost(lab)
	if err != nil {
		return fmt.Errorf("prep cost: %w", err)
	}
	PrintPrepRows(w, prep)
	faults, err := Faults(lab)
	if err != nil {
		return fmt.Errorf("faults: %w", err)
	}
	PrintFaultRows(w, faults)
	return nil
}
