package experiments

import "testing"

// TestFaults verifies the fault-tolerance claims end to end. Crash rows: a
// single worker crash at mid-search leaves both engines' outputs
// byte-identical to the sequential oracle, and pioBLAST's recovery
// (re-issued offset ranges) costs strictly less than mpiBLAST's (re-copied
// fragment files). I/O rows: transient shared-store errors are absorbed as
// pure retry/backoff latency — identical output, fault stats surfaced.
func TestFaults(t *testing.T) {
	lab := DefaultLab()
	rows, err := Faults(&lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 rows (crash + io per engine), got %d", len(rows))
	}
	byEngine := map[string]FaultRow{}
	for _, r := range rows {
		byEngine[r.Engine] = r
		t.Logf("%s: crashAt=%.3f faultfree=%.3f faulted=%.3f overhead=%.3f identical=%v ioFaults=%d ioRetries=%d backoff=%.4f",
			r.Engine, r.CrashAt, r.FaultFree, r.Faulted, r.Overhead, r.Identical,
			r.Result.IOFaultedOps, r.Result.IORetries, r.Result.IOBackoff)
		if !r.Identical {
			t.Errorf("%s: faulted-run output differs from the sequential oracle", r.Engine)
		}
		if r.Overhead <= 0 {
			t.Errorf("%s: absorbing faults should cost something, overhead=%.3f", r.Engine, r.Overhead)
		}
	}
	mpiRow, pioRow := byEngine["mpi"], byEngine["pio"]
	if pioRow.Overhead >= mpiRow.Overhead {
		t.Errorf("pio recovery overhead %.3f should be strictly below mpi's %.3f (virtual partitions are cheap to re-issue)",
			pioRow.Overhead, mpiRow.Overhead)
	}
	for _, eng := range []string{"mpi", "pio"} {
		crash, io := byEngine[eng], byEngine[eng+"+io"]
		if crash.Result.IOFaultedOps != 0 {
			t.Errorf("%s crash row reports %d I/O faults, want 0", eng, crash.Result.IOFaultedOps)
		}
		if got := io.Result.IOFaultedOps; got != 4 {
			t.Errorf("%s+io: faulted ops = %d, want the plan's 4", eng, got)
		}
		if want := 2 * io.Result.IOFaultedOps; io.Result.IORetries != want {
			t.Errorf("%s+io: retries = %d, want %d (2 failures per faulted op)", eng, io.Result.IORetries, want)
		}
		if io.Result.IOBackoff <= 0 {
			t.Errorf("%s+io: no backoff time charged", eng)
		}
	}
}
