package experiments

import "testing"

// TestFaults verifies the failure-recovery claim end to end: a single
// worker crash at mid-search leaves both engines' outputs byte-identical
// to the sequential oracle, and pioBLAST's recovery (re-issued offset
// ranges) costs strictly less than mpiBLAST's (re-copied fragment files).
func TestFaults(t *testing.T) {
	lab := DefaultLab()
	rows, err := Faults(&lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	byEngine := map[string]FaultRow{}
	for _, r := range rows {
		byEngine[r.Engine] = r
		t.Logf("%s: crashAt=%.3f faultfree=%.3f crashed=%.3f overhead=%.3f identical=%v",
			r.Engine, r.CrashAt, r.FaultFree, r.Crashed, r.Overhead, r.Identical)
		if !r.Identical {
			t.Errorf("%s: crashed-run output differs from the sequential oracle", r.Engine)
		}
		if r.Overhead <= 0 {
			t.Errorf("%s: recovery should cost something, overhead=%.3f", r.Engine, r.Overhead)
		}
	}
	mpiRow, pioRow := byEngine["mpi"], byEngine["pio"]
	if pioRow.Overhead >= mpiRow.Overhead {
		t.Errorf("pio recovery overhead %.3f should be strictly below mpi's %.3f (virtual partitions are cheap to re-issue)",
			pioRow.Overhead, mpiRow.Overhead)
	}
}
