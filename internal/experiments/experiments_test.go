package experiments

// Shape tests: every qualitative claim the paper's evaluation makes must
// hold in the regenerated data. These run the actual experiments, so they
// take a few seconds each; `go test -short` skips the heavier ones.

import (
	"bytes"
	"strings"
	"testing"
)

func lab() *Lab {
	l := DefaultLab()
	return &l
}

func TestTable1Shapes(t *testing.T) {
	rows, err := Table1(lab())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	mpi, pio := rows[0], rows[1]
	if mpi.Engine != "mpi" || pio.Engine != "pio" {
		t.Fatalf("row order wrong: %s %s", mpi.Engine, pio.Engine)
	}
	// Paper: identical inputs produce identical outputs.
	if mpi.OutputBytes != pio.OutputBytes {
		t.Fatalf("output sizes differ: %d vs %d", mpi.OutputBytes, pio.OutputBytes)
	}
	// Paper: pioBLAST total 307.9 s vs mpiBLAST 1354.1 s (4.4×); require a
	// clear win in the same direction.
	speedup := mpi.Result.Wall / pio.Result.Wall
	if speedup < 2.5 {
		t.Fatalf("Table 1 speedup only %.2f×, want ≥2.5×", speedup)
	}
	// Paper: mpiBLAST output (1007.2 s) dwarfs its search (318.5 s).
	if mpi.Result.Phase.Output < 2*mpi.Result.Phase.Search {
		t.Fatalf("baseline output (%.2f) should dominate search (%.2f)",
			mpi.Result.Phase.Output, mpi.Result.Phase.Search)
	}
	// Paper: pioBLAST spends 91.5%% of its time searching; require ≥75%%.
	if pio.Result.SearchFraction() < 0.75 {
		t.Fatalf("pio search share %.1f%%, want ≥75%%", pio.Result.SearchFraction()*100)
	}
	// Paper: the copy stage disappears (17.1 s → 0) and input is sub-second.
	if pio.Result.Phase.Copy != 0 {
		t.Fatal("pioBLAST has a copy phase")
	}
	if mpi.Result.Phase.Copy <= 0 {
		t.Fatal("baseline lost its copy phase")
	}
	if pio.Result.Phase.Input <= 0 || pio.Result.Phase.Input > 0.2*pio.Result.Wall {
		t.Fatalf("pio input phase %.3f out of expected band", pio.Result.Phase.Input)
	}
}

func TestMessageVolumeReduction(t *testing.T) {
	// §3.2: pioBLAST's metadata-only submissions move far fewer bytes
	// through the network than the baseline's full-alignment submissions
	// plus per-hit fetch round trips.
	rows, err := Table1(lab())
	if err != nil {
		t.Fatal(err)
	}
	mpi, pio := rows[0], rows[1]
	if pio.Result.CommBytes <= 0 || mpi.Result.CommBytes <= 0 {
		t.Fatalf("comm accounting missing: %d / %d", mpi.Result.CommBytes, pio.Result.CommBytes)
	}
	ratio := float64(mpi.Result.CommBytes) / float64(pio.Result.CommBytes)
	if ratio < 3 {
		t.Fatalf("baseline should move ≫ protocol bytes; ratio %.2f (mpi %d, pio %d)",
			ratio, mpi.Result.CommBytes, pio.Result.CommBytes)
	}
	// The shuffle volume belongs almost entirely to pioBLAST's collective
	// output (the baseline writes from the master, no shuffle).
	if pio.Result.ShuffleBytes <= mpi.Result.ShuffleBytes {
		t.Fatalf("pio shuffle bytes (%d) should exceed baseline's (%d)",
			pio.Result.ShuffleBytes, mpi.Result.ShuffleBytes)
	}
}

func TestFig1aSearchShareFalls(t *testing.T) {
	rows, err := Fig1a(lab())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: the search share falls monotonically (95.6% → 70.7%) as
	// processes increase.
	for i := 1; i < len(rows); i++ {
		if rows[i].Result.SearchFraction() >= rows[i-1].Result.SearchFraction() {
			t.Fatalf("search share not falling: %.1f%% → %.1f%% at %d procs",
				rows[i-1].Result.SearchFraction()*100,
				rows[i].Result.SearchFraction()*100, rows[i].Procs)
		}
	}
	if rows[0].Result.SearchFraction() < 0.6 {
		t.Fatalf("at 16 procs search should dominate, got %.1f%%",
			rows[0].Result.SearchFraction()*100)
	}
}

func TestFig1bFragmentCountHurts(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	rows, err := Fig1b(lab())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: overall time degrades significantly as fragments grow, and
	// both search and non-search time rise.
	for i := 1; i < len(rows); i++ {
		if rows[i].Result.Wall <= rows[i-1].Result.Wall {
			t.Fatalf("total not rising with fragments: %.2f at %d, %.2f at %d",
				rows[i-1].Result.Wall, rows[i-1].Fragments,
				rows[i].Result.Wall, rows[i].Fragments)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.Result.Phase.Search <= first.Result.Phase.Search {
		t.Fatal("search time did not rise with fragment count")
	}
	if last.Result.NonSearch() <= first.Result.NonSearch() {
		t.Fatal("non-search time did not rise with fragment count")
	}
	// Outputs identical regardless of fragmentation.
	for _, r := range rows[1:] {
		if r.OutputBytes != rows[0].OutputBytes {
			t.Fatal("fragment count changed the output")
		}
	}
}

func TestTable2OutputScalesWithQuerySize(t *testing.T) {
	rows, err := Table2(lab())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 26K→11M, 77K→47M, 159K→96M, 289K→153M — monotone, roughly
	// proportional.
	for i := 1; i < len(rows); i++ {
		if rows[i].OutputBytes <= rows[i-1].OutputBytes {
			t.Fatalf("output not growing with query size: %d → %d",
				rows[i-1].OutputBytes, rows[i].OutputBytes)
		}
	}
	// Rough proportionality: bytes-per-query-byte within 3× across sizes.
	first := float64(rows[0].OutputBytes) / float64(rows[0].QueryBytes)
	last := float64(rows[len(rows)-1].OutputBytes) / float64(rows[len(rows)-1].QueryBytes)
	if ratio := last / first; ratio > 3 || ratio < 1.0/3 {
		t.Fatalf("output/query ratio drifted %.1f×", ratio)
	}
}

func TestFig3aShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	rows, err := Fig3a(lab())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Row{}
	for _, r := range rows {
		byKey[r.Engine+itoa(r.Procs)] = r
	}
	// Paper: past 31 workers the baseline's growing output time offsets
	// the shrinking search time and the TOTAL grows.
	if byKey["mpi62"].Result.Wall <= byKey["mpi32"].Result.Wall {
		t.Fatalf("baseline crossover missing: %.2f at 32, %.2f at 62",
			byKey["mpi32"].Result.Wall, byKey["mpi62"].Result.Wall)
	}
	// Paper: pioBLAST keeps improving 32 → 62 (1.86× there).
	if byKey["pio62"].Result.Wall >= byKey["pio32"].Result.Wall {
		t.Fatalf("pioBLAST stopped scaling: %.2f at 32, %.2f at 62",
			byKey["pio32"].Result.Wall, byKey["pio62"].Result.Wall)
	}
	// Paper: at 61 workers the baseline searches only ~10% of the time
	// while pioBLAST stays search-dominated.
	if byKey["mpi62"].Result.SearchFraction() > 0.3 {
		t.Fatalf("baseline at 62 procs should be output-bound, search=%.1f%%",
			byKey["mpi62"].Result.SearchFraction()*100)
	}
	if byKey["pio62"].Result.SearchFraction() < 0.5 {
		t.Fatalf("pio at 62 procs should stay search-dominated, search=%.1f%%",
			byKey["pio62"].Result.SearchFraction()*100)
	}
	// pioBLAST beats the baseline at every process count.
	for _, p := range []int{4, 8, 16, 32, 62} {
		if byKey["pio"+itoa(p)].Result.Wall >= byKey["mpi"+itoa(p)].Result.Wall {
			t.Fatalf("pio not faster at %d procs", p)
		}
	}
}

func TestFig3bShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	rows, err := Fig3b(lab())
	if err != nil {
		t.Fatal(err)
	}
	var mpiRows, pioRows []Row
	for _, r := range rows {
		if r.Engine == "mpi" {
			mpiRows = append(mpiRows, r)
		} else {
			pioRows = append(pioRows, r)
		}
	}
	// Paper: both engines' totals scale roughly with output size, and
	// pioBLAST's non-search time grows far more slowly than the
	// baseline's.
	mpiGrowth := mpiRows[len(mpiRows)-1].Result.NonSearch() / mpiRows[0].Result.NonSearch()
	pioGrowth := pioRows[len(pioRows)-1].Result.NonSearch() / pioRows[0].Result.NonSearch()
	if pioGrowth >= mpiGrowth {
		t.Fatalf("pio non-search grew %.1f×, baseline %.1f× — wrong order", pioGrowth, mpiGrowth)
	}
	for i := range mpiRows {
		if pioRows[i].Result.Wall >= mpiRows[i].Result.Wall {
			t.Fatalf("pio not faster at output size %d", pioRows[i].QueryBytes)
		}
	}
}

func TestFig4NFSShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	rows, err := Fig4(lab())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Row{}
	for _, r := range rows {
		byKey[r.Engine+itoa(r.Procs)] = r
	}
	// Paper: on NFS both engines' search shares deteriorate with scale,
	// pioBLAST's from 93%→64%, mpiBLAST's from 50%→14% — pio declines but
	// stays clearly above the baseline throughout.
	for _, p := range []int{4, 8, 16, 32} {
		pio := byKey["pio"+itoa(p)].Result.SearchFraction()
		mpi := byKey["mpi"+itoa(p)].Result.SearchFraction()
		if pio <= mpi {
			t.Fatalf("at %d procs pio search share (%.1f%%) not above baseline (%.1f%%)",
				p, pio*100, mpi*100)
		}
	}
	if byKey["pio32"].Result.SearchFraction() >= byKey["pio4"].Result.SearchFraction() {
		t.Fatal("pio search share should deteriorate on NFS")
	}
	// Paper: the baseline's copy stage gets much more expensive on NFS as
	// processes are added.
	if byKey["mpi32"].Result.Phase.Copy <= byKey["mpi4"].Result.Phase.Copy {
		t.Fatal("baseline copy time should grow with contention on NFS")
	}
}

func TestHeteroDynamicWins(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	rows, err := Hetero(lab())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	static, dynamic := rows[0], rows[1]
	if !strings.Contains(static.Engine, "static") || !strings.Contains(dynamic.Engine, "dynamic") {
		t.Fatalf("row labels wrong: %s %s", static.Engine, dynamic.Engine)
	}
	if dynamic.Result.Wall >= static.Result.Wall {
		t.Fatalf("dynamic (%.2f) not faster than static (%.2f) on heterogeneous cluster",
			dynamic.Result.Wall, static.Result.Wall)
	}
	if dynamic.OutputBytes != static.OutputBytes {
		t.Fatal("assignment policy changed the output")
	}
}

func TestAblationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	rows, err := Ablations(lab())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r.Label] = r
	}
	// §3.3: collective beats independent output dramatically on NFS.
	if byName["pio-indep-nfs"].Result.Phase.Output < 2*byName["pio-coll-nfs"].Result.Phase.Output {
		t.Fatalf("independent NFS output (%.2f) should be ≫ collective (%.2f)",
			byName["pio-indep-nfs"].Result.Phase.Output,
			byName["pio-coll-nfs"].Result.Phase.Output)
	}
	// §5: batching reduces (or at least never hurts) output time.
	if byName["pio-batch16"].Result.Phase.Output > byName["pio-collective"].Result.Phase.Output*1.05 {
		t.Fatal("query batching made output slower")
	}
	// §5 granularity trade-off: very fine static partitioning costs time.
	if byName["pio-frag248"].Result.Wall <= byName["pio-collective"].Result.Wall {
		t.Fatal("248 static fragments should be slower than natural partitioning")
	}
	// Early pruning never changes the bytes.
	if byName["pio-cap10"].OutputBytes != byName["pio-cap10-prune"].OutputBytes {
		t.Fatal("early pruning changed the output")
	}
	// All full-result variants agree on output size.
	if byName["pio-collective"].OutputBytes != byName["pio-independent"].OutputBytes {
		t.Fatal("output mode changed the output size")
	}
}

func TestPrepCost(t *testing.T) {
	rows, err := PrepCost(lab())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// The baseline's file count grows ~3 files per fragment; pioBLAST has
	// exactly 3 global files regardless of worker count.
	if rows[0].Files != 3*15 || rows[2].Files != 3*61 {
		t.Fatalf("fragment file counts wrong: %d / %d", rows[0].Files, rows[2].Files)
	}
	pio := rows[3]
	if pio.Files != 3 || pio.NeedsRun {
		t.Fatalf("pio global set wrong: %+v", pio)
	}
	// Fragmentation duplicates the database (global + fragments on disk).
	if rows[0].Bytes <= pio.Bytes/2 {
		t.Fatalf("fragment volume implausible: %d vs global %d", rows[0].Bytes, pio.Bytes)
	}
	var buf bytes.Buffer
	PrintPrepRows(&buf, rows)
	if !strings.Contains(buf.String(), "one global set") {
		t.Fatalf("prep table malformed:\n%s", buf.String())
	}
}

func TestPrintRows(t *testing.T) {
	rows, err := Table2(lab())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintRows(&buf, "test title", rows)
	out := buf.String()
	if !strings.Contains(out, "test title") || !strings.Contains(out, "srch%") {
		t.Fatalf("print format wrong:\n%s", out)
	}
	if strings.Count(out, "\n") < len(rows)+2 {
		t.Fatal("missing rows in output")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestReadPathShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	rows, err := ReadPath(lab())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r.Label] = r
	}
	indep, coll := byName["pio-indep-read"], byName["pio-coll-read"]
	// §3 read side: on the strided NFS platform, two-phase collective
	// reads must strictly reduce the input phase — aggregated sieved
	// accesses instead of per-extent latency — and with it the makespan.
	if coll.Result.Phase.Input >= indep.Result.Phase.Input {
		t.Fatalf("collective input %.4f not below independent %.4f",
			coll.Result.Phase.Input, indep.Result.Phase.Input)
	}
	if coll.Result.Phase.Input > 0.5*indep.Result.Phase.Input {
		t.Fatalf("collective input %.4f should be well under half of independent %.4f",
			coll.Result.Phase.Input, indep.Result.Phase.Input)
	}
	if coll.Result.Wall >= indep.Result.Wall {
		t.Fatalf("collective wall %.4f not below independent %.4f",
			coll.Result.Wall, indep.Result.Wall)
	}
	// Input/search overlap: prefetching shrinks both the exposed input
	// time and the makespan where the storage has spare parallelism.
	syncRow, pre := byName["pio-sync-read"], byName["pio-prefetch2"]
	if pre.Result.Phase.Input >= syncRow.Result.Phase.Input {
		t.Fatalf("prefetch input %.4f not below synchronous %.4f (nothing hidden)",
			pre.Result.Phase.Input, syncRow.Result.Phase.Input)
	}
	if pre.Result.Wall >= syncRow.Result.Wall {
		t.Fatalf("prefetch wall %.4f not below synchronous %.4f",
			pre.Result.Wall, syncRow.Result.Wall)
	}
	// The pipelined greedy protocol hides its reads too. (Walls are not
	// strictly comparable: prefetching shifts request arrival order, so
	// the greedy assignment itself changes.)
	dyn, dynPre := byName["pio-dyn"], byName["pio-dyn-prefetch"]
	if dynPre.Result.Phase.Input >= dyn.Result.Phase.Input {
		t.Fatalf("dynamic prefetch input %.4f not below synchronous %.4f",
			dynPre.Result.Phase.Input, dyn.Result.Phase.Input)
	}
	// Every variant produces the same report.
	for _, r := range rows {
		if r.OutputBytes != indep.OutputBytes {
			t.Fatalf("%s changed the output size: %d vs %d", r.Label, r.OutputBytes, indep.OutputBytes)
		}
	}
}
