package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"

	"parblast/internal/engine"
	"parblast/internal/mpi"
	"parblast/internal/simtime"
)

// The mergescale experiment isolates the result-merge phase and scales it
// to rank counts no full simulated search could reach on a laptop: every
// worker synthesizes a deterministic per-query metadata set (standing in
// for its search results), then the master collects and merges it either
// flat — one message per worker, every ingest charged to the master's
// clock, the exact bottleneck §4's scalability study runs into — or
// hierarchically via TreeReduce, where group pre-merges run on the
// workers' clocks in parallel and the master only folds its own children's
// pre-merged bundles. The selection layout goes back down the same way
// (per-worker sends vs one TreeBcast). The merged layout must be
// byte-identical across every variant; the number that matters is the
// master-clock span of the merge + selection dispatch.

// MergeScaleRanks is the default rank sweep.
var MergeScaleRanks = []int{32, 128, 512, 1024}

// MergeScaleFanouts is the default fan-out sweep; 0 is the flat baseline.
var MergeScaleFanouts = []int{0, 2, 4, 8}

// MergeScaleRow is one (ranks, fanout) measurement.
type MergeScaleRow struct {
	Ranks  int
	Fanout int // 0 = flat master-ingest baseline
	// MasterMergeS is the master-clock span of collect + merge + selection
	// dispatch: the serial section the tree merge is meant to shrink.
	MasterMergeS float64
	// WallS is the slowest rank's clock at exit.
	WallS float64
	// OutputBytes is the selected output volume (sum of chosen hit
	// blocks) — equal across variants by construction, recorded so the
	// speedup is read at equal output bytes.
	OutputBytes int64
	// Identical reports whether the merged layout is byte-identical to
	// the flat baseline's at the same rank count.
	Identical bool
}

// Synthetic workload shape. Hit counts vary per (worker, query) so the
// per-query candidate lists are ragged; the cap is far below the total so
// every interior merge actually selects.
const (
	msQueries    = 4
	msMaxTargets = 16
	msTagMeta    = 11
	msTagSel     = 12
)

// msWorkerMetas synthesizes worker w's per-query hit metadata. OIDs are
// globally unique (disjoint per worker), E-values are drawn from a small
// set so cross-worker ties exercise the (E-value, score, OID) total order.
func msWorkerMetas(w int) []engine.QueryMeta {
	rng := rand.New(rand.NewSource(int64(w)*7919 + 17))
	evalues := []float64{1e-30, 1e-12, 1e-7, 1e-3, 0.5}
	metas := make([]engine.QueryMeta, 0, msQueries)
	for q := 0; q < msQueries; q++ {
		nh := 4 + rng.Intn(5)
		hits := make([]engine.HitMeta, 0, nh)
		for h := 0; h < nh; h++ {
			hits = append(hits, engine.HitMeta{
				OID:       w*10000 + q*100 + h,
				Worker:    w,
				Score:     40 + rng.Intn(200),
				EValue:    evalues[rng.Intn(len(evalues))],
				BlockSize: int64(200 + rng.Intn(400)),
			})
		}
		metas = append(metas, engine.QueryMeta{
			QueryIndex: q,
			Fragment:   w,
			Hits:       engine.MergeHits(hits, msMaxTargets),
		})
	}
	return metas
}

// msLayoutBytes sums the selected block sizes of a merged layout.
func msLayoutBytes(metas []engine.QueryMeta) int64 {
	var total int64
	for _, qm := range metas {
		for _, h := range qm.Hits {
			total += h.BlockSize
		}
	}
	return total
}

// msCombiner charges one message-ingest plus per-item merge work to the
// combining rank's clock — the same accounting the flat master pays, just
// spread across the tree.
func msCombiner(r *mpi.Rank) func(a, b []byte) []byte {
	return func(a, b []byte) []byte {
		am, err := engine.DecodeQueryMetas(a)
		if err != nil {
			panic(err)
		}
		bm, err := engine.DecodeQueryMetas(b)
		if err != nil {
			panic(err)
		}
		cost := r.Cost()
		r.Advance(cost.ResultMsgCost + float64(engine.MergeCost(am, bm))*cost.MergeItemCost)
		return engine.EncodeQueryMetas(engine.CombineQueryMetas(am, bm, msMaxTargets))
	}
}

// msRun executes one (ranks, fanout) cell and returns the merged layout,
// the master-clock merge span, and the wall time.
func msRun(cost simtime.CostModel, ranks, fanout int) (layout []byte, mergeS, wallS float64, err error) {
	body := func(r *mpi.Rank) error {
		n := r.Size()
		if r.ID() == 0 {
			start := r.Clock().Now()
			var sel []byte
			if fanout == 0 {
				// Flat baseline: the master ingests every worker's
				// message and pays the whole merge on its own clock.
				var merged []engine.QueryMeta
				for w := 1; w < n; w++ {
					data, _, _ := r.Recv(w, msTagMeta)
					metas, derr := engine.DecodeQueryMetas(data)
					if derr != nil {
						return derr
					}
					r.Advance(cost.ResultMsgCost +
						float64(engine.MergeCost(merged, metas))*cost.MergeItemCost)
					merged = engine.CombineQueryMetas(merged, metas, msMaxTargets)
				}
				sel = engine.EncodeQueryMetas(merged)
				for w := 1; w < n; w++ {
					r.Send(w, msTagSel, sel)
				}
			} else {
				members := make([]int, n)
				for i := range members {
					members[i] = i
				}
				combined, contrib, terr := r.TreeReduce(0, fanout, members,
					engine.EncodeQueryMetas(nil), msCombiner(r))
				if terr != nil {
					return terr
				}
				if len(contrib) != n {
					return fmt.Errorf("mergescale: %d of %d ranks contributed", len(contrib), n)
				}
				sel = combined
				r.TreeBcast(0, fanout, members, sel)
			}
			mergeS = r.Clock().Now() - start
			layout = sel
			return nil
		}
		enc := engine.EncodeQueryMetas(msWorkerMetas(r.ID()))
		if fanout == 0 {
			r.Send(0, msTagMeta, enc)
			sel, _, _ := r.Recv(0, msTagSel)
			if _, derr := engine.DecodeQueryMetas(sel); derr != nil {
				return derr
			}
			return nil
		}
		members := make([]int, r.Size())
		for i := range members {
			members[i] = i
		}
		if _, _, terr := r.TreeReduce(0, fanout, members, enc, msCombiner(r)); terr != nil {
			return terr
		}
		sel := r.TreeBcast(0, fanout, members, nil)
		if _, derr := engine.DecodeQueryMetas(sel); derr != nil {
			return derr
		}
		return nil
	}
	clocks, err := mpi.Run(ranks, cost, body)
	if err != nil {
		return nil, 0, 0, err
	}
	for _, c := range clocks {
		if c.Now() > wallS {
			wallS = c.Now()
		}
	}
	return layout, mergeS, wallS, nil
}

// MergeScale sweeps rank count × merge fan-out. A nil rankCounts runs the
// default sweep; check.sh passes a shrunk list for the smoke run.
func MergeScale(lab *Lab, rankCounts []int) ([]MergeScaleRow, error) {
	if rankCounts == nil {
		rankCounts = MergeScaleRanks
	}
	var rows []MergeScaleRow
	for _, n := range rankCounts {
		var flatLayout []byte
		for _, fanout := range MergeScaleFanouts {
			layout, mergeS, wallS, err := msRun(lab.Cost, n, fanout)
			if err != nil {
				return nil, fmt.Errorf("mergescale n=%d fanout=%d: %w", n, fanout, err)
			}
			merged, err := engine.DecodeQueryMetas(layout)
			if err != nil {
				return nil, fmt.Errorf("mergescale n=%d fanout=%d: bad layout: %w", n, fanout, err)
			}
			if fanout == 0 {
				flatLayout = layout
			}
			rows = append(rows, MergeScaleRow{
				Ranks:        n,
				Fanout:       fanout,
				MasterMergeS: mergeS,
				WallS:        wallS,
				OutputBytes:  msLayoutBytes(merged),
				Identical:    bytes.Equal(layout, flatLayout),
			})
		}
	}
	return rows, nil
}

// MergeSpeedup returns flat-vs-tree master-merge ratios per rank count,
// taking the best tree fan-out at each n.
func MergeSpeedup(rows []MergeScaleRow) map[int]float64 {
	flat := make(map[int]float64)
	best := make(map[int]float64)
	for _, r := range rows {
		if r.Fanout == 0 {
			flat[r.Ranks] = r.MasterMergeS
		} else if b, seen := best[r.Ranks]; !seen || r.MasterMergeS < b {
			best[r.Ranks] = r.MasterMergeS
		}
	}
	out := make(map[int]float64, len(flat))
	for _, r := range rows {
		if r.Fanout != 0 {
			continue
		}
		if b := best[r.Ranks]; b > 0 {
			out[r.Ranks] = flat[r.Ranks] / b
		}
	}
	return out
}

// PrintMergeScaleRows renders the scaling table with per-rank-count
// speedup of the best tree fan-out over flat.
func PrintMergeScaleRows(w io.Writer, rows []MergeScaleRow) {
	fmt.Fprintf(w, "\n== Merge scalability: flat master-ingest vs hierarchical tree merge ==\n")
	fmt.Fprintf(w, "%6s %8s %14s %10s %12s %10s %9s\n",
		"ranks", "fanout", "masterMerge", "wall", "outBytes", "identical", "speedup")
	speedup := MergeSpeedup(rows)
	for _, r := range rows {
		fan := "flat"
		if r.Fanout > 0 {
			fan = fmt.Sprintf("%d", r.Fanout)
		}
		sp := ""
		if r.Fanout == 0 {
			sp = fmt.Sprintf("%8.1fx", speedup[r.Ranks])
		}
		fmt.Fprintf(w, "%6d %8s %13.6fs %9.4fs %12d %10v %9s\n",
			r.Ranks, fan, r.MasterMergeS, r.WallS, r.OutputBytes, r.Identical, sp)
	}
}
