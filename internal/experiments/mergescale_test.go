package experiments

import (
	"bytes"
	"testing"
)

// TestMergeScaleShape: every (ranks, fanout) cell produces a row, every
// tree layout is byte-identical to the flat baseline at the same rank
// count, and the hierarchical merge already beats the flat master-ingest
// at a modest rank count.
func TestMergeScaleShape(t *testing.T) {
	lab := DefaultLab()
	ranks := []int{9, 64}
	rows, err := MergeScale(&lab, ranks)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(ranks) * len(MergeScaleFanouts); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if !r.Identical {
			t.Errorf("n=%d fanout=%d: layout differs from flat baseline", r.Ranks, r.Fanout)
		}
		if r.MasterMergeS <= 0 || r.WallS <= 0 || r.OutputBytes <= 0 {
			t.Errorf("n=%d fanout=%d: degenerate row %+v", r.Ranks, r.Fanout, r)
		}
	}
	speedup := MergeSpeedup(rows)
	if speedup[64] <= 1 {
		t.Errorf("tree merge not faster than flat at 64 ranks (speedup %.2fx)", speedup[64])
	}
	var buf bytes.Buffer
	PrintMergeScaleRows(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty table")
	}
}

// TestMergeScaleDeterministic: the synthetic harness is fully seeded; two
// runs of the same cell must agree exactly.
func TestMergeScaleDeterministic(t *testing.T) {
	lab := DefaultLab()
	a, err := MergeScale(&lab, []int{17})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MergeScale(&lab, []int{17})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d differs across runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
