package experiments

import (
	"bytes"
	"testing"
)

// slaTestLab scales the workload down (the -dbseqs 120 smoke size): the
// sweep runs 14 streamed runs plus 14 one-shot oracles per SLA() call,
// and the full DefaultLab database pushes the package past its test
// timeout under -race. Every gate under test (byte-identity, shedding,
// Lindley monotonicity) is size-independent.
func slaTestLab() Lab {
	lab := DefaultLab()
	lab.DB.NumSeqs = 120
	return lab
}

// TestSLAShape: both engines produce the full sweep (4 rate rows, 2 batch
// rows, 1 shed row each), every row passed its internal byte-identity gate
// (SLA errors out otherwise), the saturation row actually shed, and the
// rate sweep's p99 is non-decreasing — the Lindley-recursion gate that
// makes the SLA table deterministic rather than statistical.
func TestSLAShape(t *testing.T) {
	lab := slaTestLab()
	rows, err := SLA(&lab)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 7; len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	byEngine := map[string][]SLARow{}
	for _, r := range rows {
		byEngine[r.Engine] = append(byEngine[r.Engine], r)
		if r.Latency == nil {
			t.Fatalf("%s: no latency block", r.Label)
		}
		if r.Latency.P50 <= 0 || r.Latency.P99 < r.Latency.P50 || r.Latency.Max < r.Latency.P99 {
			t.Errorf("%s: malformed percentile block %+v", r.Label, *r.Latency)
		}
		if r.Arrivals != r.Admitted+r.Shed {
			t.Errorf("%s: arrivals %d != admitted %d + shed %d", r.Label, r.Arrivals, r.Admitted, r.Shed)
		}
		if r.Sweep != "shed" && r.Shed != 0 {
			t.Errorf("%s: unbounded queue shed %d batches", r.Label, r.Shed)
		}
	}
	for eng, ers := range byEngine {
		lastP99 := -1.0
		sawShed := false
		for _, r := range ers {
			if r.Sweep == "rate" {
				// 1e-9 absorbs float rounding in done−arrival when adjacent
				// rates tie exactly (no queueing at either).
				if r.Latency.P99 < lastP99-1e-9 {
					t.Errorf("%s: p99 decreased along rate sweep (%.4f after %.4f at rate %g)",
						eng, r.Latency.P99, lastP99, r.Rate)
				}
				lastP99 = r.Latency.P99
			}
			if r.Sweep == "shed" {
				sawShed = true
				if r.Shed == 0 {
					t.Errorf("%s: saturation row shed nothing", eng)
				}
			}
		}
		if !sawShed {
			t.Errorf("%s: no saturation row", eng)
		}
	}
	var buf bytes.Buffer
	PrintSLARows(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty table")
	}
}

// TestSLADeterministic: the serving harness is fully seeded; two runs of
// the whole sweep must agree exactly, shedding included.
func TestSLADeterministic(t *testing.T) {
	lab := slaTestLab()
	a, err := SLA(&lab)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SLA(&lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Label != b[i].Label || a[i].Shed != b[i].Shed || a[i].Admitted != b[i].Admitted {
			t.Errorf("row %d admission differs across runs: %+v vs %+v", i, a[i], b[i])
		}
		if *a[i].Latency != *b[i].Latency {
			t.Errorf("row %d latency differs across runs: %+v vs %+v", i, *a[i].Latency, *b[i].Latency)
		}
		if a[i].Result.Wall != b[i].Result.Wall {
			t.Errorf("row %d wall differs across runs: %v vs %v", i, a[i].Result.Wall, b[i].Result.Wall)
		}
	}
}
