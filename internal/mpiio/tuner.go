// The I/O auto-tuner: an online explorer of the hint space that picks a
// read strategy + sieve gap per (file-system profile, access-pattern
// signature) and persists what it learned as a versioned JSON artifact
// reloadable on the next run — the ViPIOS-style "remember your I/O
// decisions" precedent on top of the Thakur/Gropp/Lusk design space.
//
// Determinism contract: the tuner never reads a wall clock — costs are
// virtual seconds from the rank's simtime clock — and never draws
// randomness. Exploration rotates a fixed candidate list via per-(rank,
// key) ordinals: every rank sees its collectives in the same global
// order, so all ranks of a collective derive the identical decision
// without exchanging a byte. Observations are merged with commutative,
// associative folds (max cost, integer sums), so the learned artifact is
// byte-identical across runs regardless of goroutine scheduling.
package mpiio

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"parblast/internal/metrics"
	"parblast/internal/mpi"
	"parblast/internal/vfs"
)

// Learned-hints artifact identification (see internal/report for the
// versioned-artifact convention).
const (
	HintsKind    = "parblast-io-hints"
	HintsVersion = 1
)

// LearnedHint is one learned (profile, pattern) → hints mapping.
type LearnedHint struct {
	// Key is "<profile name>/<access-pattern signature>".
	Key string `json:"key"`
	// Strategy is the winning read strategy's CLI spelling.
	Strategy string `json:"strategy"`
	// SieveGap is the winning explicit sieve gap (0 = not applicable).
	SieveGap int64 `json:"sieve_gap,omitempty"`
	// CbNodes / CbBufferSize carry the base hints the winner was
	// evaluated under (0 = derived from the profile).
	CbNodes      int   `json:"cb_nodes,omitempty"`
	CbBufferSize int64 `json:"cb_buffer_size,omitempty"`
	// Observations counts the per-rank measurements behind the choice.
	Observations int64 `json:"observations"`
	// CostS is the winner's worst observed per-collective virtual cost.
	CostS float64 `json:"cost_s"`
	// SieveWasteBytes / AggReads summarize the winner's I/O behavior.
	SieveWasteBytes int64 `json:"sieve_waste_bytes,omitempty"`
	AggReads        int64 `json:"agg_reads,omitempty"`
}

// apply overlays the learned decision on a caller's base hints.
func (e LearnedHint) apply(base Hints) Hints {
	h := base
	if strat, err := ParseStrategy(e.Strategy); err == nil {
		h.ReadStrategy = strat
	}
	h.SieveGap = e.SieveGap
	if e.CbNodes > 0 {
		h.CbNodes = e.CbNodes
	}
	if e.CbBufferSize > 0 {
		h.CbBufferSize = e.CbBufferSize
	}
	return h
}

// HintsArtifact is the persisted learned-hints document.
type HintsArtifact struct {
	Kind    string        `json:"kind"`
	Version int           `json:"version"`
	Entries []LearnedHint `json:"entries"`
}

// Encode renders the artifact as stable, indented JSON. Entries are
// already key-sorted (Finalize guarantees it), so two identical runs
// produce byte-identical files.
func (a *HintsArtifact) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ParseHintsArtifact parses and validates a learned-hints document:
// kind, version, strictly key-sorted entries, parseable strategies, and
// non-negative numerics. The checks double as the validatereport gate.
func ParseHintsArtifact(data []byte) (*HintsArtifact, error) {
	var a HintsArtifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("mpiio: bad hints artifact: %w", err)
	}
	if a.Kind != HintsKind {
		return nil, fmt.Errorf("mpiio: hints artifact kind %q, want %q", a.Kind, HintsKind)
	}
	if a.Version != HintsVersion {
		return nil, fmt.Errorf("mpiio: hints artifact version %d, want %d", a.Version, HintsVersion)
	}
	for i, e := range a.Entries {
		if i > 0 && a.Entries[i-1].Key >= e.Key {
			return nil, fmt.Errorf("mpiio: hints entries out of key order: %q before %q", a.Entries[i-1].Key, e.Key)
		}
		if _, err := ParseStrategy(e.Strategy); err != nil {
			return nil, fmt.Errorf("mpiio: hints entry %q: %w", e.Key, err)
		}
		if e.SieveGap < 0 || e.CbNodes < 0 || e.CbBufferSize < 0 || e.Observations < 0 || e.CostS < 0 {
			return nil, fmt.Errorf("mpiio: hints entry %q has negative fields", e.Key)
		}
	}
	return &a, nil
}

// TunerCandidates is the fixed exploration slate for one profile: the
// current fixed heuristic first (so the tuner can never do worse than it
// on a converged key), gap variants an octave either side, then the
// alternative strategies. The order is part of the determinism contract —
// exploration rotates through it by per-(rank, key) ordinal, and cost
// ties resolve to the lowest index.
func TunerCandidates(p vfs.Profile, base Hints) []Hints {
	derive := base
	derive.SieveGap = 0
	g := derive.EffectiveSieveGap(p)
	small := g / 8
	if small < 1 {
		small = 1
	}
	mk := func(strat Strategy, gap int64) Hints {
		h := base
		h.ReadStrategy = strat
		h.SieveGap = gap
		return h
	}
	return []Hints{
		mk(StrategyTwoPhase, g),     // index 0: the fixed heuristic
		mk(StrategyTwoPhase, small), // finer sieving
		mk(StrategyTwoPhase, g*8),   // coarser sieving (capped by cb_buffer_size)
		mk(StrategyListIO, 0),
		mk(StrategyIndependent, 0),
	}
}

// tunerCounterNames are the per-rank mpiio counters whose deltas one
// observation attributes to its collective. Only the owning rank writes
// its per-rank series, so reading them here is race-free and
// deterministic.
var tunerCounterNames = [...]string{
	"mpiio.agg_reads",
	"mpiio.agg_read_bytes",
	"mpiio.sieve_waste_bytes",
	"mpiio.shuffle_bytes",
	"mpiio.reads",
	"mpiio.read_bytes",
}

const (
	ctrAggReads = iota
	ctrAggReadBytes
	ctrSieveWaste
	ctrShuffleBytes
	ctrReads
	ctrReadBytes
)

func tunerCounterValues(reg *metrics.Registry, rank int) [len(tunerCounterNames)]int64 {
	var out [len(tunerCounterNames)]int64
	for i, name := range tunerCounterNames {
		out[i] = reg.Counter(name, rank).Value()
	}
	return out
}

// tunerObs is one in-flight exploration measurement: where the rank's
// virtual clock and counters stood when the decision was made.
type tunerObs struct {
	key      string
	cand     int
	start    float64
	counters [len(tunerCounterNames)]int64
	hints    Hints
}

// trialStats merges every rank's observations of one (key, candidate)
// cell with order-independent folds only.
type trialStats struct {
	hints   Hints
	obs     int64
	maxCost float64
	deltas  [len(tunerCounterNames)]int64
}

// trialID identifies one (key, candidate) cell.
type trialID struct {
	key  string
	cand int
}

// Tuner learns I/O hints online. One Tuner is shared by every rank of a
// run (like the file system itself); all methods are concurrency-safe.
type Tuner struct {
	mu      sync.Mutex
	learned map[string]LearnedHint
	ordinal map[string]int // "<rank>\x00<key>" → decide count (explore rotation)
	trials  map[trialID]*trialStats
}

// NewTuner returns an empty tuner: every key starts in exploration.
func NewTuner() *Tuner {
	return &Tuner{
		learned: make(map[string]LearnedHint),
		ordinal: make(map[string]int),
		trials:  make(map[trialID]*trialStats),
	}
}

// LoadTuner seeds a tuner from a persisted artifact: the loaded keys are
// exploited immediately (no re-exploration); unseen keys still explore.
func LoadTuner(data []byte) (*Tuner, error) {
	a, err := ParseHintsArtifact(data)
	if err != nil {
		return nil, err
	}
	t := NewTuner()
	for _, e := range a.Entries {
		t.learned[e.Key] = e
	}
	return t, nil
}

// decide picks the hints for one collective read. Learned keys exploit
// the stored decision; unknown keys rotate the candidate slate by this
// rank's per-key ordinal — deterministic and identical across the ranks
// of the collective, since all of them observe their collectives in the
// same global order. A non-nil observation means "measure this op and
// call observe after the closing barrier".
func (t *Tuner) decide(r *mpi.Rank, p vfs.Profile, sig string, base Hints) (Hints, *tunerObs) {
	key := p.Name + "/" + sig
	reg := r.Metrics()
	reg.Counter("mpiio.tuner.decisions", r.ID()).Inc()
	t.mu.Lock()
	if e, ok := t.learned[key]; ok {
		t.mu.Unlock()
		reg.Counter("mpiio.tuner.exploit", r.ID()).Inc()
		return e.apply(base), nil
	}
	cands := TunerCandidates(p, base)
	ordKey := fmt.Sprintf("%d\x00%s", r.ID(), key)
	idx := t.ordinal[ordKey] % len(cands)
	t.ordinal[ordKey]++
	t.mu.Unlock()
	reg.Counter("mpiio.tuner.explore", r.ID()).Inc()
	return cands[idx], &tunerObs{
		key:      key,
		cand:     idx,
		start:    r.Clock().Now(),
		counters: tunerCounterValues(reg, r.ID()),
		hints:    cands[idx],
	}
}

// observe settles one exploration measurement after the collective's
// closing barrier: the rank's virtual elapsed time plus its counter
// deltas, folded into the (key, candidate) cell with order-independent
// operations only (max, integer sums).
func (t *Tuner) observe(r *mpi.Rank, obs *tunerObs) {
	reg := r.Metrics()
	elapsed := r.Clock().Now() - obs.start
	reg.Histogram("mpiio.tuner.op_seconds", r.ID(), metrics.TimeBuckets()).Observe(elapsed)
	now := tunerCounterValues(reg, r.ID())
	t.mu.Lock()
	defer t.mu.Unlock()
	id := trialID{key: obs.key, cand: obs.cand}
	st := t.trials[id]
	if st == nil {
		st = &trialStats{hints: obs.hints}
		t.trials[id] = st
	}
	st.obs++
	if elapsed > st.maxCost {
		st.maxCost = elapsed
	}
	for i := range now {
		st.deltas[i] += now[i] - obs.counters[i]
	}
}

// Finalize converts the exploration record into the learned table and
// returns the persistable artifact: per key, the candidate with the
// lowest worst-case virtual cost wins (ties resolve to the lowest slate
// index — the fixed heuristic). Keys loaded from an earlier artifact are
// carried through unchanged. After Finalize the tuner exploits every key
// it has an entry for; further exploration of new keys may continue.
func (t *Tuner) Finalize() *HintsArtifact {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Collect, then sort: the (key, candidate) fold order must not
	// depend on map iteration.
	ids := make([]trialID, 0, len(t.trials))
	for id := range t.trials {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].key != ids[j].key {
			return ids[i].key < ids[j].key
		}
		return ids[i].cand < ids[j].cand
	})
	for _, id := range ids {
		if _, ok := t.learned[id.key]; ok {
			continue // loaded or already decided: first decision wins
		}
		best := id
		bestStats := t.trials[id]
		for _, other := range ids {
			if other.key != id.key || other.cand <= best.cand {
				continue
			}
			if st := t.trials[other]; st.maxCost < bestStats.maxCost {
				best, bestStats = other, st
			}
		}
		h := bestStats.hints
		t.learned[id.key] = LearnedHint{
			Key:             id.key,
			Strategy:        h.ReadStrategy.String(),
			SieveGap:        h.SieveGap,
			CbNodes:         h.CbNodes,
			CbBufferSize:    h.CbBufferSize,
			Observations:    bestStats.obs,
			CostS:           bestStats.maxCost,
			SieveWasteBytes: bestStats.deltas[ctrSieveWaste],
			AggReads:        bestStats.deltas[ctrAggReads],
		}
	}
	keys := make([]string, 0, len(t.learned))
	for k := range t.learned {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	a := &HintsArtifact{Kind: HintsKind, Version: HintsVersion, Entries: make([]LearnedHint, 0, len(keys))}
	for _, k := range keys {
		a.Entries = append(a.Entries, t.learned[k])
	}
	return a
}
