package mpiio

import (
	"bytes"
	"fmt"
	"testing"

	"parblast/internal/mpi"
	"parblast/internal/simtime"
	"parblast/internal/vfs"
)

func testCost() simtime.CostModel {
	return simtime.CostModel{
		NetLatency:       1e-4,
		NetBandwidth:     100e6,
		SearchUnitCost:   1e-8,
		FormatByteCost:   1e-8,
		MergeItemCost:    1e-4,
		MemCopyBandwidth: 1e9,
	}
}

func TestViewValidate(t *testing.T) {
	good := View{Segments: []Segment{{0, 10}, {10, 5}, {100, 1}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.TotalLength() != 16 {
		t.Fatalf("total = %d", good.TotalLength())
	}
	overlap := View{Segments: []Segment{{0, 10}, {5, 10}}}
	if err := overlap.Validate(); err == nil {
		t.Fatal("overlapping view accepted")
	}
	unsorted := View{Segments: []Segment{{10, 5}, {0, 5}}}
	if err := unsorted.Validate(); err == nil {
		t.Fatal("unsorted view accepted")
	}
	negative := View{Segments: []Segment{{-1, 5}}}
	if err := negative.Validate(); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestIndependentReadWrite(t *testing.T) {
	fs := vfs.MustNew(vfs.RAMDisk())
	fs.WriteFile("db", []byte("0123456789abcdef"))
	_, err := mpi.Run(2, testCost(), func(r *mpi.Rank) error {
		f, err := Open(r, fs, "db")
		if err != nil {
			return err
		}
		// Each rank reads its half.
		off := int64(r.ID() * 8)
		data := f.ReadContiguous(off, 8)
		want := "0123456789abcdef"[off : off+8]
		if string(data) != want {
			return fmt.Errorf("rank %d read %q, want %q", r.ID(), data, want)
		}
		if f.Size() != 16 {
			return fmt.Errorf("size = %d", f.Size())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpenMissing(t *testing.T) {
	fs := vfs.MustNew(vfs.RAMDisk())
	_, err := mpi.Run(1, testCost(), func(r *mpi.Rank) error {
		if _, err := Open(r, fs, "nope"); err == nil {
			return fmt.Errorf("open of missing file succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// interleavedExpected builds the file contents that rank-interleaved views
// should produce: rank k owns records k, k+n, k+2n, ... of size recSize.
func interleavedViews(n int, records, recSize int) ([]View, [][]byte, []byte) {
	views := make([]View, n)
	datas := make([][]byte, n)
	total := make([]byte, records*recSize)
	for rec := 0; rec < records; rec++ {
		owner := rec % n
		payload := bytes.Repeat([]byte{byte('A' + rec%26)}, recSize)
		views[owner].Segments = append(views[owner].Segments,
			Segment{Offset: int64(rec * recSize), Length: int64(recSize)})
		datas[owner] = append(datas[owner], payload...)
		copy(total[rec*recSize:], payload)
	}
	return views, datas, total
}

func TestWriteCollectiveMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		for _, profile := range []vfs.Profile{vfs.XFSLike(), vfs.NFSLike()} {
			fs := vfs.MustNew(profile)
			views, datas, want := interleavedViews(n, 23, 17)
			_, err := mpi.Run(n, testCost(), func(r *mpi.Rank) error {
				f := OpenOrCreate(r, fs, "out")
				if err := f.SetView(views[r.ID()]); err != nil {
					return err
				}
				return f.WriteCollective(datas[r.ID()])
			})
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, profile.Name, err)
			}
			got, err := fs.ReadFile("out")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("n=%d %s: collective write produced wrong bytes (%d vs %d)",
					n, profile.Name, len(got), len(want))
			}
		}
	}
}

func TestWriteIndependentMatchesSerial(t *testing.T) {
	n := 4
	fs := vfs.MustNew(vfs.XFSLike())
	views, datas, want := interleavedViews(n, 20, 11)
	_, err := mpi.Run(n, testCost(), func(r *mpi.Rank) error {
		f := OpenOrCreate(r, fs, "out")
		if err := f.SetView(views[r.ID()]); err != nil {
			return err
		}
		return f.WriteIndependent(datas[r.ID()])
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("out")
	if !bytes.Equal(got, want) {
		t.Fatal("independent write produced wrong bytes")
	}
}

func TestWriteCollectiveWithHoles(t *testing.T) {
	// Views that do not tile the file: the hole must stay zero.
	fs := vfs.MustNew(vfs.XFSLike())
	_, err := mpi.Run(2, testCost(), func(r *mpi.Rank) error {
		f := OpenOrCreate(r, fs, "holes")
		if r.ID() == 0 {
			if err := f.SetView(ContiguousView(0, 4)); err != nil {
				return err
			}
			return f.WriteCollective([]byte("AAAA"))
		}
		if err := f.SetView(ContiguousView(10, 4)); err != nil {
			return err
		}
		return f.WriteCollective([]byte("BBBB"))
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("holes")
	want := append([]byte("AAAA"), make([]byte, 6)...)
	want = append(want, []byte("BBBB")...)
	if !bytes.Equal(got, want) {
		t.Fatalf("holes corrupted: %q", got)
	}
}

func TestWriteCollectiveEmptyParticipants(t *testing.T) {
	// Ranks with empty views (the pioBLAST master) must participate
	// without contributing.
	fs := vfs.MustNew(vfs.XFSLike())
	_, err := mpi.Run(3, testCost(), func(r *mpi.Rank) error {
		f := OpenOrCreate(r, fs, "o")
		if r.ID() == 0 {
			return f.WriteCollective(nil) // empty view
		}
		off := int64((r.ID() - 1) * 3)
		if err := f.SetView(ContiguousView(off, 3)); err != nil {
			return err
		}
		return f.WriteCollective([]byte{byte('0' + r.ID()), byte('0' + r.ID()), byte('0' + r.ID())})
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("o")
	if string(got) != "111222" {
		t.Fatalf("got %q", got)
	}
}

func TestWriteCollectiveAllEmpty(t *testing.T) {
	fs := vfs.MustNew(vfs.XFSLike())
	_, err := mpi.Run(2, testCost(), func(r *mpi.Rank) error {
		f := OpenOrCreate(r, fs, "o")
		return f.WriteCollective(nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile("o"); len(got) != 0 {
		t.Fatalf("file should be empty, got %d bytes", len(got))
	}
}

func TestWriteLengthMismatch(t *testing.T) {
	fs := vfs.MustNew(vfs.RAMDisk())
	_, err := mpi.Run(1, testCost(), func(r *mpi.Rank) error {
		f := OpenOrCreate(r, fs, "o")
		if err := f.SetView(ContiguousView(0, 10)); err != nil {
			return err
		}
		if err := f.WriteCollective([]byte("short")); err == nil {
			return fmt.Errorf("length mismatch accepted (collective)")
		}
		if err := f.WriteIndependent([]byte("short")); err == nil {
			return fmt.Errorf("length mismatch accepted (independent)")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveFasterThanIndependentOnNFS(t *testing.T) {
	// The paper's §3.3 claim: shuffling scattered records into large
	// sequential writes beats many small strided writes, dramatically so
	// on a serializing file system.
	n := 8
	records, recSize := 400, 257
	views, datas, _ := interleavedViews(n, records, recSize)

	runWith := func(collective bool) float64 {
		fs := vfs.MustNew(vfs.NFSLike())
		clocks, err := mpi.Run(n, testCost(), func(r *mpi.Rank) error {
			f := OpenOrCreate(r, fs, "out")
			if err := f.SetView(views[r.ID()]); err != nil {
				return err
			}
			if collective {
				return f.WriteCollective(datas[r.ID()])
			}
			err := f.WriteIndependent(datas[r.ID()])
			r.Barrier()
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for _, c := range clocks {
			if c.Now() > worst {
				worst = c.Now()
			}
		}
		return worst
	}
	tColl := runWith(true)
	tInd := runWith(false)
	if tColl >= tInd {
		t.Fatalf("collective (%.3fs) not faster than independent (%.3fs)", tColl, tInd)
	}
	if tInd/tColl < 3 {
		t.Fatalf("expected a large gap on NFS, got only %.1fx", tInd/tColl)
	}
}

func TestCollectiveDeterministicTiming(t *testing.T) {
	n := 4
	views, datas, _ := interleavedViews(n, 50, 31)
	run := func() []float64 {
		fs := vfs.MustNew(vfs.XFSLike())
		clocks, err := mpi.Run(n, testCost(), func(r *mpi.Rank) error {
			f := OpenOrCreate(r, fs, "out")
			if err := f.SetView(views[r.ID()]); err != nil {
				return err
			}
			return f.WriteCollective(datas[r.ID()])
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, n)
		for i, c := range clocks {
			out[i] = c.Now()
		}
		return out
	}
	a := run()
	b := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d timing differs across runs: %g vs %g", i, a[i], b[i])
		}
	}
}

// TestWriteCollectiveSkipsEmptyShuffleMessages: with each rank's view
// exactly tiling its own aggregator domain, no shuffle data needs to move —
// and no zero-byte messages may be exchanged either (they used to go to
// every aggregator, paying latency and message count for nothing).
func TestWriteCollectiveSkipsEmptyShuffleMessages(t *testing.T) {
	const n = 3
	fs := vfs.MustNew(vfs.XFSLike()) // 32 channels: every rank aggregates
	comm := mpi.NewCommStats(n)
	cfg := mpi.Config{Cost: testCost(), Comm: comm}
	_, err := mpi.RunConfig(n, cfg, func(r *mpi.Rank) error {
		f := OpenOrCreate(r, fs, "aligned")
		off := int64(r.ID() * 4)
		if err := f.SetView(ContiguousView(off, 4)); err != nil {
			return err
		}
		payload := bytes.Repeat([]byte{byte('a' + r.ID())}, 4)
		return f.WriteCollective(payload)
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("aligned")
	if string(got) != "aaaabbbbcccc" {
		t.Fatalf("file = %q", got)
	}
	_, shuffle, _, messages := comm.Totals()
	if shuffle != 0 {
		t.Fatalf("aligned views shuffled %d bytes, want 0", shuffle)
	}
	// Only the collectives remain: one AllGather and one Barrier entry per
	// rank. Zero-byte point-to-point messages would inflate this.
	if want := int64(2 * n); messages != want {
		t.Fatalf("message count = %d, want %d (zero-byte shuffle messages not skipped?)", messages, want)
	}
}
