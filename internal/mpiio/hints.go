// MPI-IO hints: the ROMIO-style info object that lets callers — or the
// auto-tuner — steer the collective plan instead of the layer's built-in
// heuristics. Mirrors the real hint names (cb_nodes, cb_buffer_size,
// romio_ds_* sieve control) on the simulated stack.
package mpiio

import (
	"fmt"

	"parblast/internal/vfs"
)

// Strategy selects how ReadCollective moves the bytes.
type Strategy int

const (
	// StrategyTwoPhase is the ROMIO default: aggregators issue large
	// sieved sequential reads (holes below the sieve gap are transferred
	// as waste) and shuffle the pieces to the requesters.
	StrategyTwoPhase Strategy = iota
	// StrategyListIO keeps the aggregator shuffle but issues one access
	// per coalesced request run — no hole is ever transferred, so sieve
	// waste is zero at the price of more operations (the Thakur/Gropp/
	// Lusk data-sieving-vs-list-I/O crossover).
	StrategyListIO
	// StrategyIndependent skips aggregation entirely: every rank reads
	// its own view segments directly. No shuffle traffic, full storage
	// parallelism — the right choice for contiguous views on a
	// many-channel file system.
	StrategyIndependent
)

// String returns the CLI/JSON spelling of the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyTwoPhase:
		return "two-phase"
	case StrategyListIO:
		return "list-io"
	case StrategyIndependent:
		return "independent"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// slug is the metric-name spelling (dots and dashes are separators in
// instrument names, so strategies use underscores there).
func (s Strategy) slug() string {
	switch s {
	case StrategyListIO:
		return "list_io"
	case StrategyIndependent:
		return "independent"
	}
	return "two_phase"
}

// ParseStrategy parses the CLI/JSON spelling ("" = two-phase default).
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "", "two-phase":
		return StrategyTwoPhase, nil
	case "list-io":
		return StrategyListIO, nil
	case "independent":
		return StrategyIndependent, nil
	}
	return 0, fmt.Errorf("mpiio: unknown read strategy %q (want two-phase, list-io, or independent)", s)
}

// valid reports whether s is a known strategy.
func (s Strategy) valid() bool {
	return s == StrategyTwoPhase || s == StrategyListIO || s == StrategyIndependent
}

// DefaultCbBufferSize is the collective-buffer size assumed when the hint
// is unset — ROMIO's classic 4 MiB default. It bounds the sieve gap: a
// sieved run never reads through a hole larger than the buffer an
// aggregator is willing to stage.
const DefaultCbBufferSize = 4 << 20

// Hints is the per-file MPI-IO info object. The zero value means "derive
// everything from the file-system profile" and reproduces the layer's
// previous fixed heuristics. Hints are consulted by the collective plan,
// so — like a real MPI info object — every rank of a collective must set
// the same hints on its handle.
type Hints struct {
	// CbNodes caps the number of aggregator ranks (cb_nodes). 0 derives
	// it from the file-system profile's channel count. The plan always
	// clamps to the live participant count and the aggregate extent.
	CbNodes int
	// CbBufferSize is the collective staging-buffer size in bytes
	// (cb_buffer_size). 0 = DefaultCbBufferSize. It caps the sieve gap.
	CbBufferSize int64
	// SieveGap overrides the data-sieving hole threshold in bytes. 0
	// derives latency×bandwidth from the profile. The effective gap is
	// always floored at 1 and capped at the collective buffer size.
	SieveGap int64
	// ReadStrategy selects how ReadCollective moves the bytes.
	ReadStrategy Strategy
}

// Validate rejects unusable hints.
func (h Hints) Validate() error {
	if h.CbNodes < 0 {
		return fmt.Errorf("mpiio: negative cb_nodes %d", h.CbNodes)
	}
	if h.CbBufferSize < 0 {
		return fmt.Errorf("mpiio: negative cb_buffer_size %d", h.CbBufferSize)
	}
	if h.SieveGap < 0 {
		return fmt.Errorf("mpiio: negative sieve_gap %d", h.SieveGap)
	}
	if !h.ReadStrategy.valid() {
		return fmt.Errorf("mpiio: unknown read strategy %d", int(h.ReadStrategy))
	}
	return nil
}

// EffectiveCbBufferSize resolves the collective buffer size hint.
func (h Hints) EffectiveCbBufferSize() int64 {
	if h.CbBufferSize > 0 {
		return h.CbBufferSize
	}
	return DefaultCbBufferSize
}

// EffectiveSieveGap resolves the data-sieving hole threshold against a
// file-system profile: the explicit hint when set, otherwise the profile's
// seek-equivalent byte volume (latency×bandwidth — the break-even hole
// size). The result is floored at 1 — near-zero-latency profiles truncate
// the product to 0, which would otherwise disable coalescing of abutting
// requests — and capped at the collective buffer size, so high-bandwidth
// profiles cannot demand unbounded staging buffers.
func (h Hints) EffectiveSieveGap(p vfs.Profile) int64 {
	gap := h.SieveGap
	if gap <= 0 {
		gap = p.SeekEquivalentBytes()
	}
	if gap < 1 {
		gap = 1
	}
	if buf := h.EffectiveCbBufferSize(); gap > buf {
		gap = buf
	}
	return gap
}

// SetHints installs the file's MPI-IO hints. Like SetView, it is local:
// the hints take effect at the next collective. All ranks of a collective
// must agree on the hints they set.
func (f *File) SetHints(h Hints) error {
	if err := h.Validate(); err != nil {
		return err
	}
	f.hints = h
	return nil
}

// Hints returns the installed hints (zero value = pure heuristics).
func (f *File) Hints() Hints { return f.hints }

// SetTuner attaches an auto-tuner to the handle: subsequent collective
// reads consult it for the strategy/gap decision and feed their measured
// virtual cost back. A nil tuner restores plain hint/heuristic behavior.
// The same tuner object must be attached on every rank of the collective
// (it is shared in-process, like the file system itself).
func (f *File) SetTuner(t *Tuner) { f.tuner = t }
