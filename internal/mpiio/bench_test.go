package mpiio

import (
	"testing"

	"parblast/internal/mpi"
	"parblast/internal/vfs"
)

func benchWrite(b *testing.B, profile vfs.Profile, collective bool, n, records, recSize int) {
	views, datas, _ := interleavedViews(n, records, recSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := vfs.MustNew(profile)
		_, err := mpi.Run(n, testCost(), func(r *mpi.Rank) error {
			f := OpenOrCreate(r, fs, "out")
			if err := f.SetView(views[r.ID()]); err != nil {
				return err
			}
			if collective {
				return f.WriteCollective(datas[r.ID()])
			}
			err := f.WriteIndependent(datas[r.ID()])
			r.Barrier()
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(records * recSize))
}

func BenchmarkCollectiveWriteXFS(b *testing.B)  { benchWrite(b, vfs.XFSLike(), true, 8, 256, 512) }
func BenchmarkCollectiveWriteNFS(b *testing.B)  { benchWrite(b, vfs.NFSLike(), true, 8, 256, 512) }
func BenchmarkIndependentWriteXFS(b *testing.B) { benchWrite(b, vfs.XFSLike(), false, 8, 256, 512) }
func BenchmarkIndependentWriteNFS(b *testing.B) { benchWrite(b, vfs.NFSLike(), false, 8, 256, 512) }
