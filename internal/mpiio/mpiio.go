// Package mpiio implements an MPI-IO-style parallel I/O layer over the
// simulated cluster storage: shared-file handles, file views (displacement
// lists), independent reads/writes, and collective reads and writes using
// the two-phase (aggregator) algorithm that ROMIO made standard.
//
// The collectives are real data-shuffling protocols executed over the
// simulated MPI runtime: ranks exchange actual bytes with aggregator ranks,
// and each aggregator issues one large sequential access per coalesced
// span (reads additionally sieve through small holes). Both the data
// movement and the virtual-time costs therefore emerge from the same code
// path the paper's §3 describes, including the contrast with many small
// independent strided accesses.
package mpiio

import (
	"fmt"

	"parblast/internal/mpi"
	"parblast/internal/vfs"
)

// Tag space reserved for the I/O layer's internal messages; engine
// protocols must stay below this. Mirrors mpi.ShuffleTagBase so that
// communication accounting can separate shuffle from protocol traffic.
const tagBase = mpi.ShuffleTagBase

// Segment is one contiguous extent of a file view.
type Segment struct {
	Offset int64
	Length int64
}

// View is an ordered list of disjoint file extents visible to one rank,
// the moral equivalent of an MPI file view built from an indexed filetype.
type View struct {
	Segments []Segment
}

// TotalLength sums the segment lengths.
func (v View) TotalLength() int64 {
	var n int64
	for _, s := range v.Segments {
		n += s.Length
	}
	return n
}

// Validate checks ordering, positivity, and disjointness.
func (v View) Validate() error {
	var prevEnd int64 = -1
	for i, s := range v.Segments {
		if s.Offset < 0 || s.Length < 0 {
			return fmt.Errorf("mpiio: segment %d has negative offset/length (%d,%d)", i, s.Offset, s.Length)
		}
		if s.Offset < prevEnd {
			return fmt.Errorf("mpiio: segment %d at %d overlaps or precedes previous end %d", i, s.Offset, prevEnd)
		}
		prevEnd = s.Offset + s.Length
	}
	return nil
}

// ContiguousView is the common special case: one extent.
func ContiguousView(off, length int64) View {
	return View{Segments: []Segment{{Offset: off, Length: length}}}
}

// File is a per-rank handle on a shared file.
type File struct {
	rank  *mpi.Rank
	fs    *vfs.FS
	f     *vfs.File
	view  View
	hints Hints
	tuner *Tuner
}

// Open returns a handle on an existing file.
func Open(rank *mpi.Rank, fs *vfs.FS, path string) (*File, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	rank.Metrics().Counter("mpiio.opens", rank.ID()).Inc()
	return &File{rank: rank, fs: fs, f: f}, nil
}

// OpenOrCreate returns a handle, creating the file if needed (every rank of
// a parallel job opens the shared output file this way).
func OpenOrCreate(rank *mpi.Rank, fs *vfs.FS, path string) *File {
	rank.Metrics().Counter("mpiio.opens", rank.ID()).Inc()
	return &File{rank: rank, fs: fs, f: fs.OpenOrCreate(path)}
}

// Size reports the current file size (metadata only, no time charged).
func (f *File) Size() int64 { return f.f.Size() }

// SetView installs the rank's file view for subsequent collective writes.
func (f *File) SetView(v View) error {
	if err := v.Validate(); err != nil {
		return err
	}
	f.view = v
	if reg := f.rank.Metrics(); reg != nil {
		reg.Counter("mpiio.view_sets", f.rank.ID()).Inc()
		reg.Counter("mpiio.view_segments", f.rank.ID()).Add(int64(len(v.Segments)))
	}
	return nil
}

// View returns the installed view.
func (f *File) View() View { return f.view }

// ReadAt performs an independent (non-collective) read of n bytes at off,
// charging the storage cost to the calling rank. Short data at EOF yields
// a short slice.
func (f *File) ReadAt(off, n int64) []byte {
	buf := make([]byte, n)
	got := f.f.ReadAt(buf, off)
	f.rank.IO(f.fs, int64(got))
	if reg := f.rank.Metrics(); reg != nil {
		reg.Counter("mpiio.reads", f.rank.ID()).Inc()
		reg.Counter("mpiio.read_bytes", f.rank.ID()).Add(int64(got))
	}
	return buf[:got]
}

// WriteAt performs an independent write, charging the calling rank.
func (f *File) WriteAt(data []byte, off int64) {
	f.f.WriteAt(data, off)
	f.rank.IO(f.fs, int64(len(data)))
	if reg := f.rank.Metrics(); reg != nil {
		reg.Counter("mpiio.independent_writes", f.rank.ID()).Inc()
		reg.Counter("mpiio.write_bytes", f.rank.ID()).Add(int64(len(data)))
	}
}

// WriteIndependent writes data through the rank's view using one
// independent write per segment — the strided-small-writes pattern the
// two-phase algorithm exists to avoid. Used as an ablation baseline.
func (f *File) WriteIndependent(data []byte) error {
	if int64(len(data)) != f.view.TotalLength() {
		return fmt.Errorf("mpiio: data length %d != view length %d", len(data), f.view.TotalLength())
	}
	var pos int64
	for _, s := range f.view.Segments {
		if s.Length == 0 {
			continue // a zero-length segment must not pay an operation's latency
		}
		f.WriteAt(data[pos:pos+s.Length], s.Offset)
		pos += s.Length
	}
	return nil
}

// ReadIndependent reads the rank's view using one independent read per
// segment — the strided-small-reads pattern two-phase collective reads
// exist to avoid. Used as an ablation baseline mirroring WriteIndependent.
func (f *File) ReadIndependent() []byte {
	out := make([]byte, 0, f.view.TotalLength())
	for _, s := range f.view.Segments {
		if s.Length == 0 {
			continue // a zero-length segment must not pay an operation's latency
		}
		out = append(out, f.ReadAt(s.Offset, s.Length)...)
	}
	return out
}

// ReadContiguous reads the rank's contiguous range [off, off+n) with one
// independent read — pioBLAST's input-stage pattern ("each worker reads one
// contiguous range from every shared database file").
func (f *File) ReadContiguous(off, n int64) []byte {
	return f.ReadAt(off, n)
}

// AsyncRead is an in-flight independent read started with StartReadAt: the
// data is already captured, but the storage time has not been charged —
// Wait settles it, letting callers overlap the access with compute.
type AsyncRead struct {
	rank *mpi.Rank
	h    *mpi.IOHandle
	buf  []byte
}

// StartReadAt begins an asynchronous independent read of n bytes at off.
// The storage channel is booked from the rank's current virtual time, but
// the clock does not advance until Wait — so a read issued before a search
// costs max(io, compute), the overlap pioBLAST's prefetch pipeline exploits.
func (f *File) StartReadAt(off, n int64) *AsyncRead {
	buf := make([]byte, n)
	got := f.f.ReadAt(buf, off)
	h := f.rank.StartIO(f.fs, int64(got))
	if reg := f.rank.Metrics(); reg != nil {
		reg.Counter("mpiio.async_reads", f.rank.ID()).Inc()
		reg.Counter("mpiio.read_bytes", f.rank.ID()).Add(int64(got))
	}
	return &AsyncRead{rank: f.rank, h: h, buf: buf[:got]}
}

// Wait blocks until the read's virtual completion time and returns the
// data. Safe to call more than once; later calls are free.
func (a *AsyncRead) Wait() []byte {
	a.rank.Wait(a.h)
	return a.buf
}

func putI64(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getI64(b []byte) int64 {
	var v int64
	for i := 0; i < 8; i++ {
		v |= int64(b[i]) << (8 * i)
	}
	return v
}
