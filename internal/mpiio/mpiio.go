// Package mpiio implements an MPI-IO-style parallel I/O layer over the
// simulated cluster storage: shared-file handles, file views (displacement
// lists), independent reads/writes, and collective writes using the
// two-phase (aggregator) algorithm that ROMIO made standard.
//
// The collective write is a real data-shuffling protocol executed over the
// simulated MPI runtime: ranks exchange actual bytes with aggregator ranks,
// and each aggregator issues one large sequential write per contiguous
// span. Both the data movement and the virtual-time costs therefore emerge
// from the same code path the paper's §3.3 describes, including the
// contrast with many small independent strided writes.
package mpiio

import (
	"fmt"
	"sort"

	"parblast/internal/mpi"
	"parblast/internal/vfs"
)

// Tag space reserved for the I/O layer's internal messages; engine
// protocols must stay below this. Mirrors mpi.ShuffleTagBase so that
// communication accounting can separate shuffle from protocol traffic.
const tagBase = mpi.ShuffleTagBase

// Segment is one contiguous extent of a file view.
type Segment struct {
	Offset int64
	Length int64
}

// View is an ordered list of disjoint file extents visible to one rank,
// the moral equivalent of an MPI file view built from an indexed filetype.
type View struct {
	Segments []Segment
}

// TotalLength sums the segment lengths.
func (v View) TotalLength() int64 {
	var n int64
	for _, s := range v.Segments {
		n += s.Length
	}
	return n
}

// Validate checks ordering, positivity, and disjointness.
func (v View) Validate() error {
	var prevEnd int64 = -1
	for i, s := range v.Segments {
		if s.Offset < 0 || s.Length < 0 {
			return fmt.Errorf("mpiio: segment %d has negative offset/length (%d,%d)", i, s.Offset, s.Length)
		}
		if s.Offset < prevEnd {
			return fmt.Errorf("mpiio: segment %d at %d overlaps or precedes previous end %d", i, s.Offset, prevEnd)
		}
		prevEnd = s.Offset + s.Length
	}
	return nil
}

// ContiguousView is the common special case: one extent.
func ContiguousView(off, length int64) View {
	return View{Segments: []Segment{{Offset: off, Length: length}}}
}

// File is a per-rank handle on a shared file.
type File struct {
	rank *mpi.Rank
	fs   *vfs.FS
	f    *vfs.File
	view View
}

// Open returns a handle on an existing file.
func Open(rank *mpi.Rank, fs *vfs.FS, path string) (*File, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	return &File{rank: rank, fs: fs, f: f}, nil
}

// OpenOrCreate returns a handle, creating the file if needed (every rank of
// a parallel job opens the shared output file this way).
func OpenOrCreate(rank *mpi.Rank, fs *vfs.FS, path string) *File {
	return &File{rank: rank, fs: fs, f: fs.OpenOrCreate(path)}
}

// Size reports the current file size (metadata only, no time charged).
func (f *File) Size() int64 { return f.f.Size() }

// SetView installs the rank's file view for subsequent collective writes.
func (f *File) SetView(v View) error {
	if err := v.Validate(); err != nil {
		return err
	}
	f.view = v
	if reg := f.rank.Metrics(); reg != nil {
		reg.Counter("mpiio.view_sets", f.rank.ID()).Inc()
		reg.Counter("mpiio.view_segments", f.rank.ID()).Add(int64(len(v.Segments)))
	}
	return nil
}

// View returns the installed view.
func (f *File) View() View { return f.view }

// ReadAt performs an independent (non-collective) read of n bytes at off,
// charging the storage cost to the calling rank. Short data at EOF yields
// a short slice.
func (f *File) ReadAt(off, n int64) []byte {
	buf := make([]byte, n)
	got := f.f.ReadAt(buf, off)
	f.rank.IO(f.fs, int64(got))
	if reg := f.rank.Metrics(); reg != nil {
		reg.Counter("mpiio.reads", f.rank.ID()).Inc()
		reg.Counter("mpiio.read_bytes", f.rank.ID()).Add(int64(got))
	}
	return buf[:got]
}

// WriteAt performs an independent write, charging the calling rank.
func (f *File) WriteAt(data []byte, off int64) {
	f.f.WriteAt(data, off)
	f.rank.IO(f.fs, int64(len(data)))
	if reg := f.rank.Metrics(); reg != nil {
		reg.Counter("mpiio.independent_writes", f.rank.ID()).Inc()
		reg.Counter("mpiio.write_bytes", f.rank.ID()).Add(int64(len(data)))
	}
}

// WriteIndependent writes data through the rank's view using one
// independent write per segment — the strided-small-writes pattern the
// two-phase algorithm exists to avoid. Used as an ablation baseline.
func (f *File) WriteIndependent(data []byte) error {
	if int64(len(data)) != f.view.TotalLength() {
		return fmt.Errorf("mpiio: data length %d != view length %d", len(data), f.view.TotalLength())
	}
	var pos int64
	for _, s := range f.view.Segments {
		f.WriteAt(data[pos:pos+s.Length], s.Offset)
		pos += s.Length
	}
	return nil
}

// aggSpan is a covered interval inside an aggregator's domain.
type aggSpan struct {
	off  int64
	data []byte
}

// WriteCollective writes data through the installed views of ALL ranks as
// one collective operation. Every rank of the world must call it together
// (ranks with nothing to write pass an empty view and nil data).
//
// Algorithm (two-phase I/O):
//  1. ranks exchange view bounds to learn the aggregate extent;
//  2. the extent is partitioned over A aggregator ranks;
//  3. each rank ships the pieces of its data that land in each
//     aggregator's domain (real messages, real bytes);
//  4. each aggregator coalesces what it received and issues one large
//     sequential write per contiguous span.
func (f *File) WriteCollective(data []byte) error {
	if int64(len(data)) != f.view.TotalLength() {
		return fmt.Errorf("mpiio: data length %d != view length %d", len(data), f.view.TotalLength())
	}
	r := f.rank
	reg := r.Metrics()
	reg.Counter("mpiio.collective_writes", r.ID()).Inc()

	// Phase 0: agree on the aggregate extent. Crashed ranks contribute nil
	// to the AllGather; everyone skips them identically, so the surviving
	// ranks still agree on participants, domains, and message pattern.
	var lo, hi int64 = 1<<62 - 1, -1
	for _, s := range f.view.Segments {
		if s.Length == 0 {
			continue
		}
		if s.Offset < lo {
			lo = s.Offset
		}
		if end := s.Offset + s.Length; end > hi {
			hi = end
		}
	}
	bounds := make([]byte, 16)
	putI64(bounds[0:], lo)
	putI64(bounds[8:], hi)
	all := r.AllGather(bounds)
	type bound struct {
		rank   int
		lo, hi int64
	}
	var parts []bound // live participants, ascending rank
	selfIdx := -1
	var gLo, gHi int64 = 1<<62 - 1, -1
	for i, b := range all {
		if len(b) < 16 {
			continue // crashed rank: no bounds
		}
		l, h := getI64(b[0:]), getI64(b[8:])
		if i == r.ID() {
			selfIdx = len(parts)
		}
		parts = append(parts, bound{rank: i, lo: l, hi: h})
		if h < 0 {
			continue // that rank writes nothing
		}
		if l < gLo {
			gLo = l
		}
		if h > gHi {
			gHi = h
		}
	}
	if gHi < 0 {
		return nil // nobody writes anything
	}

	// Phase 1: choose aggregators — as many as the file system sustains
	// concurrently, at most the participant count. Aggregator a is the
	// a-th live participant (rank a when nobody crashed).
	numAgg := f.fs.Profile().Channels
	if numAgg > len(parts) {
		numAgg = len(parts)
	}
	if numAgg < 1 {
		numAgg = 1
	}
	extent := gHi - gLo
	domainOf := func(a int) (int64, int64) {
		d0 := gLo + extent*int64(a)/int64(numAgg)
		d1 := gLo + extent*int64(a+1)/int64(numAgg)
		return d0, d1
	}

	// Phase 2: ship my data to each aggregator. Message layout:
	// repeated records of (offset int64, length int64, bytes).
	myPieces := make([][]byte, numAgg)
	var pos int64
	for _, s := range f.view.Segments {
		chunk := data[pos : pos+s.Length]
		pos += s.Length
		// Split the segment across aggregator domains.
		segOff := s.Offset
		for len(chunk) > 0 {
			a := int(int64(numAgg) * (segOff - gLo) / extent)
			if a >= numAgg {
				a = numAgg - 1
			}
			// Integer flooring can land one domain low at boundaries;
			// walk up until segOff is strictly inside [d0, d1).
			_, d1 := domainOf(a)
			for segOff >= d1 && a < numAgg-1 {
				a++
				_, d1 = domainOf(a)
			}
			take := int64(len(chunk))
			if segOff+take > d1 {
				take = d1 - segOff
			}
			rec := make([]byte, 16+take)
			putI64(rec[0:], segOff)
			putI64(rec[8:], take)
			copy(rec[16:], chunk[:take])
			myPieces[a] = append(myPieces[a], rec...)
			segOff += take
			chunk = chunk[take:]
		}
	}
	// A rank ships to aggregator a only when its own extent can overlap
	// a's domain — both sides compute this from the gathered bounds, so
	// the skip rule is symmetric and no zero-byte messages are exchanged
	// (they used to go to EVERY aggregator, paying latency for nothing).
	overlaps := func(blo, bhi int64, a int) bool {
		if bhi < 0 {
			return false // empty view: nothing to ship
		}
		d0, d1 := domainOf(a)
		return blo < d1 && d0 < bhi
	}
	for a := 0; a < numAgg; a++ {
		dst := parts[a].rank
		if dst == r.ID() {
			continue // keep local pieces local (no self-message cost)
		}
		if !overlaps(lo, hi, a) {
			continue // none of my data can land in this domain
		}
		reg.Counter("mpiio.shuffle_bytes", r.ID()).Add(int64(len(myPieces[a])))
		r.Send(dst, tagBase+1, myPieces[a])
	}

	// Phase 3: aggregators collect, coalesce, and write. The receive set
	// mirrors the send rule: only participants whose extent overlaps my
	// domain will ship anything.
	if selfIdx >= 0 && selfIdx < numAgg {
		var spans []aggSpan
		addRecords := func(buf []byte) {
			for len(buf) > 0 {
				off := getI64(buf[0:])
				length := getI64(buf[8:])
				spans = append(spans, aggSpan{off: off, data: buf[16 : 16+length]})
				buf = buf[16+length:]
			}
		}
		addRecords(myPieces[selfIdx])
		for _, p := range parts {
			if p.rank == r.ID() || !overlaps(p.lo, p.hi, selfIdx) {
				continue
			}
			buf, _, _ := r.Recv(p.rank, tagBase+1)
			addRecords(buf)
		}
		// Coalesce into maximal contiguous runs.
		sort.Slice(spans, func(i, j int) bool { return spans[i].off < spans[j].off })
		i := 0
		for i < len(spans) {
			runStart := spans[i].off
			var runData []byte
			expected := runStart
			for i < len(spans) && spans[i].off == expected {
				runData = append(runData, spans[i].data...)
				expected += int64(len(spans[i].data))
				r.MemCopy(int64(len(spans[i].data)))
				i++
			}
			f.f.WriteAt(runData, runStart)
			r.IO(f.fs, int64(len(runData)))
			reg.Counter("mpiio.agg_writes", r.ID()).Inc()
			reg.Counter("mpiio.agg_write_bytes", r.ID()).Add(int64(len(runData)))
		}
	}

	// Phase 4: the collective completes when the slowest participant is
	// done (MPI_File_write_all is collective).
	r.Barrier()
	return nil
}

// ReadContiguous reads the rank's contiguous range [off, off+n) with one
// independent read — pioBLAST's input-stage pattern ("each worker reads one
// contiguous range from every shared database file").
func (f *File) ReadContiguous(off, n int64) []byte {
	return f.ReadAt(off, n)
}

func putI64(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getI64(b []byte) int64 {
	var v int64
	for i := 0; i < 8; i++ {
		v |= int64(b[i]) << (8 * i)
	}
	return v
}
