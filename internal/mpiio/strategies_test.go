package mpiio

import (
	"bytes"
	"fmt"
	"testing"

	"parblast/internal/metrics"
	"parblast/internal/mpi"
	"parblast/internal/vfs"
)

func allStrategies() []Strategy {
	return []Strategy{StrategyTwoPhase, StrategyListIO, StrategyIndependent}
}

// counterTotal sums a counter across all ranks in the registry.
func counterTotal(reg *metrics.Registry, name string) int64 {
	var total int64
	for _, c := range reg.Snapshot().Counters {
		if c.Name == name {
			total += c.Value
		}
	}
	return total
}

// TestReadCollectiveStrategiesMatchViews sweeps every read strategy over
// the interleaved pattern on both platform profiles: byte identity is the
// gate for every strategy, and each run must account its ops under the
// right mpiio.strategy.* counter.
func TestReadCollectiveStrategiesMatchViews(t *testing.T) {
	for _, strat := range allStrategies() {
		for _, prof := range []vfs.Profile{vfs.XFSLike(), vfs.NFSLike()} {
			t.Run(fmt.Sprintf("%s/%s", strat, prof.Name), func(t *testing.T) {
				n := 3
				views, want, total := interleavedViews(n, 4*n+1, 53)
				reg := metrics.NewRegistry()
				got := runReaders(t, n, prof, total, mpi.Config{Cost: testCost(), Metrics: reg},
					func(r *mpi.Rank, f *File) ([]byte, error) {
						if err := f.SetHints(Hints{ReadStrategy: strat}); err != nil {
							return nil, err
						}
						if err := f.SetView(views[r.ID()]); err != nil {
							return nil, err
						}
						return f.ReadCollective()
					})
				for i := 0; i < n; i++ {
					if !bytes.Equal(got[i], want[i]) {
						t.Fatalf("rank %d mismatch at %d", i, firstMismatch(got[i], want[i]))
					}
				}
				if c := counterTotal(reg, "mpiio.strategy."+strat.slug()); c != int64(n) {
					t.Fatalf("strategy counter = %d, want %d", c, n)
				}
			})
		}
	}
}

// TestReadCollectiveStrategiesSurviveCrashes repeats the crash-time sweep
// for every strategy: byte identity for every survivor is part of the
// contract no matter how the bytes move.
func TestReadCollectiveStrategiesSurviveCrashes(t *testing.T) {
	n := 4
	victim := 2
	for _, strat := range allStrategies() {
		for _, at := range []float64{0, 1e-4, 3e-4, 1e-3, 5e-3} {
			t.Run(fmt.Sprintf("%s/at=%g", strat, at), func(t *testing.T) {
				views, want, total := interleavedViews(n, 4*n, 97)
				cfg := mpi.Config{
					Cost:   testCost(),
					Faults: []mpi.Fault{{Rank: victim, At: at, Kind: mpi.FaultCrash}},
				}
				got := runReaders(t, n, vfs.XFSLike(), total, cfg, func(r *mpi.Rank, f *File) ([]byte, error) {
					if err := f.SetHints(Hints{ReadStrategy: strat}); err != nil {
						return nil, err
					}
					if err := f.SetView(views[r.ID()]); err != nil {
						return nil, err
					}
					return f.ReadCollective()
				})
				for i := 0; i < n; i++ {
					if i == victim {
						continue
					}
					if !bytes.Equal(got[i], want[i]) {
						t.Fatalf("surviving rank %d mismatch at %d (crash at %g)",
							i, firstMismatch(got[i], want[i]), at)
					}
				}
			})
		}
	}
}

// TestReadCollectiveStrategiesSurviveTransientFaults injects transient
// storage errors (failed attempts with backoff, then success) under every
// strategy: retries cost virtual time but never bytes.
func TestReadCollectiveStrategiesSurviveTransientFaults(t *testing.T) {
	n := 3
	for _, strat := range allStrategies() {
		t.Run(strat.String(), func(t *testing.T) {
			views, want, total := interleavedViews(n, 4*n, 61)
			fs := vfs.MustNew(vfs.NFSLike())
			fs.WriteFile("db", total)
			if err := fs.InjectFaults(vfs.FaultPlan{FirstOp: 1, Every: 2, Count: 5, Failures: 1, Backoff: 1e-3}); err != nil {
				t.Fatal(err)
			}
			got := make([][]byte, n)
			_, err := mpi.Run(n, testCost(), func(r *mpi.Rank) error {
				f, err := Open(r, fs, "db")
				if err != nil {
					return err
				}
				if err := f.SetHints(Hints{ReadStrategy: strat}); err != nil {
					return err
				}
				if err := f.SetView(views[r.ID()]); err != nil {
					return err
				}
				data, err := f.ReadCollective()
				got[r.ID()] = data
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("rank %d mismatch at %d", i, firstMismatch(got[i], want[i]))
				}
			}
		})
	}
}

// TestSieveAbsorbBoundary pins the off-by-one fix in the absorb condition
// with exact arithmetic: a hole of exactly the sieve gap starts a new run
// (reading through it saves nothing), a hole one byte narrower is sieved
// through and counted as waste. The gap comes from an explicit hint so no
// float truncation can blur the boundary.
func TestSieveAbsorbBoundary(t *testing.T) {
	const gap = int64(64000)
	const seg = int64(100)
	for _, tc := range []struct {
		name      string
		hole      int64
		wantReads int64
		wantWaste int64
	}{
		{"hole == gap splits", gap, 2, 0},
		{"hole == gap-1 sieves", gap - 1, 1, gap - 1},
		{"abutting coalesces", 0, 1, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			total := make([]byte, 2*seg+tc.hole)
			for i := range total {
				total[i] = byte(i*31 + 5)
			}
			view := View{Segments: []Segment{
				{Offset: 0, Length: seg},
				{Offset: seg + tc.hole, Length: seg},
			}}
			var want []byte
			want = append(want, total[:seg]...)
			want = append(want, total[seg+tc.hole:]...)
			reg := metrics.NewRegistry()
			got := runReaders(t, 1, vfs.NFSLike(), total, mpi.Config{Cost: testCost(), Metrics: reg},
				func(r *mpi.Rank, f *File) ([]byte, error) {
					if err := f.SetHints(Hints{SieveGap: gap}); err != nil {
						return nil, err
					}
					if err := f.SetView(view); err != nil {
						return nil, err
					}
					return f.ReadCollective()
				})
			if !bytes.Equal(got[0], want) {
				t.Fatalf("mismatch at %d", firstMismatch(got[0], want))
			}
			if reads := counterTotal(reg, "mpiio.agg_reads"); reads != tc.wantReads {
				t.Fatalf("agg reads = %d, want %d", reads, tc.wantReads)
			}
			if waste := counterTotal(reg, "mpiio.sieve_waste_bytes"); waste != tc.wantWaste {
				t.Fatalf("sieve waste = %d, want %d", waste, tc.wantWaste)
			}
		})
	}
}

// TestListIOZeroWaste re-runs the sieve-holes pattern under list-I/O: one
// exact access per requested record, zero waste by construction.
func TestListIOZeroWaste(t *testing.T) {
	n := 2
	recSize := 64
	records := 16
	total := make([]byte, records*recSize)
	for i := range total {
		total[i] = byte(i * 7)
	}
	views := make([]View, n)
	want := make([][]byte, n)
	for rec := 0; rec < records; rec += 2 {
		owner := (rec / 2) % n
		views[owner].Segments = append(views[owner].Segments,
			Segment{Offset: int64(rec * recSize), Length: int64(recSize)})
		want[owner] = append(want[owner], total[rec*recSize:(rec+1)*recSize]...)
	}
	reg := metrics.NewRegistry()
	got := runReaders(t, n, vfs.NFSLike(), total, mpi.Config{Cost: testCost(), Metrics: reg},
		func(r *mpi.Rank, f *File) ([]byte, error) {
			if err := f.SetHints(Hints{ReadStrategy: StrategyListIO}); err != nil {
				return nil, err
			}
			if err := f.SetView(views[r.ID()]); err != nil {
				return nil, err
			}
			return f.ReadCollective()
		})
	for i := 0; i < n; i++ {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("rank %d mismatch at %d", i, firstMismatch(got[i], want[i]))
		}
	}
	if waste := counterTotal(reg, "mpiio.sieve_waste_bytes"); waste != 0 {
		t.Fatalf("list-io sieve waste = %d, want 0", waste)
	}
	// Every second record is requested and none abut → one exact access
	// per requested record.
	if reads := counterTotal(reg, "mpiio.agg_reads"); reads != int64(records/2) {
		t.Fatalf("list-io accesses = %d, want %d", reads, records/2)
	}
	if lio := counterTotal(reg, "mpiio.listio_reads"); lio != int64(records/2) {
		t.Fatalf("listio_reads counter = %d, want %d", lio, records/2)
	}
}

// TestCollectivesSkipZeroLengthSegments covers zero-length and empty-view
// requests through both collectives under every strategy: byte identity,
// and — under the independent strategy, where each segment would pay an
// operation — zero-length segments must not cost an access.
func TestCollectivesSkipZeroLengthSegments(t *testing.T) {
	n := 3
	total := make([]byte, 3*64)
	for i := range total {
		total[i] = byte(i*11 + 3)
	}
	// Rank 0: zero-length segments sandwiching a real one; rank 1: only
	// zero-length segments (an "empty" view with entries); rank 2: empty.
	views := []View{
		{Segments: []Segment{{Offset: 0, Length: 0}, {Offset: 64, Length: 64}, {Offset: 128, Length: 0}}},
		{Segments: []Segment{{Offset: 8, Length: 0}, {Offset: 100, Length: 0}}},
		{},
	}
	want := [][]byte{total[64:128], {}, {}}
	for _, strat := range allStrategies() {
		t.Run("read/"+strat.String(), func(t *testing.T) {
			reg := metrics.NewRegistry()
			got := runReaders(t, n, vfs.XFSLike(), total, mpi.Config{Cost: testCost(), Metrics: reg},
				func(r *mpi.Rank, f *File) ([]byte, error) {
					if err := f.SetHints(Hints{ReadStrategy: strat}); err != nil {
						return nil, err
					}
					if err := f.SetView(views[r.ID()]); err != nil {
						return nil, err
					}
					return f.ReadCollective()
				})
			for i := 0; i < n; i++ {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("rank %d read %q, want %q", i, got[i], want[i])
				}
			}
			if strat == StrategyIndependent {
				// One real segment in the whole collective → one read.
				if reads := counterTotal(reg, "mpiio.reads"); reads != 1 {
					t.Fatalf("independent reads = %d, want 1 (zero-length segments must not pay latency)", reads)
				}
			}
		})
	}

	t.Run("write", func(t *testing.T) {
		for _, independent := range []bool{false, true} {
			reg := metrics.NewRegistry()
			fs := vfs.MustNew(vfs.XFSLike())
			fs.WriteFile("out", make([]byte, len(total)))
			_, err := mpi.RunConfig(n, mpi.Config{Cost: testCost(), Metrics: reg}, func(r *mpi.Rank) error {
				f := OpenOrCreate(r, fs, "out")
				if err := f.SetView(views[r.ID()]); err != nil {
					return err
				}
				data := want[r.ID()]
				if independent {
					if err := f.WriteIndependent(data); err != nil {
						return err
					}
					r.Barrier()
					return nil
				}
				return f.WriteCollective(data)
			})
			if err != nil {
				t.Fatal(err)
			}
			out, err := fs.ReadFile("out")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out[64:128], total[64:128]) {
				t.Fatalf("independent=%v: written range corrupt", independent)
			}
			if independent {
				if writes := counterTotal(reg, "mpiio.independent_writes"); writes != 1 {
					t.Fatalf("independent writes = %d, want 1", writes)
				}
			}
		}
	})
}
