package mpiio

import (
	"bytes"
	"testing"

	"parblast/internal/metrics"
	"parblast/internal/mpi"
	"parblast/internal/vfs"
)

func TestParseStrategyRoundTrip(t *testing.T) {
	for _, s := range []Strategy{StrategyTwoPhase, StrategyListIO, StrategyIndependent} {
		got, err := ParseStrategy(s.String())
		if err != nil {
			t.Fatalf("ParseStrategy(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("ParseStrategy(%q) = %v, want %v", s.String(), got, s)
		}
	}
	if got, err := ParseStrategy(""); err != nil || got != StrategyTwoPhase {
		t.Fatalf("empty strategy: got %v, %v; want two-phase default", got, err)
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("ParseStrategy accepted an unknown strategy")
	}
}

func TestHintsValidate(t *testing.T) {
	good := []Hints{
		{},
		{CbNodes: 3, CbBufferSize: 1 << 20, SieveGap: 4096, ReadStrategy: StrategyListIO},
	}
	for _, h := range good {
		if err := h.Validate(); err != nil {
			t.Fatalf("Validate(%+v): %v", h, err)
		}
	}
	bad := []Hints{
		{CbNodes: -1},
		{CbBufferSize: -1},
		{SieveGap: -1},
		{ReadStrategy: Strategy(99)},
	}
	for _, h := range bad {
		if err := h.Validate(); err == nil {
			t.Fatalf("Validate(%+v) accepted invalid hints", h)
		}
	}
}

// TestEffectiveSieveGapBoundaries pins the two fixed edge cases: the
// latency×bandwidth product truncating to 0 on a near-zero-latency
// profile (the gap must floor at 1 so abutting requests still coalesce),
// and an unbounded product on a high-bandwidth profile (the gap must cap
// at the collective buffer size).
func TestEffectiveSieveGapBoundaries(t *testing.T) {
	// 1ns × 100MB/s = 0.1 bytes → truncates to 0 → floored to 1.
	tiny := vfs.Profile{Name: "tiny", Latency: 1e-9, Bandwidth: 100e6, Channels: 1}
	if got := (Hints{}).EffectiveSieveGap(tiny); got != 1 {
		t.Fatalf("near-zero-latency gap = %d, want floor 1", got)
	}
	// 10s × 100GB/s = 1TB → capped at the default 4MiB collective buffer.
	huge := vfs.Profile{Name: "huge", Latency: 10, Bandwidth: 100e9, Channels: 1}
	if got := (Hints{}).EffectiveSieveGap(huge); got != DefaultCbBufferSize {
		t.Fatalf("high-bandwidth gap = %d, want cap %d", got, int64(DefaultCbBufferSize))
	}
	// An explicit cb_buffer_size hint moves the cap.
	if got := (Hints{CbBufferSize: 1 << 16}).EffectiveSieveGap(huge); got != 1<<16 {
		t.Fatalf("hinted-buffer gap = %d, want %d", got, 1<<16)
	}
	// An explicit sieve gap is honored but still floored and capped.
	if got := (Hints{SieveGap: 4096}).EffectiveSieveGap(huge); got != 4096 {
		t.Fatalf("explicit gap = %d, want 4096", got)
	}
	if got := (Hints{SieveGap: 1 << 30}).EffectiveSieveGap(tiny); got != DefaultCbBufferSize {
		t.Fatalf("oversized explicit gap = %d, want cap %d", got, int64(DefaultCbBufferSize))
	}
	// The derived gap on a real profile is the seek-equivalent volume.
	nfs := vfs.NFSLike()
	if got, want := (Hints{}).EffectiveSieveGap(nfs), nfs.SeekEquivalentBytes(); got != want {
		t.Fatalf("derived NFS gap = %d, want %d", got, want)
	}
}

// TestChooseAggregatorsClamps pins the aggregator-provisioning fix: the
// count never exceeds the live participants or the aggregate extent, and
// the cb_nodes hint overrides the channel-count default.
func TestChooseAggregatorsClamps(t *testing.T) {
	mkPlan := func(parts int, lo, hi int64) *collPlan {
		p := &collPlan{gLo: lo, gHi: hi}
		for i := 0; i < parts; i++ {
			p.parts = append(p.parts, bound{rank: i, lo: lo, hi: hi})
		}
		return p
	}
	cases := []struct {
		name     string
		parts    int
		extent   int64
		channels int
		hints    Hints
		want     int
	}{
		// The regression: 4 live participants on a 32-channel XFS-like
		// file system must yield 4 aggregators, not 32.
		{"participant clamp", 4, 1 << 20, vfs.XFSLike().Channels, Hints{}, 4},
		{"channel default", 8, 1 << 20, 2, Hints{}, 2},
		{"cb_nodes override", 8, 1 << 20, 32, Hints{CbNodes: 3}, 3},
		{"cb_nodes clamped to participants", 2, 1 << 20, 32, Hints{CbNodes: 16}, 2},
		// A 3-byte aggregate extent cannot keep 4 aggregators busy: an
		// aggregator with an empty byte domain is pure overhead.
		{"extent clamp", 4, 3, 32, Hints{}, 3},
		{"floor at one", 1, 1, 1, Hints{}, 1},
	}
	for _, tc := range cases {
		p := mkPlan(tc.parts, 0, tc.extent)
		p.chooseAggregators(tc.channels, tc.hints)
		if p.numAgg != tc.want {
			t.Errorf("%s: numAgg = %d, want %d", tc.name, p.numAgg, tc.want)
		}
	}
}

// TestReadCollectiveAggregatorCount runs the 4-ranks-on-XFSLike
// regression end to end: every rank requests data, and the number of
// distinct ranks that issued aggregator reads must be 4 (the live
// participants), not the profile's 32 channels.
func TestReadCollectiveAggregatorCount(t *testing.T) {
	n := 4
	views, want, total := interleavedViews(n, 8*n, 64)
	reg := metrics.NewRegistry()
	got := runReaders(t, n, vfs.XFSLike(), total, mpi.Config{Cost: testCost(), Metrics: reg},
		func(r *mpi.Rank, f *File) ([]byte, error) {
			if err := f.SetView(views[r.ID()]); err != nil {
				return nil, err
			}
			return f.ReadCollective()
		})
	for i := 0; i < n; i++ {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("rank %d mismatch", i)
		}
	}
	aggs := make(map[int]bool)
	for _, c := range reg.Snapshot().Counters {
		if c.Name == "mpiio.agg_reads" && c.Value > 0 {
			aggs[c.Rank] = true
		}
	}
	if len(aggs) != n {
		t.Fatalf("aggregator ranks = %d, want %d (clamped to live participants)", len(aggs), n)
	}
}
