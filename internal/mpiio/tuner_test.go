package mpiio

import (
	"bytes"
	"strings"
	"testing"

	"parblast/internal/metrics"
	"parblast/internal/mpi"
	"parblast/internal/vfs"
)

// tunerExploreViews is a holey pattern: enough structure that the
// candidates genuinely differ in cost.
func tunerExploreViews(n int) ([]View, [][]byte, []byte) {
	return interleavedViews(n, 6*n, 128)
}

// runTunedReads drives ops collective reads per rank through a shared
// tuner and returns each rank's last result.
func runTunedReads(t *testing.T, n, ops int, tuner *Tuner, reg *metrics.Registry) [][]byte {
	t.Helper()
	views, want, total := tunerExploreViews(n)
	got := runReaders(t, n, vfs.NFSLike(), total, mpi.Config{Cost: testCost(), Metrics: reg},
		func(r *mpi.Rank, f *File) ([]byte, error) {
			f.SetTuner(tuner)
			if err := f.SetView(views[r.ID()]); err != nil {
				return nil, err
			}
			var data []byte
			for op := 0; op < ops; op++ {
				var err error
				data, err = f.ReadCollective()
				if err != nil {
					return nil, err
				}
			}
			return data, nil
		})
	for i := 0; i < n; i++ {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("rank %d mismatch at %d", i, firstMismatch(got[i], want[i]))
		}
	}
	return got
}

// TestTunerArtifactDeterministic reruns the identical exploration twice
// from scratch: the encoded learned-hints artifacts must be byte-identical
// (the determinism contract for persisted artifacts).
func TestTunerArtifactDeterministic(t *testing.T) {
	encode := func() []byte {
		tuner := NewTuner()
		runTunedReads(t, 3, len(TunerCandidates(vfs.NFSLike(), Hints{})), tuner, metrics.NewRegistry())
		data, err := tuner.Finalize().Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatalf("artifacts differ across identical runs:\n%s\nvs\n%s", a, b)
	}
	if _, err := ParseHintsArtifact(a); err != nil {
		t.Fatalf("self-produced artifact does not validate: %v", err)
	}
}

// TestLoadTunerExploits round-trips an artifact through LoadTuner: every
// decision on a learned key must exploit (no re-exploration), and the
// loaded entries survive a further Finalize unchanged.
func TestLoadTunerExploits(t *testing.T) {
	tuner := NewTuner()
	runTunedReads(t, 2, len(TunerCandidates(vfs.NFSLike(), Hints{})), tuner, metrics.NewRegistry())
	data, err := tuner.Finalize().Encode()
	if err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadTuner(data)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	runTunedReads(t, 2, 1, loaded, reg)
	if explore := counterTotal(reg, "mpiio.tuner.explore"); explore != 0 {
		t.Fatalf("loaded tuner explored %d times, want 0", explore)
	}
	if exploit := counterTotal(reg, "mpiio.tuner.exploit"); exploit != 2 {
		t.Fatalf("loaded tuner exploited %d times, want 2", exploit)
	}

	again, err := loaded.Finalize().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("loaded entries changed through Finalize:\n%s\nvs\n%s", data, again)
	}
}

// TestParseHintsArtifactRejects pins the artifact validation: wrong kind,
// wrong version, out-of-order keys, unknown strategies, and negative
// numerics are all load errors, not silent acceptance.
func TestParseHintsArtifactRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"garbage", `{`, "bad hints artifact"},
		{"wrong kind", `{"kind":"other","version":1,"entries":[]}`, "kind"},
		{"wrong version", `{"kind":"parblast-io-hints","version":2,"entries":[]}`, "version"},
		{"unsorted keys", `{"kind":"parblast-io-hints","version":1,"entries":[
			{"key":"b/contig","strategy":"two-phase","observations":1,"cost_s":1},
			{"key":"a/contig","strategy":"two-phase","observations":1,"cost_s":1}]}`, "order"},
		{"duplicate keys", `{"kind":"parblast-io-hints","version":1,"entries":[
			{"key":"a/contig","strategy":"two-phase","observations":1,"cost_s":1},
			{"key":"a/contig","strategy":"two-phase","observations":1,"cost_s":1}]}`, "order"},
		{"unknown strategy", `{"kind":"parblast-io-hints","version":1,"entries":[
			{"key":"a/contig","strategy":"psychic","observations":1,"cost_s":1}]}`, "strategy"},
		{"negative gap", `{"kind":"parblast-io-hints","version":1,"entries":[
			{"key":"a/contig","strategy":"two-phase","sieve_gap":-1,"observations":1,"cost_s":1}]}`, "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseHintsArtifact([]byte(tc.doc))
			if err == nil {
				t.Fatalf("accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestTunerCandidatesSlate pins the exploration slate's shape: the fixed
// heuristic at index 0 (so a converged tuner can never regress it), gap
// octaves either side with the floor/cap applied, then the alternative
// strategies.
func TestTunerCandidatesSlate(t *testing.T) {
	p := vfs.NFSLike()
	base := Hints{}
	cands := TunerCandidates(p, base)
	if len(cands) != 5 {
		t.Fatalf("slate has %d candidates, want 5", len(cands))
	}
	g := base.EffectiveSieveGap(p)
	if cands[0].ReadStrategy != StrategyTwoPhase || cands[0].SieveGap != g {
		t.Fatalf("candidate 0 = %+v, want the fixed heuristic (two-phase, gap %d)", cands[0], g)
	}
	if cands[1].SieveGap != g/8 {
		t.Fatalf("candidate 1 gap = %d, want %d", cands[1].SieveGap, g/8)
	}
	if cands[2].SieveGap != g*8 {
		t.Fatalf("candidate 2 gap = %d, want %d", cands[2].SieveGap, g*8)
	}
	if cands[3].ReadStrategy != StrategyListIO || cands[4].ReadStrategy != StrategyIndependent {
		t.Fatalf("candidates 3/4 = %v/%v, want list-io/independent", cands[3].ReadStrategy, cands[4].ReadStrategy)
	}
	// A near-zero derived gap must still produce a legal finer candidate.
	tiny := vfs.Profile{Name: "tiny", Latency: 1e-9, Bandwidth: 100e6, Channels: 1}
	if got := TunerCandidates(tiny, base)[1].SieveGap; got < 1 {
		t.Fatalf("finer candidate gap = %d on a tiny profile, want >= 1", got)
	}
}

// TestFinalizeTiePrefersFixedHeuristic seeds the trial table directly: on
// equal worst-case cost the lowest slate index (the fixed heuristic) must
// win, and a strictly cheaper higher-index candidate must displace it.
func TestFinalizeTiePrefersFixedHeuristic(t *testing.T) {
	mk := func(costs map[int]float64) *Tuner {
		tn := NewTuner()
		for cand, cost := range costs {
			tn.trials[trialID{key: "p/holey", cand: cand}] = &trialStats{
				hints:   Hints{ReadStrategy: StrategyTwoPhase, SieveGap: int64(1000 * (cand + 1))},
				obs:     1,
				maxCost: cost,
			}
		}
		return tn
	}

	tie := mk(map[int]float64{0: 2.5, 1: 2.5, 2: 2.5}).Finalize()
	if len(tie.Entries) != 1 || tie.Entries[0].SieveGap != 1000 {
		t.Fatalf("tie resolved to %+v, want candidate 0 (gap 1000)", tie.Entries)
	}

	win := mk(map[int]float64{0: 2.5, 1: 1.0, 2: 2.5}).Finalize()
	if len(win.Entries) != 1 || win.Entries[0].SieveGap != 2000 {
		t.Fatalf("cheaper candidate lost: %+v, want candidate 1 (gap 2000)", win.Entries)
	}
	if win.Entries[0].CostS != 1.0 {
		t.Fatalf("winner cost = %g, want 1.0", win.Entries[0].CostS)
	}
}
