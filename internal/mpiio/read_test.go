package mpiio

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"parblast/internal/metrics"
	"parblast/internal/mpi"
	"parblast/internal/vfs"
)

// runReaders executes body on n ranks over a file holding total and
// returns each rank's read result.
func runReaders(t *testing.T, n int, profile vfs.Profile, total []byte,
	cfg mpi.Config, body func(r *mpi.Rank, f *File) ([]byte, error)) [][]byte {
	t.Helper()
	fs := vfs.MustNew(profile)
	fs.WriteFile("db", total)
	got := make([][]byte, n)
	var mu sync.Mutex
	if cfg.Cost.NetBandwidth == 0 {
		cfg.Cost = testCost()
	}
	_, err := mpi.RunConfig(n, cfg, func(r *mpi.Rank) error {
		f, err := Open(r, fs, "db")
		if err != nil {
			return err
		}
		data, err := body(r, f)
		if err != nil {
			return err
		}
		mu.Lock()
		got[r.ID()] = data
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestReadCollectiveMatchesViews(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		for _, prof := range []vfs.Profile{vfs.XFSLike(), vfs.NFSLike()} {
			t.Run(fmt.Sprintf("n=%d/%s", n, prof.Name), func(t *testing.T) {
				views, want, total := interleavedViews(n, 4*n+1, 53)
				got := runReaders(t, n, prof, total, mpi.Config{}, func(r *mpi.Rank, f *File) ([]byte, error) {
					if err := f.SetView(views[r.ID()]); err != nil {
						return nil, err
					}
					return f.ReadCollective()
				})
				for i := 0; i < n; i++ {
					if !bytes.Equal(got[i], want[i]) {
						t.Fatalf("rank %d read %d bytes, want %d (first diff at %d)",
							i, len(got[i]), len(want[i]), firstMismatch(got[i], want[i]))
					}
				}
			})
		}
	}
}

func firstMismatch(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func TestReadIndependentMatchesViews(t *testing.T) {
	n := 4
	views, want, total := interleavedViews(n, 9, 31)
	got := runReaders(t, n, vfs.XFSLike(), total, mpi.Config{}, func(r *mpi.Rank, f *File) ([]byte, error) {
		if err := f.SetView(views[r.ID()]); err != nil {
			return nil, err
		}
		return f.ReadIndependent(), nil
	})
	for i := 0; i < n; i++ {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("rank %d mismatch", i)
		}
	}
}

func TestReadCollectiveEmptyParticipants(t *testing.T) {
	// Ranks 0 and 2 read nothing (empty views) but still participate.
	n := 4
	total := []byte("abcdefghijklmnopqrstuvwxyz0123456789")
	got := runReaders(t, n, vfs.NFSLike(), total, mpi.Config{}, func(r *mpi.Rank, f *File) ([]byte, error) {
		if r.ID()%2 == 0 {
			return f.ReadCollective()
		}
		off := int64((r.ID() - 1) / 2 * 18)
		if err := f.SetView(ContiguousView(off, 18)); err != nil {
			return nil, err
		}
		return f.ReadCollective()
	})
	if len(got[0]) != 0 || len(got[2]) != 0 {
		t.Fatalf("empty-view ranks read %d and %d bytes", len(got[0]), len(got[2]))
	}
	if !bytes.Equal(got[1], total[:18]) || !bytes.Equal(got[3], total[18:]) {
		t.Fatalf("reader ranks got %q / %q", got[1], got[3])
	}
}

func TestReadCollectiveAllEmpty(t *testing.T) {
	got := runReaders(t, 3, vfs.XFSLike(), []byte("data"), mpi.Config{}, func(r *mpi.Rank, f *File) ([]byte, error) {
		return f.ReadCollective()
	})
	for i, g := range got {
		if len(g) != 0 {
			t.Fatalf("rank %d read %d bytes from an all-empty collective", i, len(g))
		}
	}
}

// TestReadCollectiveSievesHoles checks that an aggregator reads through
// sub-threshold holes in one access (waste counted) instead of splitting,
// and that unrequested bytes never leak into any rank's result.
func TestReadCollectiveSievesHoles(t *testing.T) {
	n := 2
	recSize := 64
	records := 16
	total := make([]byte, records*recSize)
	for i := range total {
		total[i] = byte(i * 7)
	}
	// Both ranks read every OTHER record: records 0,4,8,... to rank 0 and
	// 2,6,10,... to rank 1 — records 1,3,5,... are holes nobody wants.
	views := make([]View, n)
	want := make([][]byte, n)
	for rec := 0; rec < records; rec += 2 {
		owner := (rec / 2) % n
		views[owner].Segments = append(views[owner].Segments,
			Segment{Offset: int64(rec * recSize), Length: int64(recSize)})
		want[owner] = append(want[owner], total[rec*recSize:(rec+1)*recSize]...)
	}
	reg := metrics.NewRegistry()
	got := runReaders(t, n, vfs.NFSLike(), total, mpi.Config{Cost: testCost(), Metrics: reg},
		func(r *mpi.Rank, f *File) ([]byte, error) {
			if err := f.SetView(views[r.ID()]); err != nil {
				return nil, err
			}
			return f.ReadCollective()
		})
	for i := 0; i < n; i++ {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("rank %d mismatch at %d", i, firstMismatch(got[i], want[i]))
		}
	}
	var waste, aggReads int64
	for _, c := range reg.Snapshot().Counters {
		switch c.Name {
		case "mpiio.sieve_waste_bytes":
			waste += c.Value
		case "mpiio.agg_reads":
			aggReads += c.Value
		}
	}
	// NFS sieve gap = 5ms × 30MB/s = 150KB ≫ the 64-byte holes, so the
	// whole strided pattern coalesces into ONE sequential read per
	// aggregator (NFS has one channel → one aggregator) and every second
	// record is transferred as waste.
	if aggReads != 1 {
		t.Fatalf("agg reads = %d, want 1 (sieving should coalesce the strided requests)", aggReads)
	}
	if wantWaste := int64((records/2 - 1) * recSize); waste != wantWaste {
		t.Fatalf("sieve waste = %d, want %d", waste, wantWaste)
	}
}

// TestReadCollectiveFasterThanIndependentOnNFS is the §3 read-side claim:
// strided independent reads pay per-operation latency on the one NFS
// channel, while the collective turns them into a few large sieved reads.
func TestReadCollectiveFasterThanIndependentOnNFS(t *testing.T) {
	n := 5
	views, _, total := interleavedViews(n, 40, 256)
	run := func(collective bool) float64 {
		fs := vfs.MustNew(vfs.NFSLike())
		fs.WriteFile("db", total)
		clocks, err := mpi.Run(n, testCost(), func(r *mpi.Rank) error {
			f, err := Open(r, fs, "db")
			if err != nil {
				return err
			}
			if err := f.SetView(views[r.ID()]); err != nil {
				return err
			}
			if collective {
				_, err := f.ReadCollective()
				return err
			}
			f.ReadIndependent()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var max float64
		for _, c := range clocks {
			if c.Now() > max {
				max = c.Now()
			}
		}
		return max
	}
	indep := run(false)
	coll := run(true)
	if coll*3 > indep {
		t.Fatalf("collective read %.4fs not ≥3× faster than independent %.4fs", coll, indep)
	}
}

// TestReadCollectiveSurvivesCrashes sweeps a victim's crash time across
// the protocol's phases (before the bounds exchange, during the request
// phase, during aggregation) and checks every surviving rank still reads
// exactly its view — the independent-read fallback path.
func TestReadCollectiveSurvivesCrashes(t *testing.T) {
	n := 4
	victim := 2
	for _, at := range []float64{0, 1e-4, 3e-4, 1e-3, 5e-3} {
		t.Run(fmt.Sprintf("at=%g", at), func(t *testing.T) {
			views, want, total := interleavedViews(n, 4*n, 97)
			cfg := mpi.Config{
				Cost:   testCost(),
				Faults: []mpi.Fault{{Rank: victim, At: at, Kind: mpi.FaultCrash}},
			}
			got := runReaders(t, n, vfs.XFSLike(), total, cfg, func(r *mpi.Rank, f *File) ([]byte, error) {
				if err := f.SetView(views[r.ID()]); err != nil {
					return nil, err
				}
				return f.ReadCollective()
			})
			for i := 0; i < n; i++ {
				if i == victim {
					continue
				}
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("surviving rank %d mismatch at %d (crash at %g)",
						i, firstMismatch(got[i], want[i]), at)
				}
			}
		})
	}
}

// TestAsyncReadOverlapsCompute checks the max(io, compute) accounting:
// a read started before a compute block costs only the part that is not
// hidden behind the compute.
func TestAsyncReadOverlapsCompute(t *testing.T) {
	fs := vfs.MustNew(vfs.NFSLike())
	payload := make([]byte, 1<<20)
	fs.WriteFile("db", payload)
	const units = int64(200_000_000) // 2s of compute at 1e-8 s/unit

	elapsed := func(async bool) float64 {
		fsLocal := vfs.MustNew(vfs.NFSLike())
		fsLocal.WriteFile("db", payload)
		clocks, err := mpi.Run(1, testCost(), func(r *mpi.Rank) error {
			f, err := Open(r, fsLocal, "db")
			if err != nil {
				return err
			}
			if async {
				ar := f.StartReadAt(0, int64(len(payload)))
				r.Compute(units)
				if got := ar.Wait(); len(got) != len(payload) {
					return fmt.Errorf("short async read: %d", len(got))
				}
			} else {
				if got := f.ReadAt(0, int64(len(payload))); len(got) != len(payload) {
					return fmt.Errorf("short read: %d", len(got))
				}
				r.Compute(units)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return clocks[0].Now()
	}

	sync := elapsed(false)
	async := elapsed(true)
	// The 1MB NFS read takes ~38ms, fully hidden behind 2s of compute:
	// async pays max(io, compute) = compute only.
	if async >= sync {
		t.Fatalf("async %.4fs not faster than sync %.4fs", async, sync)
	}
	const compute = 2.0
	if async > compute*1.01 {
		t.Fatalf("async time %.4fs should collapse to the compute time %.2fs", async, compute)
	}
}

// TestAsyncReadDeterministic re-runs an overlapped schedule and demands
// identical virtual clocks.
func TestAsyncReadDeterministic(t *testing.T) {
	run := func() []float64 {
		n := 3
		views, _, total := interleavedViews(n, 12, 128)
		fs := vfs.MustNew(vfs.XFSLike())
		fs.WriteFile("db", total)
		clocks, err := mpi.Run(n, testCost(), func(r *mpi.Rank) error {
			f, err := Open(r, fs, "db")
			if err != nil {
				return err
			}
			var handles []*AsyncRead
			for _, s := range views[r.ID()].Segments {
				handles = append(handles, f.StartReadAt(s.Offset, s.Length))
			}
			r.Compute(1000)
			for _, h := range handles {
				h.Wait()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, n)
		for i, c := range clocks {
			out[i] = c.Now()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d: %.9f vs %.9f across runs", i, a[i], b[i])
		}
	}
}
