// Two-phase (aggregator) collective I/O: the bounds exchange, aggregator
// domain partitioning, and shuffle-record plumbing shared by the collective
// write and the collective read, plus the two operations themselves.
package mpiio

import (
	"errors"
	"fmt"
	"sort"

	"parblast/internal/mpi"
	"parblast/internal/vfs"
)

// bound is one live participant's view extent, gathered in phase 0.
type bound struct {
	rank   int
	lo, hi int64 // hi < 0 means an empty view
}

// collPlan is the agreed outcome of a collective operation's bounds
// exchange: the live participants in ascending rank order, this rank's
// position among them, the aggregator count, and the aggregate extent.
// Every participant computes an identical plan from the AllGather result,
// so the message pattern needs no further coordination.
type collPlan struct {
	parts    []bound
	selfIdx  int
	numAgg   int
	gLo, gHi int64
}

// planCollective runs phase 0+1 of the two-phase algorithm: exchange view
// bounds, agree on participants, and choose aggregators — as many as the
// file system sustains concurrently, at most the participant count.
// Aggregator a is the a-th live participant (rank a when nobody crashed).
// Crashed ranks contribute nil to the AllGather; everyone skips them
// identically, so the survivors still agree on domains and messages.
func (f *File) planCollective() collPlan {
	var lo, hi int64 = 1<<62 - 1, -1
	for _, s := range f.view.Segments {
		if s.Length == 0 {
			continue
		}
		if s.Offset < lo {
			lo = s.Offset
		}
		if end := s.Offset + s.Length; end > hi {
			hi = end
		}
	}
	bounds := make([]byte, 16)
	putI64(bounds[0:], lo)
	putI64(bounds[8:], hi)
	all := f.rank.AllGather(bounds)
	p := collPlan{selfIdx: -1, gLo: 1<<62 - 1, gHi: -1}
	for i, b := range all {
		if len(b) < 16 {
			continue // crashed rank: no bounds
		}
		l, h := getI64(b[0:]), getI64(b[8:])
		if i == f.rank.ID() {
			p.selfIdx = len(p.parts)
		}
		p.parts = append(p.parts, bound{rank: i, lo: l, hi: h})
		if h < 0 {
			continue // that rank moves nothing
		}
		if l < p.gLo {
			p.gLo = l
		}
		if h > p.gHi {
			p.gHi = h
		}
	}
	p.numAgg = f.fs.Profile().Channels
	if p.numAgg > len(p.parts) {
		p.numAgg = len(p.parts)
	}
	if p.numAgg < 1 {
		p.numAgg = 1
	}
	return p
}

// empty reports that no participant has any data in its view.
func (p collPlan) empty() bool { return p.gHi < 0 }

// isAggregator reports whether the calling rank serves an aggregator domain.
func (p collPlan) isAggregator() bool { return p.selfIdx >= 0 && p.selfIdx < p.numAgg }

// domainOf returns aggregator a's half-open byte domain.
func (p collPlan) domainOf(a int) (int64, int64) {
	extent := p.gHi - p.gLo
	d0 := p.gLo + extent*int64(a)/int64(p.numAgg)
	d1 := p.gLo + extent*int64(a+1)/int64(p.numAgg)
	return d0, d1
}

// aggAt returns the aggregator whose domain contains file offset off.
func (p collPlan) aggAt(off int64) int {
	extent := p.gHi - p.gLo
	a := int(int64(p.numAgg) * (off - p.gLo) / extent)
	if a >= p.numAgg {
		a = p.numAgg - 1
	}
	// Integer flooring can land one domain low at boundaries; walk up
	// until off is strictly inside [d0, d1).
	_, d1 := p.domainOf(a)
	for off >= d1 && a < p.numAgg-1 {
		a++
		_, d1 = p.domainOf(a)
	}
	return a
}

// overlaps reports whether a participant extent [blo, bhi) can intersect
// aggregator a's domain. A rank ships to (and an aggregator receives from)
// a peer only when this holds — both sides compute it from the gathered
// bounds, so the skip rule is symmetric and no zero-byte messages are
// exchanged.
func (p collPlan) overlaps(blo, bhi int64, a int) bool {
	if bhi < 0 {
		return false // empty view: nothing to move
	}
	d0, d1 := p.domainOf(a)
	return blo < d1 && d0 < bhi
}

// splitView walks the rank's view segments in order, splitting each at
// aggregator domain boundaries, and hands every (aggregator, offset,
// length) piece to fn. Both collectives derive their shuffle traffic from
// this one walk, so the write and read message patterns agree by
// construction.
func (f *File) splitView(p collPlan, fn func(a int, off, length int64)) {
	for _, s := range f.view.Segments {
		segOff := s.Offset
		remain := s.Length
		for remain > 0 {
			a := p.aggAt(segOff)
			_, d1 := p.domainOf(a)
			take := remain
			if segOff+take > d1 {
				take = d1 - segOff
			}
			fn(a, segOff, take)
			segOff += take
			remain -= take
		}
	}
}

// recvShuffle receives one shuffle-phase message. When the world schedules
// faults it uses a crash-aware timeout loop so a dead peer surfaces as
// mpi.ErrRankFailed instead of a deadlock; a message that arrives within
// any polling window still completes at exactly its arrival time, so the
// fault-free schedule is unchanged.
func (f *File) recvShuffle(src, tag int) ([]byte, error) {
	r := f.rank
	if !r.FaultsScheduled() {
		data, _, _ := r.Recv(src, tag)
		return data, nil
	}
	timeout := 250 * r.Cost().NetLatency
	for {
		data, _, _, err := r.RecvTimeout(src, tag, timeout)
		if err == nil {
			return data, nil
		}
		if errors.Is(err, mpi.ErrRankFailed) {
			return nil, err
		}
		// Timed out: the peer is alive but not ready yet.
	}
}

// aggSpan is a covered interval inside an aggregator's domain.
type aggSpan struct {
	off  int64
	data []byte
}

// WriteCollective writes data through the installed views of ALL ranks as
// one collective operation. Every rank of the world must call it together
// (ranks with nothing to write pass an empty view and nil data).
//
// Algorithm (two-phase I/O):
//  1. ranks exchange view bounds to learn the aggregate extent;
//  2. the extent is partitioned over A aggregator ranks;
//  3. each rank ships the pieces of its data that land in each
//     aggregator's domain (real messages, real bytes);
//  4. each aggregator coalesces what it received and issues one large
//     sequential write per contiguous span.
func (f *File) WriteCollective(data []byte) error {
	if int64(len(data)) != f.view.TotalLength() {
		return fmt.Errorf("mpiio: data length %d != view length %d", len(data), f.view.TotalLength())
	}
	r := f.rank
	reg := r.Metrics()
	reg.Counter("mpiio.collective_writes", r.ID()).Inc()

	plan := f.planCollective()
	if plan.empty() {
		return nil // nobody writes anything
	}

	// Phase 2: ship my data to each aggregator. Message layout:
	// repeated records of (offset int64, length int64, bytes). splitView
	// hands out pieces in view order, so a running cursor locates each
	// piece's bytes inside data.
	myPieces := make([][]byte, plan.numAgg)
	var dataPos int64
	f.splitView(plan, func(a int, off, length int64) {
		rec := make([]byte, 16+length)
		putI64(rec[0:], off)
		putI64(rec[8:], length)
		copy(rec[16:], data[dataPos:dataPos+length])
		dataPos += length
		myPieces[a] = append(myPieces[a], rec...)
	})

	for a := 0; a < plan.numAgg; a++ {
		dst := plan.parts[a].rank
		if dst == r.ID() {
			continue // keep local pieces local (no self-message cost)
		}
		if !plan.overlaps(plan.parts[plan.selfIdx].lo, plan.parts[plan.selfIdx].hi, a) {
			continue // none of my data can land in this domain
		}
		reg.Counter("mpiio.shuffle_bytes", r.ID()).Add(int64(len(myPieces[a])))
		r.Send(dst, tagBase+1, myPieces[a])
	}

	// Phase 3: aggregators collect, coalesce, and write. The receive set
	// mirrors the send rule: only participants whose extent overlaps my
	// domain will ship anything.
	if plan.isAggregator() {
		var spans []aggSpan
		addRecords := func(buf []byte) {
			for len(buf) > 0 {
				off := getI64(buf[0:])
				length := getI64(buf[8:])
				spans = append(spans, aggSpan{off: off, data: buf[16 : 16+length]})
				buf = buf[16+length:]
			}
		}
		addRecords(myPieces[plan.selfIdx])
		for _, p := range plan.parts {
			if p.rank == r.ID() || !plan.overlaps(p.lo, p.hi, plan.selfIdx) {
				continue
			}
			buf, _, _ := r.Recv(p.rank, tagBase+1)
			addRecords(buf)
		}
		// Coalesce into maximal contiguous runs.
		sort.Slice(spans, func(i, j int) bool { return spans[i].off < spans[j].off })
		i := 0
		for i < len(spans) {
			runStart := spans[i].off
			var runData []byte
			expected := runStart
			for i < len(spans) && spans[i].off == expected {
				runData = append(runData, spans[i].data...)
				expected += int64(len(spans[i].data))
				r.MemCopy(int64(len(spans[i].data)))
				i++
			}
			f.f.WriteAt(runData, runStart)
			r.IO(f.fs, int64(len(runData)))
			reg.Counter("mpiio.agg_writes", r.ID()).Inc()
			reg.Counter("mpiio.agg_write_bytes", r.ID()).Add(int64(len(runData)))
		}
	}

	// Phase 4: the collective completes when the slowest participant is
	// done (MPI_File_write_all is collective).
	r.Barrier()
	return nil
}

// sieveGap is the hole-skipping threshold for data sieving: two requested
// extents closer than this are read through in one sequential access,
// because transferring the hole costs less than a second operation's
// latency (gap/bandwidth < latency). Derived from the file-system profile,
// so it adapts to each platform deterministically.
func sieveGap(p vfs.Profile) int64 {
	return int64(p.Latency * p.Bandwidth)
}

// readReq is one participant's requested extent inside an aggregator's
// domain.
type readReq struct {
	rank   int
	off, n int64
}

// ReadCollective reads the bytes selected by the installed views of ALL
// ranks as one collective operation (MPI_File_read_all). Every rank of the
// world must call it together; ranks with nothing to read pass an empty
// view and receive nil.
//
// Algorithm (two-phase I/O, read side):
//  1. ranks exchange view bounds to learn the aggregate extent;
//  2. the extent is partitioned over A aggregator ranks;
//  3. each rank ships its REQUESTS (offset/length records, no data) to
//     the aggregators whose domains its extent overlaps;
//  4. each aggregator coalesces the requests into sieved runs — holes
//     smaller than the file system's latency×bandwidth product are read
//     through in one sequential access, with the skipped-hole bytes
//     counted as mpiio.sieve_waste_bytes — and ships each rank its
//     pieces back;
//  5. ranks assemble the received pieces into view order.
//
// Unlike the write side, a read always has a recovery path: the source
// file is intact, so when faults are scheduled and an aggregator dies
// mid-protocol, the requester falls back to independent reads of the
// missing pieces and the collective still returns correct bytes.
func (f *File) ReadCollective() ([]byte, error) {
	r := f.rank
	reg := r.Metrics()
	reg.Counter("mpiio.collective_reads", r.ID()).Inc()

	plan := f.planCollective()
	if plan.empty() {
		return nil, nil // nobody reads anything
	}
	if plan.selfIdx < 0 {
		return nil, fmt.Errorf("mpiio: calling rank missing from collective plan")
	}
	self := plan.parts[plan.selfIdx]

	// Phase 2: ship request records (offset, length) to each overlapping
	// aggregator; keep the local aggregator's requests local.
	myReqs := make([][]byte, plan.numAgg)
	f.splitView(plan, func(a int, off, length int64) {
		rec := make([]byte, 16)
		putI64(rec[0:], off)
		putI64(rec[8:], length)
		myReqs[a] = append(myReqs[a], rec...)
	})
	for a := 0; a < plan.numAgg; a++ {
		dst := plan.parts[a].rank
		if dst == r.ID() || !plan.overlaps(self.lo, self.hi, a) {
			continue
		}
		reg.Counter("mpiio.read_requests", r.ID()).Inc()
		r.Send(dst, tagBase+2, myReqs[a])
	}

	// Phase 3: aggregators gather requests, read their domains with data
	// sieving, and ship each requester its pieces back as (offset,
	// length, bytes) records.
	var localPieces []byte // my own pieces when I am an aggregator
	if plan.isAggregator() {
		a := plan.selfIdx
		var reqs []readReq
		addReqs := func(rank int, buf []byte) {
			for len(buf) >= 16 {
				reqs = append(reqs, readReq{rank: rank, off: getI64(buf[0:]), n: getI64(buf[8:])})
				buf = buf[16:]
			}
		}
		addReqs(r.ID(), myReqs[a])
		live := make(map[int]bool)
		for _, p := range plan.parts {
			if p.rank == r.ID() || !plan.overlaps(p.lo, p.hi, a) {
				continue
			}
			buf, err := f.recvShuffle(p.rank, tagBase+2)
			if err != nil {
				continue // requester died before asking; nothing to serve
			}
			live[p.rank] = true
			addReqs(p.rank, buf)
		}
		sort.Slice(reqs, func(i, j int) bool {
			if reqs[i].off != reqs[j].off {
				return reqs[i].off < reqs[j].off
			}
			return reqs[i].rank < reqs[j].rank
		})
		gap := sieveGap(f.fs.Profile())
		reply := make(map[int][]byte)
		for i := 0; i < len(reqs); {
			// Grow a sieved run: absorb requests whose holes are below
			// the threshold.
			runStart := reqs[i].off
			runEnd := runStart + reqs[i].n
			j := i + 1
			for j < len(reqs) && reqs[j].off <= runEnd+gap {
				if end := reqs[j].off + reqs[j].n; end > runEnd {
					runEnd = end
				}
				j++
			}
			buf := make([]byte, runEnd-runStart)
			got := f.f.ReadAt(buf, runStart)
			r.IO(f.fs, int64(got))
			reg.Counter("mpiio.agg_reads", r.ID()).Inc()
			reg.Counter("mpiio.agg_read_bytes", r.ID()).Add(int64(got))
			// Waste = hole bytes transferred but not requested by anyone.
			covEnd := runStart
			var waste int64
			for k := i; k < j; k++ {
				if reqs[k].off > covEnd {
					waste += reqs[k].off - covEnd
				}
				if end := reqs[k].off + reqs[k].n; end > covEnd {
					covEnd = end
				}
			}
			reg.Counter("mpiio.sieve_waste_bytes", r.ID()).Add(waste)
			for k := i; k < j; k++ {
				q := reqs[k]
				data := buf[q.off-runStart:]
				if q.n < int64(len(data)) {
					data = data[:q.n]
				}
				rec := make([]byte, 16+len(data))
				putI64(rec[0:], q.off)
				putI64(rec[8:], int64(len(data)))
				copy(rec[16:], data)
				reply[q.rank] = append(reply[q.rank], rec...)
				r.MemCopy(int64(len(data)))
			}
			i = j
		}
		localPieces = reply[r.ID()]
		for _, p := range plan.parts {
			if p.rank == r.ID() || !plan.overlaps(p.lo, p.hi, a) || !live[p.rank] {
				continue
			}
			reg.Counter("mpiio.shuffle_bytes", r.ID()).Add(int64(len(reply[p.rank])))
			r.Send(p.rank, tagBase+3, reply[p.rank])
		}
	}

	// Phase 5: collect my pieces from every overlapping aggregator and
	// assemble them in view order. A dead aggregator's pieces are re-read
	// independently — correct, just slower.
	pieces := make(map[int64][]byte)
	failed := make(map[int]bool)
	addPieces := func(buf []byte) {
		for len(buf) >= 16 {
			off := getI64(buf[0:])
			length := getI64(buf[8:])
			pieces[off] = buf[16 : 16+length]
			buf = buf[16+length:]
		}
	}
	for a := 0; a < plan.numAgg; a++ {
		if !plan.overlaps(self.lo, self.hi, a) {
			continue
		}
		if plan.parts[a].rank == r.ID() {
			addPieces(localPieces)
			continue
		}
		buf, err := f.recvShuffle(plan.parts[a].rank, tagBase+3)
		if err != nil {
			failed[a] = true
			continue
		}
		addPieces(buf)
	}
	out := make([]byte, 0, f.view.TotalLength())
	f.splitView(plan, func(a int, off, length int64) {
		if failed[a] {
			out = append(out, f.ReadAt(off, length)...)
			return
		}
		data := pieces[off]
		out = append(out, data...)
		r.MemCopy(int64(len(data)))
	})

	// The read completes when the slowest participant is done
	// (MPI_File_read_all is collective). Barrier is crash-aware: it
	// completes over survivors if a peer died mid-protocol.
	r.Barrier()
	return out, nil
}
