// Two-phase (aggregator) collective I/O: the bounds exchange, aggregator
// domain partitioning, and shuffle-record plumbing shared by the collective
// write and the collective read, plus the two operations themselves.
package mpiio

import (
	"errors"
	"fmt"
	"sort"

	"parblast/internal/mpi"
)

// bound is one live participant's view summary, gathered in phase 0: the
// extent plus the requested volume and segment count that feed the
// access-pattern signature.
type bound struct {
	rank   int
	lo, hi int64 // hi < 0 means an empty view
	total  int64 // sum of segment lengths
	segs   int64 // number of non-empty segments
}

// collPlan is the agreed outcome of a collective operation's bounds
// exchange: the live participants in ascending rank order, this rank's
// position among them, the aggregator count, and the aggregate extent.
// Every participant computes an identical plan from the AllGather result,
// so the message pattern needs no further coordination.
type collPlan struct {
	parts    []bound
	selfIdx  int
	numAgg   int
	gLo, gHi int64
}

// planCollective runs phase 0 of the two-phase algorithm: exchange view
// bounds and agree on participants. Crashed ranks contribute nil to the
// AllGather; everyone skips them identically, so the survivors still
// agree on domains and messages. chooseAggregators completes the plan
// (phase 1) once the effective hints are known.
func (f *File) planCollective() collPlan {
	var lo, hi, total, segs int64 = 1<<62 - 1, -1, 0, 0
	for _, s := range f.view.Segments {
		if s.Length == 0 {
			continue
		}
		if s.Offset < lo {
			lo = s.Offset
		}
		if end := s.Offset + s.Length; end > hi {
			hi = end
		}
		total += s.Length
		segs++
	}
	bounds := make([]byte, 32)
	putI64(bounds[0:], lo)
	putI64(bounds[8:], hi)
	putI64(bounds[16:], total)
	putI64(bounds[24:], segs)
	all := f.rank.AllGather(bounds)
	p := collPlan{selfIdx: -1, gLo: 1<<62 - 1, gHi: -1}
	for i, b := range all {
		if len(b) < 32 {
			continue // crashed rank: no bounds
		}
		if i == f.rank.ID() {
			p.selfIdx = len(p.parts)
		}
		p.parts = append(p.parts, bound{
			rank:  i,
			lo:    getI64(b[0:]),
			hi:    getI64(b[8:]),
			total: getI64(b[16:]),
			segs:  getI64(b[24:]),
		})
		h := p.parts[len(p.parts)-1]
		if h.hi < 0 {
			continue // that rank moves nothing
		}
		if h.lo < p.gLo {
			p.gLo = h.lo
		}
		if h.hi > p.gHi {
			p.gHi = h.hi
		}
	}
	return p
}

// chooseAggregators completes the plan: as many aggregators as the hints
// allow (cb_nodes, defaulting to the file system's concurrent-channel
// count), clamped to the live participant count AND to the aggregate
// extent — an aggregator with an empty byte domain would pay shuffle
// latency for nothing.
func (p *collPlan) chooseAggregators(channels int, h Hints) {
	n := h.CbNodes
	if n <= 0 {
		n = channels
	}
	if n > len(p.parts) {
		n = len(p.parts)
	}
	if extent := p.gHi - p.gLo; extent > 0 && int64(n) > extent {
		n = int(extent)
	}
	if n < 1 {
		n = 1
	}
	p.numAgg = n
}

// signature classifies the collective's access pattern from the gathered
// bounds — identically on every rank, since all inputs came out of the
// same AllGather. The (fs profile, signature) pair is the auto-tuner's
// learning key.
//
//	contig:  at most one non-empty segment per participant with data
//	strided: multi-segment views covering at least half the extent
//	holey:   multi-segment views requesting under half the extent
func (p collPlan) signature() string {
	var withData, segs, total int64
	for _, b := range p.parts {
		if b.hi < 0 {
			continue
		}
		withData++
		segs += b.segs
		total += b.total
	}
	if withData == 0 {
		return "empty"
	}
	if segs <= withData {
		return "contig"
	}
	if extent := p.gHi - p.gLo; 2*total >= extent {
		return "strided"
	}
	return "holey"
}

// empty reports that no participant has any data in its view.
func (p collPlan) empty() bool { return p.gHi < 0 }

// isAggregator reports whether the calling rank serves an aggregator domain.
func (p collPlan) isAggregator() bool { return p.selfIdx >= 0 && p.selfIdx < p.numAgg }

// domainOf returns aggregator a's half-open byte domain.
func (p collPlan) domainOf(a int) (int64, int64) {
	extent := p.gHi - p.gLo
	d0 := p.gLo + extent*int64(a)/int64(p.numAgg)
	d1 := p.gLo + extent*int64(a+1)/int64(p.numAgg)
	return d0, d1
}

// aggAt returns the aggregator whose domain contains file offset off.
func (p collPlan) aggAt(off int64) int {
	extent := p.gHi - p.gLo
	a := int(int64(p.numAgg) * (off - p.gLo) / extent)
	if a >= p.numAgg {
		a = p.numAgg - 1
	}
	// Integer flooring can land one domain low at boundaries; walk up
	// until off is strictly inside [d0, d1).
	_, d1 := p.domainOf(a)
	for off >= d1 && a < p.numAgg-1 {
		a++
		_, d1 = p.domainOf(a)
	}
	return a
}

// overlaps reports whether a participant extent [blo, bhi) can intersect
// aggregator a's domain. A rank ships to (and an aggregator receives from)
// a peer only when this holds — both sides compute it from the gathered
// bounds, so the skip rule is symmetric and no zero-byte messages are
// exchanged.
func (p collPlan) overlaps(blo, bhi int64, a int) bool {
	if bhi < 0 {
		return false // empty view: nothing to move
	}
	d0, d1 := p.domainOf(a)
	return blo < d1 && d0 < bhi
}

// splitView walks the rank's view segments in order, splitting each at
// aggregator domain boundaries, and hands every (aggregator, offset,
// length) piece to fn. Both collectives derive their shuffle traffic from
// this one walk, so the write and read message patterns agree by
// construction.
func (f *File) splitView(p collPlan, fn func(a int, off, length int64)) {
	for _, s := range f.view.Segments {
		segOff := s.Offset
		remain := s.Length
		for remain > 0 {
			a := p.aggAt(segOff)
			_, d1 := p.domainOf(a)
			take := remain
			if segOff+take > d1 {
				take = d1 - segOff
			}
			fn(a, segOff, take)
			segOff += take
			remain -= take
		}
	}
}

// recvShuffle receives one shuffle-phase message. When the world schedules
// faults it uses a crash-aware timeout loop so a dead peer surfaces as
// mpi.ErrRankFailed instead of a deadlock; a message that arrives within
// any polling window still completes at exactly its arrival time, so the
// fault-free schedule is unchanged.
func (f *File) recvShuffle(src, tag int) ([]byte, error) {
	r := f.rank
	if !r.FaultsScheduled() {
		data, _, _ := r.Recv(src, tag)
		return data, nil
	}
	timeout := 250 * r.Cost().NetLatency
	for {
		data, _, _, err := r.RecvTimeout(src, tag, timeout)
		if err == nil {
			return data, nil
		}
		if errors.Is(err, mpi.ErrRankFailed) {
			return nil, err
		}
		// Timed out: the peer is alive but not ready yet.
	}
}

// aggSpan is a covered interval inside an aggregator's domain.
type aggSpan struct {
	off  int64
	data []byte
}

// WriteCollective writes data through the installed views of ALL ranks as
// one collective operation. Every rank of the world must call it together
// (ranks with nothing to write pass an empty view and nil data).
//
// Algorithm (two-phase I/O):
//  1. ranks exchange view bounds to learn the aggregate extent;
//  2. the extent is partitioned over A aggregator ranks;
//  3. each rank ships the pieces of its data that land in each
//     aggregator's domain (real messages, real bytes);
//  4. each aggregator coalesces what it received and issues one large
//     sequential write per contiguous span.
func (f *File) WriteCollective(data []byte) error {
	if int64(len(data)) != f.view.TotalLength() {
		return fmt.Errorf("mpiio: data length %d != view length %d", len(data), f.view.TotalLength())
	}
	r := f.rank
	reg := r.Metrics()
	reg.Counter("mpiio.collective_writes", r.ID()).Inc()

	plan := f.planCollective()
	if plan.empty() {
		return nil // nobody writes anything
	}
	plan.chooseAggregators(f.fs.Profile().Channels, f.hints)

	// Phase 2: ship my data to each aggregator. Message layout:
	// repeated records of (offset int64, length int64, bytes). splitView
	// hands out pieces in view order, so a running cursor locates each
	// piece's bytes inside data.
	myPieces := make([][]byte, plan.numAgg)
	var dataPos int64
	f.splitView(plan, func(a int, off, length int64) {
		rec := make([]byte, 16+length)
		putI64(rec[0:], off)
		putI64(rec[8:], length)
		copy(rec[16:], data[dataPos:dataPos+length])
		dataPos += length
		myPieces[a] = append(myPieces[a], rec...)
	})

	for a := 0; a < plan.numAgg; a++ {
		dst := plan.parts[a].rank
		if dst == r.ID() {
			continue // keep local pieces local (no self-message cost)
		}
		if !plan.overlaps(plan.parts[plan.selfIdx].lo, plan.parts[plan.selfIdx].hi, a) {
			continue // none of my data can land in this domain
		}
		reg.Counter("mpiio.shuffle_bytes", r.ID()).Add(int64(len(myPieces[a])))
		r.Send(dst, tagBase+1, myPieces[a])
	}

	// Phase 3: aggregators collect, coalesce, and write. The receive set
	// mirrors the send rule: only participants whose extent overlaps my
	// domain will ship anything.
	if plan.isAggregator() {
		var spans []aggSpan
		addRecords := func(buf []byte) {
			for len(buf) > 0 {
				off := getI64(buf[0:])
				length := getI64(buf[8:])
				spans = append(spans, aggSpan{off: off, data: buf[16 : 16+length]})
				buf = buf[16+length:]
			}
		}
		addRecords(myPieces[plan.selfIdx])
		for _, p := range plan.parts {
			if p.rank == r.ID() || !plan.overlaps(p.lo, p.hi, plan.selfIdx) {
				continue
			}
			buf, _, _ := r.Recv(p.rank, tagBase+1)
			addRecords(buf)
		}
		// Coalesce into maximal contiguous runs.
		sort.Slice(spans, func(i, j int) bool { return spans[i].off < spans[j].off })
		i := 0
		for i < len(spans) {
			runStart := spans[i].off
			var runData []byte
			expected := runStart
			for i < len(spans) && spans[i].off == expected {
				runData = append(runData, spans[i].data...)
				expected += int64(len(spans[i].data))
				r.MemCopy(int64(len(spans[i].data)))
				i++
			}
			f.f.WriteAt(runData, runStart)
			r.IO(f.fs, int64(len(runData)))
			reg.Counter("mpiio.agg_writes", r.ID()).Inc()
			reg.Counter("mpiio.agg_write_bytes", r.ID()).Add(int64(len(runData)))
		}
	}

	// Phase 4: the collective completes when the slowest participant is
	// done (MPI_File_write_all is collective).
	r.Barrier()
	return nil
}

// readReq is one participant's requested extent inside an aggregator's
// domain.
type readReq struct {
	rank   int
	off, n int64
}

// ReadCollective reads the bytes selected by the installed views of ALL
// ranks as one collective operation (MPI_File_read_all). Every rank of the
// world must call it together; ranks with nothing to read pass an empty
// view and receive nil.
//
// The strategy is chosen by the file's hints (default two-phase) or, when
// a tuner is attached, by the tuner's per-(profile, access-pattern)
// decision — every rank derives the identical decision from the shared
// bounds exchange, so the message pattern still needs no coordination:
//
//   - two-phase (ROMIO default): aggregators issue large sieved
//     sequential reads — holes smaller than the effective sieve gap are
//     read through in one access, the skipped-hole bytes counted as
//     mpiio.sieve_waste_bytes — and ship each requester its pieces;
//   - list-io: the same shuffle, but aggregators issue one access per
//     coalesced request run, so no hole byte is ever transferred (zero
//     sieve waste, more operations);
//   - independent: every rank reads its own segments directly — no
//     shuffle traffic, full storage parallelism.
//
// Algorithm of the aggregated strategies (two-phase I/O, read side):
//  1. ranks exchange view bounds to learn the aggregate extent;
//  2. the extent is partitioned over A aggregator ranks;
//  3. each rank ships its REQUESTS (offset/length records, no data) to
//     the aggregators whose domains its extent overlaps;
//  4. each aggregator coalesces the requests into runs (sieved or exact)
//     and ships each rank its pieces back;
//  5. ranks assemble the received pieces into view order.
//
// Unlike the write side, a read always has a recovery path: the source
// file is intact, so when faults are scheduled and an aggregator dies
// mid-protocol, the requester falls back to independent reads of the
// missing pieces and the collective still returns correct bytes.
func (f *File) ReadCollective() ([]byte, error) {
	r := f.rank
	reg := r.Metrics()
	reg.Counter("mpiio.collective_reads", r.ID()).Inc()

	plan := f.planCollective()
	if plan.empty() {
		return nil, nil // nobody reads anything
	}
	if plan.selfIdx < 0 {
		return nil, fmt.Errorf("mpiio: calling rank missing from collective plan")
	}

	h := f.hints
	var obs *tunerObs
	if f.tuner != nil {
		h, obs = f.tuner.decide(r, f.fs.Profile(), plan.signature(), f.hints)
	}
	plan.chooseAggregators(f.fs.Profile().Channels, h)
	reg.Counter("mpiio.strategy."+h.ReadStrategy.slug(), r.ID()).Inc()

	var out []byte
	var err error
	if h.ReadStrategy == StrategyIndependent {
		// No aggregation: each rank reads its own segments (zero-length
		// segments are skipped) and the collective completes at the
		// crash-aware barrier like the other strategies.
		out = f.ReadIndependent()
		r.Barrier()
	} else {
		out, err = f.readAggregated(plan, h)
	}
	if err == nil && obs != nil {
		f.tuner.observe(r, obs)
	}
	return out, err
}

// readAggregated is the shuffle-based read path shared by the two-phase
// and list-I/O strategies; they differ only in how an aggregator turns
// the gathered requests into storage accesses (sieved runs vs exact
// coalesced runs).
func (f *File) readAggregated(plan collPlan, h Hints) ([]byte, error) {
	r := f.rank
	reg := r.Metrics()
	self := plan.parts[plan.selfIdx]

	// Phase 2: ship request records (offset, length) to each overlapping
	// aggregator; keep the local aggregator's requests local.
	myReqs := make([][]byte, plan.numAgg)
	f.splitView(plan, func(a int, off, length int64) {
		rec := make([]byte, 16)
		putI64(rec[0:], off)
		putI64(rec[8:], length)
		myReqs[a] = append(myReqs[a], rec...)
	})
	for a := 0; a < plan.numAgg; a++ {
		dst := plan.parts[a].rank
		if dst == r.ID() || !plan.overlaps(self.lo, self.hi, a) {
			continue
		}
		reg.Counter("mpiio.read_requests", r.ID()).Inc()
		r.Send(dst, tagBase+2, myReqs[a])
	}

	// Phase 3: aggregators gather requests, read their domains with data
	// sieving, and ship each requester its pieces back as (offset,
	// length, bytes) records.
	var localPieces []byte // my own pieces when I am an aggregator
	if plan.isAggregator() {
		a := plan.selfIdx
		var reqs []readReq
		addReqs := func(rank int, buf []byte) {
			for len(buf) >= 16 {
				reqs = append(reqs, readReq{rank: rank, off: getI64(buf[0:]), n: getI64(buf[8:])})
				buf = buf[16:]
			}
		}
		addReqs(r.ID(), myReqs[a])
		live := make(map[int]bool)
		for _, p := range plan.parts {
			if p.rank == r.ID() || !plan.overlaps(p.lo, p.hi, a) {
				continue
			}
			buf, err := f.recvShuffle(p.rank, tagBase+2)
			if err != nil {
				continue // requester died before asking; nothing to serve
			}
			live[p.rank] = true
			addReqs(p.rank, buf)
		}
		sort.Slice(reqs, func(i, j int) bool {
			if reqs[i].off != reqs[j].off {
				return reqs[i].off < reqs[j].off
			}
			return reqs[i].rank < reqs[j].rank
		})
		// The strategies differ only in the hole threshold: two-phase
		// sieves through holes strictly smaller than the effective gap;
		// list-I/O (gap 0) merges only overlapping or abutting requests,
		// so every run is exact and no hole byte is ever transferred.
		var gap int64
		if h.ReadStrategy == StrategyTwoPhase {
			gap = h.EffectiveSieveGap(f.fs.Profile())
		}
		reply := make(map[int][]byte)
		for i := 0; i < len(reqs); {
			// Grow a run: absorb overlapping/abutting requests (hole ≤ 0
			// — always free) and, under two-phase, requests whose holes
			// are strictly below the sieve threshold. A hole of exactly
			// the gap starts a new run: transferring it costs no less
			// than the operation latency it would save.
			runStart := reqs[i].off
			runEnd := runStart + reqs[i].n
			j := i + 1
			for j < len(reqs) {
				if hole := reqs[j].off - runEnd; hole > 0 && hole >= gap {
					break
				}
				if end := reqs[j].off + reqs[j].n; end > runEnd {
					runEnd = end
				}
				j++
			}
			buf := make([]byte, runEnd-runStart)
			got := f.f.ReadAt(buf, runStart)
			r.IO(f.fs, int64(got))
			reg.Counter("mpiio.agg_reads", r.ID()).Inc()
			reg.Counter("mpiio.agg_read_bytes", r.ID()).Add(int64(got))
			if h.ReadStrategy == StrategyListIO {
				reg.Counter("mpiio.listio_reads", r.ID()).Inc()
			}
			// Waste = hole bytes transferred but not requested by anyone.
			covEnd := runStart
			var waste int64
			for k := i; k < j; k++ {
				if reqs[k].off > covEnd {
					waste += reqs[k].off - covEnd
				}
				if end := reqs[k].off + reqs[k].n; end > covEnd {
					covEnd = end
				}
			}
			reg.Counter("mpiio.sieve_waste_bytes", r.ID()).Add(waste)
			for k := i; k < j; k++ {
				q := reqs[k]
				data := buf[q.off-runStart:]
				if q.n < int64(len(data)) {
					data = data[:q.n]
				}
				rec := make([]byte, 16+len(data))
				putI64(rec[0:], q.off)
				putI64(rec[8:], int64(len(data)))
				copy(rec[16:], data)
				reply[q.rank] = append(reply[q.rank], rec...)
				r.MemCopy(int64(len(data)))
			}
			i = j
		}
		localPieces = reply[r.ID()]
		for _, p := range plan.parts {
			if p.rank == r.ID() || !plan.overlaps(p.lo, p.hi, a) || !live[p.rank] {
				continue
			}
			reg.Counter("mpiio.shuffle_bytes", r.ID()).Add(int64(len(reply[p.rank])))
			r.Send(p.rank, tagBase+3, reply[p.rank])
		}
	}

	// Phase 5: collect my pieces from every overlapping aggregator and
	// assemble them in view order. A dead aggregator's pieces are re-read
	// independently — correct, just slower.
	pieces := make(map[int64][]byte)
	failed := make(map[int]bool)
	addPieces := func(buf []byte) {
		for len(buf) >= 16 {
			off := getI64(buf[0:])
			length := getI64(buf[8:])
			pieces[off] = buf[16 : 16+length]
			buf = buf[16+length:]
		}
	}
	for a := 0; a < plan.numAgg; a++ {
		if !plan.overlaps(self.lo, self.hi, a) {
			continue
		}
		if plan.parts[a].rank == r.ID() {
			addPieces(localPieces)
			continue
		}
		buf, err := f.recvShuffle(plan.parts[a].rank, tagBase+3)
		if err != nil {
			failed[a] = true
			continue
		}
		addPieces(buf)
	}
	out := make([]byte, 0, f.view.TotalLength())
	f.splitView(plan, func(a int, off, length int64) {
		if failed[a] {
			out = append(out, f.ReadAt(off, length)...)
			return
		}
		data := pieces[off]
		out = append(out, data...)
		r.MemCopy(int64(len(data)))
	})

	// The read completes when the slowest participant is done
	// (MPI_File_read_all is collective). Barrier is crash-aware: it
	// completes over survivors if a peer died mid-protocol.
	r.Barrier()
	return out, nil
}
