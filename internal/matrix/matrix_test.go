package matrix

import (
	"testing"

	"parblast/internal/seq"
)

func TestBlosum62Symmetry(t *testing.T) {
	n := BLOSUM62.Size()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if BLOSUM62.Score(byte(i), byte(j)) != BLOSUM62.Score(byte(j), byte(i)) {
				t.Fatalf("BLOSUM62 asymmetric at (%c,%c)",
					seq.ProteinAlphabet.Letter(byte(i)), seq.ProteinAlphabet.Letter(byte(j)))
			}
		}
	}
}

func TestBlosum62KnownValues(t *testing.T) {
	code := seq.ProteinAlphabet.Code
	cases := []struct {
		a, b byte
		want int
	}{
		{'A', 'A', 4}, {'W', 'W', 11}, {'C', 'C', 9},
		{'A', 'R', -1}, {'W', 'C', -2}, {'E', 'D', 2},
		{'I', 'L', 2}, {'K', 'R', 2}, {'X', 'X', -1},
		{'*', '*', 1}, {'A', '*', -4},
	}
	for _, c := range cases {
		if got := BLOSUM62.Score(code(c.a), code(c.b)); got != c.want {
			t.Fatalf("BLOSUM62[%c][%c] = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBlosum62DiagonalDominance(t *testing.T) {
	// Every strict residue must like itself at least as much as any
	// substitution — a basic sanity property of log-odds matrices.
	for i := 0; i < seq.ProteinAlphabet.StrictSize(); i++ {
		self := BLOSUM62.Score(byte(i), byte(i))
		if self <= 0 {
			t.Fatalf("self score of %c is %d", seq.ProteinAlphabet.Letter(byte(i)), self)
		}
		for j := 0; j < seq.ProteinAlphabet.StrictSize(); j++ {
			if j != i && BLOSUM62.Score(byte(i), byte(j)) > self {
				t.Fatalf("substitution (%d,%d) beats identity", i, j)
			}
		}
	}
}

func TestBlosum62ExpectedScoreNegative(t *testing.T) {
	// The expected score under uniform residue usage must be negative or
	// local alignment statistics do not apply.
	sum := 0
	n := seq.ProteinAlphabet.StrictSize()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum += BLOSUM62.Score(byte(i), byte(j))
		}
	}
	if sum >= 0 {
		t.Fatalf("expected BLOSUM62 mean score < 0, got sum %d", sum)
	}
}

func TestMinMaxScore(t *testing.T) {
	if BLOSUM62.MaxScore() != 11 {
		t.Fatalf("max = %d, want 11 (W/W)", BLOSUM62.MaxScore())
	}
	if BLOSUM62.MinScore() != -4 {
		t.Fatalf("min = %d, want -4", BLOSUM62.MinScore())
	}
}

func TestRowAliasesMatrix(t *testing.T) {
	row := BLOSUM62.Row(0)
	if int(row[0]) != BLOSUM62.Score(0, 0) {
		t.Fatal("Row(0)[0] disagrees with Score(0,0)")
	}
	if len(row) != BLOSUM62.Size() {
		t.Fatalf("row length %d", len(row))
	}
}

func TestNewDNA(t *testing.T) {
	m := NewDNA(2, -3)
	code := seq.DNAAlphabet.Code
	if m.Score(code('A'), code('A')) != 2 {
		t.Fatal("match score wrong")
	}
	if m.Score(code('A'), code('C')) != -3 {
		t.Fatal("mismatch score wrong")
	}
	if m.Score(code('N'), code('A')) != -3 {
		t.Fatal("wildcard should score as mismatch")
	}
	if m.Alphabet() != seq.DNAAlphabet {
		t.Fatal("alphabet wrong")
	}
}

func TestByName(t *testing.T) {
	if m, err := ByName("BLOSUM62"); err != nil || m != BLOSUM62 {
		t.Fatal("BLOSUM62 lookup failed")
	}
	if m, err := ByName(""); err != nil || m != BLOSUM62 {
		t.Fatal("default lookup failed")
	}
	if _, err := ByName("PAM1000"); err == nil {
		t.Fatal("unknown matrix accepted")
	}
}

func TestGapPenalties(t *testing.T) {
	g := GapPenalties{Open: 11, Extend: 1}
	if g.Cost(0) != 0 || g.Cost(1) != 12 || g.Cost(5) != 16 {
		t.Fatalf("costs: %d %d %d", g.Cost(0), g.Cost(1), g.Cost(5))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (GapPenalties{Open: 11, Extend: 0}).Validate(); err == nil {
		t.Fatal("zero extend accepted")
	}
	if err := (GapPenalties{Open: -1, Extend: 1}).Validate(); err == nil {
		t.Fatal("negative open accepted")
	}
}
