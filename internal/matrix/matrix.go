// Package matrix provides substitution scoring matrices and gap penalty
// schemes for the BLAST kernel.
//
// The protein matrix shipped is BLOSUM62, byte-for-byte the matrix NCBI
// BLAST uses by default, laid out in the residue-code order defined by
// internal/seq (ARNDCQEGHILKMFPSTWYVBZX*). Nucleotide scoring is generated
// from a (match, mismatch) reward/penalty pair, as in blastn.
package matrix

import (
	"fmt"

	"parblast/internal/seq"
)

// Matrix scores residue-code pairs. Scores are addressed as
// Score(a, b) where a and b are seq.Alphabet codes.
type Matrix struct {
	name   string
	alpha  *seq.Alphabet
	n      int
	scores []int16 // n*n row-major
	maxSc  int
	minSc  int
}

// Name returns the conventional matrix name (e.g. "BLOSUM62").
func (m *Matrix) Name() string { return m.name }

// Alphabet returns the alphabet whose codes index the matrix.
func (m *Matrix) Alphabet() *seq.Alphabet { return m.alpha }

// Score returns the substitution score for residue codes a and b.
func (m *Matrix) Score(a, b byte) int {
	return int(m.scores[int(a)*m.n+int(b)])
}

// Row returns the score row for residue code a, indexed by the second code.
// The slice aliases the matrix; callers must not modify it.
func (m *Matrix) Row(a byte) []int16 {
	return m.scores[int(a)*m.n : (int(a)+1)*m.n]
}

// MaxScore returns the largest entry in the matrix.
func (m *Matrix) MaxScore() int { return m.maxSc }

// MinScore returns the smallest entry in the matrix.
func (m *Matrix) MinScore() int { return m.minSc }

// Size returns the matrix dimension (alphabet size).
func (m *Matrix) Size() int { return m.n }

func build(name string, alpha *seq.Alphabet, rows [][]int16) *Matrix {
	n := alpha.Size()
	if len(rows) != n {
		panic(fmt.Sprintf("matrix %s: %d rows for alphabet size %d", name, len(rows), n))
	}
	m := &Matrix{name: name, alpha: alpha, n: n, scores: make([]int16, n*n)}
	m.maxSc, m.minSc = int(rows[0][0]), int(rows[0][0])
	for i, row := range rows {
		if len(row) != n {
			panic(fmt.Sprintf("matrix %s: row %d has %d entries", name, i, len(row)))
		}
		for j, s := range row {
			m.scores[i*n+j] = s
			if int(s) > m.maxSc {
				m.maxSc = int(s)
			}
			if int(s) < m.minSc {
				m.minSc = int(s)
			}
		}
	}
	return m
}

// BLOSUM62 is the NCBI default protein scoring matrix, in the residue order
// A R N D C Q E G H I L K M F P S T W Y V B Z X *.
var BLOSUM62 = build("BLOSUM62", seq.ProteinAlphabet, [][]int16{
	/* A */ {4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0, -2, -1, 0, -4},
	/* R */ {-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3, -1, 0, -1, -4},
	/* N */ {-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3, 3, 0, -1, -4},
	/* D */ {-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3, 4, 1, -1, -4},
	/* C */ {0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -3, -3, -2, -4},
	/* Q */ {-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2, 0, 3, -1, -4},
	/* E */ {-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2, 1, 4, -1, -4},
	/* G */ {0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3, -1, -2, -1, -4},
	/* H */ {-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3, 0, 0, -1, -4},
	/* I */ {-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3, -3, -3, -1, -4},
	/* L */ {-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1, -4, -3, -1, -4},
	/* K */ {-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2, 0, 1, -1, -4},
	/* M */ {-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1, -3, -1, -1, -4},
	/* F */ {-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1, -3, -3, -1, -4},
	/* P */ {-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2, -2, -1, -2, -4},
	/* S */ {1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2, 0, 0, 0, -4},
	/* T */ {0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0, -1, -1, 0, -4},
	/* W */ {-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3, -4, -3, -2, -4},
	/* Y */ {-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -1, -3, -2, -1, -4},
	/* V */ {0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -1, 4, -3, -2, -1, -4},
	/* B */ {-2, -1, 3, 4, -3, 0, 1, -1, 0, -3, -4, 0, -3, -3, -2, 0, -1, -4, -3, -3, 4, 1, -1, -4},
	/* Z */ {-1, 0, 0, 1, -3, 3, 4, -2, 0, -3, -3, 1, -1, -3, -1, 0, -1, -3, -2, -2, 1, 4, -1, -4},
	/* X */ {0, -1, -1, -1, -2, -1, -1, -1, -1, -1, -1, -1, -1, -1, -2, 0, 0, -2, -1, -1, -1, -1, -1, -4},
	/* * */ {-4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, 1},
})

// NewDNA builds a nucleotide matrix from a match reward and mismatch
// penalty (penalty given as a negative number), the blastn convention.
// Ambiguous residues (N) score the mismatch penalty against everything.
func NewDNA(match, mismatch int) *Matrix {
	alpha := seq.DNAAlphabet
	n := alpha.Size()
	rows := make([][]int16, n)
	for i := 0; i < n; i++ {
		rows[i] = make([]int16, n)
		for j := 0; j < n; j++ {
			switch {
			case i >= alpha.StrictSize() || j >= alpha.StrictSize():
				rows[i][j] = int16(mismatch)
			case i == j:
				rows[i][j] = int16(match)
			default:
				rows[i][j] = int16(mismatch)
			}
		}
	}
	return build(fmt.Sprintf("DNA(%+d/%+d)", match, mismatch), alpha, rows)
}

// DNADefault is the blastn default reward/penalty pair (+1/-3).
var DNADefault = NewDNA(1, -3)

// ByName looks up a shipped matrix by its conventional name.
func ByName(name string) (*Matrix, error) {
	switch name {
	case "BLOSUM62", "blosum62", "":
		return BLOSUM62, nil
	case "DNA", "dna":
		return DNADefault, nil
	default:
		return nil, fmt.Errorf("matrix: unknown matrix %q (have BLOSUM62, DNA)", name)
	}
}

// GapPenalties holds affine gap costs: opening a gap of length L costs
// Open + L*Extend. Both are positive numbers (costs).
type GapPenalties struct {
	Open   int
	Extend int
}

// DefaultProteinGaps matches blastp defaults (existence 11, extension 1).
var DefaultProteinGaps = GapPenalties{Open: 11, Extend: 1}

// DefaultDNAGaps matches blastn defaults (existence 5, extension 2).
var DefaultDNAGaps = GapPenalties{Open: 5, Extend: 2}

// Cost returns the affine cost of a gap of the given length.
func (g GapPenalties) Cost(length int) int {
	if length <= 0 {
		return 0
	}
	return g.Open + length*g.Extend
}

// Validate rejects non-positive penalties, which would make the gapped
// dynamic program diverge.
func (g GapPenalties) Validate() error {
	if g.Open < 0 || g.Extend <= 0 {
		return fmt.Errorf("matrix: invalid gap penalties open=%d extend=%d", g.Open, g.Extend)
	}
	return nil
}
