// Package mpiblast implements the baseline parallel BLAST the paper starts
// from (mpiBLAST 1.2.1's architecture):
//
//   - the database is PRE-PARTITIONED into physical fragment files
//     (mpiformatdb); the fragments live on the shared file system;
//   - a master greedily assigns unsearched fragments to idle workers;
//   - each worker COPIES its fragment's files to node-local storage (or to
//     shared scratch space when the platform exposes no local disks, as on
//     the paper's Altix) before searching;
//   - result merging is serialized through the master: workers submit
//     local result alignments, the master sorts them and then FETCHES the
//     alignment data of every selected hit from its owning worker with one
//     request/reply round trip per hit, formats everything itself, and
//     writes the single output file alone.
//
// Every one of those design points is a cost the pioBLAST engine
// (internal/core) removes; this package exists so each figure can compare
// the two.
package mpiblast

import (
	"bytes"
	"errors"
	"fmt"

	"parblast/internal/blast"
	"parblast/internal/engine"
	"parblast/internal/formatdb"
	"parblast/internal/mpi"
	"parblast/internal/mpiio"
	"parblast/internal/seq"
	"parblast/internal/simtime"
	"parblast/internal/vfs"
)

// Message tags (all below the mpiio-reserved space).
const (
	tagWorkReq = 1
	tagAssign  = 2
	tagResults = 3
	tagFetch   = 4
	tagHitData = 5
	tagRelease = 6
)

// jobMeta is the broadcast that seeds every worker. The shell is cold-path
// gob; the query payload inside is pre-encoded with the compact codec
// (engine.EncodeWireQueries), since it dominates the broadcast bytes.
type jobMeta struct {
	Queries   []byte // engine.EncodeWireQueries payload
	Title     string
	Kind      seq.Kind
	NumSeqs   int
	TotalLen  int64
	FragBases []string
	// Tree selects the hierarchical tree merge; TreeFanout is the k-ary
	// reduction fan-out.
	Tree       bool
	TreeFanout int
	// Serve marks a streaming run: Queries is empty, and each batch's
	// queries arrive in a per-batch broadcast instead (see serve.go).
	Serve bool
}

type fetchKey struct {
	Query int
	OID   int
}

// resultsMsg is one worker's per-(query, fragment) result submission. As in
// mpiBLAST, it carries the LOCAL RESULT ALIGNMENTS themselves (coordinates,
// scores, traces — everything except the subject residues the output
// formatter needs, which the master fetches later per selected hit).
// pioBLAST's equivalent message carries only flat metadata; this asymmetry
// is the §3.2 message-volume reduction.
type resultsMsg struct {
	Query    int
	Fragment int
	Worker   int
	Work     blast.WorkCounters
	Hits     []engine.WireHit // residues stripped
}

func (m *resultsMsg) encode() []byte {
	var w engine.Writer
	w.Int(int64(m.Query))
	w.Int(int64(m.Fragment))
	w.Int(int64(m.Worker))
	engine.EncodeWork(&w, m.Work)
	w.Uint(uint64(len(m.Hits)))
	for _, h := range m.Hits {
		engine.EncodeWireHit(&w, h)
	}
	return w.Bytes()
}

func decodeResultsMsg(data []byte) (resultsMsg, error) {
	r := engine.NewReader(data)
	m := resultsMsg{
		Query:    int(r.Int()),
		Fragment: int(r.Int()),
		Worker:   int(r.Int()),
		Work:     engine.DecodeWork(r),
	}
	n := int(r.Uint())
	for i := 0; i < n && r.Err() == nil; i++ {
		m.Hits = append(m.Hits, engine.DecodeWireHit(r))
	}
	return m, r.Err()
}

func (k fetchKey) encode() []byte {
	var w engine.Writer
	w.Int(int64(k.Query))
	w.Int(int64(k.OID))
	return w.Bytes()
}

func decodeFetchKey(data []byte) (fetchKey, error) {
	r := engine.NewReader(data)
	k := fetchKey{Query: int(r.Int()), OID: int(r.Int())}
	return k, r.Err()
}

// PrepareFragments runs the mpiformatdb step: it physically fragments the
// formatted database into n standalone fragment databases on the shared
// file system and returns their base names. The paper counts this as
// operational overhead OUTSIDE the timed run (it must be redone whenever
// the worker count outgrows the fragment count).
func PrepareFragments(fs *vfs.FS, dbBase string, n int) ([]string, error) {
	db, err := formatdb.Open(fs, dbBase)
	if err != nil {
		return nil, err
	}
	frags, err := db.PhysicalFragment(fs, n)
	if err != nil {
		return nil, err
	}
	bases := make([]string, len(frags))
	for i, f := range frags {
		bases[i] = f.Base
	}
	return bases, nil
}

// Options selects baseline variants.
type Options struct {
	// FetchWindow pipelines the master's per-hit fetch phase: up to this
	// many requests are kept in flight instead of strictly one
	// request/reply at a time (the 1.2.1 behaviour the paper measured).
	// 0 or 1 keeps the faithful serial fetch. This is an ablation: it
	// quantifies how much of the baseline's output time is pure round-trip
	// serialization versus master-side processing.
	FetchWindow int
	// FaultTimeout is the master's failure-detection polling interval in
	// virtual seconds (0 = 250 × NetLatency). Only used when the MPI config
	// schedules faults.
	FaultTimeout float64
	// TreeMerge replaces the per-(query, fragment) result streams through
	// the master with the hierarchical tree merge: workers hold results
	// locally, pre-merge to the per-query top-k, and fold one bundle per
	// member up a k-ary reduction tree. The serial per-hit fetch stays —
	// this fixes the merge serialization, not the fetch round trips.
	TreeMerge bool
	// MergeFanout is the reduction-tree fan-out for TreeMerge
	// (0 = mpi.DefaultTreeFanout).
	MergeFanout int
}

// Run executes the baseline engine on nprocs ranks (rank 0 is the master;
// workers are 1..nprocs-1). nodes[i] is rank i's storage view. The physical
// fragments must already exist (PrepareFragments).
func Run(nodes []*vfs.Node, nprocs int, cost simtime.CostModel, job *engine.Job) (engine.RunResult, error) {
	return RunConfig(nodes, nprocs, mpi.Config{Cost: cost}, job)
}

// RunOpts is RunConfig with baseline variant options.
func RunOpts(nodes []*vfs.Node, nprocs int, cfg mpi.Config, job *engine.Job, opts Options) (engine.RunResult, error) {
	return runConfig(nodes, nprocs, cfg, job, opts)
}

// RunConfig is Run with an explicit MPI configuration (heterogeneity,
// tracing).
func RunConfig(nodes []*vfs.Node, nprocs int, cfg mpi.Config, job *engine.Job) (engine.RunResult, error) {
	return runConfig(nodes, nprocs, cfg, job, Options{})
}

func runConfig(nodes []*vfs.Node, nprocs int, cfg mpi.Config, job *engine.Job, opts Options) (engine.RunResult, error) {
	if err := job.Validate(); err != nil {
		return engine.RunResult{}, err
	}
	if nprocs < 2 {
		return engine.RunResult{}, fmt.Errorf("mpiblast: need ≥2 ranks (1 master + workers), got %d", nprocs)
	}
	if len(nodes) < nprocs {
		return engine.RunResult{}, fmt.Errorf("mpiblast: %d nodes for %d ranks", len(nodes), nprocs)
	}
	shared := nodes[0].Shared
	db, err := formatdb.Open(shared, job.DBBase)
	if err != nil {
		return engine.RunResult{}, err
	}
	nFrags := job.Fragments
	if nFrags == 0 {
		nFrags = nprocs - 1 // natural partitioning
	}
	fragBases := make([]string, nFrags)
	for i := range fragBases {
		fragBases[i] = fmt.Sprintf("%s.frag%03d", job.DBBase, i)
		if _, err := shared.Open(formatdb.IndexPath(fragBases[i])); err != nil {
			return engine.RunResult{}, fmt.Errorf("mpiblast: fragment %d missing (run PrepareFragments): %w", i, err)
		}
	}

	fanout := opts.MergeFanout
	if fanout == 0 {
		fanout = mpi.DefaultTreeFanout
	}
	if opts.TreeMerge && fanout < 2 {
		return engine.RunResult{}, fmt.Errorf("mpiblast: merge fan-out %d < 2", opts.MergeFanout)
	}
	meta := jobMeta{
		Queries:    engine.EncodeWireQueries(engine.PackQueries(job.Queries)),
		Title:      db.Title,
		Kind:       db.Kind,
		NumSeqs:    db.NumSeqs,
		TotalLen:   db.TotalResidues,
		FragBases:  fragBases,
		Tree:       opts.TreeMerge,
		TreeFanout: fanout,
	}
	// Failure recovery only covers workers: the master holds the merged
	// results and the failure detector itself.
	for _, f := range cfg.Faults {
		if f.Rank == 0 && f.Kind == mpi.FaultCrash {
			return engine.RunResult{}, fmt.Errorf("mpiblast: cannot inject a crash into rank 0 (the master)")
		}
	}
	ft := len(cfg.Faults) > 0
	ftTimeout := opts.FaultTimeout
	if ftTimeout <= 0 {
		ftTimeout = 250 * cfg.Cost.NetLatency
	}

	if cfg.Comm == nil {
		cfg.Comm = mpi.NewCommStats(nprocs)
	}
	// Per-query latency sink, filled by the master goroutine and read only
	// after mpi.RunConfig returns (the run's WaitGroup is the barrier).
	qlat := make([]float64, len(job.Queries))
	clocks, err := mpi.RunConfig(nprocs, cfg, func(r *mpi.Rank) error {
		if r.ID() == 0 {
			if meta.Tree {
				return runMasterTree(r, nodes[0], job, meta, opts, ft, ftTimeout, qlat)
			}
			return runMaster(r, nodes[0], job, meta, opts, ft, ftTimeout, qlat)
		}
		if meta.Tree {
			return runWorkerTree(r, nodes[r.ID()], job.Options)
		}
		return runWorker(r, nodes[r.ID()], job.Options)
	})
	if err != nil {
		return engine.RunResult{}, err
	}
	var outBytes int64
	if f, err := shared.Open(job.OutputPath); err == nil {
		outBytes = f.Size()
	}
	res := engine.Summarize(clocks, outBytes)
	res.QueryLatencies = qlat
	res.CommBytes, res.ShuffleBytes, res.CollectiveBytes, res.CommMessages = cfg.Comm.Totals()
	res.AddIOFaults(nodes)
	return res, nil
}

func runMaster(r *mpi.Rank, node *vfs.Node, job *engine.Job, meta jobMeta, opts Options, ft bool, ftTimeout float64, qlat []float64) error {
	r.SetPhase(simtime.PhaseOther)
	r.Advance(r.Cost().SetupCost)
	r.Bcast(0, engine.EncodeGob(meta))
	// Admission: every query is "in the system" once the job metadata
	// broadcast completes — the latency baseline for all queries.
	admit := r.Clock().Now()

	workers := r.Size() - 1
	nFrags := len(meta.FragBases)
	nQueries := len(job.Queries)

	// While the workers copy and search, the master serves assignments and
	// collects result metadata — mostly waiting. Results are kept PER
	// FRAGMENT (not just per query) so that a crashed worker's partial
	// contributions can be purged and its fragments re-searched: recovery is
	// expensive here by construction, because the replacement worker must
	// re-COPY the physical fragment files before searching (contrast with
	// pioBLAST, which only re-issues offset ranges).
	r.SetPhase(simtime.PhaseIdle)
	type masterHit struct {
		res    *blast.SubjectResult
		worker int
	}
	fragHits := make([][][]masterHit, nFrags)
	fragWork := make([][]blast.WorkCounters, nFrags)
	got := make([][]bool, nFrags)
	fragQueue := make([]int, 0, nFrags)
	for f := 0; f < nFrags; f++ {
		fragHits[f] = make([][]masterHit, nQueries)
		fragWork[f] = make([]blast.WorkCounters, nQueries)
		got[f] = make([]bool, nQueries)
		fragQueue = append(fragQueue, f)
	}
	alive := make([]int, 0, workers)
	current := make([]int, workers+1) // fragment in flight per worker (-1 none)
	doneBy := make([][]int, workers+1)
	for w := 1; w <= workers; w++ {
		alive = append(alive, w)
		current[w] = -1
	}
	releasedSet := make(map[int]bool) // workers already told "done"
	var parked []int                  // requesters waiting for a possible requeue
	remaining := nFrags * nQueries    // (fragment, query) results outstanding

	release := func(w int) {
		r.Send(w, tagAssign, engine.EncodeInt(-1))
		releasedSet[w] = true
	}
	assign := func(w int) bool {
		if len(fragQueue) == 0 {
			return false
		}
		f := fragQueue[0]
		fragQueue = fragQueue[1:]
		current[w] = f
		r.Send(w, tagAssign, engine.EncodeInt(f))
		return true
	}
	// purgeDead removes crashed workers, reclaims every fragment they
	// searched or were searching, and serves parked requesters from the
	// replenished queue.
	purgeDead := func() {
		live := alive[:0]
		for _, w := range alive {
			if !r.Failed(w) {
				live = append(live, w)
				continue
			}
			lost := append([]int(nil), doneBy[w]...)
			if current[w] >= 0 {
				lost = append(lost, current[w])
			}
			for _, f := range lost {
				for q := 0; q < nQueries; q++ {
					if got[f][q] {
						got[f][q] = false
						fragHits[f][q] = nil
						fragWork[f][q] = blast.WorkCounters{}
						remaining++
					}
				}
				fragQueue = append(fragQueue, f)
			}
			r.Metrics().Counter("engine.frags_requeued", r.ID()).Add(int64(len(lost)))
			doneBy[w] = nil
			current[w] = -1
			delete(releasedSet, w)
		}
		alive = live
		keep := parked[:0]
		for _, w := range parked {
			if r.Failed(w) {
				continue
			}
			if assign(w) {
				continue
			}
			if remaining == 0 {
				release(w)
				continue
			}
			keep = append(keep, w)
		}
		parked = keep
	}

	for remaining > 0 || len(releasedSet) < len(alive) {
		var data []byte
		var from, tag int
		if ft {
			var err error
			data, from, tag, err = r.RecvTimeout(mpi.AnySource, mpi.AnyTag, ftTimeout)
			if err != nil {
				// Timed out: check ground truth for crashed workers.
				purgeDead()
				if len(alive) == 0 {
					return fmt.Errorf("mpiblast: all workers failed; cannot recover")
				}
				continue
			}
			if r.Failed(from) {
				continue // stale message from a crashed worker
			}
		} else {
			data, from, tag = r.Recv(mpi.AnySource, mpi.AnyTag)
		}
		switch tag {
		case tagWorkReq:
			if cur := current[from]; cur >= 0 {
				// A worker only asks again once its previous fragment's
				// results are fully submitted.
				doneBy[from] = append(doneBy[from], cur)
				current[from] = -1
			}
			if assign(from) {
				break
			}
			if ft && remaining > 0 {
				// Queue empty but results outstanding: park the requester —
				// a crashed peer's fragment may yet need a new home.
				parked = append(parked, from)
				break
			}
			release(from)
		case tagResults:
			msg, err := decodeResultsMsg(data)
			if err != nil {
				return err
			}
			if got[msg.Fragment][msg.Query] {
				break // duplicate after a requeue race; first submission wins
			}
			// Splicing a fragment's alignments into the master's result
			// structures is real work on the master's critical path.
			r.SetPhase(simtime.PhaseOutput)
			r.Advance(r.Cost().ResultMsgCost + float64(len(msg.Hits))*r.Cost().MergeItemCost)
			hits := make([]masterHit, 0, len(msg.Hits))
			for _, wh := range msg.Hits {
				res, _ := wh.Unpack()
				hits = append(hits, masterHit{res: res, worker: msg.Worker})
			}
			got[msg.Fragment][msg.Query] = true
			fragHits[msg.Fragment][msg.Query] = hits
			fragWork[msg.Fragment][msg.Query] = msg.Work
			r.SetPhase(simtime.PhaseIdle)
			remaining--
			if remaining == 0 {
				// Everything is in: release any parked requesters.
				for _, w := range parked {
					release(w)
				}
				parked = nil
			}
		default:
			return fmt.Errorf("mpiblast: master got unexpected tag %d from %d", tag, from)
		}
	}

	// Serialized result merging and output (§2.2 / Figure 2 right side).
	r.SetPhase(simtime.PhaseOutput)
	searcher, err := blast.NewSearcher(job.Options)
	if err != nil {
		return err
	}
	maxTargets := searcher.Options().MaxTargetSeqs
	out := mpiio.OpenOrCreate(r, node.Shared, job.OutputPath)
	dbInfo := blast.DBInfo{Title: meta.Title, NumSeqs: meta.NumSeqs, TotalLen: meta.TotalLen}
	// fetchRecv collects one fetched hit; under fault injection a crash at
	// this point is unrecoverable (the hit data lives only in the dead
	// worker's memory), so it surfaces as a clean error.
	fetchRecv := func(w int) ([]byte, error) {
		if !ft {
			residues, _, _ := r.Recv(w, tagHitData)
			return residues, nil
		}
		for {
			residues, _, _, err := r.RecvTimeout(w, tagHitData, ftTimeout)
			if err == nil {
				return residues, nil
			}
			if errors.Is(err, mpi.ErrRankFailed) {
				return nil, fmt.Errorf("mpiblast: worker %d crashed during the output phase; recovery only covers the search phase: %w", w, err)
			}
		}
	}
	var off int64
	for qi, q := range job.Queries {
		// The serialized merge handles one query at a time: stamp it as the
		// trace context so the fetch round-trips it triggers carry it.
		r.SetTraceBatch(qi)
		// Concatenate this query's hits in fragment order — deterministic
		// regardless of result arrival order or crash recovery (MergeHits
		// imposes a total order anyway).
		var qhits []masterHit
		var qwork blast.WorkCounters
		for f := 0; f < nFrags; f++ {
			qhits = append(qhits, fragHits[f][qi]...)
			qwork.Add(fragWork[f][qi])
		}
		r.Advance(float64(len(qhits)) * r.Cost().MergeItemCost)
		byOID := make(map[int]masterHit, len(qhits))
		metas := make([]engine.HitMeta, 0, len(qhits))
		for _, mh := range qhits {
			byOID[mh.res.OID] = mh
			metas = append(metas, engine.MetaFromResult(mh.worker, mh.res, 0))
		}
		merged := engine.MergeHits(metas, maxTargets)
		engine.RecordMerge(r.Metrics(), r.ID(), len(metas), len(merged))

		outFormat := job.Options.OutFormat
		var text bytes.Buffer
		text.WriteString(blast.RenderHeader(outFormat, meta.Kind, q, dbInfo))
		text.WriteString(blast.RenderSummary(outFormat, engine.SummaryResults(merged)))
		// Fetch every selected hit's sequence information from its worker —
		// one serial request/reply per hit in faithful mode (the bottleneck
		// the paper measured at >40% of mpiBLAST's output time), or with a
		// sliding window of outstanding requests in the pipelined ablation.
		window := opts.FetchWindow
		if window < 1 {
			window = 1
		}
		sent := 0
		for done := 0; done < len(merged); done++ {
			for sent < len(merged) && sent-done < window {
				h := merged[sent]
				r.Send(h.Worker, tagFetch, fetchKey{Query: qi, OID: h.OID}.encode())
				sent++
			}
			h := merged[done]
			residues, err := fetchRecv(h.Worker)
			if err != nil {
				return err
			}
			mh := byOID[h.OID]
			block := blast.RenderHit(outFormat, q, residues, mh.res, job.Options.Matrix)
			r.FormatCost(int64(len(block)))
			r.Advance(r.Cost().FetchItemCost)
			text.WriteString(block)
		}
		space := engine.SearchSpaceFor(searcher, q.Len(), meta.TotalLen, meta.NumSeqs)
		text.WriteString(blast.RenderFooter(outFormat, searcher.GappedParams(), space, qwork))
		r.FormatCost(int64(text.Len()) / 8) // header/summary/footer rendering
		out.WriteAt(text.Bytes(), off)
		off += int64(text.Len())
		// The query's merged report is on disk: its end-to-end latency is
		// settled on the master's clock.
		lat := r.Clock().Now() - admit
		qlat[qi] = lat
		engine.RecordQueryLatency(r.Metrics(), r.ID(), lat)
	}
	for _, w := range alive {
		r.Send(w, tagRelease, nil)
	}
	r.SetPhase(simtime.PhaseOther)
	r.Barrier()
	return nil
}

func runWorker(r *mpi.Rank, node *vfs.Node, opts blast.Options) error {
	r.SetPhase(simtime.PhaseOther)
	r.Advance(r.Cost().SetupCost)
	var meta jobMeta
	if err := engine.DecodeGob(r.Bcast(0, nil), &meta); err != nil {
		return err
	}
	wq, err := engine.DecodeWireQueries(meta.Queries)
	if err != nil {
		return err
	}
	queries := wq.Unpack()
	searcher, err := blast.NewSearcher(opts)
	if err != nil {
		return err
	}
	ctx := searcher.NewContext()

	// Local staging target: node-local disk, or shared scratch when the
	// platform has none (the paper's Altix configuration).
	staging := node.Local
	prefix := ""
	if staging == nil {
		staging = node.Shared
		prefix = fmt.Sprintf("scratch/rank%03d/", r.ID())
	}

	// hits maps (query, OID) to the subject residues the master may fetch.
	hits := make(map[fetchKey][]byte)
	searchedAny := false
	for {
		// Waiting for an assignment is startup time before the first
		// fragment; afterwards the wait queues behind the master's result
		// ingestion and belongs to the output (merging) phase.
		if searchedAny {
			r.SetPhase(simtime.PhaseOutput)
		} else {
			r.SetPhase(simtime.PhaseOther)
		}
		r.Send(0, tagWorkReq, nil)
		data, _, _ := r.Recv(0, tagAssign)
		fragID, err := engine.DecodeInt(data)
		if err != nil {
			return err
		}
		if fragID < 0 {
			break
		}
		searchedAny = true
		base := meta.FragBases[fragID]

		// Copy stage: shared FS → local staging, file by file.
		r.SetPhase(simtime.PhaseCopy)
		for _, path := range formatdb.FragmentFiles(base) {
			src, err := mpiio.Open(r, node.Shared, path)
			if err != nil {
				return err
			}
			content := src.ReadAt(0, src.Size())
			dst := mpiio.OpenOrCreate(r, staging, prefix+path)
			dst.WriteAt(content, 0)
		}

		// Search stage. The fragment is imported from the staged copy;
		// NCBI BLAST memory-maps the fragment files, so this I/O is
		// embedded in search time (the paper observes exactly that).
		r.SetPhase(simtime.PhaseSearch)
		frag, err := loadFragment(r, staging, prefix+base)
		if err != nil {
			return err
		}
		for qi, q := range queries {
			if err := ctx.SetQuery(q); err != nil {
				return err
			}
			space := engine.SearchSpaceFor(searcher, q.Len(), meta.TotalLen, meta.NumSeqs)
			res, err := ctx.SearchFragment(frag, space)
			if err != nil {
				return err
			}
			r.Compute(res.Work.Units())
			engine.RecordWork(r.Metrics(), r.ID(), res.Work)
			msg := resultsMsg{Query: qi, Fragment: fragID, Worker: r.ID(), Work: res.Work}
			for _, hit := range res.Hits {
				msg.Hits = append(msg.Hits, engine.PackHit(hit, nil))
				hits[fetchKey{Query: qi, OID: hit.OID}] = fragSubject(frag, hit.OID)
			}
			r.SetPhase(simtime.PhaseOutput)
			r.Send(0, tagResults, msg.encode())
			r.SetPhase(simtime.PhaseSearch)
			r.Yield()
		}
	}

	// Fetch service: answer the master's per-hit data requests until
	// released. All waiting here is result-processing (output) time.
	r.SetPhase(simtime.PhaseOutput)
	for {
		data, _, tag := r.Recv(0, mpi.AnyTag)
		if tag == tagRelease {
			break
		}
		key, err := decodeFetchKey(data)
		if err != nil {
			return err
		}
		residues, ok := hits[key]
		if !ok {
			r.Metrics().Counter("engine.cache_misses", r.ID()).Inc()
			return fmt.Errorf("mpiblast: worker %d asked for unknown hit %+v", r.ID(), key)
		}
		r.Metrics().Counter("engine.cache_hits", r.ID()).Inc()
		r.Send(0, tagHitData, residues)
	}
	r.SetPhase(simtime.PhaseOther)
	r.Barrier()
	return nil
}

// loadFragment reads a staged fragment database into memory with charged
// I/O and wraps it as a kernel fragment.
func loadFragment(r *mpi.Rank, fs *vfs.FS, base string) (*blast.Fragment, error) {
	for _, path := range formatdb.FragmentFiles(base) {
		f, err := mpiio.Open(r, fs, path)
		if err != nil {
			return nil, err
		}
		f.ReadAt(0, f.Size()) // charge the (mmap-equivalent) input
	}
	db, err := formatdb.Open(fs, base)
	if err != nil {
		return nil, err
	}
	recs, err := db.ReadAll(fs)
	if err != nil {
		return nil, err
	}
	return engine.FragmentFromRecords(recs), nil
}

// fragSubject returns the residues of the subject with the given OID.
func fragSubject(frag *blast.Fragment, oid int) []byte {
	base := frag.Subjects[0].OID
	i := oid - base
	if i >= 0 && i < len(frag.Subjects) && frag.Subjects[i].OID == oid {
		return frag.Subjects[i].Residues
	}
	for k := range frag.Subjects {
		if frag.Subjects[k].OID == oid {
			return frag.Subjects[k].Residues
		}
	}
	panic(fmt.Sprintf("mpiblast: OID %d not in fragment", oid))
}
