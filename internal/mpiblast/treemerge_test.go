package mpiblast_test

import (
	"bytes"
	"strings"
	"testing"

	"parblast/internal/blast"
	"parblast/internal/engine"
	"parblast/internal/formatdb"
	"parblast/internal/mpi"
	"parblast/internal/mpiblast"
	"parblast/internal/seq"
	"parblast/internal/simtime"
	"parblast/internal/vfs"
	"parblast/internal/workload"
)

func treeFixtureJob(t *testing.T, queryBytes int) *engine.Job {
	t.Helper()
	seqs, err := workload.SynthesizeDB(workload.DBConfig{
		Kind: seq.Protein, NumSeqs: 60, MeanLen: 150, Seed: 101,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := workload.SampleQueries(seqs, workload.QueryConfig{
		TargetBytes: queryBytes, MeanLen: 100, MutationRate: 0.05, Seed: 202,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &engine.Job{
		DBBase:     "nr",
		Queries:    queries,
		Options:    blast.DefaultProteinOptions(),
		OutputPath: "results.out",
	}
}

// treeCluster formats the DB and fragments onto a fresh cluster.
func treeCluster(t *testing.T, job *engine.Job, nprocs, nFrags int) []*vfs.Node {
	t.Helper()
	local := vfs.LocalDisk()
	nodes, err := vfs.Cluster(nprocs, vfs.XFSLike(), &local)
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := workload.SynthesizeDB(workload.DBConfig{
		Kind: seq.Protein, NumSeqs: 60, MeanLen: 150, Seed: 101,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := formatdb.Format(nodes[0].Shared, "nr", seqs, formatdb.Config{
		Title: "synthetic nr", Kind: seq.Protein,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := mpiblast.PrepareFragments(nodes[0].Shared, "nr", nFrags); err != nil {
		t.Fatal(err)
	}
	return nodes
}

func runTree(t *testing.T, job *engine.Job, nprocs, nFrags int, cfg mpi.Config, opts mpiblast.Options) (engine.RunResult, []byte, error) {
	t.Helper()
	nodes := treeCluster(t, job, nprocs, nFrags)
	j := *job
	j.Fragments = nFrags
	res, err := mpiblast.RunOpts(nodes, nprocs, cfg, &j, opts)
	if err != nil {
		return res, nil, err
	}
	out, rerr := nodes[0].Shared.ReadFile(job.OutputPath)
	if rerr != nil {
		t.Fatal(rerr)
	}
	return res, out, nil
}

// TestBaselineTreeMergeByteIdentical: the baseline with the hierarchical
// merge must reproduce the flat baseline byte for byte at every fan-out.
func TestBaselineTreeMergeByteIdentical(t *testing.T) {
	const nprocs, nFrags = 6, 5
	job := treeFixtureJob(t, 1200)
	cost := simtime.DefaultCostModel()
	_, flatOut, err := runTree(t, job, nprocs, nFrags, mpi.Config{Cost: cost}, mpiblast.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(flatOut) == 0 {
		t.Fatal("flat baseline produced empty output")
	}
	for _, fanout := range []int{2, 4, 8} {
		_, treeOut, err := runTree(t, job, nprocs, nFrags, mpi.Config{Cost: cost},
			mpiblast.Options{TreeMerge: true, MergeFanout: fanout})
		if err != nil {
			t.Fatalf("fanout %d: %v", fanout, err)
		}
		if !bytes.Equal(treeOut, flatOut) {
			t.Errorf("fanout %d: tree-merge output differs from flat baseline", fanout)
		}
	}
}

// TestBaselineTreeMergeCrashMidSearch: a worker crash during the search
// phase must recover (fragments re-searched by survivors) and still match
// the flat baseline's output exactly, deterministically.
func TestBaselineTreeMergeCrashMidSearch(t *testing.T) {
	const nprocs, nFrags = 5, 8
	job := treeFixtureJob(t, 1600)
	cost := simtime.DefaultCostModel()
	opts := mpiblast.Options{TreeMerge: true, MergeFanout: 2}
	free, freeOut, err := runTree(t, job, nprocs, nFrags, mpi.Config{Cost: cost}, opts)
	if err != nil {
		t.Fatal(err)
	}
	at := 0.5 * (free.Wall - free.Phase.Output)
	faults := []mpi.Fault{{Rank: nprocs - 1, At: at, Kind: mpi.FaultCrash}}
	crashed, out1, err := runTree(t, job, nprocs, nFrags, mpi.Config{Cost: cost, Faults: faults}, opts)
	if err != nil {
		t.Fatalf("crashed run failed: %v", err)
	}
	if !bytes.Equal(out1, freeOut) {
		t.Error("crashed tree-merge output differs from fault-free output")
	}
	if crashed.Wall <= free.Wall {
		t.Errorf("crashed wall %.3f not above fault-free %.3f", crashed.Wall, free.Wall)
	}
	crashed2, out2, err := runTree(t, job, nprocs, nFrags, mpi.Config{Cost: cost, Faults: faults}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1, out2) || crashed2.Wall != crashed.Wall {
		t.Errorf("recovery nondeterministic (wall %.6f vs %.6f)", crashed.Wall, crashed2.Wall)
	}
}

// TestBaselineTreeMergeCrashDuringMerge: a worker dying in the merge or
// fetch window must surface a clean error, not a hang.
func TestBaselineTreeMergeCrashDuringMerge(t *testing.T) {
	const nprocs, nFrags = 5, 4
	job := treeFixtureJob(t, 1600)
	cost := simtime.DefaultCostModel()
	opts := mpiblast.Options{TreeMerge: true, MergeFanout: 2}
	free, _, err := runTree(t, job, nprocs, nFrags, mpi.Config{Cost: cost}, opts)
	if err != nil {
		t.Fatal(err)
	}
	at := free.Wall - 0.9*free.Phase.Output
	faults := []mpi.Fault{{Rank: nprocs - 1, At: at, Kind: mpi.FaultCrash}}
	_, _, err = runTree(t, job, nprocs, nFrags, mpi.Config{Cost: cost, Faults: faults}, opts)
	if err == nil {
		t.Fatal("crash inside the merge window reported no error")
	}
	if !strings.Contains(err.Error(), "crash") {
		t.Errorf("unexpected error for merge-window crash: %v", err)
	}
}
