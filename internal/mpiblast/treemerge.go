// Hierarchical tree merge for the baseline engine: instead of streaming
// every (query, fragment) result through the master during the search
// phase — the §3.2 serialization this repo's mergescale experiment
// measures — workers hold their results locally, pre-merge them to the
// per-query top-k with the master's exact selection rule, and fold them
// up a k-ary reduction tree. The master ingests O(fanout·log N) bundles
// on its clock instead of O(fragments·queries) messages, then renders and
// writes the output exactly as the flat baseline does (including the
// serial per-hit residue fetch, which stays the baseline's documented
// bottleneck — this path fixes the MERGE, not the fetch).
package mpiblast

import (
	"fmt"
	"sort"

	"parblast/internal/blast"
	"parblast/internal/engine"
	"parblast/internal/formatdb"
	"parblast/internal/mpi"
	"parblast/internal/mpiio"
	"parblast/internal/simtime"
	"parblast/internal/vfs"
)

// treeHit is one worker-owned hit riding the reduction tree: the wire
// alignment plus the owning worker, so the master can route the residue
// fetch after the merge.
type treeHit struct {
	Worker int
	Hit    engine.WireHit
}

// treeResults is one member's bundle payload: per-query work counters and
// pre-merged hit lists, indexed by query.
type treeResults struct {
	Work []blast.WorkCounters
	Hits [][]treeHit
}

func (t *treeResults) encode() []byte {
	var w engine.Writer
	w.Uint(uint64(len(t.Hits)))
	for q := range t.Hits {
		engine.EncodeWork(&w, t.Work[q])
		w.Uint(uint64(len(t.Hits[q])))
		for _, th := range t.Hits[q] {
			w.Int(int64(th.Worker))
			engine.EncodeWireHit(&w, th.Hit)
		}
	}
	return w.Bytes()
}

func decodeTreeResults(data []byte) (treeResults, error) {
	r := engine.NewReader(data)
	n := int(r.Uint())
	if r.Err() != nil || n < 0 || n > 1<<24 {
		return treeResults{}, fmt.Errorf("mpiblast: corrupt tree results header")
	}
	t := treeResults{Work: make([]blast.WorkCounters, n), Hits: make([][]treeHit, n)}
	for q := 0; q < n && r.Err() == nil; q++ {
		t.Work[q] = engine.DecodeWork(r)
		nh := int(r.Uint())
		for i := 0; i < nh && r.Err() == nil; i++ {
			th := treeHit{Worker: int(r.Int())}
			th.Hit = engine.DecodeWireHit(r)
			t.Hits[q] = append(t.Hits[q], th)
		}
	}
	return t, r.Err()
}

// sortCapTreeHits applies the global selection rule — (E-value asc, score
// desc, OID asc), capped at maxTargets — to one query's hit list. It is
// the same strict total order MergeHits imposes, so nested application up
// the tree equals the flat merge exactly.
func sortCapTreeHits(hits []treeHit, maxTargets int) []treeHit {
	type keyed struct {
		th     treeHit
		eValue float64
		score  int
		oid    int
	}
	ks := make([]keyed, len(hits))
	for i, th := range hits {
		res, _ := th.Hit.Unpack()
		ks[i] = keyed{th: th, eValue: res.BestEValue(), score: res.BestScore(), oid: res.OID}
	}
	sort.Slice(ks, func(i, j int) bool {
		a, b := ks[i], ks[j]
		if a.eValue != b.eValue {
			return a.eValue < b.eValue
		}
		if a.score != b.score {
			return a.score > b.score
		}
		return a.oid < b.oid
	})
	if maxTargets > 0 && len(ks) > maxTargets {
		ks = ks[:maxTargets]
	}
	out := make([]treeHit, len(ks))
	for i := range ks {
		out[i] = ks[i].th
	}
	return out
}

// treeResultsCombiner folds two bundles: per query, concatenate and
// re-select. Merge work lands on the COMBINING rank's clock — the
// distribution that takes the merge off the master's critical path.
func treeResultsCombiner(r *mpi.Rank, maxTargets int, errp *error) func(a, b []byte) []byte {
	return func(a, b []byte) []byte {
		ra, err := decodeTreeResults(a)
		if err != nil {
			*errp = err
			return nil
		}
		rb, err := decodeTreeResults(b)
		if err != nil {
			*errp = err
			return nil
		}
		if len(ra.Hits) != len(rb.Hits) {
			*errp = fmt.Errorf("mpiblast: tree bundle query counts differ: %d vs %d", len(ra.Hits), len(rb.Hits))
			return nil
		}
		items := 0
		out := treeResults{Work: make([]blast.WorkCounters, len(ra.Hits)), Hits: make([][]treeHit, len(ra.Hits))}
		kept := 0
		for q := range ra.Hits {
			items += len(ra.Hits[q]) + len(rb.Hits[q])
			all := append(append([]treeHit(nil), ra.Hits[q]...), rb.Hits[q]...)
			out.Hits[q] = sortCapTreeHits(all, maxTargets)
			kept += len(out.Hits[q])
			out.Work[q] = ra.Work[q]
			out.Work[q].Add(rb.Work[q])
		}
		// One bundle ingest plus per-item merge work, charged where the
		// combine actually runs.
		r.Advance(r.Cost().ResultMsgCost + float64(items)*r.Cost().MergeItemCost)
		engine.RecordMerge(r.Metrics(), r.ID(), items, kept)
		return out.encode()
	}
}

// treeMembers is the reduction-tree membership: master plus live workers.
func treeMembers(alive []int) []int {
	members := make([]int, 0, len(alive)+1)
	members = append(members, 0)
	return append(members, alive...)
}

// encodeTreeAssign packs a tree-mode assignment: the fragment id, or -1
// for the release, which also carries the final survivor list so every
// rank derives the identical tree membership for the merge.
func encodeTreeAssign(frag int, alive []int) []byte {
	var w engine.Writer
	w.Int(int64(frag))
	w.Uint(uint64(len(alive)))
	for _, a := range alive {
		w.Int(int64(a))
	}
	return w.Bytes()
}

func decodeTreeAssign(data []byte) (frag int, alive []int, err error) {
	r := engine.NewReader(data)
	frag = int(r.Int())
	n := int(r.Uint())
	for i := 0; i < n && r.Err() == nil; i++ {
		alive = append(alive, int(r.Int()))
	}
	return frag, alive, r.Err()
}

// runMasterTree is the tree-merge master: the greedy fragment assignment
// protocol tracked by COMPLETION (a work request acknowledges the prior
// fragment — results never travel during search), one sweep release
// carrying the survivor membership, the tree reduction, and then the flat
// baseline's render/fetch/write output stage over the merged selection.
func runMasterTree(r *mpi.Rank, node *vfs.Node, job *engine.Job, meta jobMeta, opts Options, ft bool, ftTimeout float64, qlat []float64) error {
	r.SetPhase(simtime.PhaseOther)
	r.Advance(r.Cost().SetupCost)
	r.Bcast(0, engine.EncodeGob(meta))
	// Admission: every query is "in the system" once the job metadata
	// broadcast completes — the latency baseline for all queries.
	admit := r.Clock().Now()

	workers := r.Size() - 1
	nFrags := len(meta.FragBases)
	nQueries := len(job.Queries)

	r.SetPhase(simtime.PhaseIdle)
	fragQueue := make([]int, 0, nFrags)
	for f := 0; f < nFrags; f++ {
		fragQueue = append(fragQueue, f)
	}
	alive := make([]int, 0, workers)
	current := make([]int, workers+1) // fragment in flight per worker (-1 none)
	doneBy := make([][]int, workers+1)
	for w := 1; w <= workers; w++ {
		alive = append(alive, w)
		current[w] = -1
	}
	var parked []int // idle requesters awaiting the sweep release

	assign := func(w int) bool {
		if len(fragQueue) == 0 {
			return false
		}
		f := fragQueue[0]
		fragQueue = fragQueue[1:]
		current[w] = f
		r.Send(w, tagAssign, encodeTreeAssign(f, nil))
		return true
	}
	complete := func() bool {
		if len(fragQueue) > 0 {
			return false
		}
		for _, w := range alive {
			if current[w] >= 0 {
				return false
			}
		}
		return true
	}
	// purgeDead reclaims every fragment a crashed worker completed or had
	// in flight: its results only ever existed in its memory, so the whole
	// set must be re-searched (the baseline's expensive recovery, same as
	// the flat path).
	purgeDead := func() {
		live := alive[:0]
		for _, w := range alive {
			if !r.Failed(w) {
				live = append(live, w)
				continue
			}
			lost := append([]int(nil), doneBy[w]...)
			if current[w] >= 0 {
				lost = append(lost, current[w])
			}
			fragQueue = append(fragQueue, lost...)
			r.Metrics().Counter("engine.frags_requeued", r.ID()).Add(int64(len(lost)))
			doneBy[w] = nil
			current[w] = -1
		}
		alive = live
		keep := parked[:0]
		for _, w := range parked {
			if r.Failed(w) {
				continue
			}
			if assign(w) {
				continue
			}
			keep = append(keep, w)
		}
		parked = keep
	}

	for !(complete() && len(parked) == len(alive)) {
		var data []byte
		var from, tag int
		if ft {
			var err error
			data, from, tag, err = r.RecvTimeout(mpi.AnySource, mpi.AnyTag, ftTimeout)
			if err != nil {
				purgeDead()
				if len(alive) == 0 {
					return fmt.Errorf("mpiblast: all workers failed; cannot recover")
				}
				continue
			}
			if r.Failed(from) {
				continue // stale request from a crashed worker
			}
		} else {
			data, from, tag = r.Recv(mpi.AnySource, mpi.AnyTag)
		}
		_ = data
		if tag != tagWorkReq {
			return fmt.Errorf("mpiblast: tree master got unexpected tag %d from %d", tag, from)
		}
		if cur := current[from]; cur >= 0 {
			doneBy[from] = append(doneBy[from], cur)
			current[from] = -1
		}
		if assign(from) {
			continue
		}
		parked = append(parked, from)
	}
	// Sweep release: everyone learns the final membership at once.
	for _, w := range alive {
		r.Send(w, tagAssign, encodeTreeAssign(-1, alive))
	}

	// Hierarchical merge: the master contributes an identity bundle and
	// folds the tree; the result is already the per-query selection.
	r.SetPhase(simtime.PhaseOutput)
	searcher, err := blast.NewSearcher(job.Options)
	if err != nil {
		return err
	}
	maxTargets := searcher.Options().MaxTargetSeqs
	members := treeMembers(alive)
	identity := treeResults{Work: make([]blast.WorkCounters, nQueries), Hits: make([][]treeHit, nQueries)}
	var combErr error
	combined, contributors, err := r.TreeReduce(0, meta.TreeFanout, members, identity.encode(), treeResultsCombiner(r, maxTargets, &combErr))
	if err != nil {
		return err
	}
	if combErr != nil {
		return combErr
	}
	if len(contributors) != len(members) {
		// A member died mid-merge; its results are unrecoverable. Stand
		// the survivors down, then fail cleanly — the same output-phase
		// contract as the flat path.
		r.TreeBcast(0, meta.TreeFanout, members, []byte{0})
		return fmt.Errorf("mpiblast: worker crashed during the hierarchical merge; recovery only covers the search phase")
	}
	r.TreeBcast(0, meta.TreeFanout, members, []byte{1})
	res, err := decodeTreeResults(combined)
	if err != nil {
		return err
	}
	if len(res.Hits) != nQueries {
		return fmt.Errorf("mpiblast: tree merge returned %d queries, want %d", len(res.Hits), nQueries)
	}

	// Output stage: identical to the flat baseline, including the serial
	// per-hit residue fetch — only the merge feeding it changed.
	type masterHit struct {
		res    *blast.SubjectResult
		worker int
	}
	out := mpiio.OpenOrCreate(r, node.Shared, job.OutputPath)
	dbInfo := blast.DBInfo{Title: meta.Title, NumSeqs: meta.NumSeqs, TotalLen: meta.TotalLen}
	fetchRecv := func(w int) ([]byte, error) {
		if !ft {
			residues, _, _ := r.Recv(w, tagHitData)
			return residues, nil
		}
		for {
			residues, _, _, err := r.RecvTimeout(w, tagHitData, ftTimeout)
			if err == nil {
				return residues, nil
			}
			if r.Failed(w) {
				return nil, fmt.Errorf("mpiblast: worker %d crashed during the output phase; recovery only covers the search phase", w)
			}
		}
	}
	var off int64
	for qi, q := range job.Queries {
		// One query at a time through the output loop: stamp it as the
		// trace context so its fetch round-trips carry it.
		r.SetTraceBatch(qi)
		byOID := make(map[int]masterHit, len(res.Hits[qi]))
		metas := make([]engine.HitMeta, 0, len(res.Hits[qi]))
		for _, th := range res.Hits[qi] {
			sr, _ := th.Hit.Unpack()
			byOID[sr.OID] = masterHit{res: sr, worker: th.Worker}
			metas = append(metas, engine.MetaFromResult(th.Worker, sr, 0))
		}
		merged := engine.MergeHits(metas, maxTargets)

		outFormat := job.Options.OutFormat
		var text []byte
		text = append(text, blast.RenderHeader(outFormat, meta.Kind, q, dbInfo)...)
		text = append(text, blast.RenderSummary(outFormat, engine.SummaryResults(merged))...)
		window := opts.FetchWindow
		if window < 1 {
			window = 1
		}
		sent := 0
		for done := 0; done < len(merged); done++ {
			for sent < len(merged) && sent-done < window {
				h := merged[sent]
				r.Send(h.Worker, tagFetch, fetchKey{Query: qi, OID: h.OID}.encode())
				sent++
			}
			h := merged[done]
			residues, err := fetchRecv(h.Worker)
			if err != nil {
				return err
			}
			mh := byOID[h.OID]
			block := blast.RenderHit(outFormat, q, residues, mh.res, job.Options.Matrix)
			r.FormatCost(int64(len(block)))
			r.Advance(r.Cost().FetchItemCost)
			text = append(text, block...)
		}
		space := engine.SearchSpaceFor(searcher, q.Len(), meta.TotalLen, meta.NumSeqs)
		text = append(text, blast.RenderFooter(outFormat, searcher.GappedParams(), space, res.Work[qi])...)
		r.FormatCost(int64(len(text)) / 8)
		out.WriteAt(text, off)
		off += int64(len(text))
		// The query's merged report is on disk: its end-to-end latency is
		// settled on the master's clock.
		lat := r.Clock().Now() - admit
		qlat[qi] = lat
		engine.RecordQueryLatency(r.Metrics(), r.ID(), lat)
	}
	for _, w := range alive {
		r.Send(w, tagRelease, nil)
	}
	r.SetPhase(simtime.PhaseOther)
	r.Barrier()
	return nil
}

// runWorkerTree is the tree-merge worker: the copy/search loop holds all
// results locally, pre-merges them to the per-query top-k, folds them
// into the reduction tree, and then serves the master's residue fetches
// exactly as the flat worker does.
func runWorkerTree(r *mpi.Rank, node *vfs.Node, opts blast.Options) error {
	r.SetPhase(simtime.PhaseOther)
	r.Advance(r.Cost().SetupCost)
	var meta jobMeta
	if err := engine.DecodeGob(r.Bcast(0, nil), &meta); err != nil {
		return err
	}
	wq, err := engine.DecodeWireQueries(meta.Queries)
	if err != nil {
		return err
	}
	queries := wq.Unpack()
	searcher, err := blast.NewSearcher(opts)
	if err != nil {
		return err
	}
	maxTargets := searcher.Options().MaxTargetSeqs
	ctx := searcher.NewContext()

	staging := node.Local
	prefix := ""
	if staging == nil {
		staging = node.Shared
		prefix = fmt.Sprintf("scratch/rank%03d/", r.ID())
	}

	// Results accumulate locally: per-query hit lists for the tree bundle
	// plus the residues the master may fetch after the merge.
	hits := make(map[fetchKey][]byte)
	mine := treeResults{Work: make([]blast.WorkCounters, len(queries)), Hits: make([][]treeHit, len(queries))}
	var aliveWorkers []int
	searchedAny := false
	for {
		if searchedAny {
			r.SetPhase(simtime.PhaseOutput)
		} else {
			r.SetPhase(simtime.PhaseOther)
		}
		r.Send(0, tagWorkReq, nil)
		data, _, _ := r.Recv(0, tagAssign)
		fragID, alive, err := decodeTreeAssign(data)
		if err != nil {
			return err
		}
		if fragID < 0 {
			aliveWorkers = alive
			break
		}
		searchedAny = true
		base := meta.FragBases[fragID]

		r.SetPhase(simtime.PhaseCopy)
		for _, path := range formatdb.FragmentFiles(base) {
			src, err := mpiio.Open(r, node.Shared, path)
			if err != nil {
				return err
			}
			content := src.ReadAt(0, src.Size())
			dst := mpiio.OpenOrCreate(r, staging, prefix+path)
			dst.WriteAt(content, 0)
		}

		r.SetPhase(simtime.PhaseSearch)
		frag, err := loadFragment(r, staging, prefix+base)
		if err != nil {
			return err
		}
		for qi, q := range queries {
			if err := ctx.SetQuery(q); err != nil {
				return err
			}
			space := engine.SearchSpaceFor(searcher, q.Len(), meta.TotalLen, meta.NumSeqs)
			res, err := ctx.SearchFragment(frag, space)
			if err != nil {
				return err
			}
			r.Compute(res.Work.Units())
			engine.RecordWork(r.Metrics(), r.ID(), res.Work)
			for _, hit := range res.Hits {
				mine.Hits[qi] = append(mine.Hits[qi], treeHit{Worker: r.ID(), Hit: engine.PackHit(hit, nil)})
				hits[fetchKey{Query: qi, OID: hit.OID}] = fragSubject(frag, hit.OID)
			}
			mine.Work[qi].Add(res.Work)
			r.Yield()
		}
	}

	// Local pre-merge (the "group" contribution): cap every query to the
	// global top-k before the payload enters the tree.
	r.SetPhase(simtime.PhaseOutput)
	for qi := range mine.Hits {
		mine.Hits[qi] = sortCapTreeHits(mine.Hits[qi], maxTargets)
	}
	members := treeMembers(aliveWorkers)
	var combErr error
	if _, _, err := r.TreeReduce(0, meta.TreeFanout, members, mine.encode(), treeResultsCombiner(r, maxTargets, &combErr)); err != nil {
		return err
	}
	if combErr != nil {
		return combErr
	}
	marker := r.TreeBcast(0, meta.TreeFanout, members, nil)
	if len(marker) != 1 || marker[0] == 0 {
		return fmt.Errorf("mpiblast: merge aborted: a peer crashed during the hierarchical merge")
	}

	// Fetch service: unchanged from the flat baseline.
	for {
		data, _, tag := r.Recv(0, mpi.AnyTag)
		if tag == tagRelease {
			break
		}
		key, err := decodeFetchKey(data)
		if err != nil {
			return err
		}
		residues, ok := hits[key]
		if !ok {
			r.Metrics().Counter("engine.cache_misses", r.ID()).Inc()
			return fmt.Errorf("mpiblast: worker %d asked for unknown hit %+v", r.ID(), key)
		}
		r.Metrics().Counter("engine.cache_hits", r.ID()).Inc()
		r.Send(0, tagHitData, residues)
	}
	r.SetPhase(simtime.PhaseOther)
	r.Barrier()
	return nil
}
