package mpiblast_test

import (
	"strings"
	"testing"

	"parblast/internal/blast"
	"parblast/internal/engine"
	"parblast/internal/formatdb"
	"parblast/internal/mpi"
	"parblast/internal/mpiblast"
	"parblast/internal/seq"
	"parblast/internal/simtime"
	"parblast/internal/vfs"
	"parblast/internal/workload"
)

func setup(t *testing.T, nprocs int) ([]*vfs.Node, *engine.Job, []*seq.Sequence) {
	t.Helper()
	nodes, err := vfs.Cluster(nprocs, vfs.XFSLike(), nil)
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := workload.SynthesizeDB(workload.DBConfig{
		Kind: seq.Protein, NumSeqs: 60, MeanLen: 120, Seed: 21, FamilySize: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := formatdb.Format(nodes[0].Shared, "nr", seqs, formatdb.Config{
		Kind: seq.Protein, Title: "baseline nr",
	}); err != nil {
		t.Fatal(err)
	}
	queries, err := workload.SampleQueries(seqs, workload.QueryConfig{
		TargetBytes: 300, MeanLen: 90, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nodes, &engine.Job{
		DBBase:     "nr",
		Queries:    queries,
		Options:    blast.DefaultProteinOptions(),
		OutputPath: "out",
	}, seqs
}

func TestPrepareFragments(t *testing.T) {
	nodes, _, _ := setup(t, 3)
	bases, err := mpiblast.PrepareFragments(nodes[0].Shared, "nr", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bases) != 5 {
		t.Fatalf("%d fragment bases", len(bases))
	}
	total := 0
	for _, base := range bases {
		db, err := formatdb.Open(nodes[0].Shared, base)
		if err != nil {
			t.Fatalf("fragment %s unreadable: %v", base, err)
		}
		total += db.NumSeqs
	}
	if total != 60 {
		t.Fatalf("fragments cover %d of 60 sequences", total)
	}
	if _, err := mpiblast.PrepareFragments(nodes[0].Shared, "missing", 3); err == nil {
		t.Fatal("missing database accepted")
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	nodes, job, _ := setup(t, 4)
	if _, err := mpiblast.Run(nodes, 1, simtime.DefaultCostModel(), job); err == nil {
		t.Fatal("single-rank baseline accepted")
	}
	if _, err := mpiblast.Run(nodes[:2], 4, simtime.DefaultCostModel(), job); err == nil {
		t.Fatal("too few nodes accepted")
	}
	// No fragments prepared yet.
	if _, err := mpiblast.Run(nodes, 4, simtime.DefaultCostModel(), job); err == nil ||
		!strings.Contains(err.Error(), "fragment") {
		t.Fatalf("missing fragments not diagnosed: %v", err)
	}
	bad := *job
	bad.DBBase = "nope"
	if _, err := mpiblast.Run(nodes, 4, simtime.DefaultCostModel(), &bad); err == nil {
		t.Fatal("missing database accepted")
	}
}

func TestGreedySchedulingCoversAllFragments(t *testing.T) {
	// More fragments than workers: the greedy master must get every
	// fragment searched, and the output must equal the sequential oracle.
	nodes, job, _ := setup(t, 3) // 2 workers
	job.Fragments = 7
	if _, err := mpiblast.PrepareFragments(nodes[0].Shared, "nr", 7); err != nil {
		t.Fatal(err)
	}
	res, err := mpiblast.Run(nodes, 3, simtime.DefaultCostModel(), job)
	if err != nil {
		t.Fatal(err)
	}
	got, err := nodes[0].Shared.ReadFile("out")
	if err != nil {
		t.Fatal(err)
	}

	refNodes, refJob, _ := setup(t, 1)
	if err := engine.RunSequential(refNodes[0].Shared, refJob); err != nil {
		t.Fatal(err)
	}
	want, _ := refNodes[0].Shared.ReadFile("out")
	if string(got) != string(want) {
		t.Fatal("greedy multi-fragment run differs from sequential oracle")
	}
	if res.Phase.Copy <= 0 {
		t.Fatal("copy phase missing")
	}
	if res.OutputBytes != int64(len(got)) {
		t.Fatalf("OutputBytes %d != %d", res.OutputBytes, len(got))
	}
}

func TestMoreWorkersThanFragments(t *testing.T) {
	// 5 workers, 2 fragments: three workers must idle gracefully.
	nodes, job, _ := setup(t, 6)
	job.Fragments = 2
	if _, err := mpiblast.PrepareFragments(nodes[0].Shared, "nr", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := mpiblast.Run(nodes, 6, simtime.DefaultCostModel(), job); err != nil {
		t.Fatal(err)
	}
	out, err := nodes[0].Shared.ReadFile("out")
	if err != nil || len(out) == 0 {
		t.Fatalf("no output: %v", err)
	}
}

func TestCopyUsesLocalDiskWhenAvailable(t *testing.T) {
	local := vfs.LocalDisk()
	nodes, err := vfs.Cluster(3, vfs.XFSLike(), &local)
	if err != nil {
		t.Fatal(err)
	}
	seqs, _ := workload.SynthesizeDB(workload.DBConfig{
		Kind: seq.Protein, NumSeqs: 30, MeanLen: 100, Seed: 23,
	})
	if _, err := formatdb.Format(nodes[0].Shared, "nr", seqs, formatdb.Config{Kind: seq.Protein}); err != nil {
		t.Fatal(err)
	}
	queries, _ := workload.SampleQueries(seqs, workload.QueryConfig{TargetBytes: 150, MeanLen: 60, Seed: 24})
	job := &engine.Job{DBBase: "nr", Queries: queries, Options: blast.DefaultProteinOptions(), OutputPath: "out"}
	if _, err := mpiblast.PrepareFragments(nodes[0].Shared, "nr", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := mpiblast.Run(nodes, 3, simtime.DefaultCostModel(), job); err != nil {
		t.Fatal(err)
	}
	// Fragment files must have landed on the workers' local disks, not in
	// shared scratch.
	for w := 1; w <= 2; w++ {
		if len(nodes[w].Local.List()) == 0 {
			t.Fatalf("worker %d local disk empty after copy stage", w)
		}
	}
	for _, path := range nodes[0].Shared.List() {
		if strings.HasPrefix(path, "scratch/") {
			t.Fatalf("shared scratch used despite local disks: %s", path)
		}
	}
}

func TestPipelinedFetchPreservesOutputAndHelps(t *testing.T) {
	nodes, job, _ := setup(t, 6)
	if _, err := mpiblast.PrepareFragments(nodes[0].Shared, "nr", 5); err != nil {
		t.Fatal(err)
	}
	serial, err := mpiblast.Run(nodes, 6, simtime.DefaultCostModel(), job)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := nodes[0].Shared.ReadFile("out")

	nodes2, job2, _ := setup(t, 6)
	if _, err := mpiblast.PrepareFragments(nodes2[0].Shared, "nr", 5); err != nil {
		t.Fatal(err)
	}
	pipelined, err := mpiblast.RunOpts(nodes2, 6, mpi.Config{Cost: simtime.DefaultCostModel()},
		job2, mpiblast.Options{FetchWindow: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := nodes2[0].Shared.ReadFile("out")
	if string(got) != string(want) {
		t.Fatal("pipelined fetch changed the output")
	}
	// Pipelining removes round-trip stalls; never slower.
	if pipelined.Phase.Output > serial.Phase.Output*1.01 {
		t.Fatalf("pipelined output (%.3f) worse than serial (%.3f)",
			pipelined.Phase.Output, serial.Phase.Output)
	}
}
