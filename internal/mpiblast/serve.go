// Serving mode for the baseline engine: the cluster boots once — every
// worker COPIES its fragments to local staging and loads them exactly once
// — and then drains an open-loop stream of query batches. The master runs
// the same admission queue as the pio engine (engine.Admission) and the
// same per-batch protocol as the one-shot baseline: collect per-(query,
// fragment) results (or fold the reduction tree), merge in fragment order,
// serially fetch each selected hit's residues, and append the rendered
// reports at a running offset. Because the per-query text is produced by
// exactly the one-shot code path, the streamed output file is byte-identical
// to a one-shot run over the admitted queries.
//
// Fault injection is rejected up front: the baseline's recovery story is
// re-copying whole physical fragments, which interacts with a persistent
// stream in ways mpiBLAST 1.2.1 never defined. The pio engine is the one
// that demonstrates mid-stream recovery.
package mpiblast

import (
	"bytes"
	"fmt"

	"parblast/internal/blast"
	"parblast/internal/engine"
	"parblast/internal/formatdb"
	"parblast/internal/mpi"
	"parblast/internal/mpiio"
	"parblast/internal/simtime"
	"parblast/internal/vfs"
	"parblast/internal/workload"
)

// serveBatchMsg is the per-batch broadcast: the arrival-order batch id (the
// trace-batch context) and the packed queries. Seq == -1 ends the stream.
type serveBatchMsg struct {
	Seq     int
	Queries []byte
}

// Serve runs the baseline engine in serving mode over an arrival stream.
// The stream semantics (admission queue, drop-newest shedding, arrival-
// anchored latencies) match core.Serve exactly; see that function. Fault
// schedules are rejected.
func Serve(nodes []*vfs.Node, nprocs int, cfg mpi.Config, job *engine.Job, opts Options, batches []workload.Batch, admitCap int) (engine.RunResult, engine.ServeStats, error) {
	var stats engine.ServeStats
	if err := job.Validate(); err != nil {
		return engine.RunResult{}, stats, err
	}
	if nprocs < 2 {
		return engine.RunResult{}, stats, fmt.Errorf("mpiblast: need ≥2 ranks (1 master + workers), got %d", nprocs)
	}
	if len(nodes) < nprocs {
		return engine.RunResult{}, stats, fmt.Errorf("mpiblast: %d nodes for %d ranks", len(nodes), nprocs)
	}
	if len(cfg.Faults) > 0 {
		return engine.RunResult{}, stats, fmt.Errorf("mpiblast: serve mode does not support fault injection (fragment re-copy recovery is one-shot only)")
	}
	if admitCap < 0 {
		return engine.RunResult{}, stats, fmt.Errorf("mpiblast: negative admission cap %d", admitCap)
	}
	shared := nodes[0].Shared
	db, err := formatdb.Open(shared, job.DBBase)
	if err != nil {
		return engine.RunResult{}, stats, err
	}
	nFrags := job.Fragments
	if nFrags == 0 {
		nFrags = nprocs - 1
	}
	fragBases := make([]string, nFrags)
	for i := range fragBases {
		fragBases[i] = fmt.Sprintf("%s.frag%03d", job.DBBase, i)
		if _, err := shared.Open(formatdb.IndexPath(fragBases[i])); err != nil {
			return engine.RunResult{}, stats, fmt.Errorf("mpiblast: fragment %d missing (run PrepareFragments): %w", i, err)
		}
	}
	fanout := opts.MergeFanout
	if fanout == 0 {
		fanout = mpi.DefaultTreeFanout
	}
	if opts.TreeMerge && fanout < 2 {
		return engine.RunResult{}, stats, fmt.Errorf("mpiblast: merge fan-out %d < 2", opts.MergeFanout)
	}
	next, prevArrival := 0, 0.0
	for _, b := range batches {
		if b.First != next || len(b.Queries) == 0 {
			return engine.RunResult{}, stats, fmt.Errorf("mpiblast: batch %d is not a contiguous in-order partition of the query set", b.Seq)
		}
		if b.Arrival < prevArrival {
			return engine.RunResult{}, stats, fmt.Errorf("mpiblast: batch %d arrives before its predecessor", b.Seq)
		}
		next += len(b.Queries)
		prevArrival = b.Arrival
	}
	if next != len(job.Queries) {
		return engine.RunResult{}, stats, fmt.Errorf("mpiblast: stream covers %d queries, job has %d", next, len(job.Queries))
	}

	meta := jobMeta{
		Title:      db.Title,
		Kind:       db.Kind,
		NumSeqs:    db.NumSeqs,
		TotalLen:   db.TotalResidues,
		FragBases:  fragBases,
		Tree:       opts.TreeMerge,
		TreeFanout: fanout,
		Serve:      true,
	}
	if cfg.Comm == nil {
		cfg.Comm = mpi.NewCommStats(nprocs)
	}
	stats.Arrivals = len(batches)
	var qlat []float64
	clocks, err := mpi.RunConfig(nprocs, cfg, func(r *mpi.Rank) error {
		if r.ID() == 0 {
			return runServeMaster(r, nodes[0], job, meta, opts, batches, admitCap, &qlat, &stats)
		}
		return runServeWorker(r, nodes[r.ID()], job.Options)
	})
	if err != nil {
		return engine.RunResult{}, stats, err
	}
	var outBytes int64
	if f, err := shared.Open(job.OutputPath); err == nil {
		outBytes = f.Size()
	}
	res := engine.Summarize(clocks, outBytes)
	res.QueryLatencies = qlat
	res.CommBytes, res.ShuffleBytes, res.CollectiveBytes, res.CommMessages = cfg.Comm.Totals()
	res.AddIOFaults(nodes)
	return res, stats, nil
}

// serveOwners is the static fragment ownership of the serving mode:
// fragment f belongs to worker (f mod workers)+1. Both sides derive it.
func serveOwners(nFrags, workers, worker int) []int {
	var mine []int
	for f := 0; f < nFrags; f++ {
		if f%workers == worker-1 {
			mine = append(mine, f)
		}
	}
	return mine
}

func runServeMaster(r *mpi.Rank, node *vfs.Node, job *engine.Job, meta jobMeta, opts Options, batches []workload.Batch, admitCap int, qlat *[]float64, stats *engine.ServeStats) error {
	r.SetPhase(simtime.PhaseOther)
	r.Advance(r.Cost().SetupCost)
	r.Bcast(0, engine.EncodeGob(meta))

	workers := r.Size() - 1
	nFrags := len(meta.FragBases)
	searcher, err := blast.NewSearcher(job.Options)
	if err != nil {
		return err
	}
	maxTargets := searcher.Options().MaxTargetSeqs
	out := mpiio.OpenOrCreate(r, node.Shared, job.OutputPath)
	dbInfo := blast.DBInfo{Title: meta.Title, NumSeqs: meta.NumSeqs, TotalLen: meta.TotalLen}
	members := treeMembers(serveAllWorkers(workers))

	arrivals := make([]float64, len(batches))
	for i, b := range batches {
		arrivals[i] = b.Arrival
	}
	adm := engine.NewAdmission(arrivals, admitCap)
	var off int64
	for {
		now := r.Clock().Now()
		bi, arrival, ok := adm.Next(now)
		if !ok {
			break
		}
		b := batches[bi]
		if arrival > now {
			r.SetPhase(simtime.PhaseIdle)
			r.Advance(arrival - now)
		}
		start := r.Clock().Now()
		r.SetTraceBatch(b.Seq)
		r.SetPhase(simtime.PhaseOther)
		r.Bcast(0, engine.EncodeGob(serveBatchMsg{
			Seq:     b.Seq,
			Queries: engine.EncodeWireQueries(engine.PackQueries(b.Queries)),
		}))

		queries := b.Queries
		var res treeResults
		if meta.Tree {
			// Fold the per-batch reduction tree; membership is fixed (no
			// faults in serve mode), so no abort protocol is needed.
			r.SetPhase(simtime.PhaseOutput)
			identity := treeResults{Work: make([]blast.WorkCounters, len(queries)), Hits: make([][]treeHit, len(queries))}
			var combErr error
			combined, _, err := r.TreeReduce(0, meta.TreeFanout, members, identity.encode(), treeResultsCombiner(r, maxTargets, &combErr))
			if err != nil {
				return err
			}
			if combErr != nil {
				return combErr
			}
			if res, err = decodeTreeResults(combined); err != nil {
				return err
			}
			if len(res.Hits) != len(queries) {
				return fmt.Errorf("mpiblast: tree merge returned %d queries, want %d", len(res.Hits), len(queries))
			}
		} else {
			// Flat collection: every (query, fragment) result streams through
			// the master, with the same ingestion cost as the one-shot run.
			r.SetPhase(simtime.PhaseIdle)
			fragHits := make([][][]treeHit, nFrags)
			fragWork := make([][]blast.WorkCounters, nFrags)
			for f := 0; f < nFrags; f++ {
				fragHits[f] = make([][]treeHit, len(queries))
				fragWork[f] = make([]blast.WorkCounters, len(queries))
			}
			for remaining := nFrags * len(queries); remaining > 0; remaining-- {
				data, _, _ := r.Recv(mpi.AnySource, tagResults)
				msg, err := decodeResultsMsg(data)
				if err != nil {
					return err
				}
				r.SetPhase(simtime.PhaseOutput)
				r.Advance(r.Cost().ResultMsgCost + float64(len(msg.Hits))*r.Cost().MergeItemCost)
				hits := make([]treeHit, 0, len(msg.Hits))
				for _, wh := range msg.Hits {
					hits = append(hits, treeHit{Worker: msg.Worker, Hit: wh})
				}
				fragHits[msg.Fragment][msg.Query] = hits
				fragWork[msg.Fragment][msg.Query] = msg.Work
				r.SetPhase(simtime.PhaseIdle)
			}
			// Concatenate per query in fragment order — the one-shot merge's
			// deterministic ingestion order.
			res = treeResults{Work: make([]blast.WorkCounters, len(queries)), Hits: make([][]treeHit, len(queries))}
			for qi := range queries {
				for f := 0; f < nFrags; f++ {
					res.Hits[qi] = append(res.Hits[qi], fragHits[f][qi]...)
					res.Work[qi].Add(fragWork[f][qi])
				}
				r.SetPhase(simtime.PhaseOutput)
				r.Advance(float64(len(res.Hits[qi])) * r.Cost().MergeItemCost)
				r.SetPhase(simtime.PhaseIdle)
			}
		}

		// Output stage: the one-shot render/fetch/write loop, continued at
		// the stream's running offset. The trace context stays the batch id
		// (not the per-query ordinal the one-shot path uses), so the flow
		// graph splits by arrival batch.
		r.SetPhase(simtime.PhaseOutput)
		type masterHit struct {
			res    *blast.SubjectResult
			worker int
		}
		for qi, q := range queries {
			byOID := make(map[int]masterHit, len(res.Hits[qi]))
			metas := make([]engine.HitMeta, 0, len(res.Hits[qi]))
			for _, th := range res.Hits[qi] {
				sr, _ := th.Hit.Unpack()
				byOID[sr.OID] = masterHit{res: sr, worker: th.Worker}
				metas = append(metas, engine.MetaFromResult(th.Worker, sr, 0))
			}
			merged := engine.MergeHits(metas, maxTargets)
			engine.RecordMerge(r.Metrics(), r.ID(), len(metas), len(merged))

			outFormat := job.Options.OutFormat
			var text bytes.Buffer
			text.WriteString(blast.RenderHeader(outFormat, meta.Kind, q, dbInfo))
			text.WriteString(blast.RenderSummary(outFormat, engine.SummaryResults(merged)))
			window := opts.FetchWindow
			if window < 1 {
				window = 1
			}
			sent := 0
			for done := 0; done < len(merged); done++ {
				for sent < len(merged) && sent-done < window {
					h := merged[sent]
					r.Send(h.Worker, tagFetch, fetchKey{Query: qi, OID: h.OID}.encode())
					sent++
				}
				h := merged[done]
				residues, _, _ := r.Recv(h.Worker, tagHitData)
				mh := byOID[h.OID]
				block := blast.RenderHit(outFormat, q, residues, mh.res, job.Options.Matrix)
				r.FormatCost(int64(len(block)))
				r.Advance(r.Cost().FetchItemCost)
				text.WriteString(block)
			}
			space := engine.SearchSpaceFor(searcher, q.Len(), meta.TotalLen, meta.NumSeqs)
			text.WriteString(blast.RenderFooter(outFormat, searcher.GappedParams(), space, res.Work[qi]))
			r.FormatCost(int64(text.Len()) / 8)
			out.WriteAt(text.Bytes(), off)
			off += int64(text.Len())
			// The admission clock is the batch's arrival, never its dispatch.
			lat := r.Clock().Now() - arrival
			*qlat = append(*qlat, lat)
			engine.RecordQueryLatency(r.Metrics(), r.ID(), lat)
		}
		// Release the workers' fetch service; they loop back to the next
		// batch broadcast.
		for w := 1; w <= workers; w++ {
			r.Send(w, tagRelease, nil)
		}
		stats.RecordDispatch(b.Seq, arrival, start, r.Clock().Now(), len(queries))
		r.Metrics().Counter("engine.batches_served", r.ID()).Inc()
	}
	stats.ShedSeqs = adm.ShedSeqs()
	stats.Shed = len(stats.ShedSeqs)
	r.Metrics().Counter("engine.batches_shed", r.ID()).Add(int64(stats.Shed))
	r.SetPhase(simtime.PhaseOther)
	r.Bcast(0, engine.EncodeGob(serveBatchMsg{Seq: -1}))
	r.Barrier()
	return nil
}

func serveAllWorkers(workers int) []int {
	all := make([]int, 0, workers)
	for w := 1; w <= workers; w++ {
		all = append(all, w)
	}
	return all
}

func runServeWorker(r *mpi.Rank, node *vfs.Node, opts blast.Options) error {
	r.SetPhase(simtime.PhaseOther)
	r.Advance(r.Cost().SetupCost)
	var meta jobMeta
	if err := engine.DecodeGob(r.Bcast(0, nil), &meta); err != nil {
		return err
	}
	searcher, err := blast.NewSearcher(opts)
	if err != nil {
		return err
	}
	maxTargets := searcher.Options().MaxTargetSeqs
	ctx := searcher.NewContext()

	staging := node.Local
	prefix := ""
	if staging == nil {
		staging = node.Shared
		prefix = fmt.Sprintf("scratch/rank%03d/", r.ID())
	}

	workers := r.Size() - 1
	mine := serveOwners(len(meta.FragBases), workers, r.ID())
	members := treeMembers(serveAllWorkers(workers))

	// Warmup: copy and load my fragments ONCE. In the one-shot baseline
	// this copy/load cost is paid inside the timed run per fragment
	// assignment; in serving mode it is paid before the first batch and
	// amortized over the whole stream.
	resident := make([]*blast.Fragment, 0, len(mine))
	for _, fragID := range mine {
		base := meta.FragBases[fragID]
		r.SetPhase(simtime.PhaseCopy)
		for _, path := range formatdb.FragmentFiles(base) {
			src, err := mpiio.Open(r, node.Shared, path)
			if err != nil {
				return err
			}
			content := src.ReadAt(0, src.Size())
			dst := mpiio.OpenOrCreate(r, staging, prefix+path)
			dst.WriteAt(content, 0)
		}
		r.SetPhase(simtime.PhaseSearch)
		frag, err := loadFragment(r, staging, prefix+base)
		if err != nil {
			return err
		}
		resident = append(resident, frag)
	}

	for {
		r.SetPhase(simtime.PhaseIdle)
		var msg serveBatchMsg
		if err := engine.DecodeGob(r.Bcast(0, nil), &msg); err != nil {
			return err
		}
		if msg.Seq < 0 {
			break
		}
		r.SetTraceBatch(msg.Seq)
		wq, err := engine.DecodeWireQueries(msg.Queries)
		if err != nil {
			return err
		}
		queries := wq.Unpack()

		// Search every resident fragment — no copy, no load: the warm-
		// cluster payoff. The (fragment, query) loop nest matches the
		// one-shot worker, so per-(query, fragment) work counters agree.
		hits := make(map[fetchKey][]byte)
		bundle := treeResults{Work: make([]blast.WorkCounters, len(queries)), Hits: make([][]treeHit, len(queries))}
		for i, frag := range resident {
			fragID := mine[i]
			r.SetPhase(simtime.PhaseSearch)
			for qi, q := range queries {
				if err := ctx.SetQuery(q); err != nil {
					return err
				}
				space := engine.SearchSpaceFor(searcher, q.Len(), meta.TotalLen, meta.NumSeqs)
				res, err := ctx.SearchFragment(frag, space)
				if err != nil {
					return err
				}
				r.Compute(res.Work.Units())
				engine.RecordWork(r.Metrics(), r.ID(), res.Work)
				for _, hit := range res.Hits {
					hits[fetchKey{Query: qi, OID: hit.OID}] = fragSubject(frag, hit.OID)
				}
				if meta.Tree {
					for _, hit := range res.Hits {
						bundle.Hits[qi] = append(bundle.Hits[qi], treeHit{Worker: r.ID(), Hit: engine.PackHit(hit, nil)})
					}
					bundle.Work[qi].Add(res.Work)
				} else {
					msg := resultsMsg{Query: qi, Fragment: fragID, Worker: r.ID(), Work: res.Work}
					for _, hit := range res.Hits {
						msg.Hits = append(msg.Hits, engine.PackHit(hit, nil))
					}
					r.SetPhase(simtime.PhaseOutput)
					r.Send(0, tagResults, msg.encode())
					r.SetPhase(simtime.PhaseSearch)
				}
				r.Yield()
			}
		}
		if meta.Tree {
			r.SetPhase(simtime.PhaseOutput)
			for qi := range bundle.Hits {
				bundle.Hits[qi] = sortCapTreeHits(bundle.Hits[qi], maxTargets)
			}
			var combErr error
			if _, _, err := r.TreeReduce(0, meta.TreeFanout, members, bundle.encode(), treeResultsCombiner(r, maxTargets, &combErr)); err != nil {
				return err
			}
			if combErr != nil {
				return combErr
			}
		}

		// Fetch service until this batch's release.
		r.SetPhase(simtime.PhaseOutput)
		for {
			data, _, tag := r.Recv(0, mpi.AnyTag)
			if tag == tagRelease {
				break
			}
			key, err := decodeFetchKey(data)
			if err != nil {
				return err
			}
			residues, ok := hits[key]
			if !ok {
				r.Metrics().Counter("engine.cache_misses", r.ID()).Inc()
				return fmt.Errorf("mpiblast: worker %d asked for unknown hit %+v", r.ID(), key)
			}
			r.Metrics().Counter("engine.cache_hits", r.ID()).Inc()
			r.Send(0, tagHitData, residues)
		}
	}
	r.SetPhase(simtime.PhaseOther)
	r.Barrier()
	return nil
}
