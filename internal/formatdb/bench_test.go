package formatdb

import (
	"testing"

	"parblast/internal/seq"
	"parblast/internal/vfs"
	"parblast/internal/workload"
)

func benchSeqs(b *testing.B, n int) []*seq.Sequence {
	seqs, err := workload.SynthesizeDB(workload.DBConfig{
		Kind: seq.Protein, NumSeqs: n, MeanLen: 300, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return seqs
}

func BenchmarkFormat(b *testing.B) {
	seqs := benchSeqs(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := vfs.MustNew(vfs.RAMDisk())
		if _, err := Format(fs, "nr", seqs, Config{Kind: seq.Protein}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartition(b *testing.B) {
	fs := vfs.MustNew(vfs.RAMDisk())
	db, err := Format(fs, "nr", benchSeqs(b, 2000), Config{Kind: seq.Protein})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts, err := db.Partition(61)
		if err != nil || len(parts) != 61 {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhysicalFragment(b *testing.B) {
	seqs := benchSeqs(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := vfs.MustNew(vfs.RAMDisk())
		db, err := Format(fs, "nr", seqs, Config{Kind: seq.Protein})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.PhysicalFragment(fs, 31); err != nil {
			b.Fatal(err)
		}
	}
}
