// Package formatdb is the reproduction's equivalent of the NCBI formatdb
// tool: it converts FASTA sequence data into formatted database volumes —
// a binary index file plus header and sequence files — that BLAST searches
// instead of the raw FASTA.
//
// Per volume <base>[.NNN] it writes three files, mirroring NCBI's
// .pin/.phr/.psq triple:
//
//	<vol>.pin — index: counts, title, and the per-sequence offset arrays
//	            into the header and sequence files
//	<vol>.phr — concatenated deflines
//	<vol>.psq — concatenated residues in alphabet-code encoding
//
// A multi-volume database additionally gets an alias file <base>.pal
// naming its volumes (formatdb splits large databases into volumes; the
// paper discusses exactly this for the 11 GB nt database).
//
// The index is what makes pioBLAST's §3.1 virtual partitioning work: from
// the offset arrays one can compute, for any ordinal range of sequences,
// the exact byte extents to read from the global files — so the database
// can be partitioned dynamically into any number of virtual fragments with
// no physical fragment files. PhysicalFragment implements the mpiformatdb
// behaviour (static pre-partitioning) for the baseline engine.
package formatdb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"

	"parblast/internal/fasta"
	"parblast/internal/seq"
	"parblast/internal/vfs"
)

// Magic identifies a parblast index file.
const Magic = 0x50424442 // "PBDB"

// Version is the on-disk format version.
const Version = 1

// Config controls formatting.
type Config struct {
	// Title is recorded in the index and shown in report headers.
	Title string
	// Kind of the database sequences.
	Kind seq.Kind
	// VolumeMaxResidues splits output into volumes of at most this many
	// residues (0 = single volume), as formatdb does for large databases.
	VolumeMaxResidues int64
	// FirstOID offsets the global ordinals recorded in the index; physical
	// fragments use it so that fragment-local results keep database-global
	// sequence numbers.
	FirstOID int
}

// VolumeInfo is the in-memory summary of one formatted volume.
type VolumeInfo struct {
	Base          string // file basename, e.g. "nr.000"
	NumSeqs       int
	TotalResidues int64
	MaxSeqLen     int
	// FirstOID is the global ordinal of this volume's first sequence.
	FirstOID int
	// HdrSize and SeqSize are the byte sizes of the .phr and .psq files.
	HdrSize int64
	SeqSize int64
	// arrayBase is the byte position in the index file where the offset
	// arrays begin (after the fixed header and title).
	arrayBase int64
	// hdrOffsets and seqOffsets have NumSeqs+1 entries each.
	hdrOffsets []int64
	seqOffsets []int64
}

// DB describes a formatted database (one or more volumes).
type DB struct {
	Base          string
	Title         string
	Kind          seq.Kind
	NumSeqs       int
	TotalResidues int64
	Volumes       []VolumeInfo
}

// File name helpers.
func indexPath(base string) string { return base + ".pin" }
func hdrPath(base string) string   { return base + ".phr" }
func seqPath(base string) string   { return base + ".psq" }
func aliasPath(base string) string { return base + ".pal" }

// IndexPath returns the index ('.pin') path of a volume base.
func IndexPath(base string) string { return indexPath(base) }

// HeaderPath returns the header ('.phr') path of a volume base.
func HeaderPath(base string) string { return hdrPath(base) }

// SeqPath returns the sequence ('.psq') path of a volume base.
func SeqPath(base string) string { return seqPath(base) }

// Format writes the formatted database for seqs under base in fs.
func Format(fs *vfs.FS, base string, seqs []*seq.Sequence, cfg Config) (*DB, error) {
	if len(seqs) == 0 {
		return nil, fmt.Errorf("formatdb: no sequences to format")
	}
	if cfg.Title == "" {
		cfg.Title = base
	}
	alpha := seq.AlphabetFor(cfg.Kind)
	for _, s := range seqs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("formatdb: %w", err)
		}
		if s.Alpha != alpha {
			return nil, fmt.Errorf("formatdb: sequence %q is %s, database is %s",
				s.ID, s.Alpha.Kind(), cfg.Kind)
		}
	}

	// Split into volumes by residue budget.
	var volumes [][]*seq.Sequence
	if cfg.VolumeMaxResidues <= 0 {
		volumes = [][]*seq.Sequence{seqs}
	} else {
		var cur []*seq.Sequence
		var budget int64
		for _, s := range seqs {
			if budget > 0 && budget+int64(s.Len()) > cfg.VolumeMaxResidues {
				volumes = append(volumes, cur)
				cur, budget = nil, 0
			}
			cur = append(cur, s)
			budget += int64(s.Len())
		}
		if len(cur) > 0 {
			volumes = append(volumes, cur)
		}
	}

	db := &DB{Base: base, Title: cfg.Title, Kind: cfg.Kind}
	firstOID := cfg.FirstOID
	for vi, vseqs := range volumes {
		vbase := base
		if len(volumes) > 1 {
			vbase = fmt.Sprintf("%s.%03d", base, vi)
		}
		info, err := writeVolume(fs, vbase, cfg.Title, cfg.Kind, vseqs, firstOID)
		if err != nil {
			return nil, err
		}
		db.Volumes = append(db.Volumes, *info)
		db.NumSeqs += info.NumSeqs
		db.TotalResidues += info.TotalResidues
		firstOID += info.NumSeqs
	}
	if len(volumes) > 1 {
		var alias bytes.Buffer
		fmt.Fprintf(&alias, "TITLE %s\nKIND %d\n", cfg.Title, cfg.Kind)
		for _, v := range db.Volumes {
			fmt.Fprintf(&alias, "DBLIST %s\n", v.Base)
		}
		fs.WriteFile(aliasPath(base), alias.Bytes())
	}
	return db, nil
}

// FormatFASTA parses a FASTA file stored in fs and formats it.
func FormatFASTA(fs *vfs.FS, fastaFile, base string, cfg Config) (*DB, error) {
	data, err := fs.ReadFile(fastaFile)
	if err != nil {
		return nil, err
	}
	seqs, err := fasta.Parse(data, seq.AlphabetFor(cfg.Kind))
	if err != nil {
		return nil, err
	}
	return Format(fs, base, seqs, cfg)
}

func writeVolume(fs *vfs.FS, vbase, title string, kind seq.Kind, seqs []*seq.Sequence, firstOID int) (*VolumeInfo, error) {
	info := &VolumeInfo{Base: vbase, NumSeqs: len(seqs), FirstOID: firstOID}
	var hdr, body bytes.Buffer
	info.hdrOffsets = make([]int64, 0, len(seqs)+1)
	info.seqOffsets = make([]int64, 0, len(seqs)+1)
	for _, s := range seqs {
		info.hdrOffsets = append(info.hdrOffsets, int64(hdr.Len()))
		info.seqOffsets = append(info.seqOffsets, int64(body.Len()))
		hdr.WriteString(s.Defline())
		body.Write(s.Residues)
		info.TotalResidues += int64(s.Len())
		if s.Len() > info.MaxSeqLen {
			info.MaxSeqLen = s.Len()
		}
	}
	info.hdrOffsets = append(info.hdrOffsets, int64(hdr.Len()))
	info.seqOffsets = append(info.seqOffsets, int64(body.Len()))
	info.HdrSize = int64(hdr.Len())
	info.SeqSize = int64(body.Len())
	info.arrayBase = headerSize(len(title))

	fs.WriteFile(hdrPath(vbase), hdr.Bytes())
	fs.WriteFile(seqPath(vbase), body.Bytes())
	fs.WriteFile(indexPath(vbase), encodeIndex(title, kind, info))
	return info, nil
}

// encodeIndex serializes the index file.
func encodeIndex(title string, kind seq.Kind, info *VolumeInfo) []byte {
	var buf bytes.Buffer
	w := func(v any) { binary.Write(&buf, binary.LittleEndian, v) } //nolint:errcheck
	w(uint32(Magic))
	w(uint32(Version))
	w(uint32(kind))
	w(uint32(info.NumSeqs))
	w(info.TotalResidues)
	w(uint32(info.MaxSeqLen))
	w(uint32(info.FirstOID))
	w(uint32(len(title)))
	buf.WriteString(title)
	for _, o := range info.hdrOffsets {
		w(o)
	}
	for _, o := range info.seqOffsets {
		w(o)
	}
	return buf.Bytes()
}

// headerSize returns the byte position where the offset arrays begin.
func headerSize(titleLen int) int64 {
	return 4 + 4 + 4 + 4 + 8 + 4 + 4 + 4 + int64(titleLen)
}

// decodeIndex parses an index file.
func decodeIndex(data []byte) (title string, kind seq.Kind, info *VolumeInfo, err error) {
	r := bytes.NewReader(data)
	var magic, version, kind32, numSeqs, maxLen, firstOID, titleLen uint32
	var total int64
	rd := func(v any) {
		if err == nil {
			err = binary.Read(r, binary.LittleEndian, v)
		}
	}
	rd(&magic)
	rd(&version)
	rd(&kind32)
	rd(&numSeqs)
	rd(&total)
	rd(&maxLen)
	rd(&firstOID)
	rd(&titleLen)
	if err != nil {
		return "", 0, nil, fmt.Errorf("formatdb: truncated index header: %w", err)
	}
	if magic != Magic {
		return "", 0, nil, fmt.Errorf("formatdb: bad magic %#x", magic)
	}
	if version != Version {
		return "", 0, nil, fmt.Errorf("formatdb: unsupported index version %d", version)
	}
	tbuf := make([]byte, titleLen)
	if _, err = r.Read(tbuf); err != nil && titleLen > 0 {
		return "", 0, nil, fmt.Errorf("formatdb: truncated title: %w", err)
	}
	info = &VolumeInfo{
		NumSeqs:       int(numSeqs),
		TotalResidues: total,
		MaxSeqLen:     int(maxLen),
		FirstOID:      int(firstOID),
		arrayBase:     headerSize(int(titleLen)),
		hdrOffsets:    make([]int64, numSeqs+1),
		seqOffsets:    make([]int64, numSeqs+1),
	}
	err = nil
	for i := range info.hdrOffsets {
		rd(&info.hdrOffsets[i])
	}
	for i := range info.seqOffsets {
		rd(&info.seqOffsets[i])
	}
	if err != nil {
		return "", 0, nil, fmt.Errorf("formatdb: truncated offset arrays: %w", err)
	}
	info.HdrSize = info.hdrOffsets[numSeqs]
	info.SeqSize = info.seqOffsets[numSeqs]
	return string(tbuf), seq.Kind(kind32), info, nil
}

// Open loads database metadata (single volume or alias + volumes).
func Open(fs *vfs.FS, base string) (*DB, error) {
	if alias, err := fs.ReadFile(aliasPath(base)); err == nil {
		return openAlias(fs, base, alias)
	}
	title, kind, info, err := loadVolume(fs, base)
	if err != nil {
		return nil, err
	}
	info.Base = base
	return &DB{
		Base: base, Title: title, Kind: kind,
		NumSeqs: info.NumSeqs, TotalResidues: info.TotalResidues,
		Volumes: []VolumeInfo{*info},
	}, nil
}

func openAlias(fs *vfs.FS, base string, alias []byte) (*DB, error) {
	db := &DB{Base: base}
	for _, line := range strings.Split(string(alias), "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "TITLE "):
			db.Title = strings.TrimPrefix(line, "TITLE ")
		case strings.HasPrefix(line, "KIND "):
			if strings.TrimPrefix(line, "KIND ") == "1" {
				db.Kind = seq.DNA
			}
		case strings.HasPrefix(line, "DBLIST "):
			vbase := strings.TrimPrefix(line, "DBLIST ")
			_, _, info, err := loadVolume(fs, vbase)
			if err != nil {
				return nil, fmt.Errorf("formatdb: alias volume %q: %w", vbase, err)
			}
			info.Base = vbase
			db.Volumes = append(db.Volumes, *info)
			db.NumSeqs += info.NumSeqs
			db.TotalResidues += info.TotalResidues
		}
	}
	if len(db.Volumes) == 0 {
		return nil, fmt.Errorf("formatdb: alias file for %q lists no volumes", base)
	}
	return db, nil
}

func loadVolume(fs *vfs.FS, vbase string) (string, seq.Kind, *VolumeInfo, error) {
	data, err := fs.ReadFile(indexPath(vbase))
	if err != nil {
		return "", 0, nil, err
	}
	return decodeIndex(data)
}

// HdrOffset returns the byte offset of sequence i's defline in the volume's
// header file; i may equal NumSeqs (the end sentinel).
func (v *VolumeInfo) HdrOffset(i int) int64 { return v.hdrOffsets[i] }

// SeqOffset returns the byte offset of sequence i's residues in the
// volume's sequence file; i may equal NumSeqs.
func (v *VolumeInfo) SeqOffset(i int) int64 { return v.seqOffsets[i] }

// SeqLen returns the residue count of sequence i in the volume.
func (v *VolumeInfo) SeqLen(i int) int { return int(v.seqOffsets[i+1] - v.seqOffsets[i]) }

// HdrOffsetArrayPos returns the byte position within the volume's index
// file of hdrOffsets[i]. pioBLAST workers read slices of the offset arrays
// directly from the shared index file with MPI-IO instead of shipping them
// through the master.
func (v *VolumeInfo) HdrOffsetArrayPos(i int) int64 {
	return v.arrayBase + 8*int64(i)
}

// SeqOffsetArrayPos returns the byte position of seqOffsets[i] in the
// volume's index file.
func (v *VolumeInfo) SeqOffsetArrayPos(i int) int64 {
	return v.arrayBase + 8*int64(v.NumSeqs+1) + 8*int64(i)
}

// DecodeOffsets parses a little-endian int64 array slice as read from an
// index file region.
func DecodeOffsets(buf []byte) []int64 {
	out := make([]int64, len(buf)/8)
	for i := range out {
		var v int64
		for b := 0; b < 8; b++ {
			v |= int64(buf[8*i+b]) << (8 * b)
		}
		out[i] = v
	}
	return out
}

// DecodeWithOffsets decodes records from raw header/sequence buffers using
// offset-array slices read from the index file. hdrOffs and seqOffs must
// have count+1 entries covering ordinals [oidFrom, oidFrom+count]; the
// buffers must start at hdrOffs[0] / seqOffs[0] in the global files.
func DecodeWithOffsets(oidFrom int, hdrOffs, seqOffs []int64, hdrBuf, seqBuf []byte) ([]Record, error) {
	if len(hdrOffs) < 2 || len(hdrOffs) != len(seqOffs) {
		return nil, fmt.Errorf("formatdb: offset arrays have %d/%d entries", len(hdrOffs), len(seqOffs))
	}
	count := len(hdrOffs) - 1
	if want := hdrOffs[count] - hdrOffs[0]; int64(len(hdrBuf)) < want {
		return nil, fmt.Errorf("formatdb: header buffer %d bytes, need %d", len(hdrBuf), want)
	}
	if want := seqOffs[count] - seqOffs[0]; int64(len(seqBuf)) < want {
		return nil, fmt.Errorf("formatdb: sequence buffer %d bytes, need %d", len(seqBuf), want)
	}
	out := make([]Record, 0, count)
	for i := 0; i < count; i++ {
		defline := string(hdrBuf[hdrOffs[i]-hdrOffs[0] : hdrOffs[i+1]-hdrOffs[0]])
		id, desc := fasta.SplitDefline(defline)
		out = append(out, Record{
			OID:      oidFrom + i,
			ID:       id,
			Defline:  desc,
			Residues: seqBuf[seqOffs[i]-seqOffs[0] : seqOffs[i+1]-seqOffs[0]],
		})
	}
	return out, nil
}

// Record is one decoded database sequence with its global ordinal.
type Record struct {
	OID     int
	ID      string
	Defline string
	// Residues are alphabet codes, aliasing the decoded buffer.
	Residues []byte
}

// DecodeRange extracts records [from, to) (volume-local ordinals) from raw
// header/sequence buffers that were read starting at the byte offsets of
// sequence 'from'. This is the worker-side decode of pioBLAST's input
// stage: the buffers come straight from parallel reads of the shared
// global files.
func (v *VolumeInfo) DecodeRange(from, to int, hdrBuf, seqBuf []byte) ([]Record, error) {
	if from < 0 || to > v.NumSeqs || from > to {
		return nil, fmt.Errorf("formatdb: decode range [%d,%d) outside volume of %d", from, to, v.NumSeqs)
	}
	hdrBase := v.hdrOffsets[from]
	seqBase := v.seqOffsets[from]
	if want := v.hdrOffsets[to] - hdrBase; int64(len(hdrBuf)) < want {
		return nil, fmt.Errorf("formatdb: header buffer %d bytes, need %d", len(hdrBuf), want)
	}
	if want := v.seqOffsets[to] - seqBase; int64(len(seqBuf)) < want {
		return nil, fmt.Errorf("formatdb: sequence buffer %d bytes, need %d", len(seqBuf), want)
	}
	out := make([]Record, 0, to-from)
	for i := from; i < to; i++ {
		defline := string(hdrBuf[v.hdrOffsets[i]-hdrBase : v.hdrOffsets[i+1]-hdrBase])
		id, desc := fasta.SplitDefline(defline)
		out = append(out, Record{
			OID:      v.FirstOID + i,
			ID:       id,
			Defline:  desc,
			Residues: seqBuf[v.seqOffsets[i]-seqBase : v.seqOffsets[i+1]-seqBase],
		})
	}
	return out, nil
}

// ReadAll loads every record of the database (the sequential-search path
// and test helper).
func (db *DB) ReadAll(fs *vfs.FS) ([]Record, error) {
	var out []Record
	for vi := range db.Volumes {
		v := &db.Volumes[vi]
		hdr, err := fs.ReadFile(hdrPath(v.Base))
		if err != nil {
			return nil, err
		}
		body, err := fs.ReadFile(seqPath(v.Base))
		if err != nil {
			return nil, err
		}
		recs, err := v.DecodeRange(0, v.NumSeqs, hdr, body)
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	return out, nil
}
