package formatdb

import (
	"fmt"

	"parblast/internal/seq"
	"parblast/internal/vfs"
)

// Extent is the portion of one volume belonging to a virtual fragment:
// a volume-local ordinal range plus the exact byte ranges a worker must
// read from the volume's header and sequence files.
type Extent struct {
	Volume  int // index into DB.Volumes
	From    int // volume-local ordinal, inclusive
	To      int // volume-local ordinal, exclusive
	HdrOff  int64
	HdrLen  int64
	SeqOff  int64
	SeqLen  int64
	OIDFrom int // global ordinal of From
}

// Part is one virtual fragment: a set of extents (usually one; more when
// the fragment spans a volume boundary).
type Part struct {
	Index   int
	Extents []Extent
}

// NumSeqs counts the sequences in the part.
func (p *Part) NumSeqs() int {
	n := 0
	for _, e := range p.Extents {
		n += e.To - e.From
	}
	return n
}

// Residues counts the residue bytes in the part.
func (p *Part) Residues() int64 {
	var n int64
	for _, e := range p.Extents {
		n += e.SeqLen
	}
	return n
}

// TotalReadBytes is the volume of file data a worker reads for the part.
func (p *Part) TotalReadBytes() int64 {
	var n int64
	for _, e := range p.Extents {
		n += e.HdrLen + e.SeqLen
	}
	return n
}

// Partition splits the database into n virtual fragments balanced by
// residue count — pioBLAST's dynamic partitioning (§3.1). It never creates
// more parts than sequences; the returned slice may therefore be shorter
// than n for tiny databases.
func (db *DB) Partition(n int) ([]Part, error) {
	if n < 1 {
		return nil, fmt.Errorf("formatdb: partition count %d < 1", n)
	}
	if n > db.NumSeqs {
		n = db.NumSeqs
	}
	parts := make([]Part, 0, n)
	// Walk global ordinals, cutting when the running residue count passes
	// the ideal boundary for the next cut.
	target := func(k int) int64 { return db.TotalResidues * int64(k) / int64(n) }
	part := Part{Index: 0}
	var done int64
	cut := 1
	oid := 0
	for vi := range db.Volumes {
		v := &db.Volumes[vi]
		segStart := 0
		for i := 0; i < v.NumSeqs; i++ {
			done += int64(v.SeqLen(i))
			oid++
			remainingSeqs := db.NumSeqs - oid
			remainingParts := n - cut
			// Cut after sequence i if we've reached the target, or if we
			// must (exactly one sequence per remaining part).
			if cut < n && (done >= target(cut) || remainingSeqs == remainingParts) {
				part.Extents = append(part.Extents, v.extent(vi, segStart, i+1))
				parts = append(parts, part)
				part = Part{Index: cut}
				cut++
				segStart = i + 1
			}
		}
		if segStart < v.NumSeqs {
			part.Extents = append(part.Extents, v.extent(vi, segStart, v.NumSeqs))
		}
	}
	if len(part.Extents) > 0 {
		parts = append(parts, part)
	}
	if len(parts) != n {
		return nil, fmt.Errorf("formatdb: partition produced %d parts, wanted %d", len(parts), n)
	}
	return parts, nil
}

func (v *VolumeInfo) extent(vi, from, to int) Extent {
	return Extent{
		Volume:  vi,
		From:    from,
		To:      to,
		HdrOff:  v.hdrOffsets[from],
		HdrLen:  v.hdrOffsets[to] - v.hdrOffsets[from],
		SeqOff:  v.seqOffsets[from],
		SeqLen:  v.seqOffsets[to] - v.seqOffsets[from],
		OIDFrom: v.FirstOID + from,
	}
}

// PhysicalFragment implements mpiformatdb: it rewrites the database as n
// standalone single-volume databases named <base>.fragNNN, which the
// mpiBLAST baseline copies to worker-local storage. The fragment cut
// points match Partition, so "natural partitioning" is comparable across
// the two engines.
func (db *DB) PhysicalFragment(fs *vfs.FS, n int) ([]*DB, error) {
	parts, err := db.Partition(n)
	if err != nil {
		return nil, err
	}
	recs, err := db.ReadAll(fs)
	if err != nil {
		return nil, err
	}
	alpha := seq.AlphabetFor(db.Kind)
	frags := make([]*DB, 0, len(parts))
	oid := 0
	for _, p := range parts {
		count := p.NumSeqs()
		var seqs []*seq.Sequence
		for i := 0; i < count; i++ {
			r := recs[oid]
			seqs = append(seqs, &seq.Sequence{
				ID: r.ID, Description: r.Defline, Residues: r.Residues, Alpha: alpha,
			})
			oid++
		}
		base := fmt.Sprintf("%s.frag%03d", db.Base, p.Index)
		// FirstOID keeps fragment ordinals database-global so merged
		// results are unambiguous across fragments.
		frag, err := Format(fs, base, seqs, Config{Title: db.Title, Kind: db.Kind, FirstOID: oid - count})
		if err != nil {
			return nil, err
		}
		frags = append(frags, frag)
	}
	return frags, nil
}

// FragmentFiles lists the file paths of one single-volume database — what
// the baseline copies to local disks.
func FragmentFiles(base string) []string {
	return []string{indexPath(base), hdrPath(base), seqPath(base)}
}
