package formatdb

import (
	"bytes"
	"testing"
	"testing/quick"

	"parblast/internal/seq"
	"parblast/internal/vfs"
	"parblast/internal/workload"
)

func testSeqs(t *testing.T, n, meanLen int) []*seq.Sequence {
	t.Helper()
	seqs, err := workload.SynthesizeDB(workload.DBConfig{
		Kind: seq.Protein, NumSeqs: n, MeanLen: meanLen, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return seqs
}

func TestFormatAndOpenRoundTrip(t *testing.T) {
	fs := vfs.MustNew(vfs.RAMDisk())
	seqs := testSeqs(t, 50, 120)
	db, err := Format(fs, "nr", seqs, Config{Title: "test nr", Kind: seq.Protein})
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSeqs != 50 || len(db.Volumes) != 1 {
		t.Fatalf("db meta: %+v", db)
	}
	back, err := Open(fs, "nr")
	if err != nil {
		t.Fatal(err)
	}
	if back.Title != "test nr" || back.NumSeqs != 50 || back.TotalResidues != db.TotalResidues {
		t.Fatalf("reopened meta differs: %+v", back)
	}
	recs, err := back.ReadAll(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 50 {
		t.Fatalf("%d records", len(recs))
	}
	for i, r := range recs {
		if r.OID != i {
			t.Fatalf("record %d has OID %d", i, r.OID)
		}
		if r.ID != seqs[i].ID || !bytes.Equal(r.Residues, seqs[i].Residues) {
			t.Fatalf("record %d mutated in round trip", i)
		}
		if r.Defline != seqs[i].Description {
			t.Fatalf("record %d description %q != %q", i, r.Defline, seqs[i].Description)
		}
	}
}

func TestFormatMultiVolume(t *testing.T) {
	fs := vfs.MustNew(vfs.RAMDisk())
	seqs := testSeqs(t, 40, 100)
	total := workload.TotalResidues(seqs)
	db, err := Format(fs, "nt", seqs, Config{Kind: seq.Protein, VolumeMaxResidues: total / 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Volumes) < 3 {
		t.Fatalf("expected ≥3 volumes, got %d", len(db.Volumes))
	}
	// FirstOIDs must tile 0..NumSeqs.
	next := 0
	for _, v := range db.Volumes {
		if v.FirstOID != next {
			t.Fatalf("volume FirstOID %d, want %d", v.FirstOID, next)
		}
		next += v.NumSeqs
	}
	if next != db.NumSeqs {
		t.Fatalf("volumes cover %d of %d seqs", next, db.NumSeqs)
	}
	back, err := Open(fs, "nt")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSeqs != 40 || len(back.Volumes) != len(db.Volumes) {
		t.Fatalf("alias reopen wrong: %+v", back)
	}
	recs, err := back.ReadAll(fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if recs[i].OID != i || !bytes.Equal(recs[i].Residues, seqs[i].Residues) {
			t.Fatalf("multi-volume record %d wrong", i)
		}
	}
}

func TestFormatErrors(t *testing.T) {
	fs := vfs.MustNew(vfs.RAMDisk())
	if _, err := Format(fs, "x", nil, Config{}); err == nil {
		t.Fatal("empty database accepted")
	}
	dna := &seq.Sequence{ID: "d", Residues: []byte{0, 1}, Alpha: seq.DNAAlphabet}
	if _, err := Format(fs, "x", []*seq.Sequence{dna}, Config{Kind: seq.Protein}); err == nil {
		t.Fatal("alphabet mismatch accepted")
	}
	if _, err := Open(fs, "missing"); err == nil {
		t.Fatal("open of missing db succeeded")
	}
}

func TestIndexCorruption(t *testing.T) {
	fs := vfs.MustNew(vfs.RAMDisk())
	seqs := testSeqs(t, 5, 50)
	if _, err := Format(fs, "c", seqs, Config{Kind: seq.Protein}); err != nil {
		t.Fatal(err)
	}
	// Bad magic.
	data, _ := fs.ReadFile("c.pin")
	data[0] ^= 0xFF
	fs.WriteFile("c.pin", data)
	if _, err := Open(fs, "c"); err == nil {
		t.Fatal("corrupt magic accepted")
	}
	// Truncated index.
	data[0] ^= 0xFF
	fs.WriteFile("c.pin", data[:20])
	if _, err := Open(fs, "c"); err == nil {
		t.Fatal("truncated index accepted")
	}
}

func TestOffsetsConsistent(t *testing.T) {
	fs := vfs.MustNew(vfs.RAMDisk())
	seqs := testSeqs(t, 30, 80)
	db, err := Format(fs, "o", seqs, Config{Kind: seq.Protein})
	if err != nil {
		t.Fatal(err)
	}
	v := &db.Volumes[0]
	for i := 0; i < v.NumSeqs; i++ {
		if v.SeqLen(i) != seqs[i].Len() {
			t.Fatalf("seq %d length %d != %d", i, v.SeqLen(i), seqs[i].Len())
		}
		if v.HdrOffset(i+1) < v.HdrOffset(i) || v.SeqOffset(i+1) < v.SeqOffset(i) {
			t.Fatalf("offsets not monotone at %d", i)
		}
	}
	if v.SeqOffset(v.NumSeqs) != v.SeqSize || v.HdrOffset(v.NumSeqs) != v.HdrSize {
		t.Fatal("end sentinels disagree with file sizes")
	}
}

func TestPartitionCoversExactly(t *testing.T) {
	fs := vfs.MustNew(vfs.RAMDisk())
	seqs := testSeqs(t, 100, 90)
	db, err := Format(fs, "p", seqs, Config{Kind: seq.Protein})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 7, 31, 61, 96, 100} {
		parts, err := db.Partition(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(parts) != n {
			t.Fatalf("n=%d: got %d parts", n, len(parts))
		}
		// Every OID appears exactly once, in order, with correct extents.
		oid := 0
		var residues int64
		for pi, p := range parts {
			if p.Index != pi {
				t.Fatalf("part %d has index %d", pi, p.Index)
			}
			if p.NumSeqs() == 0 {
				t.Fatalf("n=%d: part %d empty", n, pi)
			}
			for _, e := range p.Extents {
				if e.OIDFrom != oid {
					t.Fatalf("n=%d part %d: extent OIDFrom %d, want %d", n, pi, e.OIDFrom, oid)
				}
				oid += e.To - e.From
				residues += e.SeqLen
			}
		}
		if oid != db.NumSeqs || residues != db.TotalResidues {
			t.Fatalf("n=%d: parts cover %d seqs / %d residues, want %d / %d",
				n, oid, residues, db.NumSeqs, db.TotalResidues)
		}
	}
}

func TestPartitionBalance(t *testing.T) {
	fs := vfs.MustNew(vfs.RAMDisk())
	seqs := testSeqs(t, 400, 100)
	db, err := Format(fs, "b", seqs, Config{Kind: seq.Protein})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := db.Partition(16)
	if err != nil {
		t.Fatal(err)
	}
	ideal := float64(db.TotalResidues) / 16
	for _, p := range parts {
		ratio := float64(p.Residues()) / ideal
		if ratio < 0.5 || ratio > 1.5 {
			t.Fatalf("part %d holds %.0f%% of ideal share", p.Index, ratio*100)
		}
	}
}

func TestPartitionMultiVolumeSpansBoundaries(t *testing.T) {
	fs := vfs.MustNew(vfs.RAMDisk())
	seqs := testSeqs(t, 60, 100)
	total := workload.TotalResidues(seqs)
	db, err := Format(fs, "mv", seqs, Config{Kind: seq.Protein, VolumeMaxResidues: total / 4})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := db.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	oid := 0
	for _, p := range parts {
		for _, e := range p.Extents {
			if e.OIDFrom != oid {
				t.Fatalf("extent OIDFrom %d, want %d", e.OIDFrom, oid)
			}
			oid += e.To - e.From
		}
	}
	if oid != 60 {
		t.Fatalf("parts cover %d", oid)
	}
}

func TestDecodeRangeMatchesReadAll(t *testing.T) {
	fs := vfs.MustNew(vfs.RAMDisk())
	seqs := testSeqs(t, 64, 70)
	db, err := Format(fs, "d", seqs, Config{Kind: seq.Protein})
	if err != nil {
		t.Fatal(err)
	}
	v := &db.Volumes[0]
	hdr, _ := fs.ReadFile("d.phr")
	body, _ := fs.ReadFile("d.psq")
	parts, _ := db.Partition(5)
	var all []Record
	for _, p := range parts {
		for _, e := range p.Extents {
			recs, err := v.DecodeRange(e.From, e.To,
				hdr[e.HdrOff:e.HdrOff+e.HdrLen], body[e.SeqOff:e.SeqOff+e.SeqLen])
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, recs...)
		}
	}
	ref, _ := db.ReadAll(fs)
	if len(all) != len(ref) {
		t.Fatalf("decoded %d, want %d", len(all), len(ref))
	}
	for i := range ref {
		if all[i].OID != ref[i].OID || all[i].ID != ref[i].ID ||
			!bytes.Equal(all[i].Residues, ref[i].Residues) {
			t.Fatalf("record %d differs between extent decode and ReadAll", i)
		}
	}
}

func TestDecodeRangeErrors(t *testing.T) {
	fs := vfs.MustNew(vfs.RAMDisk())
	seqs := testSeqs(t, 5, 40)
	db, _ := Format(fs, "e", seqs, Config{Kind: seq.Protein})
	v := &db.Volumes[0]
	if _, err := v.DecodeRange(0, 99, nil, nil); err == nil {
		t.Fatal("out-of-range decode accepted")
	}
	if _, err := v.DecodeRange(0, 2, []byte{1}, []byte{1}); err == nil {
		t.Fatal("short buffers accepted")
	}
}

func TestPhysicalFragmentation(t *testing.T) {
	fs := vfs.MustNew(vfs.RAMDisk())
	seqs := testSeqs(t, 50, 90)
	db, err := Format(fs, "f", seqs, Config{Title: "fragme", Kind: seq.Protein})
	if err != nil {
		t.Fatal(err)
	}
	frags, err := db.PhysicalFragment(fs, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 7 {
		t.Fatalf("%d fragments", len(frags))
	}
	// Re-open each fragment from disk; concatenation must equal the DB,
	// including global OIDs.
	var all []Record
	for i, f := range frags {
		re, err := Open(fs, f.Base)
		if err != nil {
			t.Fatalf("fragment %d: %v", i, err)
		}
		recs, err := re.ReadAll(fs)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, recs...)
		for _, path := range FragmentFiles(f.Base) {
			if _, err := fs.Open(path); err != nil {
				t.Fatalf("fragment file %s missing", path)
			}
		}
	}
	ref, _ := db.ReadAll(fs)
	if len(all) != len(ref) {
		t.Fatalf("fragments hold %d records, want %d", len(all), len(ref))
	}
	for i := range ref {
		if all[i].OID != i || all[i].ID != ref[i].ID || !bytes.Equal(all[i].Residues, ref[i].Residues) {
			t.Fatalf("fragmented record %d differs (OID=%d)", i, all[i].OID)
		}
	}
}

func TestPartitionInvalid(t *testing.T) {
	fs := vfs.MustNew(vfs.RAMDisk())
	db, _ := Format(fs, "i", testSeqs(t, 5, 40), Config{Kind: seq.Protein})
	if _, err := db.Partition(0); err == nil {
		t.Fatal("zero parts accepted")
	}
	// More parts than sequences: clamps to NumSeqs.
	parts, err := db.Partition(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 5 {
		t.Fatalf("clamped to %d parts", len(parts))
	}
}

func TestPartitionQuickProperty(t *testing.T) {
	fs := vfs.MustNew(vfs.RAMDisk())
	seqs := testSeqs(t, 80, 60)
	db, _ := Format(fs, "q", seqs, Config{Kind: seq.Protein})
	f := func(nRaw uint8) bool {
		n := 1 + int(nRaw)%80
		parts, err := db.Partition(n)
		if err != nil || len(parts) != n {
			return false
		}
		oid := 0
		for _, p := range parts {
			if p.NumSeqs() == 0 {
				return false
			}
			for _, e := range p.Extents {
				if e.OIDFrom != oid {
					return false
				}
				oid += e.To - e.From
			}
		}
		return oid == db.NumSeqs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
