package formatdb

import (
	"testing"

	"parblast/internal/seq"
	"parblast/internal/vfs"
)

// FuzzDecodeIndex hardens the on-disk index parser: arbitrary (possibly
// truncated or corrupted) index bytes must produce an error, never a panic.
func FuzzDecodeIndex(f *testing.F) {
	fs := vfs.MustNew(vfs.RAMDisk())
	seqs := []*seq.Sequence{
		seq.New(seq.ProteinAlphabet, "a", "first", "MKVLAW"),
		seq.New(seq.ProteinAlphabet, "b", "", "WWYV"),
	}
	if _, err := Format(fs, "fz", seqs, Config{Kind: seq.Protein, Title: "fuzz"}); err != nil {
		f.Fatal(err)
	}
	good, _ := fs.ReadFile("fz.pin")
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:8])
	f.Fuzz(func(t *testing.T, data []byte) {
		title, kind, info, err := decodeIndex(data)
		if err != nil {
			return
		}
		_ = title
		_ = kind
		if info.NumSeqs < 0 {
			t.Fatal("negative NumSeqs decoded")
		}
	})
}
