package lint

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// ChangedPackages computes the package patterns touched since ref: the
// directories of every .go file that `git diff` reports against ref,
// plus untracked .go files. This is the -changed fast path — a branch
// that touched two packages lints two packages, not the module.
//
// When ref does not resolve (a fresh clone with no origin/main yet), the
// diff falls back to HEAD so the mode degrades to "lint uncommitted
// work" instead of failing.
func ChangedPackages(moduleDir, ref string) (patterns []string, resolvedRef string, err error) {
	resolvedRef = ref
	if !refExists(moduleDir, ref) {
		resolvedRef = "HEAD"
		if !refExists(moduleDir, resolvedRef) {
			return nil, "", fmt.Errorf("lint: neither %q nor HEAD resolves to a git ref in %s", ref, moduleDir)
		}
	}
	files, err := gitLines(moduleDir, "diff", "--name-only", resolvedRef, "--", "*.go")
	if err != nil {
		return nil, "", err
	}
	untracked, err := gitLines(moduleDir, "ls-files", "--others", "--exclude-standard", "--", "*.go")
	if err != nil {
		return nil, "", err
	}
	files = append(files, untracked...)

	dirs := make(map[string]bool)
	for _, f := range files {
		if !strings.HasSuffix(f, ".go") {
			continue
		}
		dir := filepath.Dir(f)
		// testdata trees are invisible to `go list ./...` and hold lint
		// fixtures that are violations on purpose; loading them next to
		// real packages would also let fixture taint flow into shipped
		// code through shared callees.
		if underTestdata(dir) {
			continue
		}
		// A directory can vanish between the diff and now (the change
		// being linted deleted it); a pattern for it would fail go list.
		if fi, err := os.Stat(filepath.Join(moduleDir, dir)); err != nil || !fi.IsDir() {
			continue
		}
		if dir == "." {
			dirs["./."] = true
			continue
		}
		dirs["./"+filepath.ToSlash(dir)] = true
	}
	for d := range dirs {
		patterns = append(patterns, d)
	}
	sort.Strings(patterns)
	return patterns, resolvedRef, nil
}

// underTestdata reports whether a path has a testdata segment.
func underTestdata(dir string) bool {
	for _, seg := range strings.Split(filepath.ToSlash(dir), "/") {
		if seg == "testdata" {
			return true
		}
	}
	return false
}

func refExists(dir, ref string) bool {
	cmd := exec.Command("git", "rev-parse", "--verify", "--quiet", ref)
	cmd.Dir = dir
	return cmd.Run() == nil
}

func gitLines(dir string, args ...string) ([]string, error) {
	cmd := exec.Command("git", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: git %s: %w", strings.Join(args, " "), err)
	}
	var lines []string
	for _, l := range strings.Split(string(out), "\n") {
		if l = strings.TrimSpace(l); l != "" {
			lines = append(lines, l)
		}
	}
	return lines, nil
}
