package lint

import (
	"go/ast"
	"go/types"
)

// seededRandAllowed are the math/rand package-level functions that
// construct explicitly seeded generators rather than consuming the global
// one. Everything else at package level (Intn, Float64, Perm, Shuffle,
// Seed, ...) draws from the process-global source, whose sequence depends
// on what every other caller in the process has consumed — nondeterminism
// smuggled in through a side door. Methods on an explicitly seeded
// *rand.Rand are fine and are the required replacement.
var seededRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes a *rand.Rand: already seeded by construction
	"NewPCG":     true, // math/rand/v2 seeded source constructors
	"NewChaCha8": true,
}

// SeededRandAnalyzer enforces the second determinism invariant: every
// random draw in non-test code flows from an explicitly seeded
// *rand.Rand, so a run is a pure function of its seed and config.
var SeededRandAnalyzer = &Analyzer{
	Name: "seededrand",
	Doc: "forbid global math/rand top-level functions in non-test code; " +
		"require an explicitly seeded *rand.Rand",
	Run: func(u *Unit) {
		for _, p := range u.Pkgs {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					for _, path := range []string{"math/rand", "math/rand/v2"} {
						name, fromRand := selectorFromPkg(p.Info, sel, path)
						if !fromRand || seededRandAllowed[name] {
							continue
						}
						// Only functions draw from the global source;
						// type and constant references (rand.Rand in a
						// signature) are fine.
						if _, isFunc := p.Info.Uses[sel.Sel].(*types.Func); !isFunc {
							continue
						}
						u.Reportf(sel.Pos(),
							"rand.%s draws from the global math/rand source: use an explicitly seeded *rand.Rand (rand.New(rand.NewSource(seed)))",
							name)
					}
					return true
				})
			}
		}
	},
}
