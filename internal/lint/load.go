package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package under analysis: its parsed files
// (comments included, test files excluded — the invariants police shipped
// code, not tests), the go/types object graph, and the lint directives
// found in its comments.
type Package struct {
	// ImportPath is the package's import path ("parblast/internal/mpi"),
	// or a synthetic "fixture/<name>" path for testdata packages loaded
	// with LoadDir.
	ImportPath string
	// Dir is the package's source directory.
	Dir string
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Types and Info are the go/types results for the package.
	Types *types.Package
	Info  *types.Info

	// directives maps file name → line → directive text for every
	// "//lint:<name> ..." comment, so analyzers can honour justification
	// comments like //lint:sorted.
	directives map[string]map[int]string
}

// Directive returns the "//lint:" directive text covering pos: a directive
// on the same line as pos, or on the line immediately above it. The
// returned text excludes the "lint:" prefix ("sorted snapshot is re-sorted
// below"). ok is false when no directive covers the position.
func (p *Package) Directive(fset *token.FileSet, pos token.Pos) (text string, ok bool) {
	position := fset.Position(pos)
	lines := p.directives[position.Filename]
	if lines == nil {
		return "", false
	}
	if t, found := lines[position.Line]; found {
		return t, true
	}
	if t, found := lines[position.Line-1]; found {
		return t, true
	}
	return "", false
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
}

// Loader loads and type-checks packages for analysis. It shells out to
// `go list -json` for package discovery (the stdlib-only counterpart of
// golang.org/x/tools/go/packages) and type-checks with go/types, resolving
// stdlib imports through importer.Default with a from-source fallback and
// module-local imports by recursively loading them.
type Loader struct {
	// ModuleDir is the module root (where go.mod lives).
	ModuleDir string
	// ModulePath is the module's import-path prefix ("parblast").
	ModulePath string

	Fset *token.FileSet

	pkgs   map[string]*Package       // by import path, fully checked
	metas  map[string]*listedPackage // go list results, by import path
	std    map[string]*types.Package // stdlib import cache
	gcImp  types.Importer
	srcImp types.Importer
}

// NewLoader locates the enclosing module and returns an empty loader.
func NewLoader() (*Loader, error) {
	out, err := goTool("", "list", "-m", "-json")
	if err != nil {
		return nil, fmt.Errorf("lint: locating module: %w", err)
	}
	var mod struct {
		Path string
		Dir  string
	}
	if err := json.Unmarshal(out, &mod); err != nil {
		return nil, fmt.Errorf("lint: parsing go list -m output: %w", err)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  mod.Dir,
		ModulePath: mod.Path,
		Fset:       fset,
		pkgs:       make(map[string]*Package),
		metas:      make(map[string]*listedPackage),
		std:        make(map[string]*types.Package),
		gcImp:      importer.Default(),
		srcImp:     importer.ForCompiler(fset, "source", nil),
	}, nil
}

// goTool runs the go command in dir (module root when empty) and returns
// stdout.
func goTool(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return nil, fmt.Errorf("go %s: %v: %s", strings.Join(args, " "), err, ee.Stderr)
		}
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	return out, nil
}

// Load lists the given package patterns (e.g. "./...") and type-checks
// every match, returning them sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := l.list(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, m := range metas {
		if len(m.GoFiles) == 0 {
			continue // test-only or empty package: nothing to police
		}
		p, err := l.load(m.ImportPath)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// list runs go list -json and caches the results.
func (l *Loader) list(patterns []string) ([]*listedPackage, error) {
	out, err := goTool(l.ModuleDir, append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles,Imports"}, patterns...)...)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	var metas []*listedPackage
	for dec.More() {
		m := new(listedPackage)
		if err := dec.Decode(m); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		l.metas[m.ImportPath] = m
		metas = append(metas, m)
	}
	return metas, nil
}

// load returns the checked package for an import path, loading and
// type-checking it (and, through Import, its module-local dependencies)
// on first use.
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	m, ok := l.metas[path]
	if !ok {
		metas, err := l.list([]string{path})
		if err != nil {
			return nil, err
		}
		if len(metas) != 1 {
			return nil, fmt.Errorf("lint: go list %q returned %d packages", path, len(metas))
		}
		m = metas[0]
	}
	files := make([]string, len(m.GoFiles))
	for i, f := range m.GoFiles {
		files[i] = filepath.Join(m.Dir, f)
	}
	p, err := l.check(m.ImportPath, m.Dir, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// LoadDir parses and type-checks a single directory outside the go list
// universe (an internal/lint/testdata fixture package). Module-local
// imports inside the fixture resolve against the real module.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(files)
	return l.check("fixture/"+filepath.Base(dir), dir, files)
}

// check parses and type-checks one package from explicit file paths.
func (l *Loader) check(importPath, dir string, filenames []string) (*Package, error) {
	p := &Package{
		ImportPath: importPath,
		Dir:        dir,
		directives: make(map[string]map[int]string),
	}
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		p.Files = append(p.Files, f)
		l.scanDirectives(p, f)
	}
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(importPath, l.Fset, p.Files, p.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	p.Types = tpkg
	return p, nil
}

// scanDirectives records every //lint: comment by file and line.
func (l *Loader) scanDirectives(p *Package, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, "lint:") {
				continue
			}
			pos := l.Fset.Position(c.Pos())
			if p.directives[pos.Filename] == nil {
				p.directives[pos.Filename] = make(map[int]string)
			}
			p.directives[pos.Filename][pos.Line] = strings.TrimPrefix(text, "lint:")
		}
	}
}

// Import implements types.Importer: module-local packages load recursively
// through the go list cache, everything else resolves as stdlib — first
// through the toolchain's export data, then by type-checking the stdlib
// package from source (toolchains past Go 1.20 no longer ship export data
// for every platform, so the fallback keeps the tool self-contained).
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "C" {
		return nil, fmt.Errorf("lint: cgo is not supported")
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if tp, ok := l.std[path]; ok {
		return tp, nil
	}
	tp, err := l.gcImp.Import(path)
	if err != nil {
		tp, err = l.srcImp.Import(path)
	}
	if err != nil {
		return nil, fmt.Errorf("lint: importing %s: %w", path, err)
	}
	l.std[path] = tp
	return tp, nil
}

// Rel makes a file path relative to the module root (slash-separated), the
// canonical form diagnostics and baselines use.
func (l *Loader) Rel(file string) string {
	if rel, err := filepath.Rel(l.ModuleDir, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}
