package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoDiscAnalyzer enforces goroutine discipline in the simulator's
// runtime packages (mpi, engine, core, mpiblast, mpiio): every go
// statement must have a provable join — a sync.WaitGroup the goroutine
// Done()s and the spawner Wait()s on every path, a done-channel the
// goroutine closes/sends and the spawner receives, or a bounded receive
// loop draining the goroutine's sends — including on early error
// returns. The serve mode keeps a cluster warm across query batches: a
// goroutine leaked on one batch's error path is still running when the
// next batch arrives, which is exactly the cross-batch interference the
// determinism contract forbids. Channel sends inside loops must be
// select-guarded or provably bounded by the channel's capacity, so an
// admission loop can never block forever on a full channel.
//
// Accepted join evidence, in order of strength (DESIGN.md §17):
//   - a `defer wg.Wait()` (or deferred closure waiting) registered
//     before the go statement — immune to every return path;
//   - a guaranteed Wait()/receive in the statements that follow the go
//     statement (walking out of enclosing blocks and loops), with no
//     intervening statement that can return first;
//   - the join object is a parameter or a struct field: the join is the
//     owner's contract, checked where the owner lives.
var GoDiscAnalyzer = &Analyzer{
	Name: "godisc",
	Doc: "every go statement in the runtime packages needs a provable join " +
		"(WaitGroup / done-channel / bounded recv) on all paths including error returns, " +
		"and loop channel sends must be select-guarded or capacity-bounded",
	Run: runGoDisc,
}

// goDiscPackages scopes the analyzer by package name, like clockneutral,
// so fixtures exercise it under testdata import paths.
var goDiscPackages = map[string]bool{
	"mpi":      true,
	"engine":   true,
	"core":     true,
	"mpiblast": true,
	"mpiio":    true,
}

func runGoDisc(u *Unit) {
	prog := BuildProgram(u)
	g := &goDiscChecker{u: u, prog: prog}
	for _, fi := range prog.Funcs {
		if !goDiscPackages[fi.Pkg.Types.Name()] {
			continue
		}
		g.fi = fi
		g.frames = g.frames[:0]
		g.loopDepth = 0
		g.walkSeq(fi.Summary)
	}
}

type goDiscChecker struct {
	u    *Unit
	prog *Program

	fi        *FuncInfo
	frames    []collFrame
	loopDepth int
}

func (g *goDiscChecker) walkSeq(seq *Node) {
	if seq == nil {
		return
	}
	for i, kid := range seq.Kids {
		g.frames = append(g.frames, collFrame{rest: seq.Kids[i+1:]})
		g.walkNode(kid)
		g.frames = g.frames[:len(g.frames)-1]
	}
}

func (g *goDiscChecker) walkNode(n *Node) {
	switch n.Kind {
	case NodeGo:
		g.checkGo(n)
		// The goroutine body's own gos/sends are checked when its literal
		// is visited as its own FuncInfo.
	case NodeSend:
		if g.loopDepth > 0 {
			g.checkLoopSend(n)
		}
	case NodeIf:
		g.walkSeq(n.Then)
		g.walkSeq(n.Else)
	case NodeLoop:
		g.loopDepth++
		g.frames = append(g.frames, collFrame{loopBoundary: true})
		g.walkSeq(n.Body)
		g.frames = g.frames[:len(g.frames)-1]
		g.loopDepth--
	case NodeSwitch:
		for _, k := range n.Cases {
			g.walkSeq(k)
		}
	case NodeSelect:
		for _, k := range n.Cases {
			g.walkSeq(k)
		}
	case NodeSeq:
		g.walkSeq(n)
	}
}

// joinObjects is the evidence extracted from a goroutine body: the
// WaitGroups it Done()s and the channels it closes or sends on.
type joinObjects struct {
	wgs   map[types.Object]bool
	chans map[types.Object]bool
}

// checkGo verifies one go statement has a provable join.
func (g *goDiscChecker) checkGo(n *Node) {
	p := g.fi.Pkg
	body := g.goBody(n)
	if body == nil {
		if !g.justified(n.Pos) {
			g.u.Reportf(n.Pos,
				"goroutine target cannot be resolved statically, so its join cannot be proven (or justify with //lint:godisc)")
		}
		return
	}
	ev := g.joinEvidence(p, body)
	g.remapEvidence(n.Call, ev)
	if len(ev.wgs) == 0 && len(ev.chans) == 0 {
		if !g.justified(n.Pos) {
			g.u.Reportf(n.Pos,
				"goroutine has no join protocol: its body neither signals a sync.WaitGroup nor closes/sends on a done channel (or justify with //lint:godisc)")
		}
		return
	}
	// Join objects owned elsewhere — parameters and struct fields — are
	// the owner's contract, not this spawn site's.
	for obj := range ev.wgs {
		if g.ownedElsewhere(obj) {
			return
		}
	}
	for obj := range ev.chans {
		if g.ownedElsewhere(obj) {
			return
		}
	}
	// Strongest evidence: a Wait/receive deferred before the go statement
	// runs on every exit path, early error returns included.
	if g.deferredJoin(n, ev) {
		return
	}
	joined, leakPos := g.successorJoin(n, ev)
	switch {
	case joined && leakPos == token.NoPos:
		return
	case joined:
		if !g.justified(n.Pos) {
			g.u.Reportf(leakPos,
				"this statement can return before the goroutine started at line %d is joined: the goroutine leaks on the early-exit path (join it first, defer the Wait, or justify with //lint:godisc)",
				g.u.Fset.Position(n.Pos).Line)
		}
	default:
		if !g.justified(n.Pos) {
			g.u.Reportf(n.Pos,
				"goroutine is never joined on the spawning path: no Wait/receive on its join object is guaranteed before the function returns (or justify with //lint:godisc)")
		}
	}
}

// goBody resolves the goroutine's body: an inline literal, or the body
// of a statically resolved callee.
func (g *goDiscChecker) goBody(n *Node) *ast.BlockStmt {
	if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body
	}
	if callee := g.prog.Callee(g.fi.Pkg, n.Call); callee != nil {
		return callee.Body
	}
	return nil
}

// joinEvidence scans a goroutine body for Done() calls and channel
// close/sends, keyed by the root object of the receiver expression.
func (g *goDiscChecker) joinEvidence(p *Package, body *ast.BlockStmt) joinObjects {
	ev := joinObjects{wgs: make(map[types.Object]bool), chans: make(map[types.Object]bool)}
	ast.Inspect(body, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.CallExpr:
			if sel, ok := c.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if obj := rootObject(p.Info, sel.X); obj != nil && isWaitGroup(p.Info, sel.X) {
					ev.wgs[obj] = true
				}
			}
			if id, ok := c.Fun.(*ast.Ident); ok {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(c.Args) == 1 {
					if obj := rootObject(p.Info, c.Args[0]); obj != nil {
						ev.chans[obj] = true
					}
				}
			}
		case *ast.SendStmt:
			if obj := rootObject(p.Info, c.Chan); obj != nil {
				ev.chans[obj] = true
			}
		}
		return true
	})
	return ev
}

// remapEvidence translates join objects that are parameters of a named
// goroutine body (go helperBody(done): the close inside roots to the
// callee's done parameter) into the root objects of the corresponding
// call arguments, so the spawner's own <-done counts as the join.
func (g *goDiscChecker) remapEvidence(call *ast.CallExpr, ev joinObjects) {
	callee := g.prog.Callee(g.fi.Pkg, call)
	if callee == nil || callee.Sig == nil {
		return
	}
	params := callee.Sig.Params()
	remap := func(set map[types.Object]bool) {
		for i := 0; i < params.Len() && i < len(call.Args); i++ {
			if !set[params.At(i)] {
				continue
			}
			delete(set, params.At(i))
			if obj := rootObject(g.fi.Pkg.Info, call.Args[i]); obj != nil {
				set[obj] = true
			}
		}
	}
	remap(ev.wgs)
	remap(ev.chans)
}

// ownedElsewhere reports whether a join object is a parameter of the
// spawning function or a struct field — joined by its owner, not here.
func (g *goDiscChecker) ownedElsewhere(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if v.IsField() {
		return true
	}
	if g.fi.Sig != nil {
		params := g.fi.Sig.Params()
		for i := 0; i < params.Len(); i++ {
			if params.At(i) == obj {
				return true
			}
		}
		if g.fi.Sig.Recv() == obj {
			return true
		}
	}
	return false
}

// deferredJoin reports whether a defer registered before the go
// statement waits on any of the evidence objects.
func (g *goDiscChecker) deferredJoin(n *Node, ev joinObjects) bool {
	found := false
	var scan func(node *Node)
	scan = func(node *Node) {
		if node == nil || found {
			return
		}
		if node.Kind == NodeDefer && node.Pos < n.Pos {
			if g.callJoins(node.Call, ev) {
				found = true
				return
			}
		}
		if node.Kind == NodeGo {
			return
		}
		for _, k := range node.Kids {
			scan(k)
		}
		scan(node.Then)
		scan(node.Else)
		scan(node.Body)
		for _, k := range node.Cases {
			scan(k)
		}
	}
	scan(g.fi.Summary)
	return found
}

// callJoins reports whether a call expression (possibly a closure)
// performs a join on one of the evidence objects.
func (g *goDiscChecker) callJoins(call *ast.CallExpr, ev joinObjects) bool {
	p := g.fi.Pkg
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
		if obj := rootObject(p.Info, sel.X); obj != nil && ev.wgs[obj] {
			return true
		}
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		joined := false
		ast.Inspect(lit.Body, func(c ast.Node) bool {
			if g.nodeJoinsAST(c, ev) {
				joined = true
			}
			return !joined
		})
		return joined
	}
	return false
}

// nodeJoinsAST reports whether one AST node is a join action: a Wait()
// on an evidence WaitGroup or a receive/range on an evidence channel.
func (g *goDiscChecker) nodeJoinsAST(c ast.Node, ev joinObjects) bool {
	p := g.fi.Pkg
	switch c := c.(type) {
	case *ast.CallExpr:
		if sel, ok := c.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
			if obj := rootObject(p.Info, sel.X); obj != nil && ev.wgs[obj] {
				return true
			}
		}
	case *ast.UnaryExpr:
		if c.Op == token.ARROW {
			if obj := rootObject(p.Info, c.X); obj != nil && ev.chans[obj] {
				return true
			}
		}
	case *ast.RangeStmt:
		if obj := rootObject(p.Info, c.X); obj != nil && ev.chans[obj] {
			return true
		}
	}
	return false
}

// successorJoin walks the statements guaranteed to run after the go
// statement (rest of each enclosing block, outward to the function end).
// It returns whether a guaranteed join was found, and the position of
// the first intervening statement that can return early (token.NoPos if
// none).
func (g *goDiscChecker) successorJoin(n *Node, ev joinObjects) (joined bool, leakPos token.Pos) {
	leakPos = token.NoPos
	for i := len(g.frames) - 1; i >= 0; i-- {
		for _, node := range g.frames[i].rest {
			if g.guaranteedJoin(node, ev) {
				return true, leakPos
			}
			if leakPos == token.NoPos {
				if pos := returnInside(node); pos != token.NoPos {
					leakPos = pos
				}
			}
		}
	}
	return false, leakPos
}

// guaranteedJoin reports whether control flowing into node always
// performs a join before leaving it.
func (g *goDiscChecker) guaranteedJoin(node *Node, ev joinObjects) bool {
	if node == nil {
		return false
	}
	p := g.fi.Pkg
	switch node.Kind {
	case NodeSeq:
		for _, k := range node.Kids {
			if g.guaranteedJoin(k, ev) {
				return true
			}
		}
		return false
	case NodeRecv:
		if obj := rootObject(p.Info, node.Recv.X); obj != nil && ev.chans[obj] {
			return true
		}
		return false
	case NodeCall, NodeDefer:
		if g.callJoins(node.Call, ev) {
			return true
		}
		// Receives are hoisted as part of expressions; check the call's
		// subtree for a receive on an evidence channel.
		found := false
		ast.Inspect(node.Call, func(c ast.Node) bool {
			if u, ok := c.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				if obj := rootObject(p.Info, u.X); obj != nil && ev.chans[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	case NodeIf:
		return g.guaranteedJoin(node.Then, ev) && node.Else != nil && g.guaranteedJoin(node.Else, ev)
	case NodeLoop:
		// A receive loop over an evidence channel is the bounded-recv
		// join: it drains the goroutine's sends until close.
		if rs, ok := node.Stmt.(*ast.RangeStmt); ok {
			if obj := rootObject(p.Info, rs.X); obj != nil && ev.chans[obj] {
				return true
			}
		}
		// A loop body receive (for i := 0; i < n; i++ { <-ch }) also
		// counts; loops may run zero times, so only channel receives
		// that structurally drain count, not arbitrary Waits.
		if node.Body != nil {
			for _, k := range node.Body.Kids {
				if k.Kind == NodeCall && g.recvOnEvidence(k.Call, ev) {
					return true
				}
				if k.Kind == NodeRecv {
					if obj := rootObject(p.Info, k.Recv.X); obj != nil && ev.chans[obj] {
						return true
					}
				}
			}
		}
		return false
	case NodeSwitch, NodeSelect:
		if len(node.Cases) == 0 || !node.HasDefault {
			return false
		}
		for _, k := range node.Cases {
			if !g.guaranteedJoin(k, ev) {
				return false
			}
		}
		return true
	}
	return false
}

// recvOnEvidence reports whether expr contains a receive from an
// evidence channel.
func (g *goDiscChecker) recvOnEvidence(call *ast.CallExpr, ev joinObjects) bool {
	p := g.fi.Pkg
	found := false
	ast.Inspect(call, func(c ast.Node) bool {
		if u, ok := c.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			if obj := rootObject(p.Info, u.X); obj != nil && ev.chans[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// returnInside returns the position of a return statement anywhere in
// the node's synchronous extent (goroutine bodies excluded), or NoPos.
func returnInside(node *Node) token.Pos {
	if node == nil {
		return token.NoPos
	}
	if node.Kind == NodeReturn {
		return node.Pos
	}
	if node.Kind == NodeGo {
		return token.NoPos
	}
	for _, k := range node.Kids {
		if pos := returnInside(k); pos != token.NoPos {
			return pos
		}
	}
	for _, sub := range []*Node{node.Then, node.Else, node.Body} {
		if pos := returnInside(sub); pos != token.NoPos {
			return pos
		}
	}
	for _, k := range node.Cases {
		if pos := returnInside(k); pos != token.NoPos {
			return pos
		}
	}
	return token.NoPos
}

// checkLoopSend enforces the bounded-send rule for channel sends inside
// loops: the send must be select-guarded, or the channel's capacity must
// provably cover the loop's trip count.
func (g *goDiscChecker) checkLoopSend(n *Node) {
	send := n.Stmt.(*ast.SendStmt)
	if g.sendGuarded(send) || g.sendBounded(send) || g.justified(n.Pos) {
		return
	}
	g.u.Reportf(n.Pos,
		"channel send on %s inside a loop is neither select-guarded nor provably bounded by the channel's capacity: a full channel blocks the loop forever (guard with select, size the channel to the loop bound, or justify with //lint:godisc)",
		types.ExprString(send.Chan))
}

// sendGuarded reports whether the send statement is the communication
// clause of a select.
func (g *goDiscChecker) sendGuarded(send *ast.SendStmt) bool {
	guarded := false
	ast.Inspect(g.fi.Body, func(c ast.Node) bool {
		sel, ok := c.(*ast.SelectStmt)
		if !ok {
			return !guarded
		}
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == send {
				guarded = true
			}
		}
		return !guarded
	})
	return guarded
}

// sendBounded proves capacity ≥ trip count for the innermost loop: the
// channel's make() capacity is a constant at least the loop's constant
// bound, or the capacity is len(X) (possibly plus a constant) and the
// loop ranges over the same X.
func (g *goDiscChecker) sendBounded(send *ast.SendStmt) bool {
	p := g.fi.Pkg
	chObj := rootObject(p.Info, send.Chan)
	if chObj == nil {
		return false
	}
	capConst, capLenOf, ok := g.channelCapacity(chObj)
	if !ok {
		return false
	}
	loop := g.innermostLoop(send)
	if loop == nil {
		return false
	}
	switch s := loop.(type) {
	case *ast.ForStmt:
		if bound, ok := forTripCount(p.Info, s); ok && capLenOf == nil && bound <= capConst {
			return true
		}
	case *ast.RangeStmt:
		if capLenOf != nil {
			if obj := rootObject(p.Info, s.X); obj != nil && obj == capLenOf {
				return true
			}
		}
	}
	return false
}

// channelCapacity finds the make() call that created the channel within
// the enclosing function and extracts its capacity: a constant, or
// len(X) + optional non-negative constant (returned as X's object).
func (g *goDiscChecker) channelCapacity(chObj types.Object) (capConst int64, capLenOf types.Object, ok bool) {
	p := g.fi.Pkg
	ast.Inspect(g.fi.Body, func(c ast.Node) bool {
		if ok {
			return false
		}
		assign, isAssign := c.(*ast.AssignStmt)
		if !isAssign {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, isIdent := lhs.(*ast.Ident)
			if !isIdent || i >= len(assign.Rhs) {
				continue
			}
			obj := p.Info.Defs[id]
			if obj == nil {
				obj = p.Info.Uses[id]
			}
			if obj != chObj {
				continue
			}
			call, isCall := assign.Rhs[i].(*ast.CallExpr)
			if !isCall || len(call.Args) < 2 {
				continue
			}
			fn, isIdent2 := call.Fun.(*ast.Ident)
			if !isIdent2 {
				continue
			}
			if b, isBuiltin := p.Info.Uses[fn].(*types.Builtin); !isBuiltin || b.Name() != "make" {
				continue
			}
			capExpr := call.Args[1]
			if v, isConst := constInt(p.Info, capExpr); isConst {
				capConst, ok = v, true
				return false
			}
			if lenOf := lenArgObject(p.Info, capExpr); lenOf != nil {
				capLenOf, ok = lenOf, true
				return false
			}
		}
		return true
	})
	return capConst, capLenOf, ok
}

// lenArgObject matches len(X) or len(X)+c (c a non-negative constant)
// and returns X's root object.
func lenArgObject(info *types.Info, e ast.Expr) types.Object {
	if bin, ok := e.(*ast.BinaryExpr); ok && bin.Op == token.ADD {
		if v, ok := constInt(info, bin.Y); ok && v >= 0 {
			e = bin.X
		}
	}
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "len" {
		return nil
	}
	return rootObject(info, call.Args[0])
}

// forTripCount extracts the constant trip count of `for i := 0; i < N;
// i++` style loops.
func forTripCount(info *types.Info, s *ast.ForStmt) (int64, bool) {
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok {
		return 0, false
	}
	var bound ast.Expr
	switch cond.Op {
	case token.LSS, token.LEQ:
		bound = cond.Y
	default:
		return 0, false
	}
	n, ok := constInt(info, bound)
	if !ok {
		return 0, false
	}
	if cond.Op == token.LEQ {
		n++
	}
	// Require the canonical zero-start init so the count is exact.
	if init, ok := s.Init.(*ast.AssignStmt); ok && len(init.Rhs) == 1 {
		if v, ok := constInt(info, init.Rhs[0]); ok {
			return n - v, true
		}
	}
	return 0, false
}

// innermostLoop finds the innermost for/range statement containing the
// send.
func (g *goDiscChecker) innermostLoop(send *ast.SendStmt) ast.Stmt {
	var innermost ast.Stmt
	var walk func(n ast.Node, cur ast.Stmt)
	walk = func(n ast.Node, cur ast.Stmt) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.ForStmt:
				walk(c.Body, c)
				return false
			case *ast.RangeStmt:
				walk(c.Body, c)
				return false
			case *ast.FuncLit:
				walk(c.Body, nil)
				return false
			case *ast.SendStmt:
				if c == send {
					innermost = cur
				}
			}
			return true
		})
	}
	walk(g.fi.Body, nil)
	return innermost
}

// rootObject resolves an expression to the object anchoring it: the
// variable of a plain identifier, or the field object of a selector
// chain (mb.wg → the wg field).
func rootObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		if f := fieldObj(info, e); f != nil {
			return f
		}
		return info.Uses[e.Sel]
	case *ast.UnaryExpr:
		return rootObject(info, e.X)
	case *ast.StarExpr:
		return rootObject(info, e.X)
	}
	return nil
}

// isWaitGroup reports whether the expression's type is sync.WaitGroup
// (or a pointer to it).
func isWaitGroup(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

func (g *goDiscChecker) justified(pos token.Pos) bool {
	text, ok := g.fi.Pkg.Directive(g.u.Fset, pos)
	if !ok || !strings.HasPrefix(text, "godisc") {
		return false
	}
	if strings.TrimSpace(strings.TrimPrefix(text, "godisc")) == "" {
		g.u.Reportf(pos, "//lint:godisc needs a justification: say why this goroutine or send cannot leak or block")
	}
	return true
}
