package lint

import (
	"go/ast"
)

// clockNeutralPackages are the observability packages that must never
// advance a virtual clock. PR 3's telemetry guarantee — enabling metrics
// or tracing cannot change any reported timestamp or phase duration — is
// only as strong as this invariant: one Clock.Advance inside an
// instrument would make an instrumented run's virtual times differ from
// an uninstrumented one, which is exactly the perturbation the registry
// was designed out of. Recognition is by package name so the fixture
// suite can exercise the analyzer on testdata packages.
var clockNeutralPackages = map[string]bool{
	"metrics": true,
	"trace":   true,
}

// clockAdvancing are the simtime.Clock methods that move or re-bucket
// virtual time. Read-only accessors (Now, Bucket, Buckets, Phase) are
// allowed: exporters legitimately read clocks they must never drive.
var clockAdvancing = map[string]bool{
	"Advance":   true,
	"AdvanceTo": true,
	"SetPhase":  true,
}

// ClockNeutralAnalyzer enforces the telemetry invariant: packages metrics
// and trace must not advance virtual clocks, directly (simtime.Clock
// mutators) or indirectly (importing the mpi layer, whose operations all
// charge time to the acting rank).
var ClockNeutralAnalyzer = &Analyzer{
	Name: "clockneutral",
	Doc: "packages metrics and trace must not call any simtime/mpi API " +
		"that advances a virtual clock (the PR 3 identical-timestamps guarantee)",
	Run: func(u *Unit) {
		for _, p := range u.Pkgs {
			if !clockNeutralPackages[p.Types.Name()] {
				continue
			}
			for _, f := range p.Files {
				for _, imp := range f.Imports {
					path := imp.Path.Value // quoted
					path = path[1 : len(path)-1]
					if hasPathSuffix(path, "internal/mpi") {
						u.Reportf(imp.Pos(),
							"package %s must stay clock-neutral: importing %s pulls in operations that advance virtual clocks",
							p.Types.Name(), path)
					}
				}
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					pkgPath, name := methodPkgPath(p.Info, sel)
					if pkgPath == "" {
						return true
					}
					if hasPathSuffix(pkgPath, "internal/simtime") && clockAdvancing[name] {
						u.Reportf(sel.Pos(),
							"package %s must stay clock-neutral: simtime %s advances a virtual clock, so instrumentation would change the measured timings",
							p.Types.Name(), name)
					}
					if hasPathSuffix(pkgPath, "internal/mpi") {
						u.Reportf(sel.Pos(),
							"package %s must stay clock-neutral: mpi.%s charges virtual time to the acting rank",
							p.Types.Name(), name)
					}
					return true
				})
			}
		}
	},
}
