package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CollOrderAnalyzer enforces the collective-consistency property every
// MPI program owes its runtime (and which mpi.runCollective can only
// check at simulation time, one schedule at a time): a collective
// operation must be reached by every participant, so any conditional
// whose outcome depends on the rank identity must reach the same *set*
// of collective operations on every branch. A master/worker split where
// only the master calls Barrier deadlocks the simulated world; this
// analyzer catches it before a single rank runs.
//
// The check is interprocedural: each function's "collective footprint"
// (the set of mpi collective kinds it can reach, transitively through
// callees and through function-valued arguments such as per-batch merge
// callbacks) is spliced into its call sites, the same forwarding idea
// tagmatch uses for tag parameters. Rank dependence is a taint: values
// derived from Rank.ID() (or the mpi-internal id field), transitively
// through assignments, parameters, and returns.
//
// Soundness limits (DESIGN.md §17): the footprint is a set, so two
// branches that reach the same collectives in different orders or
// multiplicities are accepted (mpi.runCollective still catches those at
// run time); branches that terminate by panicking or returning a
// constructed error (fmt.Errorf/errors.New) are exempt, because an
// abort takes the whole world down rather than desynchronizing it; and
// goroutine bodies are analyzed as their own functions, not as part of
// the spawning path.

var CollOrderAnalyzer = &Analyzer{
	Name: "collorder",
	Doc: "mpi collectives (Barrier/Bcast/Gather/AllGather/ReduceMax/Tree*) must be reached " +
		"uniformly by all ranks: every rank-dependent branch must cover the same collective set",
	Run: runCollOrder,
}

// collectiveOps are the mpi.Rank methods that synchronize every
// participant (or every member list) and therefore must be called
// uniformly.
var collectiveOps = map[string]bool{
	"Barrier":     true,
	"Bcast":       true,
	"Gather":      true,
	"AllGather":   true,
	"ReduceMax":   true,
	"TreeReduce":  true,
	"TreeGather":  true,
	"TreeBcast":   true,
	"TreeBarrier": true,
}

// opset is a footprint: the set of collective op kinds a region can reach.
type opset map[string]bool

func (s opset) add(op string) { s[op] = true }
func (s opset) union(o opset) {
	for op := range o {
		s[op] = true
	}
}
func (s opset) equal(o opset) bool {
	if len(s) != len(o) {
		return false
	}
	for op := range s {
		if !o[op] {
			return false
		}
	}
	return true
}

func (s opset) list() string {
	if len(s) == 0 {
		return "none"
	}
	ops := make([]string, 0, len(s))
	for op := range s {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	return strings.Join(ops, ",")
}

// fallKind classifies how control leaves a region.
type fallKind int

const (
	fallThrough fallKind = iota // control reaches the region's end
	stopReturn                  // a plain (or success) return
	stopAbort                   // panic or constructed-error return
	stopBranch                  // break/continue out of the region
)

func runCollOrder(u *Unit) {
	prog := BuildProgram(u)
	taint := RunTaint(prog, TaintSpec{ExprSource: rankSource})
	c := &collChecker{u: u, prog: prog, taint: taint, fps: make(map[*FuncInfo]opset)}
	c.fixpointFootprints()
	for _, fi := range prog.Funcs {
		c.fi = fi
		c.frames = c.frames[:0]
		c.walkSeq(fi.Summary)
	}
}

// rankSource marks the taint origins of rank identity: Rank.ID() calls
// and (inside the mpi package itself) the id field.
func rankSource(p *Package, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			pkgPath, name := methodPkgPath(p.Info, sel)
			return name == "ID" && hasPathSuffix(pkgPath, "internal/mpi")
		}
	case *ast.SelectorExpr:
		if f := fieldObj(p.Info, e); f != nil && f.Pkg() != nil {
			return f.Name() == "id" && hasPathSuffix(f.Pkg().Path(), "internal/mpi")
		}
	}
	return false
}

type collChecker struct {
	u     *Unit
	prog  *Program
	taint *Taint
	fps   map[*FuncInfo]opset

	fi     *FuncInfo
	frames []collFrame
}

// collFrame is one pending continuation during the walk: the statements
// that run after the node currently being visited. loopBoundary frames
// mark where a break/continue stops skipping.
type collFrame struct {
	rest         []*Node
	loopBoundary bool
}

// fixpointFootprints computes every function's reachable collective set,
// iterating because footprints splice through call sites (including
// mutual recursion).
func (c *collChecker) fixpointFootprints() {
	for _, fi := range c.prog.Funcs {
		c.fps[fi] = opset{}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range c.prog.Funcs {
			fp := opset{}
			c.collectOps(fi, fi.Summary, fp)
			if !fp.equal(c.fps[fi]) {
				c.fps[fi] = fp
				changed = true
			}
		}
	}
}

// callOps returns the footprint of one call site: the op itself for a
// direct collective, otherwise the callee's footprint plus the
// footprints of any function-valued arguments (callbacks run by the
// callee are charged to the caller's path).
func (c *collChecker) callOps(p *Package, call *ast.CallExpr) opset {
	fp := opset{}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		pkgPath, name := methodPkgPath(p.Info, sel)
		if collectiveOps[name] && hasPathSuffix(pkgPath, "internal/mpi") {
			fp.add(name)
			return fp
		}
	}
	if callee := c.prog.Callee(p, call); callee != nil {
		fp.union(c.fps[callee])
	}
	for _, arg := range c.prog.FuncValueArgs(p, call) {
		fp.union(c.fps[arg])
	}
	return fp
}

// collectOps unions every collective reachable anywhere inside n
// (termination-insensitive over-approximation), excluding goroutine
// bodies, which run on their own control path.
func (c *collChecker) collectOps(fi *FuncInfo, n *Node, fp opset) {
	if n == nil {
		return
	}
	switch n.Kind {
	case NodeCall, NodeDefer:
		fp.union(c.callOps(fi.Pkg, n.Call))
	case NodeGo:
		return
	}
	for _, k := range n.Kids {
		c.collectOps(fi, k, fp)
	}
	c.collectOps(fi, n.Then, fp)
	c.collectOps(fi, n.Else, fp)
	c.collectOps(fi, n.Body, fp)
	for _, k := range n.Cases {
		c.collectOps(fi, k, fp)
	}
}

// exec simulates one region, accumulating reachable collectives into fp
// and classifying how control leaves it.
func (c *collChecker) exec(n *Node, fp opset) fallKind {
	if n == nil {
		return fallThrough
	}
	switch n.Kind {
	case NodeSeq:
		for _, k := range n.Kids {
			if kind := c.exec(k, fp); kind != fallThrough {
				return kind
			}
		}
		return fallThrough
	case NodeCall, NodeDefer:
		fp.union(c.callOps(c.fi.Pkg, n.Call))
		return fallThrough
	case NodeGo, NodeSend:
		return fallThrough
	case NodePanic:
		return stopAbort
	case NodeReturn:
		if c.isAbortReturn(n) {
			return stopAbort
		}
		return stopReturn
	case NodeBranch:
		switch n.Tok {
		case token.BREAK, token.CONTINUE:
			return stopBranch
		case token.GOTO:
			return stopReturn
		}
		return fallThrough // fallthrough in a switch
	case NodeIf:
		kT := c.exec(n.Then, fp)
		kE := c.exec(n.Else, fp)
		return combineKinds(kT, kE)
	case NodeLoop:
		c.collectOps(c.fi, n.Body, fp)
		return fallThrough
	case NodeSwitch, NodeSelect:
		kinds := make([]fallKind, 0, len(n.Cases)+1)
		for _, k := range n.Cases {
			kinds = append(kinds, c.exec(k, fp))
		}
		if !n.HasDefault {
			kinds = append(kinds, fallThrough)
		}
		out := stopAbort
		for _, k := range kinds {
			out = combineKinds(out, k)
		}
		return out
	}
	return fallThrough
}

// combineKinds merges the exit kinds of two alternative paths: if either
// can fall through, the merge can; break/continue dominates returns
// (it executes more of the continuation); abort only survives when every
// path aborts.
func combineKinds(a, b fallKind) fallKind {
	if a == fallThrough || b == fallThrough {
		return fallThrough
	}
	if a == stopBranch || b == stopBranch {
		return stopBranch
	}
	if a == stopAbort && b == stopAbort {
		return stopAbort
	}
	return stopReturn
}

// isAbortReturn reports whether a return statement's last result is a
// freshly constructed error — the simulated equivalent of MPI_Abort,
// which tears the world down instead of desynchronizing it.
func (c *collChecker) isAbortReturn(n *Node) bool {
	if len(n.Results) == 0 {
		return false
	}
	last := n.Results[len(n.Results)-1]
	call, ok := ast.Unparen(last).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if name, ok := selectorFromPkg(c.fi.Pkg.Info, sel, "fmt"); ok && name == "Errorf" {
		return true
	}
	if name, ok := selectorFromPkg(c.fi.Pkg.Info, sel, "errors"); ok && (name == "New" || name == "Join") {
		return true
	}
	return false
}

// pathOps computes the full collective set executed from the start of
// branch until the function exits, spliced with the pending
// continuations: a falling-through branch rejoins every frame; a
// break/continue rejoins only the frames outside the innermost loop; a
// return or abort rejoins nothing (deferred calls are already charged at
// their NodeDefer site, an over-approximation shared by both sides of
// every comparison).
func (c *collChecker) pathOps(branch *Node) (opset, fallKind) {
	fp := opset{}
	kind := c.exec(branch, fp)
	switch kind {
	case fallThrough:
		for _, fr := range c.frames {
			for _, n := range fr.rest {
				c.collectOps(c.fi, n, fp)
			}
		}
	case stopBranch:
		// Skip frames up to and including the innermost loop boundary.
		i := len(c.frames) - 1
		for ; i >= 0; i-- {
			if c.frames[i].loopBoundary {
				i--
				break
			}
		}
		for j := 0; j <= i; j++ {
			for _, n := range c.frames[j].rest {
				c.collectOps(c.fi, n, fp)
			}
		}
	}
	return fp, kind
}

// walkSeq visits a sequence, maintaining the continuation stack.
func (c *collChecker) walkSeq(seq *Node) {
	if seq == nil {
		return
	}
	for i, kid := range seq.Kids {
		c.frames = append(c.frames, collFrame{rest: seq.Kids[i+1:]})
		c.walkNode(kid)
		c.frames = c.frames[:len(c.frames)-1]
	}
}

func (c *collChecker) walkNode(n *Node) {
	switch n.Kind {
	case NodeIf:
		if c.taint.Tainted(c.fi.Pkg, n.Cond) {
			c.checkRankBranch(n)
		}
		c.walkSeq(n.Then)
		c.walkSeq(n.Else)
	case NodeLoop:
		if c.rankDependentLoop(n) {
			c.checkRankLoop(n)
		}
		c.frames = append(c.frames, collFrame{loopBoundary: true})
		c.walkSeq(n.Body)
		c.frames = c.frames[:len(c.frames)-1]
	case NodeSwitch:
		if c.rankDependentSwitch(n) {
			c.checkRankSwitch(n)
		}
		for _, k := range n.Cases {
			c.walkSeq(k)
		}
	case NodeSelect:
		for _, k := range n.Cases {
			c.walkSeq(k)
		}
	case NodeSeq:
		c.walkSeq(n)
	}
	// Go bodies and literal bodies are walked as their own FuncInfos.
}

func (c *collChecker) rankDependentLoop(n *Node) bool {
	switch s := n.Stmt.(type) {
	case *ast.ForStmt:
		return s.Cond != nil && c.taint.Tainted(c.fi.Pkg, s.Cond)
	case *ast.RangeStmt:
		return c.taint.Tainted(c.fi.Pkg, s.X)
	}
	return false
}

func (c *collChecker) rankDependentSwitch(n *Node) bool {
	if n.Cond != nil && c.taint.Tainted(c.fi.Pkg, n.Cond) {
		return true
	}
	for _, e := range n.CaseConds {
		if c.taint.Tainted(c.fi.Pkg, e) {
			return true
		}
	}
	return false
}

// checkRankBranch compares the two sides of a rank-dependent if.
func (c *collChecker) checkRankBranch(n *Node) {
	thenOps, kT := c.pathOps(n.Then)
	elseOps, kE := c.pathOps(n.Else)
	if kT == stopAbort || kE == stopAbort {
		return // an aborting side takes the world down, not out of sync
	}
	if thenOps.equal(elseOps) {
		return
	}
	if c.justified(n.Pos) {
		return
	}
	c.u.Reportf(n.Pos,
		"rank-dependent branch diverges on collectives: one side reaches {%s}, the other {%s} — all ranks must reach the same collective set (or justify with //lint:collorder)",
		thenOps.list(), elseOps.list())
}

// checkRankLoop flags collectives whose execution count depends on the
// rank identity: a loop bounded by a rank-derived value runs a different
// number of collective rounds on each rank.
func (c *collChecker) checkRankLoop(n *Node) {
	fp := opset{}
	c.collectOps(c.fi, n.Body, fp)
	if len(fp) == 0 {
		return
	}
	if c.justified(n.Pos) {
		return
	}
	c.u.Reportf(n.Pos,
		"collectives {%s} inside a rank-dependent loop: the iteration count differs per rank, so ranks fall out of collective lockstep (or justify with //lint:collorder)",
		fp.list())
}

// checkRankSwitch requires every arm of a rank-dependent switch (plus
// the implicit empty default) to cover the same collective set.
func (c *collChecker) checkRankSwitch(n *Node) {
	var first opset
	var firstKind fallKind
	ok := true
	check := func(ops opset, kind fallKind) {
		if kind == stopAbort {
			return
		}
		if first == nil {
			first, firstKind = ops, kind
			_ = firstKind
			return
		}
		if !ops.equal(first) {
			ok = false
		}
	}
	for _, k := range n.Cases {
		ops, kind := c.pathOps(k)
		check(ops, kind)
	}
	if !n.HasDefault {
		ops, kind := c.pathOps(&Node{Kind: NodeSeq})
		check(ops, kind)
	}
	if ok || c.justified(n.Pos) {
		return
	}
	c.u.Reportf(n.Pos,
		"rank-dependent switch arms diverge on collectives: all arms must reach the same collective set (or justify with //lint:collorder)")
}

// justified reports whether a //lint:collorder directive covers pos (a
// bare directive with no reason does not, and is itself reported).
func (c *collChecker) justified(pos token.Pos) bool {
	text, ok := c.fi.Pkg.Directive(c.u.Fset, pos)
	if !ok || !strings.HasPrefix(text, "collorder") {
		return false
	}
	if strings.TrimSpace(strings.TrimPrefix(text, "collorder")) == "" {
		c.u.Reportf(pos, "//lint:collorder needs a justification: say why this rank-dependent divergence cannot desynchronize the collective schedule")
	}
	return true
}

// fieldObj resolves a selector to the struct field it reads, or nil when
// it is not a field selection.
func fieldObj(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}
