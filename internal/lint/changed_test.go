package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
)

// gitIn runs one git command in dir, failing the test on error.
func gitIn(t *testing.T, dir string, args ...string) {
	t.Helper()
	cmd := exec.Command("git", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(),
		"GIT_AUTHOR_NAME=lint-test", "GIT_AUTHOR_EMAIL=lint@test",
		"GIT_COMMITTER_NAME=lint-test", "GIT_COMMITTER_EMAIL=lint@test",
	)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("git %v: %v\n%s", args, err, out)
	}
}

func writeFileIn(t *testing.T, dir, rel, content string) {
	t.Helper()
	path := filepath.Join(dir, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestChangedPackages drives the -changed fast path against a scratch
// repo: modified, untracked, non-Go, and deleted-directory files must
// map to exactly the surviving package directories.
func TestChangedPackages(t *testing.T) {
	dir := t.TempDir()
	gitIn(t, dir, "init", "-q", "-b", "main")
	writeFileIn(t, dir, "a/a.go", "package a\n")
	writeFileIn(t, dir, "b/b.go", "package b\n")
	writeFileIn(t, dir, "gone/gone.go", "package gone\n")
	writeFileIn(t, dir, "root.go", "package root\n")
	gitIn(t, dir, "add", ".")
	gitIn(t, dir, "commit", "-q", "-m", "seed")

	writeFileIn(t, dir, "a/a.go", "package a // changed\n")          // modified, tracked
	writeFileIn(t, dir, "a/a2.go", "package a\n")                    // untracked, same dir
	writeFileIn(t, dir, "c/c.go", "package c\n")                     // untracked, new dir
	writeFileIn(t, dir, "c/testdata/src/f/f.go", "package f\n")      // fixture: ignored
	writeFileIn(t, dir, "b/notes.txt", "not go\n")                   // non-Go: ignored
	writeFileIn(t, dir, "root.go", "package root // changed\n")      // module root
	if err := os.RemoveAll(filepath.Join(dir, "gone")); err != nil { // deleted dir
		t.Fatal(err)
	}
	gitIn(t, dir, "rm", "-q", "gone/gone.go")

	patterns, ref, err := ChangedPackages(dir, "main")
	if err != nil {
		t.Fatalf("ChangedPackages: %v", err)
	}
	if ref != "main" {
		t.Errorf("resolved ref = %q, want main", ref)
	}
	want := []string{"./.", "./a", "./c"}
	if !reflect.DeepEqual(patterns, want) {
		t.Errorf("patterns = %v, want %v", patterns, want)
	}
}

// A ref that does not exist falls back to HEAD instead of failing, so
// clones without an origin/main still get the uncommitted-work diff.
func TestChangedPackagesRefFallback(t *testing.T) {
	dir := t.TempDir()
	gitIn(t, dir, "init", "-q", "-b", "main")
	writeFileIn(t, dir, "a/a.go", "package a\n")
	gitIn(t, dir, "add", ".")
	gitIn(t, dir, "commit", "-q", "-m", "seed")
	writeFileIn(t, dir, "a/a.go", "package a // changed\n")

	patterns, ref, err := ChangedPackages(dir, "origin/main")
	if err != nil {
		t.Fatalf("ChangedPackages: %v", err)
	}
	if ref != "HEAD" {
		t.Errorf("resolved ref = %q, want HEAD fallback", ref)
	}
	if want := []string{"./a"}; !reflect.DeepEqual(patterns, want) {
		t.Errorf("patterns = %v, want %v", patterns, want)
	}
}

// A clean tree yields no patterns: the CLI prints a notice and exits 0
// without loading anything.
func TestChangedPackagesClean(t *testing.T) {
	dir := t.TempDir()
	gitIn(t, dir, "init", "-q", "-b", "main")
	writeFileIn(t, dir, "a/a.go", "package a\n")
	gitIn(t, dir, "add", ".")
	gitIn(t, dir, "commit", "-q", "-m", "seed")

	patterns, _, err := ChangedPackages(dir, "main")
	if err != nil {
		t.Fatalf("ChangedPackages: %v", err)
	}
	if len(patterns) != 0 {
		t.Errorf("patterns = %v, want none on a clean tree", patterns)
	}
}
