// Package lint is a stdlib-only static-analysis framework that enforces
// the simulator's determinism contract mechanically. Every result this
// reproduction reports rests on invariants that used to be held only by
// convention — virtual time never touches the wall clock, metrics never
// advance clocks, map iteration never leaks nondeterminism into
// byte-identity-pinned output, and the MPI tag protocols stay matched.
// The analyzers in this package encode those invariants over the typed
// ASTs of every package, so a violation fails CI instead of waiting for a
// reviewer to notice (PR 2's collective-traffic-in-the-wrong-bucket bug
// and PR 4's rendezvous-wait misattribution were both slips of exactly
// this kind).
//
// The framework loads packages with `go list -json`, type-checks them
// with go/types, runs a registry of analyzers, and emits deterministic
// (file, line, analyzer, message) diagnostics with optional JSON output
// and a checked-in baseline for triage. cmd/parblastlint is the CLI.
package lint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"
)

// Diagnostic is one finding. The quadruple (File, Line, Analyzer,
// Message) is the identity used for ordering, deduplication, and baseline
// matching; Col refines the position for display.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the canonical single-line form, which is also the
// baseline file format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// key is the baseline identity: everything except the column (column
// drift should not invalidate a triaged baseline entry).
func (d Diagnostic) key() string {
	return fmt.Sprintf("%s:%d:%s:%s", d.File, d.Line, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run receives every loaded package at
// once: most analyzers iterate per package, but cross-package checks
// (tagmatch) see the whole module.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(u *Unit)
}

// Unit is the context one analyzer runs in.
type Unit struct {
	Fset *token.FileSet
	Pkgs []*Package

	rel      func(string) string
	analyzer string
	diags    []Diagnostic
}

// Reportf records a diagnostic at pos.
func (u *Unit) Reportf(pos token.Pos, format string, args ...any) {
	position := u.Fset.Position(pos)
	u.diags = append(u.diags, Diagnostic{
		File:     u.rel(position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: u.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer registry in the order they run. The order
// does not affect output: diagnostics are sorted before they are returned.
func All() []*Analyzer {
	return []*Analyzer{
		WallclockAnalyzer,
		SeededRandAnalyzer,
		MapOrderAnalyzer,
		TagMatchAnalyzer,
		ClockNeutralAnalyzer,
		CollOrderAnalyzer,
		GoDiscAnalyzer,
		SidebandAnalyzer,
	}
}

// ByName resolves a comma-separated analyzer list ("wallclock,maporder").
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes the given analyzers over the packages and returns the
// deduplicated, deterministically ordered diagnostics.
func Run(l *Loader, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		u := &Unit{Fset: l.Fset, Pkgs: pkgs, rel: l.Rel, analyzer: a.Name}
		a.Run(u)
		diags = append(diags, u.diags...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	// Deduplicate: identical findings from overlapping package loads
	// (a package listed under two patterns) collapse to one record.
	out := diags[:0]
	var last Diagnostic
	for i, d := range diags {
		if i > 0 && d == last {
			continue
		}
		out = append(out, d)
		last = d
	}
	return out
}

// WriteJSON emits the diagnostics as an indented JSON array (stable field
// order, records pre-sorted by Run) with a trailing newline. An empty set
// encodes as [] rather than null.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}

// WriteText emits the canonical one-line-per-finding form.
func WriteText(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
	}
}

// Baseline is a set of triaged findings that do not fail the gate. The
// file format is the canonical diagnostic line form; blank lines and
// #-comments are ignored.
type Baseline struct {
	keys map[string]bool
}

// LoadBaseline reads a baseline file. A missing file is an empty baseline.
func LoadBaseline(path string) (*Baseline, error) {
	b := &Baseline{keys: make(map[string]bool)}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return b, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		d, err := parseDiagnosticLine(line)
		if err != nil {
			return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
		}
		b.keys[d.key()] = true
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	return b, nil
}

// parseDiagnosticLine inverts Diagnostic.String.
func parseDiagnosticLine(line string) (Diagnostic, error) {
	var d Diagnostic
	// file:line:col: analyzer: message — file may not contain ':' (the
	// tree's paths are plain relative paths).
	parts := strings.SplitN(line, ":", 5)
	if len(parts) != 5 {
		return d, fmt.Errorf("malformed line %q", line)
	}
	d.File = parts[0]
	if _, err := fmt.Sscanf(parts[1], "%d", &d.Line); err != nil {
		return d, fmt.Errorf("malformed line number in %q", line)
	}
	if _, err := fmt.Sscanf(parts[2], "%d", &d.Col); err != nil {
		return d, fmt.Errorf("malformed column in %q", line)
	}
	d.Analyzer = strings.TrimSpace(parts[3])
	d.Message = strings.TrimSpace(parts[4])
	return d, nil
}

// Filter splits diagnostics into baselined (already triaged) and fresh
// (gate-failing) findings.
func (b *Baseline) Filter(diags []Diagnostic) (fresh, baselined []Diagnostic) {
	for _, d := range diags {
		if b.keys[d.key()] {
			baselined = append(baselined, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	return fresh, baselined
}

// WriteBaseline writes the diagnostics in baseline file form.
func WriteBaseline(w io.Writer, diags []Diagnostic) error {
	fmt.Fprintln(w, "# parblastlint baseline: triaged findings that do not fail the gate.")
	fmt.Fprintln(w, "# Prefer fixing or //lint:-justifying findings over baselining them.")
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}
