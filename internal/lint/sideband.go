package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SidebandAnalyzer upgrades clockneutral's import-level rule to a
// value-level guarantee: trace context — the batch tag and send clock
// that ride *outside* every message payload (PR 8), and the FlowEvent
// records built from them — must never flow into payload bytes or into
// virtual-clock arithmetic. Either flow breaks a core determinism
// theorem: payload contamination makes traced and untraced runs produce
// different output bytes; clock contamination makes them produce
// different timings. Both would silently invalidate every byte-identity
// pin in the test suite the moment someone enables -trace-flows.
//
// Sources (field-sensitive, so the mpi core that legitimately carries
// sideband next to payload data stays clean): Rank.TraceBatch() results,
// any value of type mpi.FlowEvent, and reads of the mpi-internal
// sideband fields (batch, batches, sendAt, traceBatch). Taint flows
// through assignments, parameters, and returns via the shared engine in
// taint.go; struct writes are not tracked (DESIGN.md §17), so stamping
// sideband INTO a message literal is fine — reading it back out and
// handing it to an encoder is not.
//
// Sinks: the engine payload encoders (gob, WireQueries, QueryMetas, the
// engine.Writer primitives), the payload argument of mpi sends and
// collectives, and clock arithmetic (simtime.Clock.Advance/AdvanceTo and
// the Rank cost methods). Findings are reported only inside the runtime
// packages (mpi, engine, core, mpiblast, mpiio), scoped by package name
// like clockneutral so fixtures can exercise the analyzer.
var SidebandAnalyzer = &Analyzer{
	Name: "sideband",
	Doc: "trace-context sideband (TraceBatch, send clocks, FlowEvent) must never flow into " +
		"payload encoders or virtual-clock arithmetic: tracing cannot perturb bytes or time",
	Run: runSideband,
}

var sidebandPackages = map[string]bool{
	"mpi":      true,
	"engine":   true,
	"core":     true,
	"mpiblast": true,
	"mpiio":    true,
}

// sidebandFields are the mpi-internal field names that carry trace
// context alongside payload data.
var sidebandFields = map[string]bool{
	"batch":      true,
	"batches":    true,
	"sendAt":     true,
	"traceBatch": true,
}

// clockSinkArgs maps mpi.Rank methods that advance virtual time to the
// argument index of the cost/amount operand.
var clockSinkArgs = map[string]int{
	"Advance":    0,
	"Compute":    0,
	"FormatCost": 0,
	"MemCopy":    0,
	"IO":         1,
	"StartIO":    1,
}

// payloadSinkArgs maps mpi.Rank messaging methods to the index of their
// payload argument.
var payloadSinkArgs = map[string]int{
	"Send":       2,
	"Bcast":      1,
	"Gather":     1,
	"AllGather":  0,
	"ReduceMax":  0,
	"TreeReduce": 3,
	"TreeGather": 3,
	"TreeBcast":  3,
}

// encoderSinks are the engine payload-encoding entry points; every
// argument is a sink.
var encoderSinks = map[string]bool{
	"EncodeGob":         true,
	"EncodeWireQueries": true,
	"EncodeQueryMetas":  true,
}

// writerSinks are the engine.Writer primitives that emit payload bytes.
var writerSinks = map[string]bool{
	"Int":    true,
	"Uint":   true,
	"Float":  true,
	"String": true,
	"Blob":   true,
	"Bytes":  true,
}

func runSideband(u *Unit) {
	prog := BuildProgram(u)
	taint := RunTaint(prog, TaintSpec{ExprSource: traceSource})
	s := &sidebandChecker{u: u, taint: taint}
	for _, fi := range prog.Funcs {
		if !sidebandPackages[fi.Pkg.Types.Name()] {
			continue
		}
		s.checkFunc(fi)
	}
}

// traceSource marks the taint origins of trace context.
func traceSource(p *Package, e ast.Expr) bool {
	if isFlowEventType(p.Info, e) {
		return true
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			pkgPath, name := methodPkgPath(p.Info, sel)
			return name == "TraceBatch" && hasPathSuffix(pkgPath, "internal/mpi")
		}
	case *ast.SelectorExpr:
		if f := fieldObj(p.Info, e); f != nil && f.Pkg() != nil {
			return sidebandFields[f.Name()] && hasPathSuffix(f.Pkg().Path(), "internal/mpi")
		}
	}
	return false
}

// isFlowEventType reports whether the expression's static type is
// mpi.FlowEvent (possibly behind a pointer or slice).
func isFlowEventType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "FlowEvent" && obj.Pkg() != nil && hasPathSuffix(obj.Pkg().Path(), "internal/mpi")
}

type sidebandChecker struct {
	u     *Unit
	taint *Taint
}

func (s *sidebandChecker) checkFunc(fi *FuncInfo) {
	p := fi.Pkg
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literal bodies are their own FuncInfos
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath, name := methodPkgPath(p.Info, sel)
		switch {
		case hasPathSuffix(pkgPath, "internal/simtime") && (name == "Advance" || name == "AdvanceTo"):
			s.checkArgs(fi, call, call.Args,
				"virtual-clock arithmetic simtime.%s: tracing must never perturb virtual time", name)
		case hasPathSuffix(pkgPath, "internal/mpi"):
			if idx, ok := clockSinkArgs[name]; ok && idx < len(call.Args) {
				s.checkArgs(fi, call, call.Args[idx:idx+1],
					"virtual-time cost mpi.%s: tracing must never perturb virtual time", name)
			}
			if idx, ok := payloadSinkArgs[name]; ok && idx < len(call.Args) {
				s.checkArgs(fi, call, call.Args[idx:idx+1],
					"the payload of mpi.%s: sideband must ride outside message data", name)
			}
		case hasPathSuffix(pkgPath, "internal/engine") && (encoderSinks[name] || writerSinks[name]):
			s.checkArgs(fi, call, call.Args,
				"payload encoder engine.%s: traced and untraced runs would emit different bytes", name)
		case pkgPath == "encoding/gob" && (name == "Encode" || name == "EncodeValue"):
			s.checkArgs(fi, call, call.Args,
				"payload encoder gob.%s: traced and untraced runs would emit different bytes", name)
		}
		return true
	})
}

func (s *sidebandChecker) checkArgs(fi *FuncInfo, call *ast.CallExpr, args []ast.Expr, format, name string) {
	for _, a := range args {
		if !s.taint.Tainted(fi.Pkg, a) {
			continue
		}
		if s.justified(fi, a.Pos()) || s.justified(fi, call.Pos()) {
			continue
		}
		s.u.Reportf(a.Pos(),
			"trace-context sideband flows into "+format+" (or justify with //lint:sideband)", name)
	}
}

func (s *sidebandChecker) justified(fi *FuncInfo, pos token.Pos) bool {
	text, ok := fi.Pkg.Directive(s.u.Fset, pos)
	if !ok || !strings.HasPrefix(text, "sideband") {
		return false
	}
	if strings.TrimSpace(strings.TrimPrefix(text, "sideband")) == "" {
		s.u.Reportf(pos, "//lint:sideband needs a justification: say why this flow cannot change payload bytes or virtual time")
	}
	return true
}
