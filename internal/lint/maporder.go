package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// MapOrderAnalyzer enforces the third determinism invariant: Go's map
// iteration order is randomized per run, so a `range` over a map may not
// feed anything order-sensitive — message sends, output writes,
// serialization, or appends to a slice that escapes the loop — unless the
// result is sorted afterwards or the site carries a //lint:sorted
// justification. This is the invariant behind every byte-identity pin in
// the tree: one unsorted map walk ahead of a Send or a Write and two runs
// of the same seed produce different bytes.
//
// Recognized-safe shapes:
//   - bodies that only read (max/sum/count) or write into another map;
//   - the collect-then-sort idiom: appends into a slice that is later
//     passed to sort.* / slices.Sort* in the same function;
//   - sites annotated //lint:sorted <reason> (the reason is required —
//     a bare annotation is itself a finding).
var MapOrderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc: "flag range over maps whose body sends, writes output, serializes, " +
		"or appends to an escaping slice without a later sort or a //lint:sorted justification",
	Run: func(u *Unit) {
		for _, p := range u.Pkgs {
			for _, f := range p.Files {
				for _, decl := range f.Decls {
					fn, ok := decl.(*ast.FuncDecl)
					if !ok || fn.Body == nil {
						continue
					}
					checkMapRanges(u, p, fn)
				}
			}
		}
	},
}

func checkMapRanges(u *Unit, p *Package, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv := p.Info.Types[rs.X]
		if tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if text, justified := p.Directive(u.Fset, rs.Pos()); justified && strings.HasPrefix(text, "sorted") {
			if strings.TrimSpace(strings.TrimPrefix(text, "sorted")) == "" {
				u.Reportf(rs.Pos(), "//lint:sorted needs a justification: say why this map iteration order cannot leak into output")
			}
			return true
		}
		checkMapRangeBody(u, p, fn, rs)
		return true
	})
}

// orderSensitiveCall classifies a call inside a map-range body. The
// returned description is empty for order-insensitive calls.
func orderSensitiveCall(p *Package, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if pkgName, ok := selectorFromPkg(p.Info, fun, "fmt"); ok {
			if strings.HasPrefix(pkgName, "Print") || strings.HasPrefix(pkgName, "Fprint") {
				return fmt.Sprintf("writes output via fmt.%s", pkgName)
			}
			return ""
		}
		switch {
		case name == "Send":
			return "sends a message"
		case strings.HasPrefix(name, "Write"):
			return fmt.Sprintf("writes output via %s", name)
		case strings.HasPrefix(name, "Encode") || strings.HasPrefix(name, "Marshal"):
			return fmt.Sprintf("feeds serialization via %s", name)
		case isCodecWriterMethod(p, fun):
			return fmt.Sprintf("feeds the wire codec via Writer.%s", name)
		}
	case *ast.Ident:
		if strings.HasPrefix(fun.Name, "Encode") || strings.HasPrefix(fun.Name, "Marshal") {
			return fmt.Sprintf("feeds serialization via %s", fun.Name)
		}
	}
	return ""
}

// codecWriterMethods are the appenders of the engine package's
// hand-rolled wire codec: field order IS the wire format, so feeding them
// from a map walk serializes in randomized order.
var codecWriterMethods = map[string]bool{
	"Int": true, "Uint": true, "Float": true, "String": true, "Blob": true,
}

// isCodecWriterMethod reports whether sel calls a method of the engine
// codec's Writer type.
func isCodecWriterMethod(p *Package, sel *ast.SelectorExpr) bool {
	if !codecWriterMethods[sel.Sel.Name] {
		return false
	}
	s, ok := p.Info.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Writer" && hasPathSuffix(named.Obj().Pkg().Path(), "internal/engine")
}

func checkMapRangeBody(u *Unit, p *Package, fn *ast.FuncDecl, rs *ast.RangeStmt) {
	type escapingAppend struct {
		expr string // printed form of the append target, for sort matching
		pos  ast.Node
	}
	var appends []escapingAppend
	reported := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			u.Reportf(rs.Pos(), "range over %s iterates a map in randomized order and its body sends on a channel: sort the keys first or justify with //lint:sorted",
				types.ExprString(rs.X))
			reported = true
			return false
		case *ast.CallExpr:
			if desc := orderSensitiveCall(p, n); desc != "" {
				u.Reportf(rs.Pos(), "range over %s iterates a map in randomized order and its body %s: sort the keys first or justify with //lint:sorted",
					types.ExprString(rs.X), desc)
				reported = true
				return false
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					if target, escapes := escapesRange(p, n.Args[0], rs); escapes {
						appends = append(appends, escapingAppend{expr: target, pos: n})
					}
				}
			}
		}
		return true
	})
	if reported {
		return
	}
	for _, a := range appends {
		if sortedAfter(p, fn, rs, a.expr) {
			continue
		}
		u.Reportf(rs.Pos(), "range over %s appends to %s, which escapes the loop in map-iteration order and is never sorted afterwards: sort it or justify with //lint:sorted",
			types.ExprString(rs.X), a.expr)
	}
}

// escapesRange reports whether an append target's base variable is
// declared outside the range statement (so the slice carries the map's
// iteration order out of the loop), returning the target's printed form.
func escapesRange(p *Package, target ast.Expr, rs *ast.RangeStmt) (string, bool) {
	base := target
	for {
		switch e := base.(type) {
		case *ast.ParenExpr:
			base = e.X
		case *ast.SelectorExpr:
			base = e.X
		case *ast.IndexExpr:
			base = e.X
		case *ast.StarExpr:
			base = e.X
		case *ast.Ident:
			obj := p.Info.Uses[e]
			if obj == nil {
				obj = p.Info.Defs[e]
			}
			if obj == nil {
				return "", false
			}
			if obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
				return "", false // declared inside the loop: order stays local
			}
			return types.ExprString(target), true
		default:
			return "", false
		}
	}
}

// sortFuncs are the qualified functions that establish a deterministic
// order over their first argument.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether, after the range statement, the enclosing
// function passes exprStr to a recognized sort function — the
// collect-then-sort idiom.
func sortedAfter(p *Package, fn *ast.FuncDecl, rs *ast.RangeStmt, exprStr string) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pn := pkgNameOf(p.Info, sel.X)
		if pn == nil {
			return true
		}
		names := sortFuncs[pn.Imported().Path()]
		if names == nil || !names[sel.Sel.Name] {
			return true
		}
		if types.ExprString(call.Args[0]) == exprStr {
			found = true
			return false
		}
		return true
	})
	return found
}
