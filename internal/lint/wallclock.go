package lint

import (
	"go/ast"
)

// wallclockForbidden are the package-level time functions that read or
// wait on the wall clock. Referencing any of them (call or function
// value) in non-test code breaks the simulation's reproducibility: all
// time in the simulator is virtual, owned by internal/simtime, and a
// single wall-clock read would make two runs of the same seed diverge.
// Formatting-only helpers (time.Duration arithmetic, time.Unix, layout
// constants) are deliberately allowed.
var wallclockForbidden = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "waits on the wall clock",
	"After":     "waits on the wall clock",
	"AfterFunc": "schedules on the wall clock",
	"Tick":      "ticks on the wall clock",
	"NewTicker": "ticks on the wall clock",
	"NewTimer":  "schedules on the wall clock",
}

// WallclockAnalyzer enforces the first determinism invariant: virtual
// time never touches the wall clock. Test files are exempt (the loader
// never feeds them), because tests legitimately time themselves.
var WallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Since/Sleep/After/Ticker outside _test.go; " +
		"virtual time comes from internal/simtime only",
	Run: func(u *Unit) {
		for _, p := range u.Pkgs {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					name, fromTime := selectorFromPkg(p.Info, sel, "time")
					if !fromTime {
						return true
					}
					why, forbidden := wallclockForbidden[name]
					if !forbidden {
						return true
					}
					u.Reportf(sel.Pos(),
						"time.%s %s: simulated code must take time from a simtime.Clock, never the host",
						name, why)
					return true
				})
			}
		}
	},
}
