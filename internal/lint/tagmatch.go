package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// TagMatchAnalyzer enforces the protocol-discipline invariant: every MPI
// message tag is a compile-time constant, every tag that is sent is
// received somewhere in the module, and every tag that is received is
// sent. A one-sided tag is a protocol that can deadlock or a message that
// silently rots in an inbox; a non-constant tag is a protocol the checker
// (and the reviewer) cannot reason about. PR 2's collective-traffic
// bucket bug and PR 4's rendezvous-wait misattribution were both slips in
// exactly this tag/protocol discipline.
//
// Helper functions that forward a tag parameter into a send/receive
// (recvShuffle(src, tag), recvWorker(w, tag)) are resolved at their call
// sites, transitively, so wrapping a receive in a fault-tolerance loop
// does not demand an annotation. A call whose tag is neither a constant
// nor a forwarded parameter is reported, unless it carries a
// //lint:tagmatch <reason> justification.

const (
	dirSend = 1 << iota
	dirRecv
)

// mpiTagCalls maps the mpi.Rank methods that carry a tag to the argument
// index of the tag and the call's direction.
var mpiTagCalls = map[string]struct {
	argIndex int
	dir      int
}{
	"Send":        {1, dirSend},
	"Recv":        {1, dirRecv},
	"RecvTimeout": {1, dirRecv},
	"TryRecv":     {1, dirRecv},
}

// anyTag mirrors mpi.AnyTag: a wildcard receive that matches every tag
// sent within its package's protocol.
const anyTag = -1

// tagEntity is one function-like scope a call site can live in: a
// declared function/method, or a function literal bound to a variable
// (recvWorker := func(...)). obj is nil for anonymous literals.
type tagEntity struct {
	obj types.Object
	sig *types.Signature
}

// tagCallSite is one CallExpr with its enclosing function stack
// (innermost last) and owning package.
type tagCallSite struct {
	pkg       *Package
	call      *ast.CallExpr
	enclosing []tagEntity
}

// tagOccurrence is one resolved constant-tag use.
type tagOccurrence struct {
	pkg *Package
	pos ast.Node
	dir int
}

var TagMatchAnalyzer = &Analyzer{
	Name: "tagmatch",
	Doc: "collect every mpi Send/Recv tag constant across the module and report " +
		"tags sent but never received, received but never sent, or passed as non-constant expressions",
	Run: runTagMatch,
}

func runTagMatch(u *Unit) {
	var sites []tagCallSite
	for _, p := range u.Pkgs {
		for _, f := range p.Files {
			sites = append(sites, collectCallSites(p, f)...)
		}
	}

	// Fixpoint: discover which function parameters forward into a tag
	// position, one wrapping level at a time.
	forwarders := make(map[types.Object]map[int]int) // func/var object → param index → dirs
	for changed := true; changed; {
		changed = false
		for _, s := range sites {
			for _, use := range tagUsesAt(s, forwarders) {
				if ent, idx, ok := paramOf(s, use.arg); ok && ent.obj != nil {
					if forwarders[ent.obj] == nil {
						forwarders[ent.obj] = make(map[int]int)
					}
					if forwarders[ent.obj][idx]&use.dir != use.dir {
						forwarders[ent.obj][idx] |= use.dir
						changed = true
					}
				}
			}
		}
	}

	// Final pass: record constant occurrences and report unresolvable tags.
	sends := make(map[int64][]tagOccurrence)
	recvs := make(map[int64][]tagOccurrence)
	wildcardPkgs := make(map[*Package]bool)
	for _, s := range sites {
		for _, use := range tagUsesAt(s, forwarders) {
			if v, ok := constInt(s.pkg.Info, use.arg); ok {
				occ := tagOccurrence{pkg: s.pkg, pos: use.arg, dir: use.dir}
				if use.dir&dirRecv != 0 {
					if v == anyTag {
						wildcardPkgs[s.pkg] = true
					} else {
						recvs[v] = append(recvs[v], occ)
					}
				}
				if use.dir&dirSend != 0 && v != anyTag {
					sends[v] = append(sends[v], occ)
				}
				continue
			}
			if _, _, isParam := paramOf(s, use.arg); isParam {
				continue // resolved at this helper's own call sites
			}
			if text, ok := s.pkg.Directive(u.Fset, use.arg.Pos()); ok && strings.HasPrefix(text, "tagmatch") {
				continue
			}
			u.Reportf(use.arg.Pos(),
				"message tag %s is not a constant: tag protocols must be statically matchable (use a named tag constant, or forward a tag parameter)",
				types.ExprString(use.arg))
		}
	}

	for v, occs := range sends {
		if len(recvs[v]) > 0 {
			continue
		}
		for _, occ := range occs {
			if wildcardPkgs[occ.pkg] {
				continue // an AnyTag receive in this protocol covers it
			}
			u.Reportf(occ.pos.Pos(), "tag %d is sent here but never received anywhere in the module", v)
		}
	}
	for v, occs := range recvs {
		if len(sends[v]) > 0 {
			continue
		}
		for _, occ := range occs {
			u.Reportf(occ.pos.Pos(), "tag %d is received here but never sent anywhere in the module", v)
		}
	}
}

// collectCallSites walks one file recording every CallExpr together with
// its stack of enclosing function entities.
func collectCallSites(p *Package, f *ast.File) []tagCallSite {
	// Bind function literals to the variables they are assigned to, so
	// recvWorker := func(w, tag int) {...} is addressable as a forwarder.
	litObj := make(map[*ast.FuncLit]types.Object)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				lit, ok := rhs.(*ast.FuncLit)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if obj := p.Info.Defs[id]; obj != nil {
						litObj[lit] = obj
					} else if obj := p.Info.Uses[id]; obj != nil {
						litObj[lit] = obj
					}
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range n.Values {
				lit, ok := rhs.(*ast.FuncLit)
				if !ok || i >= len(n.Names) {
					continue
				}
				if obj := p.Info.Defs[n.Names[i]]; obj != nil {
					litObj[lit] = obj
				}
			}
		}
		return true
	})

	var sites []tagCallSite
	var stack []tagEntity
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case *ast.FuncDecl:
			var ent tagEntity
			if obj := p.Info.Defs[n.Name]; obj != nil {
				ent = tagEntity{obj: obj, sig: obj.Type().(*types.Signature)}
			}
			stack = append(stack, ent)
			if n.Body != nil {
				walk(n.Body)
			}
			stack = stack[:len(stack)-1]
			return
		case *ast.FuncLit:
			ent := tagEntity{obj: litObj[n]}
			if tv, ok := p.Info.Types[n]; ok {
				ent.sig, _ = tv.Type.(*types.Signature)
			}
			stack = append(stack, ent)
			walk(n.Body)
			stack = stack[:len(stack)-1]
			return
		case *ast.CallExpr:
			sites = append(sites, tagCallSite{
				pkg:       p,
				call:      n,
				enclosing: append([]tagEntity(nil), stack...),
			})
		}
		if n != nil {
			ast.Inspect(n, func(c ast.Node) bool {
				if c == n {
					return true
				}
				switch c.(type) {
				case *ast.FuncDecl, *ast.FuncLit, *ast.CallExpr:
					walk(c)
					return false
				}
				return true
			})
		}
	}
	walk(f)
	return sites
}

// tagUse is one argument of a call that lands in a tag position.
type tagUse struct {
	arg ast.Expr
	dir int
}

// tagUsesAt returns the tag-position arguments of a call: the tag of a
// direct mpi.Rank send/receive, or the forwarded parameters of a known
// helper.
func tagUsesAt(s tagCallSite, forwarders map[types.Object]map[int]int) []tagUse {
	var uses []tagUse
	switch fun := s.call.Fun.(type) {
	case *ast.SelectorExpr:
		pkgPath, name := methodPkgPath(s.pkg.Info, fun)
		if m, ok := mpiTagCalls[name]; ok && hasPathSuffix(pkgPath, "internal/mpi") {
			if m.argIndex < len(s.call.Args) {
				uses = append(uses, tagUse{arg: s.call.Args[m.argIndex], dir: m.dir})
			}
			return uses
		}
		if obj, ok := s.pkg.Info.Uses[fun.Sel]; ok {
			uses = append(uses, forwardedUses(s.call, forwarders[obj])...)
		}
	case *ast.Ident:
		if obj, ok := s.pkg.Info.Uses[fun]; ok {
			uses = append(uses, forwardedUses(s.call, forwarders[obj])...)
		}
	}
	return uses
}

func forwardedUses(call *ast.CallExpr, params map[int]int) []tagUse {
	var idxs []int
	for idx := range params {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	var uses []tagUse
	for _, idx := range idxs {
		if idx < len(call.Args) {
			uses = append(uses, tagUse{arg: call.Args[idx], dir: params[idx]})
		}
	}
	return uses
}

// paramOf reports whether arg is a plain reference to a parameter of one
// of the call's enclosing functions, returning that entity and the
// parameter index (innermost scope wins).
func paramOf(s tagCallSite, arg ast.Expr) (tagEntity, int, bool) {
	id, ok := arg.(*ast.Ident)
	if !ok {
		return tagEntity{}, 0, false
	}
	obj, ok := s.pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return tagEntity{}, 0, false
	}
	for i := len(s.enclosing) - 1; i >= 0; i-- {
		ent := s.enclosing[i]
		if ent.sig == nil {
			continue
		}
		for j := 0; j < ent.sig.Params().Len(); j++ {
			if ent.sig.Params().At(j) == obj {
				return ent, j, true
			}
		}
	}
	return tagEntity{}, 0, false
}
