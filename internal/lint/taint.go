package lint

import (
	"go/ast"
	"go/types"
)

// A taint analysis parameterized by its source predicate, shared by
// collorder (values derived from the rank identity) and sideband (values
// derived from trace context). The engine is interprocedural and
// context-insensitive: a module-wide fixpoint propagates taint through
// assignments, range bindings, call arguments into parameters, and
// tainted returns back into call results. Variables are identified by
// their types.Object, which is unique module-wide, so captured closure
// variables and cross-package flows need no special casing.
//
// Deliberate soundness limits (documented in DESIGN.md §17): writes
// through struct fields, slices, and maps are not tracked as definitions
// (reading a source *field* can itself be a source, which is how sideband
// models trace context), and taint does not flow through interfaces or
// function values.

// TaintSpec configures one analysis.
type TaintSpec struct {
	// ExprSource reports whether e is a taint source by itself
	// (independent of its operands): a call like r.ID(), a selector of a
	// trace-context field, a value of a trace-context type.
	ExprSource func(p *Package, e ast.Expr) bool
}

// Taint is the fixpoint result.
type Taint struct {
	prog *Program
	spec TaintSpec
	vars map[types.Object]bool // tainted variables (incl. parameters)
	// rets records, per function, which result positions carry taint.
	// Tracking positions separately matters: `res, err := runMaster(r)`
	// must not taint err just because res carries rank-derived data —
	// otherwise every later `if err != nil` would look rank-dependent.
	rets map[*FuncInfo][]bool
}

// RunTaint computes the module-wide fixpoint over the program.
func RunTaint(prog *Program, spec TaintSpec) *Taint {
	t := &Taint{
		prog: prog,
		spec: spec,
		vars: make(map[types.Object]bool),
		rets: make(map[*FuncInfo][]bool),
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range prog.Funcs {
			if t.propagate(fi) {
				changed = true
			}
		}
	}
	return t
}

// Tainted reports whether an expression carries taint under the current
// fixpoint.
func (t *Taint) Tainted(p *Package, e ast.Expr) bool {
	if e == nil {
		return false
	}
	if t.spec.ExprSource(p, e) {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := p.Info.Uses[e]; obj != nil {
			return t.vars[obj]
		}
	case *ast.ParenExpr:
		return t.Tainted(p, e.X)
	case *ast.UnaryExpr:
		return t.Tainted(p, e.X)
	case *ast.StarExpr:
		return t.Tainted(p, e.X)
	case *ast.BinaryExpr:
		return t.Tainted(p, e.X) || t.Tainted(p, e.Y)
	case *ast.SelectorExpr:
		// A selector on a tainted value is tainted (ev.RecvAt when ev
		// is); selecting an untainted field of an untainted struct is not.
		return t.Tainted(p, e.X)
	case *ast.IndexExpr:
		return t.Tainted(p, e.X) || t.Tainted(p, e.Index)
	case *ast.SliceExpr:
		return t.Tainted(p, e.X)
	case *ast.TypeAssertExpr:
		return t.Tainted(p, e.X)
	case *ast.CallExpr:
		return t.callTainted(p, e)
	}
	return false
}

// callTainted handles call-expression taint: tainted results of known
// callees, conversions of tainted operands, and the pass-through
// builtins.
func (t *Taint) callTainted(p *Package, call *ast.CallExpr) bool {
	if isConversion(p, call) {
		for _, a := range call.Args {
			if t.Tainted(p, a) {
				return true
			}
		}
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "min", "max", "append", "copy":
				for _, a := range call.Args {
					if t.Tainted(p, a) {
						return true
					}
				}
			}
			return false
		}
	}
	if fi := t.prog.Callee(p, call); fi != nil {
		return t.retTainted(fi, 0)
	}
	return false
}

// retTainted reports whether a function's i-th result carries taint.
func (t *Taint) retTainted(fi *FuncInfo, i int) bool {
	r := t.rets[fi]
	return i < len(r) && r[i]
}

// markRet taints one result position, growing the record on demand.
func (t *Taint) markRet(fi *FuncInfo, i, n int) bool {
	r := t.rets[fi]
	if len(r) < n {
		grown := make([]bool, n)
		copy(grown, r)
		r = grown
		t.rets[fi] = r
	}
	if i >= len(r) || r[i] {
		return false
	}
	r[i] = true
	return true
}

// propagate runs one pass over a function body, returning whether any new
// fact was learned.
func (t *Taint) propagate(fi *FuncInfo) bool {
	p := fi.Pkg
	changed := false
	taintVar := func(obj types.Object) {
		if obj != nil && !t.vars[obj] {
			t.vars[obj] = true
			changed = true
		}
	}
	defObj := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := p.Info.Defs[id]; obj != nil {
			return obj
		}
		return p.Info.Uses[id]
	}
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					if t.Tainted(p, rhs) {
						taintVar(defObj(n.Lhs[i]))
					}
				}
			} else if len(n.Rhs) == 1 {
				rhs := ast.Unparen(n.Rhs[0])
				if call, ok := rhs.(*ast.CallExpr); ok {
					// res, err := f(): taint each binding from its own
					// result position, so a rank-carrying result does not
					// smear taint onto the error binding beside it.
					if callee := t.prog.Callee(p, call); callee != nil {
						for i, lhs := range n.Lhs {
							if t.retTainted(callee, i) {
								taintVar(defObj(lhs))
							}
						}
					}
				} else if t.Tainted(p, rhs) {
					// v, ok := m[k] / x.(T) / <-ch: both bindings depend on
					// the tainted operand (branching on ok is branching on
					// the tainted key).
					for _, lhs := range n.Lhs {
						taintVar(defObj(lhs))
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				if !t.Tainted(p, v) {
					continue
				}
				if len(n.Values) == len(n.Names) {
					taintVar(p.Info.Defs[n.Names[i]])
				} else {
					for _, name := range n.Names {
						taintVar(p.Info.Defs[name])
					}
				}
			}
		case *ast.RangeStmt:
			if t.Tainted(p, n.X) {
				taintVar(defObj(n.Key))
				taintVar(defObj(n.Value))
			}
		case *ast.CallExpr:
			callee := t.prog.Callee(p, n)
			if callee == nil || callee.Sig == nil {
				return true
			}
			params := callee.Sig.Params()
			for i, a := range n.Args {
				if i < params.Len() && t.Tainted(p, a) {
					taintVar(params.At(i))
				}
			}
			// Deliberately no receiver-taint rule: taining a method's
			// receiver parameter from one call site would poison every
			// other call of that method module-wide (context
			// insensitivity), turning e.g. every error guard after a
			// Rank method into a "rank-dependent" branch.
		case *ast.ReturnStmt:
			if fi.Sig == nil {
				return true
			}
			nres := fi.Sig.Results().Len()
			if len(n.Results) == 0 {
				// Bare return with named results.
				for i := 0; i < nres; i++ {
					if t.vars[fi.Sig.Results().At(i)] && t.markRet(fi, i, nres) {
						changed = true
					}
				}
				return true
			}
			if len(n.Results) == 1 && nres > 1 {
				// return f() forwarding a multi-result call.
				if call, ok := ast.Unparen(n.Results[0]).(*ast.CallExpr); ok {
					if callee := t.prog.Callee(p, call); callee != nil {
						for i := 0; i < nres; i++ {
							if t.retTainted(callee, i) && t.markRet(fi, i, nres) {
								changed = true
							}
						}
					}
				}
				return true
			}
			for i, r := range n.Results {
				if t.Tainted(p, r) && t.markRet(fi, i, nres) {
					changed = true
				}
			}
		case *ast.FuncLit:
			// Literal bodies are separate FuncInfos; don't double-visit.
			return false
		}
		return true
	})
	return changed
}
