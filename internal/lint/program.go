package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the interprocedural layer shared by the structural
// analyzers (collorder, godisc, sideband): a module-wide call graph over
// every declared function, method, and variable-bound function literal,
// with a per-function control-flow summary that preserves exactly the
// structure those analyzers reason about — branches, loops, switches,
// go/defer statements, channel operations, returns, and the call sites
// hoisted out of expressions. Everything below the summary (arithmetic,
// plain data flow) is deliberately erased; the taint engine in taint.go
// recovers value-level facts on demand.

// Program is the module-wide analysis view built from a Unit's packages.
type Program struct {
	Fset *token.FileSet
	// Funcs lists every summarized function in deterministic (file
	// position) order: declared functions and methods first, then
	// anonymous literals, per package in load order.
	Funcs []*FuncInfo
	// ByObj resolves a function or bound-literal object to its info.
	ByObj map[types.Object]*FuncInfo
	// ByLit resolves any function literal (bound or anonymous).
	ByLit map[*ast.FuncLit]*FuncInfo
}

// FuncInfo is one function-like body under analysis.
type FuncInfo struct {
	Pkg *Package
	// Obj is the declared function/method object, or the variable object
	// a literal is bound to (recvWorker := func(...)); nil for anonymous
	// literals.
	Obj  types.Object
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	Sig  *types.Signature
	Body *ast.BlockStmt
	// Summary is the control-flow summary of Body (a NodeSeq).
	Summary *Node
}

// Name returns a human-readable identifier for diagnostics.
func (fi *FuncInfo) Name() string {
	if fi.Obj != nil {
		return fi.Obj.Name()
	}
	return "func literal"
}

// NodeKind discriminates summary nodes.
type NodeKind int

const (
	NodeSeq    NodeKind = iota // Kids in order
	NodeIf                     // Cond, Then, Else (Else may be nil)
	NodeLoop                   // Body; Stmt is *ast.ForStmt or *ast.RangeStmt
	NodeSwitch                 // Cases (each a NodeSeq); HasDefault
	NodeSelect                 // Cases
	NodeGo                     // Call; GoBody when the callee is a literal
	NodeDefer                  // Call
	NodeCall                   // Call: one call site, hoisted in source order
	NodeReturn                 // Results
	NodeSend                   // Stmt is *ast.SendStmt
	NodeRecv                   // Recv: a channel receive, hoisted like a call
	NodeBranch                 // Tok: BREAK / CONTINUE / GOTO / FALLTHROUGH
	NodePanic                  // call to the panic builtin
)

// Node is one control-flow summary node. Field use depends on Kind; see
// the NodeKind constants.
type Node struct {
	Kind NodeKind
	Pos  token.Pos

	Kids       []*Node  // Seq, and hoisted condition calls for structured nodes
	Cond       ast.Expr // If cond, Switch tag (may be nil)
	Then, Else *Node    // If
	Body       *Node    // Loop
	Cases      []*Node  // Switch/Select case bodies, in source order
	CaseConds  []ast.Expr
	HasDefault bool
	Call       *ast.CallExpr  // Go, Defer, Call, Panic
	GoBody     *Node          // Go: summary of a literal goroutine body
	Stmt       ast.Stmt       // Loop (for/range), Send
	Recv       *ast.UnaryExpr // Recv: the <-ch expression
	Results    []ast.Expr     // Return
	Tok        token.Token    // Branch
}

// BuildProgram summarizes every function in the unit's packages and links
// the call graph.
func BuildProgram(u *Unit) *Program {
	prog := &Program{
		Fset:  u.Fset,
		ByObj: make(map[types.Object]*FuncInfo),
		ByLit: make(map[*ast.FuncLit]*FuncInfo),
	}
	for _, p := range u.Pkgs {
		for _, f := range p.Files {
			prog.addFile(p, f)
		}
	}
	return prog
}

// addFile summarizes the declared functions of one file, plus every
// function literal (bound literals become addressable call-graph nodes,
// anonymous ones are still summarized so go statements can see their
// bodies).
func (prog *Program) addFile(p *Package, f *ast.File) {
	litObjs := boundLiterals(p, f)
	// Literals are collected during the declaration walk so each literal's
	// summary exists exactly once and nested literals attach to their own
	// FuncInfo, not their parent's.
	var addLits func(n ast.Node)
	addLits = func(n ast.Node) {
		ast.Inspect(n, func(c ast.Node) bool {
			lit, ok := c.(*ast.FuncLit)
			if !ok {
				return true
			}
			fi := &FuncInfo{Pkg: p, Obj: litObjs[lit], Lit: lit, Body: lit.Body}
			if tv, ok := p.Info.Types[lit]; ok {
				fi.Sig, _ = tv.Type.(*types.Signature)
			}
			fi.Summary = prog.summarizeBlock(p, lit.Body)
			prog.Funcs = append(prog.Funcs, fi)
			prog.ByLit[lit] = fi
			if fi.Obj != nil {
				prog.ByObj[fi.Obj] = fi
			}
			addLits(lit.Body)
			return false
		})
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fi := &FuncInfo{Pkg: p, Decl: fd, Body: fd.Body}
		if obj := p.Info.Defs[fd.Name]; obj != nil {
			fi.Obj = obj
			fi.Sig, _ = obj.Type().(*types.Signature)
			prog.ByObj[obj] = fi
		}
		fi.Summary = prog.summarizeBlock(p, fd.Body)
		prog.Funcs = append(prog.Funcs, fi)
		addLits(fd.Body)
	}
}

// boundLiterals maps each function literal assigned to a variable or
// declared value to that variable's object, mirroring tagmatch's closure
// binding so `recvWorker := func(...)` participates in the call graph.
func boundLiterals(p *Package, f *ast.File) map[*ast.FuncLit]types.Object {
	litObj := make(map[*ast.FuncLit]types.Object)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				lit, ok := rhs.(*ast.FuncLit)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if obj := p.Info.Defs[id]; obj != nil {
						litObj[lit] = obj
					} else if obj := p.Info.Uses[id]; obj != nil {
						litObj[lit] = obj
					}
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range n.Values {
				lit, ok := rhs.(*ast.FuncLit)
				if !ok || i >= len(n.Names) {
					continue
				}
				if obj := p.Info.Defs[n.Names[i]]; obj != nil {
					litObj[lit] = obj
				}
			}
		}
		return true
	})
	return litObj
}

// summarizeBlock turns a statement block into a NodeSeq.
func (prog *Program) summarizeBlock(p *Package, b *ast.BlockStmt) *Node {
	seq := &Node{Kind: NodeSeq}
	if b == nil {
		return seq
	}
	seq.Pos = b.Pos()
	for _, s := range b.List {
		prog.summarizeStmt(p, s, seq)
	}
	return seq
}

// summarizeStmt appends the summary of one statement to seq. Calls
// embedded in expressions are hoisted as NodeCall kids in source order
// before the structural node they feed.
func (prog *Program) summarizeStmt(p *Package, s ast.Stmt, seq *Node) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		sub := prog.summarizeBlock(p, s)
		seq.Kids = append(seq.Kids, sub.Kids...)
	case *ast.IfStmt:
		if s.Init != nil {
			prog.summarizeStmt(p, s.Init, seq)
		}
		prog.hoistCalls(p, s.Cond, seq)
		n := &Node{Kind: NodeIf, Pos: s.Pos(), Cond: s.Cond}
		n.Then = prog.summarizeBlock(p, s.Body)
		if s.Else != nil {
			elseSeq := &Node{Kind: NodeSeq, Pos: s.Else.Pos()}
			prog.summarizeStmt(p, s.Else, elseSeq)
			n.Else = elseSeq
		}
		seq.Kids = append(seq.Kids, n)
	case *ast.ForStmt:
		if s.Init != nil {
			prog.summarizeStmt(p, s.Init, seq)
		}
		n := &Node{Kind: NodeLoop, Pos: s.Pos(), Stmt: s, Cond: s.Cond}
		body := &Node{Kind: NodeSeq, Pos: s.Body.Pos()}
		// Condition and post-statement calls run per iteration: they
		// belong to the loop body, not the enclosing sequence.
		prog.hoistCalls(p, s.Cond, body)
		inner := prog.summarizeBlock(p, s.Body)
		body.Kids = append(body.Kids, inner.Kids...)
		if s.Post != nil {
			prog.summarizeStmt(p, s.Post, body)
		}
		n.Body = body
		seq.Kids = append(seq.Kids, n)
	case *ast.RangeStmt:
		prog.hoistCalls(p, s.X, seq)
		n := &Node{Kind: NodeLoop, Pos: s.Pos(), Stmt: s}
		n.Body = prog.summarizeBlock(p, s.Body)
		seq.Kids = append(seq.Kids, n)
	case *ast.SwitchStmt:
		if s.Init != nil {
			prog.summarizeStmt(p, s.Init, seq)
		}
		prog.hoistCalls(p, s.Tag, seq)
		n := &Node{Kind: NodeSwitch, Pos: s.Pos(), Cond: s.Tag}
		prog.summarizeCases(p, s.Body, n)
		seq.Kids = append(seq.Kids, n)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			prog.summarizeStmt(p, s.Init, seq)
		}
		n := &Node{Kind: NodeSwitch, Pos: s.Pos()}
		prog.summarizeCases(p, s.Body, n)
		seq.Kids = append(seq.Kids, n)
	case *ast.SelectStmt:
		n := &Node{Kind: NodeSelect, Pos: s.Pos()}
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			caseSeq := &Node{Kind: NodeSeq, Pos: cc.Pos()}
			if cc.Comm != nil {
				prog.summarizeStmt(p, cc.Comm, caseSeq)
			} else {
				n.HasDefault = true
			}
			for _, cs := range cc.Body {
				prog.summarizeStmt(p, cs, caseSeq)
			}
			n.Cases = append(n.Cases, caseSeq)
		}
		seq.Kids = append(seq.Kids, n)
	case *ast.GoStmt:
		n := &Node{Kind: NodeGo, Pos: s.Pos(), Call: s.Call}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			n.GoBody = prog.summarizeBlock(p, lit.Body)
		}
		// Argument evaluation happens synchronously at the go statement.
		for _, a := range s.Call.Args {
			prog.hoistCalls(p, a, seq)
		}
		seq.Kids = append(seq.Kids, n)
	case *ast.DeferStmt:
		for _, a := range s.Call.Args {
			prog.hoistCalls(p, a, seq)
		}
		seq.Kids = append(seq.Kids, &Node{Kind: NodeDefer, Pos: s.Pos(), Call: s.Call})
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			prog.hoistCalls(p, r, seq)
		}
		seq.Kids = append(seq.Kids, &Node{Kind: NodeReturn, Pos: s.Pos(), Results: s.Results})
	case *ast.SendStmt:
		prog.hoistCalls(p, s.Chan, seq)
		prog.hoistCalls(p, s.Value, seq)
		seq.Kids = append(seq.Kids, &Node{Kind: NodeSend, Pos: s.Pos(), Stmt: s})
	case *ast.BranchStmt:
		seq.Kids = append(seq.Kids, &Node{Kind: NodeBranch, Pos: s.Pos(), Tok: s.Tok})
	case *ast.ExprStmt:
		prog.hoistCalls(p, s.X, seq)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			prog.hoistCalls(p, e, seq)
		}
		for _, e := range s.Lhs {
			prog.hoistCalls(p, e, seq)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						prog.hoistCalls(p, v, seq)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		prog.hoistCalls(p, s.X, seq)
	case *ast.LabeledStmt:
		prog.summarizeStmt(p, s.Stmt, seq)
	case *ast.EmptyStmt:
	}
}

// summarizeCases fills a switch node's case list from a case-clause body.
func (prog *Program) summarizeCases(p *Package, body *ast.BlockStmt, n *Node) {
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		caseSeq := &Node{Kind: NodeSeq, Pos: cc.Pos()}
		for _, e := range cc.List {
			prog.hoistCalls(p, e, caseSeq)
		}
		if cc.List == nil {
			n.HasDefault = true
		}
		n.CaseConds = append(n.CaseConds, cc.List...)
		for _, cs := range cc.Body {
			prog.summarizeStmt(p, cs, caseSeq)
		}
		n.Cases = append(n.Cases, caseSeq)
	}
}

// hoistCalls appends a NodeCall (or NodePanic) for every call expression
// inside e, in source order, without descending into function literals
// (their bodies are summarized separately).
func (prog *Program) hoistCalls(p *Package, e ast.Expr, seq *Node) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isPanicCall(p, n) {
				seq.Kids = append(seq.Kids, &Node{Kind: NodePanic, Pos: n.Pos(), Call: n})
			} else if !isConversion(p, n) {
				seq.Kids = append(seq.Kids, &Node{Kind: NodeCall, Pos: n.Pos(), Call: n})
			}
		case *ast.UnaryExpr:
			// Channel receives are control-flow-relevant (they are the
			// join half of a done-channel protocol), so hoist them like
			// calls — `<-done` alone on a line must not vanish.
			if n.Op == token.ARROW {
				seq.Kids = append(seq.Kids, &Node{Kind: NodeRecv, Pos: n.Pos(), Recv: n})
			}
		}
		return true
	})
}

// isPanicCall reports whether call invokes the panic builtin.
func isPanicCall(p *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// isConversion reports whether call is a type conversion, not a call.
func isConversion(p *Package, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// Callee resolves a call to the FuncInfo of its static target: a declared
// function or method, a variable bound to a function literal, or a
// directly invoked literal. Dynamic calls (interface methods, function
// values from parameters or fields) resolve to nil.
func (prog *Program) Callee(p *Package, call *ast.CallExpr) *FuncInfo {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj := p.Info.Uses[fun]; obj != nil {
			return prog.ByObj[obj]
		}
	case *ast.SelectorExpr:
		if obj := p.Info.Uses[fun.Sel]; obj != nil {
			return prog.ByObj[obj]
		}
	case *ast.FuncLit:
		return prog.ByLit[fun]
	case *ast.ParenExpr:
		inner := &ast.CallExpr{Fun: fun.X, Args: call.Args}
		return prog.Callee(p, inner)
	}
	return nil
}

// FuncValueArgs returns the FuncInfos of call arguments that are function
// values with known bodies — literals passed inline or identifiers bound
// to literals/declared functions. This is how callback-taking helpers
// (runBatches(r, ..., emit)) contribute their callbacks' behavior at the
// call site.
func (prog *Program) FuncValueArgs(p *Package, call *ast.CallExpr) []*FuncInfo {
	var out []*FuncInfo
	for _, a := range call.Args {
		switch a := a.(type) {
		case *ast.FuncLit:
			if fi := prog.ByLit[a]; fi != nil {
				out = append(out, fi)
			}
		case *ast.Ident:
			if obj := p.Info.Uses[a]; obj != nil {
				if fi := prog.ByObj[obj]; fi != nil {
					out = append(out, fi)
				}
			}
		case *ast.SelectorExpr:
			if obj := p.Info.Uses[a.Sel]; obj != nil {
				if fi := prog.ByObj[obj]; fi != nil {
					out = append(out, fi)
				}
			}
		}
	}
	return out
}
