package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// pkgNameOf resolves an expression to the package it names (the "time" in
// time.Now), or nil when the expression is not a package qualifier.
func pkgNameOf(info *types.Info, e ast.Expr) *types.PkgName {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := info.Uses[id].(*types.PkgName)
	return pn
}

// selectorFromPkg reports whether sel is a qualified reference into a
// package with the given import path ("time", "math/rand"), returning the
// selected name.
func selectorFromPkg(info *types.Info, sel *ast.SelectorExpr, path string) (name string, ok bool) {
	pn := pkgNameOf(info, sel.X)
	if pn == nil || pn.Imported().Path() != path {
		return "", false
	}
	return sel.Sel.Name, true
}

// constInt evaluates an expression to an integer constant via the type
// checker (so named constants, arithmetic like tagBase+1, and cross-
// package constants all resolve).
func constInt(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// methodPkgPath returns the defining package path and method name of a
// method-call selector (resolving through Info.Uses), or "" when sel does
// not resolve to a function or method.
func methodPkgPath(info *types.Info, sel *ast.SelectorExpr) (pkgPath, name string) {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// hasPathSuffix reports whether an import path is exactly suffix or ends
// with "/"+suffix — how analyzers recognize the simulator's own packages
// both in the real tree ("parblast/internal/mpi") and when fixtures
// exercise them.
func hasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
