// Package tagmatch is a fixture for the tagmatch analyzer: every tag is
// a constant, every sent tag is received somewhere, and vice versa.
package tagmatch

import "parblast/internal/mpi"

const (
	tagPing   = 201
	tagPong   = 202
	tagOrphan = 203
	tagGhost  = 204
	tagHelped = 205
	tagLoop   = 206
)

func master(r *mpi.Rank) {
	r.Send(1, tagPing, nil)
	_, _, _ = r.Recv(1, tagPong)
	r.Send(1, tagOrphan, nil)     // want "tag 203 is sent here but never received"
	_, _, _ = r.Recv(1, tagGhost) // want "tag 204 is received here but never sent"
}

func worker(r *mpi.Rank) {
	data, _, _ := r.Recv(0, tagPing)
	r.Send(0, tagPong, data)
}

func badDynamic(r *mpi.Rank) {
	tag := tagPing + r.ID()
	r.Send(1, tag, nil) // want "message tag tag is not a constant"
}

// recvLoop forwards its tag parameter into a receive: the analyzer
// resolves the tag at recvLoop's call sites, so no annotation is needed.
func recvLoop(r *mpi.Rank, tag int) []byte {
	for {
		data, _, _, err := r.RecvTimeout(0, tag, 1)
		if err == nil {
			return data
		}
	}
}

func sender(r *mpi.Rank) {
	r.Send(0, tagHelped, nil)
}

func receiver(r *mpi.Rank) {
	_ = recvLoop(r, tagHelped)
}

func closurePair(r *mpi.Rank) {
	recv := func(src, tag int) []byte {
		data, _, _ := r.Recv(src, tag)
		return data
	}
	r.Send(0, tagLoop, nil)
	_ = recv(0, tagLoop)
}

func justifiedDynamic(r *mpi.Rank, base int) {
	//lint:tagmatch per-worker reply tags are derived at runtime and pinned by the e2e seed tests
	r.Send(1, base+r.ID(), nil)
}
