// Package seededrand is a fixture for the seededrand analyzer: every
// random draw must flow from an explicitly seeded generator.
package seededrand

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func bad(xs []int) int {
	rand.Shuffle(len(xs), func(i, j int) { // want "rand.Shuffle draws from the global"
		xs[i], xs[j] = xs[j], xs[i]
	})
	_ = rand.Float64()  // want "rand.Float64 draws from the global"
	return rand.Intn(9) // want "rand.Intn draws from the global"
}

func badV2() int {
	return randv2.IntN(9) // want "rand.IntN draws from the global"
}

func badExp() float64 {
	// Exponential gaps (open-loop arrival generators) are draws too.
	return rand.ExpFloat64() // want "rand.ExpFloat64 draws from the global"
}

func goodExp(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.ExpFloat64() // seeded exponential gaps are fine
}

func good(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	var r *rand.Rand = rng // type references are fine
	return r.Intn(9)       // methods on a seeded *rand.Rand are fine
}

func goodV2(seed uint64) int {
	rng := randv2.New(randv2.NewPCG(seed, 1))
	return rng.IntN(9)
}
