// Fixture for the collorder analyzer: rank-dependent control flow must
// not change which collectives a rank reaches. The package imports the
// real mpi runtime so the collective set and the rank-identity taint
// sources are the shipped ones, not mocks.
package collfix

import (
	"fmt"

	"parblast/internal/mpi"
)

// A rank-dependent branch where only the master reaches the broadcast:
// every other rank skips it and the world deadlocks.
func divergeDirect(r *mpi.Rank) {
	if r.ID() == 0 { // want "rank-dependent branch diverges on collectives"
		r.Bcast(0, nil)
	}
}

func announce(r *mpi.Rank) { r.Barrier() }

func chat(r *mpi.Rank) { r.Send(1, 7, nil) }

// The collective hides one call deep: the divergence is only visible
// through the interprocedural footprint of announce.
func divergeViaHelper(r *mpi.Rank) {
	if r.ID() == 0 { // want "diverges on collectives"
		announce(r)
	} else {
		chat(r)
	}
}

func runOn(r *mpi.Rank, f func()) { f() }

// The collective hides inside a closure passed as a value: the footprint
// must splice through the function-valued argument.
func divergeViaCallback(r *mpi.Rank) {
	if r.ID() == 0 { // want "diverges on collectives"
		runOn(r, func() { r.Barrier() })
	}
}

// A loop bounded by the rank id runs a different number of barrier
// rounds on every rank.
func divergeLoop(r *mpi.Rank) {
	for i := 0; i < r.ID(); i++ { // want "inside a rank-dependent loop"
		r.Barrier()
	}
}

// Rank-dependent branching is fine when both sides reach the same
// collective set — the canonical root/non-root broadcast pattern.
func matched(r *mpi.Rank, data []byte) []byte {
	if r.ID() == 0 {
		return r.Bcast(0, data)
	}
	return r.Bcast(0, nil)
}

// A side that returns a fresh error is the simulated MPI_Abort: it tears
// the run down instead of desynchronizing it, so no divergence.
func abortSide(r *mpi.Rank) error {
	if r.ID() < 0 {
		return fmt.Errorf("negative rank %d", r.ID())
	}
	r.Barrier()
	return nil
}

// Rank-dependent branching with no collectives on either side diverges
// on nothing.
func plainWork(r *mpi.Rank) int {
	if r.ID() == 0 {
		return 1
	}
	return 2
}

// A justified divergence is the author's documented protocol contract.
func justifiedDiverge(r *mpi.Rank) {
	//lint:collorder master-only barrier pairs with the worker Recv loop in chat
	if r.ID() == 0 {
		r.Barrier()
	} else {
		chat(r)
	}
}

// A bare justification is itself a finding: the reason is the review
// record.
func bareJustification(r *mpi.Rank) {
	//lint:collorder
	if r.ID() == 0 { // want "needs a justification"
		r.Barrier()
	}
}
