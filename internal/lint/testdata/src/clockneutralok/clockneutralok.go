// Package render is a negative fixture for the clockneutral analyzer:
// packages outside the telemetry set may drive virtual clocks freely.
package render

import "parblast/internal/simtime"

func tick(c *simtime.Clock) {
	c.Advance(0.5)
	c.SetPhase("search")
}
