// Package wallclock is a fixture for the wallclock analyzer: virtual
// time must come from internal/simtime, never the host clock.
package wallclock

import (
	"time"

	"parblast/internal/simtime"
)

func bad() {
	_ = time.Now()                  // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond)    // want "time.Sleep waits on the wall clock"
	_ = time.Since(time.Unix(0, 0)) // want "time.Since reads the wall clock"
	_ = time.NewTicker(time.Second) // want "time.NewTicker ticks on the wall clock"
	_ = time.After(time.Second)     // want "time.After waits on the wall clock"
}

func good() float64 {
	c := simtime.NewClock()
	c.Advance(0.002)
	d := 3 * time.Millisecond // duration arithmetic is wall-clock-free
	_ = d
	_ = time.Unix(0, 0) // constructing times from data is fine
	return c.Now()
}
