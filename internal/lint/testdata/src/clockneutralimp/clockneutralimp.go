// Fixture for the clockneutral analyzer's import and mpi-call checks:
// the package is deliberately named trace, inside the clock-neutral set.
package trace

import (
	"parblast/internal/mpi" // want "importing parblast/internal/mpi pulls in operations"
)

func drain(r *mpi.Rank) {
	r.TryRecv(0, 7) // want "mpi.TryRecv charges virtual time"
}
