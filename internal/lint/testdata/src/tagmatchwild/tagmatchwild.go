// Package tagmatchwild is a negative fixture for the tagmatch analyzer:
// an AnyTag receive is a wildcard that covers every tag sent within the
// package's protocol, so tagData needs no literal matching Recv.
package tagmatchwild

import "parblast/internal/mpi"

const tagData = 301

func master(r *mpi.Rank) {
	_, _, _ = r.Recv(mpi.AnySource, mpi.AnyTag)
}

func worker(r *mpi.Rank) {
	r.Send(0, tagData, nil)
}
