// Fixture for the sideband analyzer. The package is deliberately named
// core, which places it inside the runtime set: trace-context sideband
// (TraceBatch, FlowEvent records) must never flow into payload bytes or
// virtual-clock arithmetic.
package core

import (
	"parblast/internal/engine"
	"parblast/internal/mpi"
)

// The batch tag leaks into a compute cost: traced and untraced runs
// would advance virtual time differently.
func leakCost(r *mpi.Rank) {
	b := r.TraceBatch()
	r.Compute(int64(b)) // want "virtual-time cost mpi.Compute"
}

// The batch tag leaks into message payload bytes.
func leakPayload(r *mpi.Rank, raw []byte) {
	stamp := append(raw, byte(r.TraceBatch()))
	r.Send(1, 9, stamp) // want "payload of mpi.Send"
}

// Flow-event state leaks into the deterministic output encoder.
func leakWriter(w *engine.Writer, evs []mpi.FlowEvent) {
	w.Int(int64(len(evs))) // want "payload encoder engine.Int"
}

// Flow events gob-encoded straight into a payload.
func leakGob(evs []mpi.FlowEvent) []byte {
	return engine.EncodeGob(evs) // want "payload encoder engine.EncodeGob"
}

// Reading the batch tag for logging is fine; the payload is untouched.
func stampOutside(r *mpi.Rank, payload []byte) {
	_ = r.TraceBatch()
	r.Send(1, 9, payload)
}

// Costs derived from payload sizes are the normal cost model.
func honestCost(r *mpi.Rank, payload []byte) {
	r.Compute(int64(len(payload)))
}

// A justified flow: the replay harness re-injects recorded batch tags by
// design, and says so.
func justifiedFlow(r *mpi.Rank) {
	b := r.TraceBatch()
	//lint:sideband replay harness re-injects the recorded batch tag deterministically
	r.Compute(int64(b))
}
