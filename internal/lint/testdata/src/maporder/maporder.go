// Package maporder is a fixture for the maporder analyzer: a range over
// a map may not feed anything order-sensitive unless the result is
// sorted afterwards or the site carries a //lint:sorted justification.
package maporder

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"parblast/internal/engine"
)

type conn struct{}

func (conn) Send(dst, tag int, data []byte) {}

type kv struct {
	k string
	v int
}

func badPrint(m map[string]int) {
	for k, v := range m { // want "writes output via fmt.Printf"
		fmt.Printf("%s=%d\n", k, v)
	}
}

func badSend(c conn, m map[int][]byte) {
	for k, v := range m { // want "sends a message"
		c.Send(k, 0, v)
	}
}

func badChannel(m map[string]int, ch chan string) {
	for k := range m { // want "sends on a channel"
		ch <- k
	}
}

func badEscape(m map[string]int) []string {
	var keys []string
	for k := range m { // want "appends to keys"
		keys = append(keys, k)
	}
	return keys
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want "writes output via WriteString"
		b.WriteString(k)
	}
	return b.String()
}

func badMarshal(m map[string]int) [][]byte {
	var out [][]byte
	for _, v := range m { // want "feeds serialization via Marshal"
		b, _ := json.Marshal(v)
		out = append(out, b)
	}
	return out
}

func badCodec(w *engine.Writer, m map[string]int64) {
	for _, v := range m { // want "feeds the wire codec via Writer.Int"
		w.Int(v)
	}
}

func badBareJustification(m map[string]int) {
	//lint:sorted
	for k := range m { // want "needs a justification"
		fmt.Println(k)
	}
}

func goodCollectSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodSortSlice(m map[string]int) []kv {
	var out []kv
	for k, v := range m {
		out = append(out, kv{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}

func goodReduce(m map[string]int) int {
	max := 0
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	return max
}

func goodCopy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func goodLocalAppend(m map[string][]int) {
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		_ = local // the slice never outlives one iteration
	}
}

func goodJustified(m map[string]int) {
	//lint:sorted debug dump consumed order-insensitively by the test harness
	for k := range m {
		fmt.Println(k)
	}
}
