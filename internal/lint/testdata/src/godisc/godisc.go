// Fixture for the godisc analyzer. The package is deliberately named
// engine, which places it inside the goroutine-discipline set: every go
// statement needs a provable join and every loop send needs a guard or a
// capacity bound.
package engine

import "sync"

func work() {}

// No join protocol at all: the body neither signals a WaitGroup nor
// touches a done channel.
func leak() {
	go func() { // want "no join protocol"
		work()
	}()
}

// The canonical WaitGroup join: Done in the body, Wait on the spawning
// path.
func joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// A done-channel join: the goroutine closes, the spawner receives.
func doneJoined() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// The Wait exists, but an early return can leave before it: the
// goroutine leaks on exactly the error paths serve mode cares about.
func earlyReturn(fail bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	if fail {
		return // want "can return before the goroutine started at line"
	}
	wg.Wait()
}

// A deferred Wait registered before the spawn is immune to every return
// path, early errors included.
func deferredWait(fail bool) {
	var wg sync.WaitGroup
	defer wg.Wait()
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	if fail {
		return
	}
	work()
}

// A function value cannot be resolved statically, so no join can be
// proven.
func dynamic(f func()) {
	go f() // want "cannot be resolved statically"
}

func helperBody(done chan struct{}) {
	work()
	close(done)
}

// A named goroutine body whose join object is its own parameter: the
// join is the owner's contract, and the spawner receives on it here.
func namedJoined() {
	done := make(chan struct{})
	go helperBody(done)
	<-done
}

// An unguarded, unbounded send inside a loop: one slow consumer and the
// admission loop blocks forever.
func unboundedSend(ch chan int, xs []int) {
	for _, x := range xs {
		ch <- x // want "neither select-guarded nor provably bounded"
	}
}

// Select-guarded sends shed load instead of blocking.
func guardedSend(ch chan int, xs []int) {
	for _, x := range xs {
		select {
		case ch <- x:
		default:
		}
	}
}

// Capacity provably covers the trip count: len(xs) slots, len(xs)
// iterations.
func boundedSend(xs []int) chan int {
	ch := make(chan int, len(xs))
	for _, x := range xs {
		ch <- x
	}
	return ch
}

// A constant capacity covering a constant trip count also proves the
// bound.
func constBoundedSend() chan int {
	ch := make(chan int, 8)
	for i := 0; i < 8; i++ {
		ch <- i
	}
	return ch
}

// A justified detached goroutine: the reason is the review record.
func justifiedLeak() {
	//lint:godisc process-lifetime logger, reaped by the harness at exit
	go work()
}

// A justified loop send.
func justifiedSend(ch chan int, xs []int) {
	for _, x := range xs {
		//lint:godisc the paired collector goroutine drains continuously
		ch <- x
	}
}
