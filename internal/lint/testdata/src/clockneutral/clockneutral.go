// Fixture for the clockneutral analyzer: the package is deliberately
// named metrics, which places it inside the clock-neutral set.
package metrics

import "parblast/internal/simtime"

func bad(c *simtime.Clock) {
	c.Advance(1)          // want "simtime Advance advances a virtual clock"
	c.AdvanceTo(2)        // want "simtime AdvanceTo advances a virtual clock"
	c.SetPhase("shuffle") // want "simtime SetPhase advances a virtual clock"
}

func good(c *simtime.Clock) float64 {
	_ = c.Phase()          // read-only accessors are allowed:
	_ = c.Bucket("search") // exporters read clocks they must never drive
	return c.Now()
}
