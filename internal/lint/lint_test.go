package lint

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The loader shells out to `go list` and type-checks half the module, so
// every test shares one instance (and its stdlib/package caches).
var (
	loaderOnce sync.Once
	testLdr    *Loader
	testLdrErr error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { testLdr, testLdrErr = NewLoader() })
	if testLdrErr != nil {
		t.Fatalf("NewLoader: %v", testLdrErr)
	}
	return testLdr
}

// fixtureDir returns the absolute path of a testdata fixture package, so
// diagnostic file names come out module-relative regardless of the test's
// working directory.
func fixtureDir(t *testing.T, name string) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("abs: %v", err)
	}
	return dir
}

func loadFixtures(t *testing.T, names ...string) []*Package {
	t.Helper()
	l := testLoader(t)
	var pkgs []*Package
	for _, name := range names {
		p, err := l.LoadDir(fixtureDir(t, name))
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", name, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs
}

// want is one "// want \"re\"" expectation comment in a fixture file.
type want struct {
	file    string // module-relative, as diagnostics report it
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// collectWants scans fixture sources for expectation comments.
func collectWants(t *testing.T, names ...string) []*want {
	t.Helper()
	l := testLoader(t)
	var wants []*want
	for _, name := range names {
		dir := fixtureDir(t, name)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("ReadDir: %v", err)
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("ReadFile: %v", err)
			}
			for i, line := range strings.Split(string(src), "\n") {
				m := wantRe.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
				}
				wants = append(wants, &want{file: l.Rel(path), line: i + 1, re: re})
			}
		}
	}
	return wants
}

// checkWants runs one analyzer over the named fixtures and requires an
// exact bijection between diagnostics and // want comments: every
// diagnostic matches a want on its line, every want is hit.
func checkWants(t *testing.T, a *Analyzer, names ...string) {
	t.Helper()
	l := testLoader(t)
	diags := Run(l, loadFixtures(t, names...), []*Analyzer{a})
	wants := collectWants(t, names...)
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}
}

func TestWallclockFixture(t *testing.T)  { checkWants(t, WallclockAnalyzer, "wallclock") }
func TestSeededRandFixture(t *testing.T) { checkWants(t, SeededRandAnalyzer, "seededrand") }
func TestMapOrderFixture(t *testing.T)   { checkWants(t, MapOrderAnalyzer, "maporder") }
func TestTagMatchFixture(t *testing.T)   { checkWants(t, TagMatchAnalyzer, "tagmatch") }

// The wildcard fixture must stay clean: an AnyTag receive covers the
// package's sent tags.
func TestTagMatchWildcardFixture(t *testing.T) { checkWants(t, TagMatchAnalyzer, "tagmatchwild") }

// Three fixtures: violations in packages named metrics and trace, plus a
// package outside the telemetry set that may advance clocks freely.
func TestClockNeutralFixture(t *testing.T) {
	checkWants(t, ClockNeutralAnalyzer, "clockneutral", "clockneutralimp", "clockneutralok")
}

// The interprocedural analyzers: collective-protocol divergence,
// goroutine discipline, and sideband taint. Each fixture mixes positive
// cases, negative cases, and justification directives.
func TestCollOrderFixture(t *testing.T) { checkWants(t, CollOrderAnalyzer, "collorder") }
func TestGoDiscFixture(t *testing.T)    { checkWants(t, GoDiscAnalyzer, "godisc") }
func TestSidebandFixture(t *testing.T)  { checkWants(t, SidebandAnalyzer, "sideband") }

// TestJSONGolden pins the -json output: field order, indentation, and the
// deterministic (file, line, col, analyzer, message) diagnostic ordering.
func TestJSONGolden(t *testing.T) {
	l := testLoader(t)
	diags := Run(l, loadFixtures(t, "seededrand", "wallclock"), All())
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	goldenPath := filepath.Join("testdata", "golden.json")
	if os.Getenv("LINT_GOLDEN_UPDATE") != "" {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with LINT_GOLDEN_UPDATE=1 to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Errorf("JSON output diverged from testdata/golden.json (LINT_GOLDEN_UPDATE=1 regenerates):\ngot:\n%s\nwant:\n%s", buf.Bytes(), golden)
	}
}

// TestJSONEmpty pins that no findings encode as [] rather than null.
func TestJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty diagnostics encode as %q, want []", got)
	}
}

func TestBaselineFilter(t *testing.T) {
	diags := []Diagnostic{
		{File: "a.go", Line: 3, Col: 2, Analyzer: "wallclock", Message: "time.Now reads the wall clock"},
		{File: "b.go", Line: 9, Col: 5, Analyzer: "maporder", Message: "range over m sends"},
	}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, diags[:1]); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	path := filepath.Join(t.TempDir(), "lint.baseline")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	// Column drift must not invalidate a triaged entry.
	shifted := diags[0]
	shifted.Col = 40
	fresh, baselined := b.Filter([]Diagnostic{shifted, diags[1]})
	if len(baselined) != 1 || baselined[0].Message != diags[0].Message {
		t.Errorf("baselined = %v, want the a.go finding", baselined)
	}
	if len(fresh) != 1 || fresh[0].File != "b.go" {
		t.Errorf("fresh = %v, want the b.go finding", fresh)
	}
}

// A baselined finding from one analyzer must never mask a fresh finding
// from a different analyzer at the same file and line: the analyzer name
// is part of the baseline identity, so triaging a collorder divergence
// cannot grandfather in a later godisc leak on the same statement.
func TestBaselinePerAnalyzer(t *testing.T) {
	coll := Diagnostic{File: "a.go", Line: 3, Col: 2, Analyzer: "collorder",
		Message: "rank-dependent branch diverges on collectives"}
	disc := Diagnostic{File: "a.go", Line: 3, Col: 2, Analyzer: "godisc",
		Message: "goroutine has no join protocol"}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, []Diagnostic{coll}); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	path := filepath.Join(t.TempDir(), "lint.baseline")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	fresh, baselined := b.Filter([]Diagnostic{coll, disc})
	if len(baselined) != 1 || baselined[0].Analyzer != "collorder" {
		t.Errorf("baselined = %v, want only the collorder finding", baselined)
	}
	if len(fresh) != 1 || fresh[0].Analyzer != "godisc" {
		t.Errorf("fresh = %v, want the godisc finding to stay gate-failing", fresh)
	}
}

func TestLoadBaselineMissing(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatalf("missing baseline must be empty, got error: %v", err)
	}
	fresh, baselined := b.Filter([]Diagnostic{{File: "a.go", Line: 1, Analyzer: "x", Message: "m"}})
	if len(fresh) != 1 || len(baselined) != 0 {
		t.Errorf("empty baseline filtered wrong: fresh=%v baselined=%v", fresh, baselined)
	}
}

// TestCommandExitCodes proves the CLI gate end to end: exit 0 on a clean
// package, exit 1 the moment a fixture violation enters the load.
func TestCommandExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the parblastlint binary")
	}
	l := testLoader(t)
	bin := filepath.Join(t.TempDir(), "parblastlint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/parblastlint")
	build.Dir = l.ModuleDir
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/parblastlint: %v\n%s", err, out)
	}

	clean := exec.Command(bin, "./internal/simtime")
	clean.Dir = l.ModuleDir
	if out, err := clean.CombinedOutput(); err != nil {
		t.Errorf("clean package: want exit 0, got %v\n%s", err, out)
	}

	dirty := exec.Command(bin, "./internal/lint/testdata/src/wallclock")
	dirty.Dir = l.ModuleDir
	out, err := dirty.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Errorf("violating fixture: want exit 1, got %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("wallclock")) {
		t.Errorf("violating fixture output missing wallclock finding:\n%s", out)
	}
}

// TestModuleClean is the self-gate: the shipped tree has zero findings,
// so every determinism invariant the analyzers encode holds right now.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	l := testLoader(t)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load(./...): %v", err)
	}
	diags := Run(l, pkgs, All())
	for _, d := range diags {
		t.Errorf("finding in shipped tree: %s", d)
	}
}
