package fasta

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"parblast/internal/seq"
)

const sample = `>sp|P12345 first protein
MKVLAWFQ
ERTYHPSD
>second
NIKLMMKV
>third with a description
MK
`

func TestReaderBasic(t *testing.T) {
	seqs, err := Parse([]byte(sample), seq.ProteinAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 {
		t.Fatalf("got %d records", len(seqs))
	}
	if seqs[0].ID != "sp|P12345" || seqs[0].Description != "first protein" {
		t.Fatalf("defline parsed wrong: %q / %q", seqs[0].ID, seqs[0].Description)
	}
	if seqs[0].Letters() != "MKVLAWFQERTYHPSD" {
		t.Fatalf("residues: %q", seqs[0].Letters())
	}
	if seqs[1].ID != "second" || seqs[1].Description != "" {
		t.Fatalf("bare defline parsed wrong: %+v", seqs[1])
	}
	if seqs[2].Letters() != "MK" {
		t.Fatalf("last record: %q", seqs[2].Letters())
	}
}

func TestReaderCRLFAndBlankLines(t *testing.T) {
	text := ">a desc\r\nMKVL\r\n\r\nAWFQ\r\n>b\r\nMM\r\n"
	seqs, err := Parse([]byte(text), seq.ProteinAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0].Letters() != "MKVLAWFQ" {
		t.Fatalf("CRLF parse wrong: %+v", seqs)
	}
}

func TestReaderAutoDetectsAlphabet(t *testing.T) {
	r := NewReader(strings.NewReader(">d\nACGTACGTACGT\n"), nil)
	s, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if s.Alpha.Kind() != seq.DNA {
		t.Fatalf("detected %s, want dna", s.Alpha.Kind())
	}
}

func TestReaderErrors(t *testing.T) {
	if _, err := Parse([]byte("garbage, no defline\n"), seq.ProteinAlphabet); err == nil {
		t.Fatal("missing defline accepted")
	}
	if _, err := Parse([]byte(">empty\n>next\nMK\n"), seq.ProteinAlphabet); err == nil {
		t.Fatal("record without residues accepted")
	}
	r := NewReader(strings.NewReader(">x\nMK?L\n"), seq.ProteinAlphabet)
	r.SetStrict(true)
	if _, err := r.Read(); err == nil {
		t.Fatal("strict mode accepted invalid residue")
	}
	// Non-strict: wildcarded, no error.
	seqs, err := Parse([]byte(">x\nMK?L\n"), seq.ProteinAlphabet)
	if err != nil || len(seqs) != 1 {
		t.Fatalf("lenient mode failed: %v", err)
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader(sample), seq.ProteinAlphabet)
	for i := 0; i < 3; i++ {
		if _, err := r.Read(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatal("EOF not sticky")
	}
}

func TestWriterRoundTrip(t *testing.T) {
	in, err := Parse([]byte(sample), seq.ProteinAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Bytes(in, 60)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(out, seq.ProteinAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(in) {
		t.Fatalf("round trip lost records: %d vs %d", len(back), len(in))
	}
	for i := range in {
		if in[i].ID != back[i].ID || in[i].Letters() != back[i].Letters() ||
			in[i].Description != back[i].Description {
			t.Fatalf("record %d mutated in round trip", i)
		}
	}
}

func TestWriterLineWidth(t *testing.T) {
	s := seq.New(seq.ProteinAlphabet, "w", "", strings.Repeat("MK", 50))
	out, err := Bytes([]*seq.Sequence{s}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if i == 0 {
			continue // defline
		}
		if len(line) > 10 {
			t.Fatalf("line %d longer than width: %q", i, line)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.fasta")
	in, _ := Parse([]byte(sample), seq.ProteinAlphabet)
	if err := WriteFile(path, in, 60); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path, seq.ProteinAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("file round trip lost records: %d", len(back))
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.fasta"), nil); !os.IsNotExist(err) {
		t.Fatalf("want not-exist error, got %v", err)
	}
}

func TestSplitDefline(t *testing.T) {
	id, desc := SplitDefline("  id1   long  description ")
	if id != "id1" || desc != "long  description" {
		t.Fatalf("split: %q / %q", id, desc)
	}
	id, desc = SplitDefline("tab\tseparated desc")
	if id != "tab" || desc != "separated desc" {
		t.Fatalf("tab split: %q / %q", id, desc)
	}
}

func TestRoundTripQuick(t *testing.T) {
	// Property: any sequence set built from valid letters survives a
	// write/parse round trip byte-identically in residue content.
	f := func(ids []uint8, bodies [][]byte) bool {
		n := len(ids)
		if n == 0 || n > 8 {
			return true
		}
		var seqs []*seq.Sequence
		for i := 0; i < n; i++ {
			var body []byte
			if i < len(bodies) {
				body = bodies[i]
			}
			letters := make([]byte, 0, len(body)+1)
			for _, c := range body {
				letters = append(letters, seq.ProteinLetters[int(c)%20])
			}
			if len(letters) == 0 {
				letters = append(letters, 'M')
			}
			seqs = append(seqs, seq.New(seq.ProteinAlphabet,
				"id"+string(rune('a'+i))+string(rune('0'+ids[i]%10)), "", string(letters)))
		}
		data, err := Bytes(seqs, 17)
		if err != nil {
			return false
		}
		back, err := Parse(data, seq.ProteinAlphabet)
		if err != nil || len(back) != len(seqs) {
			return false
		}
		for i := range seqs {
			if !bytes.Equal(seqs[i].Residues, back[i].Residues) || seqs[i].ID != back[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
