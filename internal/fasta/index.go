package fasta

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// faidx-style random access: an index over a FASTA file that maps every
// record to its byte layout, so any subsequence can be fetched without
// scanning the file — the same contract as samtools faidx and its ".fai"
// files, which this implementation reads and writes.
//
// The standard faidx restriction applies: within one record every sequence
// line except the last must have the same width.

// IndexEntry describes one record's layout.
type IndexEntry struct {
	// Name is the record ID (first defline token).
	Name string
	// Length is the residue count.
	Length int
	// Offset is the byte position of the first residue byte.
	Offset int64
	// LineBases is the number of residues per full line.
	LineBases int
	// LineBytes is the byte stride per line (LineBases + newline bytes).
	LineBytes int
}

// Index maps record names to layout entries.
type Index struct {
	entries []IndexEntry
	byName  map[string]int
}

// Entries returns the records in file order.
func (ix *Index) Entries() []IndexEntry { return ix.entries }

// Lookup finds a record by name.
func (ix *Index) Lookup(name string) (IndexEntry, bool) {
	i, ok := ix.byName[name]
	if !ok {
		return IndexEntry{}, false
	}
	return ix.entries[i], true
}

// Names returns record names in file order.
func (ix *Index) Names() []string {
	out := make([]string, len(ix.entries))
	for i, e := range ix.entries {
		out[i] = e.Name
	}
	return out
}

// BuildIndex scans FASTA text once and produces the index.
func BuildIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	ix := &Index{byName: make(map[string]int)}
	var offset int64

	var cur *IndexEntry
	var lastLineBases int
	var sawShortLine bool
	finish := func() {
		if cur != nil {
			ix.byName[cur.Name] = len(ix.entries)
			ix.entries = append(ix.entries, *cur)
			cur = nil
		}
	}
	lineNo := 0
	for {
		line, err := br.ReadBytes('\n')
		lineLen := int64(len(line))
		if len(line) == 0 && err != nil {
			break
		}
		lineNo++
		trimmed := bytes.TrimRight(line, "\r\n")
		switch {
		case len(trimmed) == 0:
			// Blank lines end the uniform-layout guarantee for the record.
			if cur != nil {
				sawShortLine = true
			}
		case trimmed[0] == '>':
			finish()
			id, _ := SplitDefline(string(trimmed[1:]))
			if id == "" {
				return nil, fmt.Errorf("fasta: line %d: empty record name", lineNo)
			}
			if _, dup := ix.byName[id]; dup {
				return nil, fmt.Errorf("fasta: duplicate record name %q", id)
			}
			cur = &IndexEntry{Name: id, Offset: offset + lineLen}
			lastLineBases = -1
			sawShortLine = false
		default:
			if cur == nil {
				return nil, fmt.Errorf("fasta: line %d: residues before any defline", lineNo)
			}
			if sawShortLine {
				return nil, fmt.Errorf("fasta: record %q has non-uniform line lengths (line %d)", cur.Name, lineNo)
			}
			bases := len(trimmed)
			if cur.LineBases == 0 {
				cur.LineBases = bases
				cur.LineBytes = int(lineLen)
			} else if bases != cur.LineBases {
				// Only the final line may be short.
				sawShortLine = true
			}
			if lastLineBases >= 0 && lastLineBases != cur.LineBases {
				return nil, fmt.Errorf("fasta: record %q has non-uniform line lengths (line %d)", cur.Name, lineNo)
			}
			lastLineBases = bases
			cur.Length += bases
		}
		offset += lineLen
		if err != nil {
			break
		}
	}
	finish()
	if len(ix.entries) == 0 {
		return nil, fmt.Errorf("fasta: no records to index")
	}
	return ix, nil
}

// Fetch reads residues [from, to) of the named record (0-based half-open)
// from the underlying file without scanning it.
func (ix *Index) Fetch(ra io.ReaderAt, name string, from, to int) ([]byte, error) {
	e, ok := ix.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("fasta: record %q not in index", name)
	}
	if from < 0 || to > e.Length || from > to {
		return nil, fmt.Errorf("fasta: range [%d,%d) outside record %q of length %d", from, to, name, e.Length)
	}
	if from == to {
		return nil, nil
	}
	// Byte span covering the residue range, including embedded newlines.
	startByte := e.Offset + int64(from/e.LineBases)*int64(e.LineBytes) + int64(from%e.LineBases)
	endByte := e.Offset + int64((to-1)/e.LineBases)*int64(e.LineBytes) + int64((to-1)%e.LineBases) + 1
	buf := make([]byte, endByte-startByte)
	if _, err := ra.ReadAt(buf, startByte); err != nil && err != io.EOF {
		return nil, fmt.Errorf("fasta: fetch %q: %w", name, err)
	}
	out := make([]byte, 0, to-from)
	for _, c := range buf {
		if c != '\n' && c != '\r' {
			out = append(out, c)
		}
	}
	if len(out) != to-from {
		return nil, fmt.Errorf("fasta: fetch %q returned %d residues, want %d (corrupt index?)",
			name, len(out), to-from)
	}
	return out, nil
}

// WriteFai renders the index in the standard 5-column .fai format.
func (ix *Index) WriteFai(w io.Writer) error {
	for _, e := range ix.entries {
		if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\n",
			e.Name, e.Length, e.Offset, e.LineBases, e.LineBytes); err != nil {
			return err
		}
	}
	return nil
}

// ReadFai parses a .fai file.
func ReadFai(r io.Reader) (*Index, error) {
	ix := &Index{byName: make(map[string]int)}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 5 {
			return nil, fmt.Errorf("fasta: .fai line %d has %d fields, want 5", lineNo, len(fields))
		}
		var e IndexEntry
		e.Name = fields[0]
		var err error
		if e.Length, err = strconv.Atoi(fields[1]); err != nil {
			return nil, fmt.Errorf("fasta: .fai line %d: %w", lineNo, err)
		}
		if e.Offset, err = strconv.ParseInt(fields[2], 10, 64); err != nil {
			return nil, fmt.Errorf("fasta: .fai line %d: %w", lineNo, err)
		}
		if e.LineBases, err = strconv.Atoi(fields[3]); err != nil {
			return nil, fmt.Errorf("fasta: .fai line %d: %w", lineNo, err)
		}
		if e.LineBytes, err = strconv.Atoi(fields[4]); err != nil {
			return nil, fmt.Errorf("fasta: .fai line %d: %w", lineNo, err)
		}
		if e.LineBases <= 0 || e.LineBytes <= e.LineBases-1 {
			return nil, fmt.Errorf("fasta: .fai line %d: implausible layout %d/%d", lineNo, e.LineBases, e.LineBytes)
		}
		if _, dup := ix.byName[e.Name]; dup {
			return nil, fmt.Errorf("fasta: .fai duplicate record %q", e.Name)
		}
		ix.byName[e.Name] = len(ix.entries)
		ix.entries = append(ix.entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(ix.entries) == 0 {
		return nil, fmt.Errorf("fasta: empty .fai")
	}
	// Keep entries sorted by offset (file order) regardless of input order.
	sort.SliceStable(ix.entries, func(a, b int) bool {
		return ix.entries[a].Offset < ix.entries[b].Offset
	})
	for i, e := range ix.entries {
		ix.byName[e.Name] = i
	}
	return ix, nil
}
