// Package fasta reads and writes FASTA-format sequence files.
//
// The reader is streaming (it never loads the whole file) and tolerant of
// the dialect variation found in real databases: CRLF line endings, blank
// lines, lower-case residues, and numeric position columns. Records keep the
// raw defline split into ID (first token) and description.
package fasta

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"

	"parblast/internal/seq"
)

// Reader streams sequences from FASTA text.
type Reader struct {
	br    *bufio.Reader
	alpha *seq.Alphabet
	// pending holds a defline we read past while finishing the previous
	// record.
	pending []byte
	line    int
	eof     bool
	strict  bool
}

// NewReader wraps r. If alpha is nil the alphabet is guessed from the first
// record's residues and then fixed for the rest of the stream.
func NewReader(r io.Reader, alpha *seq.Alphabet) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16), alpha: alpha}
}

// SetStrict makes Read return an error on invalid residue letters instead of
// silently mapping them to the wildcard.
func (r *Reader) SetStrict(strict bool) { r.strict = strict }

// Alphabet returns the alphabet in use, which is nil until the first record
// has been read when auto-detection is active.
func (r *Reader) Alphabet() *seq.Alphabet { return r.alpha }

// Read returns the next sequence, or io.EOF after the last one.
func (r *Reader) Read() (*seq.Sequence, error) {
	defline, err := r.nextDefline()
	if err != nil {
		return nil, err
	}
	var residueText []byte
	for {
		line, err := r.readLine()
		if err == io.EOF {
			r.eof = true
			break
		}
		if err != nil {
			return nil, err
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			continue
		}
		if trimmed[0] == '>' {
			r.pending = append([]byte(nil), trimmed...)
			break
		}
		residueText = append(residueText, trimmed...)
	}
	if r.alpha == nil {
		r.alpha = seq.AlphabetFor(seq.GuessKind(residueText))
	}
	id, desc := SplitDefline(string(defline))
	codes, encErr := r.alpha.Encode(residueText)
	if encErr != nil && r.strict {
		return nil, fmt.Errorf("fasta: record %q: %w", id, encErr)
	}
	if len(codes) == 0 {
		return nil, fmt.Errorf("fasta: record %q near line %d has no residues", id, r.line)
	}
	return &seq.Sequence{ID: id, Description: desc, Residues: codes, Alpha: r.alpha}, nil
}

func (r *Reader) nextDefline() ([]byte, error) {
	if r.pending != nil {
		d := r.pending
		r.pending = nil
		return d[1:], nil
	}
	if r.eof {
		return nil, io.EOF
	}
	for {
		line, err := r.readLine()
		if err != nil {
			return nil, err
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			continue
		}
		if trimmed[0] != '>' {
			return nil, fmt.Errorf("fasta: line %d: expected '>' defline, got %.20q", r.line, trimmed)
		}
		return append([]byte(nil), trimmed[1:]...), nil
	}
}

func (r *Reader) readLine() ([]byte, error) {
	line, err := r.br.ReadBytes('\n')
	if len(line) > 0 {
		r.line++
		return line, nil
	}
	return nil, err
}

// ReadAll consumes the remaining records.
func (r *Reader) ReadAll() ([]*seq.Sequence, error) {
	var out []*seq.Sequence
	for {
		s, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

// SplitDefline separates a defline into the ID token and the description.
func SplitDefline(defline string) (id, description string) {
	defline = strings.TrimSpace(defline)
	if i := strings.IndexAny(defline, " \t"); i >= 0 {
		return defline[:i], strings.TrimSpace(defline[i+1:])
	}
	return defline, ""
}

// Writer emits FASTA text with fixed-width residue lines.
type Writer struct {
	w     *bufio.Writer
	width int
}

// NewWriter wraps w; width ≤ 0 selects the conventional 60 columns.
func NewWriter(w io.Writer, width int) *Writer {
	if width <= 0 {
		width = 60
	}
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), width: width}
}

// Write emits one record.
func (w *Writer) Write(s *seq.Sequence) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w.w, ">%s\n", s.Defline()); err != nil {
		return err
	}
	letters := s.Alpha.Decode(s.Residues)
	for len(letters) > 0 {
		n := w.width
		if n > len(letters) {
			n = len(letters)
		}
		if _, err := w.w.Write(letters[:n]); err != nil {
			return err
		}
		if err := w.w.WriteByte('\n'); err != nil {
			return err
		}
		letters = letters[n:]
	}
	return nil
}

// Flush writes buffered output through to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// ReadFile parses an entire FASTA file from the OS filesystem.
func ReadFile(path string, alpha *seq.Alphabet) ([]*seq.Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return NewReader(f, alpha).ReadAll()
}

// WriteFile writes sequences to a FASTA file on the OS filesystem.
func WriteFile(path string, seqs []*seq.Sequence, width int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := NewWriter(f, width)
	for _, s := range seqs {
		if err := w.Write(s); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Bytes renders sequences as FASTA text in memory.
func Bytes(seqs []*seq.Sequence, width int) ([]byte, error) {
	var buf bytes.Buffer
	w := NewWriter(&buf, width)
	for _, s := range seqs {
		if err := w.Write(s); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Parse parses FASTA text held in memory.
func Parse(data []byte, alpha *seq.Alphabet) ([]*seq.Sequence, error) {
	return NewReader(bytes.NewReader(data), alpha).ReadAll()
}
