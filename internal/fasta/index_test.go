package fasta

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"parblast/internal/seq"
)

const indexedSample = `>alpha first record
MKVLAWFQER
TYHPSDNIKL
MKVLA
>beta
WWYVWWYVWW
YV
>gamma single line
MK
`

func buildSampleIndex(t *testing.T) (*Index, *bytes.Reader) {
	t.Helper()
	ix, err := BuildIndex(strings.NewReader(indexedSample))
	if err != nil {
		t.Fatal(err)
	}
	return ix, bytes.NewReader([]byte(indexedSample))
}

func TestBuildIndexLayout(t *testing.T) {
	ix, _ := buildSampleIndex(t)
	if len(ix.Entries()) != 3 {
		t.Fatalf("%d entries", len(ix.Entries()))
	}
	alpha, ok := ix.Lookup("alpha")
	if !ok || alpha.Length != 25 || alpha.LineBases != 10 || alpha.LineBytes != 11 {
		t.Fatalf("alpha entry wrong: %+v", alpha)
	}
	beta, _ := ix.Lookup("beta")
	if beta.Length != 12 {
		t.Fatalf("beta length %d", beta.Length)
	}
	if names := ix.Names(); names[0] != "alpha" || names[2] != "gamma" {
		t.Fatalf("names: %v", names)
	}
	if _, ok := ix.Lookup("missing"); ok {
		t.Fatal("phantom record")
	}
}

func TestFetchSubsequences(t *testing.T) {
	ix, ra := buildSampleIndex(t)
	cases := []struct {
		name     string
		from, to int
		want     string
	}{
		{"alpha", 0, 10, "MKVLAWFQER"},
		{"alpha", 8, 12, "ERTY"},   // spans a line break
		{"alpha", 20, 25, "MKVLA"}, // last, short line
		{"alpha", 0, 25, "MKVLAWFQERTYHPSDNIKLMKVLA"},
		{"beta", 9, 12, "WYV"},
		{"gamma", 0, 2, "MK"},
		{"alpha", 5, 5, ""}, // empty range
	}
	for _, c := range cases {
		got, err := ix.Fetch(ra, c.name, c.from, c.to)
		if err != nil {
			t.Fatalf("%s[%d:%d]: %v", c.name, c.from, c.to, err)
		}
		if string(got) != c.want {
			t.Fatalf("%s[%d:%d] = %q, want %q", c.name, c.from, c.to, got, c.want)
		}
	}
	if _, err := ix.Fetch(ra, "alpha", 0, 26); err == nil {
		t.Fatal("out-of-range fetch accepted")
	}
	if _, err := ix.Fetch(ra, "nope", 0, 1); err == nil {
		t.Fatal("missing record accepted")
	}
}

func TestFaiRoundTrip(t *testing.T) {
	ix, _ := buildSampleIndex(t)
	var buf bytes.Buffer
	if err := ix.WriteFai(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFai(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries()) != len(ix.Entries()) {
		t.Fatal("entry count changed")
	}
	for i, e := range ix.Entries() {
		if back.Entries()[i] != e {
			t.Fatalf("entry %d changed: %+v vs %+v", i, back.Entries()[i], e)
		}
	}
}

func TestReadFaiErrors(t *testing.T) {
	bad := []string{
		"",                                  // empty
		"name\t1\t2\t3",                     // 4 fields
		"name\tx\t2\t3\t4",                  // non-numeric
		"n\t5\t0\t0\t1",                     // zero line bases
		"a\t5\t0\t10\t11\na\t5\t20\t10\t11", // duplicate
	}
	for i, text := range bad {
		if _, err := ReadFai(strings.NewReader(text)); err == nil {
			t.Fatalf("case %d accepted: %q", i, text)
		}
	}
}

func TestBuildIndexRejectsNonUniform(t *testing.T) {
	// A short line in the MIDDLE of a record breaks random access.
	bad := ">x\nMKVLAWFQER\nMK\nTYHPSDNIKL\n"
	if _, err := BuildIndex(strings.NewReader(bad)); err == nil {
		t.Fatal("non-uniform record accepted")
	}
	if _, err := BuildIndex(strings.NewReader("MKVL\n")); err == nil {
		t.Fatal("residues before defline accepted")
	}
	if _, err := BuildIndex(strings.NewReader(">a\nMK\n>a\nVL\n")); err == nil {
		t.Fatal("duplicate names accepted")
	}
	if _, err := BuildIndex(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestIndexAgainstWriterQuick(t *testing.T) {
	// Property: for any sequences written by our Writer, BuildIndex+Fetch
	// reproduces every full record.
	f := func(bodies [][]byte, width8 uint8) bool {
		width := 10 + int(width8)%50
		var seqs []*seq.Sequence
		for i, body := range bodies {
			if i >= 5 {
				break
			}
			letters := make([]byte, 0, len(body)+1)
			for _, c := range body {
				letters = append(letters, seq.ProteinLetters[int(c)%20])
			}
			if len(letters) == 0 {
				letters = append(letters, 'M')
			}
			seqs = append(seqs, seq.New(seq.ProteinAlphabet,
				"rec"+string(rune('a'+i)), "", string(letters)))
		}
		if len(seqs) == 0 {
			return true
		}
		data, err := Bytes(seqs, width)
		if err != nil {
			return false
		}
		ix, err := BuildIndex(bytes.NewReader(data))
		if err != nil {
			return false
		}
		ra := bytes.NewReader(data)
		for _, s := range seqs {
			got, err := ix.Fetch(ra, s.ID, 0, s.Len())
			if err != nil || string(got) != s.Letters() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
