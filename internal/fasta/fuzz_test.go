package fasta

import (
	"bytes"
	"testing"

	"parblast/internal/seq"
)

// FuzzParse hardens the FASTA reader against arbitrary input: it must
// never panic, and whatever parses successfully must survive a write/parse
// round trip.
func FuzzParse(f *testing.F) {
	f.Add([]byte(sample))
	f.Add([]byte(">x\nMK\n"))
	f.Add([]byte(">only defline\n"))
	f.Add([]byte("no defline at all"))
	f.Add([]byte(">crlf\r\nMKVL\r\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		seqs, err := Parse(data, seq.ProteinAlphabet)
		if err != nil {
			return
		}
		out, err := Bytes(seqs, 60)
		if err != nil {
			// Parsed records can carry IDs the writer rejects (e.g. a
			// record that failed validation); that is an error, not a
			// panic, and acceptable.
			return
		}
		back, err := Parse(out, seq.ProteinAlphabet)
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v", err)
		}
		if len(back) != len(seqs) {
			t.Fatalf("round trip changed record count: %d → %d", len(seqs), len(back))
		}
		for i := range seqs {
			if !bytes.Equal(seqs[i].Residues, back[i].Residues) {
				t.Fatalf("record %d residues changed in round trip", i)
			}
		}
	})
}

// FuzzBuildIndex hardens the faidx builder: no panics, and indexes built
// from valid input must agree with a full parse.
func FuzzBuildIndex(f *testing.F) {
	f.Add([]byte(indexedSample))
	f.Add([]byte(">a\nMK\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := BuildIndex(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, e := range ix.Entries() {
			if e.Length < 0 || e.Offset < 0 {
				t.Fatalf("negative layout: %+v", e)
			}
		}
	})
}
