// Package vfs simulates cluster storage: a shared parallel file system and
// per-node local disks, with a deterministic contention-aware cost model.
//
// Data is held in memory and is byte-exact — files written through the
// MPI-IO layer can be read back and compared, which is how the reproduction
// verifies that pioBLAST's collective output equals mpiBLAST's serial
// output. Time is modelled separately: every access reports a completion
// time computed from the storage's latency, per-stream bandwidth, and a
// channel pool that captures how many concurrent streams the file system
// can sustain before accesses queue (XFS-like: many; NFS-like: one).
package vfs

import (
	"fmt"
	"sort"
	"sync"

	"parblast/internal/metrics"
)

// Profile holds the performance characteristics of one storage system.
type Profile struct {
	// Name appears in diagnostics ("xfs", "nfs", "local").
	Name string
	// Latency is the per-operation setup cost in seconds.
	Latency float64
	// Bandwidth is the per-stream transfer rate in bytes/second.
	Bandwidth float64
	// Channels is how many concurrent streams proceed at full bandwidth;
	// further concurrent accesses queue behind the busiest channel.
	Channels int
}

// SeekEquivalentBytes is the transfer volume that costs as much time as
// one operation's setup latency (latency × bandwidth): the break-even
// hole size for data sieving — transferring a smaller hole is cheaper
// than paying a second operation's latency. Truncated toward zero, so
// near-zero-latency profiles yield 0; callers needing a positive gap
// must floor it.
func (p Profile) SeekEquivalentBytes() int64 {
	return int64(p.Latency * p.Bandwidth)
}

// Validate rejects unusable profiles.
func (p Profile) Validate() error {
	if p.Latency < 0 || p.Bandwidth <= 0 || p.Channels < 1 {
		return fmt.Errorf("vfs: invalid profile %+v", p)
	}
	return nil
}

// XFSLike models the ORNL Altix's SGI XFS: a high-bandwidth parallel file
// system that scales to many concurrent streams.
func XFSLike() Profile {
	return Profile{Name: "xfs", Latency: 3e-4, Bandwidth: 200e6, Channels: 32}
}

// NFSLike models the NCSU blade cluster's NFS server: one modest server
// that serializes concurrent clients.
func NFSLike() Profile {
	return Profile{Name: "nfs", Latency: 5e-3, Bandwidth: 30e6, Channels: 1}
}

// LocalDisk models a node-local IDE/SCSI disk.
func LocalDisk() Profile {
	return Profile{Name: "local", Latency: 8e-3, Bandwidth: 50e6, Channels: 1}
}

// RAMDisk models in-memory staging (effectively free I/O); useful for
// ablations that isolate protocol costs from storage costs.
func RAMDisk() Profile {
	return Profile{Name: "ram", Latency: 1e-6, Bandwidth: 4e9, Channels: 64}
}

// FaultPlan schedules deterministic transient I/O errors: selected
// accesses fail Failures times before succeeding, and each failed attempt
// costs the profile latency plus an exponentially growing backoff wait.
// Which accesses fault is decided by operation ordinal (1-based, in the
// file system's deterministic virtual-time access order), so a plan always
// reproduces the same retry history.
type FaultPlan struct {
	// FirstOp is the 1-based ordinal of the first faulted access.
	FirstOp int64
	// Every faults each Every-th access from FirstOp on (0 = only FirstOp).
	Every int64
	// Count caps the number of faulted accesses (0 = no cap).
	Count int64
	// Failures is how many attempts fail before the access succeeds.
	Failures int
	// Backoff is the wait after the first failed attempt, doubling per
	// subsequent retry (exponential backoff).
	Backoff float64
}

// Validate rejects unusable plans.
func (p FaultPlan) Validate() error {
	if p.FirstOp < 1 || p.Every < 0 || p.Count < 0 || p.Failures < 0 || p.Backoff < 0 {
		return fmt.Errorf("vfs: invalid fault plan %+v", p)
	}
	return nil
}

// FS is one simulated file system: a namespace of in-memory files plus a
// channel pool for timing.
type FS struct {
	profile Profile

	mu       sync.Mutex
	files    map[string]*File
	channels []float64 // busy-until time per channel
	// stats
	bytesRead    int64
	bytesWritten int64
	ops          int64
	// fault injection
	faults      *FaultPlan
	faultedOps  int64
	retries     int64
	backoffTime float64
	// telemetry handles (nil-safe no-ops until SetMetrics)
	inst fsInstruments
}

// fsInstruments caches the file system's telemetry handles so hot paths
// never hit the registry's lookup map. All fields are nil-safe: an FS
// without SetMetrics records nothing.
type fsInstruments struct {
	ops         *metrics.Counter
	readBytes   *metrics.Counter
	writeBytes  *metrics.Counter
	faultedOps  *metrics.Counter
	retries     *metrics.Counter
	backoff     *metrics.Gauge
	accessBytes *metrics.Histogram
}

// SetMetrics attaches the file system to a telemetry registry. Series are
// named vfs.<profile>.* and labelled RankGlobal, since a file system is a
// shared resource not owned by any one rank. Metrics never advance virtual
// clocks, so attaching them cannot change any access's completion time.
func (fs *FS) SetMetrics(reg *metrics.Registry) {
	prefix := "vfs." + fs.profile.Name + "."
	inst := fsInstruments{}
	if reg != nil {
		inst = fsInstruments{
			ops:         reg.Counter(prefix+"ops", metrics.RankGlobal),
			readBytes:   reg.Counter(prefix+"read_bytes", metrics.RankGlobal),
			writeBytes:  reg.Counter(prefix+"write_bytes", metrics.RankGlobal),
			faultedOps:  reg.Counter(prefix+"faulted_ops", metrics.RankGlobal),
			retries:     reg.Counter(prefix+"fault_retries", metrics.RankGlobal),
			backoff:     reg.Gauge(prefix+"backoff_s", metrics.RankGlobal),
			accessBytes: reg.Histogram(prefix+"access_bytes", metrics.RankGlobal, metrics.SizeBuckets()),
		}
	}
	fs.mu.Lock()
	fs.inst = inst
	fs.mu.Unlock()
}

// New creates an empty file system with the given performance profile.
func New(p Profile) (*FS, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &FS{
		profile:  p,
		files:    make(map[string]*File),
		channels: make([]float64, p.Channels),
	}, nil
}

// MustNew is New for known-good presets.
func MustNew(p Profile) *FS {
	fs, err := New(p)
	if err != nil {
		panic(err)
	}
	return fs
}

// Profile returns the performance profile.
func (fs *FS) Profile() Profile { return fs.profile }

// Access charges one I/O of the given size starting no earlier than start,
// and returns its completion time. It implements the channel-pool queueing
// model: the operation grabs the earliest-free channel.
func (fs *FS) Access(start float64, size int64) float64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.accessLocked(start, size)
}

func (fs *FS) accessLocked(start float64, size int64) float64 {
	fs.ops++
	fs.inst.ops.Inc()
	fs.inst.accessBytes.Observe(float64(size))
	// Earliest-free channel.
	best := 0
	for i := 1; i < len(fs.channels); i++ {
		if fs.channels[i] < fs.channels[best] {
			best = i
		}
	}
	begin := start
	if fs.channels[best] > begin {
		begin = fs.channels[best]
	}
	// Transient faults: the op pays each failed attempt's latency plus an
	// exponentially growing backoff wait before the attempt that succeeds.
	if fs.faultedLocked() {
		fs.faultedOps++
		fs.inst.faultedOps.Inc()
		delay := fs.faults.Backoff
		for i := 0; i < fs.faults.Failures; i++ {
			fs.retries++
			fs.backoffTime += delay
			fs.inst.retries.Inc()
			fs.inst.backoff.Add(delay)
			begin += fs.profile.Latency + delay
			delay *= 2
		}
	}
	end := begin + fs.profile.Latency + float64(size)/fs.profile.Bandwidth
	fs.channels[best] = end
	return end
}

// faultedLocked decides whether the current access (ordinal fs.ops,
// already incremented) is scheduled to fault.
func (fs *FS) faultedLocked() bool {
	p := fs.faults
	if p == nil || p.Failures == 0 || fs.ops < p.FirstOp {
		return false
	}
	if p.Count > 0 && fs.faultedOps >= p.Count {
		return false
	}
	d := fs.ops - p.FirstOp
	if p.Every > 0 {
		return d%p.Every == 0
	}
	return d == 0
}

// InjectFaults installs a transient-error schedule (replacing any previous
// one). Pass a zero-Failures plan to disable injection.
func (fs *FS) InjectFaults(p FaultPlan) error {
	if err := p.Validate(); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.faults = &p
	return nil
}

// FaultStats reports how many accesses faulted, the total failed attempts
// (retries), and the cumulative backoff wait charged.
func (fs *FS) FaultStats() (faultedOps, retries int64, backoffTime float64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.faultedOps, fs.retries, fs.backoffTime
}

// Stats reports cumulative operation counts and byte volumes.
func (fs *FS) Stats() (ops, bytesRead, bytesWritten int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops, fs.bytesRead, fs.bytesWritten
}

// Create makes (or truncates) a file and returns it. An existing file is
// truncated IN PLACE: handles other ranks already hold keep addressing the
// same file (previously a fresh File object replaced the map entry and old
// handles silently wrote to an orphan).
func (fs *FS) Create(path string) *File {
	fs.mu.Lock()
	f, ok := fs.files[path]
	if !ok {
		f = &File{name: path, fs: fs}
		fs.files[path] = f
		fs.mu.Unlock()
		return f
	}
	// Truncate outside fs.mu: File methods take f.mu before fs.mu (for
	// stats), so holding fs.mu here would invert the lock order.
	fs.mu.Unlock()
	f.Truncate(0)
	return f
}

// Open returns an existing file.
func (fs *FS) Open(path string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("vfs: %s: file %q does not exist", fs.profile.Name, path)
	}
	return f, nil
}

// OpenOrCreate returns the file, creating it when absent (the shared output
// file is opened this way by every rank).
func (fs *FS) OpenOrCreate(path string) *File {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f, ok := fs.files[path]; ok {
		return f
	}
	f := &File{name: path, fs: fs}
	fs.files[path] = f
	return f
}

// Remove deletes a file.
func (fs *FS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("vfs: %s: remove %q: no such file", fs.profile.Name, path)
	}
	delete(fs.files, path)
	return nil
}

// List returns all paths in sorted order.
func (fs *FS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// WriteFile creates path with the given contents (no time charged; use the
// mpiio layer for timed access). Handy for test and staging setup.
func (fs *FS) WriteFile(path string, data []byte) {
	f := fs.Create(path)
	f.WriteAt(data, 0)
}

// ReadFile returns a copy of the file's contents (no time charged).
func (fs *FS) ReadFile(path string) ([]byte, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	return f.Snapshot(), nil
}

// File is an in-memory file with positional access.
type File struct {
	name string
	fs   *FS

	mu   sync.Mutex
	data []byte
}

// Name returns the path the file was created with.
func (f *File) Name() string { return f.name }

// Size returns the current length.
func (f *File) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.data))
}

// ReadAt copies len(p) bytes from offset off. Short reads at EOF return the
// available bytes and no error; reads fully past EOF return 0.
func (f *File) ReadAt(p []byte, off int64) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if off >= int64(len(f.data)) {
		return 0
	}
	n := copy(p, f.data[off:])
	f.fs.mu.Lock()
	f.fs.bytesRead += int64(n)
	inst := f.fs.inst
	f.fs.mu.Unlock()
	inst.readBytes.Add(int64(n))
	return n
}

// WriteAt stores p at offset off, growing (zero-filling) as needed.
func (f *File) WriteAt(p []byte, off int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(f.data)) {
		grown := make([]byte, end)
		copy(grown, f.data)
		f.data = grown
	}
	copy(f.data[off:end], p)
	f.fs.mu.Lock()
	f.fs.bytesWritten += int64(len(p))
	inst := f.fs.inst
	f.fs.mu.Unlock()
	inst.writeBytes.Add(int64(len(p)))
}

// Truncate sets the file length.
func (f *File) Truncate(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= int64(len(f.data)) {
		f.data = f.data[:n]
		return
	}
	grown := make([]byte, n)
	copy(grown, f.data)
	f.data = grown
}

// Snapshot returns a copy of the contents.
func (f *File) Snapshot() []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out
}

// Node bundles the storage visible to one cluster node: the shared file
// system (same object for every node) and an optional local disk.
type Node struct {
	Shared *FS
	Local  *FS // nil when the platform has no user-accessible local disk
}

// Cluster builds the storage layout for n nodes: one shared FS instance
// and, when localProfile is non-nil, a private local disk per node.
func Cluster(n int, shared Profile, localProfile *Profile) ([]*Node, error) {
	sharedFS, err := New(shared)
	if err != nil {
		return nil, err
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = &Node{Shared: sharedFS}
		if localProfile != nil {
			local, err := New(*localProfile)
			if err != nil {
				return nil, err
			}
			nodes[i].Local = local
		}
	}
	return nodes, nil
}
