package vfs

import (
	"bytes"
	"math"
	"testing"
)

// TestCreateKeepsHandles: re-creating an existing path must truncate the
// SAME File object, not replace it — handles other ranks already hold must
// keep addressing the live file (regression: old handles silently wrote to
// an orphaned object while readers saw the fresh one).
func TestCreateKeepsHandles(t *testing.T) {
	fs := MustNew(RAMDisk())
	old := fs.Create("shared.out")
	old.WriteAt([]byte("stale content"), 0)

	fresh := fs.Create("shared.out") // truncate, not replace
	if fresh != old {
		t.Fatal("Create returned a different File object for an existing path")
	}
	if old.Size() != 0 {
		t.Fatalf("old handle sees size %d after re-create, want 0", old.Size())
	}

	// A write through the OLD handle must be visible through the namespace.
	old.WriteAt([]byte("new content"), 0)
	got, err := fs.ReadFile("shared.out")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("new content")) {
		t.Fatalf("ReadFile = %q, want %q (old handle detached from namespace)", got, "new content")
	}
}

// TestInjectFaultsAccounting: a faulted access pays each failed attempt's
// latency plus exponentially doubling backoff, and FaultStats books every
// retry and backoff second.
func TestInjectFaultsAccounting(t *testing.T) {
	p := Profile{Name: "t", Latency: 0.005, Bandwidth: 1e6, Channels: 1}
	fs := MustNew(p)
	if err := fs.InjectFaults(FaultPlan{FirstOp: 1, Failures: 3, Backoff: 0.01}); err != nil {
		t.Fatal(err)
	}
	end := fs.Access(0, 1000) // 1ms transfer
	// 3 failed attempts: (latency+0.01) + (latency+0.02) + (latency+0.04),
	// then the successful attempt: latency + transfer.
	want := 3*p.Latency + (0.01 + 0.02 + 0.04) + p.Latency + 0.001
	if math.Abs(end-want) > 1e-12 {
		t.Fatalf("faulted access end = %g, want %g", end, want)
	}
	faulted, retries, backoff := fs.FaultStats()
	if faulted != 1 || retries != 3 || math.Abs(backoff-0.07) > 1e-12 {
		t.Fatalf("FaultStats = (%d, %d, %g), want (1, 3, 0.07)", faulted, retries, backoff)
	}

	// The next access (ordinal 2, not scheduled) pays no fault cost.
	end2 := fs.Access(end, 1000)
	if want2 := end + p.Latency + 0.001; math.Abs(end2-want2) > 1e-12 {
		t.Fatalf("clean access end = %g, want %g", end2, want2)
	}
	if faulted, retries, _ := fs.FaultStats(); faulted != 1 || retries != 3 {
		t.Fatalf("clean access changed FaultStats to (%d, %d)", faulted, retries)
	}
}

// TestFaultPlanEveryAndCount: Every selects the cadence, Count caps how
// many accesses fault in total.
func TestFaultPlanEveryAndCount(t *testing.T) {
	fs := MustNew(RAMDisk())
	if err := fs.InjectFaults(FaultPlan{FirstOp: 1, Every: 2, Count: 2, Failures: 1, Backoff: 0.001}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		fs.Access(0, 0)
	}
	// Ops 1 and 3 fault; op 5 would match the cadence but Count=2 stops it.
	faulted, retries, _ := fs.FaultStats()
	if faulted != 2 || retries != 2 {
		t.Fatalf("FaultStats = (%d, %d), want (2, 2)", faulted, retries)
	}
}

// TestInjectFaultsValidate rejects malformed plans and lets a zero-Failures
// plan disable injection.
func TestInjectFaultsValidate(t *testing.T) {
	fs := MustNew(RAMDisk())
	for _, p := range []FaultPlan{
		{FirstOp: 0, Failures: 1},
		{FirstOp: 1, Every: -1, Failures: 1},
		{FirstOp: 1, Count: -1, Failures: 1},
		{FirstOp: 1, Failures: -1},
		{FirstOp: 1, Failures: 1, Backoff: -0.1},
	} {
		if err := fs.InjectFaults(p); err == nil {
			t.Errorf("plan %+v accepted", p)
		}
	}
	if err := fs.InjectFaults(FaultPlan{FirstOp: 1, Failures: 2, Backoff: 0.01}); err != nil {
		t.Fatal(err)
	}
	if err := fs.InjectFaults(FaultPlan{FirstOp: 1}); err != nil { // disable
		t.Fatal(err)
	}
	fs.Access(0, 100)
	if faulted, _, _ := fs.FaultStats(); faulted != 0 {
		t.Fatalf("disabled plan still faulted %d ops", faulted)
	}
}
