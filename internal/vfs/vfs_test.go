package vfs

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestProfiles(t *testing.T) {
	for _, p := range []Profile{XFSLike(), NFSLike(), LocalDisk(), RAMDisk()} {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
	if err := (Profile{Bandwidth: 0, Channels: 1}).Validate(); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if err := (Profile{Bandwidth: 1, Channels: 0}).Validate(); err == nil {
		t.Fatal("zero channels accepted")
	}
}

func TestFileReadWrite(t *testing.T) {
	fs := MustNew(RAMDisk())
	f := fs.Create("a.dat")
	f.WriteAt([]byte("hello"), 0)
	f.WriteAt([]byte("world"), 10) // hole in the middle
	if f.Size() != 15 {
		t.Fatalf("size = %d", f.Size())
	}
	buf := make([]byte, 15)
	if n := f.ReadAt(buf, 0); n != 15 {
		t.Fatalf("read %d", n)
	}
	if string(buf[:5]) != "hello" || string(buf[10:]) != "world" {
		t.Fatalf("contents: %q", buf)
	}
	for i := 5; i < 10; i++ {
		if buf[i] != 0 {
			t.Fatal("hole not zero-filled")
		}
	}
	// Read past EOF.
	if n := f.ReadAt(buf, 20); n != 0 {
		t.Fatalf("read past EOF returned %d", n)
	}
	// Short read at EOF.
	if n := f.ReadAt(buf, 12); n != 3 {
		t.Fatalf("short read returned %d", n)
	}
}

func TestTruncate(t *testing.T) {
	fs := MustNew(RAMDisk())
	f := fs.Create("t")
	f.WriteAt([]byte("abcdef"), 0)
	f.Truncate(3)
	if f.Size() != 3 {
		t.Fatalf("size after shrink = %d", f.Size())
	}
	f.Truncate(5)
	if f.Size() != 5 {
		t.Fatalf("size after grow = %d", f.Size())
	}
	snap := f.Snapshot()
	if string(snap[:3]) != "abc" || snap[3] != 0 || snap[4] != 0 {
		t.Fatalf("grown area: %q", snap)
	}
}

func TestNamespace(t *testing.T) {
	fs := MustNew(RAMDisk())
	fs.WriteFile("b", []byte("2"))
	fs.WriteFile("a", []byte("1"))
	if _, err := fs.Open("missing"); err == nil {
		t.Fatal("open of missing file succeeded")
	}
	got := fs.List()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("list = %v", got)
	}
	data, err := fs.ReadFile("a")
	if err != nil || string(data) != "1" {
		t.Fatalf("readfile: %q %v", data, err)
	}
	if err := fs.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("a"); err == nil {
		t.Fatal("double remove succeeded")
	}
	f := fs.OpenOrCreate("c")
	if f == nil || fs.OpenOrCreate("c") != f {
		t.Fatal("OpenOrCreate not idempotent")
	}
}

func TestAccessSingleChannelSerializes(t *testing.T) {
	fs := MustNew(Profile{Name: "t", Latency: 1, Bandwidth: 100, Channels: 1})
	// Two concurrent 100-byte accesses at t=0: second queues behind first.
	end1 := fs.Access(0, 100) // 1 + 1 = 2
	end2 := fs.Access(0, 100) // starts at 2 → ends at 4
	if end1 != 2 {
		t.Fatalf("end1 = %g", end1)
	}
	if end2 != 4 {
		t.Fatalf("end2 = %g, want 4 (serialized)", end2)
	}
}

func TestAccessMultiChannelParallel(t *testing.T) {
	fs := MustNew(Profile{Name: "t", Latency: 1, Bandwidth: 100, Channels: 4})
	for i := 0; i < 4; i++ {
		if end := fs.Access(0, 100); end != 2 {
			t.Fatalf("stream %d end = %g, want 2 (parallel)", i, end)
		}
	}
	// Fifth access queues.
	if end := fs.Access(0, 100); end != 4 {
		t.Fatalf("fifth stream end = %g, want 4", end)
	}
}

func TestAccessIdleChannelsRecover(t *testing.T) {
	fs := MustNew(Profile{Name: "t", Latency: 0, Bandwidth: 100, Channels: 1})
	fs.Access(0, 100) // busy until 1
	if end := fs.Access(10, 100); end != 11 {
		t.Fatalf("late access end = %g, want 11 (no queueing)", end)
	}
}

func TestAccessMonotoneQuick(t *testing.T) {
	fs := MustNew(XFSLike())
	f := func(start uint16, size uint16) bool {
		s := float64(start)
		end := fs.Access(s, int64(size))
		return end >= s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	fs := MustNew(RAMDisk())
	f := fs.Create("s")
	f.WriteAt(make([]byte, 100), 0)
	buf := make([]byte, 40)
	f.ReadAt(buf, 0)
	fs.Access(0, 1)
	ops, br, bw := fs.Stats()
	if ops != 1 || br != 40 || bw != 100 {
		t.Fatalf("stats = %d %d %d", ops, br, bw)
	}
}

func TestCluster(t *testing.T) {
	nodes, err := Cluster(4, XFSLike(), ptr(LocalDisk()))
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 4 {
		t.Fatalf("%d nodes", len(nodes))
	}
	for i := 1; i < 4; i++ {
		if nodes[i].Shared != nodes[0].Shared {
			t.Fatal("shared FS not shared")
		}
		if nodes[i].Local == nodes[0].Local || nodes[i].Local == nil {
			t.Fatal("local disks must be private")
		}
	}
	nodes, err = Cluster(2, NFSLike(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if nodes[0].Local != nil {
		t.Fatal("diskless cluster has a local disk")
	}
	// Shared writes visible across nodes.
	nodes[0].Shared.WriteFile("x", []byte("shared"))
	data, err := nodes[1].Shared.ReadFile("x")
	if err != nil || !bytes.Equal(data, []byte("shared")) {
		t.Fatal("shared file not visible on other node")
	}
}

func ptr(p Profile) *Profile { return &p }
