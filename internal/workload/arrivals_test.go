package workload

import (
	"math"
	"reflect"
	"testing"

	"parblast/internal/seq"
)

func testQueries(t *testing.T, n int) []*seq.Sequence {
	t.Helper()
	db, err := SynthesizeDB(DBConfig{Kind: seq.Protein, NumSeqs: n, MeanLen: 40, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestArrivalsDeterministic(t *testing.T) {
	qs := testQueries(t, 20)
	cfg := ArrivalConfig{Rate: 4, Burst: 3, BatchMean: 3, BatchDist: BatchGeometric, Seed: 7}
	a, err := Arrivals(qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Arrivals(qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed/config produced different batch sequences")
	}
	c, err := Arrivals(qs, ArrivalConfig{Rate: 4, Burst: 3, BatchMean: 3, BatchDist: BatchGeometric, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical batch sequences")
	}
}

// TestArrivalsPartition: every query appears exactly once, in order, and
// batch ids are the arrival order.
func TestArrivalsPartition(t *testing.T) {
	qs := testQueries(t, 17)
	for _, dist := range []string{BatchFixed, BatchUniform, BatchGeometric} {
		batches, err := Arrivals(qs, ArrivalConfig{Rate: 2, BatchMean: 4, BatchDist: dist, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		next := 0
		prevArrival := 0.0
		for i, b := range batches {
			if b.Seq != i {
				t.Fatalf("%s: batch %d has Seq %d", dist, i, b.Seq)
			}
			if b.First != next {
				t.Fatalf("%s: batch %d starts at query %d, want %d", dist, i, b.First, next)
			}
			if len(b.Queries) == 0 {
				t.Fatalf("%s: batch %d is empty", dist, i)
			}
			for j, q := range b.Queries {
				if q != qs[next+j] {
					t.Fatalf("%s: batch %d query %d is not input query %d", dist, i, j, next+j)
				}
			}
			if b.Arrival < prevArrival {
				t.Fatalf("%s: arrivals not monotone at batch %d", dist, i)
			}
			prevArrival = b.Arrival
			next += len(b.Queries)
		}
		if next != len(qs) {
			t.Fatalf("%s: %d queries batched, want %d", dist, next, len(qs))
		}
	}
}

// TestArrivalsExactRateScaling: with the same seed, doubling Rate halves
// every arrival time bit-exactly and leaves the partition untouched — the
// property that makes the SLA sweep's monotone-p99 gate deterministic.
func TestArrivalsExactRateScaling(t *testing.T) {
	qs := testQueries(t, 24)
	base := ArrivalConfig{Rate: 1, Burst: 4, BatchMean: 2, BatchDist: BatchUniform, Seed: 5}
	slow, err := Arrivals(qs, base)
	if err != nil {
		t.Fatal(err)
	}
	fast := base
	fast.Rate = 2
	fastB, err := Arrivals(qs, fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(slow) != len(fastB) {
		t.Fatalf("partition changed with rate: %d vs %d batches", len(slow), len(fastB))
	}
	for i := range slow {
		if slow[i].First != fastB[i].First || len(slow[i].Queries) != len(fastB[i].Queries) {
			t.Fatalf("batch %d boundaries changed with rate", i)
		}
		if fastB[i].Arrival != slow[i].Arrival/2 {
			t.Fatalf("batch %d arrival %g at rate 2, want exactly %g", i, fastB[i].Arrival, slow[i].Arrival/2)
		}
	}
}

// TestArrivalsMMPP: a burst factor > 1 produces a different (bursty) gap
// sequence with the same long-run pacing order of magnitude, and the mean
// batch size tracks BatchMean for the geometric distribution.
func TestArrivalsMMPP(t *testing.T) {
	qs := testQueries(t, 400)
	plain, err := Arrivals(qs, ArrivalConfig{Rate: 10, BatchMean: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	bursty, err := Arrivals(qs, ArrivalConfig{Rate: 10, Burst: 8, BurstDwell: 6, BatchMean: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 400 || len(bursty) != 400 {
		t.Fatalf("batch counts: %d plain, %d bursty", len(plain), len(bursty))
	}
	// Gap variance must rise under bursts (that is what MMPP is for).
	variance := func(bs []Batch) float64 {
		var gaps []float64
		prev := 0.0
		for _, b := range bs {
			gaps = append(gaps, b.Arrival-prev)
			prev = b.Arrival
		}
		var mean float64
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))
		var v float64
		for _, g := range gaps {
			v += (g - mean) * (g - mean)
		}
		return v / float64(len(gaps))
	}
	if variance(bursty) <= variance(plain) {
		t.Fatalf("burst variance %g not above plain %g", variance(bursty), variance(plain))
	}
	// Long-run mean rate stays near Rate for both (within a loose
	// statistical band — the draw count is fixed by the seed, so this is
	// deterministic, not flaky).
	for name, bs := range map[string][]Batch{"plain": plain, "bursty": bursty} {
		mean := bs[len(bs)-1].Arrival / float64(len(bs))
		if math.Abs(mean-0.1) > 0.05 {
			t.Fatalf("%s mean gap %g, want ≈0.1", name, mean)
		}
	}
	// Geometric sizes average out near BatchMean.
	geo, err := Arrivals(qs, ArrivalConfig{Rate: 10, BatchMean: 5, BatchDist: BatchGeometric, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	meanSize := float64(len(qs)) / float64(len(geo))
	if meanSize < 3 || meanSize > 8 {
		t.Fatalf("geometric mean batch size %g, want ≈5", meanSize)
	}
}

func TestArrivalsValidation(t *testing.T) {
	qs := testQueries(t, 2)
	for _, cfg := range []ArrivalConfig{
		{Rate: 0},
		{Rate: -1},
		{Rate: math.Inf(1)},
		{Rate: 1, Burst: 0.5},
		{Rate: 1, BatchMean: -2},
		{Rate: 1, BatchDist: "zipf"},
		{Rate: 1, BurstDwell: -1},
	} {
		if _, err := Arrivals(qs, cfg); err == nil {
			t.Fatalf("config %+v accepted, want error", cfg)
		}
	}
	empty, err := Arrivals(nil, ArrivalConfig{Rate: 1})
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty query set: %v, %d batches", err, len(empty))
	}
}
