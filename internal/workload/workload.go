// Package workload generates the synthetic inputs the reproduction's
// experiments run on: protein/DNA databases with realistic residue
// frequencies, and query sets sampled from the database itself — the
// paper's own methodology ("we created several input query sets ... by
// randomly sampling the nr database itself").
//
// Everything is seeded and deterministic, so experiment rows are
// reproducible run to run.
package workload

import (
	"fmt"
	"math/rand"

	"parblast/internal/seq"
)

// Robinson & Robinson amino-acid background frequencies (per mille),
// indexed in the seq.ProteinLetters order ARNDCQEGHILKMFPSTWYV. These are
// the frequencies NCBI BLAST's statistics assume, so synthetic sequences
// score realistically against BLOSUM62.
var proteinFreqs = [20]int{
	78, 51, 45, 54, 19, 43, 63, 74, 22, 51,
	90, 57, 22, 39, 52, 71, 58, 13, 32, 64,
}

// DBConfig describes a synthetic database.
type DBConfig struct {
	// Kind selects protein or DNA residues.
	Kind seq.Kind
	// NumSeqs and MeanLen control size; lengths are uniform in
	// [MeanLen/2, 3·MeanLen/2).
	NumSeqs int
	MeanLen int
	// Seed makes generation reproducible.
	Seed int64
	// IDPrefix names sequences <prefix>_NNNNNN.
	IDPrefix string
	// FamilySize groups sequences into homologous families: the database
	// holds NumSeqs/FamilySize independent founders, each followed by
	// FamilySize-1 mutated copies. Real protein repositories like nr are
	// highly redundant, and family structure is what makes a query hit
	// many subjects — the regime the paper's result-merging optimizations
	// target. 0 or 1 disables grouping.
	FamilySize int
	// FamilyMutation is the per-residue mutation rate between family
	// members (default 0.15 when FamilySize > 1).
	FamilyMutation float64
}

// Validate rejects empty configurations.
func (c DBConfig) Validate() error {
	if c.NumSeqs < 1 || c.MeanLen < 4 {
		return fmt.Errorf("workload: need ≥1 sequences of mean length ≥4, got %d×%d",
			c.NumSeqs, c.MeanLen)
	}
	return nil
}

// SynthesizeDB generates the database sequences.
func SynthesizeDB(cfg DBConfig) ([]*seq.Sequence, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.IDPrefix == "" {
		cfg.IDPrefix = "syn"
	}
	alpha := seq.AlphabetFor(cfg.Kind)
	rng := rand.New(rand.NewSource(cfg.Seed))
	sampler := newResidueSampler(cfg.Kind)
	family := cfg.FamilySize
	if family < 1 {
		family = 1
	}
	mut := cfg.FamilyMutation
	if family > 1 && mut == 0 {
		mut = 0.15
	}
	out := make([]*seq.Sequence, cfg.NumSeqs)
	var founder []byte
	for i := range out {
		var res []byte
		if family > 1 && i%family != 0 && founder != nil {
			// Family member: mutated copy of the founder.
			res = make([]byte, len(founder))
			copy(res, founder)
			for j := range res {
				if rng.Float64() < mut {
					res[j] = sampler.draw(rng)
				}
			}
		} else {
			n := cfg.MeanLen/2 + rng.Intn(cfg.MeanLen)
			if n < 4 {
				n = 4
			}
			res = make([]byte, n)
			for j := range res {
				res[j] = sampler.draw(rng)
			}
			founder = res
		}
		out[i] = &seq.Sequence{
			Residues: res,
			Alpha:    alpha,
		}
	}
	if family > 1 {
		// Interleave family members across the database: member m of
		// family f moves to position m·numFamilies + f. Real repositories
		// are not sorted by homology, and contiguous families would make
		// one worker own every hit of a query — skewing any partitioned
		// search. (IDs are assigned after the reorder, below.)
		numFamilies := (cfg.NumSeqs + family - 1) / family
		reordered := make([]*seq.Sequence, 0, cfg.NumSeqs)
		for m := 0; m < family; m++ {
			for f := 0; f < numFamilies; f++ {
				i := f*family + m
				if i < cfg.NumSeqs {
					reordered = append(reordered, out[i])
				}
			}
		}
		out = reordered
	}
	for i, s := range out {
		s.ID = fmt.Sprintf("%s_%06d", cfg.IDPrefix, i)
		s.Description = fmt.Sprintf("synthetic %s sequence %d", cfg.Kind, i)
	}
	return out, nil
}

type residueSampler struct {
	cum   []int
	total int
}

func newResidueSampler(kind seq.Kind) *residueSampler {
	s := &residueSampler{}
	if kind == seq.DNA {
		s.cum = []int{1, 2, 3, 4}
		s.total = 4
		return s
	}
	for _, f := range proteinFreqs {
		s.total += f
		s.cum = append(s.cum, s.total)
	}
	return s
}

func (s *residueSampler) draw(rng *rand.Rand) byte {
	x := rng.Intn(s.total)
	for i, c := range s.cum {
		if x < c {
			return byte(i)
		}
	}
	return byte(len(s.cum) - 1)
}

// QueryConfig describes a sampled query set.
type QueryConfig struct {
	// TargetBytes is the approximate total residue volume of the set —
	// the paper parameterizes query sets by size (26 KB ... 289 KB).
	TargetBytes int
	// MeanLen is the mean query length; pieces are cut uniformly in
	// [MeanLen/2, 3·MeanLen/2).
	MeanLen int
	// MutationRate applies point mutations to sampled pieces so queries
	// are homologous rather than identical (0 = exact substrings).
	MutationRate float64
	// Seed makes sampling reproducible.
	Seed int64
}

// Validate rejects unusable configurations.
func (c QueryConfig) Validate() error {
	if c.TargetBytes < 8 || c.MeanLen < 8 {
		return fmt.Errorf("workload: query config too small: %+v", c)
	}
	if c.MutationRate < 0 || c.MutationRate > 1 {
		return fmt.Errorf("workload: mutation rate %g outside [0,1]", c.MutationRate)
	}
	return nil
}

// SampleQueries cuts query sequences out of database sequences until the
// target volume is reached.
func SampleQueries(db []*seq.Sequence, cfg QueryConfig) ([]*seq.Sequence, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(db) == 0 {
		return nil, fmt.Errorf("workload: empty database to sample from")
	}
	alpha := db[0].Alpha
	sampler := newResidueSampler(alpha.Kind())
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []*seq.Sequence
	total := 0
	for qi := 0; total < cfg.TargetBytes; qi++ {
		src := db[rng.Intn(len(db))]
		want := cfg.MeanLen/2 + rng.Intn(cfg.MeanLen)
		if want > src.Len() {
			want = src.Len()
		}
		if want < 8 {
			continue
		}
		start := rng.Intn(src.Len() - want + 1)
		res := make([]byte, want)
		copy(res, src.Residues[start:start+want])
		for j := range res {
			if cfg.MutationRate > 0 && rng.Float64() < cfg.MutationRate {
				res[j] = sampler.draw(rng)
			}
		}
		out = append(out, &seq.Sequence{
			ID:          fmt.Sprintf("query_%04d", qi),
			Description: fmt.Sprintf("sampled from %s at %d", src.ID, start),
			Residues:    res,
			Alpha:       alpha,
		})
		total += want
	}
	return out, nil
}

// TotalResidues sums sequence lengths.
func TotalResidues(seqs []*seq.Sequence) int64 {
	var n int64
	for _, s := range seqs {
		n += int64(s.Len())
	}
	return n
}
