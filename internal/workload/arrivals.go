package workload

import (
	"fmt"
	"math"
	"math/rand"

	"parblast/internal/seq"
)

// Open-loop arrival generation for the serving mode: a fixed query set is
// partitioned into batches that arrive over virtual time, independent of
// how fast the cluster drains them (open loop — the generator never waits
// for the server, which is what exposes saturation).
//
// Two invariants matter for the SLA experiments:
//
//  1. Determinism: the same (queries, config) yields the identical batch
//     sequence, byte for byte.
//  2. Exact rate scaling: with the same seed, changing Rate rescales every
//     arrival time by exactly 1/Rate and changes NOTHING else — the batch
//     partition and the burst phase pattern are rate-independent. Arrival
//     times are accumulated in unit-rate time and divided by Rate once,
//     so power-of-two rate ratios scale bit-exactly. This is what makes
//     "p99 is non-decreasing in arrival rate" a deterministic gate
//     (Lindley's recursion: shrinking every inter-arrival gap can only
//     grow queueing delay when service times are unchanged).

// Batch-size distribution names.
const (
	BatchFixed     = "fixed"     // every batch holds exactly BatchMean queries
	BatchUniform   = "uniform"   // uniform in [1, 2·BatchMean-1], mean BatchMean
	BatchGeometric = "geometric" // geometric on {1,2,...}, mean BatchMean
)

// ArrivalConfig describes an open-loop batch arrival process.
type ArrivalConfig struct {
	// Rate is the mean batch-arrival rate in batches per virtual second
	// (must be > 0).
	Rate float64
	// Burst, when > 1, turns the plain Poisson process into a two-state
	// MMPP: phases alternate between a calm state and a burst state whose
	// instantaneous rate is Burst× the calm one. The two factors are
	// normalized so the LONG-RUN MEAN GAP stays 1/Rate (dwell is counted
	// in batches, so the factors' harmonic mean must be 1: calm =
	// Burst/(2·Burst−1), burst = Burst²/(2·Burst−1)). 0 or 1 selects
	// plain Poisson.
	Burst float64
	// BurstDwell is the mean number of consecutive batches per MMPP
	// phase (geometric dwell; default 8). Dwell is counted in batches,
	// not seconds, so the phase pattern is rate-independent.
	BurstDwell int
	// BatchMean is the mean queries per batch (default 1).
	BatchMean int
	// BatchDist selects the batch-size distribution: BatchFixed (default),
	// BatchUniform, or BatchGeometric.
	BatchDist string
	// Seed makes the process reproducible.
	Seed int64
}

// Validate rejects unusable configurations and fills defaults into a copy.
func (c ArrivalConfig) validated() (ArrivalConfig, error) {
	if !(c.Rate > 0) || math.IsInf(c.Rate, 1) {
		return c, fmt.Errorf("workload: arrival rate must be positive and finite, got %g", c.Rate)
	}
	if c.Burst < 0 {
		return c, fmt.Errorf("workload: burst factor must be ≥ 1 (or 0 for plain Poisson), got %g", c.Burst)
	}
	if c.Burst == 0 {
		c.Burst = 1
	}
	if c.Burst < 1 {
		return c, fmt.Errorf("workload: burst factor must be ≥ 1, got %g", c.Burst)
	}
	if c.BurstDwell < 0 {
		return c, fmt.Errorf("workload: burst dwell must be ≥ 1 batches, got %d", c.BurstDwell)
	}
	if c.BurstDwell == 0 {
		c.BurstDwell = 8
	}
	if c.BatchMean < 0 {
		return c, fmt.Errorf("workload: batch mean must be ≥ 1, got %d", c.BatchMean)
	}
	if c.BatchMean == 0 {
		c.BatchMean = 1
	}
	switch c.BatchDist {
	case "":
		c.BatchDist = BatchFixed
	case BatchFixed, BatchUniform, BatchGeometric:
	default:
		return c, fmt.Errorf("workload: unknown batch distribution %q (want %s, %s, or %s)",
			c.BatchDist, BatchFixed, BatchUniform, BatchGeometric)
	}
	return c, nil
}

// Batch is one admitted unit of work: a contiguous slice of the query set
// with its open-loop arrival time. Seq doubles as the trace-batch id the
// engines stamp on every message the batch causes.
type Batch struct {
	// Seq is the arrival-order batch id, 0-based.
	Seq int
	// Arrival is the batch's virtual arrival time.
	Arrival float64
	// First is the index of the batch's first query in the original set.
	First int
	// Queries is the batch's query subset (a subslice of the input).
	Queries []*seq.Sequence
}

// Arrivals partitions the query set into batches and assigns open-loop
// arrival times. Every query appears in exactly one batch, in input order;
// the final batch may be short. The empty query set yields no batches.
func Arrivals(queries []*seq.Sequence, cfg ArrivalConfig) ([]Batch, error) {
	cfg, err := cfg.validated()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Two-state MMPP phase machine. rateFactor multiplies the base rate
	// in the current phase; phasesLeft counts batches until the next
	// switch. Plain Poisson is the degenerate single phase (factor 1).
	calm := cfg.Burst / (2*cfg.Burst - 1)
	burst := cfg.Burst * calm
	inBurst := false
	phaseLeft := 0
	nextDwell := func() int {
		// Geometric dwell with mean BurstDwell, support {1,2,...}.
		p := 1 / float64(cfg.BurstDwell)
		d := 1 + int(math.Floor(math.Log(1-rng.Float64())/math.Log(1-p)))
		if d < 1 {
			d = 1
		}
		return d
	}
	batchSize := func() int {
		switch cfg.BatchDist {
		case BatchUniform:
			return 1 + rng.Intn(2*cfg.BatchMean-1)
		case BatchGeometric:
			p := 1 / float64(cfg.BatchMean)
			n := 1 + int(math.Floor(math.Log(1-rng.Float64())/math.Log(1-p)))
			if n < 1 {
				n = 1
			}
			return n
		default:
			return cfg.BatchMean
		}
	}
	if cfg.BatchMean == 1 {
		// Degenerate distributions: all three collapse to size 1, but the
		// uniform/geometric draws above would still consume rng state (and
		// Intn(1) panics on a zero bound is avoided by 2·1-1 = 1). Pin the
		// collapse explicitly so BatchDist never changes the rng sequence
		// when it cannot change the partition.
		batchSize = func() int { return 1 }
	}

	var out []Batch
	unitTime := 0.0 // arrival time at Rate = 1; divided by Rate per batch
	for first := 0; first < len(queries); {
		if cfg.Burst > 1 {
			if phaseLeft == 0 {
				inBurst = !inBurst
				phaseLeft = nextDwell()
			}
			phaseLeft--
		}
		factor := 1.0
		if cfg.Burst > 1 {
			factor = calm
			if inBurst {
				factor = burst
			}
		}
		unitTime += rng.ExpFloat64() / factor
		n := batchSize()
		if first+n > len(queries) {
			n = len(queries) - first
		}
		out = append(out, Batch{
			Seq:     len(out),
			Arrival: unitTime / cfg.Rate,
			First:   first,
			Queries: queries[first : first+n],
		})
		first += n
	}
	return out, nil
}
