package workload

import (
	"testing"

	"parblast/internal/seq"
)

func TestSynthesizeDBDeterministic(t *testing.T) {
	cfg := DBConfig{Kind: seq.Protein, NumSeqs: 20, MeanLen: 100, Seed: 7}
	a, err := SynthesizeDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SynthesizeDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Letters() != b[i].Letters() {
			t.Fatalf("sequence %d differs between runs", i)
		}
	}
	cfg.Seed = 8
	c, _ := SynthesizeDB(cfg)
	same := true
	for i := range a {
		if a[i].Letters() != c[i].Letters() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical databases")
	}
}

func TestSynthesizeDBProperties(t *testing.T) {
	seqs, err := SynthesizeDB(DBConfig{Kind: seq.Protein, NumSeqs: 200, MeanLen: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 200 {
		t.Fatalf("%d sequences", len(seqs))
	}
	var total int
	for _, s := range seqs {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		if s.Len() < 75 || s.Len() >= 225 {
			t.Fatalf("length %d outside [75,225)", s.Len())
		}
		for _, c := range s.Residues {
			if int(c) >= seq.ProteinAlphabet.StrictSize() {
				t.Fatal("synthetic sequence contains ambiguity codes")
			}
		}
		total += s.Len()
	}
	mean := total / 200
	if mean < 120 || mean > 180 {
		t.Fatalf("mean length %d far from 150", mean)
	}
}

func TestSynthesizeDNA(t *testing.T) {
	seqs, err := SynthesizeDB(DBConfig{Kind: seq.DNA, NumSeqs: 10, MeanLen: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := [4]int{}
	for _, s := range seqs {
		if s.Alpha.Kind() != seq.DNA {
			t.Fatal("wrong alphabet")
		}
		for _, c := range s.Residues {
			counts[c]++
		}
	}
	for b, c := range counts {
		if c == 0 {
			t.Fatalf("base %d never generated", b)
		}
	}
}

func TestResidueFrequenciesRealistic(t *testing.T) {
	// Leucine (L) must be the most common residue and tryptophan (W) the
	// rarest, as in the Robinson frequencies.
	seqs, _ := SynthesizeDB(DBConfig{Kind: seq.Protein, NumSeqs: 100, MeanLen: 300, Seed: 3})
	var counts [20]int
	for _, s := range seqs {
		for _, c := range s.Residues {
			counts[c]++
		}
	}
	l := seq.ProteinAlphabet.Code('L')
	w := seq.ProteinAlphabet.Code('W')
	for i, c := range counts {
		if byte(i) != l && c > counts[l] {
			t.Fatalf("residue %c more common than L", seq.ProteinAlphabet.Letter(byte(i)))
		}
		if byte(i) != w && c < counts[w] {
			t.Fatalf("residue %c rarer than W", seq.ProteinAlphabet.Letter(byte(i)))
		}
	}
}

func TestSampleQueries(t *testing.T) {
	db, _ := SynthesizeDB(DBConfig{Kind: seq.Protein, NumSeqs: 50, MeanLen: 200, Seed: 4})
	qs, err := SampleQueries(db, QueryConfig{TargetBytes: 5000, MeanLen: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	total := int(TotalResidues(qs))
	if total < 5000 || total > 5000+200 {
		t.Fatalf("sampled %d bytes for a 5000-byte target", total)
	}
	// Exact substrings: every query must appear in some DB sequence.
	for _, q := range qs {
		found := false
		for _, s := range db {
			if containsSub(s.Residues, q.Residues) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("query %s is not a substring of any database sequence", q.ID)
		}
	}
}

func containsSub(hay, needle []byte) bool {
	if len(needle) > len(hay) {
		return false
	}
outer:
	for i := 0; i+len(needle) <= len(hay); i++ {
		for j := range needle {
			if hay[i+j] != needle[j] {
				continue outer
			}
		}
		return true
	}
	return false
}

func TestSampleQueriesMutated(t *testing.T) {
	db, _ := SynthesizeDB(DBConfig{Kind: seq.Protein, NumSeqs: 20, MeanLen: 200, Seed: 6})
	qs, err := SampleQueries(db, QueryConfig{TargetBytes: 2000, MeanLen: 100, MutationRate: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// With 30% mutation most queries should no longer be exact substrings.
	exact := 0
	for _, q := range qs {
		for _, s := range db {
			if containsSub(s.Residues, q.Residues) {
				exact++
				break
			}
		}
	}
	if exact > len(qs)/2 {
		t.Fatalf("%d/%d mutated queries still exact", exact, len(qs))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := SynthesizeDB(DBConfig{NumSeqs: 0, MeanLen: 100}); err == nil {
		t.Fatal("empty DB config accepted")
	}
	db, _ := SynthesizeDB(DBConfig{Kind: seq.Protein, NumSeqs: 5, MeanLen: 50, Seed: 1})
	if _, err := SampleQueries(db, QueryConfig{TargetBytes: 0, MeanLen: 50}); err == nil {
		t.Fatal("zero-byte query config accepted")
	}
	if _, err := SampleQueries(db, QueryConfig{TargetBytes: 100, MeanLen: 50, MutationRate: 2}); err == nil {
		t.Fatal("mutation rate 2 accepted")
	}
	if _, err := SampleQueries(nil, QueryConfig{TargetBytes: 100, MeanLen: 50}); err == nil {
		t.Fatal("empty database accepted")
	}
}

func TestFamilyInterleaving(t *testing.T) {
	// Family members must be spread across the database, not contiguous:
	// contiguous homologs would let one partition own every hit of a
	// query, skewing any database-segmented search.
	cfg := DBConfig{Kind: seq.Protein, NumSeqs: 120, MeanLen: 80, Seed: 11, FamilySize: 6}
	seqs, err := SynthesizeDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Identify each sequence's family by its (mutation-tolerant) best
	// match: members share ≥50% identical positions with their founder,
	// unrelated pairs essentially none. Use member 0 of family 0.
	similar := func(a, b []byte) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		same := 0
		for i := 0; i < n; i++ {
			if a[i] == b[i] {
				same++
			}
		}
		return same*2 > n
	}
	ref := seqs[0].Residues
	var positions []int
	for i, s := range seqs {
		if similar(ref, s.Residues) {
			positions = append(positions, i)
		}
	}
	if len(positions) < 4 {
		t.Fatalf("family not recognisable: %v", positions)
	}
	// Members must NOT be adjacent: minimum spacing ≈ number of families.
	for i := 1; i < len(positions); i++ {
		if positions[i]-positions[i-1] < 5 {
			t.Fatalf("family members adjacent at %v", positions)
		}
	}
}

func TestFamilyMembersAreHomologous(t *testing.T) {
	cfg := DBConfig{Kind: seq.Protein, NumSeqs: 40, MeanLen: 100, Seed: 12, FamilySize: 4}
	seqs, err := SynthesizeDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With 10 families interleaved, members of family f sit at f, f+10,
	// f+20, f+30. Check pairwise identity within one family is high.
	a, b := seqs[3].Residues, seqs[13].Residues
	if len(a) != len(b) {
		t.Fatalf("family members have different lengths: %d vs %d", len(a), len(b))
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if frac := float64(same) / float64(len(a)); frac < 0.6 {
		t.Fatalf("family identity only %.0f%%", frac*100)
	}
}
