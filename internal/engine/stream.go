package engine

// Streaming admission control for the serving mode: an open-loop arrival
// sequence meets a single-dispatch server (the warm cluster runs one batch
// at a time), mediated by a bounded FIFO queue with deterministic
// drop-newest overload shedding.
//
// The model is intentionally minimal so its behavior is provable: the
// server calls Next each time it becomes free at virtual time `now`; the
// queue replays every arrival with time ≤ now in arrival order, shedding
// any batch that arrives while the queue already holds Capacity waiting
// entries. Between two Next calls the queue only grows, so occupancy at
// each arrival instant — and therefore the shed set — is a pure function
// of the arrival times and the dispatch times, independent of host
// scheduling. That is what lets the SLA experiments pin "which batches
// were shed" byte-for-byte.

// Admission is the bounded admission queue. Not safe for concurrent use;
// the serving master owns it.
type Admission struct {
	arrivals []float64
	capacity int
	next     int   // first arrival index not yet enqueued or shed
	queue    []int // admitted batches waiting for dispatch, FIFO
	shed     []int // arrival indices dropped at their arrival instant
}

// NewAdmission builds a queue over the given arrival times (must be
// non-decreasing, as produced by workload.Arrivals). capacity bounds the
// number of batches waiting for dispatch; 0 means unbounded.
func NewAdmission(arrivals []float64, capacity int) *Admission {
	return &Admission{arrivals: arrivals, capacity: capacity}
}

// admitUpTo replays arrivals with time ≤ now into the queue, shedding on
// overflow (drop-newest: the arriving batch is the one dropped).
func (a *Admission) admitUpTo(now float64) {
	for a.next < len(a.arrivals) && a.arrivals[a.next] <= now {
		if a.capacity > 0 && len(a.queue) >= a.capacity {
			a.shed = append(a.shed, a.next)
		} else {
			a.queue = append(a.queue, a.next)
		}
		a.next++
	}
}

// Next returns the next batch to dispatch when the server becomes free at
// virtual time now: the queue head if any batch is waiting, otherwise the
// next future arrival (the server idles until it lands — its dispatch time
// is its arrival time). ok is false when the stream is exhausted. The
// returned arrival time is the batch's admission clock — latency baselines
// measure from it, never from the dispatch.
func (a *Admission) Next(now float64) (batch int, arrival float64, ok bool) {
	a.admitUpTo(now)
	if len(a.queue) > 0 {
		batch = a.queue[0]
		a.queue = a.queue[1:]
		return batch, a.arrivals[batch], true
	}
	if a.next < len(a.arrivals) {
		// Idle server: the next arrival is dispatched the instant it
		// lands, so it can never be shed.
		batch = a.next
		a.next++
		return batch, a.arrivals[batch], true
	}
	return 0, 0, false
}

// Depth returns the current number of waiting batches (for tests and
// queue-depth telemetry).
func (a *Admission) Depth() int { return len(a.queue) }

// ShedSeqs returns the arrival indices shed so far, in arrival order. The
// list is complete once Next has returned ok=false.
func (a *Admission) ShedSeqs() []int { return append([]int(nil), a.shed...) }

// ServeStats is the per-stream accounting a serving run returns alongside
// its RunResult: one entry per DISPATCHED batch (in dispatch order), plus
// the shed set. All times are virtual.
type ServeStats struct {
	// Arrivals counts every generated batch; Admitted the dispatched
	// ones; Shed the dropped ones. Arrivals == Admitted + Shed.
	Arrivals int
	Admitted int
	Shed     int
	// ShedSeqs lists the shed batches' arrival-order ids.
	ShedSeqs []int
	// Per-dispatched-batch parallel slices, in dispatch order.
	BatchSeq     []int     // arrival-order batch id
	BatchArrival []float64 // admission clock (open-loop arrival time)
	BatchStart   []float64 // master clock when dispatch began
	BatchDone    []float64 // master clock when the batch's output landed
	BatchQueries []int     // queries in the batch
}

// RecordDispatch appends one dispatched batch's accounting.
func (s *ServeStats) RecordDispatch(seq int, arrival, start, done float64, queries int) {
	s.Admitted++
	s.BatchSeq = append(s.BatchSeq, seq)
	s.BatchArrival = append(s.BatchArrival, arrival)
	s.BatchStart = append(s.BatchStart, start)
	s.BatchDone = append(s.BatchDone, done)
	s.BatchQueries = append(s.BatchQueries, queries)
}
