package engine

import (
	"encoding/binary"
	"fmt"
	"math"

	"parblast/internal/blast"
	"parblast/internal/seq"
)

// Compact binary codecs for the hot protocol messages.
//
// encoding/gob resends type descriptors with every message (each encoder
// is independent), which adds several hundred bytes of framing to even an
// empty result submission. At cluster scale that framing is noise; at this
// reproduction's scale it would drown the very message-volume asymmetry
// §3.2 is about. The result-merging protocols therefore use a hand-rolled
// varint codec: a few bytes per field, zero framing. gob remains in use
// for the one-shot job broadcast, where convenience wins.

// Writer appends varint-framed primitives to a buffer.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Int appends a zig-zag varint.
func (w *Writer) Int(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// Uint appends a uvarint.
func (w *Writer) Uint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Float appends a float64 as its IEEE bits.
func (w *Writer) Float(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Blob appends a length-prefixed byte slice.
func (w *Writer) Blob(b []byte) {
	w.Uint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Reader consumes what Writer produced. The first decode error sticks; Err
// must be checked after the last field.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader wraps an encoded buffer.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("engine: codec: truncated %s at offset %d", what, r.off)
	}
}

// Int reads a zig-zag varint.
func (r *Reader) Int() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return v
}

// Uint reads a uvarint.
func (r *Reader) Uint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

// Float reads a float64.
func (r *Reader) Float() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.data) {
		r.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := int(r.Uint())
	if r.err != nil {
		return ""
	}
	if n < 0 || r.off+n > len(r.data) {
		r.fail("string")
		return ""
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s
}

// Blob reads a length-prefixed byte slice (copied).
func (r *Reader) Blob() []byte {
	n := int(r.Uint())
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.data) {
		r.fail("blob")
		return nil
	}
	out := make([]byte, n)
	copy(out, r.data[r.off:r.off+n])
	r.off += n
	return out
}

// --- message codecs ---------------------------------------------------------

// EncodeWork appends work counters.
func EncodeWork(w *Writer, wc blast.WorkCounters) {
	w.Int(wc.ResiduesScanned)
	w.Int(wc.SeedHits)
	w.Int(wc.UngappedExtensions)
	w.Int(wc.UngappedCells)
	w.Int(wc.GappedExtensions)
	w.Int(wc.GappedCells)
	w.Int(wc.TracebackCells)
	w.Int(wc.HSPsFound)
	w.Int(wc.IndexWords)
}

// DecodeWork reads work counters.
func DecodeWork(r *Reader) blast.WorkCounters {
	return blast.WorkCounters{
		ResiduesScanned:    r.Int(),
		SeedHits:           r.Int(),
		UngappedExtensions: r.Int(),
		UngappedCells:      r.Int(),
		GappedExtensions:   r.Int(),
		GappedCells:        r.Int(),
		TracebackCells:     r.Int(),
		HSPsFound:          r.Int(),
		IndexWords:         r.Int(),
	}
}

// EncodeHitMeta appends one metadata record.
func EncodeHitMeta(w *Writer, h HitMeta) {
	w.Int(int64(h.OID))
	w.Int(int64(h.Worker))
	w.String(h.ID)
	w.String(h.Defline)
	w.Int(int64(h.SubjLen))
	w.Int(int64(h.Score))
	w.Float(h.BitScore)
	w.Float(h.EValue)
	w.Int(int64(h.NumHSPs))
	w.Int(h.BlockSize)
}

// DecodeHitMeta reads one metadata record.
func DecodeHitMeta(r *Reader) HitMeta {
	return HitMeta{
		OID:       int(r.Int()),
		Worker:    int(r.Int()),
		ID:        r.String(),
		Defline:   r.String(),
		SubjLen:   int(r.Int()),
		Score:     int(r.Int()),
		BitScore:  r.Float(),
		EValue:    r.Float(),
		NumHSPs:   int(r.Int()),
		BlockSize: r.Int(),
	}
}

// EncodeQueryMeta appends one per-query submission.
func EncodeQueryMeta(w *Writer, qm QueryMeta) {
	w.Int(int64(qm.QueryIndex))
	w.Int(int64(qm.Fragment))
	EncodeWork(w, qm.Work)
	w.Uint(uint64(len(qm.Hits)))
	for _, h := range qm.Hits {
		EncodeHitMeta(w, h)
	}
}

// DecodeQueryMeta reads one per-query submission.
func DecodeQueryMeta(r *Reader) QueryMeta {
	qm := QueryMeta{
		QueryIndex: int(r.Int()),
		Fragment:   int(r.Int()),
		Work:       DecodeWork(r),
	}
	n := int(r.Uint())
	if r.Err() != nil || n < 0 || n > 1<<24 {
		return qm
	}
	qm.Hits = make([]HitMeta, 0, n)
	for i := 0; i < n; i++ {
		qm.Hits = append(qm.Hits, DecodeHitMeta(r))
	}
	return qm
}

// EncodeWireHSP appends one HSP.
func EncodeWireHSP(w *Writer, h WireHSP) {
	w.Int(int64(h.QueryFrom))
	w.Int(int64(h.QueryTo))
	w.Int(int64(h.SubjFrom))
	w.Int(int64(h.SubjTo))
	w.Int(int64(h.Score))
	w.Float(h.BitScore)
	w.Float(h.EValue)
	w.Blob(h.Trace)
}

// DecodeWireHSP reads one HSP.
func DecodeWireHSP(r *Reader) WireHSP {
	return WireHSP{
		QueryFrom: int(r.Int()),
		QueryTo:   int(r.Int()),
		SubjFrom:  int(r.Int()),
		SubjTo:    int(r.Int()),
		Score:     int(r.Int()),
		BitScore:  r.Float(),
		EValue:    r.Float(),
		Trace:     r.Blob(),
	}
}

// EncodeWireHit appends one full hit (alignment data; residues optional).
func EncodeWireHit(w *Writer, h WireHit) {
	w.Int(int64(h.OID))
	w.String(h.ID)
	w.String(h.Defline)
	w.Int(int64(h.SubjLen))
	w.Blob(h.Residues)
	w.Uint(uint64(len(h.HSPs)))
	for _, hsp := range h.HSPs {
		EncodeWireHSP(w, hsp)
	}
}

// DecodeWireHit reads one full hit.
func DecodeWireHit(r *Reader) WireHit {
	h := WireHit{
		OID:      int(r.Int()),
		ID:       r.String(),
		Defline:  r.String(),
		SubjLen:  int(r.Int()),
		Residues: r.Blob(),
	}
	n := int(r.Uint())
	if r.Err() != nil || n < 0 || n > 1<<24 {
		return h
	}
	h.HSPs = make([]WireHSP, 0, n)
	for i := 0; i < n; i++ {
		h.HSPs = append(h.HSPs, DecodeWireHSP(r))
	}
	return h
}

// EncodeWireQueries serializes the query broadcast payload with the compact
// codec. The query set dominates the job-broadcast bytes; the cold jobMeta
// shell around it stays gob, but its Queries field carries this encoding.
func EncodeWireQueries(q WireQueries) []byte {
	var w Writer
	w.Uint(uint64(q.Kind))
	w.Uint(uint64(len(q.IDs)))
	for i := range q.IDs {
		w.String(q.IDs[i])
		w.String(q.Descriptions[i])
		w.Blob(q.Residues[i])
	}
	return w.Bytes()
}

// DecodeWireQueries reads a query broadcast payload.
func DecodeWireQueries(data []byte) (WireQueries, error) {
	r := NewReader(data)
	var q WireQueries
	q.Kind = seq.Kind(r.Uint())
	n := int(r.Uint())
	if r.Err() != nil || n < 0 || n > 1<<24 {
		r.fail("query count")
		return q, r.Err()
	}
	q.IDs = make([]string, 0, n)
	q.Descriptions = make([]string, 0, n)
	q.Residues = make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		q.IDs = append(q.IDs, r.String())
		q.Descriptions = append(q.Descriptions, r.String())
		q.Residues = append(q.Residues, r.Blob())
	}
	return q, r.Err()
}

// EncodeInt encodes a single integer (assignment messages).
func EncodeInt(v int) []byte {
	var w Writer
	w.Int(int64(v))
	return w.Bytes()
}

// DecodeInt decodes a single integer.
func DecodeInt(data []byte) (int, error) {
	r := NewReader(data)
	v := int(r.Int())
	return v, r.Err()
}
