package engine

import "sort"

// Hierarchical group merge: the shared building block behind both
// engines' tree-structured metadata merge. A group of workers pre-merges
// its members' per-query metadata with the SAME selection rule the master
// applies (MergeHits), so one aggregated message per group travels up the
// tree instead of one stream per worker. Because MergeHits is a strict
// total order over hits — (E-value asc, score desc, OID asc) with unique
// OIDs — nested top-k selection is exactly equal to flat top-k selection,
// which is what makes the hierarchical merge byte-identical to the
// master's flat merge at any fan-out and grouping.

// EncodeQueryMetas serializes a per-query metadata set for one tree-merge
// bundle payload.
func EncodeQueryMetas(metas []QueryMeta) []byte {
	w := &Writer{}
	w.Uint(uint64(len(metas)))
	for _, qm := range metas {
		EncodeQueryMeta(w, qm)
	}
	return w.Bytes()
}

// DecodeQueryMetas reverses EncodeQueryMetas.
func DecodeQueryMetas(data []byte) ([]QueryMeta, error) {
	r := NewReader(data)
	n := int(r.Uint())
	if r.Err() != nil {
		return nil, r.Err()
	}
	out := make([]QueryMeta, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, DecodeQueryMeta(r))
	}
	return out, r.Err()
}

// CombineQueryMetas merges two per-query metadata sets: entries with the
// same QueryIndex have their hit lists concatenated and re-selected by
// MergeHits (capped at maxTargets; 0 = uncapped) and their work counters
// summed. The result is ordered by ascending QueryIndex. Because the
// selection rule is a strict total order, the operation is associative and
// commutative, so any tree of pairwise combines yields the flat merge's
// exact result.
func CombineQueryMetas(a, b []QueryMeta, maxTargets int) []QueryMeta {
	byQuery := make(map[int]int, len(a)+len(b))
	out := make([]QueryMeta, 0, len(a)+len(b))
	for _, src := range [2][]QueryMeta{a, b} {
		for _, qm := range src {
			i, seen := byQuery[qm.QueryIndex]
			if !seen {
				byQuery[qm.QueryIndex] = len(out)
				out = append(out, QueryMeta{
					QueryIndex: qm.QueryIndex,
					Fragment:   qm.Fragment,
					Hits:       append([]HitMeta(nil), qm.Hits...),
					Work:       qm.Work,
				})
				continue
			}
			out[i].Hits = append(out[i].Hits, qm.Hits...)
			out[i].Work.Add(qm.Work)
			if out[i].Fragment != qm.Fragment {
				out[i].Fragment = -1 // mixed fragments: no single origin
			}
		}
	}
	for i := range out {
		out[i].Hits = MergeHits(out[i].Hits, maxTargets)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].QueryIndex < out[j].QueryIndex })
	return out
}

// MergeCost returns the number of hit items the combine above touches —
// the quantity both engines charge at MergeItemCost per item, keeping the
// simulated merge cost consistent between the flat and tree paths.
func MergeCost(a, b []QueryMeta) int {
	n := 0
	for _, qm := range a {
		n += len(qm.Hits)
	}
	for _, qm := range b {
		n += len(qm.Hits)
	}
	return n
}
