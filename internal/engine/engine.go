// Package engine holds what the two parallel BLAST implementations share:
// the job description, the result-metadata records workers submit for
// merging, the global merge rule, report assembly, wire codecs, and a
// sequential reference implementation.
//
// The paper states that mpiBLAST and pioBLAST produce the same output for
// the same input; in this reproduction that is guaranteed the same way —
// both engines use the identical search kernel, merge rule, and formatting
// code, and differ in *where* work happens and *how* bytes move, which is
// exactly what the paper optimizes.
package engine

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"parblast/internal/blast"
	"parblast/internal/formatdb"
	"parblast/internal/seq"
	"parblast/internal/stats"
	"parblast/internal/vfs"
)

// Job describes one parallel search.
type Job struct {
	// DBBase is the formatted database base name on the shared FS.
	DBBase string
	// Queries is the query set, searched in order.
	Queries []*seq.Sequence
	// Options configures the kernel identically on every worker.
	Options blast.Options
	// OutputPath is the single result file on the shared FS.
	OutputPath string
	// Fragments sets the partition granularity. 0 means natural
	// partitioning: one fragment per worker.
	Fragments int
}

// Validate rejects unusable jobs.
func (j *Job) Validate() error {
	if j.DBBase == "" {
		return fmt.Errorf("engine: job needs a database")
	}
	if len(j.Queries) == 0 {
		return fmt.Errorf("engine: job needs at least one query")
	}
	if j.OutputPath == "" {
		return fmt.Errorf("engine: job needs an output path")
	}
	if j.Fragments < 0 {
		return fmt.Errorf("engine: negative fragment count %d", j.Fragments)
	}
	return j.Options.Validate()
}

// HitMeta is what a worker submits to the master for global merging: the
// identification, scores, and formatted-output size of one subject's hit —
// but never the alignment data itself (pioBLAST §3.2) or, in the baseline,
// the data is fetched later per hit.
type HitMeta struct {
	OID      int
	Worker   int // owning worker rank
	ID       string
	Defline  string
	SubjLen  int
	Score    int
	BitScore float64
	EValue   float64
	// NumHSPs is informational; BlockSize is the exact byte length of the
	// formatted alignment block for this subject.
	NumHSPs   int
	BlockSize int64
}

// QueryMeta aggregates one worker's metadata for one query on one fragment.
type QueryMeta struct {
	QueryIndex int
	Fragment   int
	Hits       []HitMeta
	Work       blast.WorkCounters
}

// MergeHits applies the global selection rule: sort by (E-value asc, score
// desc, OID asc) and cap at maxTargets. Both engines and the sequential
// reference share this exact rule, which is what makes outputs identical.
func MergeHits(hits []HitMeta, maxTargets int) []HitMeta {
	sort.Slice(hits, func(i, j int) bool {
		a, b := hits[i], hits[j]
		if a.EValue != b.EValue {
			return a.EValue < b.EValue
		}
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.OID < b.OID
	})
	if maxTargets > 0 && len(hits) > maxTargets {
		hits = hits[:maxTargets]
	}
	return hits
}

// SummaryResults converts merged metadata into the SubjectResult skeletons
// the report summary formatter needs: the best HSP's scores, padded to the
// subject's real HSP count (the tabular summary line counts HSPs).
func SummaryResults(hits []HitMeta) []*blast.SubjectResult {
	out := make([]*blast.SubjectResult, len(hits))
	for i, h := range hits {
		n := h.NumHSPs
		if n < 1 {
			n = 1
		}
		hsps := make([]*blast.HSP, n)
		hsps[0] = &blast.HSP{Score: h.Score, BitScore: h.BitScore, EValue: h.EValue}
		for k := 1; k < n; k++ {
			hsps[k] = &blast.HSP{}
		}
		out[i] = &blast.SubjectResult{
			OID:     h.OID,
			ID:      h.ID,
			Defline: h.Defline,
			SubjLen: h.SubjLen,
			HSPs:    hsps,
		}
	}
	return out
}

// MetaFromResult converts a kernel result into wire metadata; blockSize is
// supplied by the caller, who has rendered (or measured) the block.
func MetaFromResult(worker int, r *blast.SubjectResult, blockSize int64) HitMeta {
	return HitMeta{
		OID:       r.OID,
		Worker:    worker,
		ID:        r.ID,
		Defline:   r.Defline,
		SubjLen:   r.SubjLen,
		Score:     r.BestScore(),
		BitScore:  r.BestBitScore(),
		EValue:    r.BestEValue(),
		NumHSPs:   len(r.HSPs),
		BlockSize: blockSize,
	}
}

// SearchSpaceFor builds the database-global Karlin–Altschul search space
// for one query, identically on every rank.
func SearchSpaceFor(s *blast.Searcher, queryLen int, dbResidues int64, dbSeqs int) stats.SearchSpace {
	return stats.NewSearchSpace(s.GappedParams(), queryLen, dbResidues, dbSeqs)
}

// FragmentFromRecords wraps formatdb records as a kernel fragment.
func FragmentFromRecords(recs []formatdb.Record) *blast.Fragment {
	frag := &blast.Fragment{Subjects: make([]blast.Subject, len(recs))}
	for i, r := range recs {
		frag.Subjects[i] = blast.Subject{
			OID:      r.OID,
			ID:       r.ID,
			Defline:  r.Defline,
			Residues: r.Residues,
		}
	}
	return frag
}

// --- wire codecs -----------------------------------------------------------

// EncodeGob serializes a protocol value.
func EncodeGob(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("engine: gob encode: %v", err)) // protocol types are closed
	}
	return buf.Bytes()
}

// DecodeGob deserializes into out.
func DecodeGob(data []byte, out any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(out)
}

// WireQueries is the broadcast payload carrying the query set.
type WireQueries struct {
	IDs          []string
	Descriptions []string
	Residues     [][]byte
	Kind         seq.Kind
}

// PackQueries builds the broadcast payload.
func PackQueries(queries []*seq.Sequence) WireQueries {
	w := WireQueries{Kind: queries[0].Alpha.Kind()}
	for _, q := range queries {
		w.IDs = append(w.IDs, q.ID)
		w.Descriptions = append(w.Descriptions, q.Description)
		w.Residues = append(w.Residues, q.Residues)
	}
	return w
}

// Unpack reconstructs the query sequences.
func (w WireQueries) Unpack() []*seq.Sequence {
	alpha := seq.AlphabetFor(w.Kind)
	out := make([]*seq.Sequence, len(w.IDs))
	for i := range w.IDs {
		out[i] = &seq.Sequence{
			ID:          w.IDs[i],
			Description: w.Descriptions[i],
			Residues:    w.Residues[i],
			Alpha:       alpha,
		}
	}
	return out
}

// WireHit carries the full alignment data of one subject hit — what the
// baseline master fetches per hit, and what its workers would rather not
// send twice.
type WireHit struct {
	OID      int
	ID       string
	Defline  string
	SubjLen  int
	Residues []byte
	HSPs     []WireHSP
}

// WireHSP is the wire form of one HSP.
type WireHSP struct {
	QueryFrom, QueryTo int
	SubjFrom, SubjTo   int
	Score              int
	BitScore           float64
	EValue             float64
	Trace              []byte
}

// PackHit converts a kernel result (plus subject residues) to wire form.
func PackHit(r *blast.SubjectResult, residues []byte) WireHit {
	w := WireHit{
		OID: r.OID, ID: r.ID, Defline: r.Defline, SubjLen: r.SubjLen, Residues: residues,
	}
	for _, h := range r.HSPs {
		// Ops() materializes the implicit all-OpSub trace of ungapped HSPs,
		// keeping the wire bytes identical to the eager-trace era.
		ops := h.Ops()
		trace := make([]byte, len(ops))
		for i, op := range ops {
			trace[i] = byte(op)
		}
		w.HSPs = append(w.HSPs, WireHSP{
			QueryFrom: h.QueryFrom, QueryTo: h.QueryTo,
			SubjFrom: h.SubjFrom, SubjTo: h.SubjTo,
			Score: h.Score, BitScore: h.BitScore, EValue: h.EValue,
			Trace: trace,
		})
	}
	return w
}

// Unpack converts wire form back to a kernel result and subject residues.
func (w WireHit) Unpack() (*blast.SubjectResult, []byte) {
	r := &blast.SubjectResult{
		OID: w.OID, ID: w.ID, Defline: w.Defline, SubjLen: w.SubjLen,
	}
	for _, h := range w.HSPs {
		trace := make([]blast.EditOp, len(h.Trace))
		for i, b := range h.Trace {
			trace[i] = blast.EditOp(b)
		}
		r.HSPs = append(r.HSPs, &blast.HSP{
			QueryFrom: h.QueryFrom, QueryTo: h.QueryTo,
			SubjFrom: h.SubjFrom, SubjTo: h.SubjTo,
			Score: h.Score, BitScore: h.BitScore, EValue: h.EValue,
			Trace: trace,
		})
	}
	return r, w.Residues
}

// --- sequential reference ---------------------------------------------------

// RunSequential searches the whole database with one process and writes the
// report to job.OutputPath on fs. It is the correctness oracle: both
// parallel engines must produce byte-identical output.
func RunSequential(fs *vfs.FS, job *Job) error {
	if err := job.Validate(); err != nil {
		return err
	}
	db, err := formatdb.Open(fs, job.DBBase)
	if err != nil {
		return err
	}
	recs, err := db.ReadAll(fs)
	if err != nil {
		return err
	}
	frag := FragmentFromRecords(recs)
	searcher, err := blast.NewSearcher(job.Options)
	if err != nil {
		return err
	}
	ctx := searcher.NewContext()
	out := fs.Create(job.OutputPath)
	var off int64
	dbInfo := blast.DBInfo{Title: db.Title, NumSeqs: db.NumSeqs, TotalLen: db.TotalResidues}
	for _, q := range job.Queries {
		if err := ctx.SetQuery(q); err != nil {
			return err
		}
		space := SearchSpaceFor(searcher, q.Len(), db.TotalResidues, db.NumSeqs)
		res, err := ctx.SearchFragment(frag, space)
		if err != nil {
			return err
		}
		var text bytes.Buffer
		text.WriteString(blast.RenderHeader(job.Options.OutFormat, db.Kind, q, dbInfo))
		text.WriteString(blast.RenderSummary(job.Options.OutFormat, res.Hits))
		for _, hit := range res.Hits {
			text.WriteString(blast.RenderHit(job.Options.OutFormat, q, frag.Subjects[indexByOID(frag, hit.OID)].Residues, hit, job.Options.Matrix))
		}
		text.WriteString(blast.RenderFooter(job.Options.OutFormat, searcher.GappedParams(), space, res.Work))
		out.WriteAt(text.Bytes(), off)
		off += int64(text.Len())
	}
	return nil
}

// indexByOID finds a subject's position in a fragment; fragments built by
// FragmentFromRecords over the whole DB are OID-ordered starting at the
// first subject's OID.
func indexByOID(frag *blast.Fragment, oid int) int {
	base := frag.Subjects[0].OID
	i := oid - base
	if i < 0 || i >= len(frag.Subjects) || frag.Subjects[i].OID != oid {
		// Fall back to scan (fragments with gaps).
		for k := range frag.Subjects {
			if frag.Subjects[k].OID == oid {
				return k
			}
		}
		panic(fmt.Sprintf("engine: OID %d not in fragment", oid))
	}
	return i
}
