package engine

import (
	"parblast/internal/blast"
	"parblast/internal/metrics"
	"parblast/internal/vfs"
)

// RecordWork folds one fragment search's kernel work counters into the
// telemetry registry under the blast.* namespace. Called by the engines
// right after a search returns — the kernel itself stays metrics-free, its
// WorkCounters are already the deterministic ground truth.
func RecordWork(reg *metrics.Registry, rank int, w blast.WorkCounters) {
	if reg == nil {
		return
	}
	reg.Counter("blast.residues_scanned", rank).Add(w.ResiduesScanned)
	reg.Counter("blast.seed_hits", rank).Add(w.SeedHits)
	reg.Counter("blast.ungapped_extensions", rank).Add(w.UngappedExtensions)
	reg.Counter("blast.gapped_extensions", rank).Add(w.GappedExtensions)
	reg.Counter("blast.hsps_found", rank).Add(w.HSPsFound)
	reg.Counter("blast.index_words", rank).Add(w.IndexWords)
}

// RecordMerge counts the hits kept versus dropped by one MergeHits
// selection — the blast-layer "HSPs kept/dropped" view of result merging.
func RecordMerge(reg *metrics.Registry, rank, candidates, kept int) {
	if reg == nil {
		return
	}
	reg.Counter("blast.hsps_kept", rank).Add(int64(kept))
	reg.Counter("blast.hsps_dropped", rank).Add(int64(candidates - kept))
}

// RecordQueryLatency books one query's end-to-end latency (admission to
// result-merge completion, virtual seconds) into the engine.query_latency_s
// distribution — the serving-SLO series the report layer computes exact
// percentiles from. Nil-safe like every registry instrument.
func RecordQueryLatency(reg *metrics.Registry, rank int, seconds float64) {
	if reg == nil {
		return
	}
	reg.Distribution("engine.query_latency_s", rank, metrics.LatencyBuckets()).Observe(seconds)
}

// AddIOFaults folds the fault statistics of every distinct file system the
// run could touch into the result (the shared FS appears in every node, so
// it is counted once).
func (r *RunResult) AddIOFaults(nodes []*vfs.Node) {
	seen := make(map[*vfs.FS]bool)
	for _, n := range nodes {
		for _, fs := range []*vfs.FS{n.Shared, n.Local} {
			if fs == nil || seen[fs] {
				continue
			}
			seen[fs] = true
			faulted, retries, backoff := fs.FaultStats()
			r.IOFaultedOps += faulted
			r.IORetries += retries
			r.IOBackoff += backoff
		}
	}
}
