package engine

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"parblast/internal/blast"
	"parblast/internal/formatdb"
	"parblast/internal/seq"
	"parblast/internal/simtime"
	"parblast/internal/vfs"
	"parblast/internal/workload"
)

func TestJobValidate(t *testing.T) {
	good := &Job{
		DBBase:     "nr",
		Queries:    []*seq.Sequence{seq.New(seq.ProteinAlphabet, "q", "", "MKVLAW")},
		Options:    blast.DefaultProteinOptions(),
		OutputPath: "out",
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Job){
		func(j *Job) { j.DBBase = "" },
		func(j *Job) { j.Queries = nil },
		func(j *Job) { j.OutputPath = "" },
		func(j *Job) { j.Fragments = -1 },
		func(j *Job) { j.Options.Matrix = nil },
	}
	for i, mod := range cases {
		j := *good
		mod(&j)
		if err := j.Validate(); err == nil {
			t.Fatalf("case %d: invalid job accepted", i)
		}
	}
}

func TestMergeHits(t *testing.T) {
	hits := []HitMeta{
		{OID: 3, Score: 100, EValue: 1e-10},
		{OID: 1, Score: 300, EValue: 1e-30},
		{OID: 2, Score: 200, EValue: 1e-20},
		{OID: 5, Score: 200, EValue: 1e-20}, // tie with OID 2: OID order
	}
	merged := MergeHits(hits, 0)
	wantOrder := []int{1, 2, 5, 3}
	for i, w := range wantOrder {
		if merged[i].OID != w {
			t.Fatalf("position %d: OID %d, want %d (order %v)", i, merged[i].OID, w, merged)
		}
	}
	capped := MergeHits(append([]HitMeta(nil), hits...), 2)
	if len(capped) != 2 || capped[0].OID != 1 || capped[1].OID != 2 {
		t.Fatalf("cap failed: %v", capped)
	}
}

func TestMergeHitsDeterministicQuick(t *testing.T) {
	// Property: merging is invariant under input permutation.
	f := func(perm []byte) bool {
		base := []HitMeta{
			{OID: 0, Score: 50, EValue: 1e-5},
			{OID: 1, Score: 70, EValue: 1e-7},
			{OID: 2, Score: 70, EValue: 1e-7},
			{OID: 3, Score: 20, EValue: 1e-2},
			{OID: 4, Score: 90, EValue: 1e-9},
		}
		shuffled := append([]HitMeta(nil), base...)
		rng := rand.New(rand.NewSource(int64(len(perm))))
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		a := MergeHits(append([]HitMeta(nil), base...), 3)
		b := MergeHits(shuffled, 3)
		for i := range a {
			if a[i].OID != b[i].OID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWireQueriesRoundTrip(t *testing.T) {
	in := []*seq.Sequence{
		seq.New(seq.ProteinAlphabet, "q1", "first", "MKVLAW"),
		seq.New(seq.ProteinAlphabet, "q2", "", "WWYV"),
	}
	packed := PackQueries(in)
	data := EncodeGob(packed)
	var back WireQueries
	if err := DecodeGob(data, &back); err != nil {
		t.Fatal(err)
	}
	out := back.Unpack()
	if len(out) != 2 {
		t.Fatalf("%d queries", len(out))
	}
	for i := range in {
		if in[i].ID != out[i].ID || in[i].Description != out[i].Description ||
			!bytes.Equal(in[i].Residues, out[i].Residues) || out[i].Alpha != seq.ProteinAlphabet {
			t.Fatalf("query %d mutated in transit", i)
		}
	}
}

func TestWireHitRoundTrip(t *testing.T) {
	res := &blast.SubjectResult{
		OID: 7, ID: "s7", Defline: "subject seven", SubjLen: 50,
		HSPs: []*blast.HSP{{
			// 12 columns: 10 subs + 1 ins + 1 del → consumes 11 query and
			// 11 subject residues.
			QueryFrom: 1, QueryTo: 12, SubjFrom: 2, SubjTo: 13,
			Score: 42, BitScore: 21.5, EValue: 1e-4,
			Trace: []blast.EditOp{blast.OpSub, blast.OpSub, blast.OpIns, blast.OpSub,
				blast.OpSub, blast.OpSub, blast.OpDel, blast.OpSub, blast.OpSub,
				blast.OpSub, blast.OpSub, blast.OpSub},
		}},
	}
	residues := []byte{1, 2, 3, 4, 5}
	wire := PackHit(res, residues)
	var back WireHit
	if err := DecodeGob(EncodeGob(wire), &back); err != nil {
		t.Fatal(err)
	}
	got, gotRes := back.Unpack()
	if got.OID != 7 || got.ID != "s7" || got.SubjLen != 50 || !bytes.Equal(gotRes, residues) {
		t.Fatalf("subject metadata mutated: %+v", got)
	}
	h := got.HSPs[0]
	if h.Score != 42 || h.EValue != 1e-4 || len(h.Trace) != 12 || h.Trace[2] != blast.OpIns {
		t.Fatalf("HSP mutated: %+v", h)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMetaFromResultAndSummary(t *testing.T) {
	res := &blast.SubjectResult{
		OID: 3, ID: "id3", Defline: "d", SubjLen: 99,
		HSPs: []*blast.HSP{{Score: 77, BitScore: 33.3, EValue: 2e-8}},
	}
	m := MetaFromResult(5, res, 1234)
	if m.Worker != 5 || m.Score != 77 || m.BlockSize != 1234 || m.NumHSPs != 1 {
		t.Fatalf("meta wrong: %+v", m)
	}
	summary := SummaryResults([]HitMeta{m})
	if len(summary) != 1 || summary[0].BestScore() != 77 || summary[0].BestEValue() != 2e-8 {
		t.Fatalf("summary skeleton wrong: %+v", summary[0])
	}
}

func TestFragmentFromRecords(t *testing.T) {
	recs := []formatdb.Record{
		{OID: 10, ID: "a", Defline: "da", Residues: []byte{1, 2}},
		{OID: 11, ID: "b", Defline: "db", Residues: []byte{3}},
	}
	frag := FragmentFromRecords(recs)
	if len(frag.Subjects) != 2 || frag.Subjects[0].OID != 10 || frag.TotalResidues() != 3 {
		t.Fatalf("fragment wrong: %+v", frag)
	}
}

func TestRunSequential(t *testing.T) {
	fs := vfs.MustNew(vfs.RAMDisk())
	seqs, err := workload.SynthesizeDB(workload.DBConfig{
		Kind: seq.Protein, NumSeqs: 40, MeanLen: 120, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := formatdb.Format(fs, "nr", seqs, formatdb.Config{Kind: seq.Protein, Title: "seqdb"}); err != nil {
		t.Fatal(err)
	}
	queries, err := workload.SampleQueries(seqs, workload.QueryConfig{TargetBytes: 200, MeanLen: 80, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	job := &Job{DBBase: "nr", Queries: queries, Options: blast.DefaultProteinOptions(), OutputPath: "out"}
	if err := RunSequential(fs, job); err != nil {
		t.Fatal(err)
	}
	out, err := fs.ReadFile("out")
	if err != nil {
		t.Fatal(err)
	}
	text := string(out)
	if !strings.Contains(text, "BLASTP") || !strings.Contains(text, "Query= ") {
		t.Fatalf("report malformed:\n%.200s", text)
	}
	// One header per query, in order.
	if got := strings.Count(text, "Query= "); got != len(queries) {
		t.Fatalf("%d query headers for %d queries", got, len(queries))
	}
}

func TestRunSequentialErrors(t *testing.T) {
	fs := vfs.MustNew(vfs.RAMDisk())
	job := &Job{DBBase: "missing", Queries: []*seq.Sequence{seq.New(seq.ProteinAlphabet, "q", "", "MKVL")},
		Options: blast.DefaultProteinOptions(), OutputPath: "out"}
	if err := RunSequential(fs, job); err == nil {
		t.Fatal("missing database accepted")
	}
	bad := &Job{}
	if err := RunSequential(fs, bad); err == nil {
		t.Fatal("invalid job accepted")
	}
}

func TestSummarize(t *testing.T) {
	a := simtime.NewClock()
	a.SetPhase(simtime.PhaseSearch)
	a.Advance(4)
	a.SetPhase(simtime.PhaseOutput)
	a.Advance(1)
	b := simtime.NewClock()
	b.SetPhase(simtime.PhaseSearch)
	b.Advance(3)
	b.SetPhase(simtime.PhaseOutput)
	b.Advance(3)
	b.SetPhase(simtime.PhaseIdle)
	b.Advance(2)

	r := Summarize([]*simtime.Clock{a, b}, 500)
	if r.Wall != 8 {
		t.Fatalf("wall = %g", r.Wall)
	}
	if r.Phase.Search != 4 || r.Phase.Output != 3 {
		t.Fatalf("phase maxima wrong: %+v", r.Phase)
	}
	if r.SearchFraction() != 0.5 {
		t.Fatalf("search fraction = %g", r.SearchFraction())
	}
	if r.NonSearch() != 4 {
		t.Fatalf("non-search = %g", r.NonSearch())
	}
	if r.OutputBytes != 500 {
		t.Fatalf("output bytes = %d", r.OutputBytes)
	}
	if !strings.Contains(r.String(), "search=4.0") {
		t.Fatalf("string: %s", r.String())
	}
}
