package engine

import (
	"fmt"

	"parblast/internal/simtime"
)

// RunResult summarizes one parallel run.
type RunResult struct {
	// Clocks are the final per-rank virtual clocks.
	Clocks []*simtime.Clock
	// Wall is the slowest rank's virtual finish time — the run's
	// execution time in the paper's sense.
	Wall float64
	// Phase holds, for each phase, the maximum bucket across ranks.
	// Because the engines' phases are globally synchronized (all ranks
	// search, then all merge/output), the per-phase maxima tile the wall
	// time closely and correspond to the paper's stacked bars.
	Phase simtime.Breakdown
	// OutputBytes is the size of the produced result file.
	OutputBytes int64
	// CommBytes totals the result-protocol payload volume (submissions,
	// fetches, selections) sent by all ranks — the paper's §3.2
	// message-volume metric. ShuffleBytes totals the collective-I/O data
	// shuffle (§3.3's deliberate network-for-disk trade), and
	// CollectiveBytes the payloads of collective operations
	// (Bcast/AllGather/Barrier) — kept out of CommBytes so the protocol
	// metric measures the merging protocol alone.
	CommBytes       int64
	ShuffleBytes    int64
	CollectiveBytes int64
	CommMessages    int64
	// IOFaultedOps, IORetries, and IOBackoff surface vfs fault injection in
	// run summaries: accesses that hit a transient fault, the failed
	// attempts paid retrying them, and the cumulative backoff wait charged
	// (summed over every file system the run touched).
	IOFaultedOps int64
	IORetries    int64
	IOBackoff    float64
	// QueryLatencies holds each query's end-to-end virtual latency, indexed
	// by query order: admission (the master's clock when the job metadata
	// broadcast completes) to that query's result-merge completion. Purely
	// virtual-time derived, so the values are byte-identical across repeated
	// runs and across SearchThreads settings. Empty when the engine did not
	// record per-query latency.
	QueryLatencies []float64
}

// Summarize computes Wall and Phase from clocks.
func Summarize(clocks []*simtime.Clock, outputBytes int64) RunResult {
	r := RunResult{Clocks: clocks, OutputBytes: outputBytes}
	for _, c := range clocks {
		if c.Now() > r.Wall {
			r.Wall = c.Now()
		}
		if b := c.Bucket(simtime.PhaseCopy); b > r.Phase.Copy {
			r.Phase.Copy = b
		}
		if b := c.Bucket(simtime.PhaseInput); b > r.Phase.Input {
			r.Phase.Input = b
		}
		if b := c.Bucket(simtime.PhaseSearch); b > r.Phase.Search {
			r.Phase.Search = b
		}
		if b := c.Bucket(simtime.PhaseOutput); b > r.Phase.Output {
			r.Phase.Output = b
		}
		if b := c.Bucket(simtime.PhaseOther); b > r.Phase.Other {
			r.Phase.Other = b
		}
	}
	r.Phase.Total = r.Wall
	return r
}

// SearchFraction returns the share of wall time spent searching — the
// paper's headline scalability metric (e.g. 95.6% → 70.7% for mpiBLAST,
// 92.4% at 61 workers for pioBLAST).
func (r RunResult) SearchFraction() float64 {
	if r.Wall == 0 {
		return 0
	}
	return r.Phase.Search / r.Wall
}

// NonSearch returns wall time not attributable to the search phase.
func (r RunResult) NonSearch() float64 { return r.Wall - r.Phase.Search }

// String renders a Table-1-style row.
func (r RunResult) String() string {
	return fmt.Sprintf("copy=%.1f input=%.1f search=%.1f output=%.1f other=%.1f wall=%.1f out=%dB",
		r.Phase.Copy, r.Phase.Input, r.Phase.Search, r.Phase.Output, r.Phase.Other,
		r.Wall, r.OutputBytes)
}
