package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"parblast/internal/blast"
)

// randomWorkerMetas synthesizes one worker's per-query metadata. OIDs are
// globally unique per worker (worker*10000 + n), matching the engines'
// database-partition invariant that no subject appears on two workers.
func randomWorkerMetas(rng *rand.Rand, worker, nQueries, maxHits int) []QueryMeta {
	var out []QueryMeta
	for q := 0; q < nQueries; q++ {
		if rng.Intn(5) == 0 {
			continue // worker has no results for this query at all
		}
		qm := QueryMeta{QueryIndex: q, Fragment: worker}
		nh := rng.Intn(maxHits + 1) // may be zero hits
		for h := 0; h < nh; h++ {
			qm.Hits = append(qm.Hits, HitMeta{
				OID:       worker*10000 + q*100 + h,
				Worker:    worker,
				ID:        fmt.Sprintf("gi|%d", worker*10000+h),
				Defline:   fmt.Sprintf("synthetic subject %d/%d", worker, h),
				SubjLen:   50 + rng.Intn(400),
				Score:     rng.Intn(200),
				BitScore:  rng.Float64() * 100,
				EValue:    []float64{1e-30, 1e-12, 1e-5, 0.001, 0.5}[rng.Intn(5)],
				NumHSPs:   1 + rng.Intn(3),
				BlockSize: int64(100 + rng.Intn(900)),
			})
		}
		qm.Work = blast.WorkCounters{SeedHits: rng.Int63n(1000), HSPsFound: int64(nh)}
		out = append(out, qm)
	}
	return out
}

// flatMerge is the master's reference behavior: concatenate every
// worker's hits per query in worker order, then one MergeHits pass.
func flatMerge(workers [][]QueryMeta, maxTargets int) []QueryMeta {
	byQuery := make(map[int]int)
	var out []QueryMeta
	for _, w := range workers {
		for _, qm := range w {
			i, seen := byQuery[qm.QueryIndex]
			if !seen {
				byQuery[qm.QueryIndex] = len(out)
				out = append(out, QueryMeta{QueryIndex: qm.QueryIndex, Fragment: qm.Fragment})
				i = len(out) - 1
			} else if out[i].Fragment != qm.Fragment {
				out[i].Fragment = -1
			}
			out[i].Hits = append(out[i].Hits, qm.Hits...)
			out[i].Work.Add(qm.Work)
		}
	}
	for i := range out {
		out[i].Hits = MergeHits(out[i].Hits, maxTargets)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].QueryIndex < out[j].QueryIndex })
	return out
}

// treeMerge groups the workers into chains of `fanout` and pre-merges
// each group with CombineQueryMetas before the final combine — the same
// shape the k-ary reduction tree produces.
func treeMerge(workers [][]QueryMeta, fanout, maxTargets int) []QueryMeta {
	if len(workers) == 0 {
		return nil
	}
	if len(workers) == 1 {
		// Single-worker group: one pre-merge pass against the identity.
		return CombineQueryMetas(workers[0], nil, maxTargets)
	}
	var groups [][]QueryMeta
	for start := 0; start < len(workers); start += fanout {
		end := start + fanout
		if end > len(workers) {
			end = len(workers)
		}
		group := workers[start]
		for _, w := range workers[start+1 : end] {
			group = CombineQueryMetas(group, w, maxTargets)
		}
		groups = append(groups, group)
	}
	return treeMerge(groups, fanout, maxTargets)
}

// TestGroupMergeMatchesFlatMerge is the property test: for randomized
// seeded result sets, hierarchical group pre-merging is byte-identical to
// the flat master merge at every fan-out and worker count, including the
// empty-group and single-worker-group edges.
func TestGroupMergeMatchesFlatMerge(t *testing.T) {
	const maxTargets = 10
	for workers := 1; workers <= 33; workers++ {
		rng := rand.New(rand.NewSource(int64(1000 + workers)))
		sets := make([][]QueryMeta, workers)
		for w := range sets {
			sets[w] = randomWorkerMetas(rng, w, 6, 25)
		}
		flat := flatMerge(sets, maxTargets)
		flatBytes := EncodeQueryMetas(flat)
		for _, fanout := range []int{2, 3, 8} {
			tree := treeMerge(sets, fanout, maxTargets)
			if !bytes.Equal(EncodeQueryMetas(tree), flatBytes) {
				t.Fatalf("workers=%d fanout=%d: hierarchical merge differs from flat merge", workers, fanout)
			}
		}
		// Empty groups are identities: folding a vacant slot in anywhere
		// must not perturb the selection.
		withEmpty := CombineQueryMetas(nil, flat, maxTargets)
		withEmpty = CombineQueryMetas(withEmpty, nil, maxTargets)
		if !bytes.Equal(EncodeQueryMetas(withEmpty), flatBytes) {
			t.Fatalf("workers=%d: empty-group combine changed the result", workers)
		}
	}
}

// TestCombineQueryMetasAssociative spot-checks the algebraic property the
// tree relies on: (a·b)·c == a·(b·c) for the capped combine.
func TestCombineQueryMetasAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randomWorkerMetas(rng, 0, 4, 15)
	b := randomWorkerMetas(rng, 1, 4, 15)
	c := randomWorkerMetas(rng, 2, 4, 15)
	const maxTargets = 7
	left := CombineQueryMetas(CombineQueryMetas(a, b, maxTargets), c, maxTargets)
	right := CombineQueryMetas(a, CombineQueryMetas(b, c, maxTargets), maxTargets)
	if !bytes.Equal(EncodeQueryMetas(left), EncodeQueryMetas(right)) {
		t.Fatal("CombineQueryMetas is not associative under capping")
	}
	swapped := CombineQueryMetas(b, a, maxTargets)
	forward := CombineQueryMetas(a, b, maxTargets)
	if !bytes.Equal(EncodeQueryMetas(swapped), EncodeQueryMetas(forward)) {
		t.Fatal("CombineQueryMetas is not commutative")
	}
}

func TestEncodeDecodeQueryMetasRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := randomWorkerMetas(rng, 3, 5, 10)
	out, err := DecodeQueryMetas(EncodeQueryMetas(in))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeQueryMetas(out), EncodeQueryMetas(in)) {
		t.Fatal("round trip changed the payload")
	}
}
