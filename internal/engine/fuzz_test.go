package engine

import (
	"reflect"
	"testing"
)

// FuzzDecodeQueryMeta hardens the wire codec against corrupt or malicious
// buffers: decoding must never panic or allocate absurdly, only set Err.
func FuzzDecodeQueryMeta(f *testing.F) {
	var w Writer
	EncodeQueryMeta(&w, QueryMeta{QueryIndex: 1, Hits: []HitMeta{{OID: 2, ID: "x"}}})
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		qm := DecodeQueryMeta(r)
		if r.Err() == nil && len(data) == 0 {
			t.Fatal("empty buffer decoded without error")
		}
		_ = qm
	})
}

// FuzzWireQueries hardens the query-broadcast codec: decoding arbitrary
// bytes must never panic, and any payload that decodes cleanly must
// round-trip through the encoder to an equal value (the encoding is
// canonical — the byte-identity pins depend on it).
func FuzzWireQueries(f *testing.F) {
	f.Add(EncodeWireQueries(WireQueries{
		IDs:          []string{"q1", "q2"},
		Descriptions: []string{"first query", ""},
		Residues:     [][]byte{{1, 2, 3}, {4}},
		Kind:         1,
	}))
	f.Add(EncodeWireQueries(WireQueries{}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeWireQueries(data)
		if err != nil {
			return
		}
		q2, err := DecodeWireQueries(EncodeWireQueries(q))
		if err != nil {
			t.Fatalf("re-decoding a round-tripped payload failed: %v", err)
		}
		if !reflect.DeepEqual(q, q2) {
			t.Fatalf("round-trip changed the payload:\nbefore: %#v\nafter:  %#v", q, q2)
		}
	})
}

// FuzzDecodeWireHit does the same for the full-hit codec.
func FuzzDecodeWireHit(f *testing.F) {
	var w Writer
	EncodeWireHit(&w, WireHit{OID: 1, ID: "s", Residues: []byte{1, 2},
		HSPs: []WireHSP{{Score: 5, Trace: []byte{0, 1}}}})
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		_ = DecodeWireHit(r)
	})
}
