package engine

import "testing"

// FuzzDecodeQueryMeta hardens the wire codec against corrupt or malicious
// buffers: decoding must never panic or allocate absurdly, only set Err.
func FuzzDecodeQueryMeta(f *testing.F) {
	var w Writer
	EncodeQueryMeta(&w, QueryMeta{QueryIndex: 1, Hits: []HitMeta{{OID: 2, ID: "x"}}})
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		qm := DecodeQueryMeta(r)
		if r.Err() == nil && len(data) == 0 {
			t.Fatal("empty buffer decoded without error")
		}
		_ = qm
	})
}

// FuzzDecodeWireHit does the same for the full-hit codec.
func FuzzDecodeWireHit(f *testing.F) {
	var w Writer
	EncodeWireHit(&w, WireHit{OID: 1, ID: "s", Residues: []byte{1, 2},
		HSPs: []WireHSP{{Score: 5, Trace: []byte{0, 1}}}})
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		_ = DecodeWireHit(r)
	})
}
