package engine

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"parblast/internal/blast"
	"parblast/internal/seq"
)

func TestCodecPrimitivesRoundTrip(t *testing.T) {
	var w Writer
	w.Int(-42)
	w.Int(0)
	w.Int(1 << 40)
	w.Uint(7)
	w.Float(3.14159)
	w.Float(math.Inf(1))
	w.String("hello world")
	w.String("")
	w.Blob([]byte{1, 2, 3})
	w.Blob(nil)

	r := NewReader(w.Bytes())
	if r.Int() != -42 || r.Int() != 0 || r.Int() != 1<<40 {
		t.Fatal("int round trip failed")
	}
	if r.Uint() != 7 {
		t.Fatal("uint round trip failed")
	}
	if r.Float() != 3.14159 || !math.IsInf(r.Float(), 1) {
		t.Fatal("float round trip failed")
	}
	if r.String() != "hello world" || r.String() != "" {
		t.Fatal("string round trip failed")
	}
	if !bytes.Equal(r.Blob(), []byte{1, 2, 3}) || len(r.Blob()) != 0 {
		t.Fatal("blob round trip failed")
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestCodecTruncation(t *testing.T) {
	var w Writer
	w.String("a long enough string")
	data := w.Bytes()
	for cut := 0; cut < len(data); cut++ {
		r := NewReader(data[:cut])
		_ = r.String()
		if r.Err() == nil && cut < len(data) {
			t.Fatalf("truncation at %d undetected", cut)
		}
	}
	// Reads after an error return zero values, never panic.
	r := NewReader(nil)
	_ = r.Int()
	if r.Err() == nil {
		t.Fatal("empty input accepted")
	}
	if r.Uint() != 0 || r.Float() != 0 || r.String() != "" || r.Blob() != nil {
		t.Fatal("post-error reads not zero")
	}
}

func TestQueryMetaCodecRoundTrip(t *testing.T) {
	in := QueryMeta{
		QueryIndex: 7,
		Fragment:   3,
		Work:       blast.WorkCounters{ResiduesScanned: 100, GappedCells: 5000, IndexWords: 42},
		Hits: []HitMeta{
			{OID: 1, Worker: 2, ID: "s1", Defline: "d one", SubjLen: 300, Score: 99,
				BitScore: 44.4, EValue: 1e-9, NumHSPs: 2, BlockSize: 1234},
			{OID: 5, Worker: 2, ID: "s5", Defline: "", SubjLen: 50, Score: 20,
				BitScore: 12.1, EValue: 3.3, NumHSPs: 1, BlockSize: 200},
		},
	}
	var w Writer
	EncodeQueryMeta(&w, in)
	r := NewReader(w.Bytes())
	out := DecodeQueryMeta(r)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if out.QueryIndex != in.QueryIndex || out.Fragment != in.Fragment || out.Work != in.Work {
		t.Fatalf("meta fields differ: %+v", out)
	}
	if len(out.Hits) != 2 || out.Hits[0] != in.Hits[0] || out.Hits[1] != in.Hits[1] {
		t.Fatalf("hits differ: %+v", out.Hits)
	}
}

func TestWireHitCodecRoundTrip(t *testing.T) {
	in := WireHit{
		OID: 9, ID: "subj", Defline: "a subject", SubjLen: 120,
		Residues: []byte{0, 5, 19, 3},
		HSPs: []WireHSP{
			{QueryFrom: 1, QueryTo: 50, SubjFrom: 2, SubjTo: 51, Score: 77,
				BitScore: 33.2, EValue: 2e-6, Trace: []byte{0, 0, 1, 2, 0}},
		},
	}
	var w Writer
	EncodeWireHit(&w, in)
	r := NewReader(w.Bytes())
	out := DecodeWireHit(r)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if out.OID != in.OID || out.ID != in.ID || !bytes.Equal(out.Residues, in.Residues) {
		t.Fatalf("hit differs: %+v", out)
	}
	if len(out.HSPs) != 1 || !bytes.Equal(out.HSPs[0].Trace, in.HSPs[0].Trace) ||
		out.HSPs[0].Score != 77 {
		t.Fatalf("hsp differs: %+v", out.HSPs)
	}
}

func TestCodecQuickRoundTrip(t *testing.T) {
	f := func(oid int32, id, defline string, score int32, ev float64, block int64) bool {
		in := HitMeta{
			OID: int(oid), Worker: 1, ID: id, Defline: defline,
			Score: int(score), EValue: ev, BlockSize: block,
		}
		var w Writer
		EncodeHitMeta(&w, in)
		r := NewReader(w.Bytes())
		out := DecodeHitMeta(r)
		if r.Err() != nil {
			return false
		}
		// NaN never compares equal; normalize.
		if math.IsNaN(ev) {
			return math.IsNaN(out.EValue)
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIntCodec(t *testing.T) {
	for _, v := range []int{0, -1, 1, 1 << 30, -(1 << 30)} {
		got, err := DecodeInt(EncodeInt(v))
		if err != nil || got != v {
			t.Fatalf("int codec %d → %d (%v)", v, got, err)
		}
	}
	if _, err := DecodeInt(nil); err == nil {
		t.Fatal("empty decode accepted")
	}
}

func TestWireQueriesCodecRoundTrip(t *testing.T) {
	in := WireQueries{
		Kind:         seq.Protein,
		IDs:          []string{"q1", "q2", ""},
		Descriptions: []string{"first query", "", "third"},
		Residues:     [][]byte{{1, 2, 3}, {}, {19, 0, 7, 7}},
	}
	out, err := DecodeWireQueries(EncodeWireQueries(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.IDs) != len(in.IDs) || out.Kind != in.Kind {
		t.Fatalf("shape mismatch: %+v", out)
	}
	for i := range in.IDs {
		if out.IDs[i] != in.IDs[i] || out.Descriptions[i] != in.Descriptions[i] ||
			!bytes.Equal(out.Residues[i], in.Residues[i]) {
			t.Fatalf("query %d mismatch: %+v", i, out)
		}
	}
	if _, err := DecodeWireQueries([]byte{0xff}); err == nil {
		t.Fatal("truncated payload accepted")
	}
}
