package engine

import (
	"reflect"
	"testing"
)

// TestAdmissionFIFO: with no cap, batches dispatch in arrival order; an
// idle server waits for the next arrival and its dispatch time is the
// arrival itself.
func TestAdmissionFIFO(t *testing.T) {
	a := NewAdmission([]float64{1, 2, 10}, 0)
	b, at, ok := a.Next(0)
	if !ok || b != 0 || at != 1 {
		t.Fatalf("first dispatch = (%d, %g, %v), want (0, 1, true)", b, at, ok)
	}
	// Server busy until t=5: both remaining arrivals ≤ 5? No — batch 1
	// arrived at 2 (waiting), batch 2 arrives at 10.
	b, at, ok = a.Next(5)
	if !ok || b != 1 || at != 2 {
		t.Fatalf("second dispatch = (%d, %g, %v), want (1, 2, true)", b, at, ok)
	}
	if a.Depth() != 0 {
		t.Fatalf("queue depth = %d, want 0", a.Depth())
	}
	b, at, ok = a.Next(6)
	if !ok || b != 2 || at != 10 {
		t.Fatalf("third dispatch = (%d, %g, %v), want (2, 10, true)", b, at, ok)
	}
	if _, _, ok := a.Next(100); ok {
		t.Fatal("exhausted stream still dispatching")
	}
	if len(a.ShedSeqs()) != 0 {
		t.Fatalf("unbounded queue shed %v", a.ShedSeqs())
	}
}

// TestAdmissionShedding: with capacity 1, a burst landing while one batch
// waits is dropped newest-first, and the shed set is exactly reproducible.
func TestAdmissionShedding(t *testing.T) {
	// Arrivals: 0, 1, 1.1, 1.2, 9. Server takes until t=8 on batch 0.
	a := NewAdmission([]float64{0, 1, 1.1, 1.2, 9}, 1)
	b, _, ok := a.Next(0)
	if !ok || b != 0 {
		t.Fatalf("first dispatch = %d", b)
	}
	// At t=8: batch 1 queued at t=1; batches 2 and 3 arrived while the
	// queue held batch 1 → shed.
	b, at, ok := a.Next(8)
	if !ok || b != 1 || at != 1 {
		t.Fatalf("second dispatch = (%d, %g), want (1, 1)", b, at)
	}
	if got := a.ShedSeqs(); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("shed = %v, want [2 3]", got)
	}
	// Batch 4 arrives later into an empty queue: dispatched, not shed.
	b, at, ok = a.Next(8.5)
	if !ok || b != 4 || at != 9 {
		t.Fatalf("third dispatch = (%d, %g), want (4, 9)", b, at)
	}
	if _, _, ok := a.Next(20); ok {
		t.Fatal("exhausted stream still dispatching")
	}
	if got := a.ShedSeqs(); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("final shed = %v, want [2 3]", got)
	}
}

// TestAdmissionDeterministic: replaying the same dispatch-time sequence
// yields the same dispatch and shed sequences.
func TestAdmissionDeterministic(t *testing.T) {
	arrivals := []float64{0, 0.5, 0.6, 0.7, 2, 2.1, 5}
	dispatchAt := []float64{0, 1.5, 1.8, 3, 4, 6, 7}
	run := func() ([]int, []int) {
		a := NewAdmission(arrivals, 2)
		var order []int
		for _, now := range dispatchAt {
			b, _, ok := a.Next(now)
			if !ok {
				break
			}
			order = append(order, b)
		}
		return order, a.ShedSeqs()
	}
	o1, s1 := run()
	o2, s2 := run()
	if !reflect.DeepEqual(o1, o2) || !reflect.DeepEqual(s1, s2) {
		t.Fatalf("replay diverged: %v/%v vs %v/%v", o1, s1, o2, s2)
	}
	if len(o1)+len(s1) != len(arrivals) {
		t.Fatalf("dispatched %d + shed %d ≠ %d arrivals", len(o1), len(s1), len(arrivals))
	}
}

func TestServeStatsRecord(t *testing.T) {
	var s ServeStats
	s.Arrivals = 3
	s.RecordDispatch(0, 0.5, 0.5, 1.5, 4)
	s.RecordDispatch(2, 0.9, 1.5, 2.0, 1)
	s.Shed = 1
	s.ShedSeqs = []int{1}
	if s.Admitted != 2 || s.Arrivals != s.Admitted+s.Shed {
		t.Fatalf("accounting wrong: %+v", s)
	}
	if !reflect.DeepEqual(s.BatchSeq, []int{0, 2}) || s.BatchDone[1] != 2.0 || s.BatchQueries[0] != 4 {
		t.Fatalf("per-batch slices wrong: %+v", s)
	}
}
