// Package simtime provides the virtual-time accounting used by the cluster
// simulation: per-rank clocks with named phase buckets, and the cost model
// that converts work (bytes moved, BLAST work units) into virtual seconds.
//
// The parallel engines in this repository execute real data flow (real
// messages, real bytes, real search results), but report *virtual* time:
// every compute, communication, and I/O action advances the acting rank's
// clock by a deterministic model cost. This reproduces the paper's cluster-
// scale performance shapes on a single machine, independent of wall-clock
// noise.
package simtime

import (
	"fmt"
	"sort"
)

// Phase names match the paper's execution-time breakdown (Table 1).
const (
	PhaseCopy   = "copy"   // mpiBLAST: fragment copy to local storage
	PhaseInput  = "input"  // pioBLAST: parallel read of the shared database
	PhaseSearch = "search" // BLAST kernel compute
	PhaseOutput = "output" // result merging and result-file writing
	PhaseOther  = "other"  // broadcast, setup, cleanup
	// PhaseIdle marks a rank waiting for work that other ranks are doing
	// (the master parked while workers search). It is excluded from the
	// reported per-phase maxima: the paper's stacked bars attribute each
	// wall-clock interval to the phase the busy ranks are in.
	PhaseIdle = "idle"
)

// Clock is one rank's virtual clock. It is not safe for concurrent use;
// under the sequential discrete-event scheduler only the owning rank
// touches it.
type Clock struct {
	now      float64
	phase    string
	buckets  map[string]float64
	observer func(phase string, from, to float64)
}

// NewClock returns a clock at time zero charging PhaseOther.
func NewClock() *Clock {
	return &Clock{phase: PhaseOther, buckets: make(map[string]float64)}
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Phase returns the currently charged phase.
func (c *Clock) Phase() string { return c.phase }

// SetPhase switches the bucket that subsequent time is charged to.
func (c *Clock) SetPhase(phase string) { c.phase = phase }

// SetObserver installs a callback invoked for every advance with the
// charged phase and the covered interval — the hook the trace collector
// uses to build timelines. Pass nil to disable.
func (c *Clock) SetObserver(fn func(phase string, from, to float64)) { c.observer = fn }

// Advance adds d seconds to the clock, charged to the current phase.
// Negative d panics: virtual time is monotone.
func (c *Clock) Advance(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative advance %g", d))
	}
	from := c.now
	c.now += d
	c.buckets[c.phase] += d
	if c.observer != nil && d > 0 {
		c.observer(c.phase, from, c.now)
	}
}

// AdvanceTo moves the clock forward to t if t is in the future; waiting
// time is charged to the current phase (a rank stalled in the output
// protocol is spending output time, exactly as the paper accounts it).
func (c *Clock) AdvanceTo(t float64) {
	if t > c.now {
		c.Advance(t - c.now)
	}
}

// OverlapSplit splits an asynchronous operation's [start, end) interval,
// observed at time now, into the part hidden behind whatever the rank did
// in the meantime and the part still exposed (left to wait out). It is the
// accounting identity behind async I/O: a rank that starts an access, then
// computes, then waits, advances by max(io, compute) instead of their sum,
// and hidden+exposed always equals the operation's full duration.
func OverlapSplit(start, end, now float64) (hidden, exposed float64) {
	if end <= start {
		return 0, 0
	}
	hidden = end - start
	if now < end {
		exposed = end - now
		hidden -= exposed
	}
	if hidden < 0 {
		hidden = 0
	}
	return hidden, exposed
}

// Bucket returns the accumulated seconds of one phase.
func (c *Clock) Bucket(phase string) float64 { return c.buckets[phase] }

// Buckets returns a copy of all phase accumulations.
func (c *Clock) Buckets() map[string]float64 {
	out := make(map[string]float64, len(c.buckets))
	for k, v := range c.buckets {
		out[k] = v
	}
	return out
}

// Breakdown summarises one or many clocks into the paper's phase rows.
type Breakdown struct {
	Copy   float64
	Input  float64
	Search float64
	Output float64
	Other  float64
	Total  float64
}

// BreakdownOf converts a clock's buckets into a Breakdown.
func BreakdownOf(c *Clock) Breakdown {
	b := Breakdown{
		Copy:   c.Bucket(PhaseCopy),
		Input:  c.Bucket(PhaseInput),
		Search: c.Bucket(PhaseSearch),
		Output: c.Bucket(PhaseOutput),
		Other:  c.Bucket(PhaseOther),
	}
	b.Total = b.Copy + b.Input + b.Search + b.Output + b.Other
	return b
}

// MaxBreakdown merges per-rank breakdowns the way the paper reports a run:
// the run's wall time is the slowest rank's total, and the phase split is
// taken from that critical rank.
func MaxBreakdown(clocks []*Clock) Breakdown {
	var worst Breakdown
	for _, c := range clocks {
		b := BreakdownOf(c)
		if b.Total > worst.Total {
			worst = b
		}
	}
	return worst
}

// NonSearch returns everything except the search bucket ("other" time in
// the paper's Figure 1(a) sense).
func (b Breakdown) NonSearch() float64 { return b.Total - b.Search }

// String renders the breakdown as a Table-1-style row.
func (b Breakdown) String() string {
	return fmt.Sprintf("copy/input=%.1f search=%.1f output=%.1f other=%.1f total=%.1f",
		b.Copy+b.Input, b.Search, b.Output, b.Other, b.Total)
}

// CostModel holds the deterministic constants that convert work into
// virtual seconds. The defaults describe a 2004-era cluster in the spirit
// of the paper's platforms; they are knobs, not measurements.
type CostModel struct {
	// NetLatency is the per-message latency in seconds.
	NetLatency float64
	// NetBandwidth is point-to-point bandwidth in bytes/second.
	NetBandwidth float64
	// SearchUnitCost converts blast.WorkCounters.Units() into seconds.
	SearchUnitCost float64
	// FormatByteCost is the per-byte cost of rendering report text.
	FormatByteCost float64
	// MergeItemCost is the per-metadata-item cost of sorting/filtering
	// result records during merging (both engines pay this).
	MergeItemCost float64
	// FetchItemCost is the baseline master's per-alignment cost of
	// fetching and processing one hit's alignment data through the NCBI
	// result structures — the serialized pipeline pioBLAST eliminates.
	// (The paper measures ~13 ms per output alignment on its platform.)
	FetchItemCost float64
	// MemCopyBandwidth is the bytes/second of in-memory buffer copies.
	MemCopyBandwidth float64
	// ResultMsgCost is the master's cost of ingesting one per-fragment
	// result submission in the baseline: the NCBI SeqAlign structures are
	// deserialized and spliced into the master's result list. pioBLAST's
	// flat metadata records don't pay this, which is why the baseline's
	// merging time grows with the number of fragments/workers.
	ResultMsgCost float64
	// SetupCost is the fixed per-run engine initialization/cleanup charged
	// to the "other" phase (NCBI toolkit init, query broadcast handling).
	SetupCost float64
}

// DefaultCostModel mirrors a Myrinet/GigE-class interconnect and a
// 1.5 GHz Itanium2-class node.
func DefaultCostModel() CostModel {
	return CostModel{
		NetLatency:       40e-6,
		NetBandwidth:     100e6,
		SearchUnitCost:   56e-9,
		FormatByteCost:   40e-9,
		MergeItemCost:    3e-6,
		FetchItemCost:    1500e-6,
		MemCopyBandwidth: 1e9,
		ResultMsgCost:    400e-6,
		SetupCost:        12e-3,
	}
}

// MessageCost returns the virtual duration of moving size bytes between
// two ranks.
func (m CostModel) MessageCost(size int64) float64 {
	return m.NetLatency + float64(size)/m.NetBandwidth
}

// Validate rejects models that would divide by zero or run time backwards.
func (m CostModel) Validate() error {
	if m.NetLatency < 0 || m.NetBandwidth <= 0 || m.SearchUnitCost < 0 ||
		m.FormatByteCost < 0 || m.MergeItemCost < 0 || m.FetchItemCost < 0 ||
		m.MemCopyBandwidth <= 0 || m.ResultMsgCost < 0 || m.SetupCost < 0 {
		return fmt.Errorf("simtime: invalid cost model %+v", m)
	}
	return nil
}

// SortedPhases returns the bucket names of a clock in deterministic order,
// for stable printing.
func SortedPhases(c *Clock) []string {
	names := make([]string, 0, len(c.buckets))
	for k := range c.buckets {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
