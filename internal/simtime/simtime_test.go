package simtime

import (
	"strings"
	"testing"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatal("new clock not at zero")
	}
	c.SetPhase(PhaseSearch)
	c.Advance(2.5)
	c.SetPhase(PhaseOutput)
	c.Advance(1.5)
	if c.Now() != 4.0 {
		t.Fatalf("now = %g", c.Now())
	}
	if c.Bucket(PhaseSearch) != 2.5 || c.Bucket(PhaseOutput) != 1.5 {
		t.Fatalf("buckets wrong: %v", c.Buckets())
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.SetPhase(PhaseOutput)
	c.AdvanceTo(3)
	c.AdvanceTo(1) // in the past: no-op
	if c.Now() != 3 {
		t.Fatalf("now = %g", c.Now())
	}
	if c.Bucket(PhaseOutput) != 3 {
		t.Fatal("waiting not charged to current phase")
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestBreakdown(t *testing.T) {
	c := NewClock()
	c.SetPhase(PhaseCopy)
	c.Advance(1)
	c.SetPhase(PhaseSearch)
	c.Advance(10)
	c.SetPhase(PhaseOutput)
	c.Advance(4)
	b := BreakdownOf(c)
	if b.Total != 15 || b.Search != 10 || b.NonSearch() != 5 {
		t.Fatalf("breakdown wrong: %+v", b)
	}
	if !strings.Contains(b.String(), "search=10.0") {
		t.Fatalf("breakdown string: %s", b)
	}
}

func TestMaxBreakdown(t *testing.T) {
	fast := NewClock()
	fast.SetPhase(PhaseSearch)
	fast.Advance(5)
	slow := NewClock()
	slow.SetPhase(PhaseSearch)
	slow.Advance(7)
	slow.SetPhase(PhaseOutput)
	slow.Advance(2)
	b := MaxBreakdown([]*Clock{fast, slow})
	if b.Total != 9 || b.Search != 7 {
		t.Fatalf("max breakdown picked wrong rank: %+v", b)
	}
}

func TestCostModel(t *testing.T) {
	m := DefaultCostModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.MessageCost(0) != m.NetLatency {
		t.Fatal("zero-byte message should cost one latency")
	}
	if m.MessageCost(1000) <= m.MessageCost(10) {
		t.Fatal("message cost not increasing in size")
	}
	bad := m
	bad.NetBandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

func TestSortedPhases(t *testing.T) {
	c := NewClock()
	c.SetPhase(PhaseSearch)
	c.Advance(1)
	c.SetPhase(PhaseCopy)
	c.Advance(1)
	got := SortedPhases(c)
	if len(got) != 2 || got[0] != PhaseCopy || got[1] != PhaseSearch {
		t.Fatalf("phases = %v", got)
	}
}

func TestOverlapSplit(t *testing.T) {
	cases := []struct {
		start, end, now float64
		hidden, exposed float64
	}{
		{0, 10, 0, 0, 10},  // waited immediately: fully exposed
		{0, 10, 4, 4, 6},   // partial overlap
		{0, 10, 10, 10, 0}, // finished exactly at the wait
		{0, 10, 25, 10, 0}, // finished long before the wait: fully hidden
		{5, 5, 7, 0, 0},    // zero-length operation
		{9, 5, 9, 0, 0},    // degenerate interval
	}
	for _, c := range cases {
		h, e := OverlapSplit(c.start, c.end, c.now)
		if h != c.hidden || e != c.exposed {
			t.Fatalf("OverlapSplit(%g,%g,%g) = (%g,%g), want (%g,%g)",
				c.start, c.end, c.now, h, e, c.hidden, c.exposed)
		}
		if c.end > c.start && h+e != c.end-c.start {
			t.Fatalf("hidden+exposed = %g, want full duration %g", h+e, c.end-c.start)
		}
	}
}
