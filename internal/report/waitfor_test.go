package report

import (
	"math"
	"reflect"
	"testing"

	"parblast/internal/trace"
)

// waitForFixture builds a two-rank history with a known critical path:
//
//	rank 0: search [0,1]  idle [1,3]  output [3,4]   ← finish at 4
//	rank 1: search [0,2.5]
//	flow:   rank 1 → rank 0, sent 2.5, delivered 3, batch 2
//
// The exact path is output(1s, io) ← delivery(0.5s net) ← search(2.5s),
// crossing to rank 1 exactly where the run serialized.
func waitForFixture() *trace.Collector {
	c := trace.NewCollector()
	c.Record(0, "search", 0, 1)
	c.Record(0, "idle", 1, 3)
	c.Record(0, "output", 3, 4)
	c.Record(1, "search", 0, 2.5)
	c.RecordFlow(trace.Flow{
		Kind: trace.FlowMsg, Op: "tag03", ID: 1, Batch: 2,
		Src: 1, Dst: 0, Bytes: 100, SendAt: 2.5, RecvAt: 3,
	})
	return c
}

func TestExactCriticalPathCrossRank(t *testing.T) {
	p := ExactCriticalPath(waitForFixture())
	if p == nil {
		t.Fatal("nil path")
	}
	if p.FinishRank != 0 || p.Finish != 4 {
		t.Fatalf("anchor = rank %d @ %g, want rank 0 @ 4", p.FinishRank, p.Finish)
	}
	if p.Hops != 1 {
		t.Fatalf("hops = %d, want 1", p.Hops)
	}
	want := BlameBreakdown{Net: 0.5, IO: 1, Search: 2.5}
	if p.Blame != want {
		t.Fatalf("blame = %+v, want %+v", p.Blame, want)
	}
	if p.Dominant != "search" {
		t.Fatalf("dominant = %q, want search", p.Dominant)
	}
	if p.Unexplained != 0 || p.DroppedFlows != 0 {
		t.Fatalf("unexplained=%g dropped=%d, want 0/0", p.Unexplained, p.DroppedFlows)
	}
	// The tiling invariant: blame accounts for every second of the path.
	if got := p.Blame.Total(); math.Abs(got-(p.Finish-p.Unexplained)) > 1e-12 {
		t.Fatalf("blame total %g does not tile finish %g", got, p.Finish)
	}
	// Batch attribution: the output span precedes any flow traversal
	// (batch -1); net and the sender's search ride the flow's batch 2.
	wantBatches := []BatchBlame{
		{Batch: -1, Blame: BlameBreakdown{IO: 1}},
		{Batch: 2, Blame: BlameBreakdown{Net: 0.5, Search: 2.5}},
	}
	if !reflect.DeepEqual(p.Batches, wantBatches) {
		t.Fatalf("batches = %+v, want %+v", p.Batches, wantBatches)
	}
}

// TestExactCriticalPathNoFlows: with no causal edges, an idle wait is blamed
// on the peer entirely (it never sent anything) and the path stays on the
// finish rank.
func TestExactCriticalPathNoFlows(t *testing.T) {
	c := trace.NewCollector()
	c.Record(0, "idle", 0, 2)
	c.Record(0, "output", 2, 3)
	p := ExactCriticalPath(c)
	if p == nil {
		t.Fatal("nil path")
	}
	want := BlameBreakdown{PeerNotReady: 2, IO: 1}
	if p.Blame != want || p.Hops != 0 {
		t.Fatalf("blame = %+v hops = %d, want %+v hops 0", p.Blame, p.Hops, want)
	}
}

// TestExactCriticalPathEmpty: nil collectors and span-free histories have
// nothing to anchor the walk.
func TestExactCriticalPathEmpty(t *testing.T) {
	if p := ExactCriticalPath(nil); p != nil {
		t.Fatalf("nil collector → %+v, want nil", p)
	}
	if p := ExactCriticalPath(trace.NewCollector()); p != nil {
		t.Fatalf("empty collector → %+v, want nil", p)
	}
}

// TestExactCriticalPathDeterministic: identical histories yield identical
// paths, including the per-batch split ordering.
func TestExactCriticalPathDeterministic(t *testing.T) {
	a := ExactCriticalPath(waitForFixture())
	b := ExactCriticalPath(waitForFixture())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("paths differ:\n%+v\n%+v", a, b)
	}
}

// TestExactCriticalPathDropsBadFlows: a corrupt (time-reversed) edge is
// dropped rather than traversed, and the count surfaces in the artifact.
func TestExactCriticalPathDropsBadFlows(t *testing.T) {
	c := waitForFixture()
	c.RecordFlow(trace.Flow{Kind: trace.FlowMsg, Op: "tag03", ID: 9,
		Src: 1, Dst: 0, SendAt: 5, RecvAt: 2})
	p := ExactCriticalPath(c)
	if p.DroppedFlows != 1 {
		t.Fatalf("dropped = %d, want 1", p.DroppedFlows)
	}
	if p.Blame != (BlameBreakdown{Net: 0.5, IO: 1, Search: 2.5}) {
		t.Fatalf("blame changed by dropped edge: %+v", p.Blame)
	}
}

func TestBlameDominantTieBreak(t *testing.T) {
	// Equal io and search: name order picks "io".
	b := BlameBreakdown{IO: 2, Search: 2}
	if got := b.Dominant(); got != "io" {
		t.Fatalf("dominant = %q, want io (name-ordered tie)", got)
	}
	if got := (BlameBreakdown{}).Dominant(); got != "io" {
		t.Fatalf("all-zero dominant = %q, want io", got)
	}
}

func TestLatencySummaryOf(t *testing.T) {
	if ls := LatencySummaryOf(nil); ls != nil {
		t.Fatalf("empty → %+v, want nil", ls)
	}
	ls := LatencySummaryOf([]float64{0.4, 0.1, 0.2, 0.3})
	if ls.Count != 4 || ls.P50 != 0.2 || ls.P95 != 0.4 || ls.P99 != 0.4 || ls.Max != 0.4 {
		t.Fatalf("summary = %+v", ls)
	}
	if !(ls.P50 <= ls.P95 && ls.P95 <= ls.P99 && ls.P99 <= ls.Max) {
		t.Fatalf("percentiles not monotone: %+v", ls)
	}
}
