package report

import (
	"sort"

	"parblast/internal/simtime"
	"parblast/internal/trace"
)

// Wait-for analysis: walk the causal flow graph backward from the run's
// global finish to produce the EXACT cross-rank critical path — the chain
// of work and message deliveries that bounds the wall time — with every
// second of it blamed on one of five categories. This replaces guesswork
// ("the slowest rank's dominant phase") with causality: when the walk hits
// an idle span it asks WHICH delivery ended the wait and jumps to the
// sender, so the path crosses ranks exactly where the run actually
// serialized.
//
// Blame categories:
//
//	io             — time in the copy/input/output phases on the path
//	search         — time in the search phase on the path
//	other          — setup/encode/decode time (and untracked gaps)
//	net            — send-to-delivery time of path messages (latency +
//	                 receive bandwidth of the releasing delivery)
//	peer-not-ready — idle time NOT covered by an inbound delivery: the
//	                 receiver was parked before the sender even sent
//
// The walk tiles the interval [path start, finish] exactly: the blame
// amounts sum to Finish minus Unexplained (time before the first span).

// BlameBreakdown is virtual seconds of critical-path time per category.
type BlameBreakdown struct {
	Net          float64 `json:"net_s"`
	PeerNotReady float64 `json:"peer_not_ready_s"`
	IO           float64 `json:"io_s"`
	Search       float64 `json:"search_s"`
	Other        float64 `json:"other_s"`
}

// add books d seconds against one category.
func (b *BlameBreakdown) add(category string, d float64) {
	switch category {
	case "net":
		b.Net += d
	case "peer-not-ready":
		b.PeerNotReady += d
	case "io":
		b.IO += d
	case "search":
		b.Search += d
	default:
		b.Other += d
	}
}

// Total sums all categories.
func (b BlameBreakdown) Total() float64 {
	return b.Net + b.PeerNotReady + b.IO + b.Search + b.Other
}

// Dominant names the largest category, name-ordered on ties.
func (b BlameBreakdown) Dominant() string {
	best, bestV := "", -1.0
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"io", b.IO},
		{"net", b.Net},
		{"other", b.Other},
		{"peer-not-ready", b.PeerNotReady},
		{"search", b.Search},
	} {
		if c.v > bestV {
			best, bestV = c.name, c.v
		}
	}
	return best
}

// BatchBlame is one query batch's share of the critical path. Batch -1
// collects path time outside any batch context (setup, broadcasts).
type BatchBlame struct {
	Batch int            `json:"batch"`
	Blame BlameBreakdown `json:"blame"`
}

// ExactPath is the wait-for analyzer's artifact block.
type ExactPath struct {
	// FinishRank/Finish anchor the walk: the rank whose last span ends
	// latest, and that time.
	FinishRank int     `json:"finish_rank"`
	Finish     float64 `json:"finish_s"`
	// Steps counts walk iterations; Hops counts cross-rank jumps (each one
	// a message or collective release the finish causally waited on).
	Steps int `json:"steps"`
	Hops  int `json:"hops"`
	// Blame is the whole path's category breakdown; Dominant names its
	// largest category (deterministic tie-break).
	Blame    BlameBreakdown `json:"blame"`
	Dominant string         `json:"dominant"`
	// Batches splits the blame by query-batch trace context, ascending by
	// batch id (-1 first when present).
	Batches []BatchBlame `json:"batches,omitempty"`
	// Unexplained is path time before the first recorded span (normally 0);
	// DroppedFlows counts flow edges the graph builder rejected.
	Unexplained  float64 `json:"unexplained_s"`
	DroppedFlows int     `json:"dropped_flows"`
}

// phaseCategory maps a span phase to a blame category.
func phaseCategory(phase string) string {
	switch phase {
	case simtime.PhaseCopy, simtime.PhaseInput, simtime.PhaseOutput:
		return "io"
	case simtime.PhaseSearch:
		return "search"
	default:
		return "other"
	}
}

// maxWaitForSteps caps the walk; every step strictly decreases the cursor
// time, so the cap only fires on pathological adversarial input (fuzzing).
const maxWaitForSteps = 1 << 20

// ExactCriticalPath runs the wait-for analysis over a collector's spans
// and flows. Returns nil when no spans were recorded (nothing to anchor
// the walk). Deterministic: same collector content, same path.
func ExactCriticalPath(col *trace.Collector) *ExactPath {
	if col == nil {
		return nil
	}
	spans := make(map[int][]trace.Span)
	finishRank, finish := -1, 0.0
	for _, rank := range col.Ranks() {
		ss := col.Spans(rank)
		sort.SliceStable(ss, func(i, j int) bool { return ss[i].From < ss[j].From })
		spans[rank] = ss
		for _, s := range ss {
			if s.To > finish || (s.To == finish && finishRank < 0) {
				finishRank, finish = rank, s.To
			}
		}
	}
	if finishRank < 0 {
		return nil
	}
	g := trace.BuildFlowGraph(col.Flows())
	p := &ExactPath{FinishRank: finishRank, Finish: finish, DroppedFlows: g.Dropped}
	perBatch := make(map[int]*BlameBreakdown)
	blame := func(batch int, category string, d float64) {
		if d <= 0 {
			return
		}
		p.Blame.add(category, d)
		bb := perBatch[batch]
		if bb == nil {
			bb = &BlameBreakdown{}
			perBatch[batch] = bb
		}
		bb.add(category, d)
	}

	rank, t := finishRank, finish
	batch := -1 // current trace context: the last traversed flow's batch
	for t > 0 && p.Steps < maxWaitForSteps {
		p.Steps++
		ss := spans[rank]
		// Last span starting strictly before the cursor.
		i := sort.Search(len(ss), func(k int) bool { return ss[k].From >= t }) - 1
		if i < 0 {
			// No span covers this rank before t: time predating the rank's
			// record is unexplained (the walk is done).
			p.Unexplained = t
			break
		}
		s := ss[i]
		if s.To < t {
			// Gap between spans: untracked local time.
			blame(batch, "other", t-s.To)
			t = s.To
			continue
		}
		if s.Phase != simtime.PhaseIdle {
			blame(batch, phaseCategory(s.Phase), t-s.From)
			t = s.From
			continue
		}
		// Idle: find the delivery that ended the wait.
		if f, ok := g.LatestInbound(rank, s.From, t); ok {
			if f.Batch >= 0 {
				batch = f.Batch
			}
			blame(batch, "peer-not-ready", t-f.RecvAt)
			blame(batch, "net", f.RecvAt-f.SendAt)
			rank, t = f.Src, f.SendAt
			p.Hops++
			continue
		}
		// Idle with no inbound edge: the peer had not produced anything yet.
		blame(batch, "peer-not-ready", t-s.From)
		t = s.From
	}
	p.Dominant = p.Blame.Dominant()
	ids := make([]int, 0, len(perBatch))
	for id := range perBatch {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		p.Batches = append(p.Batches, BatchBlame{Batch: id, Blame: *perBatch[id]})
	}
	return p
}
