package report

import (
	"bytes"
	"testing"
)

// FuzzReportParse hardens the artifact reader: ParseRun must never panic
// on arbitrary input, and anything it accepts must carry the right kind
// discriminator and a version this reader supports.
func FuzzReportParse(f *testing.F) {
	var buf bytes.Buffer
	if err := (Run{Version: Version, Kind: KindRun}).WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"version":1,"kind":"parblast-run"}`))
	f.Add([]byte(`{"version":99,"kind":"parblast-run"}`))
	f.Add([]byte(`{"version":1,"kind":"parblast-suite"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		run, err := ParseRun(data)
		if err != nil {
			return
		}
		if run.Kind != KindRun {
			t.Fatalf("ParseRun accepted kind %q", run.Kind)
		}
		if run.Version < 1 || run.Version > Version {
			t.Fatalf("ParseRun accepted version %d (reader supports 1..%d)", run.Version, Version)
		}
	})
}
