// Package report serializes one simulated run (or a suite of runs) into a
// single versioned, machine-readable JSON artifact: the run configuration,
// the virtual-time result, a per-rank phase breakdown with critical-path
// and straggler attribution, and the full unified-telemetry snapshot.
//
// The artifact is the tool-facing counterpart of the CLI's human-readable
// phase table: every experiment emits a comparable document, so regression
// tooling can diff runs across commits without scraping stdout. Artifacts
// are deterministic — the same seed/config yields byte-identical files —
// because every slice is explicitly ordered and Go's encoding/json
// marshals maps with sorted keys.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"parblast/internal/engine"
	"parblast/internal/metrics"
	"parblast/internal/simtime"
)

// Version is the artifact schema version. Bump on any field removal or
// meaning change; additions are backward-compatible and don't bump.
const Version = 1

// Kind discriminators let a reader reject the wrong artifact flavour.
const (
	KindRun   = "parblast-run"
	KindSuite = "parblast-suite"
)

// RunInfo describes what was run (the inputs, not the outcome).
type RunInfo struct {
	Engine     string            `json:"engine"`
	Platform   string            `json:"platform"`
	Procs      int               `json:"procs"`
	Queries    int               `json:"queries,omitempty"`
	DBSeqs     int               `json:"db_seqs,omitempty"`
	DBResidues int64             `json:"db_residues,omitempty"`
	Extra      map[string]string `json:"extra,omitempty"`
}

// PhaseBreakdown mirrors simtime.Breakdown with JSON tags.
type PhaseBreakdown struct {
	Copy   float64 `json:"copy_s"`
	Input  float64 `json:"input_s"`
	Search float64 `json:"search_s"`
	Output float64 `json:"output_s"`
	Other  float64 `json:"other_s"`
	Total  float64 `json:"total_s"`
}

func phasesOf(b simtime.Breakdown) PhaseBreakdown {
	return PhaseBreakdown{
		Copy: b.Copy, Input: b.Input, Search: b.Search,
		Output: b.Output, Other: b.Other, Total: b.Total,
	}
}

// RunSummary is the outcome of one run in comparable scalar form.
type RunSummary struct {
	Wall            float64        `json:"wall_s"`
	SearchFraction  float64        `json:"search_fraction"`
	Phase           PhaseBreakdown `json:"phase"`
	OutputBytes     int64          `json:"output_bytes"`
	CommBytes       int64          `json:"comm_bytes"`
	ShuffleBytes    int64          `json:"shuffle_bytes"`
	CollectiveBytes int64          `json:"collective_bytes"`
	CommMessages    int64          `json:"comm_messages"`
	IOFaultedOps    int64          `json:"io_faulted_ops"`
	IORetries       int64          `json:"io_retries"`
	IOBackoff       float64        `json:"io_backoff_s"`
	// QueryLatency summarizes per-query end-to-end latency (admission to
	// result-merge completion) when the engine recorded it.
	QueryLatency *LatencySummary `json:"query_latency,omitempty"`
}

// LatencySummary holds exact nearest-rank percentiles over the per-query
// end-to-end latencies — deterministic (virtual-time derived), so the block
// is byte-identical across repeated runs and SearchThreads settings.
type LatencySummary struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_s"`
	P95   float64 `json:"p95_s"`
	P99   float64 `json:"p99_s"`
	Max   float64 `json:"max_s"`
}

// LatencySummaryOf computes the exact percentile block from raw per-query
// latencies; nil when none were recorded.
func LatencySummaryOf(latencies []float64) *LatencySummary {
	if len(latencies) == 0 {
		return nil
	}
	ls := &LatencySummary{
		Count: len(latencies),
		P50:   metrics.ExactQuantile(latencies, 0.50),
		P95:   metrics.ExactQuantile(latencies, 0.95),
		P99:   metrics.ExactQuantile(latencies, 0.99),
	}
	for _, v := range latencies {
		if v > ls.Max {
			ls.Max = v
		}
	}
	return ls
}

// SummaryOf flattens an engine result into the artifact's summary form.
func SummaryOf(res engine.RunResult) RunSummary {
	return RunSummary{
		Wall:            res.Wall,
		SearchFraction:  res.SearchFraction(),
		Phase:           phasesOf(res.Phase),
		OutputBytes:     res.OutputBytes,
		CommBytes:       res.CommBytes,
		ShuffleBytes:    res.ShuffleBytes,
		CollectiveBytes: res.CollectiveBytes,
		CommMessages:    res.CommMessages,
		IOFaultedOps:    res.IOFaultedOps,
		IORetries:       res.IORetries,
		IOBackoff:       res.IOBackoff,
		QueryLatency:    LatencySummaryOf(res.QueryLatencies),
	}
}

// RankBreakdown is one rank's virtual-time account. Phases includes every
// bucket the rank charged (idle too, unlike the run-level maxima).
type RankBreakdown struct {
	Rank         int                `json:"rank"`
	Finish       float64            `json:"finish_s"`
	Phases       map[string]float64 `json:"phases"`
	IdleFraction float64            `json:"idle_fraction"`
}

// CriticalPath attributes the run's wall time: which rank finished last
// (and therefore bounds the wall), which phase dominates that rank's time,
// how far ahead of the second-slowest it finished (the straggler's lead),
// and where the worst idling happened.
type CriticalPath struct {
	Rank            int     `json:"rank"`
	Finish          float64 `json:"finish_s"`
	DominantPhase   string  `json:"dominant_phase"`
	DominantShare   float64 `json:"dominant_share"`
	StragglerLead   float64 `json:"straggler_lead_s"`
	MaxIdleRank     int     `json:"max_idle_rank"`
	MaxIdleFraction float64 `json:"max_idle_fraction"`
}

// Run is the single-run artifact.
type Run struct {
	Version      int             `json:"version"`
	Kind         string          `json:"kind"`
	Info         RunInfo         `json:"info"`
	Summary      RunSummary      `json:"summary"`
	Ranks        []RankBreakdown `json:"ranks"`
	CriticalPath *CriticalPath   `json:"critical_path,omitempty"`
	// ExactPath is the flow-graph wait-for analysis (see waitfor.go),
	// attached by callers that collected causal flows; the heuristic
	// CriticalPath above is always present for comparison.
	ExactPath *ExactPath       `json:"exact_critical_path,omitempty"`
	Metrics   metrics.Snapshot `json:"metrics"`
}

// Build assembles the artifact for one finished run. reg may be nil (the
// metrics block is then empty); res.Clocks may be empty (sequential engine),
// in which case the per-rank and critical-path blocks are omitted.
func Build(info RunInfo, res engine.RunResult, reg *metrics.Registry) Run {
	r := Run{
		Version: Version,
		Kind:    KindRun,
		Info:    info,
		Summary: SummaryOf(res),
		Ranks:   []RankBreakdown{},
		Metrics: reg.Snapshot(),
	}
	for rank, clock := range res.Clocks {
		rb := RankBreakdown{
			Rank:   rank,
			Finish: clock.Now(),
			Phases: clock.Buckets(),
		}
		if rb.Finish > 0 {
			rb.IdleFraction = clock.Bucket(simtime.PhaseIdle) / rb.Finish
		}
		r.Ranks = append(r.Ranks, rb)
	}
	if cp := criticalPath(r.Ranks); cp != nil {
		r.CriticalPath = cp
	}
	return r
}

// criticalPath derives the wall-time attribution from per-rank breakdowns.
func criticalPath(ranks []RankBreakdown) *CriticalPath {
	if len(ranks) == 0 {
		return nil
	}
	cp := &CriticalPath{Rank: -1, MaxIdleRank: -1}
	var secondFinish float64
	for _, rb := range ranks {
		if cp.Rank < 0 || rb.Finish > cp.Finish {
			if cp.Rank >= 0 {
				secondFinish = cp.Finish
			}
			cp.Rank, cp.Finish = rb.Rank, rb.Finish
		} else if rb.Finish > secondFinish {
			secondFinish = rb.Finish
		}
		if cp.MaxIdleRank < 0 || rb.IdleFraction > cp.MaxIdleFraction {
			cp.MaxIdleRank, cp.MaxIdleFraction = rb.Rank, rb.IdleFraction
		}
	}
	if len(ranks) > 1 {
		cp.StragglerLead = cp.Finish - secondFinish
	}
	// Dominant phase of the critical rank: largest non-idle bucket,
	// name-ordered for a deterministic tie-break.
	for _, rb := range ranks {
		if rb.Rank != cp.Rank {
			continue
		}
		names := make([]string, 0, len(rb.Phases))
		for name := range rb.Phases {
			if name != simtime.PhaseIdle {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		var best float64
		for _, name := range names {
			if rb.Phases[name] > best {
				best = rb.Phases[name]
				cp.DominantPhase = name
			}
		}
		if cp.Finish > 0 {
			cp.DominantShare = best / cp.Finish
		}
	}
	return cp
}

// WriteJSON writes the artifact, indented, with a trailing newline.
func (r Run) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ParseRun reads an artifact back, rejecting wrong kinds and future
// versions.
func ParseRun(data []byte) (Run, error) {
	var r Run
	if err := json.Unmarshal(data, &r); err != nil {
		return Run{}, fmt.Errorf("report: %w", err)
	}
	if r.Kind != KindRun {
		return Run{}, fmt.Errorf("report: artifact kind %q, want %q", r.Kind, KindRun)
	}
	if r.Version < 1 || r.Version > Version {
		return Run{}, fmt.Errorf("report: unsupported artifact version %d (reader supports ≤%d)", r.Version, Version)
	}
	return r, nil
}

// SLAInfo carries serving-mode stream accounting on a suite row: the
// arrival-process configuration plus the admission outcome. Present only on
// rows produced by the SLA experiment (streamed runs). An addition, not a
// meaning change, so the artifact version stays.
type SLAInfo struct {
	// Sweep names the sweep the row belongs to: "rate" (arrival-rate sweep,
	// fixed batch config), "batch" (batch-size sweep, fixed rate), or
	// "shed" (bounded admission queue under overload).
	Sweep string `json:"sweep"`
	// ArrivalRate is the mean batch-arrival rate (batches per virtual
	// second); Burst and BatchMean describe the arrival process.
	ArrivalRate float64 `json:"arrival_rate"`
	Burst       float64 `json:"burst,omitempty"`
	BatchMean   int     `json:"batch_mean,omitempty"`
	// AdmitCap is the admission-queue bound (0 = unbounded).
	AdmitCap int `json:"admit_cap,omitempty"`
	// Arrivals/Admitted/Shed is the stream accounting; Arrivals is always
	// Admitted + Shed.
	Arrivals int `json:"arrivals"`
	Admitted int `json:"admitted"`
	Shed     int `json:"shed"`
	// Saturated marks a row whose bounded queue actually dropped work.
	Saturated bool `json:"saturated,omitempty"`
}

// SuiteRow is one experiment row in a suite artifact.
type SuiteRow struct {
	Label      string     `json:"label,omitempty"`
	Engine     string     `json:"engine"`
	Procs      int        `json:"procs"`
	Fragments  int        `json:"fragments,omitempty"`
	QueryBytes int        `json:"query_bytes,omitempty"`
	Summary    RunSummary `json:"summary"`
	// SLA is present on serving-mode (streamed) rows only.
	SLA *SLAInfo `json:"sla,omitempty"`
}

// Experiment groups a named experiment's rows.
type Experiment struct {
	Name  string     `json:"name"`
	Title string     `json:"title"`
	Rows  []SuiteRow `json:"rows"`
}

// Suite is the multi-run artifact cmd/benchsuite emits.
type Suite struct {
	Version     int          `json:"version"`
	Kind        string       `json:"kind"`
	Suite       string       `json:"suite"`
	Experiments []Experiment `json:"experiments"`
}

// NewSuite returns an empty suite artifact with the version stamped.
func NewSuite(name string) Suite {
	return Suite{Version: Version, Kind: KindSuite, Suite: name, Experiments: []Experiment{}}
}

// WriteJSON writes the suite artifact, indented, with a trailing newline.
func (s Suite) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ParseSuite reads a suite artifact back, rejecting wrong kinds and future
// versions.
func ParseSuite(data []byte) (Suite, error) {
	var s Suite
	if err := json.Unmarshal(data, &s); err != nil {
		return Suite{}, fmt.Errorf("report: %w", err)
	}
	if s.Kind != KindSuite {
		return Suite{}, fmt.Errorf("report: artifact kind %q, want %q", s.Kind, KindSuite)
	}
	if s.Version < 1 || s.Version > Version {
		return Suite{}, fmt.Errorf("report: unsupported artifact version %d (reader supports ≤%d)", s.Version, Version)
	}
	return s, nil
}
