package report_test

import (
	"bytes"
	"testing"

	"parblast"
	"parblast/internal/report"
	"parblast/internal/simtime"
)

// runOnce executes a small pioBLAST run with telemetry enabled and returns
// the built artifact bytes.
func runOnce(t *testing.T) []byte {
	t.Helper()
	cluster, err := parblast.NewCluster(4, parblast.PlatformAltix)
	if err != nil {
		t.Fatal(err)
	}
	reg := cluster.Metrics()
	seqs, err := parblast.SynthesizeDB(parblast.DBConfig{
		Kind: parblast.Protein, NumSeqs: 60, MeanLen: 120, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := cluster.FormatDB("nr", seqs, "report test db")
	if err != nil {
		t.Fatal(err)
	}
	queries, err := parblast.SampleQueries(seqs, parblast.QueryConfig{
		TargetBytes: 1024, MeanLen: 80, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(parblast.EnginePioBLAST, parblast.Search{
		DB: db, Queries: queries, Output: "results.out",
	})
	if err != nil {
		t.Fatal(err)
	}
	r := report.Build(report.RunInfo{
		Engine:   "pioBLAST",
		Platform: "altix-xfs",
		Procs:    cluster.Procs(),
		Queries:  len(queries),
		DBSeqs:   db.NumSeqs,
	}, res, reg)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFiveLayerCoverage: a real pio run must surface metrics from every
// instrumented layer — the tentpole's acceptance criterion.
func TestFiveLayerCoverage(t *testing.T) {
	data := runOnce(t)
	r, err := report.ParseRun(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.Version != report.Version || r.Kind != report.KindRun {
		t.Fatalf("version/kind = %d/%q", r.Version, r.Kind)
	}
	for _, layer := range []string{"mpi.", "vfs.", "mpiio.", "blast.", "engine."} {
		if !r.Metrics.HasPrefix(layer) {
			t.Errorf("no metrics from layer %q in the report", layer)
		}
	}
	if len(r.Ranks) != 4 {
		t.Fatalf("ranks = %d, want 4", len(r.Ranks))
	}
	cp := r.CriticalPath
	if cp == nil {
		t.Fatal("critical path missing")
	}
	if cp.Finish != r.Summary.Wall {
		t.Fatalf("critical rank finish %g != wall %g", cp.Finish, r.Summary.Wall)
	}
	if cp.DominantPhase == "" {
		t.Fatal("dominant phase empty")
	}
	if r.Summary.Wall <= 0 || r.Summary.SearchFraction <= 0 {
		t.Fatalf("summary implausible: %+v", r.Summary)
	}
}

// TestArtifactDeterministic: two runs of the same seed/config produce
// byte-identical artifacts (the ISSUE's determinism acceptance criterion).
func TestArtifactDeterministic(t *testing.T) {
	a, b := runOnce(t), runOnce(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("artifacts differ across identical runs:\n%d vs %d bytes", len(a), len(b))
	}
}

// TestCriticalPathAttribution exercises the straggler analysis on a
// hand-built result: rank 2 finishes last with search dominating, rank 1
// idles most.
func TestCriticalPathAttribution(t *testing.T) {
	mkClock := func(phases map[string]float64) *simtime.Clock {
		c := simtime.NewClock()
		for _, p := range []string{"search", "output", "idle"} {
			if d, ok := phases[p]; ok {
				c.SetPhase(p)
				c.Advance(d)
			}
		}
		return c
	}
	clocks := []*simtime.Clock{
		mkClock(map[string]float64{"search": 4, "output": 1}),
		mkClock(map[string]float64{"search": 1, "idle": 5}),
		mkClock(map[string]float64{"search": 7, "output": 2}),
	}
	var res parblast.Result
	res.Clocks = clocks
	res.Wall = 9
	r := report.Build(report.RunInfo{Engine: "test", Procs: 3}, res, nil)
	cp := r.CriticalPath
	if cp == nil {
		t.Fatal("no critical path")
	}
	if cp.Rank != 2 || cp.Finish != 9 {
		t.Fatalf("critical rank = %d@%g, want 2@9", cp.Rank, cp.Finish)
	}
	if cp.DominantPhase != "search" || cp.DominantShare < 0.7 {
		t.Fatalf("dominant = %s (%.2f), want search ≥0.7", cp.DominantPhase, cp.DominantShare)
	}
	// Second-slowest finishes at 6 → straggler lead 3.
	if cp.StragglerLead != 3 {
		t.Fatalf("straggler lead = %g, want 3", cp.StragglerLead)
	}
	if cp.MaxIdleRank != 1 {
		t.Fatalf("max idle rank = %d, want 1", cp.MaxIdleRank)
	}
	if got := r.Ranks[1].IdleFraction; got < 0.8 {
		t.Fatalf("rank 1 idle fraction = %g, want ≥0.8", got)
	}
}

// TestParseRejects: wrong kind and future versions are refused.
func TestParseRejects(t *testing.T) {
	if _, err := report.ParseRun([]byte(`{"kind":"other","version":1}`)); err == nil {
		t.Fatal("wrong kind accepted")
	}
	if _, err := report.ParseRun([]byte(`{"kind":"parblast-run","version":99}`)); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := report.ParseRun([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
