package blast

import (
	"math/rand"
	"strings"
	"testing"

	"parblast/internal/seq"
)

// renderAll produces the full rendered output of a result: every hit's
// report block, in order. Byte-level comparison of this string is the
// determinism contract the parallel engines rely on.
func renderAll(t *testing.T, s *Searcher, query *seq.Sequence, frag *Fragment, res *QueryResult) string {
	t.Helper()
	var b strings.Builder
	byOID := make(map[int][]byte)
	for i := range frag.Subjects {
		byOID[frag.Subjects[i].OID] = frag.Subjects[i].Residues
	}
	for _, hit := range res.Hits {
		b.WriteString(RenderHit(s.Options().OutFormat, query, byOID[hit.OID], hit, s.Options().Matrix))
	}
	return b.String()
}

func searchWithThreads(t *testing.T, opts Options, query *seq.Sequence, frag *Fragment, threads int) (*Searcher, *QueryResult) {
	t.Helper()
	opts.SearchThreads = threads
	s, err := NewSearcher(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := s.NewContext()
	if err := ctx.SetQuery(query); err != nil {
		t.Fatal(err)
	}
	res, err := ctx.SearchFragment(frag, spaceFor(s, query.Len(), frag))
	if err != nil {
		t.Fatal(err)
	}
	return s, res
}

// TestSearchThreadsByteIdenticalProtein is the golden-equivalence contract:
// the intra-rank pool must not change a single output byte.
func TestSearchThreadsByteIdenticalProtein(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	frag := testFragment(rng, 48, 350)
	query := proteinSeq("tq", randomProtein(rng, 200))
	// Plant homologs so the comparison covers real alignments, not just
	// empty reports.
	for _, oid := range []int{2, 11, 30} {
		hom := mutate(rng, query.Residues, 0.2)
		if len(hom) > 340 {
			hom = hom[:340]
		}
		copy(frag.Subjects[oid].Residues[4:], hom)
	}
	opts := DefaultProteinOptions()

	s1, r1 := searchWithThreads(t, opts, query, frag, 1)
	out1 := renderAll(t, s1, query, frag, r1)
	for _, threads := range []int{2, 3, 8} {
		s8, r8 := searchWithThreads(t, opts, query, frag, threads)
		out8 := renderAll(t, s8, query, frag, r8)
		if out1 != out8 {
			t.Fatalf("threads=%d output differs from sequential (%d vs %d bytes)", threads, len(out1), len(out8))
		}
		if r1.Work != r8.Work {
			t.Fatalf("threads=%d work counters differ:\nseq: %+v\npar: %+v", threads, r1.Work, r8.Work)
		}
	}
	if len(r1.Hits) == 0 {
		t.Fatal("fixture produced no hits; equivalence test is vacuous")
	}
}

func TestSearchThreadsByteIdenticalDNA(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	randDNA := func(n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = byte(rng.Intn(4))
		}
		return out
	}
	frag := &Fragment{}
	for i := 0; i < 24; i++ {
		frag.Subjects = append(frag.Subjects, Subject{OID: i, ID: "d" + itoa(i), Residues: randDNA(1500)})
	}
	query := &seq.Sequence{ID: "dq", Residues: randDNA(260), Alpha: seq.DNAAlphabet}
	copy(frag.Subjects[7].Residues[300:], query.Residues)
	copy(frag.Subjects[19].Residues[900:], query.Residues[:200])
	opts := DefaultDNAOptions()

	s1, r1 := searchWithThreads(t, opts, query, frag, 1)
	out1 := renderAll(t, s1, query, frag, r1)
	s8, r8 := searchWithThreads(t, opts, query, frag, 8)
	out8 := renderAll(t, s8, query, frag, r8)
	if out1 != out8 {
		t.Fatalf("DNA output differs: %d vs %d bytes", len(out1), len(out8))
	}
	if r1.Work != r8.Work {
		t.Fatalf("DNA work counters differ:\nseq: %+v\npar: %+v", r1.Work, r8.Work)
	}
	if len(r1.Hits) == 0 {
		t.Fatal("fixture produced no hits; equivalence test is vacuous")
	}
}

// TestSearchThreadsPoolReuse runs many fragments through one context with
// the pool on, exercising clone reuse and (under -race) the pool's memory
// accesses.
func TestSearchThreadsPoolReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	opts := DefaultProteinOptions()
	opts.SearchThreads = 4
	s, err := NewSearcher(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := s.NewContext()
	for round := 0; round < 6; round++ {
		frag := testFragment(rng, 20, 200)
		query := proteinSeq("q"+itoa(round), randomProtein(rng, 150))
		copy(frag.Subjects[round*3%20].Residues[2:], query.Residues[:150])
		if err := ctx.SetQuery(query); err != nil {
			t.Fatal(err)
		}
		res, err := ctx.SearchFragment(frag, spaceFor(s, query.Len(), frag))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Hits) == 0 {
			t.Fatalf("round %d: planted identity not found", round)
		}
		for _, hit := range res.Hits {
			for _, h := range hit.HSPs {
				if err := h.Validate(); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
			}
		}
	}
}
