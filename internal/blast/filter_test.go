package blast

import (
	"math/rand"
	"strings"
	"testing"

	"parblast/internal/seq"
	"parblast/internal/stats"
)

func TestLowComplexityDetectsHomopolymer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	res := randomProtein(rng, 60)
	// Insert a poly-alanine run.
	for i := 20; i < 40; i++ {
		res[i] = 0 // 'A'
	}
	ivs := LowComplexityIntervals(res, seq.ProteinAlphabet, DefaultFilterParams(seq.Protein))
	if len(ivs) == 0 {
		t.Fatal("homopolymer run not detected")
	}
	covered := false
	for _, iv := range ivs {
		if iv.From <= 25 && iv.To >= 35 {
			covered = true
		}
	}
	if !covered {
		t.Fatalf("run not covered by intervals: %v", ivs)
	}
}

func TestLowComplexityLeavesNormalSequenceAlone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	res := randomProtein(rng, 300)
	ivs := LowComplexityIntervals(res, seq.ProteinAlphabet, DefaultFilterParams(seq.Protein))
	if f := MaskedFraction(len(res), ivs); f > 0.05 {
		t.Fatalf("random protein masked %.0f%%", f*100)
	}
}

func TestLowComplexityMergesOverlaps(t *testing.T) {
	res := make([]byte, 40) // all 'A'
	ivs := LowComplexityIntervals(res, seq.ProteinAlphabet, DefaultFilterParams(seq.Protein))
	if len(ivs) != 1 || ivs[0].From != 0 || ivs[0].To != 40 {
		t.Fatalf("expected one merged interval covering everything, got %v", ivs)
	}
	if MaskedFraction(40, ivs) != 1 {
		t.Fatal("fraction wrong")
	}
}

func TestMaskForSeedingSoft(t *testing.T) {
	res := make([]byte, 30)
	masked, ivs := MaskForSeeding(res, seq.ProteinAlphabet, DefaultFilterParams(seq.Protein))
	if len(ivs) == 0 {
		t.Fatal("nothing masked")
	}
	if &masked[0] == &res[0] {
		t.Fatal("masking mutated the original slice")
	}
	for _, c := range masked {
		if c != seq.ProteinAlphabet.Wildcard() {
			t.Fatal("homopolymer not fully masked")
		}
	}
	for _, c := range res {
		if c != 0 {
			t.Fatal("original residues modified")
		}
	}
	// No intervals → original slice returned untouched.
	rng := rand.New(rand.NewSource(3))
	clean := randomProtein(rng, 100)
	out, ivs2 := MaskForSeeding(clean, seq.ProteinAlphabet, FilterParams{Window: 12, MaxEntropy: 0.1})
	if len(ivs2) != 0 || &out[0] != &clean[0] {
		t.Fatal("clean sequence should pass through unmasked")
	}
}

func TestFilterSuppressesLowComplexityHits(t *testing.T) {
	// A poly-A query against a database with a poly-A region: unfiltered
	// search hits it, filtered search does not — but a real homolog is
	// still found either way.
	rng := rand.New(rand.NewSource(4))
	frag := testFragment(rng, 10, 300)
	for i := 50; i < 120; i++ {
		frag.Subjects[2].Residues[i] = 0 // poly-A region in subject 2
	}
	query := proteinSeq("q", randomProtein(rng, 100))
	for i := 30; i < 70; i++ {
		query.Residues[i] = 0 // poly-A run in the query
	}
	copy(frag.Subjects[7].Residues[100:], query.Residues[:30]) // real homology

	count := func(filter bool) map[int]bool {
		o := DefaultProteinOptions()
		o.FilterLowComplexity = filter
		s, err := NewSearcher(o)
		if err != nil {
			t.Fatal(err)
		}
		ctx := s.NewContext()
		if err := ctx.SetQuery(query); err != nil {
			t.Fatal(err)
		}
		space := stats.NewSearchSpace(s.GappedParams(), query.Len(), frag.TotalResidues(), len(frag.Subjects))
		res, err := ctx.SearchFragment(frag, space)
		if err != nil {
			t.Fatal(err)
		}
		oids := map[int]bool{}
		for _, h := range res.Hits {
			oids[h.OID] = true
		}
		return oids
	}
	unfiltered := count(false)
	filtered := count(true)
	if !unfiltered[2] {
		t.Fatal("unfiltered search should hit the poly-A subject")
	}
	if filtered[2] {
		t.Fatal("filtered search should NOT seed on the poly-A run")
	}
	if !filtered[7] {
		t.Fatal("filtered search lost the real homolog")
	}
}

func TestTabularRendering(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	frag := testFragment(rng, 6, 300)
	query := proteinSeq("QTAB", randomProtein(rng, 80))
	copy(frag.Subjects[3].Residues[40:], query.Residues)

	s, _ := NewSearcher(DefaultProteinOptions())
	ctx := s.NewContext()
	if err := ctx.SetQuery(query); err != nil {
		t.Fatal(err)
	}
	space := stats.NewSearchSpace(s.GappedParams(), query.Len(), frag.TotalResidues(), len(frag.Subjects))
	res, err := ctx.SearchFragment(frag, space)
	if err != nil || len(res.Hits) == 0 {
		t.Fatalf("no hits: %v", err)
	}

	header := RenderHeader(FormatTabular, seq.Protein, query, DBInfo{Title: "tdb", NumSeqs: 6})
	for _, want := range []string{"# BLASTP", "# Query: QTAB", "# Database: tdb", "# Fields: query id"} {
		if !contains(header, want) {
			t.Fatalf("tabular header missing %q:\n%s", want, header)
		}
	}
	summary := RenderSummary(FormatTabular, res.Hits)
	if !contains(summary, "hits found") {
		t.Fatalf("tabular summary: %q", summary)
	}
	top := res.Hits[0]
	line := RenderHit(FormatTabular, query, frag.Subjects[top.OID].Residues, top, s.Options().Matrix)
	fields := splitTabs(line)
	if len(fields) != 12 {
		t.Fatalf("tabular line has %d fields: %q", len(fields), line)
	}
	if fields[0] != "QTAB" || fields[1] != top.ID {
		t.Fatalf("ids wrong: %v", fields[:2])
	}
	// The planted hit is a perfect copy: 100.00%% identity, 0 mismatches,
	// 0 gap opens.
	if fields[2] != "100.00" || fields[4] != "0" || fields[5] != "0" {
		t.Fatalf("perfect hit fields wrong: %v", fields)
	}
	// Coordinates are 1-based inclusive.
	if fields[6] != "1" || fields[7] != "80" {
		t.Fatalf("query coordinates wrong: %v", fields[6:8])
	}
	if RenderFooter(FormatTabular, s.GappedParams(), space, res.Work) != "" {
		t.Fatal("tabular footer must be empty")
	}
	// Pairwise dispatch unchanged.
	if RenderHeader(FormatPairwise, seq.Protein, query, DBInfo{Title: "tdb"}) !=
		FormatHeader(seq.Protein, query, DBInfo{Title: "tdb"}) {
		t.Fatal("pairwise dispatch broken")
	}
	if FormatTabular.String() != "tabular" || FormatPairwise.String() != "pairwise" {
		t.Fatal("format names wrong")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && strings.Contains(s, sub)
}

func splitTabs(line string) []string {
	line = strings.TrimSuffix(line, "\n")
	// Only the first HSP line.
	if i := strings.IndexByte(line, '\n'); i >= 0 {
		line = line[:i]
	}
	return strings.Split(line, "\t")
}
