package blast

import (
	"math/rand"
	"testing"

	"parblast/internal/seq"
	"parblast/internal/stats"
)

// backTranslate builds a DNA sequence coding for the protein residues
// (choosing one codon per residue).
func backTranslate(t *testing.T, prot []byte) []byte {
	t.Helper()
	codonFor := map[byte]string{
		'A': "GCT", 'R': "CGT", 'N': "AAT", 'D': "GAT", 'C': "TGT",
		'Q': "CAA", 'E': "GAA", 'G': "GGT", 'H': "CAT", 'I': "ATT",
		'L': "CTT", 'K': "AAA", 'M': "ATG", 'F': "TTT", 'P': "CCT",
		'S': "TCT", 'T': "ACT", 'W': "TGG", 'Y': "TAT", 'V': "GTT",
	}
	var letters []byte
	for _, c := range prot {
		codon, ok := codonFor[seq.ProteinAlphabet.Letter(c)]
		if !ok {
			t.Fatalf("no codon for residue %d", c)
		}
		letters = append(letters, codon...)
	}
	codes, err := seq.DNAAlphabet.Encode(letters)
	if err != nil {
		t.Fatal(err)
	}
	return codes
}

func TestTranslatedSearchFindsProteinInForwardFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	frag := testFragment(rng, 12, 300)
	target := frag.Subjects[5].Residues[50:130] // 80 residues of subject 5

	dna := &seq.Sequence{ID: "dnaq", Residues: backTranslate(t, target), Alpha: seq.DNAAlphabet}
	s, err := NewSearcher(DefaultProteinOptions())
	if err != nil {
		t.Fatal(err)
	}
	space := stats.NewSearchSpace(s.GappedParams(), len(target), frag.TotalResidues(), len(frag.Subjects))
	res, err := SearchTranslatedQuery(s, dna, frag, space)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("translated search found nothing")
	}
	top := res.Hits[0]
	if top.Hit.OID != 5 {
		t.Fatalf("top hit OID %d, want 5", top.Hit.OID)
	}
	if top.Frame != 1 {
		t.Fatalf("top hit frame %+d, want +1", top.Frame)
	}
	ident, _, _ := top.Hit.HSPs[0].Identity(mustFrame(t, dna, 1), frag.Subjects[5].Residues, s.Options().Matrix)
	if ident < 75 {
		t.Fatalf("identities = %d, want ≥75", ident)
	}
}

func TestTranslatedSearchFindsReverseStrand(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	frag := testFragment(rng, 12, 300)
	target := frag.Subjects[8].Residues[20:90]

	forward := backTranslate(t, target)
	dna := &seq.Sequence{ID: "rq", Residues: seq.ReverseComplement(forward), Alpha: seq.DNAAlphabet}
	s, _ := NewSearcher(DefaultProteinOptions())
	space := stats.NewSearchSpace(s.GappedParams(), len(target), frag.TotalResidues(), len(frag.Subjects))
	res, err := SearchTranslatedQuery(s, dna, frag, space)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("reverse-strand homolog not found")
	}
	top := res.Hits[0]
	if top.Hit.OID != 8 || top.Frame != -1 {
		t.Fatalf("top hit OID=%d frame=%+d, want OID=8 frame=-1", top.Hit.OID, top.Frame)
	}
}

func TestTranslatedSearchValidation(t *testing.T) {
	s, _ := NewSearcher(DefaultProteinOptions())
	prot := proteinSeq("p", []byte{0, 1, 2})
	if _, err := SearchTranslatedQuery(s, prot, &Fragment{}, stats.SearchSpace{}); err == nil {
		t.Fatal("protein query accepted by translated search")
	}
	dnaSearcher, _ := NewSearcher(DefaultDNAOptions())
	dna := &seq.Sequence{ID: "d", Residues: []byte{0, 1, 2, 3}, Alpha: seq.DNAAlphabet}
	if _, err := SearchTranslatedQuery(dnaSearcher, dna, &Fragment{}, stats.SearchSpace{}); err == nil {
		t.Fatal("DNA searcher accepted by translated search")
	}
}

func mustFrame(t *testing.T, dna *seq.Sequence, frame int) []byte {
	t.Helper()
	out, err := seq.Translate(dna.Residues, frame)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestTranslatedDBSearchFindsEmbeddedGene(t *testing.T) {
	// tblastn: a protein query finds the DNA subject that encodes it,
	// even when the gene sits on the reverse strand.
	rng := rand.New(rand.NewSource(9))
	query := proteinSeq("protq", randomProtein(rng, 60))
	coding := backTranslate(t, query.Residues)

	randDNA := func(n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = byte(rng.Intn(4))
		}
		return out
	}
	frag := &Fragment{}
	for i := 0; i < 8; i++ {
		frag.Subjects = append(frag.Subjects, Subject{
			OID: i, ID: "dna" + itoa(i), Residues: randDNA(600),
		})
	}
	// Subject 2: gene on the forward strand, in-frame at offset 99 (frame +1).
	copy(frag.Subjects[2].Residues[99:], coding)
	// Subject 6: gene on the reverse strand.
	rc := seq.ReverseComplement(coding)
	copy(frag.Subjects[6].Residues[200:], rc)

	s, _ := NewSearcher(DefaultProteinOptions())
	space := stats.NewSearchSpace(s.GappedParams(), query.Len(), frag.TotalResidues()/3, len(frag.Subjects))
	res, err := SearchTranslatedDB(s, query, frag, space)
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]int{} // OID -> frame of best hit
	for _, fh := range res.Hits {
		if _, ok := found[fh.Hit.OID]; !ok {
			found[fh.Hit.OID] = fh.Frame
		}
	}
	if f, ok := found[2]; !ok || f != 1 {
		t.Fatalf("forward gene not found in frame +1: %v", found)
	}
	if f, ok := found[6]; !ok || f >= 0 {
		t.Fatalf("reverse gene not found on minus strand: %v", found)
	}
}

func TestTranslatedDBValidation(t *testing.T) {
	s, _ := NewSearcher(DefaultProteinOptions())
	dna := &seq.Sequence{ID: "d", Residues: []byte{0, 1, 2, 3}, Alpha: seq.DNAAlphabet}
	if _, err := SearchTranslatedDB(s, dna, &Fragment{}, stats.SearchSpace{}); err == nil {
		t.Fatal("DNA query accepted by tblastn")
	}
	dnaSearcher, _ := NewSearcher(DefaultDNAOptions())
	prot := proteinSeq("p", []byte{0, 1, 2})
	if _, err := SearchTranslatedDB(dnaSearcher, prot, &Fragment{}, stats.SearchSpace{}); err == nil {
		t.Fatal("DNA searcher accepted by tblastn")
	}
}
