package blast

import (
	"parblast/internal/matrix"
)

const negInf = int(-1) << 30

// ungappedSegment is the result of a two-directional ungapped extension.
type ungappedSegment struct {
	qFrom, qTo int // half-open query range
	sFrom, sTo int // half-open subject range
	score      int
	// seedQ/seedS is the point the gapped extension starts from: the middle
	// of the segment projected onto the hit diagonal (the classic choice).
	seedQ, seedS int
}

// extendUngapped grows a word hit at (qPos, sPos) in both directions with an
// X-drop cutoff, returning the maximal-scoring segment. The word itself is
// part of the right extension, so scores are never double counted.
func extendUngapped(query, subj []byte, qPos, sPos int, m *matrix.Matrix, xdrop int, work *WorkCounters) ungappedSegment {
	work.UngappedExtensions++
	// Right extension: from the word start onward.
	score := 0
	best := 0
	q, s := qPos, sPos
	bq, bs := qPos, sPos
	for q < len(query) && s < len(subj) {
		score += m.Score(query[q], subj[s])
		work.UngappedCells++
		q++
		s++
		if score > best {
			best = score
			bq, bs = q, s
		}
		if best-score > xdrop {
			break
		}
	}
	seg := ungappedSegment{qFrom: qPos, qTo: bq, sFrom: sPos, sTo: bs, score: best}
	// Left extension: before the word start.
	score = 0
	bestL := 0
	q, s = qPos, sPos
	lq, ls := qPos, sPos
	for q > 0 && s > 0 {
		q--
		s--
		score += m.Score(query[q], subj[s])
		work.UngappedCells++
		if score > bestL {
			bestL = score
			lq, ls = q, s
		}
		if bestL-score > xdrop {
			break
		}
	}
	seg.qFrom, seg.sFrom = lq, ls
	seg.score += bestL
	mid := (seg.qFrom + seg.qTo) / 2
	seg.seedQ = mid
	seg.seedS = seg.sFrom + (mid - seg.qFrom)
	return seg
}

// gappedResult carries one direction of a gapped X-drop extension.
type gappedResult struct {
	score int
	qEnd  int // query residues consumed
	sEnd  int // subject residues consumed
	ops   []EditOp
}

// Traceback cell encoding (Gotoh): 2 bits for the H source plus explicit
// gap-open flags for the E and F recurrences, which makes the walk exact.
const (
	tbStop  = 0
	tbDiag  = 1
	tbFromE = 2 // H(i,j) == E(i,j): gap in the query ends here
	tbFromF = 3 // H(i,j) == F(i,j): gap in the subject ends here
	tbMask  = 3
	tbEOpen = 4 // E(i,j) opened from H(i,j-1) (vs extending E(i,j-1))
	tbFOpen = 8 // F(i,j) opened from H(i-1,j) (vs extending F(i-1,j))
)

// dpRow is one stored traceback row covering columns [lo, lo+(end-start));
// its cells live at scratch.cells[start:end]. Offsets rather than slices are
// stored so the arena can reallocate while rows are accumulating.
type dpRow struct {
	lo         int
	start, end int
}

// dpScratch holds every buffer the gapped extension needs. It belongs to
// one Context (one goroutine), grows monotonically, and is reused across
// all seeds of a query, so steady-state gapped extension allocates nothing.
type dpScratch struct {
	prevH, prevF []int
	curH, curF   []int
	rows         []dpRow
	cells        []byte // traceback cell arena, reset per extension

	revQ, revS []byte // reversed-slice buffers for the leftward extension

	// Two traceback op buffers, alternated between calls: gappedFromSeed
	// keeps the rightward ops alive while the leftward extension runs.
	opsA, opsB []EditOp
	useB       bool
}

// ensure grows the DP rows to cover n+1 columns.
func (sc *dpScratch) ensure(n int) {
	if len(sc.prevH) < n+1 {
		sc.prevH = make([]int, n+1)
		sc.prevF = make([]int, n+1)
		sc.curH = make([]int, n+1)
		sc.curF = make([]int, n+1)
	}
}

// nextOps returns the traceback op buffer to use for the next extension,
// reset to zero length. Buffers alternate, so at most two results are live
// at once — exactly the two half-extensions of one seed.
func (sc *dpScratch) nextOps() []EditOp {
	sc.useB = !sc.useB
	if sc.useB {
		return sc.opsB[:0]
	}
	return sc.opsA[:0]
}

// storeOps saves a possibly-grown op buffer back into its scratch slot.
func (sc *dpScratch) storeOps(ops []EditOp) {
	if sc.useB {
		sc.opsB = ops
	} else {
		sc.opsA = ops
	}
}

// reverseInto fills dst (grown from buf) with the bytes of b reversed.
func reverseInto(buf []byte, b []byte) []byte {
	if cap(buf) < len(b) {
		buf = make([]byte, len(b))
	}
	buf = buf[:len(b)]
	for i, c := range b {
		buf[len(b)-1-i] = c
	}
	return buf
}

// extendGapped aligns query against subj from their starts with affine gaps
// and an X-drop live-window, NCBI ALIGN_EX style. It returns the best
// prefix-path score and the ops of the path reaching it, in forward order
// for the given slices (callers reverse them for the leftward direction).
// The returned ops alias sc's buffers and stay valid only until the second
// following extendGapped call on the same scratch; nil sc allocates a
// private scratch (tests and one-shot callers).
func extendGapped(sc *dpScratch, query, subj []byte, m *matrix.Matrix, gaps matrix.GapPenalties, xdrop int, work *WorkCounters) gappedResult {
	if len(query) == 0 || len(subj) == 0 {
		return gappedResult{}
	}
	if sc == nil {
		sc = &dpScratch{}
	}
	work.GappedExtensions++
	gapOE := gaps.Open + gaps.Extend
	gapE := gaps.Extend
	n := len(subj)

	sc.ensure(n)
	// prevH/prevF are valid only within [prevLo, prevHi].
	prevH, prevF := sc.prevH, sc.prevF
	curH, curF := sc.curH, sc.curF
	prevLo, prevHi := 0, 0

	rows := sc.rows[:0]
	cells := sc.cells[:0]
	best, bestI, bestJ := 0, 0, 0

	// Row 0: leading gap in the query.
	prevH[0], prevF[0] = 0, negInf
	cells = append(cells, tbStop)
	for j := 1; j <= n; j++ {
		h := -(gaps.Open + j*gapE)
		if best-h > xdrop {
			break
		}
		prevH[j] = h
		prevF[j] = negInf
		cell := byte(tbFromE)
		if j == 1 {
			cell |= tbEOpen
		}
		cells = append(cells, cell)
		prevHi = j
	}
	rows = append(rows, dpRow{lo: 0, start: 0, end: len(cells)})

	getPrevH := func(j int) int {
		if j < prevLo || j > prevHi {
			return negInf
		}
		return prevH[j]
	}
	getPrevF := func(j int) int {
		if j < prevLo || j > prevHi {
			return negInf
		}
		return prevF[j]
	}

	for i := 1; i <= len(query); i++ {
		row := m.Row(query[i-1])
		rowStart := len(cells)
		// The leftmost possibly-live column this row: prevLo (via F) or
		// prevLo+1 (via diag); include column 0 boundary only while it is
		// reachable as a leading subject gap.
		startJ := prevLo
		newLo, newHi := -1, -1
		e := negInf     // E(i, j) carried along the row
		hLeft := negInf // H(i, j-1)
		for j := startJ; j <= n; j++ {
			var cell byte
			// E(i,j) from the left neighbour.
			if j > startJ {
				eo := hLeft - gapOE
				ee := e - gapE
				if eo >= ee {
					e = eo
					cell |= tbEOpen
				} else {
					e = ee
				}
				if e < negInf/2 {
					e = negInf
				}
			} else {
				e = negInf
			}
			// F(i,j) from the row above.
			fo := getPrevH(j) - gapOE
			fe := getPrevF(j) - gapE
			var f int
			if fo >= fe {
				f = fo
				cell |= tbFOpen
			} else {
				f = fe
			}
			if f < negInf/2 {
				f = negInf
			}
			// Diagonal. At j == 0 there is no diagonal predecessor; the
			// column-0 boundary (leading subject gap) falls out of the F
			// recurrence because H(i-1,0) and F(i-1,0) carry it.
			d := negInf
			if j >= 1 {
				if ph := getPrevH(j - 1); ph > negInf/2 {
					d = ph + int(row[subj[j-1]])
				}
			}
			h := d
			src := byte(tbDiag)
			if e > h {
				h = e
				src = tbFromE
			}
			if f > h {
				h = f
				src = tbFromF
			}
			work.GappedCells++
			if h <= negInf/2 || best-h > xdrop {
				h = negInf
				src = tbStop
			} else {
				if newLo < 0 {
					newLo = j
				}
				newHi = j
				if h > best {
					best = h
					bestI, bestJ = i, j
				}
			}
			hLeft = h
			curH[j] = h
			curF[j] = f
			cells = append(cells, cell|src)
			// Stop scanning right once past the previous row's reach and
			// nothing alive can propagate further along this row.
			if j > prevHi && h == negInf && e == negInf {
				break
			}
		}
		if newLo < 0 {
			cells = cells[:rowStart]
			break // the whole row fell below the X-drop line
		}
		rows = append(rows, dpRow{lo: startJ, start: rowStart, end: len(cells)})
		prevH, curH = curH, prevH
		prevF, curF = curF, prevF
		prevLo, prevHi = newLo, newHi
	}
	// Persist possibly-grown buffers for the next extension.
	sc.rows, sc.cells = rows, cells
	sc.prevH, sc.prevF, sc.curH, sc.curF = prevH, prevF, curH, curF

	if best <= 0 {
		return gappedResult{}
	}
	ops := walkTraceback(sc, rows, cells, bestI, bestJ, work)
	return gappedResult{score: best, qEnd: bestI, sEnd: bestJ, ops: ops}
}

// walkTraceback follows the stored Gotoh decisions from (bi, bj) back to the
// origin, emitting ops in reverse and then flipping them. The result lives
// in one of the scratch's alternating op buffers.
func walkTraceback(sc *dpScratch, rows []dpRow, cells []byte, bi, bj int, work *WorkCounters) []EditOp {
	rev := sc.nextOps()
	i, j := bi, bj
	const (
		inH = iota
		inE
		inF
	)
	state := inH
	for i > 0 || j > 0 {
		if i < 0 || i >= len(rows) {
			break
		}
		r := rows[i]
		if j < r.lo || j-r.lo >= r.end-r.start {
			break
		}
		cell := cells[r.start+j-r.lo]
		work.TracebackCells++
		switch state {
		case inH:
			switch cell & tbMask {
			case tbDiag:
				rev = append(rev, OpSub)
				i--
				j--
			case tbFromE:
				state = inE
			case tbFromF:
				state = inF
			default: // tbStop
				i, j = 0, 0
			}
		case inE:
			// E(i,j) consumed subj[j-1]; predecessor is at (i, j-1).
			rev = append(rev, OpIns)
			if cell&tbEOpen != 0 {
				state = inH
			}
			j--
		case inF:
			// F(i,j) consumed query[i-1]; predecessor is at (i-1, j).
			rev = append(rev, OpDel)
			if cell&tbFOpen != 0 {
				state = inH
			}
			i--
		}
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	sc.storeOps(rev)
	return rev
}

// reverseBytes returns a reversed copy of b (used by one-shot callers; the
// kernel's hot path reverses into Context scratch instead).
func reverseBytes(b []byte) []byte {
	return reverseInto(nil, b)
}

// reverseOps reverses an op slice in place and returns it.
func reverseOps(ops []EditOp) []EditOp {
	for l, r := 0, len(ops)-1; l < r; l, r = l+1, r-1 {
		ops[l], ops[r] = ops[r], ops[l]
	}
	return ops
}
