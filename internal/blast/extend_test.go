package blast

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parblast/internal/matrix"
)

// refExtendScore is a brute-force reference for extendGapped: the best
// score over all (i,j) of an affine-gap alignment of query[0:i] with
// subj[0:j] anchored at (0,0). No X-drop, full O(mn) Gotoh.
func refExtendScore(query, subj []byte, m *matrix.Matrix, gaps matrix.GapPenalties) int {
	mLen, nLen := len(query), len(subj)
	H := make([][]int, mLen+1)
	E := make([][]int, mLen+1)
	F := make([][]int, mLen+1)
	for i := range H {
		H[i] = make([]int, nLen+1)
		E[i] = make([]int, nLen+1)
		F[i] = make([]int, nLen+1)
	}
	gapOE := gaps.Open + gaps.Extend
	best := 0
	for i := 0; i <= mLen; i++ {
		for j := 0; j <= nLen; j++ {
			switch {
			case i == 0 && j == 0:
				H[0][0], E[0][0], F[0][0] = 0, negInf, negInf
				continue
			case i == 0:
				E[0][j] = max(H[0][j-1]-gapOE, E[0][j-1]-gaps.Extend)
				F[0][j] = negInf
				H[0][j] = E[0][j]
			case j == 0:
				F[i][0] = max(H[i-1][0]-gapOE, F[i-1][0]-gaps.Extend)
				E[i][0] = negInf
				H[i][0] = F[i][0]
			default:
				E[i][j] = max(H[i][j-1]-gapOE, E[i][j-1]-gaps.Extend)
				F[i][j] = max(H[i-1][j]-gapOE, F[i-1][j]-gaps.Extend)
				d := H[i-1][j-1] + m.Score(query[i-1], subj[j-1])
				H[i][j] = max(d, max(E[i][j], F[i][j]))
			}
			if H[i][j] > best {
				best = H[i][j]
			}
		}
	}
	return best
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// scoreFromOps recomputes an alignment score from a trace.
func scoreFromOps(query, subj []byte, qFrom, sFrom int, ops []EditOp, m *matrix.Matrix, gaps matrix.GapPenalties) int {
	score := 0
	q, s := qFrom, sFrom
	var run EditOp = OpSub
	for _, op := range ops {
		switch op {
		case OpSub:
			score += m.Score(query[q], subj[s])
			q++
			s++
		case OpIns:
			if run != OpIns {
				score -= gaps.Open
			}
			score -= gaps.Extend
			s++
		case OpDel:
			if run != OpDel {
				score -= gaps.Open
			}
			score -= gaps.Extend
			q++
		}
		run = op
	}
	return score
}

func randomProtein(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(20))
	}
	return out
}

// mutate applies point mutations and small indels, returning a homolog.
func mutate(rng *rand.Rand, in []byte, rate float64) []byte {
	out := make([]byte, 0, len(in)+4)
	for _, c := range in {
		r := rng.Float64()
		switch {
		case r < rate*0.6: // substitution
			out = append(out, byte(rng.Intn(20)))
		case r < rate*0.8: // deletion
		case r < rate: // insertion
			out = append(out, c, byte(rng.Intn(20)))
		default:
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = append(out, 0)
	}
	return out
}

func TestExtendUngappedExactMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := randomProtein(rng, 50)
	// Subject embeds the query exactly with junk around it.
	subj := append(append(randomProtein(rng, 30), q...), randomProtein(rng, 30)...)
	var work WorkCounters
	seg := extendUngapped(q, subj, 10, 40, matrix.BLOSUM62, 1000, &work)
	if seg.qFrom != 0 || seg.qTo != 50 {
		t.Fatalf("expected full query span [0,50), got [%d,%d)", seg.qFrom, seg.qTo)
	}
	if seg.sFrom != 30 || seg.sTo != 80 {
		t.Fatalf("expected subject span [30,80), got [%d,%d)", seg.sFrom, seg.sTo)
	}
	want := 0
	for _, c := range q {
		want += matrix.BLOSUM62.Score(c, c)
	}
	if seg.score != want {
		t.Fatalf("score = %d, want %d", seg.score, want)
	}
	if work.UngappedCells == 0 || work.UngappedExtensions != 1 {
		t.Fatalf("work counters not tallied: %+v", work)
	}
}

func TestExtendUngappedXDropStops(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := randomProtein(rng, 200)
	subj := make([]byte, 200)
	copy(subj, q[:20]) // identical prefix, then random junk
	for i := 20; i < 200; i++ {
		subj[i] = byte(rng.Intn(20))
	}
	var work WorkCounters
	seg := extendUngapped(q, subj, 0, 0, matrix.BLOSUM62, 10, &work)
	if seg.qTo > 60 {
		t.Fatalf("X-drop failed to stop extension: qTo=%d", seg.qTo)
	}
	if seg.score <= 0 {
		t.Fatalf("expected positive score on identical prefix, got %d", seg.score)
	}
}

func TestExtendGappedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gaps := matrix.DefaultProteinGaps
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(40)
		q := randomProtein(rng, n)
		var s []byte
		if trial%2 == 0 {
			s = mutate(rng, q, 0.15) // related pair: positive scores likely
		} else {
			s = randomProtein(rng, 3+rng.Intn(40))
		}
		var work WorkCounters
		got := extendGapped(nil, q, s, matrix.BLOSUM62, gaps, 1<<20, &work)
		want := refExtendScore(q, s, matrix.BLOSUM62, gaps)
		if got.score != want {
			t.Fatalf("trial %d: extendGapped score=%d, reference=%d\nq=%v\ns=%v",
				trial, got.score, want, q, s)
		}
		if got.score > 0 {
			ts := scoreFromOps(q, s, 0, 0, got.ops, matrix.BLOSUM62, gaps)
			if ts != got.score {
				t.Fatalf("trial %d: trace recomputes to %d, reported %d", trial, ts, got.score)
			}
			// Trace must consume exactly (qEnd, sEnd) residues.
			var qc, sc int
			for _, op := range got.ops {
				switch op {
				case OpSub:
					qc++
					sc++
				case OpIns:
					sc++
				case OpDel:
					qc++
				}
			}
			if qc != got.qEnd || sc != got.sEnd {
				t.Fatalf("trial %d: trace consumes (%d,%d), ends (%d,%d)", trial, qc, sc, got.qEnd, got.sEnd)
			}
		}
	}
}

func TestExtendGappedXDropNeverImproves(t *testing.T) {
	// With a small X-drop the score can only be ≤ the unbounded score.
	rng := rand.New(rand.NewSource(4))
	gaps := matrix.DefaultProteinGaps
	for trial := 0; trial < 100; trial++ {
		q := randomProtein(rng, 5+rng.Intn(60))
		s := mutate(rng, q, 0.25)
		var w1, w2 WorkCounters
		full := extendGapped(nil, q, s, matrix.BLOSUM62, gaps, 1<<20, &w1)
		pruned := extendGapped(nil, q, s, matrix.BLOSUM62, gaps, 12, &w2)
		if pruned.score > full.score {
			t.Fatalf("trial %d: pruned score %d exceeds full score %d", trial, pruned.score, full.score)
		}
		if w2.GappedCells > w1.GappedCells {
			t.Fatalf("trial %d: X-drop evaluated more cells (%d) than full (%d)",
				trial, w2.GappedCells, w1.GappedCells)
		}
	}
}

func TestExtendGappedEmptyInputs(t *testing.T) {
	var work WorkCounters
	if r := extendGapped(nil, nil, []byte{1, 2}, matrix.BLOSUM62, matrix.DefaultProteinGaps, 100, &work); r.score != 0 {
		t.Fatalf("empty query gave score %d", r.score)
	}
	if r := extendGapped(nil, []byte{1, 2}, nil, matrix.BLOSUM62, matrix.DefaultProteinGaps, 100, &work); r.score != 0 {
		t.Fatalf("empty subject gave score %d", r.score)
	}
}

func TestExtendGappedQuickProperty(t *testing.T) {
	// Property: for arbitrary residue strings the extension score is
	// non-negative, bounded by perfect self-alignment of the shorter input,
	// and the trace stays within the inputs.
	gaps := matrix.DefaultProteinGaps
	f := func(qr, sr []byte) bool {
		if len(qr) == 0 || len(sr) == 0 || len(qr) > 80 || len(sr) > 80 {
			return true
		}
		q := make([]byte, len(qr))
		for i, c := range qr {
			q[i] = c % 20
		}
		s := make([]byte, len(sr))
		for i, c := range sr {
			s[i] = c % 20
		}
		var work WorkCounters
		r := extendGapped(nil, q, s, matrix.BLOSUM62, gaps, 1<<20, &work)
		if r.score < 0 {
			return false
		}
		maxLen := len(q)
		if len(s) < maxLen {
			maxLen = len(s)
		}
		if r.score > maxLen*matrix.BLOSUM62.MaxScore() {
			return false
		}
		return r.qEnd <= len(q) && r.sEnd <= len(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReverseHelpers(t *testing.T) {
	b := []byte{1, 2, 3}
	r := reverseBytes(b)
	if r[0] != 3 || r[2] != 1 || b[0] != 1 {
		t.Fatalf("reverseBytes wrong or mutated input: %v %v", b, r)
	}
	ops := []EditOp{OpSub, OpIns, OpDel}
	reverseOps(ops)
	if ops[0] != OpDel || ops[2] != OpSub {
		t.Fatalf("reverseOps wrong: %v", ops)
	}
}
