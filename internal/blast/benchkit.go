package blast

import (
	"math/rand"
	"testing"

	"parblast/internal/matrix"
	"parblast/internal/seq"
	"parblast/internal/stats"
)

// Benchkit exposes the kernel micro-benchmarks to non-test tooling
// (cmd/benchsuite) via testing.Benchmark, so the recorded perf trajectory
// (BENCH_N.json) measures exactly what `go test -bench` measures.

// KernelBenchResult is one benchmark measurement.
type KernelBenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func kbRandomProtein(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(20))
	}
	return out
}

// kbMutate applies point mutations and small indels, returning a homolog.
// It mirrors the test fixture generator so benchmark inputs stay comparable
// with the in-test benchmarks.
func kbMutate(rng *rand.Rand, in []byte, rate float64) []byte {
	out := make([]byte, 0, len(in)+4)
	for _, c := range in {
		r := rng.Float64()
		switch {
		case r < rate*0.6: // substitution
			out = append(out, byte(rng.Intn(20)))
		case r < rate*0.8: // deletion
		case r < rate: // insertion
			out = append(out, c, byte(rng.Intn(20)))
		default:
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = append(out, 0)
	}
	return out
}

// kbFixture builds the same mid-sized planted-homolog fragment as the
// in-test benchFixture (seed 42, homologs at OIDs 3/17/41).
func kbFixture(nSubj, subjLen int) (*Fragment, *seq.Sequence) {
	rng := rand.New(rand.NewSource(42))
	frag := &Fragment{}
	for i := 0; i < nSubj; i++ {
		frag.Subjects = append(frag.Subjects, Subject{
			OID: i, Residues: kbRandomProtein(rng, subjLen),
		})
	}
	query := &seq.Sequence{
		ID:       "bench-query",
		Residues: kbRandomProtein(rng, 300),
		Alpha:    seq.AlphabetFor(seq.Protein),
	}
	for _, oid := range []int{3, 17, 41} {
		if oid < nSubj {
			hom := kbMutate(rng, query.Residues, 0.15)
			if len(hom) > subjLen-10 {
				hom = hom[:subjLen-10]
			}
			copy(frag.Subjects[oid].Residues[5:], hom)
		}
	}
	return frag, query
}

func kbSearchFragment(threads int) func(b *testing.B) {
	return func(b *testing.B) {
		frag, query := kbFixture(64, 400)
		opts := DefaultProteinOptions()
		opts.SearchThreads = threads
		s, err := NewSearcher(opts)
		if err != nil {
			b.Fatal(err)
		}
		ctx := s.NewContext()
		if err := ctx.SetQuery(query); err != nil {
			b.Fatal(err)
		}
		space := stats.NewSearchSpace(s.GappedParams(), query.Len(), frag.TotalResidues(), len(frag.Subjects))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := ctx.SearchFragment(frag, space)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Hits) == 0 {
				b.Fatal("no hits")
			}
		}
	}
}

func kbBuildIndex(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	query := kbRandomProtein(rng, 300)
	opts := DefaultProteinOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, err := buildIndex(query, &opts)
		if err != nil {
			b.Fatal(err)
		}
		if idx.neighbors == 0 {
			b.Fatal("empty index")
		}
	}
}

func kbExtendGapped(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	q := kbRandomProtein(rng, 200)
	s := kbMutate(rng, q, 0.15)
	var sc dpScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var work WorkCounters
		r := extendGapped(&sc, q, s, matrix.BLOSUM62, matrix.DefaultProteinGaps, 1<<20, &work)
		if r.score <= 0 {
			b.Fatal("extension failed")
		}
	}
}

// RunKernelBenchmarks executes the kernel micro-benchmarks and returns the
// measurements, in a fixed order.
func RunKernelBenchmarks() []KernelBenchResult {
	cases := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"SearchFragment", kbSearchFragment(1)},
		{"SearchFragment4Threads", kbSearchFragment(4)},
		{"BuildIndexProtein", kbBuildIndex},
		{"ExtendGapped", kbExtendGapped},
	}
	out := make([]KernelBenchResult, 0, len(cases))
	for _, c := range cases {
		r := testing.Benchmark(c.fn)
		out = append(out, KernelBenchResult{
			Name:        c.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return out
}
