package blast

import (
	"fmt"

	"parblast/internal/seq"
)

// wordIndex maps subject words to the query positions they seed.
//
// For protein, the table is dense over the 20^w strict-residue word space
// and is populated with *neighbourhood* words: every word scoring ≥ T
// against some query word registers that query position. For DNA the table
// is a sparse map over exact 4^w words.
//
// Both layouts store all query positions in ONE flat arena (positions) in
// CSR style: the protein table keeps a dense offsets array (positions of
// word ID w live at positions[offsets[w]:offsets[w+1]]), the DNA table maps
// word IDs to (offset, count) spans into the same arena. Compared to the
// former [][]int32 / map[uint64][]int32 layouts this removes one slice
// header plus repeated append growth per populated word, and keeps the
// subject-scan loop's probe targets contiguous in memory.
type wordIndex struct {
	alpha  *seq.Alphabet
	w      int
	strict int

	dense     bool
	offsets   []int32         // protein: len 20^w + 1, CSR row offsets
	sparse    map[uint64]span // DNA: wordID -> span into positions
	positions []int32         // flat arena of query positions

	queryLen  int
	neighbors int64 // total (word, position) registrations, for work accounting
}

// span is one word's slice of the positions arena.
type span struct {
	off int32
	n   int32
}

// buildIndex constructs the lookup table for one query.
func buildIndex(query []byte, o *Options) (*wordIndex, error) {
	alpha := o.Matrix.Alphabet()
	idx := &wordIndex{alpha: alpha, w: o.WordSize, strict: alpha.StrictSize(), queryLen: len(query)}
	if len(query) < o.WordSize {
		if alpha.Kind() == seq.Protein {
			idx.dense = true
			idx.offsets = make([]int32, 2) // empty table; lookups see empty spans
		}
		return idx, nil
	}
	if alpha.Kind() == seq.Protein {
		size := 1
		for i := 0; i < idx.w; i++ {
			size *= idx.strict
			if size > 1<<26 {
				return nil, fmt.Errorf("blast: protein word table for w=%d too large", idx.w)
			}
		}
		idx.dense = true
		idx.buildProtein(query, o, size)
	} else {
		idx.buildDNA(query)
	}
	return idx, nil
}

// buildProtein registers neighbourhood words for every query word. The
// recursion enumerates candidate words position by position, pruning with
// the maximum achievable remaining score. Registrations are collected once
// as flat (wordID, qPos) pairs, then counting-sorted into the CSR layout in
// two passes (count, fill) — no per-word slices, no append churn.
func (idx *wordIndex) buildProtein(query []byte, o *Options, size int) {
	w := idx.w
	m := o.Matrix
	// rowMax[c] is the best score residue c can achieve against any strict
	// residue: the pruning bound.
	rowMax := make([]int, idx.strict)
	for c := 0; c < idx.strict; c++ {
		best := m.Score(byte(c), 0)
		for d := 1; d < idx.strict; d++ {
			if s := m.Score(byte(c), byte(d)); s > best {
				best = s
			}
		}
		rowMax[c] = best
	}
	// Pass 0: enumerate once, packing each registration as wordID<<32|qPos.
	var pairs []uint64
	var rec func(qWord []byte, pos, wordID, score, maxRest int, qPos int32)
	rec = func(qWord []byte, pos, wordID, score, maxRest int, qPos int32) {
		if pos == w {
			if score >= o.Threshold {
				pairs = append(pairs, uint64(wordID)<<32|uint64(uint32(qPos)))
			}
			return
		}
		rest := maxRest - rowMax[qWord[pos]]
		row := m.Row(qWord[pos])
		for c := 0; c < idx.strict; c++ {
			s := int(row[c])
			if score+s+rest < o.Threshold {
				continue
			}
			rec(qWord, pos+1, wordID*idx.strict+c, score+s, rest, qPos)
		}
	}
	for i := 0; i+w <= len(query); i++ {
		qWord := query[i : i+w]
		ok := true
		maxTotal := 0
		for _, c := range qWord {
			if int(c) >= idx.strict {
				ok = false
				break
			}
			maxTotal += rowMax[c]
		}
		if !ok || maxTotal < o.Threshold {
			continue
		}
		rec(qWord, 0, 0, 0, maxTotal, int32(i))
	}
	idx.neighbors = int64(len(pairs))

	// Pass 1 (count): offsets[id+1] holds id's registration count.
	idx.offsets = make([]int32, size+1)
	for _, p := range pairs {
		idx.offsets[p>>32+1]++
	}
	// Prefix-sum into row offsets.
	for i := 1; i <= size; i++ {
		idx.offsets[i] += idx.offsets[i-1]
	}
	// Pass 2 (fill): place positions with per-row cursors; restore offsets.
	idx.positions = make([]int32, len(pairs))
	for _, p := range pairs {
		id := p >> 32
		idx.positions[idx.offsets[id]] = int32(uint32(p))
		idx.offsets[id]++
	}
	for i := size; i > 0; i-- {
		idx.offsets[i] = idx.offsets[i-1]
	}
	idx.offsets[0] = 0
}

// buildDNA registers exact query words with a rolling word ID, packing each
// word's positions into the flat arena in two passes (count, fill).
func (idx *wordIndex) buildDNA(query []byte) {
	w := idx.w
	mask := uint64(1)
	for i := 0; i < w; i++ {
		mask *= uint64(idx.strict)
	}
	idx.sparse = make(map[uint64]span, len(query))
	// scan drives fn over every valid word of the query.
	scan := func(fn func(id uint64, start int32)) {
		var id uint64
		valid := 0 // length of current run of strict residues
		for i := 0; i < len(query); i++ {
			c := query[i]
			if int(c) >= idx.strict {
				valid = 0
				id = 0
				continue
			}
			id = (id*uint64(idx.strict) + uint64(c)) % mask
			valid++
			if valid >= w {
				fn(id, int32(i-w+1))
			}
		}
	}
	// Pass 1: count occurrences per word.
	scan(func(id uint64, start int32) {
		sp := idx.sparse[id]
		sp.n++
		idx.sparse[id] = sp
		idx.neighbors++
	})
	// Assign arena offsets (iteration order is irrelevant: spans only need
	// to tile the arena, and each word's fill below is query-ordered).
	var off int32
	for id, sp := range idx.sparse {
		idx.sparse[id] = span{off: off, n: 0} // n doubles as the fill cursor
		off += sp.n
	}
	idx.positions = make([]int32, off)
	// Pass 2: fill, restoring each span's count via the cursor.
	scan(func(id uint64, start int32) {
		sp := idx.sparse[id]
		idx.positions[sp.off+sp.n] = start
		sp.n++
		idx.sparse[id] = sp
	})
}

// lookupDense returns the query positions seeded by a protein word; empty
// when none.
func (idx *wordIndex) lookupDense(wordID int) []int32 {
	return idx.positions[idx.offsets[wordID]:idx.offsets[wordID+1]]
}

// lookupSparse returns the query positions seeded by a DNA word; nil when
// the word does not occur in the query.
func (idx *wordIndex) lookupSparse(wordID uint64) []int32 {
	sp, ok := idx.sparse[wordID]
	if !ok {
		return nil
	}
	return idx.positions[sp.off : sp.off+sp.n]
}
