package blast

import (
	"fmt"

	"parblast/internal/seq"
)

// wordIndex maps subject words to the query positions they seed.
//
// For protein, the table is dense over the 20^w strict-residue word space
// and is populated with *neighbourhood* words: every word scoring ≥ T
// against some query word registers that query position. For DNA the table
// is a sparse map over exact 4^w words.
type wordIndex struct {
	alpha     *seq.Alphabet
	w         int
	strict    int
	dense     [][]int32          // protein: wordID -> query positions
	sparse    map[uint64][]int32 // DNA: wordID -> query positions
	queryLen  int
	neighbors int64 // total (word, position) registrations, for work accounting
}

// buildIndex constructs the lookup table for one query.
func buildIndex(query []byte, o *Options) (*wordIndex, error) {
	alpha := o.Matrix.Alphabet()
	idx := &wordIndex{alpha: alpha, w: o.WordSize, strict: alpha.StrictSize(), queryLen: len(query)}
	if len(query) < o.WordSize {
		return idx, nil
	}
	if alpha.Kind() == seq.Protein {
		size := 1
		for i := 0; i < idx.w; i++ {
			size *= idx.strict
			if size > 1<<26 {
				return nil, fmt.Errorf("blast: protein word table for w=%d too large", idx.w)
			}
		}
		idx.dense = make([][]int32, size)
		idx.buildProtein(query, o)
	} else {
		idx.sparse = make(map[uint64][]int32, len(query))
		idx.buildDNA(query)
	}
	return idx, nil
}

// buildProtein registers neighbourhood words for every query word. The
// recursion enumerates candidate words position by position, pruning with
// the maximum achievable remaining score.
func (idx *wordIndex) buildProtein(query []byte, o *Options) {
	w := idx.w
	m := o.Matrix
	// rowMax[c] is the best score residue c can achieve against any strict
	// residue: the pruning bound.
	rowMax := make([]int, idx.strict)
	for c := 0; c < idx.strict; c++ {
		best := m.Score(byte(c), 0)
		for d := 1; d < idx.strict; d++ {
			if s := m.Score(byte(c), byte(d)); s > best {
				best = s
			}
		}
		rowMax[c] = best
	}
	word := make([]byte, w)
	var rec func(qWord []byte, pos, wordID, score, maxRest int, qPos int32)
	rec = func(qWord []byte, pos, wordID, score, maxRest int, qPos int32) {
		if pos == w {
			if score >= o.Threshold {
				idx.dense[wordID] = append(idx.dense[wordID], qPos)
				idx.neighbors++
			}
			return
		}
		rest := maxRest - rowMax[qWord[pos]]
		row := m.Row(qWord[pos])
		for c := 0; c < idx.strict; c++ {
			s := int(row[c])
			if score+s+rest < o.Threshold {
				continue
			}
			word[pos] = byte(c)
			rec(qWord, pos+1, wordID*idx.strict+c, score+s, rest, qPos)
		}
	}
	for i := 0; i+w <= len(query); i++ {
		qWord := query[i : i+w]
		ok := true
		maxTotal := 0
		for _, c := range qWord {
			if int(c) >= idx.strict {
				ok = false
				break
			}
			maxTotal += rowMax[c]
		}
		if !ok || maxTotal < o.Threshold {
			continue
		}
		rec(qWord, 0, 0, 0, maxTotal, int32(i))
	}
}

// buildDNA registers exact query words with a rolling word ID.
func (idx *wordIndex) buildDNA(query []byte) {
	w := idx.w
	var id uint64
	mask := uint64(1)
	for i := 0; i < w; i++ {
		mask *= uint64(idx.strict)
	}
	valid := 0 // length of current run of strict residues
	for i := 0; i < len(query); i++ {
		c := query[i]
		if int(c) >= idx.strict {
			valid = 0
			id = 0
			continue
		}
		id = (id*uint64(idx.strict) + uint64(c)) % mask
		valid++
		if valid >= w {
			start := int32(i - w + 1)
			idx.sparse[id] = append(idx.sparse[id], start)
			idx.neighbors++
		}
	}
}

// lookup returns the query positions seeded by the subject word ending logic
// of scanSubject; nil when none.
func (idx *wordIndex) lookupDense(wordID int) []int32 { return idx.dense[wordID] }

func (idx *wordIndex) lookupSparse(wordID uint64) []int32 { return idx.sparse[wordID] }
