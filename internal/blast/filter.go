package blast

import (
	"math"

	"parblast/internal/seq"
)

// Low-complexity filtering in the spirit of SEG (Wootton & Federhen 1993)
// and DUST: BLAST's -F option, which 2004-era blastall enabled by default.
// Low-complexity query regions (homopolymer runs, short repeats) seed
// enormous numbers of biologically meaningless word hits; filtering masks
// them for the SEEDING stage only — extensions still align the unmasked
// residues, as NCBI BLAST does with soft masking.
//
// The implementation is the standard sliding-window Shannon-entropy
// criterion: a window whose residue entropy falls below a cutoff is
// low-complexity; overlapping low windows merge into masked intervals.

// FilterParams configures low-complexity masking.
type FilterParams struct {
	// Window is the sliding-window length (SEG uses 12 for protein,
	// DUST 64 for DNA; we default to 12/16).
	Window int
	// MaxEntropy is the entropy cutoff in bits: windows at or below it
	// are masked. SEG's K2 locut of 2.2 bits is the protein default.
	MaxEntropy float64
}

// DefaultFilterParams returns the conventional parameters for a kind.
func DefaultFilterParams(k seq.Kind) FilterParams {
	if k == seq.DNA {
		return FilterParams{Window: 16, MaxEntropy: 1.5}
	}
	return FilterParams{Window: 12, MaxEntropy: 2.2}
}

// Interval is a half-open masked range.
type Interval struct {
	From, To int
}

// LowComplexityIntervals returns the merged low-complexity intervals of a
// residue string under the given parameters.
func LowComplexityIntervals(residues []byte, alpha *seq.Alphabet, p FilterParams) []Interval {
	w := p.Window
	if w <= 1 || len(residues) < w {
		return nil
	}
	strict := alpha.StrictSize()
	counts := make([]int, strict+1) // last bucket: ambiguity codes
	bucket := func(c byte) int {
		if int(c) < strict {
			return int(c)
		}
		return strict
	}
	entropy := func() float64 {
		h := 0.0
		for _, n := range counts {
			if n > 0 {
				pr := float64(n) / float64(w)
				h -= pr * math.Log2(pr)
			}
		}
		return h
	}
	var out []Interval
	for i := 0; i < w; i++ {
		counts[bucket(residues[i])]++
	}
	add := func(from, to int) {
		if n := len(out); n > 0 && out[n-1].To >= from {
			if to > out[n-1].To {
				out[n-1].To = to
			}
			return
		}
		out = append(out, Interval{From: from, To: to})
	}
	for start := 0; ; start++ {
		if entropy() <= p.MaxEntropy {
			add(start, start+w)
		}
		if start+w >= len(residues) {
			break
		}
		counts[bucket(residues[start])]--
		counts[bucket(residues[start+w])]++
	}
	return out
}

// MaskForSeeding returns a copy of the residues with low-complexity
// intervals replaced by the alphabet's wildcard, which the word index
// skips. The original residues are untouched (soft masking).
func MaskForSeeding(residues []byte, alpha *seq.Alphabet, p FilterParams) ([]byte, []Interval) {
	ivs := LowComplexityIntervals(residues, alpha, p)
	if len(ivs) == 0 {
		return residues, nil
	}
	masked := make([]byte, len(residues))
	copy(masked, residues)
	for _, iv := range ivs {
		for i := iv.From; i < iv.To; i++ {
			masked[i] = alpha.Wildcard()
		}
	}
	return masked, ivs
}

// MaskedFraction reports the share of residues inside intervals.
func MaskedFraction(length int, ivs []Interval) float64 {
	if length == 0 {
		return 0
	}
	n := 0
	for _, iv := range ivs {
		n += iv.To - iv.From
	}
	return float64(n) / float64(length)
}
