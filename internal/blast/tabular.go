package blast

import (
	"fmt"
	"strings"

	"parblast/internal/matrix"
	"parblast/internal/seq"
	"parblast/internal/stats"
)

// ReportFormat selects how search results are rendered. The parallel
// engines are format-agnostic: they move rendered blocks whose sizes the
// offset computation uses, so any format with per-subject blocks works.
type ReportFormat int

const (
	// FormatPairwise is the classic NCBI pairwise text report (default).
	FormatPairwise ReportFormat = iota
	// FormatTabular is the 12-column tab-separated format with comment
	// headers (NCBI's -outfmt 7 / classic -m 9).
	FormatTabular
)

// String names the format.
func (f ReportFormat) String() string {
	switch f {
	case FormatPairwise:
		return "pairwise"
	case FormatTabular:
		return "tabular"
	default:
		return fmt.Sprintf("ReportFormat(%d)", int(f))
	}
}

// tabularFields is the canonical column list of -outfmt 7.
const tabularFields = "query id, subject id, % identity, alignment length, mismatches, gap opens, q. start, q. end, s. start, s. end, evalue, bit score"

// RenderHeader renders the per-query report header in the given format.
func RenderHeader(f ReportFormat, kind seq.Kind, query *seq.Sequence, db DBInfo) string {
	if f == FormatTabular {
		var b strings.Builder
		fmt.Fprintf(&b, "# %s %s\n", programName(kind), ReportVersion)
		fmt.Fprintf(&b, "# Query: %s\n", query.Defline())
		fmt.Fprintf(&b, "# Database: %s\n", db.Title)
		fmt.Fprintf(&b, "# Fields: %s\n", tabularFields)
		return b.String()
	}
	return FormatHeader(kind, query, db)
}

// RenderSummary renders the hit-overview section (the "N hits found" line
// in tabular mode; the score table in pairwise mode).
func RenderSummary(f ReportFormat, hits []*SubjectResult) string {
	if f == FormatTabular {
		n := 0
		for _, h := range hits {
			n += len(h.HSPs)
		}
		return fmt.Sprintf("# %d hits found\n", n)
	}
	return FormatSummary(hits)
}

// RenderHit renders one subject's block: the pairwise alignment panels, or
// one tab-separated line per HSP.
func RenderHit(f ReportFormat, query *seq.Sequence, subjResidues []byte, r *SubjectResult, m *matrix.Matrix) string {
	if f == FormatTabular {
		var b strings.Builder
		for _, h := range r.HSPs {
			ident, _, gaps := h.Identity(query.Residues, subjResidues, m)
			alen := h.AlignLen()
			mismatches := 0
			gapOpens := 0
			var prev EditOp = OpSub
			q, s := h.QueryFrom, h.SubjFrom
			for _, op := range h.Ops() {
				switch op {
				case OpSub:
					if query.Residues[q] != subjResidues[s] {
						mismatches++
					}
					q++
					s++
				case OpIns:
					if prev != OpIns {
						gapOpens++
					}
					s++
				case OpDel:
					if prev != OpDel {
						gapOpens++
					}
					q++
				}
				prev = op
			}
			pctIdent := 0.0
			if alen > 0 {
				pctIdent = 100 * float64(ident) / float64(alen)
			}
			_ = gaps
			fmt.Fprintf(&b, "%s\t%s\t%.2f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%.1f\n",
				query.ID, r.ID, pctIdent, alen, mismatches, gapOpens,
				h.QueryFrom+1, h.QueryTo, h.SubjFrom+1, h.SubjTo,
				stats.FormatEValue(h.EValue), h.BitScore)
		}
		return b.String()
	}
	return FormatHit(query, subjResidues, r, m)
}

// RenderFooter renders the statistics trailer (empty in tabular mode).
func RenderFooter(f ReportFormat, p stats.Params, space stats.SearchSpace, work WorkCounters) string {
	if f == FormatTabular {
		return ""
	}
	return FormatFooter(p, space, work)
}
