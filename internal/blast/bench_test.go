package blast

import (
	"math/rand"
	"testing"

	"parblast/internal/matrix"
	"parblast/internal/seq"
	"parblast/internal/stats"
)

// benchFixture builds a mid-sized fragment with planted homologs.
func benchFixture(nSubj, subjLen int) (*Fragment, *seq.Sequence) {
	rng := rand.New(rand.NewSource(42))
	frag := &Fragment{}
	for i := 0; i < nSubj; i++ {
		frag.Subjects = append(frag.Subjects, Subject{
			OID: i, ID: "s" + itoa(i), Residues: randomProtein(rng, subjLen),
		})
	}
	query := proteinSeq("bench-query", randomProtein(rng, 300))
	for _, oid := range []int{3, 17, 41} {
		if oid < nSubj {
			hom := mutate(rng, query.Residues, 0.15)
			if len(hom) > subjLen-10 {
				hom = hom[:subjLen-10]
			}
			copy(frag.Subjects[oid].Residues[5:], hom)
		}
	}
	return frag, query
}

func benchSearchFragment(b *testing.B, threads int) {
	frag, query := benchFixture(64, 400)
	opts := DefaultProteinOptions()
	opts.SearchThreads = threads
	s, err := NewSearcher(opts)
	if err != nil {
		b.Fatal(err)
	}
	ctx := s.NewContext()
	if err := ctx.SetQuery(query); err != nil {
		b.Fatal(err)
	}
	space := stats.NewSearchSpace(s.GappedParams(), query.Len(), frag.TotalResidues(), len(frag.Subjects))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ctx.SearchFragment(frag, space)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Hits) == 0 {
			b.Fatal("no hits")
		}
	}
	b.ReportMetric(float64(frag.TotalResidues()), "residues")
}

func BenchmarkSearchFragment(b *testing.B)         { benchSearchFragment(b, 1) }
func BenchmarkSearchFragment4Threads(b *testing.B) { benchSearchFragment(b, 4) }

func BenchmarkBuildIndexProtein(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	query := randomProtein(rng, 300)
	opts := DefaultProteinOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, err := buildIndex(query, &opts)
		if err != nil {
			b.Fatal(err)
		}
		if idx.neighbors == 0 {
			b.Fatal("empty index")
		}
	}
}

func BenchmarkExtendGapped(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	q := randomProtein(rng, 200)
	s := mutate(rng, q, 0.15)
	var sc dpScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var work WorkCounters
		r := extendGapped(&sc, q, s, matrix.BLOSUM62, matrix.DefaultProteinGaps, 1<<20, &work)
		if r.score <= 0 {
			b.Fatal("extension failed")
		}
	}
}

func BenchmarkExtendUngapped(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	q := randomProtein(rng, 200)
	subj := append(append(randomProtein(rng, 100), q...), randomProtein(rng, 100)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var work WorkCounters
		seg := extendUngapped(q, subj, 50, 150, matrix.BLOSUM62, 40, &work)
		if seg.score <= 0 {
			b.Fatal("ungapped extension failed")
		}
	}
}

func BenchmarkFormatHit(b *testing.B) {
	frag, query := benchFixture(16, 400)
	s, _ := NewSearcher(DefaultProteinOptions())
	ctx := s.NewContext()
	if err := ctx.SetQuery(query); err != nil {
		b.Fatal(err)
	}
	space := stats.NewSearchSpace(s.GappedParams(), query.Len(), frag.TotalResidues(), len(frag.Subjects))
	res, err := ctx.SearchFragment(frag, space)
	if err != nil || len(res.Hits) == 0 {
		b.Fatal("no hits to format")
	}
	hit := res.Hits[0]
	subj := frag.Subjects[hit.OID].Residues
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := FormatHit(query, subj, hit, matrix.BLOSUM62)
		if len(out) == 0 {
			b.Fatal("empty block")
		}
	}
}
