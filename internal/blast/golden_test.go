package blast

import (
	"testing"

	"parblast/internal/matrix"
	"parblast/internal/seq"
	"parblast/internal/stats"
)

// Golden test: the report byte format is part of the system's contract —
// pioBLAST's offset arithmetic depends on every rank rendering identical
// bytes, and EXPERIMENTS.md's output sizes depend on the format staying
// put. If a deliberate format change trips this test, regenerate the
// golden strings.

const goldenQueryLetters = "MKVLAWFQERTYHPSDNIKLMKVLAWFQERTYHPSDNIKLMKVLAWFQERTYHPSDNIKLMKVLAWFQER"

const goldenPairwise = `>S1 golden subject
          Length = 76

 Score = 152.5 bits (384), Expect = 1e-40
 Identities = 70/70 (100%), Positives = 70/70 (100%)

Query: 1     MKVLAWFQERTYHPSDNIKLMKVLAWFQERTYHPSDNIKLMKVLAWFQERTYHPSDNIKL 60
             MKVLAWFQERTYHPSDNIKLMKVLAWFQERTYHPSDNIKLMKVLAWFQERTYHPSDNIKL
Sbjct: 4     MKVLAWFQERTYHPSDNIKLMKVLAWFQERTYHPSDNIKLMKVLAWFQERTYHPSDNIKL 63

Query: 61    MKVLAWFQER 70
             MKVLAWFQER
Sbjct: 64    MKVLAWFQER 73

`

const goldenTabular = "Q1\tS1\t100.00\t70\t0\t0\t1\t70\t4\t73\t1e-40\t152.5\n"

func goldenHit(t *testing.T) (*seq.Sequence, []byte, *SubjectResult, *Searcher) {
	t.Helper()
	query := seq.New(seq.ProteinAlphabet, "Q1", "golden query", goldenQueryLetters)
	subj := seq.New(seq.ProteinAlphabet, "S1", "golden subject", "GGG"+goldenQueryLetters+"PPP")
	s, err := NewSearcher(DefaultProteinOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx := s.NewContext()
	if err := ctx.SetQuery(query); err != nil {
		t.Fatal(err)
	}
	frag := &Fragment{Subjects: []Subject{{OID: 0, ID: "S1", Defline: "golden subject", Residues: subj.Residues}}}
	space := stats.NewSearchSpace(s.GappedParams(), query.Len(), 1000000, 2000)
	res, err := ctx.SearchFragment(frag, space)
	if err != nil || len(res.Hits) != 1 {
		t.Fatalf("golden search failed: %v (%d hits)", err, len(res.Hits))
	}
	return query, subj.Residues, res.Hits[0], s
}

func TestGoldenPairwiseBlock(t *testing.T) {
	query, subj, hit, _ := goldenHit(t)
	got := FormatHit(query, subj, hit, matrix.BLOSUM62)
	if got != goldenPairwise {
		t.Fatalf("pairwise block format changed:\n--- got ---\n%s--- want ---\n%s", got, goldenPairwise)
	}
}

func TestGoldenTabularLine(t *testing.T) {
	query, subj, hit, _ := goldenHit(t)
	got := RenderHit(FormatTabular, query, subj, hit, matrix.BLOSUM62)
	if got != goldenTabular {
		t.Fatalf("tabular line format changed:\n got %q\nwant %q", got, goldenTabular)
	}
}

func TestGoldenScoreDetails(t *testing.T) {
	// Lock the numeric pipeline: a 70-residue perfect repeat of the test
	// motif scores 384 raw under BLOSUM62 with gapped statistics giving
	// 152.5 bits against the fixed 1e6×2000 search space.
	_, _, hit, _ := goldenHit(t)
	h := hit.HSPs[0]
	if h.Score != 384 {
		t.Fatalf("raw score %d, want 384", h.Score)
	}
	if h.QueryFrom != 0 || h.QueryTo != 70 || h.SubjFrom != 3 || h.SubjTo != 73 {
		t.Fatalf("coordinates changed: q[%d:%d] s[%d:%d]", h.QueryFrom, h.QueryTo, h.SubjFrom, h.SubjTo)
	}
}
