package blast

import (
	"math/rand"
	"strings"
	"testing"

	"parblast/internal/matrix"
	"parblast/internal/seq"
	"parblast/internal/stats"
)

func proteinSeq(id string, residues []byte) *seq.Sequence {
	return &seq.Sequence{ID: id, Residues: residues, Alpha: seq.ProteinAlphabet}
}

func testFragment(rng *rand.Rand, nSubj, subjLen int) *Fragment {
	frag := &Fragment{}
	for i := 0; i < nSubj; i++ {
		frag.Subjects = append(frag.Subjects, Subject{
			OID:      i,
			ID:       "subj" + string(rune('A'+i%26)) + itoa(i),
			Defline:  "synthetic subject",
			Residues: randomProtein(rng, subjLen),
		})
	}
	return frag
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func spaceFor(s *Searcher, qLen int, frag *Fragment) stats.SearchSpace {
	return stats.NewSearchSpace(s.GappedParams(), qLen, frag.TotalResidues(), len(frag.Subjects))
}

func TestSearchFindsPlantedHomolog(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	frag := testFragment(rng, 20, 400)
	query := proteinSeq("query1", randomProtein(rng, 120))
	// Plant an exact copy of the query inside subject 7.
	copy(frag.Subjects[7].Residues[100:], query.Residues)

	s, err := NewSearcher(DefaultProteinOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx := s.NewContext()
	if err := ctx.SetQuery(query); err != nil {
		t.Fatal(err)
	}
	res, err := ctx.SearchFragment(frag, spaceFor(s, query.Len(), frag))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("planted homolog not found")
	}
	top := res.Hits[0]
	if top.OID != 7 {
		t.Fatalf("top hit OID = %d, want 7", top.OID)
	}
	h := top.HSPs[0]
	if h.QueryFrom > 0 || h.QueryTo < query.Len() {
		t.Fatalf("expected full-query alignment, got [%d,%d)", h.QueryFrom, h.QueryTo)
	}
	if h.SubjFrom > 100 || h.SubjTo < 100+query.Len() {
		t.Fatalf("expected alignment covering planted region, got [%d,%d)", h.SubjFrom, h.SubjTo)
	}
	ident, _, _ := h.Identity(query.Residues, frag.Subjects[7].Residues, matrix.BLOSUM62)
	if ident < query.Len() {
		t.Fatalf("expected ≥%d identities, got %d", query.Len(), ident)
	}
	if h.EValue > 1e-10 {
		t.Fatalf("exact 120-residue match should be highly significant, E=%g", h.EValue)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchHSPScoreMatchesTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	frag := testFragment(rng, 10, 500)
	query := proteinSeq("q", randomProtein(rng, 150))
	// Plant mutated homologs in several subjects.
	for _, oid := range []int{1, 4, 8} {
		hom := mutate(rng, query.Residues, 0.2)
		if len(hom) > 350 {
			hom = hom[:350]
		}
		copy(frag.Subjects[oid].Residues[50:], hom)
	}
	s, _ := NewSearcher(DefaultProteinOptions())
	ctx := s.NewContext()
	if err := ctx.SetQuery(query); err != nil {
		t.Fatal(err)
	}
	res, err := ctx.SearchFragment(frag, spaceFor(s, query.Len(), frag))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits on planted homologs")
	}
	for _, hit := range res.Hits {
		subj := frag.Subjects[hit.OID].Residues
		for _, h := range hit.HSPs {
			if err := h.Validate(); err != nil {
				t.Fatalf("OID %d: %v", hit.OID, err)
			}
			if len(h.Trace) == 0 {
				continue // ungapped segments carry implicit all-sub traces
			}
			ts := scoreFromOps(query.Residues, subj, h.QueryFrom, h.SubjFrom, h.Trace,
				matrix.BLOSUM62, matrix.DefaultProteinGaps)
			if ts != h.Score {
				t.Fatalf("OID %d: trace score %d != reported %d", hit.OID, ts, h.Score)
			}
		}
	}
}

func TestSearchHitOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	frag := testFragment(rng, 30, 300)
	query := proteinSeq("q", randomProtein(rng, 100))
	copy(frag.Subjects[3].Residues[0:], query.Residues)         // perfect
	copy(frag.Subjects[9].Residues[0:], query.Residues[:60])    // partial
	copy(frag.Subjects[15].Residues[100:], query.Residues[:40]) // weaker
	s, _ := NewSearcher(DefaultProteinOptions())
	ctx := s.NewContext()
	if err := ctx.SetQuery(query); err != nil {
		t.Fatal(err)
	}
	res, err := ctx.SearchFragment(frag, spaceFor(s, query.Len(), frag))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) < 2 {
		t.Fatalf("expected ≥2 hits, got %d", len(res.Hits))
	}
	if res.Hits[0].OID != 3 {
		t.Fatalf("best hit should be the perfect copy (OID 3), got %d", res.Hits[0].OID)
	}
	for i := 1; i < len(res.Hits); i++ {
		prev, cur := res.Hits[i-1], res.Hits[i]
		if prev.BestEValue() > cur.BestEValue() {
			t.Fatalf("hits not sorted by E-value at %d: %g > %g", i, prev.BestEValue(), cur.BestEValue())
		}
	}
}

func TestSearchDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	frag := testFragment(rng, 15, 400)
	query := proteinSeq("q", randomProtein(rng, 130))
	copy(frag.Subjects[2].Residues[10:], mutate(rand.New(rand.NewSource(99)), query.Residues, 0.1))
	s, _ := NewSearcher(DefaultProteinOptions())

	run := func() *QueryResult {
		ctx := s.NewContext()
		if err := ctx.SetQuery(query); err != nil {
			t.Fatal(err)
		}
		res, err := ctx.SearchFragment(frag, spaceFor(s, query.Len(), frag))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Hits) != len(b.Hits) {
		t.Fatalf("nondeterministic hit count: %d vs %d", len(a.Hits), len(b.Hits))
	}
	for i := range a.Hits {
		if a.Hits[i].OID != b.Hits[i].OID || a.Hits[i].BestScore() != b.Hits[i].BestScore() {
			t.Fatalf("nondeterministic hit %d", i)
		}
	}
	if a.Work != b.Work {
		t.Fatalf("nondeterministic work counters:\n%+v\n%+v", a.Work, b.Work)
	}
}

func TestSearchPartitionInvariance(t *testing.T) {
	// Searching one fragment must give the same hits as searching its
	// parts and merging — the invariant the parallel engines rely on.
	rng := rand.New(rand.NewSource(14))
	frag := testFragment(rng, 24, 350)
	query := proteinSeq("q", randomProtein(rng, 110))
	for _, oid := range []int{0, 5, 11, 17, 23} {
		copy(frag.Subjects[oid].Residues[20:], mutate(rng, query.Residues, 0.15)[:90])
	}
	s, _ := NewSearcher(DefaultProteinOptions())
	space := spaceFor(s, query.Len(), frag)

	ctx := s.NewContext()
	if err := ctx.SetQuery(query); err != nil {
		t.Fatal(err)
	}
	whole, err := ctx.SearchFragment(frag, space)
	if err != nil {
		t.Fatal(err)
	}

	var merged []*SubjectResult
	for i := 0; i < len(frag.Subjects); i += 7 {
		end := i + 7
		if end > len(frag.Subjects) {
			end = len(frag.Subjects)
		}
		part := &Fragment{Subjects: frag.Subjects[i:end]}
		res, err := ctx.SearchFragment(part, space)
		if err != nil {
			t.Fatal(err)
		}
		merged = append(merged, res.Hits...)
	}
	SortHits(merged)

	if len(whole.Hits) != len(merged) {
		t.Fatalf("whole search found %d hits, merged parts %d", len(whole.Hits), len(merged))
	}
	for i := range whole.Hits {
		w, m := whole.Hits[i], merged[i]
		if w.OID != m.OID || w.BestScore() != m.BestScore() || w.BestEValue() != m.BestEValue() {
			t.Fatalf("hit %d differs: whole(OID=%d,S=%d) merged(OID=%d,S=%d)",
				i, w.OID, w.BestScore(), m.OID, m.BestScore())
		}
	}
}

func TestOneHitModeFindsSupersetOfTwoHit(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	frag := testFragment(rng, 12, 300)
	query := proteinSeq("q", randomProtein(rng, 90))
	copy(frag.Subjects[4].Residues[30:], query.Residues[:70])

	twoHit := DefaultProteinOptions()
	oneHit := DefaultProteinOptions()
	oneHit.TwoHitWindow = 0

	count := func(o Options) int {
		s, _ := NewSearcher(o)
		ctx := s.NewContext()
		if err := ctx.SetQuery(query); err != nil {
			t.Fatal(err)
		}
		res, err := ctx.SearchFragment(frag, spaceFor(s, query.Len(), frag))
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Hits)
	}
	if c1, c2 := count(oneHit), count(twoHit); c1 < c2 {
		t.Fatalf("one-hit mode found fewer hits (%d) than two-hit (%d)", c1, c2)
	}
}

func TestDNASearch(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	randDNA := func(n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = byte(rng.Intn(4))
		}
		return out
	}
	frag := &Fragment{}
	for i := 0; i < 8; i++ {
		frag.Subjects = append(frag.Subjects, Subject{OID: i, ID: "dna" + itoa(i), Residues: randDNA(2000)})
	}
	q := &seq.Sequence{ID: "dq", Residues: randDNA(300), Alpha: seq.DNAAlphabet}
	copy(frag.Subjects[5].Residues[700:], q.Residues)

	s, err := NewSearcher(DefaultDNAOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx := s.NewContext()
	if err := ctx.SetQuery(q); err != nil {
		t.Fatal(err)
	}
	res, err := ctx.SearchFragment(frag, spaceFor(s, q.Len(), frag))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 || res.Hits[0].OID != 5 {
		t.Fatalf("DNA search did not find planted match: %d hits", len(res.Hits))
	}
	h := res.Hits[0].HSPs[0]
	if h.QueryTo-h.QueryFrom < 290 {
		t.Fatalf("DNA alignment too short: [%d,%d)", h.QueryFrom, h.QueryTo)
	}
}

func TestSearcherRejectsBadOptions(t *testing.T) {
	cases := []func(*Options){
		func(o *Options) { o.Matrix = nil },
		func(o *Options) { o.WordSize = 0 },
		func(o *Options) { o.WordSize = 9 }, // too large for protein
		func(o *Options) { o.EValue = 0 },
		func(o *Options) { o.Gaps.Extend = 0 },
		func(o *Options) { o.XDropGapped = -1 },
	}
	for i, mod := range cases {
		o := DefaultProteinOptions()
		mod(&o)
		if _, err := NewSearcher(o); err == nil {
			t.Fatalf("case %d: bad options accepted", i)
		}
	}
}

func TestSearchQueryAlphabetMismatch(t *testing.T) {
	s, _ := NewSearcher(DefaultProteinOptions())
	ctx := s.NewContext()
	q := &seq.Sequence{ID: "d", Residues: []byte{0, 1, 2, 3}, Alpha: seq.DNAAlphabet}
	if err := ctx.SetQuery(q); err == nil {
		t.Fatal("DNA query accepted by protein searcher")
	}
}

func TestSearchFragmentBeforeSetQuery(t *testing.T) {
	s, _ := NewSearcher(DefaultProteinOptions())
	ctx := s.NewContext()
	if _, err := ctx.SearchFragment(&Fragment{}, stats.SearchSpace{}); err == nil {
		t.Fatal("SearchFragment without a query should error")
	}
}

func TestCullContained(t *testing.T) {
	big := &HSP{QueryFrom: 0, QueryTo: 100, SubjFrom: 0, SubjTo: 100, Score: 500}
	inner := &HSP{QueryFrom: 10, QueryTo: 50, SubjFrom: 10, SubjTo: 50, Score: 200}
	disjoint := &HSP{QueryFrom: 150, QueryTo: 200, SubjFrom: 150, SubjTo: 200, Score: 100}
	overlapping := &HSP{QueryFrom: 50, QueryTo: 150, SubjFrom: 50, SubjTo: 150, Score: 90}
	out := cullContained([]*HSP{inner, big, disjoint, overlapping})
	if len(out) != 3 {
		t.Fatalf("expected 3 HSPs after culling, got %d", len(out))
	}
	for _, h := range out {
		if h == inner {
			t.Fatal("contained HSP survived culling")
		}
	}
	if out[0] != big {
		t.Fatal("culled list not sorted best-first")
	}
}

func TestReportFormatting(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	frag := testFragment(rng, 6, 300)
	query := proteinSeq("QRY1", randomProtein(rng, 80))
	query.Description = "test query"
	copy(frag.Subjects[2].Residues[40:], query.Residues)

	s, _ := NewSearcher(DefaultProteinOptions())
	ctx := s.NewContext()
	if err := ctx.SetQuery(query); err != nil {
		t.Fatal(err)
	}
	space := spaceFor(s, query.Len(), frag)
	res, err := ctx.SearchFragment(frag, space)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits to format")
	}

	db := DBInfo{Title: "testdb", NumSeqs: 6, TotalLen: frag.TotalResidues()}
	header := FormatHeader(seq.Protein, query, db)
	for _, want := range []string{"BLASTP", "Query= QRY1 test query", "(80 letters)", "Database: testdb"} {
		if !strings.Contains(header, want) {
			t.Fatalf("header missing %q:\n%s", want, header)
		}
	}
	summary := FormatSummary(res.Hits)
	if !strings.Contains(summary, "Sequences producing significant alignments") {
		t.Fatalf("summary missing banner:\n%s", summary)
	}
	hit := FormatHit(query, frag.Subjects[res.Hits[0].OID].Residues, res.Hits[0], matrix.BLOSUM62)
	for _, want := range []string{"Score =", "Expect =", "Identities =", "Query: 1", "Sbjct:"} {
		if !strings.Contains(hit, want) {
			t.Fatalf("hit block missing %q:\n%s", want, hit)
		}
	}
	footer := FormatFooter(s.GappedParams(), space, res.Work)
	if !strings.Contains(footer, "Lambda") || !strings.Contains(footer, "Effective search space") {
		t.Fatalf("footer malformed:\n%s", footer)
	}

	// Rendering must be deterministic: pioBLAST's offset computation
	// depends on sizes being reproducible.
	if again := FormatHit(query, frag.Subjects[res.Hits[0].OID].Residues, res.Hits[0], matrix.BLOSUM62); again != hit {
		t.Fatal("FormatHit is not deterministic")
	}
}

func TestFormatSummaryNoHits(t *testing.T) {
	out := FormatSummary(nil)
	if !strings.Contains(out, "No hits found") {
		t.Fatalf("empty summary missing marker: %q", out)
	}
}

func TestCommaFormatting(t *testing.T) {
	cases := map[int64]string{0: "0", 12: "12", 1234: "1,234", 1234567: "1,234,567", -9876543: "-9,876,543"}
	for in, want := range cases {
		if got := comma(in); got != want {
			t.Fatalf("comma(%d) = %q, want %q", in, got, want)
		}
	}
}
