package blast

import (
	"fmt"
	"sort"

	"parblast/internal/seq"
	"parblast/internal/stats"
)

// Translated search (blastx): a DNA query is translated in all six reading
// frames and each translation is searched against a protein database with
// the ordinary protein kernel. Hits carry their reading frame.

// FrameHit is one subject hit found in one reading frame of the query.
type FrameHit struct {
	Frame int
	Hit   *SubjectResult
}

// TranslatedResult is everything a translated query produced.
type TranslatedResult struct {
	QueryID string
	// Hits from all frames, sorted by (EValue, Score, OID, Frame).
	Hits []FrameHit
	// Work sums the kernel work across frames.
	Work WorkCounters
}

// SearchTranslatedQuery runs a blastx-style search: the DNA query's six
// frame translations against a protein fragment. The searcher must be a
// protein searcher; the search space should describe the protein database
// with the translated query length (callers typically pass len/3).
func SearchTranslatedQuery(s *Searcher, dnaQuery *seq.Sequence, frag *Fragment, space stats.SearchSpace) (*TranslatedResult, error) {
	if s.Options().Matrix.Alphabet().Kind() != seq.Protein {
		return nil, fmt.Errorf("blast: translated search needs a protein searcher")
	}
	if dnaQuery.Alpha.Kind() != seq.DNA {
		return nil, fmt.Errorf("blast: translated search needs a DNA query, got %s", dnaQuery.Alpha.Kind())
	}
	frames, err := seq.TranslateAll(dnaQuery)
	if err != nil {
		return nil, err
	}
	out := &TranslatedResult{QueryID: dnaQuery.ID}
	ctx := s.NewContext()
	for _, frame := range seq.Frames {
		q, ok := frames[frame]
		if !ok {
			continue
		}
		if err := ctx.SetQuery(q); err != nil {
			return nil, err
		}
		res, err := ctx.SearchFragment(frag, space)
		if err != nil {
			return nil, err
		}
		out.Work.Add(res.Work)
		for _, hit := range res.Hits {
			out.Hits = append(out.Hits, FrameHit{Frame: frame, Hit: hit})
		}
	}
	sort.Slice(out.Hits, func(i, j int) bool {
		a, b := out.Hits[i], out.Hits[j]
		if a.Hit.BestEValue() != b.Hit.BestEValue() {
			return a.Hit.BestEValue() < b.Hit.BestEValue()
		}
		if a.Hit.BestScore() != b.Hit.BestScore() {
			return a.Hit.BestScore() > b.Hit.BestScore()
		}
		if a.Hit.OID != b.Hit.OID {
			return a.Hit.OID < b.Hit.OID
		}
		return frameRank(a.Frame) < frameRank(b.Frame)
	})
	if max := s.Options().MaxTargetSeqs; len(out.Hits) > max {
		out.Hits = out.Hits[:max]
	}
	return out, nil
}

// frameRank orders frames +1,+2,+3,-1,-2,-3 deterministically.
func frameRank(f int) int {
	for i, v := range seq.Frames {
		if v == f {
			return i
		}
	}
	return len(seq.Frames)
}

// SearchTranslatedDB runs a tblastn-style search: a protein query against
// a DNA fragment whose subjects are translated in all six reading frames.
// The query's word index is built once and reused across frames.
func SearchTranslatedDB(s *Searcher, query *seq.Sequence, dnaFrag *Fragment, space stats.SearchSpace) (*TranslatedResult, error) {
	if s.Options().Matrix.Alphabet().Kind() != seq.Protein {
		return nil, fmt.Errorf("blast: translated-DB search needs a protein searcher")
	}
	if query.Alpha.Kind() != seq.Protein {
		return nil, fmt.Errorf("blast: translated-DB search needs a protein query, got %s", query.Alpha.Kind())
	}
	ctx := s.NewContext()
	if err := ctx.SetQuery(query); err != nil {
		return nil, err
	}
	out := &TranslatedResult{QueryID: query.ID}
	for _, frame := range seq.Frames {
		translated := &Fragment{}
		for i := range dnaFrag.Subjects {
			sub := &dnaFrag.Subjects[i]
			prot, err := seq.Translate(sub.Residues, frame)
			if err != nil {
				return nil, err
			}
			if len(prot) == 0 {
				continue
			}
			translated.Subjects = append(translated.Subjects, Subject{
				OID:      sub.OID,
				ID:       sub.ID,
				Defline:  sub.Defline,
				Residues: prot,
			})
		}
		if len(translated.Subjects) == 0 {
			continue
		}
		res, err := ctx.SearchFragment(translated, space)
		if err != nil {
			return nil, err
		}
		out.Work.Add(res.Work)
		for _, hit := range res.Hits {
			out.Hits = append(out.Hits, FrameHit{Frame: frame, Hit: hit})
		}
	}
	sort.Slice(out.Hits, func(i, j int) bool {
		a, b := out.Hits[i], out.Hits[j]
		if a.Hit.BestEValue() != b.Hit.BestEValue() {
			return a.Hit.BestEValue() < b.Hit.BestEValue()
		}
		if a.Hit.BestScore() != b.Hit.BestScore() {
			return a.Hit.BestScore() > b.Hit.BestScore()
		}
		if a.Hit.OID != b.Hit.OID {
			return a.Hit.OID < b.Hit.OID
		}
		return frameRank(a.Frame) < frameRank(b.Frame)
	})
	if max := s.Options().MaxTargetSeqs; len(out.Hits) > max {
		out.Hits = out.Hits[:max]
	}
	return out, nil
}
