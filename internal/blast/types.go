// Package blast implements a from-scratch BLAST search kernel: query word
// indexing with neighbourhood words, two-hit seeding, ungapped and gapped
// X-drop extension, Karlin–Altschul statistics, and NCBI-style pairwise
// report formatting.
//
// It is the search-engine substrate of the parblast reproduction: both the
// mpiBLAST baseline and the pioBLAST engine call the same kernel, matching
// the paper ("the sequence search kernel is identical to that in mpiBLAST").
//
// The kernel searches one query at a time against a Fragment — a set of
// subject sequences. Every unit of algorithmic work is tallied into
// WorkCounters so that the cluster simulation can charge deterministic
// virtual time for search compute.
package blast

import (
	"fmt"
	"sort"
	"sync"

	"parblast/internal/matrix"
	"parblast/internal/seq"
	"parblast/internal/stats"
)

// Subject is one database sequence inside a fragment. OID is the global
// ordinal of the sequence within the whole database, so results from
// different fragments can be merged without ambiguity.
type Subject struct {
	OID      int
	ID       string
	Defline  string
	Residues []byte
}

// Fragment is a set of subjects: the unit a worker searches.
type Fragment struct {
	Subjects []Subject
}

// TotalResidues sums the residue counts of all subjects.
func (f *Fragment) TotalResidues() int64 {
	var n int64
	for i := range f.Subjects {
		n += int64(len(f.Subjects[i].Residues))
	}
	return n
}

// EditOp is one column of a pairwise alignment trace.
type EditOp byte

const (
	// OpSub aligns a query residue with a subject residue.
	OpSub EditOp = iota
	// OpIns consumes a subject residue against a gap in the query.
	OpIns
	// OpDel consumes a query residue against a gap in the subject.
	OpDel
)

// HSP is a high-scoring segment pair: one local alignment between the query
// and a subject. Coordinates are 0-based half-open ranges into the residue
// slices.
type HSP struct {
	QueryFrom, QueryTo int
	SubjFrom, SubjTo   int
	Score              int
	BitScore           float64
	EValue             float64
	// Trace holds one EditOp per alignment column, query-from to query-to.
	// A nil Trace on an ungapped HSP means the implicit all-OpSub trace of
	// length QueryTo-QueryFrom; render-time consumers go through Ops(),
	// which synthesizes it from a shared arena without allocating per HSP.
	Trace []EditOp
}

// allSubArena serves implicit ungapped traces: OpSub == 0, so any prefix of
// a zeroed slice IS a valid all-substitution trace. Slices handed out are
// never written to, and a too-small arena is replaced (not grown in place),
// so outstanding slices stay valid.
var allSubArena struct {
	mu  sync.Mutex
	ops []EditOp
}

func allSubTrace(n int) []EditOp {
	allSubArena.mu.Lock()
	if len(allSubArena.ops) < n {
		grown := n
		if grown < 1024 {
			grown = 1024
		}
		allSubArena.ops = make([]EditOp, grown)
	}
	t := allSubArena.ops[:n]
	allSubArena.mu.Unlock()
	return t
}

// Ops returns the alignment trace, synthesizing the implicit all-OpSub
// trace of ungapped HSPs. The returned slice must not be mutated.
func (h *HSP) Ops() []EditOp {
	if h.Trace == nil {
		return allSubTrace(h.QueryTo - h.QueryFrom)
	}
	return h.Trace
}

// AlignLen returns the number of alignment columns.
func (h *HSP) AlignLen() int {
	if h.Trace == nil {
		return h.QueryTo - h.QueryFrom
	}
	return len(h.Trace)
}

// Validate checks that the trace is consistent with the coordinate ranges.
func (h *HSP) Validate() error {
	if h.Trace == nil {
		// Implicit ungapped trace: the spans must match exactly.
		if h.QueryTo-h.QueryFrom != h.SubjTo-h.SubjFrom {
			return fmt.Errorf("blast: ungapped HSP spans (%d,%d) differ",
				h.QueryTo-h.QueryFrom, h.SubjTo-h.SubjFrom)
		}
		return nil
	}
	var q, s int
	for _, op := range h.Trace {
		switch op {
		case OpSub:
			q++
			s++
		case OpIns:
			s++
		case OpDel:
			q++
		default:
			return fmt.Errorf("blast: invalid edit op %d", op)
		}
	}
	if q != h.QueryTo-h.QueryFrom || s != h.SubjTo-h.SubjFrom {
		return fmt.Errorf("blast: trace consumes (%d,%d) residues, coords span (%d,%d)",
			q, s, h.QueryTo-h.QueryFrom, h.SubjTo-h.SubjFrom)
	}
	return nil
}

// Identity counts identical, positive-scoring, and gap columns of the HSP
// given the query and subject residues and the scoring matrix.
func (h *HSP) Identity(query, subj []byte, m *matrix.Matrix) (ident, positive, gaps int) {
	q, s := h.QueryFrom, h.SubjFrom
	for _, op := range h.Ops() {
		switch op {
		case OpSub:
			if query[q] == subj[s] {
				ident++
				positive++
			} else if m.Score(query[q], subj[s]) > 0 {
				positive++
			}
			q++
			s++
		case OpIns:
			gaps++
			s++
		case OpDel:
			gaps++
			q++
		}
	}
	return ident, positive, gaps
}

// SubjectResult gathers all surviving HSPs of one subject for one query,
// ordered best-first.
type SubjectResult struct {
	OID     int
	ID      string
	Defline string
	SubjLen int
	HSPs    []*HSP
}

// BestScore returns the top HSP raw score (0 when empty).
func (r *SubjectResult) BestScore() int {
	if len(r.HSPs) == 0 {
		return 0
	}
	return r.HSPs[0].Score
}

// BestEValue returns the top HSP E-value (+Inf semantics via large value
// when empty).
func (r *SubjectResult) BestEValue() float64 {
	if len(r.HSPs) == 0 {
		return 1e300
	}
	return r.HSPs[0].EValue
}

// BestBitScore returns the top HSP bit score.
func (r *SubjectResult) BestBitScore() float64 {
	if len(r.HSPs) == 0 {
		return 0
	}
	return r.HSPs[0].BitScore
}

// QueryResult is everything one query produced against one fragment.
type QueryResult struct {
	QueryID string
	// Hits is sorted by (EValue asc, Score desc, OID asc).
	Hits []*SubjectResult
	// Work tallies the compute done producing this result.
	Work WorkCounters
}

// SortHits establishes the canonical hit order. The OID tiebreak makes
// merged results deterministic regardless of fragment assignment.
func SortHits(hits []*SubjectResult) {
	sort.Slice(hits, func(i, j int) bool {
		a, b := hits[i], hits[j]
		if a.BestEValue() != b.BestEValue() {
			return a.BestEValue() < b.BestEValue()
		}
		if a.BestScore() != b.BestScore() {
			return a.BestScore() > b.BestScore()
		}
		return a.OID < b.OID
	})
}

// SortHSPs orders HSPs best-first within a subject.
func SortHSPs(hsps []*HSP) {
	sort.Slice(hsps, func(i, j int) bool {
		if hsps[i].Score != hsps[j].Score {
			return hsps[i].Score > hsps[j].Score
		}
		if hsps[i].QueryFrom != hsps[j].QueryFrom {
			return hsps[i].QueryFrom < hsps[j].QueryFrom
		}
		return hsps[i].SubjFrom < hsps[j].SubjFrom
	})
}

// WorkCounters tallies deterministic units of kernel work. The cluster
// simulation converts these into virtual seconds.
type WorkCounters struct {
	// ResiduesScanned counts subject residues passed through the word scan.
	ResiduesScanned int64
	// SeedHits counts query-position/subject-position word matches.
	SeedHits int64
	// UngappedExtensions counts two-hit-triggered ungapped extensions.
	UngappedExtensions int64
	// UngappedCells counts residue comparisons inside ungapped extensions.
	UngappedCells int64
	// GappedExtensions counts gapped DP launches.
	GappedExtensions int64
	// GappedCells counts DP cells evaluated in gapped extensions.
	GappedCells int64
	// TracebackCells counts DP cells walked during traceback.
	TracebackCells int64
	// HSPsFound counts HSPs that survived statistics filtering.
	HSPsFound int64
	// IndexWords counts neighbourhood-word registrations made while
	// building the query lookup table. Rebuilt per (query, fragment), so
	// finer partitioning pays it more often — one source of the paper's
	// Figure 1(b) search-time growth.
	IndexWords int64
}

// Add accumulates other into w.
func (w *WorkCounters) Add(other WorkCounters) {
	w.ResiduesScanned += other.ResiduesScanned
	w.SeedHits += other.SeedHits
	w.UngappedExtensions += other.UngappedExtensions
	w.UngappedCells += other.UngappedCells
	w.GappedExtensions += other.GappedExtensions
	w.GappedCells += other.GappedCells
	w.TracebackCells += other.TracebackCells
	w.HSPsFound += other.HSPsFound
	w.IndexWords += other.IndexWords
}

// Units collapses the counters into a single abstract work measure with
// weights reflecting the relative cost of each operation class. The scan
// loop dominates: each scanned residue pays a lookup-table probe and
// hit-list iteration (tens of ns in NCBI BLAST), while extension DP cells
// are a tight inner loop (a few ns). Getting this ratio right matters
// beyond cost accuracy — it is why per-query search time is balanced
// across workers for database-segmented search, as on the paper's
// platforms.
func (w *WorkCounters) Units() int64 {
	return 16*w.ResiduesScanned +
		4*w.SeedHits +
		2*w.UngappedCells +
		2*w.GappedCells +
		2*w.TracebackCells +
		3*w.IndexWords
}

// Options configures a Searcher. The zero value is not valid; use
// DefaultProteinOptions or DefaultDNAOptions as a base.
type Options struct {
	// Matrix scores residue substitutions.
	Matrix *matrix.Matrix
	// Gaps sets affine gap penalties.
	Gaps matrix.GapPenalties
	// WordSize is the seed word length (3 for blastp, 11 for blastn).
	WordSize int
	// Threshold is the neighbourhood word score threshold T; words scoring
	// ≥ T against a query word enter the lookup table. Ignored for DNA,
	// which uses exact words.
	Threshold int
	// TwoHit enables the two-hit seeding heuristic with the given window;
	// 0 disables it (every seed hit triggers extension, the blastn mode).
	TwoHitWindow int
	// XDropUngapped, XDropGapped, XDropFinal are X-drop cutoffs in bits.
	XDropUngapped float64
	XDropGapped   float64
	XDropFinal    float64
	// GapTriggerBits: ungapped HSPs scoring at least this many bits get a
	// gapped extension.
	GapTriggerBits float64
	// EValue is the report cutoff (default 10).
	EValue float64
	// MaxTargetSeqs caps reported subjects per query (0 = NCBI default 500).
	MaxTargetSeqs int
	// MaxHSPsPerSubject caps HSPs kept per subject (0 = 25).
	MaxHSPsPerSubject int
	// FilterLowComplexity masks low-complexity query regions for the
	// seeding stage (BLAST's -F option; soft masking — extensions still
	// use the unmasked residues).
	FilterLowComplexity bool
	// SearchThreads bounds the intra-rank worker pool that shards a
	// fragment's subjects across goroutines: 0 means GOMAXPROCS, 1 forces
	// the sequential path. Output is byte-identical for every value.
	SearchThreads int
	// OutFormat selects the report rendering (pairwise text by default,
	// or the 12-column tabular format).
	OutFormat ReportFormat
}

// DefaultProteinOptions mirrors blastp defaults.
func DefaultProteinOptions() Options {
	return Options{
		Matrix:         matrix.BLOSUM62,
		Gaps:           matrix.DefaultProteinGaps,
		WordSize:       3,
		Threshold:      11,
		TwoHitWindow:   40,
		XDropUngapped:  7,
		XDropGapped:    15,
		XDropFinal:     25,
		GapTriggerBits: 22,
		EValue:         10,
	}
}

// DefaultDNAOptions mirrors blastn defaults.
func DefaultDNAOptions() Options {
	return Options{
		Matrix:         matrix.DNADefault,
		Gaps:           matrix.DefaultDNAGaps,
		WordSize:       11,
		TwoHitWindow:   0,
		XDropUngapped:  20,
		XDropGapped:    30,
		XDropFinal:     100,
		GapTriggerBits: 22,
		EValue:         10,
	}
}

// Validate checks option consistency.
func (o *Options) Validate() error {
	if o.Matrix == nil {
		return fmt.Errorf("blast: options need a scoring matrix")
	}
	if err := o.Gaps.Validate(); err != nil {
		return err
	}
	if o.WordSize < 2 || o.WordSize > 16 {
		return fmt.Errorf("blast: word size %d out of range [2,16]", o.WordSize)
	}
	if o.Matrix.Alphabet().Kind() == seq.DNA && o.WordSize < 4 {
		return fmt.Errorf("blast: DNA word size %d too small", o.WordSize)
	}
	if o.Matrix.Alphabet().Kind() == seq.Protein && o.WordSize > 5 {
		return fmt.Errorf("blast: protein word size %d too large", o.WordSize)
	}
	if o.EValue <= 0 {
		return fmt.Errorf("blast: E-value cutoff must be positive, got %g", o.EValue)
	}
	if o.XDropUngapped <= 0 || o.XDropGapped <= 0 || o.XDropFinal <= 0 {
		return fmt.Errorf("blast: X-drop cutoffs must be positive")
	}
	return nil
}

// ungappedParams returns the ungapped Karlin–Altschul parameters used for
// bit↔raw conversions of the heuristics.
func (o *Options) ungappedParams() stats.Params {
	p, _ := stats.For(o.Matrix, o.Gaps, false)
	return p
}

// gappedParams returns the parameters used for final statistics.
func (o *Options) gappedParams() stats.Params {
	p, _ := stats.For(o.Matrix, o.Gaps, true)
	return p
}
