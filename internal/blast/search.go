package blast

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"parblast/internal/seq"
	"parblast/internal/stats"
)

// Searcher holds the immutable configuration of a search: options plus the
// raw-score conversions of the bit-valued heuristics. Searchers are safe to
// share; per-goroutine scratch state lives in Context.
type Searcher struct {
	opts Options
	up   stats.Params // ungapped Karlin–Altschul parameters
	gp   stats.Params // gapped parameters (final statistics)

	xdropUngapped int // raw scores
	xdropGapped   int
	xdropFinal    int
	gapTrigger    int
}

// NewSearcher validates options and prepares a Searcher.
func NewSearcher(opts Options) (*Searcher, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxTargetSeqs == 0 {
		opts.MaxTargetSeqs = 500
	}
	if opts.MaxHSPsPerSubject == 0 {
		opts.MaxHSPsPerSubject = 25
	}
	s := &Searcher{opts: opts, up: opts.ungappedParams(), gp: opts.gappedParams()}
	bitsToRaw := func(bits float64, p stats.Params) int {
		r := int(math.Ceil(bits * math.Ln2 / p.Lambda))
		if r < 1 {
			r = 1
		}
		return r
	}
	s.xdropUngapped = bitsToRaw(opts.XDropUngapped, s.up)
	s.xdropGapped = bitsToRaw(opts.XDropGapped, s.gp)
	s.xdropFinal = bitsToRaw(opts.XDropFinal, s.gp)
	s.gapTrigger = bitsToRaw(opts.GapTriggerBits, s.up)
	return s, nil
}

// Options returns a copy of the searcher's configuration.
func (s *Searcher) Options() Options { return s.opts }

// GappedParams exposes the statistics used for final scores.
func (s *Searcher) GappedParams() stats.Params { return s.gp }

// Context carries the per-query word index and reusable scratch buffers.
// A Context belongs to one goroutine; SearchFragment may internally fan
// subjects out to clone Contexts (one per worker goroutine), which it owns
// and reuses across calls.
type Context struct {
	s     *Searcher
	query *seq.Sequence
	idx   *wordIndex

	// Diagonal bookkeeping, epoch-stamped so it needs no clearing between
	// subjects. Index: (sPos - qPos) + queryLen.
	lastHit  []int32
	extLevel []int32
	stamp    []int32
	epoch    int32

	// dp is the gapped-extension scratch, reused across all seeds.
	dp dpScratch
	// boxes is the per-subject seed-containment scratch.
	boxes []hspBox

	// clones are the worker contexts of the intra-rank search pool, created
	// lazily and reused across SearchFragment calls.
	clones []*Context

	// buildWork tallies index construction, charged once per query.
	buildWork WorkCounters
}

// hspBox is the query/subject bounding box of an already-found gapped HSP,
// used to skip seeds inside regions an extension already covered.
type hspBox struct{ q0, q1, s0, s1 int }

// NewContext creates scratch state for one goroutine.
func (s *Searcher) NewContext() *Context {
	return &Context{s: s}
}

// SetQuery builds the word lookup table for the query. It must be called
// before SearchFragment and may be called repeatedly to reuse the context.
func (c *Context) SetQuery(q *seq.Sequence) error {
	if q.Alpha != c.s.opts.Matrix.Alphabet() {
		return fmt.Errorf("blast: query %q alphabet %s does not match matrix %s",
			q.ID, q.Alpha.Kind(), c.s.opts.Matrix.Name())
	}
	seeding := q.Residues
	if c.s.opts.FilterLowComplexity {
		seeding, _ = MaskForSeeding(q.Residues, q.Alpha, DefaultFilterParams(q.Alpha.Kind()))
	}
	idx, err := buildIndex(seeding, &c.s.opts)
	if err != nil {
		return err
	}
	c.query = q
	c.idx = idx
	c.buildWork = WorkCounters{ResiduesScanned: int64(q.Len()), IndexWords: idx.neighbors}
	return nil
}

// Query returns the query currently loaded in the context.
func (c *Context) Query() *seq.Sequence { return c.query }

func (c *Context) ensureDiag(n int) {
	if len(c.stamp) < n {
		c.lastHit = make([]int32, n)
		c.extLevel = make([]int32, n)
		c.stamp = make([]int32, n)
		c.epoch = 0
	}
	c.epoch++
	if c.epoch == math.MaxInt32 {
		for i := range c.stamp {
			c.stamp[i] = 0
		}
		c.epoch = 1
	}
}

// searchThreads resolves the worker count for one fragment.
func (c *Context) searchThreads(nSubjects int) int {
	n := c.s.opts.SearchThreads
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > nSubjects {
		n = nSubjects
	}
	if n < 1 {
		n = 1
	}
	return n
}

// SearchFragment runs the loaded query against every subject in the
// fragment. The search space must describe the WHOLE database (not the
// fragment) so that scores and E-values are identical no matter how the
// database is partitioned — the property the parallel engines' merging
// relies on.
//
// With Options.SearchThreads != 1 the subjects are sharded across a bounded
// pool of worker goroutines (clone Contexts). Each subject's search is
// independent and deterministic, and results are reassembled in subject
// order before the canonical sort, so the output is byte-identical to the
// sequential path for every thread count.
func (c *Context) SearchFragment(frag *Fragment, space stats.SearchSpace) (*QueryResult, error) {
	if c.query == nil {
		return nil, fmt.Errorf("blast: SearchFragment before SetQuery")
	}
	res := &QueryResult{QueryID: c.query.ID}
	res.Work.Add(c.buildWork)
	cutoffRaw := c.s.gp.ScoreForEValue(c.s.opts.EValue, space)

	if nw := c.searchThreads(len(frag.Subjects)); nw > 1 {
		c.searchParallel(frag, cutoffRaw, space, nw, res)
	} else {
		for i := range frag.Subjects {
			if r := c.searchOneSubject(&frag.Subjects[i], cutoffRaw, space, &res.Work); r != nil {
				res.Hits = append(res.Hits, r)
			}
		}
	}

	SortHits(res.Hits)
	if len(res.Hits) > c.s.opts.MaxTargetSeqs {
		res.Hits = res.Hits[:c.s.opts.MaxTargetSeqs]
	}
	return res, nil
}

// searchOneSubject runs the full per-subject pipeline — scan, extend,
// statistics, HSP cap — and returns the subject's result (nil when it has
// no surviving HSPs). It touches only this context's scratch, so distinct
// contexts may run it concurrently on distinct subjects.
func (c *Context) searchOneSubject(sub *Subject, cutoffRaw int, space stats.SearchSpace, work *WorkCounters) *SubjectResult {
	hsps := c.searchSubject(sub.Residues, cutoffRaw, work)
	if len(hsps) == 0 {
		return nil
	}
	for _, h := range hsps {
		h.BitScore = c.s.gp.BitScore(h.Score)
		h.EValue = c.s.gp.EValue(h.Score, space)
	}
	work.HSPsFound += int64(len(hsps))
	SortHSPs(hsps)
	if len(hsps) > c.s.opts.MaxHSPsPerSubject {
		hsps = hsps[:c.s.opts.MaxHSPsPerSubject]
	}
	return &SubjectResult{
		OID:     sub.OID,
		ID:      sub.ID,
		Defline: sub.Defline,
		SubjLen: len(sub.Residues),
		HSPs:    hsps,
	}
}

// searchParallel shards the fragment's subjects across nw worker contexts.
// Slot i of the result array is subject i's outcome, so reassembly preserves
// the sequential append order exactly; per-worker WorkCounters are summed in
// worker order, which is deterministic because int64 addition is exact.
func (c *Context) searchParallel(frag *Fragment, cutoffRaw int, space stats.SearchSpace, nw int, res *QueryResult) {
	for len(c.clones) < nw-1 {
		c.clones = append(c.clones, c.s.NewContext())
	}
	workers := make([]*Context, nw)
	workers[0] = c
	for i := 1; i < nw; i++ {
		cl := c.clones[i-1]
		cl.query, cl.idx = c.query, c.idx
		workers[i] = cl
	}

	slots := make([]*SubjectResult, len(frag.Subjects))
	works := make([]WorkCounters, nw)
	// Static interleaved sharding: worker w takes subjects w, w+nw, ...
	// Subject lengths are i.i.d. in practice, so interleaving balances load
	// without the coordination of a shared queue.
	var wg sync.WaitGroup
	for w := 1; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := workers[w]
			for i := w; i < len(frag.Subjects); i += nw {
				slots[i] = ctx.searchOneSubject(&frag.Subjects[i], cutoffRaw, space, &works[w])
			}
		}(w)
	}
	for i := 0; i < len(frag.Subjects); i += nw {
		slots[i] = c.searchOneSubject(&frag.Subjects[i], cutoffRaw, space, &works[0])
	}
	wg.Wait()

	for w := range works {
		res.Work.Add(works[w])
	}
	for _, r := range slots {
		if r != nil {
			res.Hits = append(res.Hits, r)
		}
	}
}

// searchSubject scans one subject for seeds and extends them.
func (c *Context) searchSubject(subj []byte, cutoffRaw int, work *WorkCounters) []*HSP {
	query := c.query.Residues
	w := c.s.opts.WordSize
	if len(subj) < w || len(query) < w {
		work.ResiduesScanned += int64(len(subj))
		return nil
	}
	c.ensureDiag(len(query) + len(subj) + 1)
	work.ResiduesScanned += int64(len(subj))

	var hsps []*HSP
	// Boxes of already-found gapped HSPs, for seed containment skipping;
	// the backing array is context scratch reused across subjects.
	boxes := c.boxes[:0]

	handleHit := func(qPos, sPos int) {
		work.SeedHits++
		d := sPos - qPos + len(query)
		if c.stamp[d] != c.epoch {
			c.stamp[d] = c.epoch
			c.lastHit[d] = int32(-1 << 30)
			c.extLevel[d] = 0
		}
		if int32(sPos) < c.extLevel[d] {
			return // inside a region already covered by an extension
		}
		if c.s.opts.TwoHitWindow > 0 {
			gap := sPos - int(c.lastHit[d])
			if gap > c.s.opts.TwoHitWindow {
				// First hit on this diagonal (or the previous one is out of
				// range): remember it and wait for a second hit.
				c.lastHit[d] = int32(sPos)
				return
			}
			if gap < w {
				// Overlaps the remembered hit. Do NOT overwrite it —
				// otherwise densely spaced hits (as in near-identical
				// regions) would keep resetting the window and never
				// qualify. This mirrors the NCBI diagonal array.
				return
			}
			c.lastHit[d] = int32(sPos)
		}
		seg := extendUngapped(query, subj, qPos, sPos, c.s.opts.Matrix, c.s.xdropUngapped, work)
		c.extLevel[d] = int32(seg.sTo)
		if seg.score >= c.s.gapTrigger {
			// Skip if the seed midpoint is inside an HSP we already have.
			for _, b := range boxes {
				if seg.seedQ >= b.q0 && seg.seedQ < b.q1 && seg.seedS >= b.s0 && seg.seedS < b.s1 {
					return
				}
			}
			h := c.gappedFromSeed(query, subj, seg.seedQ, seg.seedS, work)
			if h != nil && h.Score >= cutoffRaw {
				hsps = append(hsps, h)
				boxes = append(boxes, hspBox{h.QueryFrom, h.QueryTo, h.SubjFrom, h.SubjTo})
			}
		} else if seg.score >= cutoffRaw {
			// Significant without gaps: keep as an ungapped HSP. The trace
			// is implicit (all OpSub) — synthesized lazily at render time
			// instead of materialized per HSP.
			h := &HSP{
				QueryFrom: seg.qFrom, QueryTo: seg.qTo,
				SubjFrom: seg.sFrom, SubjTo: seg.sTo,
				Score: seg.score,
			}
			hsps = append(hsps, h)
		}
	}

	if c.idx.dense {
		strict := c.idx.strict
		offsets, positions := c.idx.offsets, c.idx.positions
		// Rolling dense word ID over strict residues.
		valid := 0
		id := 0
		hi := 1
		for i := 1; i < w; i++ {
			hi *= strict
		}
		for j := 0; j < len(subj); j++ {
			cdb := subj[j]
			if int(cdb) >= strict {
				valid, id = 0, 0
				continue
			}
			id = id%hi*strict + int(cdb)
			valid++
			if valid < w {
				continue
			}
			start := j - w + 1
			for _, qPos := range positions[offsets[id]:offsets[id+1]] {
				handleHit(int(qPos), start)
			}
		}
	} else {
		strict := uint64(c.idx.strict)
		mod := uint64(1)
		for i := 0; i < w; i++ {
			mod *= strict
		}
		valid := 0
		var id uint64
		for j := 0; j < len(subj); j++ {
			cdb := subj[j]
			if int(cdb) >= c.idx.strict {
				valid, id = 0, 0
				continue
			}
			id = (id*strict + uint64(cdb)) % mod
			valid++
			if valid < w {
				continue
			}
			start := j - w + 1
			for _, qPos := range c.idx.lookupSparse(id) {
				handleHit(int(qPos), start)
			}
		}
	}

	c.boxes = boxes[:0]
	return cullContained(hsps)
}

// gappedFromSeed runs the two-directional gapped extension around a seed
// point and assembles the combined HSP.
func (c *Context) gappedFromSeed(query, subj []byte, seedQ, seedS int, work *WorkCounters) *HSP {
	right := extendGapped(&c.dp, query[seedQ:], subj[seedS:], c.s.opts.Matrix, c.s.opts.Gaps, c.s.xdropGapped, work)
	c.dp.revQ = reverseInto(c.dp.revQ, query[:seedQ])
	c.dp.revS = reverseInto(c.dp.revS, subj[:seedS])
	left := extendGapped(&c.dp, c.dp.revQ, c.dp.revS, c.s.opts.Matrix, c.s.opts.Gaps, c.s.xdropGapped, work)
	score := left.score + right.score
	if score <= 0 {
		return nil
	}
	ops := make([]EditOp, 0, len(left.ops)+len(right.ops))
	ops = append(ops, reverseOps(left.ops)...)
	ops = append(ops, right.ops...)
	// If the two half-extensions both open a gap of the same kind at the
	// seed boundary, the concatenated trace is one merged run but both
	// halves charged a gap-open; refund the double-counted open so the
	// score matches the trace exactly.
	if len(left.ops) > 0 && len(right.ops) > 0 {
		l, r := ops[len(left.ops)-1], ops[len(left.ops)]
		if l == r && l != OpSub {
			score += c.s.opts.Gaps.Open
		}
	}
	return &HSP{
		QueryFrom: seedQ - left.qEnd,
		QueryTo:   seedQ + right.qEnd,
		SubjFrom:  seedS - left.sEnd,
		SubjTo:    seedS + right.sEnd,
		Score:     score,
		Trace:     ops,
	}
}

// cullContained removes duplicate HSPs and HSPs whose query AND subject
// ranges are both contained in a higher-scoring HSP.
func cullContained(hsps []*HSP) []*HSP {
	if len(hsps) <= 1 {
		return hsps
	}
	SortHSPs(hsps)
	kept := hsps[:0]
	for _, h := range hsps {
		contained := false
		for _, k := range kept {
			if h.QueryFrom >= k.QueryFrom && h.QueryTo <= k.QueryTo &&
				h.SubjFrom >= k.SubjFrom && h.SubjTo <= k.SubjTo {
				contained = true
				break
			}
		}
		if !contained {
			kept = append(kept, h)
		}
	}
	return kept
}
