package blast

import (
	"fmt"
	"strings"

	"parblast/internal/matrix"
	"parblast/internal/seq"
	"parblast/internal/stats"
)

// Report formatting mimics the classic NCBI BLAST pairwise text output.
// The format is split into independently renderable pieces because the
// parallel engines divide the work: in pioBLAST the master renders the
// per-query header, one-line summaries, and footer, while the workers render
// the per-subject alignment blocks whose byte sizes drive the collective
// write offsets.

// DBInfo describes the database for report headers.
type DBInfo struct {
	Title    string
	NumSeqs  int
	TotalLen int64
}

// ReportVersion appears in the report banner; fixed so output is
// byte-reproducible.
const ReportVersion = "PARBLAST 1.0.0"

// programName picks the banner program from the alphabet kind.
func programName(k seq.Kind) string {
	if k == seq.DNA {
		return "BLASTN"
	}
	return "BLASTP"
}

// FormatHeader renders the per-query report header.
func FormatHeader(kind seq.Kind, query *seq.Sequence, db DBInfo) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s\n\n\n", programName(kind), ReportVersion)
	fmt.Fprintf(&b, "Query= %s\n", query.Defline())
	fmt.Fprintf(&b, "         (%d letters)\n\n", query.Len())
	fmt.Fprintf(&b, "Database: %s\n", db.Title)
	fmt.Fprintf(&b, "           %s sequences; %s total letters\n\n",
		comma(int64(db.NumSeqs)), comma(db.TotalLen))
	return b.String()
}

// FormatSummary renders the "Sequences producing significant alignments"
// table from hit metadata only (no residue data needed).
func FormatSummary(hits []*SubjectResult) string {
	var b strings.Builder
	if len(hits) == 0 {
		b.WriteString(" ***** No hits found ******\n\n")
		return b.String()
	}
	b.WriteString("                                                                 Score    E\n")
	b.WriteString("Sequences producing significant alignments:                      (bits) Value\n\n")
	for _, h := range hits {
		name := h.ID
		if h.Defline != "" {
			name += " " + h.Defline
		}
		if len(name) > 63 {
			name = name[:63]
		}
		fmt.Fprintf(&b, "%-63s  %6.0f  %s\n", name, h.BestBitScore(), stats.FormatEValue(h.BestEValue()))
	}
	b.WriteString("\n")
	return b.String()
}

// FormatHit renders the full alignment block for one subject: defline,
// length, and every HSP's score lines and 60-column alignment panels.
// The query and the subject residues must be in the matrix's alphabet.
func FormatHit(query *seq.Sequence, subjResidues []byte, r *SubjectResult, m *matrix.Matrix) string {
	var b strings.Builder
	fmt.Fprintf(&b, ">%s", r.ID)
	if r.Defline != "" {
		fmt.Fprintf(&b, " %s", r.Defline)
	}
	fmt.Fprintf(&b, "\n          Length = %d\n\n", r.SubjLen)
	for _, h := range r.HSPs {
		formatHSP(&b, query, subjResidues, h, m)
	}
	return b.String()
}

func formatHSP(b *strings.Builder, query *seq.Sequence, subj []byte, h *HSP, m *matrix.Matrix) {
	ident, positive, gaps := h.Identity(query.Residues, subj, m)
	alen := h.AlignLen()
	fmt.Fprintf(b, " Score = %.1f bits (%d), Expect = %s\n", h.BitScore, h.Score, stats.FormatEValue(h.EValue))
	fmt.Fprintf(b, " Identities = %d/%d (%d%%)", ident, alen, pct(ident, alen))
	if m.Alphabet().Kind() == seq.Protein {
		fmt.Fprintf(b, ", Positives = %d/%d (%d%%)", positive, alen, pct(positive, alen))
	}
	if gaps > 0 {
		fmt.Fprintf(b, ", Gaps = %d/%d (%d%%)", gaps, alen, pct(gaps, alen))
	}
	b.WriteString("\n\n")

	alpha := m.Alphabet()
	qLine := make([]byte, 0, alen)
	mLine := make([]byte, 0, alen)
	sLine := make([]byte, 0, alen)
	q, s := h.QueryFrom, h.SubjFrom
	for _, op := range h.Ops() {
		switch op {
		case OpSub:
			qc, sc := query.Residues[q], subj[s]
			qLine = append(qLine, alpha.Letter(qc))
			sLine = append(sLine, alpha.Letter(sc))
			switch {
			case qc == sc:
				if alpha.Kind() == seq.Protein {
					mLine = append(mLine, alpha.Letter(qc))
				} else {
					mLine = append(mLine, '|')
				}
			case m.Score(qc, sc) > 0:
				mLine = append(mLine, '+')
			default:
				mLine = append(mLine, ' ')
			}
			q++
			s++
		case OpIns:
			qLine = append(qLine, '-')
			mLine = append(mLine, ' ')
			sLine = append(sLine, alpha.Letter(subj[s]))
			s++
		case OpDel:
			qLine = append(qLine, alpha.Letter(query.Residues[q]))
			mLine = append(mLine, ' ')
			sLine = append(sLine, '-')
			q++
		}
	}

	const width = 60
	qPos, sPos := h.QueryFrom, h.SubjFrom
	for off := 0; off < alen; off += width {
		end := off + width
		if end > alen {
			end = alen
		}
		qChunk, mChunk, sChunk := qLine[off:end], mLine[off:end], sLine[off:end]
		qConsumed := countConsumed(qChunk)
		sConsumed := countConsumed(sChunk)
		qStart, sStart := qPos+1, sPos+1
		if qConsumed == 0 {
			qStart = qPos // all-gap line: NCBI prints the previous position
		}
		if sConsumed == 0 {
			sStart = sPos
		}
		fmt.Fprintf(b, "Query: %-5d %s %d\n", qStart, qChunk, qPos+qConsumed)
		fmt.Fprintf(b, "             %s\n", mChunk)
		fmt.Fprintf(b, "Sbjct: %-5d %s %d\n\n", sStart, sChunk, sPos+sConsumed)
		qPos += qConsumed
		sPos += sConsumed
	}
}

func countConsumed(line []byte) int {
	n := 0
	for _, c := range line {
		if c != '-' {
			n++
		}
	}
	return n
}

// FormatFooter renders the per-query statistics trailer.
func FormatFooter(p stats.Params, space stats.SearchSpace, work WorkCounters) string {
	var b strings.Builder
	b.WriteString("\nLambda     K      H\n")
	fmt.Fprintf(&b, " %7.3f %7.3f %7.3f\n\n", p.Lambda, p.K, p.H)
	fmt.Fprintf(&b, "Effective length of query: %d\n", space.EffQueryLen)
	fmt.Fprintf(&b, "Effective length of database: %d\n", space.EffDBLen)
	fmt.Fprintf(&b, "Effective search space: %d\n", int64(space.EffQueryLen)*space.EffDBLen)
	fmt.Fprintf(&b, "Number of sequences in database: %d\n", space.DBSeqs)
	fmt.Fprintf(&b, "Number of extensions: %d\n", work.UngappedExtensions)
	fmt.Fprintf(&b, "Number of successful extensions: %d\n", work.GappedExtensions)
	fmt.Fprintf(&b, "Number of HSPs reported: %d\n\n\n", work.HSPsFound)
	return b.String()
}

func pct(n, d int) int {
	if d == 0 {
		return 0
	}
	return int(float64(n)/float64(d)*100 + 0.5)
}

// comma renders an integer with thousands separators, as NCBI headers do.
func comma(n int64) string {
	s := fmt.Sprintf("%d", n)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}
