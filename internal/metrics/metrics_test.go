package metrics

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	r.Counter("mpi.msgs", 0).Add(3)
	r.Counter("mpi.msgs", 0).Inc()
	r.Counter("mpi.msgs", 1).Inc()
	if got := r.Counter("mpi.msgs", 0).Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	g := r.Gauge("vfs.backoff_s", RankGlobal)
	g.Add(0.25)
	g.Add(0.25)
	if got := g.Value(); got != 0.5 {
		t.Fatalf("gauge = %g, want 0.5", got)
	}
	g.Set(2)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge after Set = %g, want 2", got)
	}
	h := r.Histogram("mpi.msg_bytes", 0, []float64{10, 100})
	h.Observe(5)
	h.Observe(10) // inclusive upper bound: lands in first bucket
	h.Observe(50)
	h.Observe(1e6) // overflow bucket
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(s.Histograms))
	}
	p := s.Histograms[0]
	if p.Total != 4 || p.Counts[0] != 2 || p.Counts[1] != 1 || p.Counts[2] != 1 {
		t.Fatalf("histogram point wrong: %+v", p)
	}
	if p.Sum != 5+10+50+1e6 {
		t.Fatalf("histogram sum = %g", p.Sum)
	}
	if q := p.Quantile(0.5); q != 10 {
		t.Fatalf("p50 = %g, want 10", q)
	}
	if q := p.Quantile(1); !math.IsInf(q, 1) {
		t.Fatalf("p100 = %g, want +Inf (overflow bucket)", q)
	}
}

// TestNilSafety: a nil registry hands out nil instruments whose methods are
// no-ops, so instrumentation sites never need an enabled check.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x", 0).Add(1)
	r.Counter("x", 0).Inc()
	r.Gauge("y", 0).Add(1)
	r.Gauge("y", 0).Set(1)
	r.Histogram("z", 0, []float64{1}).Observe(1)
	if v := r.Counter("x", 0).Value(); v != 0 {
		t.Fatalf("nil counter value = %d", v)
	}
	if v := r.Gauge("y", 0).Value(); v != 0 {
		t.Fatalf("nil gauge value = %g", v)
	}
	s := r.Snapshot()
	if s.Counters == nil || len(s.Counters) != 0 {
		t.Fatalf("nil registry snapshot: %+v", s)
	}
}

// TestSnapshotDeterministic: snapshots are ordered by (name, rank) and two
// identical histories marshal to identical bytes.
func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Deliberately insert out of order.
		r.Counter("z.last", 2).Add(7)
		r.Counter("a.first", 1).Add(1)
		r.Counter("a.first", 0).Add(2)
		r.Gauge("m.wait", 3).Add(1.5)
		r.Histogram("m.sizes", 0, []float64{8, 64}).Observe(9)
		return r
	}
	s1, s2 := build().Snapshot(), build().Snapshot()
	b1, err := json.Marshal(s1)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := json.Marshal(s2)
	if string(b1) != string(b2) {
		t.Fatalf("snapshots differ:\n%s\n%s", b1, b2)
	}
	if s1.Counters[0].Name != "a.first" || s1.Counters[0].Rank != 0 ||
		s1.Counters[1].Rank != 1 || s1.Counters[2].Name != "z.last" {
		t.Fatalf("counter order wrong: %+v", s1.Counters)
	}
	if s1.CounterTotal("a.first") != 3 {
		t.Fatalf("CounterTotal = %d", s1.CounterTotal("a.first"))
	}
	if !s1.HasPrefix("m.") || s1.HasPrefix("q.") {
		t.Fatal("HasPrefix wrong")
	}
}

// TestConcurrentUse hammers one registry from many goroutines (including
// mid-run snapshots); run under -race this is the telemetry thread-safety
// gate.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("mpi.msgs", rank).Inc()
				r.Gauge("mpi.wait", rank).Add(0.001)
				r.Histogram("mpi.bytes", rank, SizeBuckets()).Observe(float64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.CounterTotal("mpi.msgs"); got != 8*500 {
		t.Fatalf("total = %d, want %d", got, 8*500)
	}
}
