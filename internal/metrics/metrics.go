// Package metrics is the unified telemetry registry for the cluster
// simulation: concurrency-safe counters, gauges, and fixed-bucket
// histograms, labelled by rank, with a deterministic Snapshot that
// serializes to a stable JSON form.
//
// Design constraints, in order:
//
//  1. Zero virtual-time cost. Metrics never touch a simtime.Clock, so
//     instrumenting a phase cannot change its reported virtual duration —
//     the measurement must not perturb the measured system.
//  2. Determinism. The simulation is a deterministic discrete-event world;
//     its telemetry must be too. Snapshot orders every series by
//     (name, rank), so two runs of the same seed/config produce
//     byte-identical snapshots.
//  3. Nil-safety. A nil *Registry hands out nil instrument handles whose
//     methods are no-ops, so instrumented code paths never branch on
//     "is telemetry enabled" (the same convention mpi.CommStats uses).
//
// Instrument names are dotted paths whose first component is the layer
// that owns them ("mpi.", "vfs.", "mpiio.", "blast.", "engine."); the
// report package groups on that prefix.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// RankGlobal labels a series that is not attributable to a single rank
// (e.g. shared-file-system totals).
const RankGlobal = -1

// Counter is a monotone int64 instrument. Methods on a nil Counter are
// no-ops.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 instrument that can move both ways (accumulated
// seconds, current queue depth). Methods on a nil Gauge are no-ops.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add accumulates d into the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v += d
	g.mu.Unlock()
}

// Value returns the current value (0 on a nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram counts observations into fixed buckets. Bounds are inclusive
// upper bounds in ascending order; one implicit overflow bucket catches
// everything above the last bound. Methods on a nil Histogram are no-ops.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	sum    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.mu.Unlock()
}

// SizeBuckets is the default byte-size bucketing shared by the message-
// and I/O-volume histograms: 256 B to 4 MiB in 16× steps.
func SizeBuckets() []float64 {
	return []float64{256, 4096, 65536, 1 << 20, 4 << 20}
}

// TimeBuckets is the default virtual-seconds bucketing used by operation-
// latency histograms (e.g. the I/O auto-tuner's per-collective cost):
// 100 µs to 10 s in 10× steps.
func TimeBuckets() []float64 {
	return []float64{1e-4, 1e-3, 1e-2, 1e-1, 1, 10}
}

// LatencyBuckets is the log-spaced virtual-seconds bucketing used by the
// per-query end-to-end latency distributions: 100 µs to 100 s in 10× steps
// (query latencies span the whole run, not one operation).
func LatencyBuckets() []float64 {
	return []float64{1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100}
}

// Distribution is a latency instrument that keeps BOTH log-spaced bucket
// counts (for counter-track export) and the raw samples themselves, so a
// snapshot can report exact deterministic percentiles instead of the
// bucket-upper-bound estimates a plain Histogram gives. Sample counts are
// small by construction (one observation per query), so retention is cheap.
// Methods on a nil Distribution are no-ops.
type Distribution struct {
	mu      sync.Mutex
	bounds  []float64
	counts  []int64
	samples []float64
	sum     float64
}

// Observe records one value.
func (d *Distribution) Observe(v float64) {
	if d == nil {
		return
	}
	d.mu.Lock()
	i := sort.SearchFloat64s(d.bounds, v)
	d.counts[i]++
	d.samples = append(d.samples, v)
	d.sum += v
	d.mu.Unlock()
}

type key struct {
	name string
	rank int
}

// Registry owns every instrument of one run. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use, and safe on a
// nil receiver (returning nil no-op instruments).
type Registry struct {
	mu            sync.Mutex
	counters      map[key]*Counter
	gauges        map[key]*Gauge
	histograms    map[key]*Histogram
	distributions map[key]*Distribution
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:      make(map[key]*Counter),
		gauges:        make(map[key]*Gauge),
		histograms:    make(map[key]*Histogram),
		distributions: make(map[key]*Distribution),
	}
}

// Counter returns the counter for (name, rank), creating it on first use.
func (r *Registry) Counter(name string, rank int) *Counter {
	if r == nil {
		return nil
	}
	k := key{name, rank}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge for (name, rank), creating it on first use.
func (r *Registry) Gauge(name string, rank int) *Gauge {
	if r == nil {
		return nil
	}
	k := key{name, rank}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the histogram for (name, rank), creating it with the
// given bounds on first use (later calls reuse the original bounds).
func (r *Registry) Histogram(name string, rank int, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	k := key{name, rank}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[k]
	if !ok {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.histograms[k] = h
	}
	return h
}

// Distribution returns the distribution for (name, rank), creating it with
// the given bounds on first use (later calls reuse the original bounds).
func (r *Registry) Distribution(name string, rank int, bounds []float64) *Distribution {
	if r == nil {
		return nil
	}
	k := key{name, rank}
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.distributions[k]
	if !ok {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		d = &Distribution{bounds: b, counts: make([]int64, len(b)+1)}
		r.distributions[k] = d
	}
	return d
}

// CounterPoint is one counter series in a snapshot.
type CounterPoint struct {
	Name  string `json:"name"`
	Rank  int    `json:"rank"`
	Value int64  `json:"value"`
}

// GaugePoint is one gauge series in a snapshot.
type GaugePoint struct {
	Name  string  `json:"name"`
	Rank  int     `json:"rank"`
	Value float64 `json:"value"`
}

// HistogramPoint is one histogram series in a snapshot. Counts has one
// entry per bound plus the trailing overflow bucket.
type HistogramPoint struct {
	Name   string    `json:"name"`
	Rank   int       `json:"rank"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Total  int64     `json:"total"`
	Sum    float64   `json:"sum"`
}

// DistributionPoint is one distribution series in a snapshot: the bucket
// view (one count per bound plus overflow) AND exact percentiles computed
// from the retained raw samples with the nearest-rank rule — deterministic,
// not estimates.
type DistributionPoint struct {
	Name   string    `json:"name"`
	Rank   int       `json:"rank"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Total  int64     `json:"total"`
	Sum    float64   `json:"sum"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
	Max    float64   `json:"max"`
}

// ExactQuantile returns the nearest-rank q-quantile (0 < q <= 1) of a
// sample set: the ceil(q*n)-th smallest value. The input need not be
// sorted; it is not modified. Returns 0 on an empty set.
//
// The rank is computed with a small tolerance before rounding up: when
// q*n is mathematically integral but the float64 product lands a hair
// above the integer (e.g. 0.07*100 = 7.000000000000001), a bare Ceil
// would shift the answer one rank too high. Nearest-rank demands the
// ceil(q*n)-th element under exact arithmetic, so we absorb that ulp
// noise. The tolerance (1e-9 ranks) is far below the half-unit gap
// between adjacent ranks for any sample count this system produces.
func ExactQuantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	rank := int(math.Ceil(q*float64(len(s)) - 1e-9))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// Snapshot is a point-in-time copy of every instrument, ordered by
// (name, rank) within each kind — deterministic for a deterministic run,
// and stable under JSON marshalling.
type Snapshot struct {
	Counters      []CounterPoint      `json:"counters"`
	Gauges        []GaugePoint        `json:"gauges"`
	Histograms    []HistogramPoint    `json:"histograms"`
	Distributions []DistributionPoint `json:"distributions,omitempty"`
}

// Snapshot copies the registry's current state. Safe to call mid-run from
// any goroutine; an empty (or nil) registry yields empty, non-nil slices.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   []CounterPoint{},
		Gauges:     []GaugePoint{},
		Histograms: []HistogramPoint{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[key]*Counter, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c
	}
	gauges := make(map[key]*Gauge, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g
	}
	histograms := make(map[key]*Histogram, len(r.histograms))
	for k, h := range r.histograms {
		histograms[k] = h
	}
	distributions := make(map[key]*Distribution, len(r.distributions))
	for k, d := range r.distributions {
		distributions[k] = d
	}
	r.mu.Unlock()

	for k, c := range counters {
		s.Counters = append(s.Counters, CounterPoint{Name: k.name, Rank: k.rank, Value: c.Value()})
	}
	for k, g := range gauges {
		s.Gauges = append(s.Gauges, GaugePoint{Name: k.name, Rank: k.rank, Value: g.Value()})
	}
	for k, h := range histograms {
		h.mu.Lock()
		p := HistogramPoint{
			Name:   k.name,
			Rank:   k.rank,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
			Sum:    h.sum,
		}
		h.mu.Unlock()
		for _, c := range p.Counts {
			p.Total += c
		}
		s.Histograms = append(s.Histograms, p)
	}
	for k, d := range distributions {
		d.mu.Lock()
		p := DistributionPoint{
			Name:   k.name,
			Rank:   k.rank,
			Bounds: append([]float64(nil), d.bounds...),
			Counts: append([]int64(nil), d.counts...),
			Total:  int64(len(d.samples)),
			Sum:    d.sum,
		}
		samples := append([]float64(nil), d.samples...)
		d.mu.Unlock()
		p.P50 = ExactQuantile(samples, 0.50)
		p.P95 = ExactQuantile(samples, 0.95)
		p.P99 = ExactQuantile(samples, 0.99)
		for _, v := range samples {
			if v > p.Max {
				p.Max = v
			}
		}
		s.Distributions = append(s.Distributions, p)
	}
	sort.Slice(s.Distributions, func(i, j int) bool {
		return lessPoint(s.Distributions[i].Name, s.Distributions[i].Rank, s.Distributions[j].Name, s.Distributions[j].Rank)
	})
	sort.Slice(s.Counters, func(i, j int) bool {
		return lessPoint(s.Counters[i].Name, s.Counters[i].Rank, s.Counters[j].Name, s.Counters[j].Rank)
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		return lessPoint(s.Gauges[i].Name, s.Gauges[i].Rank, s.Gauges[j].Name, s.Gauges[j].Rank)
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		return lessPoint(s.Histograms[i].Name, s.Histograms[i].Rank, s.Histograms[j].Name, s.Histograms[j].Rank)
	})
	return s
}

func lessPoint(an string, ar int, bn string, br int) bool {
	if an != bn {
		return an < bn
	}
	return ar < br
}

// CounterTotal sums one counter series across ranks.
func (s Snapshot) CounterTotal(name string) int64 {
	var total int64
	for _, c := range s.Counters {
		if c.Name == name {
			total += c.Value
		}
	}
	return total
}

// GaugeTotal sums one gauge series across ranks.
func (s Snapshot) GaugeTotal(name string) float64 {
	var total float64
	for _, g := range s.Gauges {
		if g.Name == name {
			total += g.Value
		}
	}
	return total
}

// HasPrefix reports whether any series name starts with the prefix — how
// the report smoke tests assert that every instrumented layer showed up.
func (s Snapshot) HasPrefix(prefix string) bool {
	match := func(name string) bool {
		return len(name) >= len(prefix) && name[:len(prefix)] == prefix
	}
	for _, c := range s.Counters {
		if match(c.Name) {
			return true
		}
	}
	for _, g := range s.Gauges {
		if match(g.Name) {
			return true
		}
	}
	for _, h := range s.Histograms {
		if match(h.Name) {
			return true
		}
	}
	for _, d := range s.Distributions {
		if match(d.Name) {
			return true
		}
	}
	return false
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1)
// of a histogram point: the smallest bucket bound with cumulative count
// >= q*total, or +Inf when the overflow bucket holds the quantile.
func (p HistogramPoint) Quantile(q float64) float64 {
	if p.Total == 0 {
		return 0
	}
	need := int64(math.Ceil(q * float64(p.Total)))
	var cum int64
	for i, c := range p.Counts {
		cum += c
		if cum >= need {
			if i < len(p.Bounds) {
				return p.Bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}
