package metrics

import (
	"reflect"
	"testing"
)

func TestExactQuantile(t *testing.T) {
	if got := ExactQuantile(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
	if got := ExactQuantile([]float64{7}, 0.99); got != 7 {
		t.Fatalf("singleton p99 = %g, want 7", got)
	}
	// Nearest rank over 1..100: pN is exactly N.
	s := make([]float64, 100)
	for i := range s {
		s[i] = float64(100 - i) // unsorted input
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 50}, {0.95, 95}, {0.99, 99}, {1.0, 100}, {0.01, 1},
	} {
		if got := ExactQuantile(s, tc.q); got != tc.want {
			t.Fatalf("q=%g → %g, want %g", tc.q, got, tc.want)
		}
	}
	// Input must not be reordered.
	if s[0] != 100 {
		t.Fatal("ExactQuantile mutated its input")
	}
	// Duplicated samples follow the same rule: p50 of {1,1,4,4} is the
	// 2nd smallest.
	if got := ExactQuantile([]float64{4, 1, 4, 1}, 0.5); got != 1 {
		t.Fatalf("p50 of {1,1,4,4} = %g, want 1", got)
	}
}

// TestExactQuantileIntegralRank pins the nearest-rank rule at the exact
// q*n-integral boundaries where float64 rounding used to shift the answer
// one rank too high: 0.07*100 evaluates to 7.000000000000001, so a bare
// Ceil picked the 8th element instead of the 7th. Every q = k/100 over
// n = 100 must hit rank k exactly.
func TestExactQuantileIntegralRank(t *testing.T) {
	s := make([]float64, 100)
	for i := range s {
		s[i] = float64(i + 1)
	}
	for k := 1; k <= 100; k++ {
		q := float64(k) / 100
		if got := ExactQuantile(s, q); got != float64(k) {
			t.Fatalf("q=%v over 1..100 → %g, want %d (nearest rank)", q, got, k)
		}
	}
	// Same rule at other integral products: p50 of two samples is the
	// 1st (smaller) one, p25 of eight samples is the 2nd.
	if got := ExactQuantile([]float64{3, 9}, 0.5); got != 3 {
		t.Fatalf("p50 of {3,9} = %g, want 3", got)
	}
	eight := []float64{8, 7, 6, 5, 4, 3, 2, 1}
	if got := ExactQuantile(eight, 0.25); got != 2 {
		t.Fatalf("p25 of 1..8 = %g, want 2", got)
	}
}

// TestExactQuantileSingletonAndEdges: n=1 returns the sole sample for any
// q; q=1.0 is the max and never indexes past the end; tiny q clamps to the
// first rank.
func TestExactQuantileSingletonAndEdges(t *testing.T) {
	for _, q := range []float64{0.01, 0.5, 0.99, 1.0} {
		if got := ExactQuantile([]float64{42}, q); got != 42 {
			t.Fatalf("singleton q=%g = %g, want 42", q, got)
		}
	}
	s := []float64{5, 1, 3}
	if got := ExactQuantile(s, 1.0); got != 5 {
		t.Fatalf("q=1.0 = %g, want max 5", got)
	}
	if got := ExactQuantile(s, 1e-12); got != 1 {
		t.Fatalf("q→0 = %g, want min 1", got)
	}
	// Quantiles are monotone in q.
	prev := 0.0
	for _, q := range []float64{0.1, 0.33, 0.34, 0.5, 0.66, 0.67, 0.9, 1.0} {
		v := ExactQuantile(s, q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%g: %g < %g", q, v, prev)
		}
		prev = v
	}
}

// TestDistributionSnapshot: a distribution keeps both the bucketed view and
// exact percentiles, and the snapshot orders series by (name, rank).
func TestDistributionSnapshot(t *testing.T) {
	reg := NewRegistry()
	d := reg.Distribution("engine.query_latency_s", 1, LatencyBuckets())
	for _, v := range []float64{0.02, 0.3, 0.05, 2.5} {
		d.Observe(v)
	}
	reg.Distribution("engine.query_latency_s", 0, LatencyBuckets()).Observe(0.5)

	snap := reg.Snapshot()
	if len(snap.Distributions) != 2 {
		t.Fatalf("%d distribution series, want 2", len(snap.Distributions))
	}
	if snap.Distributions[0].Rank != 0 || snap.Distributions[1].Rank != 1 {
		t.Fatalf("series out of rank order: %+v", snap.Distributions)
	}
	p := snap.Distributions[1]
	if p.Total != 4 || p.Sum != 0.02+0.3+0.05+2.5 {
		t.Fatalf("total/sum wrong: %+v", p)
	}
	// Nearest rank over {0.02, 0.05, 0.3, 2.5}: p50 → 2nd, p95/p99 → 4th.
	if p.P50 != 0.05 || p.P95 != 2.5 || p.P99 != 2.5 || p.Max != 2.5 {
		t.Fatalf("percentiles wrong: %+v", p)
	}
	// Bucket counts: bounds {1e-4..100}; 0.02 and 0.05 land in the ≤0.1
	// bucket (index 3), 0.3 in ≤1 (index 4), 2.5 in ≤10 (index 5).
	wantCounts := []int64{0, 0, 0, 2, 1, 1, 0, 0}
	if !reflect.DeepEqual(p.Counts, wantCounts) {
		t.Fatalf("counts = %v, want %v", p.Counts, wantCounts)
	}
	// Repeated snapshots are identical.
	if !reflect.DeepEqual(snap, reg.Snapshot()) {
		t.Fatal("snapshot not deterministic")
	}
}

// TestDistributionNilSafety: nil registries and instruments are usable
// no-ops, like every other instrument kind.
func TestDistributionNilSafety(t *testing.T) {
	var reg *Registry
	d := reg.Distribution("x", 0, LatencyBuckets())
	if d != nil {
		t.Fatal("nil registry must return nil instrument")
	}
	d.Observe(1) // must not panic
	var lone *Distribution
	lone.Observe(2) // must not panic
}
