package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"parblast/internal/metrics"
)

// sumCombine folds two equal-length int64 vectors element-wise — an
// associative, commutative combiner for exercising TreeReduce.
func sumCombine(a, b []byte) []byte {
	if len(a) != len(b) {
		panic("sumCombine length mismatch")
	}
	out := make([]byte, len(a))
	for i := 0; i+8 <= len(a); i += 8 {
		putInt64(out[i:], getInt64(a[i:])+getInt64(b[i:]))
	}
	return out
}

func rankPayload(id, width int) []byte {
	buf := make([]byte, 8*width)
	for i := 0; i < width; i++ {
		putInt64(buf[8*i:], int64(id*31+i*7+1))
	}
	return buf
}

func TestTreeReduceMatchesFlatSum(t *testing.T) {
	const width = 3
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 17} {
		for _, fanout := range []int{2, 3, 4, 8} {
			want := make([]int64, width)
			for id := 0; id < n; id++ {
				p := rankPayload(id, width)
				for i := 0; i < width; i++ {
					want[i] += getInt64(p[8*i:])
				}
			}
			_, err := Run(n, testCost(), func(r *Rank) error {
				members := make([]int, n)
				for i := range members {
					members[i] = i
				}
				combined, contributors, err := r.TreeReduce(0, fanout, members, rankPayload(r.ID(), width), sumCombine)
				if err != nil {
					return err
				}
				if r.ID() != 0 {
					if combined != nil || contributors != nil {
						return fmt.Errorf("non-root rank %d got a result", r.ID())
					}
					return nil
				}
				if len(contributors) != n {
					return fmt.Errorf("contributors = %v, want all %d ranks", contributors, n)
				}
				for i := 0; i < width; i++ {
					if got := getInt64(combined[8*i:]); got != want[i] {
						return fmt.Errorf("n=%d fanout=%d lane %d: got %d want %d", n, fanout, i, got, want[i])
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d fanout=%d: %v", n, fanout, err)
			}
		}
	}
}

func TestTreeGatherDeliversEveryPayload(t *testing.T) {
	const n = 13
	_, err := Run(n, testCost(), func(r *Rank) error {
		members := make([]int, n)
		for i := range members {
			members[i] = i
		}
		payload := []byte(fmt.Sprintf("rank-%02d", r.ID()))
		got, contributors, err := r.TreeGather(0, 3, members, payload)
		if err != nil {
			return err
		}
		if r.ID() != 0 {
			return nil
		}
		if len(contributors) != n {
			return fmt.Errorf("contributors = %v", contributors)
		}
		for id := 0; id < n; id++ {
			want := fmt.Sprintf("rank-%02d", id)
			if string(got[id]) != want {
				return fmt.Errorf("slot %d = %q, want %q", id, got[id], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTreeBcastAndBarrier(t *testing.T) {
	const n = 11
	payload := []byte("layout broadcast")
	_, err := Run(n, testCost(), func(r *Rank) error {
		members := make([]int, n)
		for i := range members {
			members[i] = i
		}
		var in []byte
		if r.ID() == 0 {
			in = payload
		}
		got := r.TreeBcast(0, 4, members, in)
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("rank %d bcast got %q", r.ID(), got)
		}
		r.TreeBarrier(0, 4, members)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTreeReduceCrashedGroupLeader kills a mid-tree rank — the "group
// leader" aggregating a whole subtree — and checks that its children's
// contributions are still recovered at the root via the crash-aware
// re-route/re-send protocol. Only the dead rank's own data may be lost.
func TestTreeReduceCrashedGroupLeader(t *testing.T) {
	const (
		n      = 13
		fanout = 3
		width  = 2
		victim = 1 // position 1: parent of positions 4..6 (ranks 4..6)
	)
	run := func() ([]int64, []int, error) {
		var combined []int64
		var contributors []int
		cfg := Config{
			Cost:   testCost(),
			Faults: []Fault{{Rank: victim, At: 0, Kind: FaultCrash}},
		}
		_, err := RunConfig(n, cfg, func(r *Rank) error {
			members := make([]int, n)
			for i := range members {
				members[i] = i
			}
			out, contrib, err := r.TreeReduce(0, fanout, members, rankPayload(r.ID(), width), sumCombine)
			if err != nil {
				return err
			}
			if r.ID() == 0 {
				contributors = contrib
				combined = make([]int64, width)
				for i := 0; i < width; i++ {
					combined[i] = getInt64(out[8*i:])
				}
			}
			return nil
		})
		return combined, contributors, err
	}
	combined, contributors, err := run()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int64, 2)
	for id := 0; id < n; id++ {
		if id == victim {
			continue
		}
		p := rankPayload(id, 2)
		for i := range want {
			want[i] += getInt64(p[8*i:])
		}
	}
	if len(contributors) != n-1 {
		t.Fatalf("contributors = %v, want all but rank %d", contributors, victim)
	}
	for _, c := range contributors {
		if c == victim {
			t.Fatalf("dead rank %d listed as contributor", victim)
		}
	}
	for i := range want {
		if combined[i] != want[i] {
			t.Fatalf("lane %d: got %d, want %d (survivor data lost)", i, combined[i], want[i])
		}
	}
	// The crash protocol must be deterministic: an identical re-run yields
	// the identical result.
	combined2, contributors2, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(combined2, contributors2) != fmt.Sprint(combined, contributors) {
		t.Fatalf("crash run not deterministic: %v/%v vs %v/%v", combined, contributors, combined2, contributors2)
	}
}

// TestReduceMaxMatchesElementwise checks the tree-based ReduceMax against
// a locally computed element-wise maximum — the satellite guard that the
// re-implementation preserves the old AllGather semantics.
func TestReduceMaxMatchesElementwise(t *testing.T) {
	const n, width = 9, 4
	vals := func(id int) []int64 {
		out := make([]int64, width)
		for i := range out {
			out[i] = int64((id*17+i*13)%41 - 20)
		}
		return out
	}
	want := make([]int64, width)
	for i := range want {
		want[i] = -1 << 62
	}
	for id := 0; id < n; id++ {
		for i, v := range vals(id) {
			if v > want[i] {
				want[i] = v
			}
		}
	}
	_, err := Run(n, testCost(), func(r *Rank) error {
		got := r.ReduceMax(vals(r.ID()))
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("rank %d lane %d: got %d want %d", r.ID(), i, got[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCollectiveOpAccounting checks the per-op metric series (satellite:
// gather/bcast bytes must be attributable per collective op, and the tree
// ops book their own series plus per-level edge volume).
func TestCollectiveOpAccounting(t *testing.T) {
	reg := metrics.NewRegistry()
	const n = 8
	cfg := Config{Cost: testCost(), Metrics: reg}
	_, err := RunConfig(n, cfg, func(r *Rank) error {
		r.Gather(0, []byte("abcd"))
		var b []byte
		if r.ID() == 0 {
			b = []byte("xyz")
		}
		r.Bcast(0, b)
		members := make([]int, n)
		for i := range members {
			members[i] = i
		}
		r.TreeReduce(0, 2, members, []byte{1}, func(a, b []byte) []byte { return a })
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.CounterTotal("mpi.collective.gather"); got != n {
		t.Fatalf("gather op count = %d, want %d", got, n)
	}
	if got := snap.CounterTotal("mpi.collective.gather.bytes"); got != int64(n*4) {
		t.Fatalf("gather bytes = %d, want %d", got, n*4)
	}
	if got := snap.CounterTotal("mpi.collective.bcast"); got != n {
		t.Fatalf("bcast op count = %d, want %d", got, n)
	}
	if got := snap.CounterTotal("mpi.collective.treereduce"); got != n {
		t.Fatalf("treereduce op count = %d, want %d", got, n)
	}
	// A binary tree over 8 ranks has depth 3; every non-root sends exactly
	// one up-phase bundle booked at its own level.
	if got := snap.CounterTotal("mpi.tree.level01.msgs") +
		snap.CounterTotal("mpi.tree.level02.msgs") +
		snap.CounterTotal("mpi.tree.level03.msgs"); got != n-1 {
		t.Fatalf("tree edge messages = %d, want %d", got, n-1)
	}
	if snap.GaugeTotal("mpi.tree.depth") != 3 {
		t.Fatalf("tree depth gauge = %g, want 3", snap.GaugeTotal("mpi.tree.depth"))
	}
}
