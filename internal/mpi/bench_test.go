package mpi

import "testing"

func BenchmarkPingPong(b *testing.B) {
	payload := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := Run(2, testCost(), func(r *Rank) error {
			for k := 0; k < 100; k++ {
				if r.ID() == 0 {
					r.Send(1, 1, payload)
					r.Recv(1, 2)
				} else {
					r.Recv(0, 1)
					r.Send(0, 2, payload)
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMasterWorkerFanIn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Run(16, testCost(), func(r *Rank) error {
			if r.ID() == 0 {
				for k := 0; k < 15*10; k++ {
					r.Recv(AnySource, AnyTag)
				}
				return nil
			}
			for k := 0; k < 10; k++ {
				r.Send(0, 1, make([]byte, 256))
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBarrier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Run(32, testCost(), func(r *Rank) error {
			for k := 0; k < 10; k++ {
				r.Barrier()
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
