package mpi

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
)

// TestSingleRankCollectivesFree: a world of one pays no tree latency for
// collectives (logSteps(1) must be 0, not 1 — regression for the ceil-log2
// off-by-one that charged a lone rank one latency step per collective).
func TestSingleRankCollectivesFree(t *testing.T) {
	clocks, err := Run(1, testCost(), func(r *Rank) error {
		r.Barrier()
		got := r.Bcast(0, []byte("payload"))
		if string(got) != "payload" {
			return fmt.Errorf("bcast returned %q", got)
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Bcast still pays the payload transfer; latency terms must be zero.
	want := float64(len("payload")) / testCost().NetBandwidth
	if got := clocks[0].Now(); !close(got, want) {
		t.Fatalf("single-rank collectives advanced clock to %g, want %g (latency leaked in)", got, want)
	}
}

func TestLogSteps(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want float64
	}{{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}} {
		if got := logSteps(tc.n); got != tc.want {
			t.Errorf("logSteps(%d) = %g, want %g", tc.n, got, tc.want)
		}
	}
}

// TestCollectiveBytesBucket: collective payloads must land in their own
// CommStats bucket, not in the protocol bucket the §3.2 metric reads.
func TestCollectiveBytesBucket(t *testing.T) {
	comm := NewCommStats(2)
	cfg := Config{Cost: testCost(), Comm: comm}
	_, err := RunConfig(2, cfg, func(r *Rank) error {
		r.Bcast(0, []byte("0123456789")) // 10 collective bytes from root
		if r.ID() == 0 {
			r.Send(1, 3, make([]byte, 100))                 // protocol
			r.Send(1, ShuffleTagBase+1, make([]byte, 1000)) // shuffle
			r.Send(1, 4, nil)                               // protocol, 0 bytes
		} else {
			r.Recv(0, 3)
			r.Recv(0, ShuffleTagBase+1)
			r.Recv(0, 4)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	protocol, shuffle, collective, messages := comm.Totals()
	if protocol != 100 {
		t.Errorf("protocol bytes = %d, want 100 (collective payloads leaked in?)", protocol)
	}
	if shuffle != 1000 {
		t.Errorf("shuffle bytes = %d, want 1000", shuffle)
	}
	if collective != 10 {
		t.Errorf("collective bytes = %d, want 10", collective)
	}
	// 2 collective entries + 3 sends.
	if messages != 5 {
		t.Errorf("messages = %d, want 5", messages)
	}
	p0, _, c0, _ := comm.Rank(0)
	p1, _, c1, _ := comm.Rank(1)
	if p0 != 100 || p1 != 0 {
		t.Errorf("per-rank protocol = %d/%d, want 100/0", p0, p1)
	}
	if c0 != 10 || c1 != 0 {
		t.Errorf("per-rank collective = %d/%d, want 10/0 (only root carries the payload)", c0, c1)
	}
}

// TestCrashExcludedFromCollectives: survivors' Barrier completes even when
// a scheduled crash removes a participant before it joins.
func TestCrashExcludedFromCollectives(t *testing.T) {
	cfg := Config{
		Cost:   testCost(),
		Faults: []Fault{{Rank: 2, At: 1.0, Kind: FaultCrash}},
	}
	clocks, err := RunConfig(3, cfg, func(r *Rank) error {
		if r.ID() == 2 {
			r.Advance(2) // sails past At=1; the next op crashes
		}
		r.Barrier()
		if live := r.Live(); len(live) != 2 || live[0] != 0 || live[1] != 1 {
			return fmt.Errorf("Live() = %v, want [0 1]", live)
		}
		if !r.Failed(2) {
			return errors.New("Failed(2) = false after crash")
		}
		if ct := r.CrashTime(2); ct != 2.0 {
			return fmt.Errorf("CrashTime(2) = %g, want 2", ct)
		}
		if ct := r.CrashTime(0); !math.IsInf(ct, 1) {
			return fmt.Errorf("CrashTime(0) = %g for a live rank", ct)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The dead rank's clock froze at its crash; survivors moved on.
	if got := clocks[2].Now(); got != 2.0 {
		t.Fatalf("victim clock = %g, want 2 (frozen at crash)", got)
	}
}

// TestRecvTimeoutExpires: with no sender, RecvTimeout returns ErrTimeout
// and advances the clock exactly to the deadline (polling makes progress).
func TestRecvTimeoutExpires(t *testing.T) {
	clocks, err := Run(2, testCost(), func(r *Rank) error {
		if r.ID() != 0 {
			return nil
		}
		data, _, _, err := r.RecvTimeout(1, 9, 0.25)
		if !errors.Is(err, ErrTimeout) {
			return fmt.Errorf("err = %v, want ErrTimeout", err)
		}
		if data != nil {
			return fmt.Errorf("data = %v on timeout", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := clocks[0].Now(); !close(got, 0.25) {
		t.Fatalf("clock after timeout = %g, want 0.25", got)
	}
}

// TestRecvTimeoutFromCrashed: awaiting a specific crashed rank fails fast
// with ErrRankFailed (wrapped, naming the crash time) instead of timing out.
func TestRecvTimeoutFromCrashed(t *testing.T) {
	cfg := Config{
		Cost:   testCost(),
		Faults: []Fault{{Rank: 1, At: 0.5, Kind: FaultCrash}},
	}
	_, err := RunConfig(2, cfg, func(r *Rank) error {
		switch r.ID() {
		case 1:
			r.Advance(1) // dies at the next op
			r.Barrier()
		case 0:
			r.Advance(2) // make sure the crash is in the past
			_, _, _, err := r.RecvTimeout(1, 9, 100)
			if !errors.Is(err, ErrRankFailed) {
				return fmt.Errorf("err = %v, want ErrRankFailed", err)
			}
			if !strings.Contains(err.Error(), "crashed at t=") {
				return fmt.Errorf("error %q does not name the crash time", err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecvFromCrashedAborts: a plain (deadline-free) Recv on a dead peer is
// an unrecoverable stall; the abort must say WHO crashed, not "deadlock".
func TestRecvFromCrashedAborts(t *testing.T) {
	cfg := Config{
		Cost:   testCost(),
		Faults: []Fault{{Rank: 1, At: 0.5, Kind: FaultCrash}},
	}
	_, err := RunConfig(2, cfg, func(r *Rank) error {
		if r.ID() == 1 {
			r.Advance(1)
			r.Barrier() // dies here
			return nil
		}
		r.Recv(1, 9) // never satisfiable
		return nil
	})
	if err == nil {
		t.Fatal("expected an abort error")
	}
	if !strings.Contains(err.Error(), "unrecovered rank failure") ||
		!strings.Contains(err.Error(), "rank 1 crashed") {
		t.Fatalf("abort error %q should name the crashed rank", err)
	}
	if strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("crash-induced stall misreported as deadlock: %q", err)
	}
}

// TestTryRecv delivers only messages that have already arrived.
func TestTryRecv(t *testing.T) {
	_, err := Run(2, testCost(), func(r *Rank) error {
		if r.ID() == 1 {
			r.Send(0, 5, []byte("x"))
			return nil
		}
		if _, _, _, ok := r.TryRecv(1, 5); ok {
			return errors.New("TryRecv delivered a message that has not arrived yet")
		}
		r.Advance(1)
		r.Yield() // hand the token over so the send happens, arrival now past
		data, from, tag, ok := r.TryRecv(1, 5)
		if !ok || from != 1 || tag != 5 || string(data) != "x" {
			return fmt.Errorf("TryRecv = %q from %d tag %d ok=%v", data, from, tag, ok)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOnFaultHook: every scheduled fault fires the hook exactly once with
// its kind and a time at or after the scheduled At.
func TestOnFaultHook(t *testing.T) {
	var fired []string
	cfg := Config{
		Cost: testCost(),
		Faults: []Fault{
			{Rank: 1, At: 0.5, Kind: FaultCrash},
			{Rank: 2, At: 0.25, Kind: FaultDegrade, Slow: 4},
		},
		OnFault: func(rank int, kind FaultKind, at float64) {
			fired = append(fired, fmt.Sprintf("%d:%s@%.2f", rank, kind, at))
		},
	}
	_, err := RunConfig(3, cfg, func(r *Rank) error {
		r.Advance(1)
		r.Compute(1000)
		if r.ID() == 1 {
			r.Barrier() // crash fires here
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"1:crash@1.00": true, "2:degrade@1.00": true}
	if len(fired) != 2 || !want[fired[0]] || !want[fired[1]] || fired[0] == fired[1] {
		t.Fatalf("OnFault fired %v, want one crash and one degrade at t=1", fired)
	}
}

// TestDegradeSlowsCompute: past At, compute costs Slow× more; work done
// before At is unaffected.
func TestDegradeSlowsCompute(t *testing.T) {
	cfg := Config{
		Cost:   testCost(),
		Faults: []Fault{{Rank: 1, At: 0.0, Kind: FaultDegrade, Slow: 3}},
	}
	clocks, err := RunConfig(2, cfg, func(r *Rank) error {
		r.Compute(1_000_000) // 1s at baseline speed
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := clocks[0].Now(); !close(got, 1.0) {
		t.Fatalf("healthy rank clock = %g, want 1", got)
	}
	if got := clocks[1].Now(); !close(got, 3.0) {
		t.Fatalf("degraded rank clock = %g, want 3", got)
	}
}

// TestFaultValidation rejects malformed fault schedules up front.
func TestFaultValidation(t *testing.T) {
	body := func(r *Rank) error { return nil }
	for _, tc := range []struct {
		name   string
		faults []Fault
	}{
		{"bad rank", []Fault{{Rank: 7, At: 1, Kind: FaultCrash}}},
		{"negative time", []Fault{{Rank: 1, At: -1, Kind: FaultCrash}}},
		{"double crash", []Fault{{Rank: 1, At: 1, Kind: FaultCrash}, {Rank: 1, At: 2, Kind: FaultCrash}}},
		{"degrade without slow", []Fault{{Rank: 1, At: 1, Kind: FaultDegrade}}},
		{"unknown kind", []Fault{{Rank: 1, At: 1, Kind: FaultKind(99)}}},
	} {
		cfg := Config{Cost: testCost(), Faults: tc.faults}
		if _, err := RunConfig(2, cfg, body); err == nil {
			t.Errorf("%s: schedule accepted", tc.name)
		}
	}
}

// TestRecvTimeoutDeterminism: the same fault schedule and timeout-driven
// protocol must reproduce the exact same event history and final clocks.
func TestRecvTimeoutDeterminism(t *testing.T) {
	scenario := func() (string, []float64, error) {
		var log strings.Builder
		cfg := Config{
			Cost:   testCost(),
			Faults: []Fault{{Rank: 2, At: 0.12, Kind: FaultCrash}},
		}
		clocks, err := RunConfig(3, cfg, func(r *Rank) error {
			switch r.ID() {
			case 1:
				r.Advance(0.07)
				r.Send(0, 1, []byte("from1"))
			case 2:
				r.Advance(0.2)
				r.Send(0, 1, []byte("from2")) // never sent: dead at 0.2
			case 0:
				got := 0
				for tries := 0; tries < 10 && got < 2; tries++ {
					data, from, _, err := r.RecvTimeout(AnySource, 1, 0.05)
					switch {
					case err == nil:
						fmt.Fprintf(&log, "recv %q from %d at %.3f; ", data, from, r.Clock().Now())
						got++
					case errors.Is(err, ErrTimeout):
						fmt.Fprintf(&log, "timeout at %.3f; ", r.Clock().Now())
					default:
						fmt.Fprintf(&log, "err %v; ", err)
					}
					if r.Failed(2) && got == 1 {
						fmt.Fprintf(&log, "detected crash of 2; ")
						break
					}
				}
			}
			return nil
		})
		finals := make([]float64, len(clocks))
		for i, c := range clocks {
			finals[i] = c.Now()
		}
		return log.String(), finals, err
	}
	log1, clocks1, err1 := scenario()
	log2, clocks2, err2 := scenario()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if log1 != log2 {
		t.Fatalf("event histories diverged:\n%s\n%s", log1, log2)
	}
	for i := range clocks1 {
		if clocks1[i] != clocks2[i] {
			t.Fatalf("rank %d final clock diverged: %g vs %g", i, clocks1[i], clocks2[i])
		}
	}
	if !strings.Contains(log1, `recv "from1" from 1`) {
		t.Fatalf("rank 1's message was not delivered: %s", log1)
	}
	if !strings.Contains(log1, "detected crash of 2") {
		t.Fatalf("crash of rank 2 went undetected: %s", log1)
	}
}
