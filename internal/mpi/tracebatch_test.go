package mpi

import (
	"fmt"
	"sync"
	"testing"
)

// TestTraceBatchMonotoneAdoption is the two-batch stale-sideband
// regression: in a stream, a batch-0 reply can be delivered to the master
// AFTER the master has already advanced its context to batch 1 (late
// straggler results, retransmissions). Adoption must be monotone — the
// late delivery keeps its own batch id on the flow EDGE, but must not
// rewind the receiver's context, or every subsequent send would be
// stamped with the stale batch and the flow graph's per-batch split
// would attribute batch-1 traffic to batch 0.
func TestTraceBatchMonotoneAdoption(t *testing.T) {
	var mu sync.Mutex
	var flows []FlowEvent
	cfg := Config{Cost: testCost(), OnFlow: func(f FlowEvent) {
		mu.Lock()
		flows = append(flows, f)
		mu.Unlock()
	}}
	_, err := RunConfig(2, cfg, func(r *Rank) error {
		if r.ID() == 0 {
			// Master: dispatch batch 0, then batch 1, then receive the
			// worker's batch-0 reply — which arrives after the context
			// already moved to batch 1.
			r.SetTraceBatch(0)
			r.Send(1, 5, []byte("batch0-work"))
			r.SetTraceBatch(1)
			r.Send(1, 6, []byte("batch1-work"))
			r.Recv(1, 7) // late batch-0-stamped reply
			if got := r.TraceBatch(); got != 1 {
				return fmt.Errorf("master context rewound to %d by late batch-0 delivery, want 1", got)
			}
			r.Send(1, 8, []byte("batch1-followup"))
			return nil
		}
		// Worker: adopt batch 0 from the first request, reply while still
		// in batch-0 context, then consume the batch-1 request.
		r.Recv(0, 5)
		if got := r.TraceBatch(); got != 0 {
			return fmt.Errorf("worker did not adopt batch 0: got %d", got)
		}
		r.Send(0, 7, []byte("batch0-results"))
		r.Recv(0, 6)
		if got := r.TraceBatch(); got != 1 {
			return fmt.Errorf("worker did not advance to batch 1: got %d", got)
		}
		r.Recv(0, 8)
		if got := r.TraceBatch(); got != 1 {
			return fmt.Errorf("worker context after follow-up = %d, want 1", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Per-batch split of the flow edges must be exact: each edge carries
	// the batch its ENVELOPE was stamped with at send time, so the late
	// reply stays in batch 0 while the follow-up lands in batch 1.
	wantBatch := map[string]int{"tag05": 0, "tag06": 1, "tag07": 0, "tag08": 1}
	seen := map[string]bool{}
	for _, f := range flows {
		want, ok := wantBatch[f.Op]
		if !ok {
			t.Fatalf("unexpected flow op %q", f.Op)
		}
		if f.Batch != want {
			t.Fatalf("flow %s batch = %d, want %d", f.Op, f.Batch, want)
		}
		seen[f.Op] = true
	}
	for op := range wantBatch {
		if !seen[op] {
			t.Fatalf("flow edge for %s not recorded", op)
		}
	}
}
