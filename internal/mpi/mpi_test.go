package mpi

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"parblast/internal/simtime"
	"parblast/internal/vfs"
)

func testCost() simtime.CostModel {
	return simtime.CostModel{
		NetLatency:       1e-3,
		NetBandwidth:     1e6,
		SearchUnitCost:   1e-6,
		FormatByteCost:   1e-8,
		MergeItemCost:    1e-4,
		MemCopyBandwidth: 1e9,
	}
}

func TestRunSingleRank(t *testing.T) {
	clocks, err := Run(1, testCost(), func(r *Rank) error {
		r.Advance(1.5)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if clocks[0].Now() != 1.5 {
		t.Fatalf("clock = %g", clocks[0].Now())
	}
}

func TestSendRecvTiming(t *testing.T) {
	cost := testCost()
	payload := make([]byte, 1000) // 1ms transfer at 1 MB/s
	clocks, err := Run(2, cost, func(r *Rank) error {
		if r.ID() == 0 {
			r.Advance(5)
			r.Send(1, 7, payload)
			return nil
		}
		data, from, tag := r.Recv(0, 7)
		if from != 0 || tag != 7 || len(data) != 1000 {
			return fmt.Errorf("got %d bytes from %d tag %d", len(data), from, tag)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sender: 5 + 1ms send occupancy. Receiver: arrival 5.001+latency
	// 0.001 = wait, then 1ms receive copy.
	want0 := 5 + 0.001
	if got := clocks[0].Now(); !close(got, want0) {
		t.Fatalf("sender clock = %g, want %g", got, want0)
	}
	want1 := 5 + 0.001 + 0.001 + 0.001 // send occupancy + latency + recv copy
	if got := clocks[1].Now(); !close(got, want1) {
		t.Fatalf("receiver clock = %g, want %g", got, want1)
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestRecvAnySourcePicksEarliest(t *testing.T) {
	// Rank 1 sends at t=10, rank 2 at t=1. Master's AnySource receive must
	// deliver rank 2's message first regardless of goroutine scheduling.
	var order []int
	_, err := Run(3, testCost(), func(r *Rank) error {
		switch r.ID() {
		case 1:
			r.Advance(10)
			r.Send(0, 1, []byte("late"))
		case 2:
			r.Advance(1)
			r.Send(0, 1, []byte("early"))
		case 0:
			for i := 0; i < 2; i++ {
				_, from, _ := r.Recv(AnySource, 1)
				order = append(order, from)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("receive order = %v, want [2 1]", order)
	}
}

func TestMessageOrderingSameSender(t *testing.T) {
	// Messages between one pair with the same tag arrive in send order.
	var got []byte
	_, err := Run(2, testCost(), func(r *Rank) error {
		if r.ID() == 0 {
			for i := byte(0); i < 10; i++ {
				r.Send(1, 3, []byte{i})
			}
			return nil
		}
		for i := 0; i < 10; i++ {
			data, _, _ := r.Recv(0, 3)
			got = append(got, data[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 10; i++ {
		if got[i] != i {
			t.Fatalf("order violated: %v", got)
		}
	}
}

func TestTagSelectivity(t *testing.T) {
	_, err := Run(2, testCost(), func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, 5, []byte("five"))
			r.Send(1, 9, []byte("nine"))
			return nil
		}
		// Receive tag 9 first even though tag 5 arrived earlier.
		data, _, tag := r.Recv(0, 9)
		if tag != 9 || string(data) != "nine" {
			return fmt.Errorf("tag filter broken: %q tag %d", data, tag)
		}
		data, _, _ = r.Recv(0, 5)
		if string(data) != "five" {
			return fmt.Errorf("second recv got %q", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	clocks, err := Run(4, testCost(), func(r *Rank) error {
		r.Advance(float64(r.ID()) * 2) // ranks at 0, 2, 4, 6
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range clocks {
		if c.Now() < 6 {
			t.Fatalf("rank %d left barrier at %g before slowest entry", i, c.Now())
		}
		if c.Now() != clocks[0].Now() {
			t.Fatalf("ranks left barrier at different times: %g vs %g", c.Now(), clocks[0].Now())
		}
	}
}

func TestBcast(t *testing.T) {
	_, err := Run(3, testCost(), func(r *Rank) error {
		var in []byte
		if r.ID() == 1 {
			in = []byte("payload")
		}
		out := r.Bcast(1, in)
		if string(out) != "payload" {
			return fmt.Errorf("rank %d got %q", r.ID(), out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	_, err := Run(4, testCost(), func(r *Rank) error {
		data := []byte{byte(r.ID() * 10)}
		out := r.Gather(2, data)
		if r.ID() != 2 {
			if out != nil {
				return errors.New("non-root got gather data")
			}
			return nil
		}
		if len(out) != 4 {
			return fmt.Errorf("root got %d pieces", len(out))
		}
		for i, d := range out {
			if len(d) != 1 || d[0] != byte(i*10) {
				return fmt.Errorf("piece %d = %v", i, d)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGatherAndReduceMax(t *testing.T) {
	_, err := Run(3, testCost(), func(r *Rank) error {
		out := r.AllGather([]byte{byte(r.ID())})
		if len(out) != 3 || out[2][0] != 2 {
			return fmt.Errorf("allgather: %v", out)
		}
		m := r.ReduceMax([]int64{int64(r.ID()), int64(-r.ID())})
		if m[0] != 2 || m[1] != 0 {
			return fmt.Errorf("reducemax: %v", m)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	// A master/worker pattern with AnySource receives must produce
	// identical clocks on every run.
	run := func() []float64 {
		clocks, err := Run(8, testCost(), func(r *Rank) error {
			if r.ID() == 0 {
				for i := 0; i < 7*3; i++ {
					data, from, _ := r.Recv(AnySource, 1)
					r.Advance(1e-4)
					r.Send(from, 2, data)
				}
				return nil
			}
			for i := 0; i < 3; i++ {
				r.Advance(float64(r.ID()) * 1e-3)
				r.Send(0, 1, make([]byte, 100*r.ID()))
				r.Recv(0, 2)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(clocks))
		for i, c := range clocks {
			out[i] = c.Now()
		}
		return out
	}
	a := run()
	for trial := 0; trial < 5; trial++ {
		b := run()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: rank %d clock %g != %g", trial, i, b[i], a[i])
			}
		}
	}
}

func TestClockMonotone(t *testing.T) {
	// Receives never move a clock backwards even when the message arrived
	// "in the past".
	clocks, err := Run(2, testCost(), func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, 1, []byte("x")) // arrives ~t=0.001
			return nil
		}
		r.Advance(5) // receiver is far ahead
		r.Recv(0, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if clocks[1].Now() < 5 {
		t.Fatalf("receiver clock ran backwards: %g", clocks[1].Now())
	}
}

func TestDeadlockDetected(t *testing.T) {
	_, err := Run(2, testCost(), func(r *Rank) error {
		r.Recv(AnySource, AnyTag) // both wait forever
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
}

func TestBodyErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(3, testCost(), func(r *Rank) error {
		if r.ID() == 1 {
			return boom
		}
		return nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("expected boom, got %v", err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	_, err := Run(2, testCost(), func(r *Rank) error {
		if r.ID() == 1 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("expected panic error, got %v", err)
	}
}

func TestErrorWhileOthersBlockedDoesNotHang(t *testing.T) {
	_, err := Run(2, testCost(), func(r *Rank) error {
		if r.ID() == 0 {
			return errors.New("early exit")
		}
		r.Recv(0, 1) // would block forever
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestIOChargesContention(t *testing.T) {
	fs := vfs.MustNew(vfs.Profile{Name: "t", Latency: 0.5, Bandwidth: 1000, Channels: 1})
	clocks, err := Run(2, testCost(), func(r *Rank) error {
		r.IO(fs, 500) // 0.5 + 0.5 = 1s each, serialized
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := clocks[0].Now(), clocks[1].Now()
	if a > b {
		a, b = b, a
	}
	if !close(a, 1) || !close(b, 2) {
		t.Fatalf("IO contention wrong: %g %g (want 1, 2)", a, b)
	}
}

func TestPhaseAccounting(t *testing.T) {
	clocks, err := Run(1, testCost(), func(r *Rank) error {
		r.SetPhase(simtime.PhaseSearch)
		r.Compute(1000) // 1ms at 1µs/unit
		r.SetPhase(simtime.PhaseOutput)
		r.FormatCost(1e6) // 10ms
		r.MemCopy(1e6)    // 1ms
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	b := simtime.BreakdownOf(clocks[0])
	if !close(b.Search, 1e-3) {
		t.Fatalf("search bucket = %g", b.Search)
	}
	if !close(b.Output, 11e-3) {
		t.Fatalf("output bucket = %g", b.Output)
	}
}

func TestWorldSizeValidation(t *testing.T) {
	if _, err := Run(0, testCost(), func(*Rank) error { return nil }); err == nil {
		t.Fatal("zero ranks accepted")
	}
	bad := testCost()
	bad.NetBandwidth = 0
	if _, err := Run(1, bad, func(*Rank) error { return nil }); err == nil {
		t.Fatal("invalid cost model accepted")
	}
}

func TestSortRanksByClock(t *testing.T) {
	clocks, err := Run(3, testCost(), func(r *Rank) error {
		r.Advance(float64(3 - r.ID()))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := SortRanksByClock(clocks)
	if ids[0] != 2 || ids[2] != 0 {
		t.Fatalf("sorted ids = %v", ids)
	}
}

func TestRecvFilterNotStale(t *testing.T) {
	// Regression: a Recv(specific src) must not consume a queued message
	// from a different sender just because the PREVIOUS Recv's filter
	// matched it. Rank 0 first receives from 2, then from 1 — with rank
	// 2's second message already queued.
	_, err := Run(3, testCost(), func(r *Rank) error {
		switch r.ID() {
		case 2:
			r.Send(0, 7, []byte("two-a"))
			r.Send(0, 7, []byte("two-b"))
		case 1:
			r.Advance(1) // arrives later than both of rank 2's
			r.Send(0, 7, []byte("one"))
		case 0:
			data, from, _ := r.Recv(2, 7)
			if from != 2 || string(data) != "two-a" {
				return fmt.Errorf("first recv got %q from %d", data, from)
			}
			data, from, _ = r.Recv(1, 7) // two-b is queued but must NOT match
			if from != 1 || string(data) != "one" {
				return fmt.Errorf("second recv got %q from %d (stale filter)", data, from)
			}
			data, from, _ = r.Recv(2, 7)
			if string(data) != "two-b" {
				return fmt.Errorf("third recv got %q from %d", data, from)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestYieldPreservesTimeOrder(t *testing.T) {
	// Two ranks issue storage accesses in loops; with Yield between
	// iterations the single-channel storage must serve them in virtual-
	// time order, so both finish at (approximately) the same time instead
	// of one queueing entirely behind the other.
	fs := vfs.MustNew(vfs.Profile{Name: "t", Latency: 0.1, Bandwidth: 1e9, Channels: 1})
	clocks, err := Run(2, testCost(), func(r *Rank) error {
		for i := 0; i < 5; i++ {
			r.IO(fs, 10)
			r.Yield()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 10 ops × 0.1s on one channel = 1.0s total, interleaved fairly:
	// both ranks end within one op of each other.
	a, b := clocks[0].Now(), clocks[1].Now()
	if a > b {
		a, b = b, a
	}
	if b < 0.9 {
		t.Fatalf("ops not serialized: max clock %g", b)
	}
	if b-a > 0.11 {
		t.Fatalf("interleaving unfair: %g vs %g", a, b)
	}
}

func TestHeterogeneousSpeeds(t *testing.T) {
	cfg := Config{Cost: testCost(), Speeds: []float64{1, 3}}
	clocks, err := RunConfig(2, cfg, func(r *Rank) error {
		r.Compute(1000) // 1ms at baseline speed
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !close(clocks[0].Now(), 1e-3) {
		t.Fatalf("baseline rank clock %g", clocks[0].Now())
	}
	if !close(clocks[1].Now(), 3e-3) {
		t.Fatalf("slow rank clock %g, want 3ms", clocks[1].Now())
	}
	// Negative speeds rejected.
	bad := Config{Cost: testCost(), Speeds: []float64{-1}}
	if _, err := RunConfig(1, bad, func(*Rank) error { return nil }); err == nil {
		t.Fatal("negative speed accepted")
	}
	// Speed query API.
	_, err = RunConfig(2, cfg, func(r *Rank) error {
		want := 1.0
		if r.ID() == 1 {
			want = 3
		}
		if r.Speed() != want {
			return fmt.Errorf("rank %d speed %g", r.ID(), r.Speed())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveOpMismatchPanics(t *testing.T) {
	_, err := Run(2, testCost(), func(r *Rank) error {
		if r.ID() == 0 {
			r.Barrier()
		} else {
			r.Bcast(0, nil) // different collective concurrently: protocol bug
		}
		return nil
	})
	if err == nil {
		t.Fatal("mismatched collectives not diagnosed")
	}
}
