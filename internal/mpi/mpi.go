// Package mpi simulates an MPI runtime for the parallel BLAST engines:
// ranks are goroutines, messages are real byte payloads, and time is
// virtual, driven by a simtime.CostModel.
//
// # Execution model
//
// The world runs as a sequential discrete-event simulation: at any moment
// exactly one rank executes (it holds the scheduler token). A rank runs
// until it blocks — on a receive with no matching message, or inside a
// collective — and then the scheduler hands the token to the eligible rank
// with the smallest virtual time. This rule makes runs fully deterministic
// (identical clocks, identical message orders) while still exercising the
// real concurrent message-passing structure of the engines:
//
//   - a rank that is ready to run is eligible at its own clock;
//   - a rank blocked on a receive is eligible at max(clock, earliest
//     matching arrival), and ineligible while no match is queued;
//   - a rank inside a collective is ineligible until the last participant
//     arrives, which releases everyone at the collective's completion time.
//
// Because the scheduler always advances the globally earliest event, any
// message sent in the future carries an arrival no earlier than the event
// being executed, so receive choices (including AnySource) are exact.
//
// # Cost model
//
// Send charges the sender size/bandwidth (its NIC is busy), and the message
// arrives one latency later. Receive waits for arrival, then charges the
// receiver size/bandwidth. A master that handles per-item request/reply
// traffic therefore serializes on its own clock — the exact phenomenon the
// paper's result-merging analysis is about.
package mpi

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"parblast/internal/metrics"
	"parblast/internal/simtime"
	"parblast/internal/vfs"
)

// AnySource matches a message from any rank; AnyTag matches any tag.
const (
	AnySource = -1
	AnyTag    = -1
)

type rankState int

const (
	stateReady rankState = iota
	stateRunning
	stateBlockedRecv
	stateBlockedColl
	stateDone
)

func (s rankState) String() string {
	switch s {
	case stateReady:
		return "ready"
	case stateRunning:
		return "running"
	case stateBlockedRecv:
		return "blocked-recv"
	case stateBlockedColl:
		return "blocked-collective"
	case stateDone:
		return "done"
	}
	return "?"
}

type message struct {
	src, tag int
	data     []byte
	arrival  float64
	seq      int64
	// Trace-context sideband: the sender's query-batch id and the virtual
	// time the payload left its NIC. These ride OUTSIDE data so the
	// bandwidth charge (len(data)/NetBandwidth) is byte-identical with
	// tracing on or off.
	batch  int
	sendAt float64
}

type collective struct {
	op        string
	datas     [][]byte
	count     int
	releaseFn func(datas [][]byte, maxClock float64) float64
	releaseAt float64
	done      bool
	// Per-rank causal context for flow emission: entry clock, trace batch,
	// and whether the rank joined at all (crashed ranks never do).
	entries []float64
	batches []int
	joined  []bool
}

// FaultKind classifies a scheduled fault.
type FaultKind int

const (
	// FaultCrash fail-stops the rank: at the first MPI operation after its
	// clock reaches At, the rank dies. Pending messages to it are dropped,
	// collectives complete over the surviving ranks, and peers observe the
	// failure through RecvTimeout/Failed or a crash-aware abort.
	FaultCrash FaultKind = iota
	// FaultDegrade slows the rank's compute by the Slow factor from At on
	// (a sick-but-alive node: thermal throttling, a competing job).
	FaultDegrade
)

// String names the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultDegrade:
		return "degrade"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault schedules one deterministic fault. Faults are part of the Config,
// so a given schedule always reproduces the same failure history.
type Fault struct {
	// Rank is the victim.
	Rank int
	// At is the virtual time the fault takes effect. A crash fires at the
	// victim's first MPI operation at or after At.
	At float64
	// Kind selects crash vs degrade.
	Kind FaultKind
	// Slow is the compute slowdown factor for FaultDegrade (2 = half
	// speed). Ignored for crashes.
	Slow float64
}

// ErrTimeout is returned by RecvTimeout when the virtual-time deadline
// expires before a matching message arrives.
var ErrTimeout = errors.New("mpi: receive timed out")

// ErrRankFailed is returned (wrapped) by RecvTimeout when the awaited
// source rank has crashed. Test with errors.Is.
var ErrRankFailed = errors.New("mpi: peer rank failed")

// crashPanic unwinds a crashing rank's goroutine; it is not an error.
type crashPanic struct{ rank int }

// World is the shared state of one simulated MPI job.
type World struct {
	n      int
	cost   simtime.CostModel
	config Config

	mu   sync.Mutex
	cond *sync.Cond

	ranks        []*Rank
	states       []rankState
	recvSrc      []int // per rank, when blocked on recv
	recvTag      []int
	recvDeadline []float64 // virtual-time deadline, +Inf for plain Recv
	inbox        [][]message
	coll         *collective
	collOf       []*collective
	seq          int64
	active       int
	doneCount    int
	aborted      bool
	abortMsg     string
	firstErr     error

	// Fault plane: per-rank schedule (immutable after setup) and outcome.
	crashAt     []float64 // scheduled crash time, +Inf = never
	degradeAt   []float64 // scheduled degrade time, +Inf = never
	degradeSlow []float64
	crashed     []bool
	crashTime   []float64 // actual crash time (first op at/after crashAt)
}

// Rank is one simulated MPI process.
type Rank struct {
	id           int
	world        *World
	clock        *simtime.Clock
	degradeFired bool // OnFault for this rank's degrade already reported
	// treeRound numbers this rank's tree-collective invocations per op tag,
	// so the crash-aware protocol can drop stale retransmissions from
	// earlier rounds. Only touched by the rank's own goroutine.
	treeRound map[int]int64
	// traceBatch is the rank's current query-batch trace context (-1 =
	// none). Stamped on every outgoing envelope; adopted from incoming
	// envelopes at delivery, so context propagates causally across ranks.
	// Only touched by the rank's own goroutine.
	traceBatch int
}

type abortPanic struct{ msg string }

// Flow kinds reported through Config.OnFlow. The strings match the trace
// package's flow constants (mpi deliberately does not import trace — the
// façade adapts, mirroring the Observer/OnFault wiring).
const (
	FlowMsg     = "msg"     // point-to-point message delivery
	FlowContrib = "contrib" // collective participant entry → fold site
	FlowRelease = "release" // fold site → participant resume point
)

// FlowEvent is one causal edge between two rank timelines, reported at
// delivery (or collective release) time. ID is unique and deterministic
// within a run (drawn from the world's message sequence). Batch is the
// sender's query-batch trace context (-1 = none). SendAt/RecvAt are
// virtual times; emitting a flow never advances any clock.
type FlowEvent struct {
	Kind   string
	Op     string
	ID     int64
	Batch  int
	Src    int
	Dst    int
	Bytes  int
	SendAt float64
	RecvAt float64
}

// Config bundles a cost model with optional per-rank heterogeneity.
type Config struct {
	Cost simtime.CostModel
	// Speeds scales each rank's compute cost: 1 is the baseline node,
	// 2 runs compute twice as slowly. nil or missing entries mean 1.
	// Models the heterogeneous clusters the paper's §5 load-balancing
	// discussion targets.
	Speeds []float64
	// Observer, when non-nil, returns a per-rank phase-span callback that
	// is installed on each rank's clock (see internal/trace).
	Observer func(rank int) func(phase string, from, to float64)
	// Comm, when non-nil, accumulates per-rank communication volume —
	// the metric behind the paper's §3.2 message-volume-reduction claim.
	Comm *CommStats
	// Faults schedules deterministic rank failures (see Fault). At most one
	// crash and one degrade per rank.
	Faults []Fault
	// OnFault, when non-nil, is called once per fired fault (from the
	// victim's goroutine, outside the world lock) — the hook the trace
	// layer uses to put fault marks on the Gantt timeline.
	OnFault func(rank int, kind FaultKind, at float64)
	// OnFlow, when non-nil, receives one FlowEvent per causal edge:
	// point-to-point deliveries (from the receiver's goroutine, outside the
	// world lock) and collective contribution/release edges (from the
	// completing rank's goroutine, UNDER the world lock — the callback must
	// not call back into mpi). Flow reporting never advances virtual
	// clocks, so enabling it cannot change any simulated time.
	OnFlow func(FlowEvent)
	// Metrics, when non-nil, receives the run's unified telemetry: per-tag
	// message counts and bytes, collective-operation counts, and
	// receive-timeout waits, all labelled by sending/acting rank. Metrics
	// never advance virtual clocks, so enabling them cannot change any
	// reported phase time.
	Metrics *metrics.Registry
}

// ShuffleTagBase splits the tag space: tags at or above it belong to the
// collective-I/O data shuffle (internal/mpiio), below it to the engines'
// result-merging protocols. The split matters for measurement: the paper's
// §3.2 claim is about PROTOCOL volume (what flows through the master during
// merging), while shuffle volume is §3.3's deliberate network-for-disk
// trade.
const ShuffleTagBase = 1 << 20

// CollTagBase opens a third tag region, below the shuffle space, for the
// point-to-point messages that implement TREE collectives (TreeReduce,
// TreeGather, tree Bcast). Their bytes are collective-operation traffic —
// synchronization and aggregation, not merging protocol — so CommStats
// books them in the collective bucket even though they travel as ordinary
// sends.
const CollTagBase = 1 << 19

// CommStats tallies communication per rank, split into protocol traffic,
// collective-I/O shuffle traffic, and collective-operation payloads
// (Barrier/Bcast/Gather/AllGather contributions, plus the point-to-point
// hops of the tree collectives). The split keeps the paper's §3.2
// protocol-volume metric clean: collective synchronization is neither
// merging protocol nor shuffle data. Safe for concurrent use.
type CommStats struct {
	mu         sync.Mutex
	protocol   []int64
	shuffle    []int64
	collective []int64
	messages   []int64
}

// NewCommStats sizes a collector for n ranks.
func NewCommStats(n int) *CommStats {
	return &CommStats{
		protocol:   make([]int64, n),
		shuffle:    make([]int64, n),
		collective: make([]int64, n),
		messages:   make([]int64, n),
	}
}

func (c *CommStats) add(rank, tag int, bytes int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if rank < len(c.protocol) {
		switch {
		case tag >= ShuffleTagBase:
			c.shuffle[rank] += bytes
		case tag >= CollTagBase:
			c.collective[rank] += bytes
		default:
			c.protocol[rank] += bytes
		}
		c.messages[rank]++
	}
	c.mu.Unlock()
}

// addCollective books a collective-operation contribution in its own
// bucket, so Barrier/AllGather payloads never pollute the protocol metric.
func (c *CommStats) addCollective(rank int, bytes int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if rank < len(c.collective) {
		c.collective[rank] += bytes
		c.messages[rank]++
	}
	c.mu.Unlock()
}

// Rank returns one rank's sent protocol bytes, shuffle bytes, collective
// bytes, and message count.
func (c *CommStats) Rank(rank int) (protocol, shuffle, collective, messages int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rank >= len(c.protocol) {
		return 0, 0, 0, 0
	}
	return c.protocol[rank], c.shuffle[rank], c.collective[rank], c.messages[rank]
}

// Totals sums across ranks.
func (c *CommStats) Totals() (protocol, shuffle, collective, messages int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.protocol {
		protocol += c.protocol[i]
		shuffle += c.shuffle[i]
		collective += c.collective[i]
		messages += c.messages[i]
	}
	return protocol, shuffle, collective, messages
}

func (c Config) speed(rank int) float64 {
	if rank < len(c.Speeds) && c.Speeds[rank] > 0 {
		return c.Speeds[rank]
	}
	return 1
}

// Run executes body on n ranks and returns their clocks. It returns an
// error if any body returns an error, panics, or the job deadlocks.
func Run(n int, cost simtime.CostModel, body func(*Rank) error) ([]*simtime.Clock, error) {
	return RunConfig(n, Config{Cost: cost}, body)
}

// RunConfig is Run with per-rank heterogeneity.
func RunConfig(n int, cfg Config, body func(*Rank) error) ([]*simtime.Clock, error) {
	cost := cfg.Cost
	if n < 1 {
		return nil, fmt.Errorf("mpi: world size %d < 1", n)
	}
	if err := cost.Validate(); err != nil {
		return nil, err
	}
	for i, s := range cfg.Speeds {
		if s < 0 {
			return nil, fmt.Errorf("mpi: negative speed factor %g for rank %d", s, i)
		}
	}
	w := &World{
		n:            n,
		cost:         cost,
		config:       cfg,
		states:       make([]rankState, n),
		recvSrc:      make([]int, n),
		recvTag:      make([]int, n),
		recvDeadline: make([]float64, n),
		inbox:        make([][]message, n),
		collOf:       make([]*collective, n),
		active:       -1,
		crashAt:      make([]float64, n),
		degradeAt:    make([]float64, n),
		degradeSlow:  make([]float64, n),
		crashed:      make([]bool, n),
		crashTime:    make([]float64, n),
	}
	for i := 0; i < n; i++ {
		w.recvDeadline[i] = math.Inf(1)
		w.crashAt[i] = math.Inf(1)
		w.degradeAt[i] = math.Inf(1)
		w.degradeSlow[i] = 1
		w.crashTime[i] = math.Inf(1)
	}
	for _, f := range cfg.Faults {
		if f.Rank < 0 || f.Rank >= n {
			return nil, fmt.Errorf("mpi: fault targets invalid rank %d (world size %d)", f.Rank, n)
		}
		if f.At < 0 || math.IsNaN(f.At) {
			return nil, fmt.Errorf("mpi: fault for rank %d has invalid time %g", f.Rank, f.At)
		}
		switch f.Kind {
		case FaultCrash:
			if !math.IsInf(w.crashAt[f.Rank], 1) {
				return nil, fmt.Errorf("mpi: rank %d has more than one scheduled crash", f.Rank)
			}
			w.crashAt[f.Rank] = f.At
		case FaultDegrade:
			if f.Slow <= 0 {
				return nil, fmt.Errorf("mpi: degrade for rank %d needs Slow > 0, got %g", f.Rank, f.Slow)
			}
			if !math.IsInf(w.degradeAt[f.Rank], 1) {
				return nil, fmt.Errorf("mpi: rank %d has more than one scheduled degrade", f.Rank)
			}
			w.degradeAt[f.Rank] = f.At
			w.degradeSlow[f.Rank] = f.Slow
		default:
			return nil, fmt.Errorf("mpi: unknown fault kind %d for rank %d", int(f.Kind), f.Rank)
		}
	}
	w.cond = sync.NewCond(&w.mu)
	clocks := make([]*simtime.Clock, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		r := &Rank{id: i, world: w, clock: simtime.NewClock(), traceBatch: -1}
		if cfg.Observer != nil {
			r.clock.SetObserver(cfg.Observer(i))
		}
		clocks[i] = r.clock
		w.ranks = append(w.ranks, r)
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					switch rec.(type) {
					case abortPanic, crashPanic:
						// Aborts carry their message in the world; a
						// crash is a simulated fault, not a Go error.
					default:
						w.mu.Lock()
						if w.firstErr == nil {
							w.firstErr = fmt.Errorf("mpi: rank %d panicked: %v", r.id, rec)
						}
						w.mu.Unlock()
					}
				}
				w.finishRank(r.id)
			}()
			r.waitActiveInitial()
			if err := body(r); err != nil {
				w.mu.Lock()
				if w.firstErr == nil {
					w.firstErr = fmt.Errorf("mpi: rank %d: %w", r.id, err)
				}
				w.mu.Unlock()
			}
		}(w.ranks[i])
	}
	// Kick the scheduler once every goroutine has parked as ready.
	w.mu.Lock()
	for w.readyCountLocked() < n {
		w.cond.Wait()
	}
	w.scheduleLocked()
	w.mu.Unlock()
	wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.firstErr != nil {
		return clocks, w.firstErr
	}
	if w.aborted {
		return clocks, fmt.Errorf("mpi: %s", w.abortMsg)
	}
	return clocks, nil
}

func (w *World) readyCountLocked() int {
	c := 0
	for _, s := range w.states {
		if s == stateReady {
			c++
		}
	}
	return c
}

// waitActiveInitial parks the rank as ready and waits for its first grant.
func (r *Rank) waitActiveInitial() {
	w := r.world
	w.mu.Lock()
	w.states[r.id] = stateReady
	w.cond.Broadcast() // let Run see that we parked
	for w.active != r.id && !w.aborted {
		w.cond.Wait()
	}
	if w.aborted {
		w.mu.Unlock()
		panic(abortPanic{w.abortMsg})
	}
	w.states[r.id] = stateRunning
	w.mu.Unlock()
}

// finishRank marks the rank done and hands the token onward.
func (w *World) finishRank(id int) {
	w.mu.Lock()
	w.states[id] = stateDone
	w.doneCount++
	if w.active == id {
		w.active = -1
		w.scheduleLocked()
	}
	w.mu.Unlock()
}

// scheduleLocked picks the eligible rank with the smallest virtual time and
// grants it the token. Caller holds w.mu and has already parked itself.
func (w *World) scheduleLocked() {
	if w.aborted {
		w.cond.Broadcast()
		return
	}
	bestRank := -1
	bestTime := math.Inf(1)
	for i := 0; i < w.n; i++ {
		var t float64
		switch w.states[i] {
		case stateReady:
			t = w.ranks[i].clock.Now()
		case stateBlockedRecv:
			t = math.Inf(1)
			if m, ok := w.earliestMatchLocked(i); ok {
				t = math.Max(w.ranks[i].clock.Now(), m.arrival)
			}
			// A receive with a deadline is always eligible: it wakes at
			// the earlier of the match and the timeout.
			if dl := w.recvDeadline[i]; dl < t {
				t = math.Max(w.ranks[i].clock.Now(), dl)
			}
			if math.IsInf(t, 1) {
				continue
			}
		default:
			continue
		}
		if t < bestTime || (t == bestTime && i < bestRank) {
			bestTime = t
			bestRank = i
		}
	}
	if bestRank < 0 {
		if w.doneCount == w.n {
			return // clean finish
		}
		if w.firstErr != nil {
			// A rank died with an error; release everyone else.
			w.abortLocked(fmt.Sprintf("aborted after error: %v", w.firstErr))
			return
		}
		// A stall with dead ranks is not a protocol deadlock: name the
		// failure so callers see WHY their peers never answered.
		if dump := w.crashDumpLocked(); dump != "" {
			w.abortLocked("unrecovered rank failure (" + dump + "): " + w.stateDumpLocked())
			return
		}
		w.abortLocked("deadlock: " + w.stateDumpLocked())
		return
	}
	w.active = bestRank
	w.cond.Broadcast()
}

func (w *World) abortLocked(msg string) {
	w.aborted = true
	w.abortMsg = msg
	w.cond.Broadcast()
}

// crashDumpLocked lists crashed ranks, or "" when none crashed.
func (w *World) crashDumpLocked() string {
	var b strings.Builder
	for i := 0; i < w.n; i++ {
		if w.crashed[i] {
			if b.Len() > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "rank %d crashed at t=%.6f", i, w.crashTime[i])
		}
	}
	return b.String()
}

func (w *World) stateDumpLocked() string {
	var b strings.Builder
	for i := 0; i < w.n; i++ {
		fmt.Fprintf(&b, "rank %d %s t=%.3f", i, w.states[i], w.ranks[i].clock.Now())
		if w.states[i] == stateBlockedRecv {
			fmt.Fprintf(&b, " (waiting src=%d tag=%d, %d queued)",
				w.recvSrc[i], w.recvTag[i], len(w.inbox[i]))
		}
		b.WriteString("; ")
	}
	return b.String()
}

// earliestMatchLocked finds the queued message for rank i's pending receive
// with the smallest (arrival, seq).
func (w *World) earliestMatchLocked(i int) (message, bool) {
	src, tag := w.recvSrc[i], w.recvTag[i]
	best := -1
	for k, m := range w.inbox[i] {
		if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
			if best < 0 || m.arrival < w.inbox[i][best].arrival ||
				(m.arrival == w.inbox[i][best].arrival && m.seq < w.inbox[i][best].seq) {
				best = k
			}
		}
	}
	if best < 0 {
		return message{}, false
	}
	return w.inbox[i][best], true
}

func (w *World) takeMessageLocked(i int, m message) {
	q := w.inbox[i]
	for k := range q {
		if q[k].seq == m.seq {
			w.inbox[i] = append(q[:k], q[k+1:]...)
			return
		}
	}
	panic("mpi: message vanished from inbox")
}

// block parks the calling (active) rank in the given state, runs the
// scheduler, and returns when the rank is granted the token again.
// Caller holds w.mu.
func (r *Rank) blockLocked(s rankState) {
	w := r.world
	w.states[r.id] = s
	w.active = -1
	w.scheduleLocked()
	for w.active != r.id && !w.aborted {
		w.cond.Wait()
	}
	if w.aborted {
		w.mu.Unlock()
		panic(abortPanic{w.abortMsg})
	}
	w.states[r.id] = stateRunning
}

// maybeCrash fires this rank's scheduled crash if its clock has reached
// the fault time. Called at the entry of every MPI operation, so a crash
// always happens at an operation boundary while the rank holds the
// scheduler token — which keeps the failure history deterministic. A
// crashing rank completes any collective it strands (the survivors don't
// wait for the dead) and unwinds its goroutine via crashPanic.
func (r *Rank) maybeCrash() {
	w := r.world
	if r.clock.Now() < w.crashAt[r.id] {
		return
	}
	now := r.clock.Now()
	w.mu.Lock()
	if w.crashed[r.id] { // already unwinding
		w.mu.Unlock()
		panic(crashPanic{r.id})
	}
	w.crashed[r.id] = true
	w.crashTime[r.id] = now
	w.maybeCompleteCollectiveLocked()
	w.mu.Unlock()
	if w.config.OnFault != nil {
		w.config.OnFault(r.id, FaultCrash, now)
	}
	panic(crashPanic{r.id})
}

// liveCountLocked counts ranks that have not crashed.
func (w *World) liveCountLocked() int {
	live := w.n
	for _, c := range w.crashed {
		if c {
			live--
		}
	}
	return live
}

// maybeCompleteCollectiveLocked finishes an in-progress collective when
// every live rank has already joined — the path a crash takes so survivors
// are not stranded waiting for the dead.
func (w *World) maybeCompleteCollectiveLocked() {
	if c := w.coll; c != nil && c.count >= w.liveCountLocked() {
		w.completeCollectiveLocked(c)
	}
}

// completeCollectiveLocked computes the release time over LIVE participants
// and readies every rank parked in c.
func (w *World) completeCollectiveLocked(c *collective) {
	maxClock := 0.0
	for i, rk := range w.ranks {
		if w.crashed[i] {
			continue
		}
		if t := rk.clock.Now(); t > maxClock {
			maxClock = t
		}
	}
	c.releaseAt = c.releaseFn(c.datas, maxClock)
	c.done = true
	w.coll = nil
	for i := 0; i < w.n; i++ {
		if w.states[i] == stateBlockedColl && w.collOf[i] == c {
			w.states[i] = stateReady
		}
	}
	w.emitCollectiveFlowsLocked(c)
}

// emitCollectiveFlowsLocked reports the causal edges of one completed
// collective: each participant's entry flows INTO the fold site (the
// last-arriving live rank, ties to the lowest id — the rank whose entry
// clock determined the release), and the fold site flows back OUT to each
// participant's resume point at releaseAt. Caller holds w.mu; the OnFlow
// callback therefore must not call back into mpi. Emission never touches
// any clock.
func (w *World) emitCollectiveFlowsLocked(c *collective) {
	onFlow := w.config.OnFlow
	if onFlow == nil {
		return
	}
	releaser := -1
	for i := 0; i < w.n; i++ {
		if !c.joined[i] || w.crashed[i] {
			continue
		}
		if releaser < 0 || c.entries[i] > c.entries[releaser] {
			releaser = i
		}
	}
	if releaser < 0 {
		return
	}
	for i := 0; i < w.n; i++ {
		if !c.joined[i] || w.crashed[i] || i == releaser {
			continue
		}
		w.seq++
		onFlow(FlowEvent{
			Kind:   FlowContrib,
			Op:     c.op,
			ID:     w.seq,
			Batch:  c.batches[i],
			Src:    i,
			Dst:    releaser,
			Bytes:  len(c.datas[i]),
			SendAt: c.entries[i],
			RecvAt: c.releaseAt,
		})
		w.seq++
		onFlow(FlowEvent{
			Kind:   FlowRelease,
			Op:     c.op,
			ID:     w.seq,
			Batch:  c.batches[releaser],
			Src:    releaser,
			Dst:    i,
			Bytes:  0,
			SendAt: c.entries[releaser],
			RecvAt: c.releaseAt,
		})
	}
}

// Failed reports whether the given rank has crashed. This is the simulated
// failure detector's ground truth: detection protocols use timeouts to
// decide WHEN to ask, but the answer itself is never wrong.
func (r *Rank) Failed(rank int) bool {
	w := r.world
	w.mu.Lock()
	defer w.mu.Unlock()
	return rank >= 0 && rank < w.n && w.crashed[rank]
}

// Live returns the ids of all ranks that have not crashed, ascending.
func (r *Rank) Live() []int {
	w := r.world
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]int, 0, w.n)
	for i := 0; i < w.n; i++ {
		if !w.crashed[i] {
			out = append(out, i)
		}
	}
	return out
}

// CrashTime returns when the given rank crashed, or +Inf if it is alive.
func (r *Rank) CrashTime(rank int) float64 {
	w := r.world
	w.mu.Lock()
	defer w.mu.Unlock()
	if rank < 0 || rank >= w.n || !w.crashed[rank] {
		return math.Inf(1)
	}
	return w.crashTime[rank]
}

// ID returns the rank number (0-based).
func (r *Rank) ID() int { return r.id }

// Metrics exposes the world's telemetry registry (nil when the run is not
// instrumented; the registry's instruments are nil-safe, so callers chain
// r.Metrics().Counter(...).Inc() unconditionally).
func (r *Rank) Metrics() *metrics.Registry { return r.world.config.Metrics }

// SetTraceBatch sets the rank's query-batch trace context (-1 clears it).
// Subsequent sends and collective entries are stamped with it; delivery of
// a stamped envelope propagates the context to the receiver. Purely
// observational: never advances any clock.
func (r *Rank) SetTraceBatch(batch int) { r.traceBatch = batch }

// TraceBatch returns the rank's current query-batch trace context (-1 =
// none) — either set locally or adopted from the last stamped delivery.
func (r *Rank) TraceBatch() int { return r.traceBatch }

// flowOp names a message tag for flow edges: protocol tags keep their
// number, the shuffle and tree-collective tag spaces collapse.
func flowOp(tag int) string {
	if tag >= ShuffleTagBase {
		return "shuffle"
	}
	if tag >= CollTagBase {
		return "coll"
	}
	return fmt.Sprintf("tag%02d", tag)
}

// deliverFlow adopts the envelope's trace context and reports the causal
// edge for one delivered message. Called from the receiver's goroutine
// after the delivery clock charges, outside the world lock.
//
// Adoption is monotone: a delivered envelope only advances the receiver's
// batch context, never rewinds it. Batch ids are assigned in admission
// order, so in a stream a late-arriving batch-N message (a straggler
// worker's results, a retransmitted selection) delivered after the rank
// moved on to batch N+1 must not drag the context backward — that would
// stamp every subsequent send from this rank with the stale id. The flow
// EDGE below still reports the envelope's own batch, so per-batch flow
// splits stay exact.
func (r *Rank) deliverFlow(m message) {
	if m.batch > r.traceBatch {
		r.traceBatch = m.batch
	}
	onFlow := r.world.config.OnFlow
	if onFlow == nil {
		return
	}
	onFlow(FlowEvent{
		Kind:   FlowMsg,
		Op:     flowOp(m.tag),
		ID:     m.seq,
		Batch:  m.batch,
		Src:    m.src,
		Dst:    r.id,
		Bytes:  len(m.data),
		SendAt: m.sendAt,
		RecvAt: r.clock.Now(),
	})
}

// tagSeries maps a message tag to its metric series stem. Protocol tags
// are small engine constants and keep their number; the collective-I/O
// shuffle space collapses into one series (internal/mpiio does its own
// finer accounting), and the tree-collective space into another (the tree
// code books per-level series itself).
func tagSeries(tag int) string {
	if tag >= ShuffleTagBase {
		return "mpi.send.shuffle"
	}
	if tag >= CollTagBase {
		return "mpi.send.collective"
	}
	return fmt.Sprintf("mpi.send.tag%02d", tag)
}

// recordSend books one outgoing message in the telemetry registry.
func (r *Rank) recordSend(tag int, size int64) {
	reg := r.world.config.Metrics
	if reg == nil {
		return
	}
	series := tagSeries(tag)
	reg.Counter(series+".msgs", r.id).Inc()
	reg.Counter(series+".bytes", r.id).Add(size)
	reg.Histogram("mpi.msg_bytes", r.id, metrics.SizeBuckets()).Observe(float64(size))
}

// Size returns the world size.
func (r *Rank) Size() int { return r.world.n }

// Clock exposes the rank's virtual clock.
func (r *Rank) Clock() *simtime.Clock { return r.clock }

// Cost exposes the world's cost model.
func (r *Rank) Cost() simtime.CostModel { return r.world.cost }

// SetPhase switches the phase bucket charged for subsequent time.
func (r *Rank) SetPhase(phase string) { r.clock.SetPhase(phase) }

// Advance charges d virtual seconds of local work.
func (r *Rank) Advance(d float64) {
	r.maybeCrash()
	r.clock.Advance(d)
}

// Yield hands the scheduler token to the rank with the smallest virtual
// clock (possibly this one again). Long compute/I-O loops that never block
// should yield between steps so that shared-resource accesses (storage
// channel pools) are issued in virtual-time order across ranks; without
// yields a rank would run its whole phase in one token hold and other
// ranks' earlier accesses would falsely queue behind its later ones.
func (r *Rank) Yield() {
	r.maybeCrash()
	w := r.world
	w.mu.Lock()
	r.blockLocked(stateReady)
	w.mu.Unlock()
}

// Compute charges work units at the model's search-unit cost, scaled by
// the rank's node-speed factor and any active degrade fault.
func (r *Rank) Compute(units int64) {
	r.maybeCrash()
	r.clock.Advance(float64(units) * r.world.cost.SearchUnitCost * r.effSpeed())
}

// effSpeed is the rank's current compute-cost factor: the configured node
// speed, multiplied by the degrade slowdown once its fault time passes.
func (r *Rank) effSpeed() float64 {
	w := r.world
	s := w.config.speed(r.id)
	if r.clock.Now() >= w.degradeAt[r.id] {
		if !r.degradeFired {
			r.degradeFired = true
			if w.config.OnFault != nil {
				w.config.OnFault(r.id, FaultDegrade, r.clock.Now())
			}
		}
		s *= w.degradeSlow[r.id]
	}
	return s
}

// Speed reports the rank's node-speed factor (1 = baseline).
func (r *Rank) Speed() float64 { return r.world.config.speed(r.id) }

// FormatCost charges the per-byte report-rendering cost for n bytes.
func (r *Rank) FormatCost(n int64) {
	r.clock.Advance(float64(n) * r.world.cost.FormatByteCost)
}

// MemCopy charges an in-memory copy of n bytes.
func (r *Rank) MemCopy(n int64) {
	r.clock.Advance(float64(n) / r.world.cost.MemCopyBandwidth)
}

// IO charges a storage access of n bytes against fs, including queueing
// behind other ranks' concurrent accesses.
func (r *Rank) IO(fs *vfs.FS, n int64) {
	r.maybeCrash()
	end := fs.Access(r.clock.Now(), n)
	r.clock.AdvanceTo(end)
}

// IOHandle is an in-flight asynchronous storage access created by StartIO
// and settled by Wait.
type IOHandle struct {
	start, end float64
	done       bool
}

// StartIO begins an asynchronous storage access: the operation books a
// storage channel from the rank's current virtual time — contention,
// queueing, and transient-fault backoff resolve exactly as for IO — but the
// rank's clock does not advance. The rank may keep computing (or start more
// accesses) and settle the bill with Wait, paying max(io, compute) instead
// of their sum. Deterministic: issue order follows the discrete-event
// schedule, so the booked completion time is reproducible.
func (r *Rank) StartIO(fs *vfs.FS, n int64) *IOHandle {
	r.maybeCrash()
	start := r.clock.Now()
	end := fs.Access(start, n)
	r.Metrics().Counter("mpi.async_io_started", r.id).Inc()
	return &IOHandle{start: start, end: end}
}

// Wait completes an asynchronous access: if the operation is still running,
// the clock advances to its completion time, charging the current phase;
// if it already finished while the rank was doing other work, Wait is free.
// The hidden/exposed split of every operation's duration is recorded as the
// overlap-effectiveness metrics mpi.async_io_hidden_s / _exposed_s.
// Waiting on a nil or already-settled handle is a no-op.
func (r *Rank) Wait(h *IOHandle) {
	r.maybeCrash()
	if h == nil || h.done {
		return
	}
	h.done = true
	hidden, exposed := simtime.OverlapSplit(h.start, h.end, r.clock.Now())
	r.clock.AdvanceTo(h.end)
	reg := r.Metrics()
	reg.Gauge("mpi.async_io_hidden_s", r.id).Add(hidden)
	reg.Gauge("mpi.async_io_exposed_s", r.id).Add(exposed)
}

// FaultsScheduled reports whether this world's configuration schedules any
// faults. Protocols use it to choose between tight blocking receives
// (exact timing) and crash-aware timeout loops (survivable, but each poll
// rounds the wait up to the next timeout boundary).
func (r *Rank) FaultsScheduled() bool { return len(r.world.config.Faults) > 0 }

// Send transmits data to dst with the given tag. It is buffered and does
// not block. The payload is NOT copied; callers must not mutate it after
// sending.
func (r *Rank) Send(dst, tag int, data []byte) {
	w := r.world
	if dst < 0 || dst >= w.n {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	r.maybeCrash()
	w.config.Comm.add(r.id, tag, int64(len(data)))
	r.recordSend(tag, int64(len(data)))
	r.clock.Advance(float64(len(data)) / w.cost.NetBandwidth)
	w.mu.Lock()
	if w.crashed[dst] {
		// The destination is dead: the sender still pays its NIC
		// occupancy (charged above), but the bytes land nowhere.
		w.mu.Unlock()
		return
	}
	w.seq++
	w.inbox[dst] = append(w.inbox[dst], message{
		src:     r.id,
		tag:     tag,
		data:    data,
		arrival: r.clock.Now() + w.cost.NetLatency,
		seq:     w.seq,
		batch:   r.traceBatch,
		sendAt:  r.clock.Now(),
	})
	w.mu.Unlock()
}

// Recv blocks until a message matching (src, tag) arrives and returns its
// payload, source, and tag. Use AnySource / AnyTag as wildcards.
func (r *Rank) Recv(src, tag int) (data []byte, from, gotTag int) {
	r.maybeCrash()
	w := r.world
	w.mu.Lock()
	// Install the match filter BEFORE the first queue scan —
	// earliestMatchLocked reads it, and a stale filter from a previous
	// Recv could mis-consume another sender's message.
	w.recvSrc[r.id], w.recvTag[r.id] = src, tag
	w.recvDeadline[r.id] = math.Inf(1)
	for {
		if m, ok := w.earliestMatchLocked(r.id); ok {
			w.takeMessageLocked(r.id, m)
			w.mu.Unlock()
			r.clock.AdvanceTo(m.arrival)
			r.clock.Advance(float64(len(m.data)) / w.cost.NetBandwidth)
			r.deliverFlow(m)
			return m.data, m.src, m.tag
		}
		r.blockLocked(stateBlockedRecv)
		// Loop: a match is guaranteed present now.
	}
}

// RecvTimeout is Recv with a virtual-time deadline — the primitive failure
// detection is built from. It returns:
//
//   - (data, from, tag, nil) when a matching message can be delivered no
//     later than now+timeout;
//   - ErrRankFailed (wrapped, with the crash time) when src is a specific
//     rank that has crashed and no deliverable match is queued;
//   - ErrTimeout when the deadline passes first — the clock advances to
//     the deadline, so repeated polling makes forward progress.
//
// Determinism: the wake-up time is min(match delivery, deadline), resolved
// by the same earliest-event scheduler as everything else.
func (r *Rank) RecvTimeout(src, tag int, timeout float64) (data []byte, from, gotTag int, err error) {
	r.maybeCrash()
	w := r.world
	if timeout < 0 || math.IsNaN(timeout) {
		timeout = 0
	}
	entered := r.clock.Now()
	deadline := entered + timeout
	w.mu.Lock()
	w.recvSrc[r.id], w.recvTag[r.id] = src, tag
	w.recvDeadline[r.id] = deadline
	waited := false
	for {
		if m, ok := w.earliestMatchLocked(r.id); ok && math.Max(r.clock.Now(), m.arrival) <= deadline {
			w.takeMessageLocked(r.id, m)
			w.recvDeadline[r.id] = math.Inf(1)
			w.mu.Unlock()
			r.clock.AdvanceTo(m.arrival)
			r.clock.Advance(float64(len(m.data)) / w.cost.NetBandwidth)
			r.deliverFlow(m)
			return m.data, m.src, m.tag, nil
		}
		if src != AnySource && src >= 0 && src < w.n && w.crashed[src] {
			at := w.crashTime[src]
			w.recvDeadline[r.id] = math.Inf(1)
			w.mu.Unlock()
			r.clock.AdvanceTo(at) // no-op when the crash is in our past
			w.config.Metrics.Counter("mpi.recv_failed_peer", r.id).Inc()
			return nil, 0, 0, fmt.Errorf("mpi: recv from rank %d: %w (crashed at t=%.6f)", src, ErrRankFailed, at)
		}
		// Once the scheduler has woken us without a deliverable match,
		// the deadline was the earliest event: time out.
		if waited || r.clock.Now() >= deadline {
			w.recvDeadline[r.id] = math.Inf(1)
			w.mu.Unlock()
			r.clock.AdvanceTo(deadline)
			if reg := w.config.Metrics; reg != nil {
				reg.Counter("mpi.recv_timeouts", r.id).Inc()
				reg.Gauge("mpi.recv_timeout_wait_s", r.id).Add(deadline - entered)
			}
			return nil, 0, 0, ErrTimeout
		}
		waited = true
		r.blockLocked(stateBlockedRecv)
	}
}

// TryRecv delivers a matching message that has ALREADY arrived (arrival ≤
// the rank's current clock) without blocking or advancing time past the
// receive cost. It reports ok=false when nothing deliverable is queued.
func (r *Rank) TryRecv(src, tag int) (data []byte, from, gotTag int, ok bool) {
	r.maybeCrash()
	w := r.world
	w.mu.Lock()
	w.recvSrc[r.id], w.recvTag[r.id] = src, tag
	w.recvDeadline[r.id] = math.Inf(1)
	m, found := w.earliestMatchLocked(r.id)
	if !found || m.arrival > r.clock.Now() {
		w.mu.Unlock()
		return nil, 0, 0, false
	}
	w.takeMessageLocked(r.id, m)
	w.mu.Unlock()
	r.clock.Advance(float64(len(m.data)) / w.cost.NetBandwidth)
	r.deliverFlow(m)
	return m.data, m.src, m.tag, true
}

// logSteps returns ceil(log2(n)), the tree depth collective latencies use.
// A single rank (or none) needs no tree and pays no latency.
func logSteps(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(n)))
}

// runCollective synchronizes all LIVE ranks; release receives the gathered
// per-rank payloads and the maximum entry clock, and returns the common
// release time. Every rank returns the shared data slice. Crashed ranks
// are not waited for — their datas entries stay nil (consumers of gathered
// payloads must tolerate that under fault schedules) — and a participant
// that crashes at the door completes the collective for the survivors.
func (r *Rank) runCollective(op string, data []byte, release func(datas [][]byte, maxClock float64) float64) [][]byte {
	r.maybeCrash()
	w := r.world
	w.config.Comm.addCollective(r.id, int64(len(data)))
	if reg := w.config.Metrics; reg != nil {
		reg.Counter("mpi.collective."+op, r.id).Inc()
		// Per-op byte series alongside the undifferentiated total, so
		// experiments can attribute collective volume to gather vs bcast
		// vs reduce individually.
		reg.Counter("mpi.collective."+op+".bytes", r.id).Add(int64(len(data)))
		reg.Counter("mpi.collective.bytes", r.id).Add(int64(len(data)))
	}
	w.mu.Lock()
	c := w.coll
	if c == nil {
		c = &collective{
			op:        op,
			datas:     make([][]byte, w.n),
			releaseFn: release,
			entries:   make([]float64, w.n),
			batches:   make([]int, w.n),
			joined:    make([]bool, w.n),
		}
		w.coll = c
	}
	if c.op != op {
		w.mu.Unlock()
		panic(fmt.Sprintf("mpi: rank %d entered collective %q while %q in progress", r.id, op, c.op))
	}
	c.datas[r.id] = data
	c.entries[r.id] = r.clock.Now()
	c.batches[r.id] = r.traceBatch
	c.joined[r.id] = true
	c.count++
	w.collOf[r.id] = c
	if c.count < w.liveCountLocked() {
		r.blockLocked(stateBlockedColl)
		w.mu.Unlock()
		r.clock.AdvanceTo(c.releaseAt)
		return c.datas
	}
	// Last live participant: compute release time and free everyone.
	w.completeCollectiveLocked(c)
	w.mu.Unlock()
	r.clock.AdvanceTo(c.releaseAt)
	return c.datas
}

// Barrier synchronizes all ranks; everyone leaves at the latest entry time
// plus a tree-latency term.
func (r *Rank) Barrier() {
	w := r.world
	r.runCollective("barrier", nil, func(_ [][]byte, maxClock float64) float64 {
		return maxClock + w.cost.NetLatency*logSteps(w.n)
	})
}

// Bcast distributes root's payload to every rank and returns it.
func (r *Rank) Bcast(root int, data []byte) []byte {
	w := r.world
	var payload []byte
	if r.id == root {
		payload = data
	}
	datas := r.runCollective("bcast", payload, func(datas [][]byte, maxClock float64) float64 {
		size := float64(len(datas[root]))
		return maxClock + w.cost.NetLatency*logSteps(w.n) + size/w.cost.NetBandwidth
	})
	return datas[root]
}

// Gather collects every rank's payload at root. Root receives the slice
// indexed by rank; other ranks receive nil. The root link is modelled as
// the bottleneck: completion pays the total inbound volume.
func (r *Rank) Gather(root int, data []byte) [][]byte {
	w := r.world
	datas := r.runCollective("gather", data, func(datas [][]byte, maxClock float64) float64 {
		var total int64
		for i, d := range datas {
			if i != root {
				total += int64(len(d))
			}
		}
		return maxClock + w.cost.NetLatency*logSteps(w.n) + float64(total)/w.cost.NetBandwidth
	})
	if r.id == root {
		return datas
	}
	return nil
}

// AllGather collects every rank's payload everywhere.
func (r *Rank) AllGather(data []byte) [][]byte {
	w := r.world
	return r.runCollective("allgather", data, func(datas [][]byte, maxClock float64) float64 {
		var total int64
		for _, d := range datas {
			total += int64(len(d))
		}
		return maxClock + w.cost.NetLatency*logSteps(w.n) + float64(total)/w.cost.NetBandwidth
	})
}

// ReduceMax computes the element-wise maximum of per-rank int64 vectors at
// every rank (a convenience for threshold broadcasting in the engines).
//
// Fault-free worlds run it as a k-ary TreeReduce to rank 0 followed by a
// Bcast — O(N) payloads on the wire instead of the O(N²) an AllGather
// moves. Worlds with scheduled faults keep the AllGather formulation: the
// flat collective completes over the survivors (crashed ranks contribute
// nothing), which is the crash semantics callers rely on.
func (r *Rank) ReduceMax(values []int64) []int64 {
	buf := make([]byte, 8*len(values))
	for i, v := range values {
		putInt64(buf[8*i:], v)
	}
	if !r.FaultsScheduled() {
		members := make([]int, r.Size())
		for i := range members {
			members[i] = i
		}
		combined, _, err := r.TreeReduce(0, DefaultTreeFanout, members, buf, maxCombine)
		if err != nil {
			panic("mpi: ReduceMax tree reduce failed: " + err.Error())
		}
		if r.id != 0 {
			combined = nil
		}
		buf = r.Bcast(0, combined)
		out := make([]int64, len(values))
		if len(buf) != 8*len(values) {
			panic("mpi: ReduceMax length mismatch across ranks")
		}
		for i := range out {
			out[i] = getInt64(buf[8*i:])
		}
		return out
	}
	datas := r.AllGather(buf)
	out := make([]int64, len(values))
	first := true
	for _, d := range datas {
		if d == nil {
			continue // crashed rank: no contribution
		}
		if len(d) != len(buf) {
			panic("mpi: ReduceMax length mismatch across ranks")
		}
		for i := range out {
			v := getInt64(d[8*i:])
			if first || v > out[i] {
				out[i] = v
			}
		}
		first = false
	}
	return out
}

// maxCombine is the element-wise int64 maximum over two equal-length
// encoded vectors — the associative combiner ReduceMax feeds TreeReduce.
func maxCombine(a, b []byte) []byte {
	if len(a) != len(b) {
		panic("mpi: ReduceMax length mismatch across ranks")
	}
	out := make([]byte, len(a))
	for i := 0; i+8 <= len(a); i += 8 {
		va, vb := getInt64(a[i:]), getInt64(b[i:])
		if vb > va {
			va = vb
		}
		putInt64(out[i:], va)
	}
	return out
}

func putInt64(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getInt64(b []byte) int64 {
	var v int64
	for i := 0; i < 8; i++ {
		v |= int64(b[i]) << (8 * i)
	}
	return v
}

// PendingMessages reports how many undelivered messages each rank has —
// a post-run hygiene check used by tests.
func (w *World) PendingMessages() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]int, w.n)
	for i := range w.inbox {
		out[i] = len(w.inbox[i])
	}
	return out
}

// SortRanksByClock returns rank ids ordered by final virtual time — a
// reporting helper.
func SortRanksByClock(clocks []*simtime.Clock) []int {
	ids := make([]int, len(clocks))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		return clocks[ids[a]].Now() < clocks[ids[b]].Now()
	})
	return ids
}
