// Package mpi simulates an MPI runtime for the parallel BLAST engines:
// ranks are goroutines, messages are real byte payloads, and time is
// virtual, driven by a simtime.CostModel.
//
// # Execution model
//
// The world runs as a sequential discrete-event simulation: at any moment
// exactly one rank executes (it holds the scheduler token). A rank runs
// until it blocks — on a receive with no matching message, or inside a
// collective — and then the scheduler hands the token to the eligible rank
// with the smallest virtual time. This rule makes runs fully deterministic
// (identical clocks, identical message orders) while still exercising the
// real concurrent message-passing structure of the engines:
//
//   - a rank that is ready to run is eligible at its own clock;
//   - a rank blocked on a receive is eligible at max(clock, earliest
//     matching arrival), and ineligible while no match is queued;
//   - a rank inside a collective is ineligible until the last participant
//     arrives, which releases everyone at the collective's completion time.
//
// Because the scheduler always advances the globally earliest event, any
// message sent in the future carries an arrival no earlier than the event
// being executed, so receive choices (including AnySource) are exact.
//
// # Cost model
//
// Send charges the sender size/bandwidth (its NIC is busy), and the message
// arrives one latency later. Receive waits for arrival, then charges the
// receiver size/bandwidth. A master that handles per-item request/reply
// traffic therefore serializes on its own clock — the exact phenomenon the
// paper's result-merging analysis is about.
package mpi

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"parblast/internal/simtime"
	"parblast/internal/vfs"
)

// AnySource matches a message from any rank; AnyTag matches any tag.
const (
	AnySource = -1
	AnyTag    = -1
)

type rankState int

const (
	stateReady rankState = iota
	stateRunning
	stateBlockedRecv
	stateBlockedColl
	stateDone
)

func (s rankState) String() string {
	switch s {
	case stateReady:
		return "ready"
	case stateRunning:
		return "running"
	case stateBlockedRecv:
		return "blocked-recv"
	case stateBlockedColl:
		return "blocked-collective"
	case stateDone:
		return "done"
	}
	return "?"
}

type message struct {
	src, tag int
	data     []byte
	arrival  float64
	seq      int64
}

type collective struct {
	op      string
	datas   [][]byte
	count   int
	release float64
	done    bool
}

// World is the shared state of one simulated MPI job.
type World struct {
	n      int
	cost   simtime.CostModel
	config Config

	mu   sync.Mutex
	cond *sync.Cond

	ranks     []*Rank
	states    []rankState
	recvSrc   []int // per rank, when blocked on recv
	recvTag   []int
	inbox     [][]message
	coll      *collective
	collOf    []*collective
	seq       int64
	active    int
	doneCount int
	aborted   bool
	abortMsg  string
	firstErr  error
}

// Rank is one simulated MPI process.
type Rank struct {
	id    int
	world *World
	clock *simtime.Clock
}

type abortPanic struct{ msg string }

// Config bundles a cost model with optional per-rank heterogeneity.
type Config struct {
	Cost simtime.CostModel
	// Speeds scales each rank's compute cost: 1 is the baseline node,
	// 2 runs compute twice as slowly. nil or missing entries mean 1.
	// Models the heterogeneous clusters the paper's §5 load-balancing
	// discussion targets.
	Speeds []float64
	// Observer, when non-nil, returns a per-rank phase-span callback that
	// is installed on each rank's clock (see internal/trace).
	Observer func(rank int) func(phase string, from, to float64)
	// Comm, when non-nil, accumulates per-rank communication volume —
	// the metric behind the paper's §3.2 message-volume-reduction claim.
	Comm *CommStats
}

// ShuffleTagBase splits the tag space: tags at or above it belong to the
// collective-I/O data shuffle (internal/mpiio), below it to the engines'
// result-merging protocols. The split matters for measurement: the paper's
// §3.2 claim is about PROTOCOL volume (what flows through the master during
// merging), while shuffle volume is §3.3's deliberate network-for-disk
// trade.
const ShuffleTagBase = 1 << 20

// CommStats tallies communication per rank, split into protocol traffic
// and collective-I/O shuffle traffic. Safe for concurrent use.
type CommStats struct {
	mu       sync.Mutex
	protocol []int64
	shuffle  []int64
	messages []int64
}

// NewCommStats sizes a collector for n ranks.
func NewCommStats(n int) *CommStats {
	return &CommStats{
		protocol: make([]int64, n),
		shuffle:  make([]int64, n),
		messages: make([]int64, n),
	}
}

func (c *CommStats) add(rank, tag int, bytes int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if rank < len(c.protocol) {
		if tag >= ShuffleTagBase {
			c.shuffle[rank] += bytes
		} else {
			c.protocol[rank] += bytes
		}
		c.messages[rank]++
	}
	c.mu.Unlock()
}

// Rank returns one rank's sent protocol bytes, shuffle bytes, and message
// count.
func (c *CommStats) Rank(rank int) (protocol, shuffle, messages int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rank >= len(c.protocol) {
		return 0, 0, 0
	}
	return c.protocol[rank], c.shuffle[rank], c.messages[rank]
}

// Totals sums across ranks.
func (c *CommStats) Totals() (protocol, shuffle, messages int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.protocol {
		protocol += c.protocol[i]
		shuffle += c.shuffle[i]
		messages += c.messages[i]
	}
	return protocol, shuffle, messages
}

func (c Config) speed(rank int) float64 {
	if rank < len(c.Speeds) && c.Speeds[rank] > 0 {
		return c.Speeds[rank]
	}
	return 1
}

// Run executes body on n ranks and returns their clocks. It returns an
// error if any body returns an error, panics, or the job deadlocks.
func Run(n int, cost simtime.CostModel, body func(*Rank) error) ([]*simtime.Clock, error) {
	return RunConfig(n, Config{Cost: cost}, body)
}

// RunConfig is Run with per-rank heterogeneity.
func RunConfig(n int, cfg Config, body func(*Rank) error) ([]*simtime.Clock, error) {
	cost := cfg.Cost
	if n < 1 {
		return nil, fmt.Errorf("mpi: world size %d < 1", n)
	}
	if err := cost.Validate(); err != nil {
		return nil, err
	}
	for i, s := range cfg.Speeds {
		if s < 0 {
			return nil, fmt.Errorf("mpi: negative speed factor %g for rank %d", s, i)
		}
	}
	w := &World{
		n:       n,
		cost:    cost,
		config:  cfg,
		states:  make([]rankState, n),
		recvSrc: make([]int, n),
		recvTag: make([]int, n),
		inbox:   make([][]message, n),
		collOf:  make([]*collective, n),
		active:  -1,
	}
	w.cond = sync.NewCond(&w.mu)
	clocks := make([]*simtime.Clock, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		r := &Rank{id: i, world: w, clock: simtime.NewClock()}
		if cfg.Observer != nil {
			r.clock.SetObserver(cfg.Observer(i))
		}
		clocks[i] = r.clock
		w.ranks = append(w.ranks, r)
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if _, isAbort := rec.(abortPanic); !isAbort {
						w.mu.Lock()
						if w.firstErr == nil {
							w.firstErr = fmt.Errorf("mpi: rank %d panicked: %v", r.id, rec)
						}
						w.mu.Unlock()
					}
				}
				w.finishRank(r.id)
			}()
			r.waitActiveInitial()
			if err := body(r); err != nil {
				w.mu.Lock()
				if w.firstErr == nil {
					w.firstErr = fmt.Errorf("mpi: rank %d: %w", r.id, err)
				}
				w.mu.Unlock()
			}
		}(w.ranks[i])
	}
	// Kick the scheduler once every goroutine has parked as ready.
	w.mu.Lock()
	for w.readyCountLocked() < n {
		w.cond.Wait()
	}
	w.scheduleLocked()
	w.mu.Unlock()
	wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.firstErr != nil {
		return clocks, w.firstErr
	}
	if w.aborted {
		return clocks, fmt.Errorf("mpi: %s", w.abortMsg)
	}
	return clocks, nil
}

func (w *World) readyCountLocked() int {
	c := 0
	for _, s := range w.states {
		if s == stateReady {
			c++
		}
	}
	return c
}

// waitActiveInitial parks the rank as ready and waits for its first grant.
func (r *Rank) waitActiveInitial() {
	w := r.world
	w.mu.Lock()
	w.states[r.id] = stateReady
	w.cond.Broadcast() // let Run see that we parked
	for w.active != r.id && !w.aborted {
		w.cond.Wait()
	}
	if w.aborted {
		w.mu.Unlock()
		panic(abortPanic{w.abortMsg})
	}
	w.states[r.id] = stateRunning
	w.mu.Unlock()
}

// finishRank marks the rank done and hands the token onward.
func (w *World) finishRank(id int) {
	w.mu.Lock()
	w.states[id] = stateDone
	w.doneCount++
	if w.active == id {
		w.active = -1
		w.scheduleLocked()
	}
	w.mu.Unlock()
}

// scheduleLocked picks the eligible rank with the smallest virtual time and
// grants it the token. Caller holds w.mu and has already parked itself.
func (w *World) scheduleLocked() {
	if w.aborted {
		w.cond.Broadcast()
		return
	}
	bestRank := -1
	bestTime := math.Inf(1)
	for i := 0; i < w.n; i++ {
		var t float64
		switch w.states[i] {
		case stateReady:
			t = w.ranks[i].clock.Now()
		case stateBlockedRecv:
			m, ok := w.earliestMatchLocked(i)
			if !ok {
				continue
			}
			t = math.Max(w.ranks[i].clock.Now(), m.arrival)
		default:
			continue
		}
		if t < bestTime || (t == bestTime && i < bestRank) {
			bestTime = t
			bestRank = i
		}
	}
	if bestRank < 0 {
		if w.doneCount == w.n {
			return // clean finish
		}
		if w.firstErr != nil {
			// A rank died with an error; release everyone else.
			w.abortLocked(fmt.Sprintf("aborted after error: %v", w.firstErr))
			return
		}
		w.abortLocked("deadlock: " + w.stateDumpLocked())
		return
	}
	w.active = bestRank
	w.cond.Broadcast()
}

func (w *World) abortLocked(msg string) {
	w.aborted = true
	w.abortMsg = msg
	w.cond.Broadcast()
}

func (w *World) stateDumpLocked() string {
	var b strings.Builder
	for i := 0; i < w.n; i++ {
		fmt.Fprintf(&b, "rank %d %s t=%.3f", i, w.states[i], w.ranks[i].clock.Now())
		if w.states[i] == stateBlockedRecv {
			fmt.Fprintf(&b, " (waiting src=%d tag=%d, %d queued)",
				w.recvSrc[i], w.recvTag[i], len(w.inbox[i]))
		}
		b.WriteString("; ")
	}
	return b.String()
}

// earliestMatchLocked finds the queued message for rank i's pending receive
// with the smallest (arrival, seq).
func (w *World) earliestMatchLocked(i int) (message, bool) {
	src, tag := w.recvSrc[i], w.recvTag[i]
	best := -1
	for k, m := range w.inbox[i] {
		if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
			if best < 0 || m.arrival < w.inbox[i][best].arrival ||
				(m.arrival == w.inbox[i][best].arrival && m.seq < w.inbox[i][best].seq) {
				best = k
			}
		}
	}
	if best < 0 {
		return message{}, false
	}
	return w.inbox[i][best], true
}

func (w *World) takeMessageLocked(i int, m message) {
	q := w.inbox[i]
	for k := range q {
		if q[k].seq == m.seq {
			w.inbox[i] = append(q[:k], q[k+1:]...)
			return
		}
	}
	panic("mpi: message vanished from inbox")
}

// block parks the calling (active) rank in the given state, runs the
// scheduler, and returns when the rank is granted the token again.
// Caller holds w.mu.
func (r *Rank) blockLocked(s rankState) {
	w := r.world
	w.states[r.id] = s
	w.active = -1
	w.scheduleLocked()
	for w.active != r.id && !w.aborted {
		w.cond.Wait()
	}
	if w.aborted {
		w.mu.Unlock()
		panic(abortPanic{w.abortMsg})
	}
	w.states[r.id] = stateRunning
}

// ID returns the rank number (0-based).
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.world.n }

// Clock exposes the rank's virtual clock.
func (r *Rank) Clock() *simtime.Clock { return r.clock }

// Cost exposes the world's cost model.
func (r *Rank) Cost() simtime.CostModel { return r.world.cost }

// SetPhase switches the phase bucket charged for subsequent time.
func (r *Rank) SetPhase(phase string) { r.clock.SetPhase(phase) }

// Advance charges d virtual seconds of local work.
func (r *Rank) Advance(d float64) { r.clock.Advance(d) }

// Yield hands the scheduler token to the rank with the smallest virtual
// clock (possibly this one again). Long compute/I-O loops that never block
// should yield between steps so that shared-resource accesses (storage
// channel pools) are issued in virtual-time order across ranks; without
// yields a rank would run its whole phase in one token hold and other
// ranks' earlier accesses would falsely queue behind its later ones.
func (r *Rank) Yield() {
	w := r.world
	w.mu.Lock()
	r.blockLocked(stateReady)
	w.mu.Unlock()
}

// Compute charges work units at the model's search-unit cost, scaled by
// the rank's node-speed factor.
func (r *Rank) Compute(units int64) {
	r.clock.Advance(float64(units) * r.world.cost.SearchUnitCost * r.world.config.speed(r.id))
}

// Speed reports the rank's node-speed factor (1 = baseline).
func (r *Rank) Speed() float64 { return r.world.config.speed(r.id) }

// FormatCost charges the per-byte report-rendering cost for n bytes.
func (r *Rank) FormatCost(n int64) {
	r.clock.Advance(float64(n) * r.world.cost.FormatByteCost)
}

// MemCopy charges an in-memory copy of n bytes.
func (r *Rank) MemCopy(n int64) {
	r.clock.Advance(float64(n) / r.world.cost.MemCopyBandwidth)
}

// IO charges a storage access of n bytes against fs, including queueing
// behind other ranks' concurrent accesses.
func (r *Rank) IO(fs *vfs.FS, n int64) {
	end := fs.Access(r.clock.Now(), n)
	r.clock.AdvanceTo(end)
}

// Send transmits data to dst with the given tag. It is buffered and does
// not block. The payload is NOT copied; callers must not mutate it after
// sending.
func (r *Rank) Send(dst, tag int, data []byte) {
	w := r.world
	if dst < 0 || dst >= w.n {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	w.config.Comm.add(r.id, tag, int64(len(data)))
	r.clock.Advance(float64(len(data)) / w.cost.NetBandwidth)
	w.mu.Lock()
	w.seq++
	w.inbox[dst] = append(w.inbox[dst], message{
		src:     r.id,
		tag:     tag,
		data:    data,
		arrival: r.clock.Now() + w.cost.NetLatency,
		seq:     w.seq,
	})
	w.mu.Unlock()
}

// Recv blocks until a message matching (src, tag) arrives and returns its
// payload, source, and tag. Use AnySource / AnyTag as wildcards.
func (r *Rank) Recv(src, tag int) (data []byte, from, gotTag int) {
	w := r.world
	w.mu.Lock()
	// Install the match filter BEFORE the first queue scan —
	// earliestMatchLocked reads it, and a stale filter from a previous
	// Recv could mis-consume another sender's message.
	w.recvSrc[r.id], w.recvTag[r.id] = src, tag
	for {
		if m, ok := w.earliestMatchLocked(r.id); ok {
			w.takeMessageLocked(r.id, m)
			w.mu.Unlock()
			r.clock.AdvanceTo(m.arrival)
			r.clock.Advance(float64(len(m.data)) / w.cost.NetBandwidth)
			return m.data, m.src, m.tag
		}
		r.blockLocked(stateBlockedRecv)
		// Loop: a match is guaranteed present now.
	}
}

// logSteps returns ceil(log2(n)), the tree depth collective latencies use.
func logSteps(n int) float64 {
	if n <= 1 {
		return 1
	}
	return math.Ceil(math.Log2(float64(n)))
}

// runCollective synchronizes all ranks; compute receives the gathered
// per-rank payloads and the maximum entry clock, and returns the common
// release time. Every rank returns the shared data slice.
func (r *Rank) runCollective(op string, data []byte, release func(datas [][]byte, maxClock float64) float64) [][]byte {
	w := r.world
	w.config.Comm.add(r.id, 0, int64(len(data)))
	w.mu.Lock()
	c := w.coll
	if c == nil {
		c = &collective{op: op, datas: make([][]byte, w.n)}
		w.coll = c
	}
	if c.op != op {
		w.mu.Unlock()
		panic(fmt.Sprintf("mpi: rank %d entered collective %q while %q in progress", r.id, op, c.op))
	}
	c.datas[r.id] = data
	c.count++
	w.collOf[r.id] = c
	if c.count < w.n {
		r.blockLocked(stateBlockedColl)
		w.mu.Unlock()
		r.clock.AdvanceTo(c.release)
		return c.datas
	}
	// Last participant: compute release time and free everyone.
	maxClock := 0.0
	for _, rk := range w.ranks {
		if rk.clock.Now() > maxClock {
			maxClock = rk.clock.Now()
		}
	}
	// Only ranks in this collective are parked; our own clock is included
	// via ourselves. (All ranks participate by definition.)
	c.release = release(c.datas, maxClock)
	c.done = true
	w.coll = nil
	for i := 0; i < w.n; i++ {
		if i != r.id && w.states[i] == stateBlockedColl && w.collOf[i] == c {
			w.states[i] = stateReady
		}
	}
	w.mu.Unlock()
	r.clock.AdvanceTo(c.release)
	return c.datas
}

// Barrier synchronizes all ranks; everyone leaves at the latest entry time
// plus a tree-latency term.
func (r *Rank) Barrier() {
	w := r.world
	r.runCollective("barrier", nil, func(_ [][]byte, maxClock float64) float64 {
		return maxClock + w.cost.NetLatency*logSteps(w.n)
	})
}

// Bcast distributes root's payload to every rank and returns it.
func (r *Rank) Bcast(root int, data []byte) []byte {
	w := r.world
	var payload []byte
	if r.id == root {
		payload = data
	}
	datas := r.runCollective("bcast", payload, func(datas [][]byte, maxClock float64) float64 {
		size := float64(len(datas[root]))
		return maxClock + w.cost.NetLatency*logSteps(w.n) + size/w.cost.NetBandwidth
	})
	return datas[root]
}

// Gather collects every rank's payload at root. Root receives the slice
// indexed by rank; other ranks receive nil. The root link is modelled as
// the bottleneck: completion pays the total inbound volume.
func (r *Rank) Gather(root int, data []byte) [][]byte {
	w := r.world
	datas := r.runCollective("gather", data, func(datas [][]byte, maxClock float64) float64 {
		var total int64
		for i, d := range datas {
			if i != root {
				total += int64(len(d))
			}
		}
		return maxClock + w.cost.NetLatency*logSteps(w.n) + float64(total)/w.cost.NetBandwidth
	})
	if r.id == root {
		return datas
	}
	return nil
}

// AllGather collects every rank's payload everywhere.
func (r *Rank) AllGather(data []byte) [][]byte {
	w := r.world
	return r.runCollective("allgather", data, func(datas [][]byte, maxClock float64) float64 {
		var total int64
		for _, d := range datas {
			total += int64(len(d))
		}
		return maxClock + w.cost.NetLatency*logSteps(w.n) + float64(total)/w.cost.NetBandwidth
	})
}

// ReduceMax computes the element-wise maximum of per-rank int64 vectors at
// every rank (a convenience for threshold broadcasting in the engines).
func (r *Rank) ReduceMax(values []int64) []int64 {
	buf := make([]byte, 8*len(values))
	for i, v := range values {
		putInt64(buf[8*i:], v)
	}
	datas := r.AllGather(buf)
	out := make([]int64, len(values))
	first := true
	for _, d := range datas {
		if len(d) != len(buf) {
			panic("mpi: ReduceMax length mismatch across ranks")
		}
		for i := range out {
			v := getInt64(d[8*i:])
			if first || v > out[i] {
				out[i] = v
			}
		}
		first = false
	}
	return out
}

func putInt64(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getInt64(b []byte) int64 {
	var v int64
	for i := 0; i < 8; i++ {
		v |= int64(b[i]) << (8 * i)
	}
	return v
}

// PendingMessages reports how many undelivered messages each rank has —
// a post-run hygiene check used by tests.
func (w *World) PendingMessages() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]int, w.n)
	for i := range w.inbox {
		out[i] = len(w.inbox[i])
	}
	return out
}

// SortRanksByClock returns rank ids ordered by final virtual time — a
// reporting helper.
func SortRanksByClock(clocks []*simtime.Clock) []int {
	ids := make([]int, len(clocks))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		return clocks[ids[a]].Now() < clocks[ids[b]].Now()
	})
	return ids
}
