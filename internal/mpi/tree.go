// Tree collectives: k-ary reduction, gather, and broadcast over an
// explicit member list, built from point-to-point messages so the per-hop
// latency and volume are charged where they really land. The flat
// collectives (Gather/AllGather) model the root link as the bottleneck —
// the master pays the total inbound volume — which is exactly the paper's
// §3.2 master-serialization problem. A k-ary tree spreads that cost: each
// node receives at most `fanout` bundles, so the root's critical path
// shrinks from O(N) message ingests to O(k·log_k N).
//
// # Topology
//
// Members are sorted ascending and the root rotated to position 0; the
// node at position p has parent (p-1)/fanout and children fanout·p+1 …
// fanout·p+fanout. Every rank derives the identical topology locally.
//
// # Crash handling
//
// Fault-free worlds run a tight fast path: blocking receives from exact
// children, one bundle per edge. Worlds with scheduled faults run a
// crash-aware protocol instead:
//
//   - each node collects subtree bundles with timeout-paced receives,
//     declaring a descendant lost when the ground-truth detector (Failed)
//     shows its whole forwarding chain dead, or — after a grace period —
//     when any node on the chain died (the safety net below recovers
//     prematurely abandoned data);
//   - a sender routes its bundle to its first LIVE ancestor, so the
//     subtree of a dead interior node is rebuilt around it on the fly;
//   - after the up phase, all members synchronize on a flat AllGather of
//     tiny coverage reports. Every member checks whether its own bundle's
//     coverage made it into the root's folded set; holders of undelivered
//     coverage (their forwarder crashed in custody) re-send directly to
//     the root, which collects exactly that pending set. A live member's
//     contribution therefore always survives; only a crashed rank can
//     take contributions down with it.
//
// The crash path REQUIRES members to include every live rank (it
// synchronizes on world-wide flat collectives); the engines always call it
// that way. Under fault schedules TreeBcast and TreeBarrier delegate to
// the flat Bcast/Barrier, which complete over survivors by construction.
package mpi

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Tree-collective message tags, inside the dedicated CollTagBase region so
// CommStats books the traffic as collective-operation volume.
const (
	tagTreeReduce = CollTagBase + 1
	tagTreeBcast  = CollTagBase + 2
)

// DefaultTreeFanout is the fan-out used when a caller passes no explicit
// preference. Four balances depth against per-node ingest for the rank
// counts the experiments sweep.
const DefaultTreeFanout = 4

// treeTopo is the deterministic k-ary layout of one member list.
type treeTopo struct {
	fanout  int
	members []int       // position-ordered: members[0] is the root rank
	pos     map[int]int // rank -> position
}

func newTreeTopo(root, fanout int, members []int) treeTopo {
	if fanout < 2 {
		panic(fmt.Sprintf("mpi: tree fanout %d < 2", fanout))
	}
	ms := append([]int(nil), members...)
	sort.Ints(ms)
	for i := 1; i < len(ms); i++ {
		if ms[i] == ms[i-1] {
			panic(fmt.Sprintf("mpi: duplicate tree member %d", ms[i]))
		}
	}
	ri := -1
	for i, m := range ms {
		if m == root {
			ri = i
			break
		}
	}
	if ri < 0 {
		panic(fmt.Sprintf("mpi: tree root %d not in members", root))
	}
	// Rotate the root to the front, keeping everyone else ascending.
	ordered := make([]int, 0, len(ms))
	ordered = append(ordered, root)
	ordered = append(ordered, ms[:ri]...)
	ordered = append(ordered, ms[ri+1:]...)
	t := treeTopo{fanout: fanout, members: ordered, pos: make(map[int]int, len(ordered))}
	for i, m := range ordered {
		t.pos[m] = i
	}
	return t
}

func (t treeTopo) parent(p int) int { return (p - 1) / t.fanout }

func (t treeTopo) children(p int) []int {
	var out []int
	for c := t.fanout*p + 1; c <= t.fanout*p+t.fanout && c < len(t.members); c++ {
		out = append(out, c)
	}
	return out
}

// depth is the number of hops from position p to the root.
func (t treeTopo) depth(p int) int {
	d := 0
	for p > 0 {
		p = t.parent(p)
		d++
	}
	return d
}

// maxDepth is the height of the whole tree.
func (t treeTopo) maxDepth() int {
	if len(t.members) <= 1 {
		return 0
	}
	return t.depth(len(t.members) - 1)
}

// subtree lists the positions rooted at p (p first, then ascending).
func (t treeTopo) subtree(p int) []int {
	out := []int{p}
	for i := 0; i < len(out); i++ {
		out = append(out, t.children(out[i])...)
	}
	sort.Ints(out)
	return out
}

// chainDead reports whether every node on the forwarding chain from
// position m up to (exclusive) position anc has crashed — the ground-truth
// condition under which m's contribution cannot reach anc anymore.
func (t treeTopo) chainDead(r *Rank, m, anc int) bool {
	for p := m; p != anc; p = t.parent(p) {
		if !r.Failed(t.members[p]) {
			return false
		}
	}
	return true
}

// chainDamaged reports whether any node on the chain from m up to
// (exclusive) anc has crashed — evidence that m's contribution may have
// been re-routed or lost, justifying a grace-period give-up.
func (t treeTopo) chainDamaged(r *Rank, m, anc int) bool {
	for p := m; p != anc; p = t.parent(p) {
		if r.Failed(t.members[p]) {
			return true
		}
	}
	return false
}

// firstLiveAncestor returns the position of the nearest live ancestor of
// p, or -1 when every ancestor including the root has crashed.
func (t treeTopo) firstLiveAncestor(r *Rank, p int) int {
	for p > 0 {
		p = t.parent(p)
		if !r.Failed(t.members[p]) {
			return p
		}
	}
	if r.Failed(t.members[0]) {
		return -1
	}
	return 0
}

// treeBundle is one up-phase message: the combined payload of a resolved
// subtree plus which members it covers (contributed data) and which it has
// resolved (covered or written off as lost).
type treeBundle struct {
	round    int64
	covered  []int // ranks whose data is folded into payload, ascending
	resolved []int // covered plus ranks concluded lost, ascending
	payload  []byte
}

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(b, tmp[:binary.PutUvarint(tmp[:], v)]...)
}

func appendRankList(b []byte, ranks []int) []byte {
	b = appendUvarint(b, uint64(len(ranks)))
	for _, r := range ranks {
		b = appendUvarint(b, uint64(r))
	}
	return b
}

type treeDecoder struct {
	buf []byte
	bad bool
}

func (d *treeDecoder) uvarint() uint64 {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *treeDecoder) rankList() []int {
	n := int(d.uvarint())
	if d.bad || n > len(d.buf) {
		d.bad = true
		return nil
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, int(d.uvarint()))
	}
	return out
}

func (d *treeDecoder) blob() []byte {
	n := int(d.uvarint())
	if d.bad || n > len(d.buf) {
		d.bad = true
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (b treeBundle) encode() []byte {
	out := appendUvarint(nil, uint64(b.round))
	out = appendRankList(out, b.covered)
	out = appendRankList(out, b.resolved)
	out = appendUvarint(out, uint64(len(b.payload)))
	return append(out, b.payload...)
}

func decodeTreeBundle(data []byte) (treeBundle, bool) {
	d := treeDecoder{buf: data}
	b := treeBundle{round: int64(d.uvarint())}
	b.covered = d.rankList()
	b.resolved = d.rankList()
	b.payload = d.blob()
	return b, !d.bad
}

// treeReport is one member's post-up-phase statement for the flat
// AllGather: which coverage its bundle carried (for the root: which
// coverage it actually folded).
type treeReport struct {
	covered []int
}

func (t treeReport) encode() []byte { return appendRankList(nil, t.covered) }

func decodeTreeReport(data []byte) (treeReport, bool) {
	d := treeDecoder{buf: data}
	rep := treeReport{covered: d.rankList()}
	return rep, !d.bad
}

// nextTreeRound increments and returns this rank's invocation counter for
// the given op tag.
func (r *Rank) nextTreeRound(tag int) int64 {
	if r.treeRound == nil {
		r.treeRound = make(map[int]int64)
	}
	r.treeRound[tag]++
	return r.treeRound[tag]
}

// recordTreeOp books one member's entry into a tree collective, mirroring
// the flat runCollective accounting (per-op count and byte series).
func (r *Rank) recordTreeOp(op string, size int64) {
	if reg := r.world.config.Metrics; reg != nil {
		reg.Counter("mpi.collective."+op, r.id).Inc()
		reg.Counter("mpi.collective."+op+".bytes", r.id).Add(size)
		reg.Counter("mpi.collective.bytes", r.id).Add(size)
	}
}

// recordTreeEdge books one tree-edge message at the sender's tree level
// (the root is level 0), giving the per-level latency/volume attribution
// the mergescale experiment reads.
func (r *Rank) recordTreeEdge(level int, size int64) {
	if reg := r.world.config.Metrics; reg != nil {
		series := fmt.Sprintf("mpi.tree.level%02d", level)
		reg.Counter(series+".msgs", r.id).Inc()
		reg.Counter(series+".bytes", r.id).Add(size)
	}
}

// treeTimeout is the crash-path polling interval, matching the engines'
// default failure-detection pace.
func (r *Rank) treeTimeout() float64 { return 250 * r.world.cost.NetLatency }

// TreeReduce folds every member's payload into one result at root using
// the user-supplied combiner, which MUST be associative and commutative —
// the fold order is deterministic but depends on the topology. The root
// receives the combined payload and the ascending list of members whose
// data actually contributed; every other member receives (nil, nil).
//
// Fault-free worlds run the pure k-ary message tree. Worlds with
// scheduled faults run the crash-aware protocol described in the package
// comment (members must then include every live rank). A crashed member's
// own contribution is lost — reported by its absence from contributors —
// but live members' contributions always survive, even when their
// forwarding ancestors die mid-protocol.
func (r *Rank) TreeReduce(root, fanout int, members []int, data []byte, combine func(a, b []byte) []byte) ([]byte, []int, error) {
	t := newTreeTopo(root, fanout, members)
	myPos, ok := t.pos[r.id]
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d called TreeReduce without being a member", r.id))
	}
	r.maybeCrash()
	r.recordTreeOp("treereduce", int64(len(data)))
	if r.id == root {
		if reg := r.world.config.Metrics; reg != nil {
			reg.Gauge("mpi.tree.fanout", r.id).Set(float64(fanout))
			reg.Gauge("mpi.tree.depth", r.id).Set(float64(t.maxDepth()))
		}
	}
	if len(t.members) == 1 {
		return data, []int{r.id}, nil
	}
	if !r.FaultsScheduled() {
		return r.treeReduceFast(t, myPos, data, combine)
	}
	return r.treeReduceCrash(t, myPos, data, combine)
}

// foldBundles combines own data with the stashed bundles in deterministic
// order (ascending minimum covered rank) and returns the fold plus the
// ascending union of covered ranks.
func foldBundles(self int, data []byte, stash []treeBundle, combine func(a, b []byte) []byte) ([]byte, []int) {
	sort.Slice(stash, func(i, j int) bool { return stash[i].covered[0] < stash[j].covered[0] })
	combined := data
	covered := []int{self}
	for _, b := range stash {
		combined = combine(combined, b.payload)
		covered = append(covered, b.covered...)
	}
	sort.Ints(covered)
	return combined, covered
}

// treeReduceFast is the fault-free up phase: exact blocking receives from
// every child, one bundle per edge.
func (r *Rank) treeReduceFast(t treeTopo, myPos int, data []byte, combine func(a, b []byte) []byte) ([]byte, []int, error) {
	round := r.nextTreeRound(tagTreeReduce)
	var stash []treeBundle
	for _, c := range t.children(myPos) {
		raw, _, _ := r.Recv(t.members[c], tagTreeReduce)
		b, ok := decodeTreeBundle(raw)
		if !ok {
			return nil, nil, fmt.Errorf("mpi: rank %d received corrupt tree bundle", r.id)
		}
		stash = append(stash, b)
	}
	combined, covered := foldBundles(r.id, data, stash, combine)
	if myPos == 0 {
		return combined, covered, nil
	}
	b := treeBundle{round: round, covered: covered, resolved: covered, payload: combined}
	raw := b.encode()
	r.recordTreeEdge(t.depth(myPos), int64(len(raw)))
	r.Send(t.members[t.parent(myPos)], tagTreeReduce, raw)
	return nil, nil, nil
}

// treeReduceCrash is the crash-aware up phase plus the AllGather/resend
// safety net.
func (r *Rank) treeReduceCrash(t treeTopo, myPos int, data []byte, combine func(a, b []byte) []byte) ([]byte, []int, error) {
	round := r.nextTreeRound(tagTreeReduce)
	timeout := r.treeTimeout()
	sub := t.subtree(myPos)
	resolved := make(map[int]bool, len(sub)) // by position
	resolved[myPos] = true
	coveredSet := make(map[int]bool) // by rank
	var stash []treeBundle

	// Collect until every subtree position is resolved. A position
	// resolves when a bundle covers or resolves its rank, when its whole
	// chain to us is dead, or — after `grace` empty timeouts — when its
	// chain is damaged by any crash (the resend round recovers the data if
	// it actually survived below the damage).
	const grace = 2
	idle := 0
	pending := func() []int {
		var out []int
		for _, p := range sub {
			if !resolved[p] {
				out = append(out, p)
			}
		}
		return out
	}
	for {
		rem := pending()
		if len(rem) == 0 {
			break
		}
		raw, _, _, err := r.RecvTimeout(AnySource, tagTreeReduce, timeout)
		if err != nil {
			// ErrTimeout (AnySource never reports a peer failure): apply
			// the ground-truth lost rules.
			idle++
			for _, p := range rem {
				if t.chainDead(r, p, myPos) || (idle > grace && t.chainDamaged(r, p, myPos)) {
					resolved[p] = true
				}
			}
			continue
		}
		b, ok := decodeTreeBundle(raw)
		if !ok {
			return nil, nil, fmt.Errorf("mpi: rank %d received corrupt tree bundle", r.id)
		}
		if b.round != round {
			continue // stale retransmission from an earlier invocation
		}
		dup := false
		for _, c := range b.covered {
			if coveredSet[c] {
				dup = true
				break
			}
		}
		if dup {
			continue // duplicate delivery along a rebuilt path
		}
		idle = 0
		stash = append(stash, b)
		for _, c := range b.covered {
			coveredSet[c] = true
			if p, ok := t.pos[c]; ok {
				resolved[p] = true
			}
		}
		for _, c := range b.resolved {
			if p, ok := t.pos[c]; ok {
				resolved[p] = true
			}
		}
	}

	combined, covered := foldBundles(r.id, data, stash, combine)
	resolvedRanks := make([]int, 0, len(sub))
	for _, p := range sub {
		if resolved[p] {
			resolvedRanks = append(resolvedRanks, t.members[p])
		}
	}
	sort.Ints(resolvedRanks)

	if myPos != 0 {
		// Route the bundle around dead ancestors: the subtree rebuild.
		if anc := t.firstLiveAncestor(r, myPos); anc >= 0 {
			b := treeBundle{round: round, covered: covered, resolved: resolvedRanks, payload: combined}
			raw := b.encode()
			r.recordTreeEdge(t.depth(myPos), int64(len(raw)))
			r.Send(t.members[anc], tagTreeReduce, raw)
		}
	}

	// Safety net: AllGather everyone's bundle coverage (the root reports
	// what it folded), derive the deterministic set of members whose
	// coverage never reached the root, and have exactly those re-send
	// directly to it.
	myReport := treeReport{covered: covered}
	reports := r.AllGather(myReport.encode())
	rootCovered := make(map[int]bool)
	rootRank := t.members[0]
	if rep, ok := decodeTreeReport(reports[rootRank]); ok {
		for _, c := range rep.covered {
			rootCovered[c] = true
		}
	}
	type holder struct {
		rank    int
		covered []int
	}
	var candidates []holder
	for _, m := range t.members[1:] {
		if reports[m] == nil {
			continue // crashed before the safety net: nothing to recover
		}
		rep, ok := decodeTreeReport(reports[m])
		if !ok || len(rep.covered) == 0 {
			continue
		}
		delivered := true
		for _, c := range rep.covered {
			if !rootCovered[c] {
				delivered = false
				break
			}
		}
		if !delivered {
			candidates = append(candidates, holder{rank: m, covered: rep.covered})
		}
	}
	// Nested holders carry overlapping coverage (a lost forwarder's bundle
	// contains its children's); keep only the outermost of each chain.
	sort.Slice(candidates, func(i, j int) bool {
		if len(candidates[i].covered) != len(candidates[j].covered) {
			return len(candidates[i].covered) > len(candidates[j].covered)
		}
		return candidates[i].rank < candidates[j].rank
	})
	accepted := make(map[int]bool, len(rootCovered))
	for c := range rootCovered {
		accepted[c] = true
	}
	var resendFrom []int
	iResend := false
	for _, cand := range candidates {
		overlap := false
		for _, c := range cand.covered {
			if accepted[c] {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		for _, c := range cand.covered {
			accepted[c] = true
		}
		resendFrom = append(resendFrom, cand.rank)
		if cand.rank == r.id {
			iResend = true
		}
	}
	sort.Ints(resendFrom)

	if myPos != 0 {
		if iResend {
			b := treeBundle{round: round, covered: covered, resolved: resolvedRanks, payload: combined}
			raw := b.encode()
			r.recordTreeEdge(t.depth(myPos), int64(len(raw)))
			r.Send(rootRank, tagTreeReduce, raw)
		}
		return nil, nil, nil
	}

	for _, from := range resendFrom {
		for {
			raw, _, _, err := r.RecvTimeout(from, tagTreeReduce, timeout)
			if err == nil {
				b, ok := decodeTreeBundle(raw)
				if !ok || b.round != round {
					continue
				}
				stash = append(stash, b)
				break
			}
			if r.Failed(from) {
				break // crashed before re-sending: its data is gone
			}
		}
	}
	// Re-fold everything (base bundles plus recovered re-sends) in the
	// deterministic order, so the result is independent of arrival timing.
	combined, covered = foldBundles(r.id, data, stash, combine)
	return combined, covered, nil
}

// TreeGather collects every member's payload at root via the k-ary tree:
// bundles concatenate (rank, blob) lists instead of streaming N messages
// through the root link. The root receives a slice indexed by RANK (nil
// for non-members and for members whose contribution died with a crashed
// forwarder) plus the contributors list; everyone else receives nil.
func (r *Rank) TreeGather(root, fanout int, members []int, data []byte) ([][]byte, []int, error) {
	payload := appendUvarint(nil, uint64(r.id))
	payload = appendUvarint(payload, uint64(len(data)))
	payload = append(payload, data...)
	combined, contributors, err := r.TreeReduce(root, fanout, members, payload, mergeLabeledBlobs)
	if err != nil || r.id != root {
		return nil, nil, err
	}
	out := make([][]byte, r.Size())
	d := treeDecoder{buf: combined}
	for len(d.buf) > 0 && !d.bad {
		rank := int(d.uvarint())
		blob := d.blob()
		if d.bad {
			return nil, nil, fmt.Errorf("mpi: corrupt tree gather payload at root")
		}
		if rank >= 0 && rank < len(out) {
			out[rank] = blob
		}
	}
	return out, contributors, nil
}

// mergeLabeledBlobs combines two sorted (rank, blob) lists into one sorted
// list — the associative, commutative combiner behind TreeGather.
func mergeLabeledBlobs(a, b []byte) []byte {
	type entry struct {
		rank int
		blob []byte
	}
	decode := func(buf []byte) []entry {
		var out []entry
		d := treeDecoder{buf: buf}
		for len(d.buf) > 0 && !d.bad {
			rank := int(d.uvarint())
			blob := d.blob()
			if d.bad {
				break
			}
			out = append(out, entry{rank, blob})
		}
		return out
	}
	all := append(decode(a), decode(b)...)
	sort.Slice(all, func(i, j int) bool { return all[i].rank < all[j].rank })
	var out []byte
	for _, e := range all {
		out = appendUvarint(out, uint64(e.rank))
		out = appendUvarint(out, uint64(len(e.blob)))
		out = append(out, e.blob...)
	}
	return out
}

// TreeBcast distributes root's payload to every member along the k-ary
// tree and returns it everywhere. Fault-free worlds forward hop by hop
// (each edge pays its own latency and bandwidth); worlds with scheduled
// faults delegate to the crash-safe flat Bcast, which completes over the
// survivors (members must then include every live rank).
func (r *Rank) TreeBcast(root, fanout int, members []int, data []byte) []byte {
	t := newTreeTopo(root, fanout, members)
	myPos, ok := t.pos[r.id]
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d called TreeBcast without being a member", r.id))
	}
	r.maybeCrash()
	var own int64
	if r.id == root {
		own = int64(len(data))
	}
	r.recordTreeOp("treebcast", own)
	if len(t.members) == 1 {
		return data
	}
	if r.FaultsScheduled() {
		var payload []byte
		if r.id == root {
			payload = data
		}
		return r.Bcast(root, payload)
	}
	payload := data
	if myPos != 0 {
		raw, _, _ := r.Recv(t.members[t.parent(myPos)], tagTreeBcast)
		payload = raw
	}
	for _, c := range t.children(myPos) {
		r.recordTreeEdge(t.depth(c), int64(len(payload)))
		r.Send(t.members[c], tagTreeBcast, payload)
	}
	return payload
}

// TreeBarrier synchronizes the members with an empty up-phase reduction
// followed by an empty broadcast — two tree traversals instead of the flat
// barrier's analytic cost. Under fault schedules it delegates to the flat
// Barrier (members must then include every live rank).
func (r *Rank) TreeBarrier(root, fanout int, members []int) {
	r.maybeCrash()
	r.recordTreeOp("treebarrier", 0)
	if r.FaultsScheduled() {
		r.Barrier()
		return
	}
	t := newTreeTopo(root, fanout, members)
	if _, ok := t.pos[r.id]; !ok {
		panic(fmt.Sprintf("mpi: rank %d called TreeBarrier without being a member", r.id))
	}
	if len(t.members) == 1 {
		return
	}
	myPos := t.pos[r.id]
	none := func(a, b []byte) []byte { return nil }
	if _, _, err := r.treeReduceFast(t, myPos, nil, none); err != nil {
		panic("mpi: tree barrier reduce failed: " + err.Error())
	}
	payload := []byte(nil)
	if myPos != 0 {
		payload, _, _ = r.Recv(t.members[t.parent(myPos)], tagTreeBcast)
	}
	for _, c := range t.children(myPos) {
		r.Send(t.members[c], tagTreeBcast, payload)
	}
}
