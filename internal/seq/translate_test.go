package seq

import (
	"bytes"
	"testing"
)

// encodeDNA converts DNA letters to codes.
func encodeDNA(t *testing.T, letters string) []byte {
	t.Helper()
	codes, err := DNAAlphabet.Encode([]byte(letters))
	if err != nil {
		t.Fatal(err)
	}
	return codes
}

func TestTranslateCodon(t *testing.T) {
	cases := map[string]byte{
		"ATG": 'M', "TGG": 'W', "TAA": '*', "TAG": '*', "TGA": '*',
		"AAA": 'K', "TTT": 'F', "GGG": 'G', "GCT": 'A',
	}
	for codon, aa := range cases {
		c := encodeDNA(t, codon)
		got := TranslateCodon(c[0], c[1], c[2])
		if got != ProteinAlphabet.Code(aa) {
			t.Fatalf("%s → %c, want %c", codon, ProteinAlphabet.Letter(got), aa)
		}
	}
	// Ambiguity → wildcard.
	n := DNAAlphabet.Wildcard()
	if TranslateCodon(n, 0, 0) != ProteinAlphabet.Wildcard() {
		t.Fatal("ambiguous codon should translate to X")
	}
}

func TestReverseComplement(t *testing.T) {
	in := encodeDNA(t, "ACGTN")
	rc := ReverseComplement(in)
	want := encodeDNA(t, "NACGT")
	if !bytes.Equal(rc, want) {
		t.Fatalf("rc = %v, want %v", rc, want)
	}
	// Involution (on unambiguous input).
	u := encodeDNA(t, "ACGTACGT")
	if !bytes.Equal(ReverseComplement(ReverseComplement(u)), u) {
		t.Fatal("reverse complement is not an involution")
	}
}

func TestTranslateFrames(t *testing.T) {
	// ATG GCT TGG TAA = M A W *
	dna := encodeDNA(t, "ATGGCTTGGTAA")
	f1, err := Translate(dna, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(ProteinAlphabet.Decode(f1)); got != "MAW*" {
		t.Fatalf("frame +1 = %q", got)
	}
	f2, _ := Translate(dna, 2)
	if len(f2) != 3 {
		t.Fatalf("frame +2 length %d", len(f2))
	}
	// Frame -1 translates the reverse complement: TTACCAAGCCAT → L P S H.
	fm1, _ := Translate(dna, -1)
	if got := string(ProteinAlphabet.Decode(fm1)); got != "LPSH" {
		t.Fatalf("frame -1 = %q", got)
	}
	if _, err := Translate(dna, 0); err == nil {
		t.Fatal("frame 0 accepted")
	}
	if _, err := Translate(dna, 4); err == nil {
		t.Fatal("frame 4 accepted")
	}
	// Short input: frame start beyond sequence.
	short := encodeDNA(t, "AC")
	out, err := Translate(short, 3)
	if err != nil || len(out) != 0 {
		t.Fatalf("short input: %v %v", out, err)
	}
}

func TestTranslateAll(t *testing.T) {
	dna := &Sequence{ID: "d1", Residues: encodeDNA(t, "ATGGCTTGGAAATTTGGG"), Alpha: DNAAlphabet}
	frames, err := TranslateAll(dna)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 6 {
		t.Fatalf("%d frames", len(frames))
	}
	for f, s := range frames {
		if s.Alpha != ProteinAlphabet {
			t.Fatalf("frame %d not protein", f)
		}
		if s.ID == dna.ID {
			t.Fatal("frame ID should be annotated")
		}
	}
	prot := &Sequence{ID: "p", Residues: []byte{0, 1}, Alpha: ProteinAlphabet}
	if _, err := TranslateAll(prot); err == nil {
		t.Fatal("protein input accepted")
	}
}
