// Package seq defines biological sequence alphabets, residue encodings, and
// the Sequence type shared by the database formatter and the BLAST kernel.
//
// Residues are stored in a compact internal encoding: each alphabet maps its
// letters to small consecutive codes so that scoring matrices and word
// indexes can be addressed by code arithmetic instead of byte lookups.
package seq

import (
	"fmt"
	"strings"
)

// Kind identifies the molecule type of an alphabet or sequence.
type Kind uint8

const (
	// Protein is the 20-letter amino-acid alphabet plus ambiguity codes.
	Protein Kind = iota
	// DNA is the 4-letter nucleotide alphabet plus N.
	DNA
)

// String returns the conventional lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case Protein:
		return "protein"
	case DNA:
		return "dna"
	default:
		return fmt.Sprintf("seq.Kind(%d)", uint8(k))
	}
}

// InvalidCode marks a byte that is not part of the alphabet.
const InvalidCode = 0xFF

// Alphabet maps sequence letters to compact residue codes and back.
// The zero value is not usable; use ProteinAlphabet or DNAAlphabet.
type Alphabet struct {
	kind     Kind
	letters  string    // code -> canonical upper-case letter
	codes    [256]byte // letter -> code, InvalidCode if not a member
	strict   int       // number of unambiguous residues (20 or 4)
	wildcard byte      // code of the ambiguity residue (X or N)
}

// ProteinLetters lists the canonical protein residue order used throughout
// the package: the 20 standard amino acids, then the ambiguity codes.
// Order matters: scoring matrices in internal/matrix use the same order.
const ProteinLetters = "ARNDCQEGHILKMFPSTWYVBZX*"

// DNALetters lists the canonical nucleotide order, then N for ambiguity.
const DNALetters = "ACGTN"

var (
	// ProteinAlphabet is the shared amino-acid alphabet.
	ProteinAlphabet = newAlphabet(Protein, ProteinLetters, 20, 'X')
	// DNAAlphabet is the shared nucleotide alphabet.
	DNAAlphabet = newAlphabet(DNA, DNALetters, 4, 'N')
)

func newAlphabet(kind Kind, letters string, strict int, wildcard byte) *Alphabet {
	a := &Alphabet{kind: kind, letters: letters, strict: strict}
	for i := range a.codes {
		a.codes[i] = InvalidCode
	}
	for i := 0; i < len(letters); i++ {
		up := letters[i]
		a.codes[up] = byte(i)
		a.codes[lower(up)] = byte(i)
	}
	a.wildcard = a.codes[wildcard]
	// Common aliases seen in real FASTA data.
	if kind == Protein {
		a.codes['U'] = a.codes['C'] // selenocysteine -> cysteine score class
		a.codes['u'] = a.codes['C']
		a.codes['O'] = a.codes['K'] // pyrrolysine -> lysine
		a.codes['o'] = a.codes['K']
		a.codes['J'] = a.codes['L'] // leucine/isoleucine ambiguity
		a.codes['j'] = a.codes['L']
		a.codes['-'] = a.wildcard
	} else {
		for _, c := range []byte{'R', 'Y', 'S', 'W', 'K', 'M', 'B', 'D', 'H', 'V'} {
			a.codes[c] = a.wildcard
			a.codes[lower(c)] = a.wildcard
		}
		a.codes['U'] = a.codes['T'] // RNA input
		a.codes['u'] = a.codes['T']
		a.codes['-'] = a.wildcard
	}
	return a
}

func lower(b byte) byte {
	if b >= 'A' && b <= 'Z' {
		return b + 'a' - 'A'
	}
	return b
}

// Kind reports the molecule type of the alphabet.
func (a *Alphabet) Kind() Kind { return a.kind }

// Size returns the total number of residue codes, including ambiguity codes.
func (a *Alphabet) Size() int { return len(a.letters) }

// StrictSize returns the number of unambiguous residues (20 for protein,
// 4 for DNA). Word indexes enumerate only strict residues.
func (a *Alphabet) StrictSize() int { return a.strict }

// Wildcard returns the code of the ambiguity residue (X or N).
func (a *Alphabet) Wildcard() byte { return a.wildcard }

// Code translates a letter to its residue code, or InvalidCode.
func (a *Alphabet) Code(letter byte) byte { return a.codes[letter] }

// Letter translates a residue code back to its canonical letter.
// Codes out of range map to '?'.
func (a *Alphabet) Letter(code byte) byte {
	if int(code) >= len(a.letters) {
		return '?'
	}
	return a.letters[code]
}

// Encode converts letter text into residue codes. Unknown letters become the
// wildcard code; whitespace is skipped. The returned error reports the first
// character that is neither a residue letter nor whitespace (digits and '*'
// stops are tolerated for protein).
func (a *Alphabet) Encode(text []byte) ([]byte, error) {
	out := make([]byte, 0, len(text))
	var firstBad int = -1
	var badChar byte
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch c {
		case ' ', '\t', '\n', '\r':
			continue
		}
		code := a.codes[c]
		if code == InvalidCode {
			if c >= '0' && c <= '9' {
				continue // sequence numbering in some FASTA dialects
			}
			if firstBad < 0 {
				firstBad, badChar = i, c
			}
			code = a.wildcard
		}
		out = append(out, code)
	}
	if firstBad >= 0 {
		return out, fmt.Errorf("seq: invalid %s residue %q at offset %d (treated as wildcard)",
			a.kind, badChar, firstBad)
	}
	return out, nil
}

// Decode converts residue codes back to canonical letters.
func (a *Alphabet) Decode(codes []byte) []byte {
	out := make([]byte, len(codes))
	for i, c := range codes {
		out[i] = a.Letter(c)
	}
	return out
}

// Sequence is one database or query sequence: a definition line plus
// residues in the compact code encoding of its alphabet.
type Sequence struct {
	// ID is the first whitespace-delimited token of the FASTA defline.
	ID string
	// Description is the remainder of the defline (may be empty).
	Description string
	// Residues holds alphabet codes, not letters.
	Residues []byte
	// Alpha is the alphabet the residues are encoded in.
	Alpha *Alphabet
}

// Len returns the number of residues.
func (s *Sequence) Len() int { return len(s.Residues) }

// Defline reconstructs the FASTA definition line without the leading '>'.
func (s *Sequence) Defline() string {
	if s.Description == "" {
		return s.ID
	}
	return s.ID + " " + s.Description
}

// Letters returns the residues as canonical letter text.
func (s *Sequence) Letters() string {
	return string(s.Alpha.Decode(s.Residues))
}

// Validate checks internal consistency: a non-empty ID, a known alphabet,
// and all residue codes within the alphabet.
func (s *Sequence) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("seq: sequence with empty ID")
	}
	if s.Alpha == nil {
		return fmt.Errorf("seq: sequence %q has nil alphabet", s.ID)
	}
	for i, c := range s.Residues {
		if int(c) >= s.Alpha.Size() {
			return fmt.Errorf("seq: sequence %q has invalid code %d at %d", s.ID, c, i)
		}
	}
	return nil
}

// New encodes letter text into a Sequence using alphabet a.
// Invalid letters are mapped to the wildcard without error; use
// Alphabet.Encode directly when strictness matters.
func New(a *Alphabet, id, description, letters string) *Sequence {
	codes, _ := a.Encode([]byte(letters))
	return &Sequence{ID: id, Description: description, Residues: codes, Alpha: a}
}

// GuessKind inspects letter text and guesses whether it is DNA or protein:
// if ≥90% of the first 1000 letters are A/C/G/T/N/U it is called DNA.
func GuessKind(text []byte) Kind {
	n := len(text)
	if n > 1000 {
		n = 1000
	}
	acgt, total := 0, 0
	for i := 0; i < n; i++ {
		c := text[i]
		switch c {
		case ' ', '\t', '\n', '\r':
			continue
		}
		total++
		switch c {
		case 'A', 'C', 'G', 'T', 'N', 'U', 'a', 'c', 'g', 't', 'n', 'u':
			acgt++
		}
	}
	if total > 0 && acgt*10 >= total*9 {
		return DNA
	}
	return Protein
}

// AlphabetFor returns the shared alphabet instance for a kind.
func AlphabetFor(k Kind) *Alphabet {
	if k == DNA {
		return DNAAlphabet
	}
	return ProteinAlphabet
}

// Concat joins several residue slices with a single wildcard separator
// between them, the layout the BLAST kernel uses for a packed DB partition.
// It returns the packed residues and the start offset of each input within
// the packed slice.
func Concat(alpha *Alphabet, parts [][]byte) (packed []byte, starts []int) {
	total := 0
	for _, p := range parts {
		total += len(p) + 1
	}
	packed = make([]byte, 0, total)
	starts = make([]int, len(parts))
	for i, p := range parts {
		starts[i] = len(packed)
		packed = append(packed, p...)
		if i != len(parts)-1 {
			packed = append(packed, alpha.Wildcard())
		}
	}
	return packed, starts
}

// FormatResidues wraps letters at width columns for FASTA output.
func FormatResidues(letters string, width int) string {
	if width <= 0 {
		width = 60
	}
	var b strings.Builder
	for len(letters) > width {
		b.WriteString(letters[:width])
		b.WriteByte('\n')
		letters = letters[width:]
	}
	b.WriteString(letters)
	return b.String()
}
