package seq

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestAlphabetRoundTrip(t *testing.T) {
	for _, a := range []*Alphabet{ProteinAlphabet, DNAAlphabet} {
		for i := 0; i < a.Size(); i++ {
			letter := a.Letter(byte(i))
			if got := a.Code(letter); got != byte(i) {
				t.Fatalf("%s: code(letter(%d)) = %d", a.Kind(), i, got)
			}
		}
	}
}

func TestAlphabetCaseInsensitive(t *testing.T) {
	if ProteinAlphabet.Code('a') != ProteinAlphabet.Code('A') {
		t.Fatal("lower-case protein letter maps differently")
	}
	if DNAAlphabet.Code('t') != DNAAlphabet.Code('T') {
		t.Fatal("lower-case DNA letter maps differently")
	}
}

func TestAlphabetAliases(t *testing.T) {
	if ProteinAlphabet.Code('U') != ProteinAlphabet.Code('C') {
		t.Fatal("selenocysteine should score as cysteine")
	}
	if DNAAlphabet.Code('U') != DNAAlphabet.Code('T') {
		t.Fatal("RNA U should map to T")
	}
	if DNAAlphabet.Code('R') != DNAAlphabet.Wildcard() {
		t.Fatal("IUPAC ambiguity code should map to wildcard")
	}
}

func TestEncodeSkipsWhitespaceAndDigits(t *testing.T) {
	codes, err := ProteinAlphabet.Encode([]byte("MK V\n10 LA"))
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	want := "MKVLA"
	if got := string(ProteinAlphabet.Decode(codes)); got != want {
		t.Fatalf("decoded %q, want %q", got, want)
	}
}

func TestEncodeInvalidReportsButContinues(t *testing.T) {
	codes, err := DNAAlphabet.Encode([]byte("ACG?T"))
	if err == nil {
		t.Fatal("expected error for '?'")
	}
	if len(codes) != 5 {
		t.Fatalf("expected 5 codes (invalid → wildcard), got %d", len(codes))
	}
	if codes[3] != DNAAlphabet.Wildcard() {
		t.Fatal("invalid letter should encode as wildcard")
	}
}

func TestStrictSizes(t *testing.T) {
	if ProteinAlphabet.StrictSize() != 20 {
		t.Fatalf("protein strict size = %d", ProteinAlphabet.StrictSize())
	}
	if DNAAlphabet.StrictSize() != 4 {
		t.Fatalf("dna strict size = %d", DNAAlphabet.StrictSize())
	}
}

func TestSequenceValidate(t *testing.T) {
	s := New(ProteinAlphabet, "id1", "desc", "MKVLA")
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Sequence{ID: "", Alpha: ProteinAlphabet}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty ID accepted")
	}
	bad2 := &Sequence{ID: "x", Alpha: ProteinAlphabet, Residues: []byte{200}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("out-of-range code accepted")
	}
	bad3 := &Sequence{ID: "x"}
	if err := bad3.Validate(); err == nil {
		t.Fatal("nil alphabet accepted")
	}
}

func TestDefline(t *testing.T) {
	s := New(ProteinAlphabet, "sp|P1", "some protein", "MK")
	if s.Defline() != "sp|P1 some protein" {
		t.Fatalf("defline %q", s.Defline())
	}
	s2 := New(ProteinAlphabet, "bare", "", "MK")
	if s2.Defline() != "bare" {
		t.Fatalf("defline %q", s2.Defline())
	}
}

func TestGuessKind(t *testing.T) {
	if GuessKind([]byte("ACGTACGTACGTNNNACGT")) != DNA {
		t.Fatal("obvious DNA not recognised")
	}
	if GuessKind([]byte("MKVLAWFQERTYHPSDNIKL")) != Protein {
		t.Fatal("obvious protein not recognised")
	}
	// ACGT-rich protein edge: below the 90% threshold.
	if GuessKind([]byte("ACGTACGTMKMKMKMKMKWW")) != Protein {
		t.Fatal("mixed content should be called protein")
	}
}

func TestConcat(t *testing.T) {
	a := ProteinAlphabet
	packed, starts := Concat(a, [][]byte{{1, 2}, {3}, {4, 5, 6}})
	if len(starts) != 3 || starts[0] != 0 || starts[1] != 3 || starts[2] != 5 {
		t.Fatalf("starts = %v", starts)
	}
	if packed[2] != a.Wildcard() || packed[4] != a.Wildcard() {
		t.Fatalf("separators missing: %v", packed)
	}
	if len(packed) != 8 {
		t.Fatalf("packed len = %d", len(packed))
	}
}

func TestFormatResidues(t *testing.T) {
	out := FormatResidues("AAAAABBBBBCC", 5)
	if out != "AAAAA\nBBBBB\nCC" {
		t.Fatalf("wrapped = %q", out)
	}
	if FormatResidues("ABC", 0) != "ABC" {
		t.Fatal("default width mangles short input")
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	// Property: decode(encode(x)) is stable under re-encoding for any
	// letters drawn from the alphabet.
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		letters := make([]byte, len(raw))
		for i, c := range raw {
			letters[i] = ProteinLetters[int(c)%len(ProteinLetters)]
		}
		codes, err := ProteinAlphabet.Encode(letters)
		if err != nil {
			return false
		}
		decoded := ProteinAlphabet.Decode(codes)
		codes2, err := ProteinAlphabet.Encode(decoded)
		if err != nil {
			return false
		}
		return bytes.Equal(codes, codes2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if Protein.String() != "protein" || DNA.String() != "dna" {
		t.Fatal("kind names wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Fatal("unknown kind should include the number")
	}
}

func TestAlphabetFor(t *testing.T) {
	if AlphabetFor(Protein) != ProteinAlphabet || AlphabetFor(DNA) != DNAAlphabet {
		t.Fatal("AlphabetFor returned wrong instance")
	}
}
