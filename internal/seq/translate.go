package seq

import "fmt"

// Genetic-code translation: the substrate behind the translated search
// modes of the BLAST family (blastx translates a DNA query in six reading
// frames and searches the translations against a protein database).

// standardCode is the standard genetic code (NCBI translation table 1),
// indexed by base1*16 + base2*4 + base3 with A=0 C=1 G=2 T=3.
// '*' marks stop codons.
var standardCode = [64]byte{
	// AAA AAC AAG AAT
	'K', 'N', 'K', 'N',
	// ACA ACC ACG ACT
	'T', 'T', 'T', 'T',
	// AGA AGC AGG AGT
	'R', 'S', 'R', 'S',
	// ATA ATC ATG ATT
	'I', 'I', 'M', 'I',
	// CAA CAC CAG CAT
	'Q', 'H', 'Q', 'H',
	// CCA CCC CCG CCT
	'P', 'P', 'P', 'P',
	// CGA CGC CGG CGT
	'R', 'R', 'R', 'R',
	// CTA CTC CTG CTT
	'L', 'L', 'L', 'L',
	// GAA GAC GAG GAT
	'E', 'D', 'E', 'D',
	// GCA GCC GCG GCT
	'A', 'A', 'A', 'A',
	// GGA GGC GGG GGT
	'G', 'G', 'G', 'G',
	// GTA GTC GTG GTT
	'V', 'V', 'V', 'V',
	// TAA TAC TAG TAT
	'*', 'Y', '*', 'Y',
	// TCA TCC TCG TCT
	'S', 'S', 'S', 'S',
	// TGA TGC TGG TGT
	'*', 'C', 'W', 'C',
	// TTA TTC TTG TTT
	'L', 'F', 'L', 'F',
}

// TranslateCodon translates three DNA residue codes into a protein residue
// code. Any ambiguous base yields the protein wildcard.
func TranslateCodon(b1, b2, b3 byte) byte {
	if b1 >= 4 || b2 >= 4 || b3 >= 4 {
		return ProteinAlphabet.Wildcard()
	}
	return ProteinAlphabet.Code(standardCode[int(b1)*16+int(b2)*4+int(b3)])
}

// ReverseComplement returns the reverse complement of DNA residue codes
// (A↔T, C↔G; N stays N).
func ReverseComplement(dna []byte) []byte {
	out := make([]byte, len(dna))
	for i, c := range dna {
		var rc byte
		switch c {
		case 0: // A
			rc = 3
		case 1: // C
			rc = 2
		case 2: // G
			rc = 1
		case 3: // T
			rc = 0
		default:
			rc = DNAAlphabet.Wildcard()
		}
		out[len(dna)-1-i] = rc
	}
	return out
}

// Frames enumerates the six translation frames: +1, +2, +3, -1, -2, -3.
var Frames = []int{1, 2, 3, -1, -2, -3}

// Translate translates DNA residue codes in the given frame (±1, ±2, ±3)
// into protein residue codes. Stop codons become '*' residues, which the
// protein scoring matrix penalizes heavily — alignments naturally break
// there, as in NCBI's translated searches.
func Translate(dna []byte, frame int) ([]byte, error) {
	if frame == 0 || frame > 3 || frame < -3 {
		return nil, fmt.Errorf("seq: invalid reading frame %d", frame)
	}
	src := dna
	if frame < 0 {
		src = ReverseComplement(dna)
		frame = -frame
	}
	start := frame - 1
	if start >= len(src) {
		return nil, nil
	}
	n := (len(src) - start) / 3
	out := make([]byte, 0, n)
	for i := start; i+3 <= len(src); i += 3 {
		out = append(out, TranslateCodon(src[i], src[i+1], src[i+2]))
	}
	return out, nil
}

// TranslateAll returns the six-frame translation of a DNA sequence, keyed
// by frame in the order of Frames.
func TranslateAll(dna *Sequence) (map[int]*Sequence, error) {
	if dna.Alpha.Kind() != DNA {
		return nil, fmt.Errorf("seq: TranslateAll needs a DNA sequence, got %s", dna.Alpha.Kind())
	}
	out := make(map[int]*Sequence, 6)
	for _, frame := range Frames {
		prot, err := Translate(dna.Residues, frame)
		if err != nil {
			return nil, err
		}
		if len(prot) == 0 {
			continue
		}
		out[frame] = &Sequence{
			ID:          fmt.Sprintf("%s|frame%+d", dna.ID, frame),
			Description: dna.Description,
			Residues:    prot,
			Alpha:       ProteinAlphabet,
		}
	}
	return out, nil
}
