// Package trace records per-rank phase timelines from the cluster
// simulation and renders them as ASCII Gantt charts — the observability
// layer for understanding where a parallel run's virtual time goes
// (which ranks idle, when phases overlap, where the critical path is).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"parblast/internal/metrics"
)

// Span is one contiguous interval a rank spent in one phase. Attrs
// optionally annotates the span (exported to trace viewers as args);
// spans recorded through the clock observer carry no attributes.
type Span struct {
	Phase    string
	From, To float64
	Attrs    map[string]string
}

// Event is an instantaneous occurrence on a rank's timeline (a fault
// firing, a recovery decision), optionally annotated with Attrs.
type Event struct {
	Name  string
	At    float64
	Attrs map[string]string
}

// Collector accumulates phase spans from many ranks. It is safe for
// concurrent use (ranks report from their own goroutines).
type Collector struct {
	mu     sync.Mutex
	ranks  map[int][]Span
	events map[int][]Event
	flows  []Flow
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{ranks: make(map[int][]Span), events: make(map[int][]Event)}
}

// RecordEvent adds a point event to a rank's timeline (rendered as an 'X'
// on the Gantt chart). The mpi layer's OnFault hook feeds this.
func (c *Collector) RecordEvent(rank int, name string, at float64) {
	c.RecordEventAttrs(rank, name, at, nil)
}

// RecordEventAttrs is RecordEvent with key/value annotations that trace
// exporters surface (Chrome trace args, Perfetto's argument panel).
func (c *Collector) RecordEventAttrs(rank int, name string, at float64, attrs map[string]string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events[rank] = append(c.events[rank], Event{Name: name, At: at, Attrs: attrs})
}

// Events returns a copy of one rank's point events.
func (c *Collector) Events(rank int) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events[rank]...)
}

// Record adds one interval to a rank's timeline, coalescing it with the
// previous span when the phase continues.
func (c *Collector) Record(rank int, phase string, from, to float64) {
	c.RecordAttrs(rank, phase, from, to, nil)
}

// RecordAttrs is Record with key/value annotations. An annotated span is
// never coalesced into its predecessor (the annotation marks it distinct).
func (c *Collector) RecordAttrs(rank int, phase string, from, to float64, attrs map[string]string) {
	if to <= from {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	spans := c.ranks[rank]
	if n := len(spans); attrs == nil && n > 0 && spans[n-1].Phase == phase && spans[n-1].Attrs == nil && spans[n-1].To >= from {
		if to > spans[n-1].To {
			spans[n-1].To = to
		}
		c.ranks[rank] = spans
		return
	}
	c.ranks[rank] = append(spans, Span{Phase: phase, From: from, To: to, Attrs: attrs})
}

// Observer returns a recording function bound to one rank, in the shape
// simtime.Clock.SetObserver expects.
func (c *Collector) Observer(rank int) func(phase string, from, to float64) {
	return func(phase string, from, to float64) {
		c.Record(rank, phase, from, to)
	}
}

// Ranks returns the recorded rank ids in order (ranks with only point
// events included).
func (c *Collector) Ranks() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[int]bool, len(c.ranks))
	out := make([]int, 0, len(c.ranks))
	for r := range c.ranks {
		seen[r] = true
		out = append(out, r)
	}
	for r := range c.events {
		if !seen[r] {
			out = append(out, r)
		}
	}
	sort.Ints(out)
	return out
}

// Spans returns a copy of one rank's timeline.
func (c *Collector) Spans(rank int) []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Span(nil), c.ranks[rank]...)
}

// End returns the latest recorded time (spans or events).
func (c *Collector) End() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	end := 0.0
	// Scan every span, not just each rank's last: spans may be recorded out
	// of time order (e.g. replayed from a merged log).
	for _, spans := range c.ranks {
		for _, s := range spans {
			if s.To > end {
				end = s.To
			}
		}
	}
	for _, evs := range c.events {
		for _, e := range evs {
			if e.At > end {
				end = e.At
			}
		}
	}
	return end
}

// phaseGlyphs maps phase names to single-character glyphs for the chart.
var phaseGlyphs = map[string]byte{
	"copy":   'C',
	"input":  'I',
	"search": 'S',
	"output": 'O',
	"other":  '-',
	"idle":   ' ',
}

// Glyph returns the chart character for a phase (first letter otherwise).
func Glyph(phase string) byte {
	if g, ok := phaseGlyphs[phase]; ok {
		return g
	}
	if phase == "" {
		return '?'
	}
	return phase[0]
}

// Render writes an ASCII Gantt chart: one row per rank, width columns of
// phase glyphs spanning [0, End()].
func (c *Collector) Render(w io.Writer, width int) {
	if width < 10 {
		width = 10
	}
	end := c.End()
	if end == 0 {
		fmt.Fprintln(w, "trace: empty timeline")
		return
	}
	fmt.Fprintf(w, "timeline 0 .. %.3f virtual seconds  (C=copy I=input S=search O=output -=other, blank=idle, X=event)\n", end)
	for _, rank := range c.Ranks() {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for _, s := range c.Spans(rank) {
			// Half-open column interval [from, to): abutting spans share a
			// boundary time but never a column, so neither overwrites the
			// other's edge glyph.
			from := int(s.From / end * float64(width))
			to := int(s.To / end * float64(width))
			if to <= from {
				to = from + 1 // a tiny span still paints one column
			}
			if to > width {
				to = width
			}
			if from >= width {
				from = width - 1
			}
			g := Glyph(s.Phase)
			for i := from; i < to; i++ {
				row[i] = g
			}
		}
		// Point events overwrite phase glyphs: they are the thing to see.
		for _, e := range c.Events(rank) {
			i := int(e.At / end * float64(width))
			if i >= width {
				i = width - 1
			}
			row[i] = 'X'
		}
		fmt.Fprintf(w, "rank %3d |%s|\n", rank, string(row))
	}
}

// Summary prints, per rank and phase, the total time plus the exact
// p50/p95/p99 of that phase's span durations (nearest-rank over the
// recorded spans), then the rank's point events:
//
//	rank   0: search=0.500(p50=0.250 p95=0.450 p99=0.450) ...
func (c *Collector) Summary(w io.Writer) {
	for _, rank := range c.Ranks() {
		totals := map[string]float64{}
		durs := map[string][]float64{}
		var order []string
		for _, s := range c.Spans(rank) {
			if _, seen := totals[s.Phase]; !seen {
				order = append(order, s.Phase)
			}
			totals[s.Phase] += s.To - s.From
			durs[s.Phase] = append(durs[s.Phase], s.To-s.From)
		}
		var parts []string
		for _, p := range order {
			parts = append(parts, fmt.Sprintf("%s=%.3f(p50=%.3f p95=%.3f p99=%.3f)",
				p, totals[p],
				metrics.ExactQuantile(durs[p], 0.50),
				metrics.ExactQuantile(durs[p], 0.95),
				metrics.ExactQuantile(durs[p], 0.99)))
		}
		for _, e := range c.Events(rank) {
			parts = append(parts, fmt.Sprintf("%s@%.3f", e.Name, e.At))
		}
		fmt.Fprintf(w, "rank %3d: %s\n", rank, strings.Join(parts, " "))
	}
}
