package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"parblast/internal/metrics"
)

// Chrome trace-event export: serializes the collector into the Chrome
// trace-event JSON format (the "JSON Array Format" of the Trace Event
// spec), loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Mapping:
//   - the whole simulated cluster is one process (pid 0) named by the
//     caller's metadata;
//   - each MPI rank is one thread (tid = rank), so Perfetto draws one
//     track per rank stacked in rank order;
//   - phase spans become "X" (complete) events with ts/dur in
//     microseconds of VIRTUAL time — 1 µs on the viewer's axis is 1 µs of
//     simulated time;
//   - point events (fault firings, recovery decisions) become "i"
//     (instant) events with thread scope, drawn as markers on the rank's
//     track;
//   - causal flows (message deliveries, collective contributions and
//     releases) become "s"/"f" flow-event pairs sharing an id: Perfetto
//     draws an arrow from the send point on the source rank's track to
//     the delivery point on the destination's. The finish end binds to
//     the enclosing slice (bp "e") so the arrow lands inside the phase
//     span that consumed the message;
//   - metrics histograms/distributions become "C" counter tracks (one
//     sample per bucket, ts = bucket index), so latency and volume
//     distributions are visible next to the rank timelines;
//   - span/event attributes and caller metadata ride in "args".
//
// The output is deterministic: ranks ascending, each rank's spans in
// recorded order, flows by id, counter series in snapshot (name, rank)
// order, fixed field order (struct order for events, sorted keys for args
// maps), so repeated runs of the same simulation produce byte-identical
// trace files.

// chromeEvent is one entry of the traceEvents array. Field order here is
// the serialization order; fields absent from pre-flow traces are all
// omitempty, so histories without flows serialize exactly as before.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// usec converts virtual seconds to the trace format's microseconds,
// rounded so abutting spans keep exact shared boundaries.
func usec(s float64) float64 {
	return math.Round(s * 1e6)
}

// attrArgs widens a string attribute map into the args form (nil in, nil
// out, so attribute-free events keep omitting the args key).
func attrArgs(attrs map[string]string) map[string]any {
	if attrs == nil {
		return nil
	}
	out := make(map[string]any, len(attrs))
	for k, v := range attrs {
		out[k] = v
	}
	return out
}

// WriteChromeTrace writes the whole collector as a Chrome trace-event JSON
// document. meta annotates the run (engine, platform, procs, ...): it
// becomes both the process name and the top-level otherData block. The
// document is indented and deterministic (see package comment), so golden
// tests can compare bytes.
func (c *Collector) WriteChromeTrace(w io.Writer, meta map[string]string) error {
	return c.WriteChromeTraceMetrics(w, meta, metrics.Snapshot{})
}

// WriteChromeTraceMetrics is WriteChromeTrace plus counter tracks built
// from a metrics snapshot: every histogram and distribution series becomes
// one "C" track per (name, rank) with one sample per bucket.
func (c *Collector) WriteChromeTraceMetrics(w io.Writer, meta map[string]string, snap metrics.Snapshot) error {
	doc := chromeTrace{
		TraceEvents:     []chromeEvent{},
		DisplayTimeUnit: "ms",
	}
	if len(meta) > 0 {
		doc.OtherData = meta
	}
	procName := "parblast simulated cluster"
	if n, ok := meta["name"]; ok && n != "" {
		procName = n
	}
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "process_name",
		Ph:   "M",
		Pid:  0,
		Args: map[string]any{"name": procName},
	})
	for _, rank := range c.Ranks() {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  0,
			Tid:  rank,
			Args: map[string]any{"name": rankLabel(rank)},
		})
	}
	for _, rank := range c.Ranks() {
		for _, s := range c.Spans(rank) {
			dur := usec(s.To) - usec(s.From)
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: s.Phase,
				Ph:   "X",
				Ts:   usec(s.From),
				Dur:  &dur,
				Pid:  0,
				Tid:  rank,
				Args: attrArgs(s.Attrs),
			})
		}
		for _, e := range c.Events(rank) {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: e.Name,
				Ph:   "i",
				Ts:   usec(e.At),
				Pid:  0,
				Tid:  rank,
				S:    "t",
				Args: attrArgs(e.Attrs),
			})
		}
	}
	for _, f := range c.Flows() {
		id := fmt.Sprintf("%d", f.ID)
		args := map[string]any{"bytes": f.Bytes}
		if f.Batch >= 0 {
			args["batch"] = f.Batch
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: f.Op,
			Cat:  f.Kind,
			Ph:   "s",
			Ts:   usec(f.SendAt),
			Pid:  0,
			Tid:  f.Src,
			ID:   id,
			Args: args,
		})
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: f.Op,
			Cat:  f.Kind,
			Ph:   "f",
			Ts:   usec(f.RecvAt),
			Pid:  0,
			Tid:  f.Dst,
			ID:   id,
			BP:   "e",
		})
	}
	for _, hp := range snap.Histograms {
		doc.TraceEvents = append(doc.TraceEvents, counterTrack(hp.Name, hp.Rank, hp.Counts)...)
	}
	for _, dp := range snap.Distributions {
		doc.TraceEvents = append(doc.TraceEvents, counterTrack(dp.Name, dp.Rank, dp.Counts)...)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// counterTrack renders one bucket-count series as a Perfetto counter
// track: one "C" sample per bucket at ts = bucket index (the x-axis is
// bucket ordinal, not time — the track shows the distribution's shape).
func counterTrack(name string, rank int, counts []int64) []chromeEvent {
	out := make([]chromeEvent, 0, len(counts))
	for i, n := range counts {
		out = append(out, chromeEvent{
			Name: name,
			Ph:   "C",
			Ts:   float64(i),
			Pid:  0,
			Tid:  rank,
			Args: map[string]any{"count": n},
		})
	}
	return out
}

// rankLabel names a rank's track: rank 0 is the master in both engines.
func rankLabel(rank int) string {
	if rank == 0 {
		return "rank 0 (master)"
	}
	return fmt.Sprintf("rank %d", rank)
}
