package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Chrome trace-event export: serializes the collector into the Chrome
// trace-event JSON format (the "JSON Array Format" of the Trace Event
// spec), loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Mapping:
//   - the whole simulated cluster is one process (pid 0) named by the
//     caller's metadata;
//   - each MPI rank is one thread (tid = rank), so Perfetto draws one
//     track per rank stacked in rank order;
//   - phase spans become "X" (complete) events with ts/dur in
//     microseconds of VIRTUAL time — 1 µs on the viewer's axis is 1 µs of
//     simulated time;
//   - point events (fault firings, recovery decisions) become "i"
//     (instant) events with thread scope, drawn as markers on the rank's
//     track;
//   - span/event attributes and caller metadata ride in "args".
//
// The output is deterministic: ranks ascending, each rank's spans in
// recorded order, fixed field order (struct order for events, sorted keys
// for args maps), so repeated runs of the same simulation produce
// byte-identical trace files.

// chromeEvent is one entry of the traceEvents array. Field order here is
// the serialization order.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// usec converts virtual seconds to the trace format's microseconds,
// rounded so abutting spans keep exact shared boundaries.
func usec(s float64) float64 {
	return math.Round(s * 1e6)
}

// WriteChromeTrace writes the whole collector as a Chrome trace-event JSON
// document. meta annotates the run (engine, platform, procs, ...): it
// becomes both the process name and the top-level otherData block. The
// document is indented and deterministic (see package comment), so golden
// tests can compare bytes.
func (c *Collector) WriteChromeTrace(w io.Writer, meta map[string]string) error {
	doc := chromeTrace{
		TraceEvents:     []chromeEvent{},
		DisplayTimeUnit: "ms",
	}
	if len(meta) > 0 {
		doc.OtherData = meta
	}
	procName := "parblast simulated cluster"
	if n, ok := meta["name"]; ok && n != "" {
		procName = n
	}
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "process_name",
		Ph:   "M",
		Pid:  0,
		Args: map[string]string{"name": procName},
	})
	for _, rank := range c.Ranks() {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  0,
			Tid:  rank,
			Args: map[string]string{"name": rankLabel(rank)},
		})
	}
	for _, rank := range c.Ranks() {
		for _, s := range c.Spans(rank) {
			dur := usec(s.To) - usec(s.From)
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: s.Phase,
				Ph:   "X",
				Ts:   usec(s.From),
				Dur:  &dur,
				Pid:  0,
				Tid:  rank,
				Args: s.Attrs,
			})
		}
		for _, e := range c.Events(rank) {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: e.Name,
				Ph:   "i",
				Ts:   usec(e.At),
				Pid:  0,
				Tid:  rank,
				S:    "t",
				Args: e.Attrs,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// rankLabel names a rank's track: rank 0 is the master in both engines.
func rankLabel(rank int) string {
	if rank == 0 {
		return "rank 0 (master)"
	}
	return fmt.Sprintf("rank %d", rank)
}
