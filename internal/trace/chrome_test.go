package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"parblast/internal/metrics"
)

// goldenCollector builds a small fixed timeline: two ranks, abutting spans,
// one annotated span, one fault event.
func goldenCollector() *Collector {
	c := NewCollector()
	c.Record(0, "search", 0, 0.5)
	c.Record(0, "output", 0.5, 0.75)
	c.RecordAttrs(1, "search", 0, 0.6, map[string]string{"part": "3"})
	c.RecordEventAttrs(1, "crash", 0.6, map[string]string{"kind": "crash"})
	return c
}

// TestChromeTraceGolden pins the exporter's exact serialization: field
// order, rank/span ordering, microsecond timestamps, metadata records. Any
// byte-level drift (which would churn committed trace artifacts) fails.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	err := goldenCollector().WriteChromeTrace(&buf, map[string]string{"engine": "pio", "procs": "2"})
	if err != nil {
		t.Fatal(err)
	}
	const want = `{
 "traceEvents": [
  {
   "name": "process_name",
   "ph": "M",
   "ts": 0,
   "pid": 0,
   "tid": 0,
   "args": {
    "name": "parblast simulated cluster"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 0,
   "tid": 0,
   "args": {
    "name": "rank 0 (master)"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 0,
   "tid": 1,
   "args": {
    "name": "rank 1"
   }
  },
  {
   "name": "search",
   "ph": "X",
   "ts": 0,
   "dur": 500000,
   "pid": 0,
   "tid": 0
  },
  {
   "name": "output",
   "ph": "X",
   "ts": 500000,
   "dur": 250000,
   "pid": 0,
   "tid": 0
  },
  {
   "name": "search",
   "ph": "X",
   "ts": 0,
   "dur": 600000,
   "pid": 0,
   "tid": 1,
   "args": {
    "part": "3"
   }
  },
  {
   "name": "crash",
   "ph": "i",
   "ts": 600000,
   "pid": 0,
   "tid": 1,
   "s": "t",
   "args": {
    "kind": "crash"
   }
  }
 ],
 "displayTimeUnit": "ms",
 "otherData": {
  "engine": "pio",
  "procs": "2"
 }
}
`
	if got := buf.String(); got != want {
		t.Fatalf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestChromeTraceDeterministic: two identical histories export to identical
// bytes, and the document parses back as valid JSON with the expected
// top-level shape.
func TestChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := goldenCollector().WriteChromeTrace(&a, nil); err != nil {
		t.Fatal(err)
	}
	if err := goldenCollector().WriteChromeTrace(&b, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("exports differ:\n%s\n%s", a.String(), b.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
}

// TestConcurrentRecordAndSnapshot is the telemetry -race gate: rank
// goroutines record spans and events into the collector and bump metrics
// while the main goroutine snapshots the registry and exports the trace
// mid-run. Run with -race (scripts/check.sh does).
func TestConcurrentRecordAndSnapshot(t *testing.T) {
	c := NewCollector()
	reg := metrics.NewRegistry()
	const ranks, iters = 8, 200
	var wg sync.WaitGroup
	for rk := 0; rk < ranks; rk++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				from := float64(i)
				c.Record(rank, "search", from, from+0.5)
				c.Record(rank, "output", from+0.5, from+1)
				if i%50 == 0 {
					c.RecordEvent(rank, "mark", from)
				}
				reg.Counter("mpi.send.tag01.msgs", rank).Inc()
				reg.Histogram("mpi.msg_bytes", rank, metrics.SizeBuckets()).Observe(float64(i))
			}
		}(rk)
	}
	// Mid-run observers: snapshots and exports race against the recorders.
	for i := 0; i < 10; i++ {
		_ = reg.Snapshot()
		var sink bytes.Buffer
		if err := c.WriteChromeTrace(&sink, nil); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := reg.Snapshot().CounterTotal("mpi.send.tag01.msgs"); got != ranks*iters {
		t.Fatalf("counter total = %d, want %d", got, ranks*iters)
	}
	if len(c.Ranks()) != ranks {
		t.Fatalf("ranks traced = %d, want %d", len(c.Ranks()), ranks)
	}
}
