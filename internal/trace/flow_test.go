package trace

import (
	"bytes"
	"encoding/binary"
	"math"
	"sync"
	"testing"

	"parblast/internal/metrics"
)

// flowCollector extends the golden fixture with two rank timelines, a p2p
// delivery flow, a collective contribution flow, and one latency
// distribution — every new exporter feature in one document.
func flowCollector() (*Collector, *metrics.Registry) {
	c := NewCollector()
	c.Record(0, "search", 0, 0.5)
	c.Record(0, "output", 0.5, 0.75)
	c.Record(1, "idle", 0, 0.4)
	c.Record(1, "search", 0.4, 0.7)
	c.RecordFlow(Flow{Kind: FlowMsg, Op: "shuffle", ID: 3, Batch: 0, Src: 0, Dst: 1, Bytes: 128, SendAt: 0.25, RecvAt: 0.4})
	c.RecordFlow(Flow{Kind: FlowContrib, Op: "reduce", ID: 7, Batch: -1, Src: 1, Dst: 0, Bytes: 64, SendAt: 0.7, RecvAt: 0.75})
	reg := metrics.NewRegistry()
	d := reg.Distribution("engine.query_latency_s", 0, metrics.LatencyBuckets())
	d.Observe(0.05)
	d.Observe(0.7)
	return c, reg
}

// TestChromeTraceFlowGolden pins the flow-and-counter exporter byte for
// byte: "s"/"f" pairs share an id, the finish end binds to the enclosing
// slice (bp "e"), batch context rides in args only when set, and the
// distribution becomes a "C" counter track with one sample per bucket.
func TestChromeTraceFlowGolden(t *testing.T) {
	c, reg := flowCollector()
	var buf bytes.Buffer
	if err := c.WriteChromeTraceMetrics(&buf, map[string]string{"engine": "pio"}, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	const want = `{
 "traceEvents": [
  {
   "name": "process_name",
   "ph": "M",
   "ts": 0,
   "pid": 0,
   "tid": 0,
   "args": {
    "name": "parblast simulated cluster"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 0,
   "tid": 0,
   "args": {
    "name": "rank 0 (master)"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 0,
   "tid": 1,
   "args": {
    "name": "rank 1"
   }
  },
  {
   "name": "search",
   "ph": "X",
   "ts": 0,
   "dur": 500000,
   "pid": 0,
   "tid": 0
  },
  {
   "name": "output",
   "ph": "X",
   "ts": 500000,
   "dur": 250000,
   "pid": 0,
   "tid": 0
  },
  {
   "name": "idle",
   "ph": "X",
   "ts": 0,
   "dur": 400000,
   "pid": 0,
   "tid": 1
  },
  {
   "name": "search",
   "ph": "X",
   "ts": 400000,
   "dur": 300000,
   "pid": 0,
   "tid": 1
  },
  {
   "name": "shuffle",
   "cat": "msg",
   "ph": "s",
   "ts": 250000,
   "pid": 0,
   "tid": 0,
   "id": "3",
   "args": {
    "batch": 0,
    "bytes": 128
   }
  },
  {
   "name": "shuffle",
   "cat": "msg",
   "ph": "f",
   "ts": 400000,
   "pid": 0,
   "tid": 1,
   "id": "3",
   "bp": "e"
  },
  {
   "name": "reduce",
   "cat": "contrib",
   "ph": "s",
   "ts": 700000,
   "pid": 0,
   "tid": 1,
   "id": "7",
   "args": {
    "bytes": 64
   }
  },
  {
   "name": "reduce",
   "cat": "contrib",
   "ph": "f",
   "ts": 750000,
   "pid": 0,
   "tid": 0,
   "id": "7",
   "bp": "e"
  },
  {
   "name": "engine.query_latency_s",
   "ph": "C",
   "ts": 0,
   "pid": 0,
   "tid": 0,
   "args": {
    "count": 0
   }
  },
  {
   "name": "engine.query_latency_s",
   "ph": "C",
   "ts": 1,
   "pid": 0,
   "tid": 0,
   "args": {
    "count": 0
   }
  },
  {
   "name": "engine.query_latency_s",
   "ph": "C",
   "ts": 2,
   "pid": 0,
   "tid": 0,
   "args": {
    "count": 0
   }
  },
  {
   "name": "engine.query_latency_s",
   "ph": "C",
   "ts": 3,
   "pid": 0,
   "tid": 0,
   "args": {
    "count": 1
   }
  },
  {
   "name": "engine.query_latency_s",
   "ph": "C",
   "ts": 4,
   "pid": 0,
   "tid": 0,
   "args": {
    "count": 1
   }
  },
  {
   "name": "engine.query_latency_s",
   "ph": "C",
   "ts": 5,
   "pid": 0,
   "tid": 0,
   "args": {
    "count": 0
   }
  },
  {
   "name": "engine.query_latency_s",
   "ph": "C",
   "ts": 6,
   "pid": 0,
   "tid": 0,
   "args": {
    "count": 0
   }
  },
  {
   "name": "engine.query_latency_s",
   "ph": "C",
   "ts": 7,
   "pid": 0,
   "tid": 0,
   "args": {
    "count": 0
   }
  }
 ],
 "displayTimeUnit": "ms",
 "otherData": {
  "engine": "pio"
 }
}
`
	if got := buf.String(); got != want {
		t.Fatalf("flow golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestSummaryPercentilesGolden pins the summary's per-phase percentile
// columns: exact nearest-rank p50/p95/p99 over each phase's span durations.
func TestSummaryPercentilesGolden(t *testing.T) {
	c := NewCollector()
	c.Record(0, "search", 0, 1)
	c.Record(0, "output", 1, 1.5)
	c.Record(0, "search", 2, 4) // gap prevents coalescing: two search spans
	c.Record(1, "idle", 0, 2)
	c.RecordEvent(1, "crash", 1)
	var buf bytes.Buffer
	c.Summary(&buf)
	const want = "rank   0: search=3.000(p50=1.000 p95=2.000 p99=2.000) output=0.500(p50=0.500 p95=0.500 p99=0.500)\n" +
		"rank   1: idle=2.000(p50=2.000 p95=2.000 p99=2.000) crash@1.000\n"
	if got := buf.String(); got != want {
		t.Fatalf("summary golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFlowsDeterministicOrder: Flows() sorts by (ID, Src, Dst) no matter the
// recording interleave.
func TestFlowsDeterministicOrder(t *testing.T) {
	c := NewCollector()
	c.RecordFlow(Flow{ID: 5, Src: 1, Dst: 0, SendAt: 1, RecvAt: 2})
	c.RecordFlow(Flow{ID: 2, Src: 0, Dst: 1, SendAt: 0, RecvAt: 1})
	c.RecordFlow(Flow{ID: 5, Src: 0, Dst: 2, SendAt: 1, RecvAt: 2})
	got := c.Flows()
	if len(got) != 3 || got[0].ID != 2 || got[1].ID != 5 || got[1].Src != 0 || got[2].Src != 1 {
		t.Fatalf("flows out of order: %+v", got)
	}
}

// TestBuildFlowGraphDrops: non-finite and non-increasing edges are rejected
// and counted, never indexed.
func TestBuildFlowGraphDrops(t *testing.T) {
	g := BuildFlowGraph([]Flow{
		{ID: 1, Dst: 0, SendAt: 0, RecvAt: 1},            // kept
		{ID: 2, Dst: 0, SendAt: 1, RecvAt: 1},            // zero-length
		{ID: 3, Dst: 0, SendAt: 2, RecvAt: 1},            // backwards
		{ID: 4, Dst: 0, SendAt: math.NaN(), RecvAt: 1},   // NaN
		{ID: 5, Dst: 0, SendAt: 0, RecvAt: math.Inf(1)},  // Inf
		{ID: 6, Dst: 1, SendAt: 0, RecvAt: math.Inf(-1)}, // -Inf
	})
	if g.Dropped != 5 {
		t.Fatalf("dropped = %d, want 5", g.Dropped)
	}
	if len(g.Inbound[0]) != 1 || g.Inbound[0][0].ID != 1 {
		t.Fatalf("inbound wrong: %+v", g.Inbound)
	}
}

// TestLatestInbound: the window is half-open (after, upTo], and RecvAt ties
// resolve to the largest ID.
func TestLatestInbound(t *testing.T) {
	g := BuildFlowGraph([]Flow{
		{ID: 1, Dst: 0, SendAt: 0, RecvAt: 1},
		{ID: 2, Dst: 0, SendAt: 0, RecvAt: 2},
		{ID: 3, Dst: 0, SendAt: 0, RecvAt: 2},
	})
	if f, ok := g.LatestInbound(0, 0, 3); !ok || f.ID != 3 {
		t.Fatalf("want tie-broken ID 3, got %+v ok=%v", f, ok)
	}
	if f, ok := g.LatestInbound(0, 0, 1.5); !ok || f.ID != 1 {
		t.Fatalf("want ID 1 in (0, 1.5], got %+v ok=%v", f, ok)
	}
	if _, ok := g.LatestInbound(0, 2, 3); ok {
		t.Fatal("window (2, 3] should be empty")
	}
	if _, ok := g.LatestInbound(0, 1, 1); ok {
		t.Fatal("empty window (1, 1] should miss")
	}
	if _, ok := g.LatestInbound(9, 0, 10); ok {
		t.Fatal("unknown rank should have no inbound edges")
	}
}

// TestConcurrentFlowRecording is the flow-path -race gate: rank goroutines
// record flows and spans while the main goroutine snapshots Flows() and
// exports the full trace (with counter tracks) mid-run.
func TestConcurrentFlowRecording(t *testing.T) {
	c := NewCollector()
	reg := metrics.NewRegistry()
	const ranks, iters = 8, 200
	var wg sync.WaitGroup
	for rk := 0; rk < ranks; rk++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				from := float64(i)
				c.Record(rank, "search", from, from+0.5)
				c.RecordFlow(Flow{
					Kind: FlowMsg, Op: "shuffle",
					ID:  int64(rank*iters + i),
					Src: rank, Dst: (rank + 1) % ranks,
					Bytes: i, Batch: i % 4,
					SendAt: from, RecvAt: from + 0.25,
				})
				reg.Distribution("engine.query_latency_s", rank, metrics.LatencyBuckets()).Observe(from / 100)
			}
		}(rk)
	}
	for i := 0; i < 10; i++ {
		_ = c.Flows()
		var sink bytes.Buffer
		if err := c.WriteChromeTraceMetrics(&sink, nil, reg.Snapshot()); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := len(c.Flows()); got != ranks*iters {
		t.Fatalf("flows recorded = %d, want %d", got, ranks*iters)
	}
	g := BuildFlowGraph(c.Flows())
	if g.Dropped != 0 {
		t.Fatalf("dropped %d well-formed flows", g.Dropped)
	}
}

// FuzzFlowGraph: the graph builder must never panic and never admit an
// edge that could close a cycle — every surviving edge strictly increases
// in time, and every inbound list is sorted by (RecvAt, ID).
func FuzzFlowGraph(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	seed := make([]byte, 0, 64)
	for i := 0; i < 64; i++ {
		seed = append(seed, byte(i*37))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		var flows []Flow
		for len(data) >= 20 {
			flows = append(flows, Flow{
				ID:     int64(int16(binary.LittleEndian.Uint16(data[0:]))),
				Src:    int(int8(data[2])),
				Dst:    int(int8(data[3])),
				SendAt: math.Float64frombits(binary.LittleEndian.Uint64(data[4:])),
				RecvAt: math.Float64frombits(binary.LittleEndian.Uint64(data[12:])),
			})
			data = data[20:]
		}
		g := BuildFlowGraph(flows) // must not panic
		kept := 0
		for dst, in := range g.Inbound {
			kept += len(in)
			for i, e := range in {
				if e.Dst != dst {
					t.Fatalf("edge indexed under wrong rank: %+v at %d", e, dst)
				}
				// Acyclicity witness: only strictly time-increasing finite
				// edges survive, so no walk can return to an earlier point.
				if !(e.RecvAt > e.SendAt) || math.IsInf(e.SendAt, 0) || math.IsInf(e.RecvAt, 0) {
					t.Fatalf("non-causal edge admitted: %+v", e)
				}
				if i > 0 && (in[i-1].RecvAt > e.RecvAt ||
					(in[i-1].RecvAt == e.RecvAt && in[i-1].ID > e.ID)) {
					t.Fatalf("inbound list unsorted at %d: %+v then %+v", dst, in[i-1], e)
				}
			}
		}
		if kept+g.Dropped != len(flows) {
			t.Fatalf("kept %d + dropped %d != %d total", kept, g.Dropped, len(flows))
		}
		// The wait-for traversal primitive must respect its window on any input.
		for dst := range g.Inbound {
			if e, ok := g.LatestInbound(dst, 0, math.MaxFloat64); ok && e.RecvAt <= 0 {
				t.Fatalf("LatestInbound returned edge outside window: %+v", e)
			}
		}
	})
}
