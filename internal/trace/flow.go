package trace

import (
	"math"
	"sort"
)

// Causal message-flow recording: every delivered MPI message (and every
// collective contribution/release) becomes one Flow edge linking a send
// point on the source rank's timeline to a delivery point on the
// destination rank's. The mpi layer emits these through its OnFlow hook
// (this package never imports mpi — the clock-neutrality contract), the
// Chrome exporter serializes them as flow-event pairs, and the report
// package's wait-for analyzer walks them backward to compute the exact
// cross-rank critical path.

// Flow kinds. A "msg" edge is one point-to-point message delivery; a
// "contrib" edge links one collective participant's entry to the
// operation's fold site (the last-arriving live rank, whose entry clock
// determines the release); a "release" edge links the fold site back to
// each participant's resume point.
const (
	FlowMsg     = "msg"
	FlowContrib = "contrib"
	FlowRelease = "release"
)

// Flow is one causal edge between two rank timelines. SendAt is the
// source's virtual time when the payload left it; RecvAt is the
// destination's virtual time when delivery (or collective release)
// completed. Batch is the query-batch trace context stamped at send time
// (-1 = none). ID is unique and deterministic within one run.
type Flow struct {
	Kind   string
	Op     string // "tagNN" for messages, the collective op name otherwise
	ID     int64
	Batch  int
	Src    int
	Dst    int
	Bytes  int
	SendAt float64
	RecvAt float64
}

// RecordFlow adds one causal edge. Safe for concurrent use.
func (c *Collector) RecordFlow(f Flow) {
	c.mu.Lock()
	c.flows = append(c.flows, f)
	c.mu.Unlock()
}

// Flows returns a copy of every recorded edge, ordered by (ID, Src, Dst)
// — deterministic regardless of recording interleave.
func (c *Collector) Flows() []Flow {
	c.mu.Lock()
	out := append([]Flow(nil), c.flows...)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
	return out
}

// FlowGraph indexes causal edges by endpoint rank for the wait-for
// analysis. Only time-respecting edges survive construction (RecvAt
// strictly after SendAt, both finite), so every path through the graph
// strictly increases in time — the graph is acyclic by construction.
type FlowGraph struct {
	// Inbound maps each destination rank to its incoming edges, sorted by
	// (RecvAt, ID) ascending.
	Inbound map[int][]Flow
	// Dropped counts edges rejected for non-increasing or non-finite
	// timestamps.
	Dropped int
}

// BuildFlowGraph sanitizes and indexes a set of edges. Edges with NaN or
// infinite endpoints, or with RecvAt <= SendAt, are dropped (counted in
// Dropped): admitting them could create zero-length causal loops.
func BuildFlowGraph(flows []Flow) *FlowGraph {
	g := &FlowGraph{Inbound: make(map[int][]Flow)}
	for _, f := range flows {
		if !finite(f.SendAt) || !finite(f.RecvAt) || f.RecvAt <= f.SendAt {
			g.Dropped++
			continue
		}
		g.Inbound[f.Dst] = append(g.Inbound[f.Dst], f)
	}
	for dst := range g.Inbound {
		in := g.Inbound[dst]
		sort.Slice(in, func(i, j int) bool {
			if in[i].RecvAt != in[j].RecvAt {
				return in[i].RecvAt < in[j].RecvAt
			}
			return in[i].ID < in[j].ID
		})
	}
	return g
}

// LatestInbound returns the edge into dst with the largest RecvAt in the
// half-open window (after, upTo], preferring the largest ID on RecvAt
// ties. ok=false when no edge lands in the window.
func (g *FlowGraph) LatestInbound(dst int, after, upTo float64) (Flow, bool) {
	in := g.Inbound[dst]
	// Binary search for the first edge with RecvAt > upTo, then walk back.
	lo := sort.Search(len(in), func(i int) bool { return in[i].RecvAt > upTo })
	if lo == 0 {
		return Flow{}, false
	}
	best := in[lo-1]
	if best.RecvAt <= after {
		return Flow{}, false
	}
	// Prefer the largest ID among equal-RecvAt edges (the sort put it last).
	return best, true
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
