package trace

import (
	"bytes"
	"strings"
	"testing"

	"parblast/internal/mpi"
	"parblast/internal/simtime"
)

func TestCollectorCoalesces(t *testing.T) {
	c := NewCollector()
	c.Record(0, "search", 0, 1)
	c.Record(0, "search", 1, 2) // contiguous same phase → coalesced
	c.Record(0, "output", 2, 3)
	spans := c.Spans(0)
	if len(spans) != 2 {
		t.Fatalf("%d spans, want 2: %v", len(spans), spans)
	}
	if spans[0].From != 0 || spans[0].To != 2 || spans[0].Phase != "search" {
		t.Fatalf("coalesced span wrong: %+v", spans[0])
	}
	if c.End() != 3 {
		t.Fatalf("end = %g", c.End())
	}
	// Zero-length intervals ignored.
	c.Record(0, "output", 3, 3)
	if len(c.Spans(0)) != 2 {
		t.Fatal("zero-length span recorded")
	}
}

func TestObserverViaClock(t *testing.T) {
	c := NewCollector()
	clock := simtime.NewClock()
	clock.SetObserver(c.Observer(4))
	clock.SetPhase(simtime.PhaseSearch)
	clock.Advance(2)
	clock.SetPhase(simtime.PhaseOutput)
	clock.Advance(1)
	spans := c.Spans(4)
	if len(spans) != 2 || spans[1].Phase != simtime.PhaseOutput {
		t.Fatalf("spans: %v", spans)
	}
	if got := c.Ranks(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("ranks: %v", got)
	}
}

func TestRenderAndSummary(t *testing.T) {
	c := NewCollector()
	c.Record(0, "search", 0, 8)
	c.Record(0, "output", 8, 10)
	c.Record(1, "idle", 0, 5)
	c.Record(1, "output", 5, 10)
	var buf bytes.Buffer
	c.Render(&buf, 40)
	out := buf.String()
	if !strings.Contains(out, "rank   0 |") || !strings.Contains(out, "rank   1 |") {
		t.Fatalf("render missing rows:\n%s", out)
	}
	if !strings.Contains(out, "SSS") || !strings.Contains(out, "OO") {
		t.Fatalf("render missing glyphs:\n%s", out)
	}
	buf.Reset()
	c.Summary(&buf)
	if !strings.Contains(buf.String(), "search=8.000") {
		t.Fatalf("summary wrong:\n%s", buf.String())
	}
	// Empty collector renders a notice, not a panic.
	buf.Reset()
	NewCollector().Render(&buf, 40)
	if !strings.Contains(buf.String(), "empty") {
		t.Fatal("empty render missing notice")
	}
}

func TestTraceThroughMPIRun(t *testing.T) {
	c := NewCollector()
	cfg := mpi.Config{
		Cost:     simtime.DefaultCostModel(),
		Observer: c.Observer,
	}
	_, err := mpi.RunConfig(2, cfg, func(r *mpi.Rank) error {
		r.SetPhase(simtime.PhaseSearch)
		r.Advance(0.5)
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Ranks()) != 2 {
		t.Fatalf("traced %d ranks", len(c.Ranks()))
	}
	for _, rank := range c.Ranks() {
		found := false
		for _, s := range c.Spans(rank) {
			if s.Phase == simtime.PhaseSearch && s.To-s.From >= 0.5 {
				found = true
			}
		}
		if !found {
			t.Fatalf("rank %d search span missing: %v", rank, c.Spans(rank))
		}
	}
}

// TestRenderAbuttingSpans: two spans sharing a boundary time must not share
// a column. The old inclusive fill (i <= to) painted one extra column per
// span, so whichever span was recorded later overwrote its neighbour's edge
// glyph — visible here because the later-in-time span is recorded FIRST.
func TestRenderAbuttingSpans(t *testing.T) {
	c := NewCollector()
	c.Record(7, "output", 5, 10)
	c.Record(7, "search", 0, 5)
	var buf bytes.Buffer
	c.Render(&buf, 10)
	out := buf.String()
	if !strings.Contains(out, "|SSSSSOOOOO|") {
		t.Fatalf("abutting spans mis-painted (want |SSSSSOOOOO|):\n%s", out)
	}
}

// TestRenderTinySpan: a span far narrower than one column still paints one
// column instead of disappearing — the half-open rewrite must keep the old
// fill's only virtue.
func TestRenderTinySpan(t *testing.T) {
	c := NewCollector()
	c.Record(0, "search", 0, 10) // sets the scale
	c.Record(1, "output", 4.2, 4.4)
	var buf bytes.Buffer
	c.Render(&buf, 10)
	out := buf.String()
	if !strings.Contains(out, "|    O     |") {
		t.Fatalf("tiny span lost (want one O column on rank 1):\n%s", out)
	}
}

func TestGlyphs(t *testing.T) {
	if Glyph("search") != 'S' || Glyph("idle") != ' ' || Glyph("weird") != 'w' || Glyph("") != '?' {
		t.Fatal("glyph mapping wrong")
	}
}

// TestEventsOnTimeline: point events (fault marks) render as 'X' over the
// phase glyphs, appear in the summary, and extend Ranks/End when a rank has
// only events.
func TestEventsOnTimeline(t *testing.T) {
	c := NewCollector()
	c.Record(0, "search", 0, 10)
	c.RecordEvent(0, "crash", 5)
	c.RecordEvent(2, "degrade", 12) // rank with no spans at all

	if got := c.Ranks(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Ranks() = %v, want [0 2]", got)
	}
	if got := c.End(); got != 12 {
		t.Fatalf("End() = %g, want 12 (event past all spans)", got)
	}
	evs := c.Events(0)
	if len(evs) != 1 || evs[0].Name != "crash" || evs[0].At != 5 {
		t.Fatalf("Events(0) = %v", evs)
	}

	var buf bytes.Buffer
	c.Render(&buf, 24)
	out := buf.String()
	if !strings.Contains(out, "X") {
		t.Fatalf("render missing event mark:\n%s", out)
	}
	if !strings.Contains(out, "X=event") {
		t.Fatalf("legend missing event glyph:\n%s", out)
	}

	buf.Reset()
	c.Summary(&buf)
	if !strings.Contains(buf.String(), "crash@5.000") {
		t.Fatalf("summary missing event:\n%s", buf.String())
	}
}
