package stats

import (
	"fmt"
	"math"

	"parblast/internal/matrix"
)

// First-principles computation of ungapped Karlin–Altschul parameters from
// a scoring matrix and background residue frequencies. The shipped constant
// sets (Blosum62Ungapped etc.) are NCBI's published values; this file
// recomputes λ and H from the matrix itself, both as a cross-check (a test
// asserts the computed λ matches the published one) and to support custom
// matrices for which no published constants exist.

// ComputeUngapped solves for the ungapped Karlin–Altschul parameters of a
// scoring system: λ is the unique positive root of
//
//	Σᵢⱼ pᵢ pⱼ exp(λ·sᵢⱼ) = 1
//
// and H = Σᵢⱼ pᵢ pⱼ sᵢⱼ λ exp(λ·sᵢⱼ) is the relative entropy. K is
// approximated with the standard H/λ-based bound (NCBI computes K with a
// lattice sum; the approximation is within a factor of ~2, adequate for
// custom matrices — the shipped defaults use published exact values).
//
// freqs must cover the strict alphabet and sum to ~1. The expected score
// must be negative and a positive score must exist, or no λ exists.
func ComputeUngapped(m *matrix.Matrix, freqs []float64) (Params, error) {
	strict := m.Alphabet().StrictSize()
	if len(freqs) < strict {
		return Params{}, fmt.Errorf("stats: %d frequencies for %d residues", len(freqs), strict)
	}
	var sum float64
	for i := 0; i < strict; i++ {
		sum += freqs[i]
	}
	if math.Abs(sum-1) > 0.02 {
		return Params{}, fmt.Errorf("stats: frequencies sum to %.3f, want 1", sum)
	}

	expected := 0.0
	anyPositive := false
	for i := 0; i < strict; i++ {
		for j := 0; j < strict; j++ {
			s := float64(m.Score(byte(i), byte(j)))
			expected += freqs[i] * freqs[j] * s
			if s > 0 {
				anyPositive = true
			}
		}
	}
	if expected >= 0 {
		return Params{}, fmt.Errorf("stats: expected score %.3f ≥ 0; local statistics undefined", expected)
	}
	if !anyPositive {
		return Params{}, fmt.Errorf("stats: no positive score in matrix")
	}

	// φ(λ) = Σ pᵢpⱼ exp(λ sᵢⱼ) − 1 is convex with φ(0)=0, φ'(0)=E[s]<0 and
	// φ(λ)→∞, so it has exactly one positive root. Bisection is robust.
	phi := func(lambda float64) float64 {
		v := -1.0
		for i := 0; i < strict; i++ {
			for j := 0; j < strict; j++ {
				v += freqs[i] * freqs[j] * math.Exp(lambda*float64(m.Score(byte(i), byte(j))))
			}
		}
		return v
	}
	lo, hi := 0.0, 1.0
	for phi(hi) < 0 {
		hi *= 2
		if hi > 100 {
			return Params{}, fmt.Errorf("stats: λ search diverged")
		}
	}
	for iter := 0; iter < 200 && hi-lo > 1e-10; iter++ {
		mid := (lo + hi) / 2
		if phi(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	lambda := (lo + hi) / 2

	// Relative entropy H.
	H := 0.0
	for i := 0; i < strict; i++ {
		for j := 0; j < strict; j++ {
			s := float64(m.Score(byte(i), byte(j)))
			H += freqs[i] * freqs[j] * s * lambda * math.Exp(lambda*s)
		}
	}

	// K approximation: K ≈ H/λ · C with C calibrated so BLOSUM62 under
	// Robinson frequencies lands at the published 0.134. For other
	// matrices this is an estimate; E-values shift by the K ratio only.
	K := H / lambda * 0.106
	if K <= 0 || math.IsNaN(K) {
		return Params{}, fmt.Errorf("stats: K computation failed (H=%g λ=%g)", H, lambda)
	}
	return Params{Lambda: lambda, K: K, H: H}, nil
}

// RobinsonFrequencies are the standard amino-acid background frequencies
// (Robinson & Robinson 1991) in the seq.ProteinLetters order, as used by
// NCBI BLAST's statistics.
var RobinsonFrequencies = []float64{
	0.07805, 0.05129, 0.04487, 0.05364, 0.01925,
	0.04264, 0.06295, 0.07377, 0.02199, 0.05142,
	0.09019, 0.05744, 0.02243, 0.03856, 0.05203,
	0.07120, 0.05841, 0.01330, 0.03216, 0.06441,
}

// UniformDNAFrequencies is the flat nucleotide background.
var UniformDNAFrequencies = []float64{0.25, 0.25, 0.25, 0.25}
