package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"parblast/internal/matrix"
)

func TestParamSelection(t *testing.T) {
	p, err := For(matrix.BLOSUM62, matrix.DefaultProteinGaps, true)
	if err != nil || p != Blosum62Gapped11_1 {
		t.Fatalf("gapped BLOSUM62 params wrong: %+v, %v", p, err)
	}
	p, err = For(matrix.BLOSUM62, matrix.DefaultProteinGaps, false)
	if err != nil || p != Blosum62Ungapped {
		t.Fatalf("ungapped BLOSUM62 params wrong: %+v", p)
	}
	// Non-default gaps fall back to ungapped (conservative).
	p, _ = For(matrix.BLOSUM62, matrix.GapPenalties{Open: 5, Extend: 5}, true)
	if p != Blosum62Ungapped {
		t.Fatalf("fallback params wrong: %+v", p)
	}
	p, _ = For(matrix.DNADefault, matrix.DefaultDNAGaps, true)
	if p != DNAGapped1_3_5_2 {
		t.Fatalf("DNA params wrong: %+v", p)
	}
}

func TestAllParamsValid(t *testing.T) {
	for _, p := range []Params{Blosum62Ungapped, Blosum62Gapped11_1, DNAUngapped1_3, DNAGapped1_3_5_2} {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := (Params{Lambda: 0, K: 1, H: 1}).Validate(); err == nil {
		t.Fatal("zero lambda accepted")
	}
}

func TestEValueMonotoneInScore(t *testing.T) {
	p := Blosum62Gapped11_1
	ss := NewSearchSpace(p, 300, 1_000_000, 2000)
	prev := math.Inf(1)
	for s := 20; s <= 500; s += 10 {
		e := p.EValue(s, ss)
		if e >= prev {
			t.Fatalf("E-value not strictly decreasing at score %d: %g >= %g", s, e, prev)
		}
		prev = e
	}
}

func TestBitScoreRoundTrip(t *testing.T) {
	p := Blosum62Gapped11_1
	for raw := 30; raw < 400; raw += 17 {
		bits := p.BitScore(raw)
		back := p.RawScore(bits)
		if back != raw {
			t.Fatalf("RawScore(BitScore(%d)) = %d", raw, back)
		}
	}
}

func TestScoreForEValueInvertsEValue(t *testing.T) {
	p := Blosum62Gapped11_1
	ss := NewSearchSpace(p, 250, 5_000_000, 10000)
	for _, e := range []float64{10, 1, 1e-3, 1e-10} {
		s := p.ScoreForEValue(e, ss)
		if got := p.EValue(s, ss); got > e {
			t.Fatalf("score %d for E=%g still gives E=%g", s, e, got)
		}
		if got := p.EValue(s-1, ss); got <= e {
			t.Fatalf("score %d is not minimal for E=%g (s-1 gives %g)", s, e, got)
		}
	}
}

func TestSearchSpaceCorrection(t *testing.T) {
	p := Blosum62Gapped11_1
	ss := NewSearchSpace(p, 300, 10_000_000, 30000)
	if ss.EffQueryLen >= ss.QueryLen || ss.EffQueryLen < 1 {
		t.Fatalf("effective query length %d not in (0, %d)", ss.EffQueryLen, ss.QueryLen)
	}
	if ss.EffDBLen >= ss.DBLen || ss.EffDBLen < 1 {
		t.Fatalf("effective DB length %d not in (0, %d)", ss.EffDBLen, ss.DBLen)
	}
}

func TestSearchSpaceDegenerate(t *testing.T) {
	p := Blosum62Gapped11_1
	// Tiny query: correction must not drive lengths negative.
	ss := NewSearchSpace(p, 5, 100, 3)
	if ss.EffQueryLen < 1 || ss.EffDBLen < 1 {
		t.Fatalf("degenerate space went non-positive: %+v", ss)
	}
	// Zero sequences defaults to 1.
	ss = NewSearchSpace(p, 100, 1000, 0)
	if ss.DBSeqs != 1 {
		t.Fatalf("DBSeqs not defaulted: %d", ss.DBSeqs)
	}
}

func TestEValueScalesWithSearchSpace(t *testing.T) {
	p := Blosum62Gapped11_1
	small := NewSearchSpace(p, 300, 1_000_000, 2000)
	big := NewSearchSpace(p, 300, 100_000_000, 200000)
	if p.EValue(100, big) <= p.EValue(100, small) {
		t.Fatal("bigger database should give bigger E-value for the same score")
	}
}

func TestFormatEValue(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0.0"},
		{1e-200, "0.0"},
		{3.2e-42, "3e-42"},
		{0.5, "0.50"},
		{2.3, "2.3"},
		{42.7, "43"},
	}
	for _, c := range cases {
		if got := FormatEValue(c.in); got != c.want {
			t.Fatalf("FormatEValue(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestEValuePositiveQuick(t *testing.T) {
	p := Blosum62Gapped11_1
	ss := NewSearchSpace(p, 200, 1_000_000, 1000)
	f := func(raw uint16) bool {
		// Scores beyond a few thousand underflow exp() to exactly 0,
		// which is correct behaviour; test the representable range.
		s := int(raw) % 2500
		e := p.EValue(s, ss)
		return e > 0 && !math.IsNaN(e) && !math.IsInf(e, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatEValueNeverEmpty(t *testing.T) {
	for _, e := range []float64{0, 1e-300, 1e-5, 0.01, 0.99, 1, 9.9, 10, 1e6} {
		if s := FormatEValue(e); strings.TrimSpace(s) == "" {
			t.Fatalf("empty format for %g", e)
		}
	}
}
