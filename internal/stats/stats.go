// Package stats implements Karlin–Altschul statistics for BLAST: raw-score →
// bit-score conversion, E-values, and effective search-space corrections.
//
// The parameter sets are the published NCBI values for the matrices and gap
// penalties shipped in internal/matrix. Given a raw alignment score S against
// a database of total length n with a query of length m, the expected number
// of chance alignments with score ≥ S is
//
//	E = K · m' · n' · exp(−λ·S)
//
// where m' and n' are the query and database lengths corrected for edge
// effects, and the bit score is S' = (λ·S − ln K) / ln 2.
package stats

import (
	"fmt"
	"math"

	"parblast/internal/matrix"
)

// Params holds the Karlin–Altschul parameters for one scoring system.
type Params struct {
	// Lambda is the scale parameter of the extreme-value distribution.
	Lambda float64
	// K is the search-space proportionality constant.
	K float64
	// H is the relative entropy of the scoring system (nats/aligned pair),
	// used for the edge-effect length correction.
	H float64
}

// Published NCBI parameter sets.
var (
	// Blosum62Ungapped are the parameters for ungapped BLOSUM62 alignments.
	Blosum62Ungapped = Params{Lambda: 0.3176, K: 0.134, H: 0.4012}
	// Blosum62Gapped11_1 covers BLOSUM62 with gap open 11, extend 1
	// (the blastp default).
	Blosum62Gapped11_1 = Params{Lambda: 0.267, K: 0.041, H: 0.14}
	// DNAUngapped1_3 covers blastn reward +1 / penalty −3, ungapped.
	DNAUngapped1_3 = Params{Lambda: 1.374, K: 0.711, H: 1.31}
	// DNAGapped1_3_5_2 covers +1/−3 with gap open 5, extend 2
	// (the blastn default).
	DNAGapped1_3_5_2 = Params{Lambda: 1.37, K: 0.711, H: 1.31}
)

// For selects parameters for a matrix/gap combination. Gapped parameter sets
// are keyed on the shipped defaults; other combinations fall back to the
// ungapped parameters of the matrix, which is conservative (overestimates E).
func For(m *matrix.Matrix, gaps matrix.GapPenalties, gapped bool) (Params, error) {
	switch m.Name() {
	case "BLOSUM62":
		if !gapped {
			return Blosum62Ungapped, nil
		}
		if gaps == matrix.DefaultProteinGaps {
			return Blosum62Gapped11_1, nil
		}
		return Blosum62Ungapped, nil
	default:
		// All shipped DNA matrices use the +1/−3-shaped statistics.
		if !gapped {
			return DNAUngapped1_3, nil
		}
		return DNAGapped1_3_5_2, nil
	}
}

// SearchSpace describes the corrected Karlin–Altschul search space for one
// query against one database.
type SearchSpace struct {
	// QueryLen is the raw query length m.
	QueryLen int
	// DBLen is the total residue count of the database, n.
	DBLen int64
	// DBSeqs is the number of database sequences.
	DBSeqs int
	// EffQueryLen and EffDBLen are the edge-corrected lengths.
	EffQueryLen int
	EffDBLen    int64
}

// NewSearchSpace computes the effective lengths. The length adjustment
// follows the standard iteration: l = (ln K + ln(m−l) + ln(n−N·l)) / H,
// floored at 1/K and capped so the effective lengths stay positive.
func NewSearchSpace(p Params, queryLen int, dbLen int64, dbSeqs int) SearchSpace {
	ss := SearchSpace{QueryLen: queryLen, DBLen: dbLen, DBSeqs: dbSeqs}
	if dbSeqs <= 0 {
		dbSeqs = 1
		ss.DBSeqs = 1
	}
	m := float64(queryLen)
	n := float64(dbLen)
	N := float64(dbSeqs)
	if p.H <= 0 || m <= 0 || n <= 0 {
		ss.EffQueryLen = queryLen
		ss.EffDBLen = dbLen
		return ss
	}
	l := 0.0
	for i := 0; i < 20; i++ {
		mm := m - l
		nn := n - N*l
		if mm < 1 {
			mm = 1
		}
		if nn < 1 {
			nn = 1
		}
		next := (math.Log(p.K) + math.Log(mm) + math.Log(nn)) / p.H
		if next < 0 {
			next = 0
		}
		if math.Abs(next-l) < 0.5 {
			l = next
			break
		}
		l = next
	}
	effM := m - l
	if effM < 1 {
		effM = 1
	}
	effN := n - N*l
	if effN < 1 {
		effN = 1
	}
	ss.EffQueryLen = int(effM)
	ss.EffDBLen = int64(effN)
	return ss
}

// BitScore converts a raw score to a bit score.
func (p Params) BitScore(raw int) float64 {
	return (p.Lambda*float64(raw) - math.Log(p.K)) / math.Ln2
}

// RawScore converts a bit score back to the smallest raw score achieving it.
// A small epsilon absorbs floating-point noise so that
// RawScore(BitScore(s)) == s for integer s.
func (p Params) RawScore(bits float64) int {
	return int(math.Ceil((bits*math.Ln2+math.Log(p.K))/p.Lambda - 1e-9))
}

// EValue computes the expected number of chance alignments with score ≥ raw
// in the given search space.
func (p Params) EValue(raw int, ss SearchSpace) float64 {
	space := float64(ss.EffQueryLen) * float64(ss.EffDBLen)
	return p.K * space * math.Exp(-p.Lambda*float64(raw))
}

// ScoreForEValue returns the minimum raw score whose E-value is ≤ e in the
// given search space. It inverts EValue.
func (p Params) ScoreForEValue(e float64, ss SearchSpace) int {
	if e <= 0 {
		e = math.SmallestNonzeroFloat64
	}
	space := float64(ss.EffQueryLen) * float64(ss.EffDBLen)
	s := (math.Log(p.K*space) - math.Log(e)) / p.Lambda
	return int(math.Ceil(s))
}

// Validate rejects parameter sets that would produce nonsense statistics.
func (p Params) Validate() error {
	if p.Lambda <= 0 || p.K <= 0 || p.H < 0 {
		return fmt.Errorf("stats: invalid params λ=%g K=%g H=%g", p.Lambda, p.K, p.H)
	}
	return nil
}

// FormatEValue renders an E-value the way NCBI BLAST reports do:
// scientific notation below 1e-2 ("3e-42"), otherwise fixed point.
// Very small values are clamped to "0.0".
func FormatEValue(e float64) string {
	switch {
	case e < 1e-180:
		return "0.0"
	case e < 1e-2:
		return fmt.Sprintf("%.0e", e)
	case e < 1:
		return fmt.Sprintf("%.2f", e)
	case e < 10:
		return fmt.Sprintf("%.1f", e)
	default:
		return fmt.Sprintf("%.0f", e)
	}
}
