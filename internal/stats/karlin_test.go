package stats

import (
	"math"
	"testing"

	"parblast/internal/matrix"
)

func TestComputeUngappedMatchesPublishedBlosum62(t *testing.T) {
	p, err := ComputeUngapped(matrix.BLOSUM62, RobinsonFrequencies)
	if err != nil {
		t.Fatal(err)
	}
	// NCBI's published ungapped BLOSUM62 parameters: λ=0.3176, H=0.4012.
	if math.Abs(p.Lambda-Blosum62Ungapped.Lambda) > 0.005 {
		t.Fatalf("computed λ=%.4f, published %.4f", p.Lambda, Blosum62Ungapped.Lambda)
	}
	if math.Abs(p.H-Blosum62Ungapped.H) > 0.02 {
		t.Fatalf("computed H=%.4f, published %.4f", p.H, Blosum62Ungapped.H)
	}
	// K is approximated; demand the right order of magnitude.
	if p.K < Blosum62Ungapped.K/2 || p.K > Blosum62Ungapped.K*2 {
		t.Fatalf("computed K=%.4f too far from published %.4f", p.K, Blosum62Ungapped.K)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestComputeUngappedDNA(t *testing.T) {
	p, err := ComputeUngapped(matrix.DNADefault, UniformDNAFrequencies)
	if err != nil {
		t.Fatal(err)
	}
	// +1/−3 published ungapped λ = 1.374.
	if math.Abs(p.Lambda-DNAUngapped1_3.Lambda) > 0.01 {
		t.Fatalf("computed DNA λ=%.4f, published %.4f", p.Lambda, DNAUngapped1_3.Lambda)
	}
}

func TestComputeUngappedRejectsBadInputs(t *testing.T) {
	// Too few frequencies.
	if _, err := ComputeUngapped(matrix.BLOSUM62, []float64{0.5, 0.5}); err == nil {
		t.Fatal("short frequency vector accepted")
	}
	// Frequencies that do not sum to 1.
	bad := make([]float64, 20)
	for i := range bad {
		bad[i] = 0.1
	}
	if _, err := ComputeUngapped(matrix.BLOSUM62, bad); err == nil {
		t.Fatal("non-normalized frequencies accepted")
	}
	// A match-only matrix has positive expected score: no λ exists.
	pos := matrix.NewDNA(1, 1)
	if _, err := ComputeUngapped(pos, UniformDNAFrequencies); err == nil {
		t.Fatal("all-positive matrix accepted")
	}
}

func TestRobinsonFrequenciesNormalized(t *testing.T) {
	sum := 0.0
	for _, f := range RobinsonFrequencies {
		if f <= 0 {
			t.Fatal("non-positive frequency")
		}
		sum += f
	}
	if math.Abs(sum-1) > 0.005 {
		t.Fatalf("Robinson frequencies sum to %.4f", sum)
	}
	if len(RobinsonFrequencies) != 20 {
		t.Fatalf("%d frequencies", len(RobinsonFrequencies))
	}
}
