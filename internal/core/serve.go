package core

import (
	"fmt"

	"parblast/internal/blast"
	"parblast/internal/engine"
	"parblast/internal/formatdb"
	"parblast/internal/mpi"
	"parblast/internal/mpiio"
	"parblast/internal/seq"
	"parblast/internal/simtime"
	"parblast/internal/vfs"
	"parblast/internal/workload"
)

// Serving mode: the cluster boots once — database opened, virtual
// partitions read and RETAINED by the workers — and then processes an
// open-loop stream of query batches (workload.Arrivals) one at a time.
// The master runs the admission queue (engine.Admission): it idles until
// the next admitted batch's arrival, stamps the batch's Seq as the trace
// context, broadcasts the batch's queries, and runs exactly the same
// per-batch merge/layout/write code as the one-shot path (masterBatch.
// mergeBatch / workerOutputBatch) — which is why the streamed output file
// is byte-identical to a one-shot run over the admitted queries.
//
// Fault tolerance reuses the ready/go rendezvous per batch: a worker
// crash is detected at the next batch's rendezvous, its partitions are
// re-issued to survivors (offsets only, no data movement), and survivors
// both search them for the CURRENT batch and retain them for every later
// one. The batch's latency baseline is its ARRIVAL time, recorded before
// dispatch and never reset by recovery, so percentiles include the full
// recovery cost.

// serveBatchMsg is the per-batch broadcast: the batch's arrival-order id
// (the trace-batch context) and its packed queries. Seq == -1 is the
// end-of-stream sentinel.
type serveBatchMsg struct {
	Seq     int
	Queries []byte // engine.EncodeWireQueries payload; nil on the sentinel
}

// Serve runs the persistent-cluster serving mode over an arrival stream.
// batches must come from workload.Arrivals (non-decreasing arrival times,
// contiguous in-order partition of job.Queries). admitCap bounds the
// admission queue (0 = unbounded); batches arriving while the queue is
// full are deterministically shed (drop-newest) and never dispatched.
//
// The returned RunResult's QueryLatencies hold one entry per ADMITTED
// query in dispatch order, measured from the batch's open-loop arrival to
// the query's merge completion. ServeStats carries per-batch accounting
// and the shed set.
func Serve(nodes []*vfs.Node, nprocs int, cfg mpi.Config, job *engine.Job, opts Options, batches []workload.Batch, admitCap int) (engine.RunResult, engine.ServeStats, error) {
	var stats engine.ServeStats
	if err := job.Validate(); err != nil {
		return engine.RunResult{}, stats, err
	}
	if nprocs < 2 {
		return engine.RunResult{}, stats, fmt.Errorf("core: need ≥2 ranks (1 master + workers), got %d", nprocs)
	}
	if len(nodes) < nprocs {
		return engine.RunResult{}, stats, fmt.Errorf("core: %d nodes for %d ranks", len(nodes), nprocs)
	}
	if opts.DynamicAssignment {
		return engine.RunResult{}, stats, fmt.Errorf("core: serve mode requires static assignment (partitions must stay resident across batches)")
	}
	if opts.MemoryBudgetBytes > 0 {
		return engine.RunResult{}, stats, fmt.Errorf("core: serve mode does not support adaptive batching (batch boundaries come from the arrival stream)")
	}
	if admitCap < 0 {
		return engine.RunResult{}, stats, fmt.Errorf("core: negative admission cap %d", admitCap)
	}
	if err := opts.IOHints.Validate(); err != nil {
		return engine.RunResult{}, stats, err
	}
	shared := nodes[0].Shared
	db, err := formatdb.Open(shared, job.DBBase)
	if err != nil {
		return engine.RunResult{}, stats, err
	}
	workers := nprocs - 1
	nParts := job.Fragments
	if nParts == 0 {
		nParts = workers
	}
	parts, err := db.Partition(nParts)
	if err != nil {
		return engine.RunResult{}, stats, err
	}
	wireParts := make([][]wireExtent, len(parts))
	for pi, p := range parts {
		for _, e := range p.Extents {
			v := &db.Volumes[e.Volume]
			wireParts[pi] = append(wireParts[pi], wireExtent{
				VolBase:     v.Base,
				From:        e.From,
				To:          e.To,
				OIDFrom:     e.OIDFrom,
				HdrOff:      e.HdrOff,
				HdrLen:      e.HdrLen,
				SeqOff:      e.SeqOff,
				SeqLen:      e.SeqLen,
				HdrArrayPos: v.HdrOffsetArrayPos(e.From),
				SeqArrayPos: v.SeqOffsetArrayPos(e.From),
			})
		}
	}
	for _, f := range cfg.Faults {
		if f.Rank == 0 && f.Kind == mpi.FaultCrash {
			return engine.RunResult{}, stats, fmt.Errorf("core: cannot inject a crash into rank 0 (the master)")
		}
	}
	ft := opts.FaultTolerant || len(cfg.Faults) > 0
	ftTimeout := opts.FaultTimeout
	if ftTimeout <= 0 {
		ftTimeout = 250 * cfg.Cost.NetLatency
	}
	fanout := opts.MergeFanout
	if fanout == 0 {
		fanout = mpi.DefaultTreeFanout
	}
	if opts.TreeMerge && fanout < 2 {
		return engine.RunResult{}, stats, fmt.Errorf("core: merge fan-out %d < 2", opts.MergeFanout)
	}
	// Sanity-check the stream against the job: every batch's queries must
	// be a contiguous in-order slice of job.Queries (what the one-shot
	// oracle runs), and arrivals must be non-decreasing.
	next, prevArrival := 0, 0.0
	for _, b := range batches {
		if b.First != next || len(b.Queries) == 0 {
			return engine.RunResult{}, stats, fmt.Errorf("core: batch %d is not a contiguous in-order partition of the query set", b.Seq)
		}
		if b.Arrival < prevArrival {
			return engine.RunResult{}, stats, fmt.Errorf("core: batch %d arrives before its predecessor", b.Seq)
		}
		next += len(b.Queries)
		prevArrival = b.Arrival
	}
	if next != len(job.Queries) {
		return engine.RunResult{}, stats, fmt.Errorf("core: stream covers %d queries, job has %d", next, len(job.Queries))
	}

	meta := jobMeta{
		Title:       db.Title,
		Kind:        db.Kind,
		NumSeqs:     db.NumSeqs,
		TotalLen:    db.TotalResidues,
		Parts:       wireParts,
		OutputPath:  job.OutputPath,
		EarlyPrune:  opts.EarlyPrune,
		Independent: opts.IndependentOutput,
		Collective:  opts.CollectiveRead,
		Prefetch:    opts.PrefetchDepth,
		QueryBatch:  1,
		FT:          ft,
		FTTimeout:   ftTimeout,
		Tree:        opts.TreeMerge,
		TreeFanout:  fanout,
		IOHints:     opts.IOHints,
		Serve:       true,
	}
	if meta.Prefetch < 0 {
		meta.Prefetch = 0
	}
	var indexBytes int64
	for _, v := range db.Volumes {
		if f, err := shared.Open(formatdb.IndexPath(v.Base)); err == nil {
			indexBytes += f.Size()
		}
	}
	if cfg.Comm == nil {
		cfg.Comm = mpi.NewCommStats(nprocs)
	}
	stats.Arrivals = len(batches)
	// Latency sink: appended by the master goroutine only, read after
	// mpi.RunConfig returns (its WaitGroup is the barrier).
	var qlat []float64
	clocks, err := mpi.RunConfig(nprocs, cfg, func(r *mpi.Rank) error {
		if r.ID() == 0 {
			return runServeMaster(r, nodes[0], job, meta, indexBytes, opts.IOTuner, batches, admitCap, &qlat, &stats)
		}
		return runWorker(r, nodes[r.ID()], job.Options, opts.IOTuner)
	})
	if err != nil {
		return engine.RunResult{}, stats, err
	}
	var outBytes int64
	if f, err := shared.Open(job.OutputPath); err == nil {
		outBytes = f.Size()
	}
	res := engine.Summarize(clocks, outBytes)
	res.QueryLatencies = qlat
	res.CommBytes, res.ShuffleBytes, res.CollectiveBytes, res.CommMessages = cfg.Comm.Totals()
	res.AddIOFaults(nodes)
	return res, stats, nil
}

func runServeMaster(r *mpi.Rank, node *vfs.Node, job *engine.Job, meta jobMeta, indexBytes int64, tuner *mpiio.Tuner, batches []workload.Batch, admitCap int, qlat *[]float64, stats *engine.ServeStats) error {
	r.SetPhase(simtime.PhaseOther)
	r.Advance(r.Cost().SetupCost)
	r.SetPhase(simtime.PhaseInput)
	r.IO(node.Shared, indexBytes)
	r.SetPhase(simtime.PhaseOther)
	r.Bcast(0, engine.EncodeGob(meta))

	workers := r.Size() - 1
	alive := make([]int, 0, workers)
	for w := 1; w <= workers; w++ {
		alive = append(alive, w)
	}
	partsOf := make([][]int, workers+1)
	for pi := range meta.Parts {
		partsOf[pi%workers+1] = append(partsOf[pi%workers+1], pi)
	}
	if meta.Collective {
		// Participate (with empty views) in the workers' warmup collective
		// input reads.
		r.SetPhase(simtime.PhaseInput)
		if _, err := readPartsCollective(r, newFileCache(r, node.Shared, meta.IOHints, tuner), meta, nil); err != nil {
			return err
		}
		r.SetPhase(simtime.PhaseIdle)
	}
	if meta.FT {
		// Warmup rendezvous: recover partitions from workers that crashed
		// while loading, before the stream opens.
		var err error
		alive, err = syncWorkers(r, meta, alive, partsOf, nil)
		if err != nil {
			return err
		}
	}

	searcher, err := blast.NewSearcher(job.Options)
	if err != nil {
		return err
	}
	out := mpiio.OpenOrCreate(r, node.Shared, job.OutputPath)
	if err := out.SetHints(meta.IOHints); err != nil {
		return err
	}
	mb := &masterBatch{
		r: r, meta: meta, renderOpts: job.Options, searcher: searcher,
		maxTargets: searcher.Options().MaxTargetSeqs,
		dbInfo:     blast.DBInfo{Title: meta.Title, NumSeqs: meta.NumSeqs, TotalLen: meta.TotalLen},
		out:        out,
	}
	recvWorker := recvWorkerFn(r, meta)

	arrivals := make([]float64, len(batches))
	for i, b := range batches {
		arrivals[i] = b.Arrival
	}
	adm := engine.NewAdmission(arrivals, admitCap)
	for {
		now := r.Clock().Now()
		bi, arrival, ok := adm.Next(now)
		if !ok {
			break
		}
		b := batches[bi]
		if arrival > now {
			// Open-loop idle: the cluster is drained, wait for the next
			// arrival on the virtual clock.
			r.SetPhase(simtime.PhaseIdle)
			r.Advance(arrival - now)
		}
		start := r.Clock().Now()
		// The batch's Seq is the trace context for every envelope it
		// causes, across all ranks.
		r.SetTraceBatch(b.Seq)
		r.SetPhase(simtime.PhaseOther)
		r.Bcast(0, engine.EncodeGob(serveBatchMsg{
			Seq:     b.Seq,
			Queries: engine.EncodeWireQueries(engine.PackQueries(b.Queries)),
		}))
		if meta.FT {
			// Per-batch rendezvous: detect crashes since the last batch,
			// re-issue the dead workers' partitions, and wait until the
			// survivors have absorbed and searched them for this batch.
			var err error
			alive, err = syncWorkers(r, meta, alive, partsOf, nil)
			if err != nil {
				return err
			}
		}
		// The admission clock is the batch's ARRIVAL, never its dispatch
		// and never reset under recovery: queueing delay and recovery cost
		// both land in the latency.
		err := mb.mergeBatch(b.Queries, 0, len(b.Queries), alive, recvWorker, func(q int) {
			lat := r.Clock().Now() - arrival
			*qlat = append(*qlat, lat)
			engine.RecordQueryLatency(r.Metrics(), r.ID(), lat)
		})
		if err != nil {
			return err
		}
		stats.RecordDispatch(b.Seq, arrival, start, r.Clock().Now(), len(b.Queries))
		r.Metrics().Counter("engine.batches_served", r.ID()).Inc()
	}
	stats.ShedSeqs = adm.ShedSeqs()
	stats.Shed = len(stats.ShedSeqs)
	r.Metrics().Counter("engine.batches_shed", r.ID()).Add(int64(stats.Shed))
	// End of stream: sentinel broadcast, then the closing barrier.
	r.SetPhase(simtime.PhaseOther)
	r.Bcast(0, engine.EncodeGob(serveBatchMsg{Seq: -1}))
	r.Barrier()
	return nil
}

// runServeWorker is the worker side of the stream: load (and keep) my
// partitions, then serve batches until the sentinel. Called from runWorker
// once the decoded jobMeta says Serve.
func runServeWorker(r *mpi.Rank, node *vfs.Node, meta jobMeta, opts blast.Options, tuner *mpiio.Tuner) error {
	searcher, err := blast.NewSearcher(opts)
	if err != nil {
		return err
	}
	maxTargets := searcher.Options().MaxTargetSeqs
	ctx := searcher.NewContext()
	files := newFileCache(r, node.Shared, meta.IOHints, tuner)

	// Resident state: the individual fragments (searched per batch, in
	// acquisition order, so the per-(query, fragment) work counters match
	// the one-shot run exactly) plus the concatenated subject pool the
	// output path renders blocks from.
	st := &workerState{byOID: make(map[int]int)}
	var resident []*blast.Fragment
	retain := func(frag *blast.Fragment) {
		resident = append(resident, frag)
		base := len(st.frag.Subjects)
		st.frag.Subjects = append(st.frag.Subjects, frag.Subjects...)
		for i := base; i < len(st.frag.Subjects); i++ {
			st.byOID[st.frag.Subjects[i].OID] = i
		}
	}
	absorbPart := func(pi int) error {
		r.Yield()
		r.SetPhase(simtime.PhaseInput)
		frag, err := readPart(files, meta.Parts[pi])
		if err != nil {
			return err
		}
		retain(frag)
		return nil
	}

	workers := r.Size() - 1
	var mine []int
	for pi := range meta.Parts {
		if pi%workers == r.ID()-1 {
			mine = append(mine, pi)
		}
	}
	// Warmup: read my partitions once; they stay resident for the whole
	// stream (the database is loaded exactly once per serving session).
	switch {
	case meta.Collective:
		r.Yield()
		r.SetPhase(simtime.PhaseInput)
		frags, err := readPartsCollective(r, files, meta, mine)
		if err != nil {
			return err
		}
		for _, pi := range mine {
			retain(frags[pi])
		}
	case meta.Prefetch > 0:
		// Keep up to Prefetch+1 reads in flight while retaining in order.
		fetches := make([]*partFetch, len(mine))
		next := 0
		for cur := range mine {
			r.Yield()
			r.SetPhase(simtime.PhaseInput)
			for next <= cur+meta.Prefetch && next < len(mine) {
				pf, err := startPartFetch(files, meta.Parts[mine[next]])
				if err != nil {
					return err
				}
				fetches[next] = pf
				next++
			}
			frag, err := fetches[cur].finish()
			fetches[cur] = nil
			if err != nil {
				return err
			}
			retain(frag)
		}
	default:
		for _, pi := range mine {
			if err := absorbPart(pi); err != nil {
				return err
			}
		}
	}

	aliveWorkers := make([]int, 0, workers)
	for w := 1; w <= workers; w++ {
		aliveWorkers = append(aliveWorkers, w)
	}
	if meta.FT {
		// Warmup rendezvous: absorb partitions reclaimed from workers
		// that crashed while loading (nothing to search yet).
		for {
			r.SetPhase(simtime.PhaseIdle)
			r.Send(0, tagReady, nil)
			data, _, _ := r.Recv(0, tagGo)
			done, extras, alive, err := decodeGo(data)
			if err != nil {
				return err
			}
			for _, pi := range extras {
				if err := absorbPart(pi); err != nil {
					return err
				}
			}
			if done {
				aliveWorkers = alive
				break
			}
		}
	}

	outFile := mpiio.OpenOrCreate(r, node.Shared, meta.OutputPath)
	if err := outFile.SetHints(meta.IOHints); err != nil {
		return err
	}

	// searchFrags searches queries against resident[from:], appending hits
	// and work — the same (fragment, query) loop nest as the one-shot
	// path, so scores, hit sets, AND footer work counters agree.
	searchFrags := func(queries []*seq.Sequence, from int) error {
		for _, frag := range resident[from:] {
			r.SetPhase(simtime.PhaseSearch)
			for qi, q := range queries {
				if err := ctx.SetQuery(q); err != nil {
					return err
				}
				space := engine.SearchSpaceFor(searcher, q.Len(), meta.TotalLen, meta.NumSeqs)
				res, err := ctx.SearchFragment(frag, space)
				if err != nil {
					return err
				}
				r.Compute(res.Work.Units())
				engine.RecordWork(r.Metrics(), r.ID(), res.Work)
				st.hits[qi] = append(st.hits[qi], res.Hits...)
				st.work[qi].Add(res.Work)
				r.Yield()
			}
		}
		return nil
	}

	for {
		r.SetPhase(simtime.PhaseIdle)
		var msg serveBatchMsg
		if err := engine.DecodeGob(r.Bcast(0, nil), &msg); err != nil {
			return err
		}
		if msg.Seq < 0 {
			break // end of stream
		}
		r.SetTraceBatch(msg.Seq)
		wq, err := engine.DecodeWireQueries(msg.Queries)
		if err != nil {
			return err
		}
		queries := wq.Unpack()
		st.hits = make([][]*blast.SubjectResult, len(queries))
		st.work = make([]blast.WorkCounters, len(queries))
		if err := searchFrags(queries, 0); err != nil {
			return err
		}
		if meta.FT {
			// Per-batch rendezvous: report this batch searched; absorb any
			// re-issued partitions (retained for every later batch too)
			// and search them for THIS batch before the merge.
			for {
				r.SetPhase(simtime.PhaseIdle)
				r.Send(0, tagReady, nil)
				data, _, _ := r.Recv(0, tagGo)
				done, extras, alive, err := decodeGo(data)
				if err != nil {
					return err
				}
				if len(extras) > 0 {
					from := len(resident)
					for _, pi := range extras {
						if err := absorbPart(pi); err != nil {
							return err
						}
					}
					if err := searchFrags(queries, from); err != nil {
						return err
					}
				}
				if done {
					aliveWorkers = alive
					break
				}
			}
		}
		if err := workerOutputBatch(r, meta, opts, maxTargets, outFile, queries, 0, len(queries), st, aliveWorkers); err != nil {
			return err
		}
	}
	r.SetPhase(simtime.PhaseOther)
	r.Barrier()
	return nil
}
