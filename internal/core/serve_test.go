package core_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"parblast/internal/core"
	"parblast/internal/engine"
	"parblast/internal/metrics"
	"parblast/internal/mpi"
	"parblast/internal/mpiblast"
	"parblast/internal/trace"
	"parblast/internal/vfs"
	"parblast/internal/workload"
)

// serveArrivals generates the fixture's arrival stream.
func serveArrivals(t *testing.T, fx *fixture, cfg workload.ArrivalConfig) []workload.Batch {
	t.Helper()
	batches, err := workload.Arrivals(fx.queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return batches
}

// runServePio runs the pio engine in serving mode on a fresh cluster.
func runServePio(t *testing.T, fx *fixture, nprocs int, cfg mpi.Config, opts core.Options, batches []workload.Batch, admitCap int) (engine.RunResult, engine.ServeStats, []byte) {
	t.Helper()
	nodes := fx.newCluster(t, nprocs, vfs.XFSLike(), localDisk(), 0)
	job := *fx.job
	res, stats, err := core.Serve(nodes, nprocs, cfg, &job, opts, batches, admitCap)
	if err != nil {
		t.Fatalf("serve run failed: %v", err)
	}
	out, err := nodes[0].Shared.ReadFile(fx.job.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	return res, stats, out
}

// runServeMpi runs the baseline engine in serving mode on a fresh cluster.
func runServeMpi(t *testing.T, fx *fixture, nprocs int, cfg mpi.Config, opts mpiblast.Options, batches []workload.Batch, admitCap int) (engine.RunResult, engine.ServeStats, []byte) {
	t.Helper()
	nodes := fx.newCluster(t, nprocs, vfs.XFSLike(), localDisk(), 0)
	if _, err := mpiblast.PrepareFragments(nodes[0].Shared, "nr", nprocs-1); err != nil {
		t.Fatal(err)
	}
	job := *fx.job
	res, stats, err := mpiblast.Serve(nodes, nprocs, cfg, &job, opts, batches, admitCap)
	if err != nil {
		t.Fatalf("mpiblast serve run failed: %v", err)
	}
	out, err := nodes[0].Shared.ReadFile(fx.job.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	return res, stats, out
}

// TestServeMatchesOneShot (satellite: stream-vs-oneshot equivalence): for
// every read path × merge protocol, and at both a trickle and a saturating
// arrival rate, the streamed output file must be byte-identical to the
// one-shot run over the same queries, with the same per-query latency
// cardinality.
func TestServeMatchesOneShot(t *testing.T) {
	const nprocs = 4
	fx := makeFixture(t, 2000)

	cases := []struct {
		name string
		opts core.Options
	}{
		{"plain", core.Options{}},
		{"collective", core.Options{CollectiveRead: true}},
		{"prefetch", core.Options{PrefetchDepth: 2}},
		{"tree", core.Options{TreeMerge: true, CollectiveRead: true}},
	}
	for _, tc := range cases {
		oneShot, oneOut := runPio(t, fx, nprocs, mpi.Config{Cost: testCost()}, tc.opts)
		for _, rate := range []float64{0.05, 50} {
			batches := serveArrivals(t, fx, workload.ArrivalConfig{
				Rate: rate, BatchMean: 2, BatchDist: workload.BatchUniform, Seed: 7,
			})
			res, stats, out := runServePio(t, fx, nprocs, mpi.Config{Cost: testCost()}, tc.opts, batches, 0)
			if !bytes.Equal(out, oneOut) {
				t.Errorf("%s rate=%g: streamed output differs from one-shot at byte %d",
					tc.name, rate, firstDiff(out, oneOut))
			}
			if len(res.QueryLatencies) != len(oneShot.QueryLatencies) {
				t.Errorf("%s rate=%g: %d streamed latencies, one-shot has %d",
					tc.name, rate, len(res.QueryLatencies), len(oneShot.QueryLatencies))
			}
			if stats.Shed != 0 || stats.Admitted != len(batches) ||
				stats.Arrivals != stats.Admitted+stats.Shed {
				t.Errorf("%s rate=%g: unbounded queue accounting wrong: %+v", tc.name, rate, stats)
			}
			for i, lat := range res.QueryLatencies {
				if lat <= 0 {
					t.Fatalf("%s rate=%g: query %d latency %g not positive", tc.name, rate, i, lat)
				}
			}
		}
	}
}

// TestServeMatchesOneShotMpiblast: the baseline engine's serving mode must
// also be byte-identical to its own one-shot run, in both merge protocols,
// at a trickle and a saturating rate.
func TestServeMatchesOneShotMpiblast(t *testing.T) {
	const nprocs = 4
	fx := makeFixture(t, 2000)

	for _, tree := range []bool{false, true} {
		opts := mpiblast.Options{TreeMerge: tree}
		oneNodes := fx.newCluster(t, nprocs, vfs.XFSLike(), localDisk(), 0)
		if _, err := mpiblast.PrepareFragments(oneNodes[0].Shared, "nr", nprocs-1); err != nil {
			t.Fatal(err)
		}
		oneJob := *fx.job
		oneShot, err := mpiblast.RunOpts(oneNodes, nprocs, mpi.Config{Cost: testCost()}, &oneJob, opts)
		if err != nil {
			t.Fatal(err)
		}
		oneOut, err := oneNodes[0].Shared.ReadFile(fx.job.OutputPath)
		if err != nil {
			t.Fatal(err)
		}
		for _, rate := range []float64{0.05, 50} {
			batches := serveArrivals(t, fx, workload.ArrivalConfig{
				Rate: rate, BatchMean: 2, BatchDist: workload.BatchUniform, Seed: 7,
			})
			res, stats, out := runServeMpi(t, fx, nprocs, mpi.Config{Cost: testCost()}, opts, batches, 0)
			if !bytes.Equal(out, oneOut) {
				t.Errorf("tree=%v rate=%g: streamed output differs from one-shot at byte %d",
					tree, rate, firstDiff(out, oneOut))
			}
			if len(res.QueryLatencies) != len(oneShot.QueryLatencies) {
				t.Errorf("tree=%v rate=%g: %d streamed latencies, one-shot has %d",
					tree, rate, len(res.QueryLatencies), len(oneShot.QueryLatencies))
			}
			if stats.Shed != 0 || stats.Admitted != len(batches) {
				t.Errorf("tree=%v rate=%g: unbounded queue accounting wrong: %+v", tree, rate, stats)
			}
		}
	}
}

// TestServeMpiblastRejectsFaults: the baseline's recovery story (re-copying
// whole physical fragments) is one-shot only; a fault schedule must be a
// clean up-front error, not a hang.
func TestServeMpiblastRejectsFaults(t *testing.T) {
	fx := makeFixture(t, 600)
	batches := serveArrivals(t, fx, workload.ArrivalConfig{Rate: 1, Seed: 1})
	nodes := fx.newCluster(t, 3, vfs.XFSLike(), localDisk(), 0)
	if _, err := mpiblast.PrepareFragments(nodes[0].Shared, "nr", 2); err != nil {
		t.Fatal(err)
	}
	job := *fx.job
	cfg := mpi.Config{Cost: testCost(), Faults: []mpi.Fault{{Rank: 2, At: 0.5, Kind: mpi.FaultCrash}}}
	if _, _, err := mpiblast.Serve(nodes, 3, cfg, &job, mpiblast.Options{}, batches, 0); err == nil ||
		!strings.Contains(err.Error(), "fault injection") {
		t.Errorf("mpiblast serve accepted a fault schedule: %v", err)
	}
}

// TestServeLatencyGrowsWithRate: the open-loop arrival stream is the same
// batch sequence at every rate (exact rate scaling), so pushing the rate up
// can only add queueing delay — tail latency must not improve.
func TestServeLatencyGrowsWithRate(t *testing.T) {
	const nprocs = 4
	fx := makeFixture(t, 2000)
	p99 := func(rate float64) float64 {
		batches := serveArrivals(t, fx, workload.ArrivalConfig{Rate: rate, Seed: 11})
		res, _, _ := runServePio(t, fx, nprocs, mpi.Config{Cost: testCost()}, core.Options{}, batches, 0)
		return metrics.ExactQuantile(res.QueryLatencies, 0.99)
	}
	slow, fast := p99(0.05), p99(50)
	if fast < slow {
		t.Fatalf("p99 at rate 50 (%g) below p99 at rate 0.05 (%g)", fast, slow)
	}
	if fast <= slow {
		t.Logf("warning: saturating rate did not strictly raise p99 (%g vs %g)", fast, slow)
	}
}

// TestServeSheddingDeterministic: with a tight admission cap and a
// saturating rate, some batches must be shed; the shed set is exactly
// reproducible, and the streamed output equals a one-shot run over exactly
// the admitted queries.
func TestServeSheddingDeterministic(t *testing.T) {
	const nprocs = 4
	fx := makeFixture(t, 2000)
	batches := serveArrivals(t, fx, workload.ArrivalConfig{
		Rate: 100, Burst: 4, BatchMean: 2, Seed: 23,
	})

	res1, stats1, out1 := runServePio(t, fx, nprocs, mpi.Config{Cost: testCost()}, core.Options{}, batches, 1)
	if stats1.Shed == 0 {
		t.Fatal("saturating rate with cap 1 shed nothing")
	}
	if stats1.Arrivals != stats1.Admitted+stats1.Shed {
		t.Fatalf("accounting wrong: %+v", stats1)
	}
	if len(res1.QueryLatencies) == len(fx.queries) {
		t.Fatal("shed batches still have latencies recorded")
	}

	res2, stats2, out2 := runServePio(t, fx, nprocs, mpi.Config{Cost: testCost()}, core.Options{}, batches, 1)
	if !reflect.DeepEqual(stats1.ShedSeqs, stats2.ShedSeqs) {
		t.Fatalf("shed set not reproducible: %v vs %v", stats1.ShedSeqs, stats2.ShedSeqs)
	}
	if !bytes.Equal(out1, out2) || !reflect.DeepEqual(res1.QueryLatencies, res2.QueryLatencies) {
		t.Fatal("shedding run not deterministic")
	}

	// One-shot oracle over exactly the admitted queries.
	shed := make(map[int]bool)
	for _, s := range stats1.ShedSeqs {
		shed[s] = true
	}
	admitted := fx.queries[:0:0]
	nAdmitted := 0
	for _, b := range batches {
		if !shed[b.Seq] {
			admitted = append(admitted, b.Queries...)
			nAdmitted += len(b.Queries)
		}
	}
	oracleFx := &fixture{queries: admitted, job: fx.job}
	oj := *fx.job
	oj.Queries = admitted
	oracleFx.job = &oj
	_, oracleOut := runPio(t, oracleFx, nprocs, mpi.Config{Cost: testCost()}, core.Options{})
	if !bytes.Equal(out1, oracleOut) {
		t.Fatalf("streamed output with shedding differs from one-shot over admitted queries at byte %d",
			firstDiff(out1, oracleOut))
	}
	if len(res1.QueryLatencies) != nAdmitted {
		t.Fatalf("%d latencies for %d admitted queries", len(res1.QueryLatencies), nAdmitted)
	}
}

// TestServeCrashKeepsAdmissionClock (satellite: re-issued work after a
// crash must keep the original admission clock): a worker crash mid-stream
// leaves the output byte-identical to the crash-free stream, costs virtual
// time, and that cost lands in the affected queries' latencies — they can
// only grow, never reset.
func TestServeCrashKeepsAdmissionClock(t *testing.T) {
	const nprocs = 4
	fx := makeFixture(t, 2000)
	batches := serveArrivals(t, fx, workload.ArrivalConfig{Rate: 0.2, BatchMean: 2, Seed: 31})
	opts := core.Options{FaultTolerant: true}

	free, freeStats, freeOut := runServePio(t, fx, nprocs, mpi.Config{Cost: testCost()}, opts, batches, 0)
	if freeStats.Shed != 0 {
		t.Fatalf("trickle rate shed batches: %+v", freeStats)
	}

	// Aim the crash at a mid-stream batch's search window. The exact phase
	// layout depends on the cost model, so probe a few fractions; a crash
	// landing in an output window is a clean (expected) error, not a pass.
	var crashed engine.RunResult
	var crashedOut []byte
	var faults []mpi.Fault
	mid := len(freeStats.BatchStart) / 2
	hit := false
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7} {
		at := freeStats.BatchStart[mid] + frac*(freeStats.BatchDone[mid]-freeStats.BatchStart[mid])
		faults = []mpi.Fault{{Rank: nprocs - 1, At: at, Kind: mpi.FaultCrash}}
		nodes := fx.newCluster(t, nprocs, vfs.XFSLike(), localDisk(), 0)
		job := *fx.job
		res, _, err := core.Serve(nodes, nprocs, mpi.Config{Cost: testCost(), Faults: faults}, &job, opts, batches, 0)
		if err != nil {
			if strings.Contains(err.Error(), "output phase") {
				continue
			}
			t.Fatalf("crash at frac %g: %v", frac, err)
		}
		out, err := nodes[0].Shared.ReadFile(fx.job.OutputPath)
		if err != nil {
			t.Fatal(err)
		}
		crashed, crashedOut, hit = res, out, true
		break
	}
	if !hit {
		t.Skip("every probed crash time landed in an output window on this cost model")
	}

	if !bytes.Equal(crashedOut, freeOut) {
		t.Fatalf("output after mid-stream crash differs at byte %d", firstDiff(crashedOut, freeOut))
	}
	if crashed.Wall <= free.Wall {
		t.Fatalf("crashed wall %g not above crash-free %g (no recovery cost?)", crashed.Wall, free.Wall)
	}
	if len(crashed.QueryLatencies) != len(free.QueryLatencies) {
		t.Fatalf("crash changed latency cardinality: %d vs %d",
			len(crashed.QueryLatencies), len(free.QueryLatencies))
	}
	// The admission clock survives recovery: every query's latency is
	// measured from its batch's original arrival, so recovery can only add.
	grew := false
	for q := range crashed.QueryLatencies {
		if crashed.QueryLatencies[q] < free.QueryLatencies[q]-1e-9 {
			t.Fatalf("query %d latency shrank after crash: %g vs %g (admission clock reset?)",
				q, crashed.QueryLatencies[q], free.QueryLatencies[q])
		}
		if crashed.QueryLatencies[q] > free.QueryLatencies[q]+1e-9 {
			grew = true
		}
	}
	if !grew {
		t.Fatal("no query latency grew despite recovery cost")
	}

	// Determinism: the same fault schedule replays exactly.
	again, _, againOut := runServePio(t, fx, nprocs, mpi.Config{Cost: testCost(), Faults: faults}, opts, batches, 0)
	if !bytes.Equal(againOut, crashedOut) || again.Wall != crashed.Wall {
		t.Fatal("crashed serve run not deterministic")
	}
}

// TestServeFlowsSplitByBatch: every flow a serving run emits carries the
// trace-batch id of the arrival batch that caused it, so the per-batch
// message-flow split stays exact under streaming (late replies keep their
// own batch id; see the monotone-adoption rule in internal/mpi).
func TestServeFlowsSplitByBatch(t *testing.T) {
	const nprocs = 4
	fx := makeFixture(t, 1200)
	batches := serveArrivals(t, fx, workload.ArrivalConfig{Rate: 5, BatchMean: 2, Seed: 3})
	col := trace.NewCollector()
	cfg := tracedConfig(col)
	_, stats, _ := runServePio(t, fx, nprocs, cfg, core.Options{}, batches, 0)
	if stats.Admitted != len(batches) {
		t.Fatalf("admitted %d of %d", stats.Admitted, len(batches))
	}
	perBatch := map[int]int{}
	for _, f := range col.Flows() {
		perBatch[f.Batch]++
	}
	// The job-meta broadcast predates the first arrival (batch -1 context);
	// every arrival batch must contribute its own flows.
	for _, b := range batches {
		if perBatch[b.Seq] == 0 {
			t.Errorf("batch %d produced no flows (batch split broken): %v", b.Seq, perBatch)
		}
	}
}

// TestServeValidation: configurations that cannot keep the cluster warm (or
// streams that do not partition the query set) are rejected up front.
func TestServeValidation(t *testing.T) {
	const nprocs = 3
	fx := makeFixture(t, 600)
	batches := serveArrivals(t, fx, workload.ArrivalConfig{Rate: 1, Seed: 1})
	cfg := mpi.Config{Cost: testCost()}

	try := func(opts core.Options, b []workload.Batch, cap int, wantSub string) {
		t.Helper()
		nodes := fx.newCluster(t, nprocs, vfs.RAMDisk(), nil, 0)
		job := *fx.job
		_, _, err := core.Serve(nodes, nprocs, cfg, &job, opts, b, cap)
		if err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("want error containing %q, got %v", wantSub, err)
		}
	}
	try(core.Options{DynamicAssignment: true}, batches, 0, "static assignment")
	try(core.Options{MemoryBudgetBytes: 1 << 20}, batches, 0, "adaptive batching")
	try(core.Options{}, batches, -1, "admission cap")
	try(core.Options{}, batches[1:], 0, "contiguous")
	truncated := append([]workload.Batch(nil), batches...)
	truncated = truncated[:len(truncated)-1]
	try(core.Options{}, truncated, 0, "covers")

	nodes := fx.newCluster(t, nprocs, vfs.RAMDisk(), nil, 0)
	job := *fx.job
	crashMaster := mpi.Config{Cost: testCost(), Faults: []mpi.Fault{{Rank: 0, At: 0.1, Kind: mpi.FaultCrash}}}
	if _, _, err := core.Serve(nodes, nprocs, crashMaster, &job, core.Options{}, batches, 0); err == nil ||
		!strings.Contains(err.Error(), "rank 0") {
		t.Errorf("serve accepted a master crash: %v", err)
	}
}
