package core_test

import (
	"bytes"
	"strings"
	"testing"

	"parblast/internal/blast"
	"parblast/internal/core"
	"parblast/internal/engine"
	"parblast/internal/formatdb"
	"parblast/internal/mpi"
	"parblast/internal/mpiblast"
	"parblast/internal/seq"
	"parblast/internal/simtime"
	"parblast/internal/vfs"
	"parblast/internal/workload"
)

// fixture builds a formatted database plus query set on a fresh cluster.
type fixture struct {
	job     *engine.Job
	db      *formatdb.DB
	queries []*seq.Sequence
}

// makeFixture samples queries from the same synthetic DB that newCluster
// formats (identical seed/config), so queries are guaranteed homologs.
func makeFixture(t *testing.T, queryBytes int) *fixture {
	t.Helper()
	seqs, err := workload.SynthesizeDB(workload.DBConfig{
		Kind: seq.Protein, NumSeqs: 60, MeanLen: 150, Seed: 101,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := workload.SampleQueries(seqs, workload.QueryConfig{
		TargetBytes: queryBytes, MeanLen: 100, MutationRate: 0.05, Seed: 202,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		queries: queries,
		job: &engine.Job{
			DBBase:     "nr",
			Queries:    queries,
			Options:    blast.DefaultProteinOptions(),
			OutputPath: "results.out",
		},
	}
}

// newCluster formats the fixture's DB onto a fresh cluster's shared FS.
func (fx *fixture) newCluster(t *testing.T, n int, shared vfs.Profile, local *vfs.Profile, volMax int64) []*vfs.Node {
	t.Helper()
	nodes, err := vfs.Cluster(n, shared, local)
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := workload.SynthesizeDB(workload.DBConfig{
		Kind: seq.Protein, NumSeqs: 60, MeanLen: 150, Seed: 101,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := formatdb.Format(nodes[0].Shared, "nr", seqs, formatdb.Config{
		Title: "synthetic nr", Kind: seq.Protein, VolumeMaxResidues: volMax,
	})
	if err != nil {
		t.Fatal(err)
	}
	fx.db = db
	return nodes
}

func testCost() simtime.CostModel { return simtime.DefaultCostModel() }

func localDisk() *vfs.Profile {
	p := vfs.LocalDisk()
	return &p
}

// runAllThree executes the sequential oracle, the baseline, and pioBLAST on
// identical inputs and returns the three output files.
func runAllThree(t *testing.T, fx *fixture, nprocs, fragments int, shared vfs.Profile, local *vfs.Profile, opts core.Options) (seqOut, mpiOut, pioOut []byte, mpiRes, pioRes engine.RunResult) {
	t.Helper()

	// Sequential oracle.
	seqNodes := fx.newCluster(t, 1, vfs.RAMDisk(), nil, 0)
	seqJob := *fx.job
	if err := engine.RunSequential(seqNodes[0].Shared, &seqJob); err != nil {
		t.Fatal(err)
	}
	seqOut, err := seqNodes[0].Shared.ReadFile(fx.job.OutputPath)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline.
	mpiNodes := fx.newCluster(t, nprocs, shared, local, 0)
	nFrags := fragments
	if nFrags == 0 {
		nFrags = nprocs - 1
	}
	if _, err := mpiblast.PrepareFragments(mpiNodes[0].Shared, "nr", nFrags); err != nil {
		t.Fatal(err)
	}
	mpiJob := *fx.job
	mpiJob.Fragments = fragments
	mpiRes, err = mpiblast.Run(mpiNodes, nprocs, testCost(), &mpiJob)
	if err != nil {
		t.Fatal(err)
	}
	mpiOut, err = mpiNodes[0].Shared.ReadFile(fx.job.OutputPath)
	if err != nil {
		t.Fatal(err)
	}

	// pioBLAST.
	pioNodes := fx.newCluster(t, nprocs, shared, local, 0)
	pioJob := *fx.job
	pioJob.Fragments = fragments
	pioRes, err = core.Run(pioNodes, nprocs, testCost(), &pioJob, opts)
	if err != nil {
		t.Fatal(err)
	}
	pioOut, err = pioNodes[0].Shared.ReadFile(fx.job.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	return seqOut, mpiOut, pioOut, mpiRes, pioRes
}

func TestEnginesProduceIdenticalOutput(t *testing.T) {
	fx := makeFixture(t, 400)
	seqOut, mpiOut, pioOut, _, _ := runAllThree(t, fx, 4, 0, vfs.XFSLike(), localDisk(), core.Options{})
	if len(seqOut) == 0 {
		t.Fatal("sequential output empty")
	}
	if !bytes.Equal(seqOut, mpiOut) {
		t.Fatalf("mpiBLAST output differs from sequential (len %d vs %d)\nfirst divergence: %d",
			len(mpiOut), len(seqOut), firstDiff(seqOut, mpiOut))
	}
	if !bytes.Equal(seqOut, pioOut) {
		t.Fatalf("pioBLAST output differs from sequential (len %d vs %d)\nfirst divergence: %d",
			len(pioOut), len(seqOut), firstDiff(seqOut, pioOut))
	}
	if !strings.Contains(string(seqOut), "Sequences producing significant alignments") {
		t.Fatal("output has no hit summaries — workload produced no hits")
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func TestEquivalenceAcrossProcessCounts(t *testing.T) {
	fx := makeFixture(t, 300)
	var ref []byte
	for _, n := range []int{2, 3, 6} {
		seqOut, mpiOut, pioOut, _, _ := runAllThree(t, fx, n, 0, vfs.XFSLike(), localDisk(), core.Options{})
		if ref == nil {
			ref = seqOut
		}
		if !bytes.Equal(ref, mpiOut) || !bytes.Equal(ref, pioOut) {
			t.Fatalf("n=%d: outputs differ from reference", n)
		}
	}
}

func TestEquivalenceAcrossFragmentCounts(t *testing.T) {
	fx := makeFixture(t, 300)
	seqOut, mpiOut, pioOut, _, _ := runAllThree(t, fx, 4, 9, vfs.XFSLike(), localDisk(), core.Options{})
	if !bytes.Equal(seqOut, mpiOut) {
		t.Fatal("mpiBLAST with 9 fragments differs")
	}
	if !bytes.Equal(seqOut, pioOut) {
		t.Fatal("pioBLAST with 9 virtual fragments differs")
	}
}

func TestEarlyPrunePreservesOutput(t *testing.T) {
	fx := makeFixture(t, 300)
	seqOut, _, pioOut, _, _ := runAllThree(t, fx, 5, 0, vfs.XFSLike(), nil, core.Options{EarlyPrune: true})
	if !bytes.Equal(seqOut, pioOut) {
		t.Fatal("early-prune changed the output")
	}
}

func TestIndependentOutputPreservesBytes(t *testing.T) {
	fx := makeFixture(t, 300)
	seqOut, _, pioOut, _, _ := runAllThree(t, fx, 4, 0, vfs.XFSLike(), nil, core.Options{IndependentOutput: true})
	if !bytes.Equal(seqOut, pioOut) {
		t.Fatal("independent-output mode changed the bytes")
	}
}

func TestNoLocalDiskUsesSharedScratch(t *testing.T) {
	// The Altix case: no node-local storage; the baseline copies fragments
	// to shared scratch instead and everything still works.
	fx := makeFixture(t, 300)
	seqOut, mpiOut, pioOut, mpiRes, _ := runAllThree(t, fx, 4, 0, vfs.XFSLike(), nil, core.Options{})
	if !bytes.Equal(seqOut, mpiOut) || !bytes.Equal(seqOut, pioOut) {
		t.Fatal("diskless platform broke equivalence")
	}
	if mpiRes.Phase.Copy <= 0 {
		t.Fatal("baseline should still pay a copy phase on shared scratch")
	}
}

func TestPioBLASTFasterAndPhaseShapes(t *testing.T) {
	fx := makeFixture(t, 500)
	_, _, _, mpiRes, pioRes := runAllThree(t, fx, 6, 0, vfs.XFSLike(), localDisk(), core.Options{})
	if pioRes.Wall >= mpiRes.Wall {
		t.Fatalf("pioBLAST (%.2fs) not faster than mpiBLAST (%.2fs)", pioRes.Wall, mpiRes.Wall)
	}
	// Phase structure: baseline has a copy phase and no input phase;
	// pioBLAST is the reverse.
	if mpiRes.Phase.Copy <= 0 {
		t.Fatalf("baseline copy phase missing: %+v", mpiRes.Phase)
	}
	if mpiRes.Phase.Input != 0 {
		t.Fatalf("baseline should have no input phase: %+v", mpiRes.Phase)
	}
	if pioRes.Phase.Copy != 0 {
		t.Fatalf("pioBLAST should have no copy phase: %+v", pioRes.Phase)
	}
	if pioRes.Phase.Input <= 0 {
		t.Fatalf("pioBLAST input phase missing: %+v", pioRes.Phase)
	}
	// Output phase: the paper's headline — pioBLAST's is far smaller.
	if pioRes.Phase.Output >= mpiRes.Phase.Output {
		t.Fatalf("pioBLAST output phase (%.2f) not below baseline (%.2f)",
			pioRes.Phase.Output, mpiRes.Phase.Output)
	}
}

func TestRunDeterminism(t *testing.T) {
	fx := makeFixture(t, 300)
	run := func() (engine.RunResult, []byte) {
		nodes := fx.newCluster(t, 4, vfs.XFSLike(), localDisk(), 0)
		job := *fx.job
		res, err := core.Run(nodes, 4, testCost(), &job, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		out, _ := nodes[0].Shared.ReadFile(job.OutputPath)
		return res, out
	}
	r1, o1 := run()
	r2, o2 := run()
	if r1.Wall != r2.Wall {
		t.Fatalf("wall time nondeterministic: %g vs %g", r1.Wall, r2.Wall)
	}
	if !bytes.Equal(o1, o2) {
		t.Fatal("output nondeterministic")
	}
}

func TestMultiVolumeDatabase(t *testing.T) {
	// Format with small volumes so the global DB spans several files; the
	// engines must read across volume boundaries correctly.
	fx := makeFixture(t, 300)

	seqNodes, err := vfs.Cluster(1, vfs.RAMDisk(), nil)
	if err != nil {
		t.Fatal(err)
	}
	seqs, _ := workload.SynthesizeDB(workload.DBConfig{Kind: seq.Protein, NumSeqs: 60, MeanLen: 150, Seed: 101})
	if _, err := formatdb.Format(seqNodes[0].Shared, "nr", seqs, formatdb.Config{
		Title: "synthetic nr", Kind: seq.Protein, VolumeMaxResidues: workload.TotalResidues(seqs) / 4,
	}); err != nil {
		t.Fatal(err)
	}
	seqJob := *fx.job
	if err := engine.RunSequential(seqNodes[0].Shared, &seqJob); err != nil {
		t.Fatal(err)
	}
	want, _ := seqNodes[0].Shared.ReadFile(fx.job.OutputPath)

	nodes, err := vfs.Cluster(4, vfs.XFSLike(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := formatdb.Format(nodes[0].Shared, "nr", seqs, formatdb.Config{
		Title: "synthetic nr", Kind: seq.Protein, VolumeMaxResidues: workload.TotalResidues(seqs) / 4,
	}); err != nil {
		t.Fatal(err)
	}
	job := *fx.job
	if _, err := core.Run(nodes, 4, testCost(), &job, core.Options{}); err != nil {
		t.Fatal(err)
	}
	got, _ := nodes[0].Shared.ReadFile(job.OutputPath)
	if !bytes.Equal(want, got) {
		t.Fatalf("multi-volume pioBLAST output differs (%d vs %d bytes)", len(got), len(want))
	}
}

func TestRunValidation(t *testing.T) {
	fx := makeFixture(t, 300)
	nodes := fx.newCluster(t, 2, vfs.XFSLike(), nil, 0)
	if _, err := core.Run(nodes, 1, testCost(), fx.job, core.Options{}); err == nil {
		t.Fatal("1-rank pioBLAST accepted")
	}
	bad := *fx.job
	bad.DBBase = "missing"
	if _, err := core.Run(nodes, 2, testCost(), &bad, core.Options{}); err == nil {
		t.Fatal("missing database accepted by pioBLAST")
	}
	if _, err := mpiblast.Run(nodes, 2, testCost(), &bad); err == nil {
		t.Fatal("missing database accepted by baseline")
	}
	// Baseline without prepared fragments must fail with a clear error.
	if _, err := mpiblast.Run(nodes, 2, testCost(), fx.job); err == nil ||
		!strings.Contains(err.Error(), "fragment") {
		t.Fatalf("missing fragments not diagnosed: %v", err)
	}
}

func TestDynamicAssignmentPreservesOutput(t *testing.T) {
	fx := makeFixture(t, 300)
	seqOut, _, pioOut, _, _ := runAllThree(t, fx, 5, 12, vfs.XFSLike(), nil,
		core.Options{DynamicAssignment: true})
	if !bytes.Equal(seqOut, pioOut) {
		t.Fatal("dynamic assignment changed the output")
	}
}

func TestQueryBatchingPreservesOutput(t *testing.T) {
	fx := makeFixture(t, 300)
	for _, batch := range []int{2, 3, 100} {
		seqOut, _, pioOut, _, _ := runAllThree(t, fx, 4, 0, vfs.XFSLike(), nil,
			core.Options{QueryBatch: batch})
		if !bytes.Equal(seqOut, pioOut) {
			t.Fatalf("query batch %d changed the output", batch)
		}
	}
}

func TestCombinedOptionsPreserveOutput(t *testing.T) {
	fx := makeFixture(t, 300)
	seqOut, _, pioOut, _, _ := runAllThree(t, fx, 5, 15, vfs.XFSLike(), nil,
		core.Options{DynamicAssignment: true, EarlyPrune: true, QueryBatch: 4})
	if !bytes.Equal(seqOut, pioOut) {
		t.Fatal("combined extension options changed the output")
	}
}

func TestHeterogeneousDynamicBeatsStatic(t *testing.T) {
	// On a cluster where a quarter of the workers run at 1/3 speed,
	// greedy fragment assignment with fine granularity must beat static
	// natural partitioning — the §5 load-balancing claim.
	// Needs a search-dominated workload so that compute skew is what
	// matters; the shared fixture is too small for that.
	seqs, err := workload.SynthesizeDB(workload.DBConfig{
		Kind: seq.Protein, NumSeqs: 300, MeanLen: 250, Seed: 31, FamilySize: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	hq, err := workload.SampleQueries(seqs, workload.QueryConfig{
		TargetBytes: 4000, MeanLen: 300, MutationRate: 0.05, Seed: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	speeds := make([]float64, 9)
	for i := range speeds {
		speeds[i] = 1
	}
	speeds[7], speeds[8] = 3, 3 // two slow nodes

	run := func(opts core.Options, fragments int) engine.RunResult {
		nodes, err := vfs.Cluster(9, vfs.XFSLike(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := formatdb.Format(nodes[0].Shared, "nr", seqs, formatdb.Config{
			Title: "hetero nr", Kind: seq.Protein,
		}); err != nil {
			t.Fatal(err)
		}
		job := &engine.Job{
			DBBase: "nr", Queries: hq, Options: blast.DefaultProteinOptions(),
			OutputPath: "out", Fragments: fragments,
		}
		res, err := core.RunConfig(nodes, 9, mpiCfg(speeds), job, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	static := run(core.Options{}, 0)
	dynamic := run(core.Options{DynamicAssignment: true}, 32)
	if dynamic.Wall >= static.Wall {
		t.Fatalf("dynamic assignment (%.3fs) not faster than static (%.3fs) on a heterogeneous cluster",
			dynamic.Wall, static.Wall)
	}
}

func TestQueryBatchingReducesOutputTime(t *testing.T) {
	// Batching amortizes per-query collective costs; with many queries
	// the batched run's output phase must not be larger.
	fx := makeFixture(t, 500)
	run := func(batch int) engine.RunResult {
		nodes := fx.newCluster(t, 6, vfs.XFSLike(), nil, 0)
		job := *fx.job
		res, err := core.Run(nodes, 6, testCost(), &job, core.Options{QueryBatch: batch})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	perQuery := run(1)
	batched := run(8)
	if batched.Phase.Output > perQuery.Phase.Output*1.05 {
		t.Fatalf("batched output phase (%.3fs) worse than per-query (%.3fs)",
			batched.Phase.Output, perQuery.Phase.Output)
	}
}

func mpiCfg(speeds []float64) mpi.Config {
	return mpi.Config{Cost: testCost(), Speeds: speeds}
}

func TestTabularOutputAcrossEngines(t *testing.T) {
	fx := makeFixture(t, 300)
	fx.job.Options.OutFormat = blast.FormatTabular
	seqOut, mpiOut, pioOut, _, _ := runAllThree(t, fx, 4, 0, vfs.XFSLike(), nil, core.Options{})
	if !bytes.Equal(seqOut, mpiOut) || !bytes.Equal(seqOut, pioOut) {
		t.Fatal("tabular outputs differ across engines")
	}
	text := string(seqOut)
	if !strings.Contains(text, "# Fields: query id") {
		t.Fatalf("tabular header missing:\n%.200s", text)
	}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if got := strings.Count(line, "\t"); got != 11 {
			t.Fatalf("data line has %d tabs: %q", got, line)
		}
	}
}

func TestFilteredSearchAcrossEngines(t *testing.T) {
	fx := makeFixture(t, 300)
	fx.job.Options.FilterLowComplexity = true
	seqOut, mpiOut, pioOut, _, _ := runAllThree(t, fx, 4, 0, vfs.XFSLike(), nil, core.Options{})
	if !bytes.Equal(seqOut, mpiOut) || !bytes.Equal(seqOut, pioOut) {
		t.Fatal("filtered outputs differ across engines")
	}
}

func TestAdaptiveBatchingPreservesOutput(t *testing.T) {
	fx := makeFixture(t, 500)
	for _, budget := range []int64{1, 4096, 1 << 20} {
		seqOut, _, pioOut, _, _ := runAllThree(t, fx, 5, 0, vfs.XFSLike(), nil,
			core.Options{MemoryBudgetBytes: budget})
		if !bytes.Equal(seqOut, pioOut) {
			t.Fatalf("budget %d changed the output", budget)
		}
	}
}

func TestAdaptiveBoundsProperties(t *testing.T) {
	volumes := []int64{100, 900, 50, 50, 50, 2000, 10}
	bounds := core.AdaptiveBoundsForTest(volumes, 1000)
	// Boundaries must start at 0, end at len, be strictly increasing.
	if bounds[0] != 0 || bounds[len(bounds)-1] != len(volumes) {
		t.Fatalf("bounds endpoints wrong: %v", bounds)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not increasing: %v", bounds)
		}
	}
	// Each multi-query batch fits the budget; single-query batches may
	// exceed it (a query's output is indivisible).
	for i := 0; i+1 < len(bounds); i++ {
		var sum int64
		for q := bounds[i]; q < bounds[i+1]; q++ {
			sum += volumes[q]
		}
		if bounds[i+1]-bounds[i] > 1 && sum > 1000 {
			t.Fatalf("batch [%d,%d) volume %d exceeds budget: %v", bounds[i], bounds[i+1], sum, bounds)
		}
	}
	// A huge budget yields one batch; a tiny budget yields one per query.
	if got := core.AdaptiveBoundsForTest(volumes, 1<<40); len(got) != 2 {
		t.Fatalf("huge budget should give one batch: %v", got)
	}
	if got := core.AdaptiveBoundsForTest(volumes, 1); len(got) != len(volumes)+1 {
		t.Fatalf("tiny budget should give per-query batches: %v", got)
	}
}
